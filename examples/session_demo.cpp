// QuerySession demo: many queries over one document, with the instance
// accumulated across queries — new labels are merged in with the
// common-extension algorithm (Sec. 2.3) instead of re-parsing from
// scratch, which is the workflow the paper sketches in Sec. 4.
//
// Build & run:  ./build/examples/session_demo [target_nodes]

#include <cstdio>
#include <cstdlib>

#include "xcq/api.h"

int main(int argc, char** argv) {
  const uint64_t target_nodes =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;

  // A DBLP-like document as the session's database.
  xcq::corpus::GenerateOptions gen;
  gen.target_nodes = target_nodes;
  const std::string xml = xcq::corpus::Dblp().Generate(gen);
  std::printf("document: %zu bytes\n\n", xml.size());

  auto session = xcq::QuerySession::Open(xml);
  if (!session.ok()) return 1;

  const char* queries[] = {
      "//article/author",                          // parse + compress
      "//article[author[\"Codd\"]]",               // adds str:Codd
      "//author[\"Codd\"]/parent::article",        // everything cached
      "/dblp/article[year[\"1979\"]]/title",       // adds year/title + str
      "//inproceedings[author[\"Vardi\"]]/title",  // adds more labels
  };

  for (const char* query : queries) {
    auto outcome = session->Run(query);
    if (!outcome.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    std::printf("%-45s  label %.4fs  eval %.4fs  -> %llu tree node(s)\n",
                query, outcome->label_seconds, outcome->stats.seconds,
                static_cast<unsigned long long>(
                    outcome->selected_tree_nodes));
  }

  std::printf("\naccumulated instance: %zu vertices, %zu tags, %zu "
              "string patterns tracked\n",
              session->instance().ReachableCount(),
              session->tracked_tag_count(),
              session->tracked_pattern_count());
  std::printf("(the third query's label time is ~0: everything it needs "
              "was already in the instance)\n");
  return 0;
}
