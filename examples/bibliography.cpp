// A guided tour of the paper's running example (Example 1.1 / Figs. 1-2):
// the bibliographic document, its compressed skeleton in the three
// states of Fig. 1, the bisimulation lattice (minimize / decompress),
// and the Example 3.5 query //a/b analogue.
//
// Build & run:  ./build/examples/bibliography

#include <cstdio>

#include "xcq/api.h"

namespace {

constexpr const char* kBib = R"(<bib>
<book>
<title>Foundations of Databases</title>
<author>Abiteboul</author><author>Hull</author><author>Vianu</author>
</book>
<paper>
<title>A Relational Model for Large Shared Data Banks</title>
<author>Codd</author>
</paper>
<paper>
<title>The Complexity of Relational Query Languages</title>
<author>Vardi</author>
</paper>
</bib>)";

void PrintInstance(const xcq::Instance& inst, const char* title) {
  std::printf("%s\n", title);
  for (xcq::VertexId v : inst.TopologicalOrder()) {
    std::printf("  v%-2u", v);
    // Labels.
    std::string labels;
    for (xcq::RelationId r : inst.LiveRelations()) {
      if (inst.Test(r, v)) {
        if (!labels.empty()) labels += ",";
        labels += inst.schema().Name(r);
      }
    }
    std::printf(" {%s}", labels.c_str());
    if (!inst.Children(v).empty()) {
      std::printf(" ->");
      for (const xcq::Edge& e : inst.Children(v)) {
        if (e.count == 1) {
          std::printf(" v%u", e.child);
        } else {
          std::printf(" v%u(x%llu)", e.child,
                      static_cast<unsigned long long>(e.count));
        }
      }
    }
    std::printf("\n");
  }
  std::printf("  => %zu vertices, %llu RLE edges, %llu tree nodes\n\n",
              inst.ReachableCount(),
              static_cast<unsigned long long>(inst.rle_edge_count()),
              static_cast<unsigned long long>(xcq::TreeNodeCount(inst)));
}

}  // namespace

int main() {
  std::printf("== Example 1.1: the bibliography skeleton ==\n\n");

  // Fig. 1 (a): the uncompressed skeleton (tree-instance).
  auto labeled = xcq::TreeBuilder::Build(kBib);
  if (!labeled.ok()) return 1;
  std::printf("Fig. 1 (a): tree skeleton has %zu nodes (incl. #doc), "
              "depth %zu\n\n",
              labeled->tree.node_count(), labeled->tree.Depth());

  // Fig. 1 (b)/(c): the compressed instance. Our representation always
  // keeps multiplicities (Fig. 1 (c)); expanding them gives (b).
  xcq::CompressOptions options;
  options.mode = xcq::LabelMode::kAllTags;
  auto compressed = xcq::CompressXml(kBib, options);
  if (!compressed.ok()) return 1;
  PrintInstance(*compressed,
                "Fig. 1 (c): compressed skeleton with multiplicities");
  std::printf("Fig. 1 (b) edge count (multiplicities expanded): %llu\n\n",
              static_cast<unsigned long long>(
                  xcq::ExpandedDagEdgeCount(*compressed)));

  // The lattice of Sec. 2.2: T(I) is the maximum, M(I) the minimum.
  auto tree_instance = xcq::InstanceFromTree(*labeled);
  if (!tree_instance.ok()) return 1;
  auto minimized = xcq::Minimize(*tree_instance);
  if (!minimized.ok()) return 1;
  auto same = xcq::AreEquivalent(*minimized, *compressed);
  std::printf("Minimize(T(I)) equivalent to streaming compression: %s\n",
              same.ok() && *same ? "yes" : "NO (bug!)");
  auto decompressed = xcq::Decompress(*compressed);
  if (!decompressed.ok()) return 1;
  std::printf("Decompress(M(I)) restores the %zu-node tree: %s\n\n",
              decompressed->tree.node_count(),
              decompressed->tree.node_count() ==
                      labeled->tree.node_count()
                  ? "yes"
                  : "NO (bug!)");

  // Example 3.5 analogue: //paper/author on the compressed instance.
  std::printf("== Query //paper/author on the compressed instance ==\n\n");
  auto plan = xcq::algebra::CompileString("//paper/author");
  if (!plan.ok()) return 1;
  std::printf("algebra (child(descendant({root}) \\cap L_paper) \\cap "
              "L_author):\n%s\n",
              plan->ToString().c_str());
  xcq::Instance working = *compressed;
  xcq::engine::EvalStats stats;
  auto result = xcq::engine::Evaluate(&working, *plan,
                                      xcq::engine::EvalOptions{}, &stats);
  if (!result.ok()) return 1;
  PrintInstance(working, "after evaluation (partially decompressed):");
  std::printf("selected: %llu DAG vertices = %llu tree nodes; splits: "
              "%llu\n",
              static_cast<unsigned long long>(
                  xcq::SelectedDagNodeCount(working, *result)),
              static_cast<unsigned long long>(
                  xcq::SelectedTreeNodeCount(working, *result)),
              static_cast<unsigned long long>(stats.splits));
  return 0;
}
