// Quickstart: parse an XML document into a compressed skeleton instance,
// run an XPath query directly on the compressed form, and decode the
// result — the complete pipeline of the paper in ~60 lines.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "xcq/api.h"

namespace {

constexpr const char* kXml = R"(<bib>
  <book><title>Foundations of Databases</title>
    <author>Abiteboul</author><author>Hull</author><author>Vianu</author>
  </book>
  <paper><title>A Relational Model for Large Shared Data Banks</title>
    <author>Codd</author>
  </paper>
  <paper><title>The Complexity of Relational Query Languages</title>
    <author>Vardi</author>
  </paper>
</bib>)";

constexpr const char* kQuery = "//paper[author[\"Vardi\"]]/title";

}  // namespace

int main() {
  // 1. Parse the query and find out which tags / string constants it
  //    needs — the compressed instance will carry exactly those labels.
  auto query = xcq::xpath::ParseQuery(kQuery);
  if (!query.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  const xcq::xpath::QueryRequirements reqs =
      xcq::xpath::CollectRequirements(*query);

  // 2. One SAX scan: build the minimal DAG, matching string constraints
  //    on the fly (Sec. 2.2 + Sec. 4 of the paper).
  xcq::CompressOptions copts;
  copts.mode = xcq::LabelMode::kSchema;
  copts.tags = reqs.tags;
  copts.patterns = reqs.patterns;
  auto instance = xcq::CompressXml(kXml, copts);
  if (!instance.ok()) {
    std::fprintf(stderr, "compress error: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }
  std::printf("compressed instance: %zu vertices, %llu RLE edges "
              "(representing %llu tree nodes)\n",
              instance->ReachableCount(),
              static_cast<unsigned long long>(instance->rle_edge_count()),
              static_cast<unsigned long long>(
                  xcq::TreeNodeCount(*instance)));

  // 3. Compile to the node-set algebra (predicates reversed, Sec. 3.1)
  //    and evaluate directly on the compressed instance (Sec. 3.2/3.3).
  auto plan = xcq::algebra::Compile(*query);
  if (!plan.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("\nquery: %s\nplan:\n%s\n", kQuery,
              plan->ToString().c_str());

  xcq::engine::EvalStats stats;
  auto result = xcq::engine::Evaluate(&*instance, *plan,
                                      xcq::engine::EvalOptions{}, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "eval error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 4. Decode: how many nodes were selected, in DAG and tree view, and
  //    how much partial decompression the query caused.
  std::printf("selected %llu DAG vertex(es) = %llu tree node(s)\n",
              static_cast<unsigned long long>(
                  xcq::SelectedDagNodeCount(*instance, *result)),
              static_cast<unsigned long long>(
                  xcq::SelectedTreeNodeCount(*instance, *result)));
  std::printf("instance grew %llu -> %llu vertices (%llu splits)\n",
              static_cast<unsigned long long>(stats.vertices_before),
              static_cast<unsigned long long>(stats.vertices_after),
              static_cast<unsigned long long>(stats.splits));
  return 0;
}
