// Demonstrates the introduction's motivating observation: XML-ized
// relational data compresses from O(C*R) to O(C + log R), and queries on
// the compressed form touch a constant number of vertices regardless of
// the row count.
//
// Build & run:  ./build/examples/relational_table [rows]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "xcq/api.h"

namespace {

std::string MakeTable(int rows) {
  std::string xml;
  xcq::xml::XmlWriter writer(&xml);
  (void)writer.StartElement("employees");
  for (int r = 0; r < rows; ++r) {
    (void)writer.StartElement("employee");
    (void)writer.TextElement("id", std::to_string(r));
    (void)writer.TextElement("name", "employee-" + std::to_string(r));
    (void)writer.TextElement("dept", r % 3 == 0 ? "engineering" : "sales");
    (void)writer.TextElement("salary", std::to_string(40000 + r % 9000));
    (void)writer.EndElement();
  }
  (void)writer.EndElement();
  return xml;
}

}  // namespace

int main(int argc, char** argv) {
  const int max_rows = argc > 1 ? std::atoi(argv[1]) : 100000;

  std::printf("%10s %12s %10s %10s %14s\n", "rows", "tree nodes",
              "vertices", "RLE edges", "xml bytes");
  for (int rows = 10; rows <= max_rows; rows *= 10) {
    const std::string xml = MakeTable(rows);
    xcq::CompressOptions options;
    options.mode = xcq::LabelMode::kAllTags;
    auto inst = xcq::CompressXml(xml, options);
    if (!inst.ok()) {
      std::fprintf(stderr, "compress: %s\n",
                   inst.status().ToString().c_str());
      return 1;
    }
    std::printf("%10d %12llu %10zu %10llu %14zu\n", rows,
                static_cast<unsigned long long>(xcq::TreeNodeCount(*inst)),
                inst->ReachableCount(),
                static_cast<unsigned long long>(inst->rle_edge_count()),
                xml.size());
  }

  // A query on the largest table: every <employee> row shape is one
  // shared vertex, so selecting names touches O(C) vertices.
  const std::string xml = MakeTable(max_rows);
  xcq::CompressOptions options;
  options.mode = xcq::LabelMode::kAllTags;
  auto inst = xcq::CompressXml(xml, options);
  if (!inst.ok()) return 1;
  auto plan = xcq::algebra::CompileString("/employees/employee/name");
  if (!plan.ok()) return 1;
  xcq::engine::EvalStats stats;
  auto result = xcq::engine::Evaluate(&*inst, *plan,
                                      xcq::engine::EvalOptions{}, &stats);
  if (!result.ok()) return 1;
  std::printf(
      "\n/employees/employee/name on %d rows: %.4fs, instance %llu -> "
      "%llu vertices, %llu tree nodes selected\n",
      max_rows, stats.seconds,
      static_cast<unsigned long long>(stats.vertices_before),
      static_cast<unsigned long long>(stats.vertices_after),
      static_cast<unsigned long long>(
          xcq::SelectedTreeNodeCount(*inst, *result)));
  return 0;
}
