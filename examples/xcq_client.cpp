// xcq_client — minimal client for xcq_serverd's line protocol.
//
//   ./build/examples/xcq_client [--no-retry] <port> <request...>
//   ./build/examples/xcq_client [--no-retry] <port>   # requests from stdin
//   ./build/examples/xcq_client <port> metrics [--watch <sec>]
//   ./build/examples/xcq_client <port> pipeline [--repeat N] [--quiet]
//
// Examples (against a server started with --preload=bib=bib.xml):
//
//   xcq_client 7878 STATS
//   xcq_client 7878 QUERY bib '//paper/author'
//   printf 'BATCH bib 2\n//paper\n//book\nQUIT\n' | xcq_client 7878
//   xcq_client 7878 metrics                # one Prometheus scrape
//   xcq_client 7878 metrics --watch 2      # deltas every 2 seconds
//   printf 'QUERY bib //paper\nSTATS\n' | xcq_client 7878 pipeline --repeat 100
//
// The client sends each request line, then prints the response: one line
// for LOAD/QUERY/EVICT, `OK <n>` plus n detail lines for BATCH/STATS.
//
// Transient server errors are retried: a reply whose first line is
// `ERR IoError: ... will retry ...` (the server's marker for a failed
// warm-document fault-in it expects to succeed on a later attempt) is
// resent on the same connection with exponential backoff and full
// jitter, up to 4 tries total. `--no-retry` disables this and prints
// the first reply verbatim — useful for scripting and for tests that
// assert on the transient error itself. Retries apply to the
// request/response modes only (argv and stdin), never to `pipeline`,
// whose responses are ordered, or `metrics`.
//
// `metrics` scrapes the METRICS verb and prints the raw Prometheus text
// exposition (docs/OBSERVABILITY.md). With `--watch <sec>` it scrapes
// repeatedly over one connection and prints only the series whose value
// changed since the previous scrape, with the delta — a poor man's
// `rate()` for eyeballing a live server.
//
// `pipeline` exercises the async front end: every stdin request (times
// `--repeat`) is written without waiting for responses, from a writer
// thread, while the main thread concurrently reads replies until EOF —
// so the server's in-order pipelined replies and its backpressure
// (stalled reads under a full queue) are both visible from one
// command. After the last request the write side shuts down; the
// server drains and closes. `--quiet` prints only the final summary
// (`pipeline: <n> responses ...`) instead of every response line.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace {

int Dial(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendLine(int fd, const std::string& line) {
  // MSG_NOSIGNAL: in pipelined mode the server may close (QUIT, error)
  // while requests are still being written; surface that as a failed
  // send, not a SIGPIPE.
  const std::string framed = line + "\n";
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n =
        ::send(fd, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  bool ReadLine(std::string* line) {
    line->clear();
    while (true) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buffer_;
};

/// True when `line` is a BATCH header the *server* will accept (verb,
/// name, all-digit count in 1..100000, nothing else) — mirrored from
/// ParseRequest, whitespace handling included, so the client withholds
/// its response read exactly when the server will wait for body lines.
/// A header the server rejects gets an immediate ERR, which must be
/// read right away or every later request/response pair shifts by one.
bool IsAcceptedBatchHeader(const std::string& line,
                           unsigned long long* count) {
  std::vector<std::string> tokens;
  std::string token;
  for (const char c : line) {
    if (c == ' ' || c == '\t') {
      if (!token.empty()) tokens.push_back(std::move(token));
      token.clear();
    } else {
      token += c;
    }
  }
  if (!token.empty()) tokens.push_back(std::move(token));
  if (tokens.size() != 3 || tokens[0] != "BATCH" || tokens[2].empty()) {
    return false;
  }
  *count = 0;
  for (const char c : tokens[2]) {
    if (c < '0' || c > '9') return false;
    *count = *count * 10 + static_cast<unsigned long long>(c - '0');
    if (*count > 100000) return false;
  }
  return *count >= 1;
}

/// Reads a whole response into `lines`: `OK <n>`-headed responses are
/// followed by n detail lines; everything else is a single line. False
/// on a connection or framing error.
bool ReadResponse(LineReader* reader, std::vector<std::string>* lines) {
  lines->clear();
  std::string line;
  if (!reader->ReadLine(&line)) return false;
  unsigned long long detail_lines = 0;
  const bool has_details =
      std::sscanf(line.c_str(), "OK %llu", &detail_lines) == 1;
  lines->push_back(std::move(line));
  if (has_details) {
    for (unsigned long long i = 0; i < detail_lines; ++i) {
      if (!reader->ReadLine(&line)) return false;
      lines->push_back(std::move(line));
    }
  }
  return true;
}

struct RetryPolicy {
  bool enabled = true;      ///< Cleared by `--no-retry`.
  int max_attempts = 4;     ///< Total tries, including the first.
  unsigned base_delay_ms = 100;
};

/// True for replies the server marks as transient: a warm-document
/// fault-in that failed but is expected to succeed when resent.
bool IsRetryableReply(const std::string& first_line) {
  return first_line.rfind("ERR IoError:", 0) == 0 &&
         first_line.find("will retry") != std::string::npos;
}

/// Full-jitter exponential backoff: uniform in [1, base * 2^attempt]
/// milliseconds, so concurrent retrying clients spread out instead of
/// hammering the server in lockstep.
unsigned BackoffDelayMs(int attempt, unsigned base_ms, unsigned* seed) {
  const unsigned cap = base_ms << attempt;
  *seed = *seed * 1664525u + 1013904223u;
  return 1 + *seed % cap;
}

/// Sends one whole request (header plus any BATCH body lines) and
/// prints the reply. A retryable reply is resent on the same
/// connection after a jittered backoff until it succeeds, turns
/// permanent, or the attempt cap is hit — the last reply is printed
/// either way. False on a connection error.
bool ExchangeWithRetry(int fd, LineReader* reader,
                       const std::vector<std::string>& request,
                       const RetryPolicy& retry, unsigned* seed) {
  for (int attempt = 1;; ++attempt) {
    for (const std::string& line : request) {
      if (!SendLine(fd, line)) return false;
    }
    std::vector<std::string> reply;
    if (!ReadResponse(reader, &reply)) return false;
    if (retry.enabled && !reply.empty() && IsRetryableReply(reply.front()) &&
        attempt < retry.max_attempts) {
      const unsigned delay_ms =
          BackoffDelayMs(attempt - 1, retry.base_delay_ms, seed);
      std::fprintf(stderr, "transient: %s; retrying (%d/%d) in %ums\n",
                   reply.front().c_str(), attempt + 1, retry.max_attempts,
                   delay_ms);
      timespec delay;
      delay.tv_sec = static_cast<time_t>(delay_ms / 1000);
      delay.tv_nsec = static_cast<long>(delay_ms % 1000) * 1000000L;
      ::nanosleep(&delay, nullptr);
      continue;
    }
    for (const std::string& line : reply) std::printf("%s\n", line.c_str());
    return true;
  }
}

/// One METRICS scrape over `fd`. Prints the raw exposition lines when
/// `print_raw`; always fills `samples` with series -> value (comment
/// lines skipped). False on a connection or framing error.
bool ScrapeMetrics(int fd, LineReader* reader, bool print_raw,
                   std::map<std::string, double>* samples) {
  if (!SendLine(fd, "METRICS")) return false;
  std::string line;
  if (!reader->ReadLine(&line)) return false;
  unsigned long long detail_lines = 0;
  if (std::sscanf(line.c_str(), "OK %llu", &detail_lines) != 1) {
    std::fprintf(stderr, "unexpected METRICS response: %s\n", line.c_str());
    return false;
  }
  samples->clear();
  for (unsigned long long i = 0; i < detail_lines; ++i) {
    if (!reader->ReadLine(&line)) return false;
    if (print_raw) std::printf("%s\n", line.c_str());
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    (*samples)[line.substr(0, space)] =
        std::strtod(line.c_str() + space + 1, nullptr);
  }
  return true;
}

/// The `metrics` subcommand: single scrape, or `--watch <sec>` deltas.
int RunMetrics(int fd, double watch_seconds) {
  LineReader reader(fd);
  std::map<std::string, double> previous;
  if (watch_seconds <= 0) {
    return ScrapeMetrics(fd, &reader, /*print_raw=*/true, &previous) ? 0 : 1;
  }
  if (!ScrapeMetrics(fd, &reader, /*print_raw=*/false, &previous)) return 1;
  std::printf("baseline: %zu series; printing changes every %.3gs\n",
              previous.size(), watch_seconds);
  std::fflush(stdout);
  for (unsigned long long tick = 1;; ++tick) {
    timespec delay;
    delay.tv_sec = static_cast<time_t>(watch_seconds);
    delay.tv_nsec = static_cast<long>(
        (watch_seconds - static_cast<double>(delay.tv_sec)) * 1e9);
    ::nanosleep(&delay, nullptr);
    std::map<std::string, double> current;
    if (!ScrapeMetrics(fd, &reader, /*print_raw=*/false, &current)) {
      return 1;
    }
    std::printf("--- scrape %llu ---\n", tick);
    for (const auto& [series, value] : current) {
      const auto it = previous.find(series);
      if (it == previous.end()) {
        std::printf("%s %g (new)\n", series.c_str(), value);
      } else if (value != it->second) {
        const double delta = value - it->second;
        std::printf("%s %g (%+g)\n", series.c_str(), value, delta);
      }
    }
    std::fflush(stdout);
    previous = std::move(current);
  }
}

/// The `pipeline` subcommand: blast every stdin request (times
/// `repeats`) down the socket from a writer thread while this thread
/// reads responses until the server closes. The two must run
/// concurrently — with enough requests in flight both directions fill,
/// and a write-then-read client would deadlock against the server's
/// own (correct) backpressure.
int RunPipeline(int fd, unsigned long long repeats, bool quiet) {
  std::vector<std::string> requests;
  char buffer[65536];
  while (std::fgets(buffer, sizeof(buffer), stdin) != nullptr) {
    std::string line(buffer);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (!line.empty()) requests.push_back(std::move(line));
  }

  timespec start;
  ::clock_gettime(CLOCK_MONOTONIC, &start);
  std::thread writer([fd, &requests, repeats] {
    for (unsigned long long rep = 0; rep < repeats; ++rep) {
      for (const std::string& request : requests) {
        if (!SendLine(fd, request)) return;  // server closed early
      }
    }
    // No more requests: half-close so the server sees EOF, answers
    // everything in flight, and closes — our read loop then ends.
    ::shutdown(fd, SHUT_WR);
  });

  LineReader reader(fd);
  unsigned long long responses = 0;
  std::string line;
  while (reader.ReadLine(&line)) {
    if (!quiet) std::printf("%s\n", line.c_str());
    unsigned long long detail_lines = 0;
    if (std::sscanf(line.c_str(), "OK %llu", &detail_lines) == 1) {
      bool truncated = false;
      for (unsigned long long i = 0; i < detail_lines; ++i) {
        if (!reader.ReadLine(&line)) {
          truncated = true;
          break;
        }
        if (!quiet) std::printf("%s\n", line.c_str());
      }
      if (truncated) break;
    }
    ++responses;
  }
  writer.join();
  timespec end;
  ::clock_gettime(CLOCK_MONOTONIC, &end);
  const double seconds =
      static_cast<double>(end.tv_sec - start.tv_sec) +
      static_cast<double>(end.tv_nsec - start.tv_nsec) / 1e9;
  std::printf("pipeline: %llu responses in %.3fs (%llu request(s) x %llu)\n",
              responses, seconds,
              static_cast<unsigned long long>(requests.size()), repeats);
  return responses > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  RetryPolicy retry;
  if (argc >= 2 && std::strcmp(argv[1], "--no-retry") == 0) {
    retry.enabled = false;
    argv[1] = argv[0];  // keep the program name in argv[0] after the shift
    ++argv;
    --argc;
  }
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s [--no-retry] <port> [request words...]\n",
                 argv[0]);
    return 2;
  }
  const auto port =
      static_cast<uint16_t>(std::strtoul(argv[1], nullptr, 10));
  const int fd = Dial(port);
  if (fd < 0) {
    std::fprintf(stderr, "cannot connect to 127.0.0.1:%u\n",
                 static_cast<unsigned>(port));
    return 1;
  }

  if (argc >= 3 && std::strcmp(argv[2], "metrics") == 0) {
    double watch_seconds = 0.0;
    if (argc == 5 && std::strcmp(argv[3], "--watch") == 0) {
      watch_seconds = std::strtod(argv[4], nullptr);
      if (!(watch_seconds > 0)) {
        std::fprintf(stderr, "--watch needs a positive interval\n");
        ::close(fd);
        return 2;
      }
    } else if (argc != 3) {
      std::fprintf(stderr, "usage: %s <port> metrics [--watch <sec>]\n",
                   argv[0]);
      ::close(fd);
      return 2;
    }
    const int metrics_status = RunMetrics(fd, watch_seconds);
    ::close(fd);
    return metrics_status;
  }
  if (argc >= 3 && std::strcmp(argv[2], "pipeline") == 0) {
    unsigned long long repeats = 1;
    bool quiet = false;
    bool bad_args = false;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quiet") == 0) {
        quiet = true;
      } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
        repeats = std::strtoull(argv[++i], nullptr, 10);
        if (repeats < 1) bad_args = true;
      } else {
        bad_args = true;
      }
    }
    if (bad_args) {
      std::fprintf(stderr,
                   "usage: %s <port> pipeline [--repeat N] [--quiet]\n",
                   argv[0]);
      ::close(fd);
      return 2;
    }
    const int pipeline_status = RunPipeline(fd, repeats, quiet);
    ::close(fd);
    return pipeline_status;
  }
  LineReader reader(fd);
  unsigned seed =
      static_cast<unsigned>(::time(nullptr)) ^ static_cast<unsigned>(::getpid());

  int status = 0;
  if (argc > 2) {
    // One request from argv (words joined by spaces).
    std::string request;
    for (int i = 2; i < argc; ++i) {
      if (i > 2) request += ' ';
      request += argv[i];
    }
    if (!ExchangeWithRetry(fd, &reader, {request}, retry, &seed)) {
      std::fprintf(stderr, "connection closed mid-request\n");
      status = 1;
    }
  } else {
    // Requests from stdin. A whole request — one line, or a BATCH
    // header plus its body — is buffered before sending so a retryable
    // reply can resend it intact.
    char buffer[65536];
    std::vector<std::string> request;
    unsigned long long pending_body = 0;
    while (std::fgets(buffer, sizeof(buffer), stdin) != nullptr) {
      std::string line(buffer);
      while (!line.empty() &&
             (line.back() == '\n' || line.back() == '\r')) {
        line.pop_back();
      }
      if (line.empty()) continue;
      if (pending_body > 0) {
        // This line is part of a BATCH body; respond after the last one.
        request.push_back(std::move(line));
        if (--pending_body > 0) continue;
      } else {
        request.assign(1, line);
        unsigned long long n = 0;
        if (IsAcceptedBatchHeader(line, &n)) {
          pending_body = n;
          continue;  // body lines follow
        }
      }
      if (!ExchangeWithRetry(fd, &reader, request, retry, &seed)) {
        std::fprintf(stderr, "connection closed\n");
        status = 1;
        break;
      }
      if (request.size() == 1 && request.front() == "QUIT") break;
    }
  }
  ::close(fd);
  return status;
}
