// xcq_serverd — the query daemon: a long-lived process serving Core
// XPath queries over cached compressed instances, on TCP.
//
//   ./build/examples/xcq_serverd [options]
//
// Options:
//   --port=N            port to bind on 127.0.0.1 (default 7878; 0 =
//                       ephemeral, printed on startup)
//   --threads=N         evaluation worker pool size (default 4);
//                       parallelism *across* documents
//   --engine-threads=N  lanes per evaluation *inside* one document:
//                       sharded compression and partitioned axis sweeps
//                       (default 1 — the sequential engine; answers are
//                       identical for every value; see
//                       docs/PARALLELISM.md). Peak lanes are
//                       threads x engine-threads.
//   --capacity-mb=N     document store budget; past it the least-
//                       recently-used document is evicted (default
//                       unlimited)
//   --preload=NAME=PATH cache a document before serving; PATH may be a
//                       .xcqi instance file or raw XML (sniffed).
//                       Repeatable.
//   --minimize=MODE     reclaim instance growth after splitting queries:
//                       off (default) leaves instances grown,
//                       full re-hashes the whole DAG after every query,
//                       incremental re-canonicalizes only the split /
//                       re-pointed vertices against the persistent
//                       hash-cons cache (see docs/INTERNALS.md).
//                       Bare --minimize is an alias for incremental.
//   --prune=MODE        path-summary sweep pruning (docs/INTERNALS.md
//                       §9): on (default) restricts every axis sweep to
//                       the provably contributing region, off sweeps
//                       the whole DAG, verify additionally re-runs each
//                       query unpruned on a copy and fails the query on
//                       any divergence (debug oracle — slow). Answers
//                       are identical in all three modes.
//   --trace=MODE        per-query phase-trace logging to stderr, one
//                       JSON line per traced query
//                       (docs/OBSERVABILITY.md): off (default), all
//                       traces every query, slow:<ms> only queries
//                       slower than <ms> milliseconds end to end.
//   --max-connections=N cap on concurrent client connections; excess
//                       connects get one `ERR ResourceExhausted` line
//                       and a close (default 0 = unlimited)
//   --idle-timeout=SEC  disconnect clients with no traffic and nothing
//                       in flight after SEC seconds (default 0 = never)
//   --write-timeout=SEC disconnect clients whose pending replies make
//                       no write progress for SEC seconds (default 0 =
//                       never)
//   --queue-depth=N     bound on the evaluation submission queue; a
//                       full queue pauses socket reads (backpressure)
//                       instead of erroring (default 256; 0 = unbounded)
//   --default-deadline-ms=N
//                       deadline applied to every QUERY/BATCH without
//                       an explicit TIMEOUT clause; a request that
//                       misses it answers `ERR DeadlineExceeded`, and a
//                       request whose deadline passes while queued is
//                       shed without being evaluated (default 0 = none)
//   --max-batch=N       cap on BATCH body sizes; a header announcing
//                       more queries answers `ERR InvalidArgument`
//                       without consuming the body (default 100000)
//   --data-dir=PATH     spill directory for durable documents: every
//                       loaded document is persisted there (checksummed
//                       .xcqi + manifest) and a restart with the same
//                       directory answers queries without re-LOADing
//                       (docs/SERVER.md §Persistence). Default: off,
//                       memory-only.
//   --warm-start=MODE   on (default) registers every manifest entry as
//                       a warm document at startup; off starts cold but
//                       keeps the spill catalog intact. Only meaningful
//                       with --data-dir.
//
// Protocol (line-oriented; try it with `nc 127.0.0.1 7878`):
//
//   LOAD bib bib.xcqi
//   QUERY bib //paper/author
//   BATCH bib 2
//   //book[author["Vianu"]]
//   //paper/title
//   STATS
//   EVICT bib
//   QUIT
//
// See docs/SERVER.md for the full protocol and threading model.

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "xcq/api.h"
#include "xcq/util/string_util.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port=N] [--threads=N] [--engine-threads=N] "
               "[--capacity-mb=N] [--preload=NAME=PATH]... "
               "[--minimize[=off|full|incremental]] "
               "[--prune=on|off|verify] [--trace=off|slow:<ms>|all] "
               "[--max-connections=N] [--idle-timeout=SEC] "
               "[--write-timeout=SEC] [--queue-depth=N] "
               "[--default-deadline-ms=N] [--max-batch=N] "
               "[--data-dir=PATH] [--warm-start=on|off]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  xcq::server::ServerOptions options;
  std::vector<std::pair<std::string, std::string>> preloads;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--port=", 0) == 0) {
      options.port = static_cast<uint16_t>(
          std::strtoul(arg.substr(7).data(), nullptr, 10));
    } else if (arg.rfind("--engine-threads=", 0) == 0) {
      options.session.engine_threads =
          std::strtoull(arg.substr(17).data(), nullptr, 10);
      if (options.session.engine_threads < 1) {
        options.session.engine_threads = 1;
      }
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.worker_threads =
          std::strtoull(arg.substr(10).data(), nullptr, 10);
    } else if (arg.rfind("--capacity-mb=", 0) == 0) {
      options.capacity_bytes =
          std::strtoull(arg.substr(14).data(), nullptr, 10) * 1024 * 1024;
    } else if (arg.rfind("--max-connections=", 0) == 0) {
      options.max_connections =
          std::strtoull(arg.substr(18).data(), nullptr, 10);
    } else if (arg.rfind("--idle-timeout=", 0) == 0) {
      char* end = nullptr;
      options.idle_timeout_s = std::strtod(arg.substr(15).data(), &end);
      if (end == arg.substr(15).data() || options.idle_timeout_s < 0) {
        std::fprintf(stderr, "bad --idle-timeout: %s\n", argv[i]);
        return 2;
      }
    } else if (arg.rfind("--write-timeout=", 0) == 0) {
      char* end = nullptr;
      options.write_timeout_s = std::strtod(arg.substr(16).data(), &end);
      if (end == arg.substr(16).data() || options.write_timeout_s < 0) {
        std::fprintf(stderr, "bad --write-timeout: %s\n", argv[i]);
        return 2;
      }
    } else if (arg.rfind("--queue-depth=", 0) == 0) {
      options.queue_depth =
          std::strtoull(arg.substr(14).data(), nullptr, 10);
    } else if (arg.rfind("--default-deadline-ms=", 0) == 0) {
      options.default_deadline_ms =
          std::strtoull(arg.substr(22).data(), nullptr, 10);
    } else if (arg.rfind("--max-batch=", 0) == 0) {
      options.max_batch = std::strtoull(arg.substr(12).data(), nullptr, 10);
      if (options.max_batch < 1) {
        std::fprintf(stderr, "bad --max-batch: %s\n", argv[i]);
        return 2;
      }
    } else if (arg.rfind("--data-dir=", 0) == 0) {
      options.data_dir = std::string(arg.substr(11));
      if (options.data_dir.empty()) {
        std::fprintf(stderr, "bad --data-dir: %s\n", argv[i]);
        return 2;
      }
    } else if (arg == "--warm-start=on") {
      options.warm_start = true;
    } else if (arg == "--warm-start=off") {
      options.warm_start = false;
    } else if (arg.rfind("--preload=", 0) == 0) {
      const std::string_view spec = arg.substr(10);
      const size_t eq = spec.find('=');
      if (eq == std::string_view::npos || eq == 0 ||
          eq + 1 == spec.size()) {
        std::fprintf(stderr, "bad --preload spec: %s\n", argv[i]);
        return 2;
      }
      preloads.emplace_back(std::string(spec.substr(0, eq)),
                            std::string(spec.substr(eq + 1)));
    } else if (arg == "--minimize" || arg == "--minimize=incremental") {
      options.session.minimize_after_query = true;
      options.session.incremental_minimize = true;
    } else if (arg == "--minimize=full") {
      options.session.minimize_after_query = true;
      options.session.incremental_minimize = false;
    } else if (arg == "--minimize=off") {
      options.session.minimize_after_query = false;
    } else if (arg == "--prune=on") {
      options.session.prune_sweeps = true;
      options.session.verify_pruned_sweeps = false;
    } else if (arg == "--prune=off") {
      options.session.prune_sweeps = false;
      options.session.verify_pruned_sweeps = false;
    } else if (arg == "--prune=verify") {
      options.session.prune_sweeps = true;
      options.session.verify_pruned_sweeps = true;
    } else if (arg == "--trace=off") {
      options.trace.mode = xcq::server::TraceOptions::Mode::kOff;
    } else if (arg == "--trace=all") {
      options.trace.mode = xcq::server::TraceOptions::Mode::kAll;
    } else if (arg.rfind("--trace=slow:", 0) == 0) {
      char* end = nullptr;
      const double ms = std::strtod(arg.substr(13).data(), &end);
      if (end == arg.substr(13).data() || ms < 0) {
        std::fprintf(stderr, "bad --trace spec: %s\n", argv[i]);
        return 2;
      }
      options.trace.mode = xcq::server::TraceOptions::Mode::kSlow;
      options.trace.slow_threshold_s = ms / 1e3;
    } else if (arg == "--help" || arg == "-h") {
      return Usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return Usage(argv[0]);
    }
  }

  xcq::server::TcpServer server(options);
  if (!options.data_dir.empty()) {
    const xcq::Status durable = server.store().durability_status();
    if (!durable.ok()) {
      // An explicitly requested data dir that cannot be used is a
      // configuration error, not something to silently run without.
      std::fprintf(stderr, "--data-dir=%s unusable: %s\n",
                   options.data_dir.c_str(), durable.ToString().c_str());
      return 1;
    }
    const xcq::server::RecoveryStats& recovery =
        server.store().recovery_stats();
    std::printf("data dir %s: recovered %zu warm document(s)%s in %.3fs\n",
                options.data_dir.c_str(), recovery.recovered,
                recovery.errors == 0
                    ? ""
                    : xcq::StrFormat(" (%zu entr%s skipped)", recovery.errors,
                                     recovery.errors == 1 ? "y" : "ies")
                          .c_str(),
                recovery.seconds);
  }
  for (const auto& [name, path] : preloads) {
    const xcq::Status status = server.store().LoadFile(name, path);
    if (!status.ok()) {
      std::fprintf(stderr, "preload %s from %s failed: %s\n", name.c_str(),
                   path.c_str(), status.ToString().c_str());
      return 1;
    }
    std::printf("preloaded '%s' from %s\n", name.c_str(), path.c_str());
  }

  const xcq::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("xcq_serverd listening on 127.0.0.1:%u (%zu workers, "
              "%zu engine thread(s)%s)\n",
              static_cast<unsigned>(server.port()),
              server.service().worker_count(),
              options.session.engine_threads,
              options.capacity_bytes == 0
                  ? ""
                  : xcq::StrFormat(", capacity %s",
                                   xcq::HumanBytes(options.capacity_bytes)
                                       .c_str())
                        .c_str());
  std::fflush(stdout);

  // Block the shutdown signals, then atomically unblock-and-wait with
  // sigsuspend: a plain `while (!g_stop) pause()` loses a signal that
  // lands between the check and the pause and never wakes up.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  sigset_t previous;
  sigprocmask(SIG_BLOCK, &mask, &previous);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  sigset_t wait_mask = previous;
  sigdelset(&wait_mask, SIGINT);
  sigdelset(&wait_mask, SIGTERM);
  while (!g_stop) {
    sigsuspend(&wait_mask);
  }
  sigprocmask(SIG_SETMASK, &previous, nullptr);
  std::printf("shutting down after %llu connection(s)\n",
              static_cast<unsigned long long>(server.connections_accepted()));
  server.Stop();
  return 0;
}
