// Command-line query tool: run any Core XPath query against an XML file
// or one of the built-in synthetic corpora, on the compressed instance.
//
//   ./build/examples/xpath_tool <file.xml | corpus:NAME> <query> [opts]
//
// Options:
//   --plan          print the compiled algebra plan
//   --baseline      also run the uncompressed-tree baseline and compare
//   --save=<path>   save the evaluated instance (with the result
//                   selection) to a binary instance file
//   --show=<n>      print the first n selected nodes (document order,
//                   with their edge-path addresses)
//   --nodes=<n>     corpus size when using corpus:NAME (default 100000)
//
// Examples:
//   xpath_tool corpus:DBLP '//article[author["Codd"]]' --baseline
//   xpath_tool data.xml '/self::*[a/b]' --plan

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "xcq/api.h"

namespace {

int Fail(const xcq::Status& status, const char* what) {
  std::fprintf(stderr, "error (%s): %s\n", what,
               status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <file.xml | corpus:NAME> <query> "
                 "[--plan] [--baseline] [--save=PATH] [--nodes=N]\n",
                 argv[0]);
    return 2;
  }
  const std::string source = argv[1];
  const std::string query_text = argv[2];
  bool show_plan = false;
  bool run_baseline = false;
  std::string save_path;
  uint64_t nodes = 100000;
  uint64_t show = 0;
  for (int i = 3; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--plan") {
      show_plan = true;
    } else if (arg == "--baseline") {
      run_baseline = true;
    } else if (arg.rfind("--save=", 0) == 0) {
      save_path = std::string(arg.substr(7));
    } else if (arg.rfind("--nodes=", 0) == 0) {
      nodes = std::strtoull(arg.substr(8).data(), nullptr, 10);
    } else if (arg.rfind("--show=", 0) == 0) {
      show = std::strtoull(arg.substr(7).data(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return 2;
    }
  }

  // Load or generate the document.
  std::string xml;
  if (source.rfind("corpus:", 0) == 0) {
    auto corpus = xcq::corpus::FindCorpus(source.substr(7));
    if (!corpus.ok()) return Fail(corpus.status(), "corpus");
    xcq::corpus::GenerateOptions gen;
    gen.target_nodes = nodes;
    xml = (*corpus)->Generate(gen);
    std::printf("generated %s: %zu bytes\n", source.c_str(), xml.size());
  } else {
    auto contents = xcq::xml::ReadFileToString(source);
    if (!contents.ok()) return Fail(contents.status(), "read");
    xml = std::move(contents).Value();
  }

  // Parse the query; compress with exactly the needed relations.
  auto query = xcq::xpath::ParseQuery(query_text);
  if (!query.ok()) return Fail(query.status(), "query");
  auto plan = xcq::algebra::Compile(*query);
  if (!plan.ok()) return Fail(plan.status(), "compile");
  if (show_plan) {
    std::printf("normalized query: %s\nplan:\n%s", query->ToString().c_str(),
                plan->ToString().c_str());
  }
  const xcq::xpath::QueryRequirements reqs =
      xcq::xpath::CollectRequirements(*query);

  xcq::CompressOptions copts;
  copts.mode = xcq::LabelMode::kSchema;
  copts.tags = reqs.tags;
  copts.patterns = reqs.patterns;
  xcq::CompressRunStats parse_stats;
  auto instance = xcq::CompressXmlWithStats(xml, copts, &parse_stats);
  if (!instance.ok()) return Fail(instance.status(), "compress");
  std::printf(
      "parsed+compressed in %.3fs: %zu vertices, %llu RLE edges for %llu "
      "tree nodes\n",
      parse_stats.parse_seconds, instance->ReachableCount(),
      static_cast<unsigned long long>(instance->rle_edge_count()),
      static_cast<unsigned long long>(xcq::TreeNodeCount(*instance)));

  xcq::engine::EvalStats stats;
  auto result = xcq::engine::Evaluate(&*instance, *plan,
                                      xcq::engine::EvalOptions{}, &stats);
  if (!result.ok()) return Fail(result.status(), "evaluate");
  std::printf(
      "evaluated in %.4fs: %llu DAG vertices selected = %llu tree nodes; "
      "instance %llu -> %llu vertices (%llu splits)\n",
      stats.seconds,
      static_cast<unsigned long long>(
          xcq::SelectedDagNodeCount(*instance, *result)),
      static_cast<unsigned long long>(
          xcq::SelectedTreeNodeCount(*instance, *result)),
      static_cast<unsigned long long>(stats.vertices_before),
      static_cast<unsigned long long>(stats.vertices_after),
      static_cast<unsigned long long>(stats.splits));

  if (show > 0) {
    std::printf("first %llu selected node(s), document order:\n",
                static_cast<unsigned long long>(show));
    xcq::engine::EnumerateOptions eopts;
    eopts.limit = show;
    const xcq::Status enumerated = xcq::engine::EnumerateSelection(
        *instance, *result, eopts,
        [](const xcq::engine::SelectedNode& node) {
          std::string address;
          for (uint64_t position : node.edge_path) {
            address += "/" + std::to_string(position);
          }
          if (address.empty()) address = "/";
          std::printf("  #%llu  vertex v%u  address %s\n",
                      static_cast<unsigned long long>(node.preorder),
                      node.vertex, address.c_str());
        });
    if (!enumerated.ok()) return Fail(enumerated, "enumerate");
  }

  if (run_baseline) {
    auto labeled = xcq::TreeBuilder::Build(xml, reqs.patterns);
    if (!labeled.ok()) return Fail(labeled.status(), "tree build");
    xcq::Timer timer;
    auto baseline_set = xcq::baseline::Evaluate(*labeled, *plan);
    if (!baseline_set.ok()) return Fail(baseline_set.status(), "baseline");
    std::printf("baseline (uncompressed tree): %.4fs, %zu nodes selected "
                "-> %s\n",
                timer.Seconds(), baseline_set->Count(),
                baseline_set->Count() ==
                        xcq::SelectedTreeNodeCount(*instance, *result)
                    ? "MATCH"
                    : "MISMATCH (bug!)");
  }

  if (!save_path.empty()) {
    const xcq::Status saved = xcq::SaveInstance(*instance, save_path);
    if (!saved.ok()) return Fail(saved, "save");
    std::printf("instance (with result selection) saved to %s\n",
                save_path.c_str());
  }
  return 0;
}
