#ifndef XCQ_OBS_METRICS_H_
#define XCQ_OBS_METRICS_H_

/// \file metrics.h
/// The serving stack's metrics registry (docs/OBSERVABILITY.md).
///
/// Three metric kinds, all with the same hot-path contract — a *write*
/// (Increment / Observe / Set) is a handful of relaxed atomic
/// operations on a cache-line-padded shard, never a lock, never an
/// allocation:
///
///  * `Counter`   — monotonic double-valued total (Prometheus counter),
///  * `Gauge`     — last-write-wins double (Prometheus gauge),
///  * `Histogram` — fixed-bucket distribution with cumulative-bucket
///                  rendering and p50/p95/p99 readout.
///
/// Writes land on one of `kShards` cache-line-padded cells, picked by a
/// per-thread slot, so concurrent writers do not contend on one line;
/// a scrape sums the shards. Every access is a `std::atomic` operation
/// (relaxed — counters are statistically, not causally, ordered), so
/// the registry is clean under ThreadSanitizer by construction and
/// tests/obs_test.cc runs it in the CI TSAN job.
///
/// Series identity is `name + sorted label pairs` (e.g. document /
/// axis / phase). Handle creation (`Registry::GetCounter` etc.) takes a
/// registry mutex and may allocate — callers resolve handles once (at
/// document load, at server start) and keep them; only the resolved
/// handle is touched per query. `Registry::RenderPrometheus()` emits
/// the text exposition format scraped by the daemon's `METRICS` verb
/// and validated by tools/check_metrics_exposition.py.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xcq::obs {

/// \brief Sorted `key=value` pairs identifying one series of a metric.
/// Construction sorts by key; equal keys keep their relative order (the
/// registry treats duplicate keys as distinct, but don't do that).
class LabelSet {
 public:
  LabelSet() = default;
  LabelSet(std::initializer_list<std::pair<std::string, std::string>> kv);

  void Add(std::string key, std::string value);

  const std::vector<std::pair<std::string, std::string>>& pairs() const {
    return pairs_;
  }
  bool empty() const { return pairs_.empty(); }

  /// True when some label has exactly this key and value.
  bool Has(std::string_view key, std::string_view value) const;

  /// `{key="value",...}` with Prometheus escaping; "" when empty.
  std::string Render() const;

  bool operator<(const LabelSet& other) const { return pairs_ < other.pairs_; }
  bool operator==(const LabelSet& other) const {
    return pairs_ == other.pairs_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> pairs_;
};

namespace internal {

/// Shard count for the striped cells. Power of two; 16 lines cover the
/// daemon's worker-pool widths without false sharing.
inline constexpr size_t kShards = 16;

/// This thread's stable shard slot (assigned round-robin on first use).
size_t ThreadShard();

/// One cache-line-padded atomic accumulator cell.
struct alignas(64) Cell {
  std::atomic<uint64_t> count{0};
  std::atomic<double> sum{0.0};
};

/// Relaxed CAS-loop add — `std::atomic<double>::fetch_add` is C++20 but
/// not yet lock-free everywhere; the loop compiles to the same LL/SC or
/// CMPXCHG retry and stays TSAN-clean.
inline void AtomicAdd(std::atomic<double>* cell, double v) {
  double cur = cell->load(std::memory_order_relaxed);
  while (!cell->compare_exchange_weak(cur, cur + v,
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace internal

/// \brief Monotonic total. Increment is wait-free on x86 (one relaxed
/// atomic add on this thread's shard).
class Counter {
 public:
  void Increment(double v = 1.0) {
    internal::AtomicAdd(&cells_[internal::ThreadShard()].sum, v);
  }

  /// Shard-summed current value.
  double Value() const;

 private:
  internal::Cell cells_[internal::kShards];
};

/// \brief Last-write-wins value. Writes are not sharded — gauges are
/// set by one owner (typically on scrape), read by the renderer.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double v) { internal::AtomicAdd(&value_, v); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Fixed-bucket histogram. `Observe` adds to the first bucket
/// whose upper bound is >= the value (sharded, relaxed); rendering
/// emits Prometheus cumulative `_bucket{le=...}` series plus `_sum` /
/// `_count`, and `Quantile` interpolates p50/p95/p99 the same way
/// `histogram_quantile()` would.
class Histogram {
 public:
  /// A read-side snapshot: per-bucket counts (index-aligned with
  /// `bounds()`, plus one overflow slot), total count, and value sum.
  struct Snapshot {
    std::vector<uint64_t> buckets;
    uint64_t count = 0;
    double sum = 0.0;
  };

  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  /// Upper bucket bounds, ascending; the implicit +Inf bucket follows.
  const std::vector<double>& bounds() const { return bounds_; }

  Snapshot Snap() const;

  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// winning bucket; NaN-free — an empty histogram reads 0, and mass in
  /// the +Inf bucket clamps to the last finite bound.
  static double Quantile(const Snapshot& snap,
                         const std::vector<double>& bounds, double q);
  double Quantile(double q) const { return Quantile(Snap(), bounds_, q); }

  /// The default latency bucket ladder: 10µs .. 10s, 1-2.5-5 decades.
  static std::vector<double> LatencyBounds();

 private:
  std::vector<double> bounds_;
  /// cells_[shard * bucket_count + bucket].count; sum in cells_[shard*..].sum
  /// of the first bucket cell of the shard.
  std::vector<internal::Cell> cells_;
  size_t slots_;  ///< bounds_.size() + 1 (overflow).
};

/// \brief The process-wide series table.
///
/// Get* registers on first use and returns the existing handle on every
/// later call with the same (name, labels); handles stay valid for the
/// registry's lifetime (metrics are held by unique_ptr, and removal of
/// a series only unlinks it from rendering — see RemoveLabeled).
class Registry {
 public:
  Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// `help` is kept from the first registration of `name`.
  Counter* GetCounter(std::string_view name, LabelSet labels,
                      std::string_view help = {});
  Gauge* GetGauge(std::string_view name, LabelSet labels,
                  std::string_view help = {});
  /// Bounds must agree across series of one name; the first caller wins
  /// and later mismatching bounds are ignored (the name's ladder is a
  /// property of the metric, not of the series).
  Histogram* GetHistogram(std::string_view name, LabelSet labels,
                          std::vector<double> bounds,
                          std::string_view help = {});

  /// Drops every series (of any metric) carrying label `key=value` —
  /// the daemon unlists a document's series when it is evicted so
  /// scrapes do not report gauges for documents that no longer exist.
  /// The metric objects stay alive (handles may be cached), they just
  /// stop rendering.
  void RemoveLabeled(std::string_view key, std::string_view value);

  /// The text exposition format: `# HELP` / `# TYPE` per metric, one
  /// sample line per series, histograms expanded to cumulative buckets
  /// plus `_sum` / `_count` and companion `<name>_p50/p95/p99` gauges.
  std::string RenderPrometheus() const;

  /// Seconds since the registry was constructed (steady clock) — the
  /// uptime used for on-scrape rates like per-document QPS.
  double UptimeSeconds() const;

  /// Test/readout helpers: the current value of one series; 0 / absent
  /// series read as 0.
  double CounterValue(std::string_view name, const LabelSet& labels) const;
  double GaugeValue(std::string_view name, const LabelSet& labels) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    LabelSet labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    bool removed = false;
  };

  struct Metric {
    Kind kind = Kind::kCounter;
    std::string help;
    std::vector<Series> series;  ///< insertion order; rendering sorts.
  };

  Series* FindOrCreateLocked(std::string_view name, Kind kind,
                             LabelSet labels, std::string_view help);

  mutable std::shared_mutex mu_;
  std::map<std::string, Metric, std::less<>> metrics_;
  const double epoch_seconds_;  ///< steady-clock origin for UptimeSeconds.
};

}  // namespace xcq::obs

#endif  // XCQ_OBS_METRICS_H_
