#ifndef XCQ_OBS_TRACE_H_
#define XCQ_OBS_TRACE_H_

/// \file trace.h
/// Per-query phase tracing (docs/OBSERVABILITY.md §4).
///
/// A `QueryTrace` is a flat, fixed-capacity record of the phases one
/// query passed through — parse / compile / label / prune-bind / sweep
/// / minimize / serialize — each phase a span with a steady-clock start
/// offset, a duration, and a nesting depth. Spans are recorded by the
/// RAII `QueryTrace::Scope` (built on `util/timer.h`, the single
/// steady-clock path shared with the benches), so instrumenting a phase
/// is one line and an exception-safe close.
///
/// The capacity is fixed (`kMaxSpans`) and spans live inline in the
/// trace object: tracing allocates nothing on the query hot path, which
/// keeps bench_hotpath's zero-allocation gates intact. A query deep
/// enough to overflow the capacity silently drops the excess spans —
/// the totals stay right, the tail detail is sacrificed.
///
/// The daemon serializes traces as one-line JSON (`--trace=all` or
/// `--trace=slow:<ms>`); `ToJson` is that format.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "xcq/util/timer.h"

namespace xcq::obs {

/// \brief The traced phases, in canonical pipeline order.
enum class Phase : uint8_t {
  kParse = 0,     ///< XPath text -> AST.
  kCompile,       ///< AST -> algebra plan.
  kLabel,         ///< Label extraction / common-extension merge.
  kPruneBind,     ///< Path-summary abstract interpretation + regions.
  kSweep,         ///< Axis sweeps + column ops (the evaluation proper).
  kMinimize,      ///< Post-query reclaim (incremental or full).
  kSerialize,     ///< Response formatting at the protocol layer.
};

inline constexpr size_t kPhaseCount = 7;

/// Stable lower-case name used in JSON traces and metric labels.
std::string_view PhaseName(Phase phase);

/// \brief One recorded phase interval.
struct TraceSpan {
  Phase phase = Phase::kParse;
  double start_seconds = 0.0;  ///< Offset from the trace's origin.
  double duration_seconds = 0.0;
  uint8_t depth = 0;  ///< Nesting depth at open (0 = top level).
};

/// \brief The spans of one query, recorded against one steady-clock
/// origin (construction time). Copyable — it rides inside
/// `QueryOutcome` back to the serving layer.
class QueryTrace {
 public:
  static constexpr size_t kMaxSpans = 24;

  /// \brief RAII recorder: opens a span on `trace` (null = no-op), and
  /// closes it on destruction or explicit `Close()`.
  class Scope {
   public:
    Scope(QueryTrace* trace, Phase phase);
    ~Scope() { Close(); }

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    /// Ends the span now (idempotent).
    void Close();

   private:
    QueryTrace* trace_;
    Phase phase_;
    double start_seconds_ = 0.0;
    uint8_t depth_ = 0;
    bool open_ = false;
  };

  QueryTrace() = default;

  /// Seconds since this trace's construction (its span origin).
  double Elapsed() const { return timer_.Seconds(); }

  /// Records a fully-formed span directly — for phases timed elsewhere
  /// (e.g. the engine reports prune-bind seconds in EvalStats) where a
  /// Scope cannot wrap the code. `start` is an offset from the origin.
  void AddSpan(Phase phase, double start_seconds, double duration_seconds);

  size_t span_count() const { return count_; }
  const TraceSpan& span(size_t i) const { return spans_[i]; }

  /// Summed duration of every recorded span of `phase`.
  double PhaseSeconds(Phase phase) const;

  /// Spans dropped because the trace was full.
  uint64_t dropped() const { return dropped_; }

  /// One-line JSON: document, query, outcome counters supplied by the
  /// caller; spans in record order. Quotes/backslashes/control bytes in
  /// `document` and `query` are escaped.
  std::string ToJson(std::string_view document, std::string_view query,
                     uint64_t selected_tree_nodes, uint64_t splits) const;

 private:
  friend class Scope;

  Timer timer_;
  std::array<TraceSpan, kMaxSpans> spans_{};
  size_t count_ = 0;
  uint8_t depth_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace xcq::obs

#endif  // XCQ_OBS_TRACE_H_
