#include "xcq/obs/trace.h"

#include "xcq/util/string_util.h"

namespace xcq::obs {

std::string_view PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kParse:
      return "parse";
    case Phase::kCompile:
      return "compile";
    case Phase::kLabel:
      return "label";
    case Phase::kPruneBind:
      return "prune_bind";
    case Phase::kSweep:
      return "sweep";
    case Phase::kMinimize:
      return "minimize";
    case Phase::kSerialize:
      return "serialize";
  }
  return "unknown";
}

// --- Scope -----------------------------------------------------------------

QueryTrace::Scope::Scope(QueryTrace* trace, Phase phase)
    : trace_(trace), phase_(phase) {
  if (trace_ == nullptr) return;
  start_seconds_ = trace_->Elapsed();
  depth_ = trace_->depth_;
  // Saturate rather than wrap on absurd nesting; depth is diagnostic.
  if (trace_->depth_ < 255) ++trace_->depth_;
  open_ = true;
}

void QueryTrace::Scope::Close() {
  if (!open_) return;
  open_ = false;
  if (trace_->depth_ > 0) --trace_->depth_;
  const double duration = trace_->Elapsed() - start_seconds_;
  if (trace_->count_ < kMaxSpans) {
    TraceSpan& span = trace_->spans_[trace_->count_++];
    span.phase = phase_;
    span.start_seconds = start_seconds_;
    span.duration_seconds = duration;
    span.depth = depth_;
  } else {
    ++trace_->dropped_;
  }
}

// --- QueryTrace ------------------------------------------------------------

void QueryTrace::AddSpan(Phase phase, double start_seconds,
                         double duration_seconds) {
  if (count_ >= kMaxSpans) {
    ++dropped_;
    return;
  }
  TraceSpan& span = spans_[count_++];
  span.phase = phase;
  span.start_seconds = start_seconds;
  span.duration_seconds = duration_seconds;
  span.depth = depth_;
}

double QueryTrace::PhaseSeconds(Phase phase) const {
  double total = 0.0;
  for (size_t i = 0; i < count_; ++i) {
    if (spans_[i].phase == phase) total += spans_[i].duration_seconds;
  }
  return total;
}

namespace {

void AppendJsonString(std::string* out, std::string_view s) {
  *out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

}  // namespace

std::string QueryTrace::ToJson(std::string_view document,
                               std::string_view query,
                               uint64_t selected_tree_nodes,
                               uint64_t splits) const {
  std::string out = "{\"document\":";
  AppendJsonString(&out, document);
  out += ",\"query\":";
  AppendJsonString(&out, query);
  out += StrFormat(",\"tree\":%llu,\"splits\":%llu,\"total_s\":%.6f",
                   static_cast<unsigned long long>(selected_tree_nodes),
                   static_cast<unsigned long long>(splits), Elapsed());
  if (dropped_ > 0) {
    out += StrFormat(",\"dropped_spans\":%llu",
                     static_cast<unsigned long long>(dropped_));
  }
  out += ",\"spans\":[";
  for (size_t i = 0; i < count_; ++i) {
    const TraceSpan& span = spans_[i];
    if (i > 0) out += ',';
    out += StrFormat(
        "{\"phase\":\"%.*s\",\"start_s\":%.6f,\"dur_s\":%.6f,"
        "\"depth\":%u}",
        static_cast<int>(PhaseName(span.phase).size()),
        PhaseName(span.phase).data(), span.start_seconds,
        span.duration_seconds, static_cast<unsigned>(span.depth));
  }
  out += "]}";
  return out;
}

}  // namespace xcq::obs
