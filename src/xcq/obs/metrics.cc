#include "xcq/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <mutex>

#include "xcq/util/string_util.h"
#include "xcq/util/timer.h"

namespace xcq::obs {

namespace internal {

size_t ThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

}  // namespace internal

// --- LabelSet --------------------------------------------------------------

LabelSet::LabelSet(
    std::initializer_list<std::pair<std::string, std::string>> kv) {
  for (const auto& [key, value] : kv) pairs_.emplace_back(key, value);
  std::stable_sort(pairs_.begin(), pairs_.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
}

void LabelSet::Add(std::string key, std::string value) {
  pairs_.emplace_back(std::move(key), std::move(value));
  std::stable_sort(pairs_.begin(), pairs_.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
}

bool LabelSet::Has(std::string_view key, std::string_view value) const {
  for (const auto& [k, v] : pairs_) {
    if (k == key && v == value) return true;
  }
  return false;
}

namespace {

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Renders a sample value: integers without a fractional tail so
/// counters read naturally, everything else shortest-round-trip-ish.
std::string RenderValue(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.9g", v);
}

}  // namespace

std::string LabelSet::Render() const {
  if (pairs_.empty()) return {};
  std::string out = "{";
  for (size_t i = 0; i < pairs_.size(); ++i) {
    if (i > 0) out += ',';
    out += pairs_[i].first;
    out += "=\"";
    out += EscapeLabelValue(pairs_[i].second);
    out += '"';
  }
  out += '}';
  return out;
}

// --- Counter ---------------------------------------------------------------

double Counter::Value() const {
  double total = 0.0;
  for (const internal::Cell& cell : cells_) {
    total += cell.sum.load(std::memory_order_relaxed);
  }
  return total;
}

// --- Histogram -------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), slots_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
  cells_ = std::vector<internal::Cell>(internal::kShards * slots_);
}

void Histogram::Observe(double value) {
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();  // == bounds_.size() for the +Inf overflow slot
  internal::Cell& cell =
      cells_[internal::ThreadShard() * slots_ + bucket];
  cell.count.fetch_add(1, std::memory_order_relaxed);
  internal::AtomicAdd(&cell.sum, value);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  snap.buckets.assign(slots_, 0);
  for (size_t shard = 0; shard < internal::kShards; ++shard) {
    for (size_t b = 0; b < slots_; ++b) {
      const internal::Cell& cell = cells_[shard * slots_ + b];
      const uint64_t n = cell.count.load(std::memory_order_relaxed);
      snap.buckets[b] += n;
      snap.count += n;
      snap.sum += cell.sum.load(std::memory_order_relaxed);
    }
  }
  return snap;
}

double Histogram::Quantile(const Snapshot& snap,
                           const std::vector<double>& bounds, double q) {
  if (snap.count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // The rank is 1-based so q=1 lands on the last observation's bucket.
  const double rank = q * static_cast<double>(snap.count);
  uint64_t seen = 0;
  for (size_t b = 0; b < snap.buckets.size(); ++b) {
    const uint64_t in_bucket = snap.buckets[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      if (b >= bounds.size()) {
        // Overflow bucket: no finite upper bound; clamp to the ladder.
        return bounds.empty() ? snap.sum / static_cast<double>(snap.count)
                              : bounds.back();
      }
      const double lower = b == 0 ? 0.0 : bounds[b - 1];
      const double upper = bounds[b];
      const double into =
          (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::min(1.0, std::max(0.0, into));
    }
    seen += in_bucket;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

std::vector<double> Histogram::LatencyBounds() {
  return {1e-5,   2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3,
          2.5e-3, 5e-3,   1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1,
          5e-1,   1.0,    2.5,  5.0,  10.0};
}

// --- Registry --------------------------------------------------------------

namespace {
/// Steady-clock seconds since an arbitrary process-local origin.
double SteadyNowSeconds() {
  static const Timer origin;  // process-wide origin; Timer is steady-clock
  return origin.Seconds();
}
}  // namespace

Registry::Registry() : epoch_seconds_(SteadyNowSeconds()) {}

double Registry::UptimeSeconds() const {
  return SteadyNowSeconds() - epoch_seconds_;
}

Registry::Series* Registry::FindOrCreateLocked(std::string_view name,
                                               Kind kind, LabelSet labels,
                                               std::string_view help) {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Metric metric;
    metric.kind = kind;
    metric.help = std::string(help);
    it = metrics_.emplace(std::string(name), std::move(metric)).first;
  }
  Metric& metric = it->second;
  for (Series& series : metric.series) {
    if (series.labels == labels) {
      series.removed = false;  // re-registration resurrects the series
      return &series;
    }
  }
  metric.series.emplace_back();
  Series& series = metric.series.back();
  series.labels = std::move(labels);
  return &series;
}

Counter* Registry::GetCounter(std::string_view name, LabelSet labels,
                              std::string_view help) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  Series* series =
      FindOrCreateLocked(name, Kind::kCounter, std::move(labels), help);
  if (series->counter == nullptr) {
    series->counter = std::make_unique<Counter>();
  }
  return series->counter.get();
}

Gauge* Registry::GetGauge(std::string_view name, LabelSet labels,
                          std::string_view help) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  Series* series =
      FindOrCreateLocked(name, Kind::kGauge, std::move(labels), help);
  if (series->gauge == nullptr) {
    series->gauge = std::make_unique<Gauge>();
  }
  return series->gauge.get();
}

Histogram* Registry::GetHistogram(std::string_view name, LabelSet labels,
                                  std::vector<double> bounds,
                                  std::string_view help) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  Series* series =
      FindOrCreateLocked(name, Kind::kHistogram, std::move(labels), help);
  if (series->histogram == nullptr) {
    series->histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return series->histogram.get();
}

void Registry::RemoveLabeled(std::string_view key, std::string_view value) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (auto& [name, metric] : metrics_) {
    for (Series& series : metric.series) {
      if (series.labels.Has(key, value)) series.removed = true;
    }
  }
}

std::string Registry::RenderPrometheus() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::string out;
  for (const auto& [name, metric] : metrics_) {
    // Collect live series first so fully-removed metrics emit nothing.
    std::vector<const Series*> live;
    for (const Series& series : metric.series) {
      if (!series.removed) live.push_back(&series);
    }
    if (live.empty()) continue;
    std::sort(live.begin(), live.end(),
              [](const Series* a, const Series* b) {
                return a->labels < b->labels;
              });

    if (!metric.help.empty()) {
      out += "# HELP " + name + " " + metric.help + "\n";
    }
    const char* type = metric.kind == Kind::kCounter   ? "counter"
                       : metric.kind == Kind::kGauge   ? "gauge"
                                                       : "histogram";
    out += "# TYPE " + name + " " + type + "\n";

    for (const Series* series : live) {
      const std::string labels = series->labels.Render();
      switch (metric.kind) {
        case Kind::kCounter:
          out += name + labels + " " +
                 RenderValue(series->counter->Value()) + "\n";
          break;
        case Kind::kGauge:
          out += name + labels + " " +
                 RenderValue(series->gauge->Value()) + "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& h = *series->histogram;
          const Histogram::Snapshot snap = h.Snap();
          uint64_t cumulative = 0;
          for (size_t b = 0; b < h.bounds().size(); ++b) {
            cumulative += snap.buckets[b];
            LabelSet with_le = series->labels;
            with_le.Add("le", StrFormat("%.9g", h.bounds()[b]));
            out += name + "_bucket" + with_le.Render() + " " +
                   RenderValue(static_cast<double>(cumulative)) + "\n";
          }
          LabelSet inf = series->labels;
          inf.Add("le", "+Inf");
          out += name + "_bucket" + inf.Render() + " " +
                 RenderValue(static_cast<double>(snap.count)) + "\n";
          out += name + "_sum" + labels + " " + RenderValue(snap.sum) +
                 "\n";
          out += name + "_count" + labels + " " +
                 RenderValue(static_cast<double>(snap.count)) + "\n";
          break;
        }
      }
    }

    // p50/p95/p99 companions: distinct gauge metrics, so the quantile
    // readout the STATS view and the watch client use is also on the
    // scrape surface without bending the histogram type's grammar.
    if (metric.kind == Kind::kHistogram) {
      const struct {
        const char* suffix;
        double q;
      } quantiles[] = {{"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}};
      for (const auto& [suffix, q] : quantiles) {
        out += "# TYPE " + name + suffix + " gauge\n";
        for (const Series* series : live) {
          out += name + suffix + series->labels.Render() + " " +
                 RenderValue(series->histogram->Quantile(q)) + "\n";
        }
      }
    }
  }
  return out;
}

double Registry::CounterValue(std::string_view name,
                              const LabelSet& labels) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = metrics_.find(name);
  if (it == metrics_.end()) return 0.0;
  for (const Series& series : it->second.series) {
    if (series.labels == labels && series.counter != nullptr) {
      return series.counter->Value();
    }
  }
  return 0.0;
}

double Registry::GaugeValue(std::string_view name,
                            const LabelSet& labels) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = metrics_.find(name);
  if (it == metrics_.end()) return 0.0;
  for (const Series& series : it->second.series) {
    if (series.labels == labels && series.gauge != nullptr) {
      return series.gauge->Value();
    }
  }
  return 0.0;
}

}  // namespace xcq::obs
