#ifndef XCQ_ALGEBRA_COMPILER_H_
#define XCQ_ALGEBRA_COMPILER_H_

/// \file compiler.h
/// Compiles Core XPath ASTs into the set algebra of Sec. 3.1.
///
/// The central idea (from [14]): the main path is computed *forward* from
/// the root / context, while predicate paths are *reversed* — every axis
/// inside a condition becomes its inverse, so the whole query evaluates
/// with node sets only, never binary relations. Fig. 3 of the paper shows
/// the resulting query tree for
/// `/descendant::a/child::b[child::c/child::d or not(following::*)]`; this
/// compiler reproduces exactly that shape (with common subexpressions
/// shared).

#include "xcq/algebra/op.h"
#include "xcq/util/result.h"
#include "xcq/xpath/ast.h"

namespace xcq::algebra {

/// \brief Compiles a parsed query into an executable plan.
Result<QueryPlan> Compile(const xpath::Query& query);

/// \brief Convenience: parse + compile.
Result<QueryPlan> CompileString(std::string_view query_text);

}  // namespace xcq::algebra

#endif  // XCQ_ALGEBRA_COMPILER_H_
