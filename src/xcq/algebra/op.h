#ifndef XCQ_ALGEBRA_OP_H_
#define XCQ_ALGEBRA_OP_H_

/// \file op.h
/// The Core XPath set algebra (Sec. 3.1): expressions over node sets
/// built from relation leaves, `{root}`, `V`, the query context, the
/// binary operations `∪ ∩ −`, axis applications, and the root filter
/// `V|root(S) = { V if root ∈ S, ∅ otherwise }`.
///
/// A `QueryPlan` is the expression flattened into evaluation order
/// (post-order, common subexpressions shared); both the compressed-DAG
/// engine and the uncompressed-tree baseline interpret the same plan.

#include <cstdint>
#include <string>
#include <vector>

#include "xcq/xpath/ast.h"

namespace xcq::algebra {

enum class OpKind {
  kRelation,    ///< All nodes in a named unary relation (tag or `str:`).
  kRoot,        ///< {root}.
  kAllNodes,    ///< V.
  kContext,     ///< The caller-supplied context node set.
  kAxis,        ///< χ(input0).
  kUnion,       ///< input0 ∪ input1.
  kIntersect,   ///< input0 ∩ input1.
  kDifference,  ///< input0 − input1.
  kRootFilter,  ///< V|root(input0).
};

const char* OpKindName(OpKind kind);

struct Op {
  OpKind kind = OpKind::kAllNodes;
  xpath::Axis axis = xpath::Axis::kSelf;  ///< kAxis only.
  std::string relation;                   ///< kRelation only.
  int32_t input0 = -1;
  int32_t input1 = -1;
};

/// \brief A compiled query: ops in evaluation order; the last op's node
/// set is the query result.
struct QueryPlan {
  std::vector<Op> ops;

  /// Human-readable listing, one op per line.
  std::string ToString() const;

  /// Number of axis applications that can split vertices on a DAG
  /// (i.e. non-upward axes; Cor. 3.7's tree-pattern queries have zero).
  size_t SplittingAxisCount() const;
};

}  // namespace xcq::algebra

#endif  // XCQ_ALGEBRA_OP_H_
