#include "xcq/algebra/op.h"

#include "xcq/util/string_util.h"

namespace xcq::algebra {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kRelation:
      return "Relation";
    case OpKind::kRoot:
      return "Root";
    case OpKind::kAllNodes:
      return "AllNodes";
    case OpKind::kContext:
      return "Context";
    case OpKind::kAxis:
      return "Axis";
    case OpKind::kUnion:
      return "Union";
    case OpKind::kIntersect:
      return "Intersect";
    case OpKind::kDifference:
      return "Difference";
    case OpKind::kRootFilter:
      return "RootFilter";
  }
  return "?";
}

std::string QueryPlan::ToString() const {
  std::string out;
  for (size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    switch (op.kind) {
      case OpKind::kRelation:
        out += StrFormat("%3zu: Relation(%s)\n", i, op.relation.c_str());
        break;
      case OpKind::kRoot:
        out += StrFormat("%3zu: Root\n", i);
        break;
      case OpKind::kAllNodes:
        out += StrFormat("%3zu: AllNodes\n", i);
        break;
      case OpKind::kContext:
        out += StrFormat("%3zu: Context\n", i);
        break;
      case OpKind::kAxis:
        out += StrFormat("%3zu: %s(%d)\n", i, xpath::AxisName(op.axis),
                         op.input0);
        break;
      case OpKind::kUnion:
        out += StrFormat("%3zu: Union(%d, %d)\n", i, op.input0, op.input1);
        break;
      case OpKind::kIntersect:
        out += StrFormat("%3zu: Intersect(%d, %d)\n", i, op.input0,
                         op.input1);
        break;
      case OpKind::kDifference:
        out += StrFormat("%3zu: Difference(%d, %d)\n", i, op.input0,
                         op.input1);
        break;
      case OpKind::kRootFilter:
        out += StrFormat("%3zu: RootFilter(%d)\n", i, op.input0);
        break;
    }
  }
  return out;
}

size_t QueryPlan::SplittingAxisCount() const {
  size_t count = 0;
  for (const Op& op : ops) {
    if (op.kind == OpKind::kAxis && !xpath::IsUpwardAxis(op.axis)) ++count;
  }
  return count;
}

}  // namespace xcq::algebra
