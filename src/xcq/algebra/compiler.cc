#include "xcq/algebra/compiler.h"

#include <map>
#include <tuple>
#include <utility>

#include "xcq/instance/schema.h"
#include "xcq/xpath/parser.h"

namespace xcq::algebra {

namespace {

using xpath::Axis;
using xpath::Condition;
using xpath::LocationPath;
using xpath::Step;

/// Builds a plan with hash-consed ops (structurally identical
/// subexpressions compile to one op).
class PlanBuilder {
 public:
  int32_t Relation(std::string name) {
    Op op;
    op.kind = OpKind::kRelation;
    op.relation = std::move(name);
    return Emit(std::move(op));
  }
  int32_t Leaf(OpKind kind) {
    Op op;
    op.kind = kind;
    return Emit(std::move(op));
  }
  int32_t ApplyAxis(Axis axis, int32_t input) {
    Op op;
    op.kind = OpKind::kAxis;
    op.axis = axis;
    op.input0 = input;
    return Emit(std::move(op));
  }
  int32_t Binary(OpKind kind, int32_t a, int32_t b) {
    // Union/intersection are commutative; canonical operand order
    // improves sharing.
    if ((kind == OpKind::kUnion || kind == OpKind::kIntersect) && a > b) {
      std::swap(a, b);
    }
    Op op;
    op.kind = kind;
    op.input0 = a;
    op.input1 = b;
    return Emit(std::move(op));
  }
  int32_t RootFilter(int32_t input) {
    Op op;
    op.kind = OpKind::kRootFilter;
    op.input0 = input;
    return Emit(std::move(op));
  }

  QueryPlan Finish(int32_t result) {
    // The result must be the last op; if sharing placed it earlier, add a
    // no-op union with itself? Instead simply rotate: evaluation order is
    // already topological, and the engine returns ops.back() — so append
    // an alias only when needed.
    if (result != static_cast<int32_t>(plan_.ops.size()) - 1) {
      Op op;
      op.kind = OpKind::kUnion;
      op.input0 = result;
      op.input1 = result;
      plan_.ops.push_back(std::move(op));
    }
    return std::move(plan_);
  }

 private:
  using Key = std::tuple<OpKind, Axis, std::string, int32_t, int32_t>;

  int32_t Emit(Op op) {
    Key key{op.kind, op.axis, op.relation, op.input0, op.input1};
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    const int32_t index = static_cast<int32_t>(plan_.ops.size());
    plan_.ops.push_back(std::move(op));
    memo_.emplace(std::move(key), index);
    return index;
  }

  QueryPlan plan_;
  std::map<Key, int32_t> memo_;
};

class Compiler {
 public:
  Result<QueryPlan> Run(const xpath::Query& query) {
    const int32_t start =
        builder_.Leaf(query.path.absolute ? OpKind::kRoot : OpKind::kContext);
    XCQ_ASSIGN_OR_RETURN(const int32_t result,
                         CompileForward(query.path, start));
    return builder_.Finish(result);
  }

 private:
  /// Forward compilation of the main path: each step applies its axis to
  /// the running set, then filters by node test and predicates.
  Result<int32_t> CompileForward(const LocationPath& path, int32_t start) {
    int32_t cur = start;
    for (const Step& step : path.steps) {
      cur = builder_.ApplyAxis(step.axis, cur);
      if (step.node_test != "*") {
        cur = builder_.Binary(OpKind::kIntersect, cur,
                              builder_.Relation(step.node_test));
      }
      for (const auto& predicate : step.predicates) {
        XCQ_ASSIGN_OR_RETURN(const int32_t cond,
                             CompileCondition(*predicate));
        cur = builder_.Binary(OpKind::kIntersect, cur, cond);
      }
    }
    return cur;
  }

  /// Compiles a condition to the set of nodes at which it holds.
  Result<int32_t> CompileCondition(const Condition& condition) {
    switch (condition.kind) {
      case Condition::Kind::kAnd: {
        XCQ_ASSIGN_OR_RETURN(const int32_t l,
                             CompileCondition(*condition.lhs));
        XCQ_ASSIGN_OR_RETURN(const int32_t r,
                             CompileCondition(*condition.rhs));
        return builder_.Binary(OpKind::kIntersect, l, r);
      }
      case Condition::Kind::kOr: {
        XCQ_ASSIGN_OR_RETURN(const int32_t l,
                             CompileCondition(*condition.lhs));
        XCQ_ASSIGN_OR_RETURN(const int32_t r,
                             CompileCondition(*condition.rhs));
        return builder_.Binary(OpKind::kUnion, l, r);
      }
      case Condition::Kind::kNot: {
        XCQ_ASSIGN_OR_RETURN(const int32_t inner,
                             CompileCondition(*condition.lhs));
        return builder_.Binary(OpKind::kDifference,
                               builder_.Leaf(OpKind::kAllNodes), inner);
      }
      case Condition::Kind::kString:
        return builder_.Relation(
            Schema::StringRelationName(condition.string_pattern));
      case Condition::Kind::kPath:
        return CompilePathCondition(condition.path);
    }
    return Status::Internal("unreachable condition kind");
  }

  /// Reversed compilation of an existential path test (Sec. 3.1):
  ///
  ///   S_k     = nodes matching the last step's test + predicates
  ///   S_i     = test_i ∩ preds_i ∩ Inverse(axis_{i+1})(S_{i+1})
  ///   result  = Inverse(axis_1)(S_1)          -- relative paths
  ///   result  = V|root(Inverse(axis_1)(S_1))  -- absolute paths
  Result<int32_t> CompilePathCondition(const LocationPath& path) {
    if (path.steps.empty()) {
      return Status::Internal("empty path inside a predicate");
    }
    int32_t cur = -1;
    for (size_t i = path.steps.size(); i-- > 0;) {
      const Step& step = path.steps[i];
      int32_t set = -1;
      if (step.node_test != "*") {
        set = builder_.Relation(step.node_test);
      }
      for (const auto& predicate : step.predicates) {
        XCQ_ASSIGN_OR_RETURN(const int32_t cond,
                             CompileCondition(*predicate));
        set = set < 0 ? cond
                      : builder_.Binary(OpKind::kIntersect, set, cond);
      }
      if (cur >= 0) {
        const int32_t stepped = builder_.ApplyAxis(
            xpath::InverseAxis(path.steps[i + 1].axis), cur);
        set = set < 0 ? stepped
                      : builder_.Binary(OpKind::kIntersect, set, stepped);
      }
      if (set < 0) set = builder_.Leaf(OpKind::kAllNodes);
      cur = set;
    }
    cur = builder_.ApplyAxis(xpath::InverseAxis(path.steps[0].axis), cur);
    if (path.absolute) cur = builder_.RootFilter(cur);
    return cur;
  }

  PlanBuilder builder_;
};

}  // namespace

Result<QueryPlan> Compile(const xpath::Query& query) {
  Compiler compiler;
  return compiler.Run(query);
}

Result<QueryPlan> CompileString(std::string_view query_text) {
  XCQ_ASSIGN_OR_RETURN(const xpath::Query query,
                       xpath::ParseQuery(query_text));
  return Compile(query);
}

}  // namespace xcq::algebra
