#ifndef XCQ_API_H_
#define XCQ_API_H_

/// \file api.h
/// Umbrella header: the public surface of the xcq library.
///
/// Typical usage (see examples/quickstart.cpp for a runnable version):
///
/// \code
///   // 1. Parse + compress in one pass, tracking what the query needs.
///   auto query = xcq::xpath::ParseQuery("//book[author[\"Vianu\"]]");
///   auto reqs = xcq::xpath::CollectRequirements(*query);
///   xcq::CompressOptions copts;
///   copts.mode = xcq::LabelMode::kSchema;
///   copts.tags = reqs.tags;
///   copts.patterns = reqs.patterns;
///   auto instance = xcq::CompressXml(xml_text, copts);
///
///   // 2. Compile and evaluate on the compressed instance.
///   auto plan = xcq::algebra::Compile(*query);
///   auto result = xcq::engine::Evaluate(&*instance, *plan);
///
///   // 3. Count / decode the selection.
///   uint64_t hits =
///       xcq::SelectedTreeNodeCount(*instance, *result);
/// \endcode
///
/// For serving many queries over one document, prefer the session layer,
/// which accumulates one compressed instance across queries (merging in
/// missing labels via common extensions) and can reclaim split growth
/// after every query with the incremental in-place minimization:
///
/// \code
///   xcq::SessionOptions sopts;
///   sopts.minimize_after_query = true;  // incremental_minimize is the
///                                       // default reclaim implementation
///   auto session = xcq::QuerySession::Open(xml_text, sopts);
///   auto outcome = session->Run("//book[author[\"Vianu\"]]");
///   uint64_t tree_hits = outcome->selected_tree_nodes;
/// \endcode
///
/// Above the session sits `xcq::server::DocumentStore` (a named LRU
/// cache of sessions) and the `xcq_serverd` daemon — see docs/SERVER.md;
/// docs/INTERNALS.md walks the representation and maintenance machinery.
///
/// These examples are kept honest by tests/api_smoke_test.cc, which
/// compiles and runs the same calls; keep the two in sync.

#include "xcq/algebra/compiler.h"
#include "xcq/algebra/op.h"
#include "xcq/baseline/tree_evaluator.h"
#include "xcq/compress/common_extension.h"
#include "xcq/compress/compressor.h"
#include "xcq/compress/dag_builder.h"
#include "xcq/compress/decompress.h"
#include "xcq/compress/minimize.h"
#include "xcq/compress/verify.h"
#include "xcq/corpus/generator.h"
#include "xcq/corpus/queries.h"
#include "xcq/corpus/registry.h"
#include "xcq/engine/batch.h"
#include "xcq/engine/enumerate.h"
#include "xcq/engine/evaluator.h"
#include "xcq/instance/instance.h"
#include "xcq/instance/instance_io.h"
#include "xcq/instance/schema.h"
#include "xcq/instance/stats.h"
#include "xcq/server/document_store.h"
#include "xcq/server/protocol.h"
#include "xcq/server/query_service.h"
#include "xcq/server/tcp_server.h"
#include "xcq/session/query_session.h"
#include "xcq/tree/tree_builder.h"
#include "xcq/tree/tree_skeleton.h"
#include "xcq/util/result.h"
#include "xcq/util/status.h"
#include "xcq/util/timer.h"
#include "xcq/xml/sax_parser.h"
#include "xcq/xml/writer.h"
#include "xcq/xpath/parser.h"

#endif  // XCQ_API_H_
