#include "xcq/baseline/tree_evaluator.h"

#include <string_view>
#include <vector>

#include "xcq/instance/schema.h"

namespace xcq::baseline {

namespace {

using algebra::Op;
using algebra::OpKind;
using xpath::Axis;

/// All axis functions are single linear passes exploiting the preorder id
/// assignment of `TreeSkeleton` (parents precede children).
class TreeRunner {
 public:
  TreeRunner(const LabeledTree& labeled, const TreeEvalOptions& options)
      : labeled_(labeled),
        tree_(labeled.tree),
        n_(labeled.tree.node_count()),
        options_(options) {}

  Result<DynamicBitset> Run(const algebra::QueryPlan& plan) {
    std::vector<DynamicBitset> sets(plan.ops.size());
    for (size_t i = 0; i < plan.ops.size(); ++i) {
      const Op& op = plan.ops[i];
      switch (op.kind) {
        case OpKind::kRelation:
          sets[i] = RelationSet(op.relation);
          break;
        case OpKind::kRoot: {
          sets[i] = DynamicBitset(n_);
          sets[i].Set(tree_.root());
          break;
        }
        case OpKind::kAllNodes: {
          sets[i] = DynamicBitset(n_);
          sets[i].SetAll();
          break;
        }
        case OpKind::kContext: {
          if (options_.context != nullptr) {
            if (options_.context->size() != n_) {
              return Status::InvalidArgument(
                  "context bitset size does not match the tree");
            }
            sets[i] = *options_.context;
          } else {
            sets[i] = DynamicBitset(n_);
            sets[i].Set(tree_.root());
          }
          break;
        }
        case OpKind::kUnion:
          sets[i] = sets[op.input0];
          sets[i] |= sets[op.input1];
          break;
        case OpKind::kIntersect:
          sets[i] = sets[op.input0];
          sets[i] &= sets[op.input1];
          break;
        case OpKind::kDifference:
          sets[i] = sets[op.input0];
          sets[i] -= sets[op.input1];
          break;
        case OpKind::kRootFilter: {
          sets[i] = DynamicBitset(n_);
          if (sets[op.input0].Test(tree_.root())) sets[i].SetAll();
          break;
        }
        case OpKind::kAxis:
          sets[i] = ApplyAxis(op.axis, sets[op.input0]);
          break;
      }
    }
    return std::move(sets.back());
  }

 private:
  DynamicBitset RelationSet(std::string_view name) const {
    std::string_view pattern;
    if (Schema::ParseStringRelationName(name, &pattern)) {
      return labeled_.NodesMatching(pattern);
    }
    return tree_.NodesWithTag(name);
  }

  DynamicBitset ApplyAxis(Axis axis, const DynamicBitset& src) const {
    switch (axis) {
      case Axis::kSelf:
        return src;
      case Axis::kChild:
        return Child(src);
      case Axis::kDescendant:
        return Descendant(src, /*or_self=*/false);
      case Axis::kDescendantOrSelf:
        return Descendant(src, /*or_self=*/true);
      case Axis::kParent:
        return Parent(src);
      case Axis::kAncestor:
        return Ancestor(src, /*or_self=*/false);
      case Axis::kAncestorOrSelf:
        return Ancestor(src, /*or_self=*/true);
      case Axis::kFollowingSibling:
        return FollowingSibling(src);
      case Axis::kPrecedingSibling:
        return PrecedingSibling(src);
      case Axis::kFollowing:
        return Descendant(
            FollowingSibling(Ancestor(src, /*or_self=*/true)),
            /*or_self=*/true);
      case Axis::kPreceding:
        return Descendant(
            PrecedingSibling(Ancestor(src, /*or_self=*/true)),
            /*or_self=*/true);
    }
    return DynamicBitset(n_);
  }

  DynamicBitset Child(const DynamicBitset& src) const {
    DynamicBitset out(n_);
    for (TreeNodeId v = 1; v < n_; ++v) {
      if (src.Test(tree_.Parent(v))) out.Set(v);
    }
    return out;
  }

  DynamicBitset Descendant(const DynamicBitset& src, bool or_self) const {
    DynamicBitset out(n_);
    // Preorder: out[parent] is final before any child reads it.
    for (TreeNodeId v = 1; v < n_; ++v) {
      const TreeNodeId p = tree_.Parent(v);
      if (src.Test(p) || out.Test(p)) out.Set(v);
    }
    if (or_self) out |= src;
    return out;
  }

  DynamicBitset Parent(const DynamicBitset& src) const {
    DynamicBitset out(n_);
    src.ForEach([&](size_t v) {
      if (v != tree_.root()) out.Set(tree_.Parent(static_cast<TreeNodeId>(v)));
    });
    return out;
  }

  DynamicBitset Ancestor(const DynamicBitset& src, bool or_self) const {
    DynamicBitset out(n_);
    // Reverse preorder: children processed before their parent.
    for (TreeNodeId v = static_cast<TreeNodeId>(n_); v-- > 1;) {
      if (src.Test(v) || out.Test(v)) out.Set(tree_.Parent(v));
    }
    if (or_self) out |= src;
    return out;
  }

  DynamicBitset FollowingSibling(const DynamicBitset& src) const {
    DynamicBitset out(n_);
    src.ForEach([&](size_t v) {
      for (TreeNodeId s = tree_.NextSibling(static_cast<TreeNodeId>(v));
           s != kNoTreeNode; s = tree_.NextSibling(s)) {
        if (out.Test(s)) break;  // the rest of the chain is already marked
        out.Set(s);
      }
    });
    return out;
  }

  DynamicBitset PrecedingSibling(const DynamicBitset& src) const {
    DynamicBitset out(n_);
    src.ForEach([&](size_t v) {
      for (TreeNodeId s = tree_.PrevSibling(static_cast<TreeNodeId>(v));
           s != kNoTreeNode; s = tree_.PrevSibling(s)) {
        if (out.Test(s)) break;
        out.Set(s);
      }
    });
    return out;
  }

  const LabeledTree& labeled_;
  const TreeSkeleton& tree_;
  const size_t n_;
  const TreeEvalOptions& options_;
};

}  // namespace

Result<DynamicBitset> Evaluate(const LabeledTree& labeled,
                               const algebra::QueryPlan& plan,
                               const TreeEvalOptions& options) {
  if (plan.ops.empty()) {
    return Status::InvalidArgument("Evaluate: empty plan");
  }
  if (labeled.tree.empty()) {
    return Status::InvalidArgument("Evaluate: empty tree");
  }
  TreeRunner runner(labeled, options);
  return runner.Run(plan);
}

}  // namespace xcq::baseline
