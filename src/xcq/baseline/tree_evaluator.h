#ifndef XCQ_BASELINE_TREE_EVALUATOR_H_
#define XCQ_BASELINE_TREE_EVALUATOR_H_

/// \file tree_evaluator.h
/// The uncompressed baseline: Core XPath over a plain tree skeleton in
/// O(|Q|·|T|) time (Sec. 3.1, following [14]).
///
/// It interprets the *same* compiled `QueryPlan` as the DAG engine, which
/// makes it both the comparison system for the paper's performance claims
/// and the differential-testing oracle for the DAG engine: on any
/// document, decompressing the DAG engine's result must yield exactly
/// this evaluator's node set.

#include "xcq/algebra/op.h"
#include "xcq/tree/tree_builder.h"
#include "xcq/util/bitset.h"
#include "xcq/util/result.h"

namespace xcq::baseline {

struct TreeEvalOptions {
  /// Context node set; null means {root}.
  const DynamicBitset* context = nullptr;
};

/// \brief Evaluates `plan` over `labeled` and returns the selected node
/// set (bitset over tree node ids).
Result<DynamicBitset> Evaluate(const LabeledTree& labeled,
                               const algebra::QueryPlan& plan,
                               const TreeEvalOptions& options = {});

}  // namespace xcq::baseline

#endif  // XCQ_BASELINE_TREE_EVALUATOR_H_
