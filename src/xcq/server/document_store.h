#ifndef XCQ_SERVER_DOCUMENT_STORE_H_
#define XCQ_SERVER_DOCUMENT_STORE_H_

/// \file document_store.h
/// Named cache of compressed instances for the query daemon.
///
/// The paper's deployment argument (Sec. 2.3/4): compress once, keep the
/// small DAG resident, and answer an unbounded query stream without ever
/// touching the original XML again. `DocumentStore` is that residence: a
/// map from names to `StoredDocument`s, each wrapping a `QuerySession`
/// whose accumulated instance is the cached artifact.
///
/// Concurrency model:
///  * The store's map is guarded by a `std::shared_mutex` — lookups and
///    STATS take it shared; LOAD / EVICT take it exclusive.
///  * Each `StoredDocument` has its own mutex. Query evaluation *mutates*
///    the instance (splits, result relations, label merges), so
///    evaluation holds the document lock exclusively; concurrent queries
///    against one document serialize per document while different
///    documents proceed in parallel. This is what makes a concurrent
///    query storm bit-identical to single-threaded evaluation.
///
/// Capacity: `StoreOptions::capacity_bytes` bounds the summed
/// `Instance::MemoryFootprint()` of cached instances. Loads beyond the
/// budget evict least-recently-used documents (never the one being
/// loaded). Footprints are refreshed after every evaluation, since
/// splitting queries grow instances; with
/// `SessionOptions::minimize_after_query` the refresh happens after the
/// re-minimization pass (incremental or full), so the accounting sees
/// the reclaimed size — including the in-instance hash-cons cache the
/// incremental pass keeps (`MinimizeCache`), which is real heap.
///
/// Durability (docs/SERVER.md §Persistence): with a non-empty
/// `StoreOptions::data_dir` every document whose compressed instance
/// exists is also spilled to disk as a checksummed `.xcqi` file, and a
/// manifest maps names to spill files. A document is then in one of
/// three states:
///
///   resident — a `StoredDocument` in `docs_`; serves queries.
///   warm     — no session in memory, but a spill + manifest entry; the
///              first `Acquire()` faults it back in via `FromInstance`
///              (zero source re-parses), single-flight per document.
///   cold     — nothing; only LOAD can (re)create it.
///
/// Restart replays the manifest and registers warm entries lazily, so
/// startup is O(manifest), not O(corpus). Capacity eviction and EVICT
/// demote a spill-backed resident to warm instead of discarding it.
/// Spills are rewritten whenever a query grows the tracked label set,
/// so a SIGKILL loses at most the labels merged since the last spill —
/// never the document. All spill/manifest writes are atomic
/// (temp + fsync + rename); recovery tolerates any torn artifact by
/// degrading that one document to a cold miss.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "xcq/obs/metrics.h"
#include "xcq/obs/trace.h"
#include "xcq/session/query_session.h"
#include "xcq/util/result.h"

namespace xcq::server {

/// \brief Structured query-trace logging (docs/OBSERVABILITY.md §4):
/// which queries get their phase trace rendered as a one-line JSON
/// record, and where the line goes.
struct TraceOptions {
  enum class Mode {
    kOff,   ///< No trace output (the default).
    kSlow,  ///< Only queries slower than `slow_threshold_s` end to end.
    kAll,   ///< Every query.
  };
  Mode mode = Mode::kOff;
  double slow_threshold_s = 0.0;
  /// Receives each rendered trace line (no trailing newline). Null =
  /// write to stderr. Must be thread-safe: traces are emitted from
  /// whatever thread served the query.
  std::function<void(std::string_view)> sink;
};

struct StoreOptions {
  /// Soft cap on the summed instance footprint in bytes; 0 = unlimited.
  size_t capacity_bytes = 0;
  /// Session configuration applied to every stored document.
  SessionOptions session;
  /// Per-query trace logging; off by default.
  TraceOptions trace;
  /// Spill directory for durable documents; "" disables durability.
  /// Created (one level) if absent. See docs/SERVER.md §Persistence.
  std::string data_dir;
  /// Replay the manifest at construction and register recovered
  /// documents as warm entries. With `false` the catalog is still
  /// loaded (so later spills do not orphan prior ones) but nothing is
  /// registered — the store starts cold.
  bool warm_start = true;
};

/// \brief One durable spill as the manifest tracks it.
struct SpillRecord {
  std::string file;      ///< File name inside the data dir.
  size_t bytes = 0;      ///< Size of the spill file on disk.
  uint32_t crc = 0;      ///< CRC-32 of the whole file.
  uint64_t generation = 0;  ///< Monotonic per-store write counter.
  std::vector<std::string> labels;  ///< Tracked labels (informational).
};

/// \brief What the recovery scan found at startup.
struct RecoveryStats {
  size_t recovered = 0;  ///< Warm entries registered from the manifest.
  size_t errors = 0;     ///< Manifest lines / artifacts skipped.
  double seconds = 0.0;  ///< Wall time of the scan.
};

/// \brief One row of STATS: a snapshot of a cached document.
struct DocumentInfo {
  std::string name;
  size_t memory_bytes = 0;        ///< Instance::MemoryFootprint().
  size_t vertex_count = 0;        ///< DAG vertices (including splits).
  uint64_t rle_edges = 0;         ///< RLE edges.
  uint64_t tree_nodes = 0;        ///< TreeNodeCount() — what the DAG stands for.
  size_t tracked_tags = 0;        ///< Tag relations present.
  size_t tracked_patterns = 0;    ///< String-constraint relations present.
  uint64_t queries_served = 0;    ///< Single queries evaluated.
  uint64_t batches_served = 0;    ///< BATCH requests evaluated.
  uint64_t batches_shared = 0;    ///< BATCHes served with shared sweeps.
  uint64_t source_parses = 0;     ///< Scans of the original document.
  bool has_source = false;        ///< False for `.xcqi`-loaded documents.
  uint64_t summary_nodes = 0;     ///< Path-summary size (0 = not built).
  uint64_t sweep_visited = 0;     ///< Vertices visited by axis sweeps.
  uint64_t sweep_full = 0;        ///< Visits unpruned sweeps would make.
  uint64_t pruned_sweeps = 0;     ///< Sweeps restricted by the summary.
  uint64_t skipped_sweeps = 0;    ///< Sweeps skipped outright.
  size_t scratch_resident = 0;    ///< Scratch-pool slots currently held.
  uint64_t scratch_hits = 0;      ///< Scratch checkouts with no allocation.
  uint64_t scratch_allocs = 0;    ///< Scratch checkouts that allocated.
  uint64_t traversal_builds = 0;  ///< Traversal-cache (re)builds.
  uint64_t summary_builds = 0;    ///< Path-summary (re)builds.
  double label_seconds = 0.0;     ///< Cumulative label/merge time.
  double minimize_seconds = 0.0;  ///< Cumulative post-query reclaim time.
  double qps = 0.0;               ///< queries / registry uptime.
  double share_rate = 0.0;        ///< batches_shared / batches_served.
  double p50_ms = 0.0;            ///< Query latency percentiles, from the
  double p95_ms = 0.0;            ///  same histogram METRICS exports.
  double p99_ms = 0.0;
  uint64_t queued = 0;            ///< Tasks waiting in the service queue for
                                  ///  this document (filled by STATS, not by
                                  ///  StoredDocument::Info — the store does
                                  ///  not know the service).
  uint64_t inflight = 0;          ///< Tasks executing for this document now.
  uint64_t shed = 0;              ///< Tasks shed expired at dequeue, ever
                                  ///  (cumulative; filled by STATS from the
                                  ///  service, like queued/inflight).
  uint64_t cancelled = 0;         ///< Tasks cancelled (client disconnect),
                                  ///  ever; filled by STATS likewise.
  bool warm = false;              ///< A durable spill backs this document.
  bool resident = false;          ///< The session is in memory.
  size_t spill_bytes = 0;         ///< Spill file size on disk (0 = none).
};

/// \brief The durable side of the store: spill files plus the manifest
/// that catalogs them, all writes crash-safe (temp + fsync + rename).
/// Thread-safe behind its own mutex, which is a leaf in the lock order
/// (store lock or document lock may be held when calling in; the spill
/// manager never calls out).
class SpillManager {
 public:
  /// Prepares `data_dir` (created if absent, one level) and parses the
  /// manifest fault-tolerantly: unreadable lines are skipped and
  /// counted in `stats->errors`, torn `.tmp` artifacts and
  /// unreferenced spill files are cleaned up (cleanup is skipped when
  /// the manifest itself is unusable — then nothing is trusted enough
  /// to delete). A hard failure (directory not creatable) leaves the
  /// manager disabled.
  Status Init(const std::string& data_dir, RecoveryStats* stats);

  bool enabled() const { return !dir_.empty(); }

  /// Serializes `instance` and atomically writes it as `name`'s spill
  /// under a fresh generation, rewrites the manifest, then removes the
  /// superseded generation's file.
  Result<SpillRecord> Write(const std::string& name,
                            const Instance& instance);

  /// Reads and fully verifies `name`'s spill (size + CRC against the
  /// manifest, then footer + structural validation). A read that races
  /// a respill (Write unlinks the superseded generation's file) retries
  /// against the fresh catalog record. `generation`, when non-null,
  /// receives the generation of the record the final attempt used
  /// (0 when no record existed) so callers can make removal decisions
  /// race-free via `RemoveIfGeneration`. Failure codes: `kCorruption`
  /// for verified mismatches, `kNotFound` for an absent record or a
  /// verified-missing file, `kIoError` for transient read failures
  /// (fd pressure and the like — the spill is presumed intact).
  Result<Instance> Read(const std::string& name,
                        uint64_t* generation = nullptr) const;

  /// Drops `name`'s spill file and manifest entry. False if absent.
  bool Remove(const std::string& name);

  /// Like `Remove`, but a no-op unless the cataloged record still has
  /// `generation` — a concurrent Write that superseded it wrote a newer
  /// spill, which must survive.
  bool RemoveIfGeneration(const std::string& name, uint64_t generation);

  bool Lookup(const std::string& name, SpillRecord* out) const;

  /// Names with a durable spill, sorted.
  std::vector<std::string> Names() const;

  /// Summed on-disk size of all cataloged spills.
  size_t TotalBytes() const;

 private:
  Status RewriteManifestLocked();
  /// Shared tail of Remove/RemoveIfGeneration; mu_ must be held.
  bool RemoveEntryLocked(std::map<std::string, SpillRecord>::iterator it);

  std::string dir_;  ///< "" until Init succeeds (manager disabled).
  mutable std::mutex mu_;
  std::map<std::string, SpillRecord> records_;
  uint64_t next_generation_ = 1;
};

/// \brief A cached compressed document: a `QuerySession` plus serving
/// counters, evaluated under the document's own lock.
class StoredDocument {
 public:
  /// `registry` may be null (no metrics; for embedders that only want
  /// the cache). With a registry, every per-document handle is resolved
  /// here, once — the per-query cost of metrics is then only relaxed
  /// atomic adds on the cached handles.
  StoredDocument(QuerySession session, std::string name,
                 obs::Registry* registry);

  /// Evaluates one query (exclusive document lock). `control` carries
  /// the request's cancellation token and budget overrides; a cancelled
  /// evaluation fails with `kCancelled` / `kDeadlineExceeded` and leaves
  /// the cached instance consistent — the document keeps serving.
  Result<QueryOutcome> Query(std::string_view query_text,
                             const QueryControl& control = {});

  /// Evaluates a batch with one merged label pass (exclusive lock held
  /// across the whole batch, so a batch is atomic w.r.t. other clients).
  Result<std::vector<QueryOutcome>> Batch(
      const std::vector<std::string>& query_texts,
      const QueryControl& control = {});

  DocumentInfo Info(std::string name) const;

  /// Refreshes this document's scrape-time gauges (instance footprint,
  /// scratch-pool residency, cache build counts, QPS, share rate) from
  /// the current state; called by `DocumentStore::ScrapeMetrics` right
  /// before rendering. `uptime_seconds` is the registry uptime used for
  /// the QPS rate. No-op without a registry.
  void UpdateScrapeGauges(double uptime_seconds);

  /// Current instance footprint in bytes (0 before the first query of an
  /// XML-loaded document). Reads a cached value refreshed after every
  /// evaluation — never blocks on the document lock, so the store's
  /// capacity sweep cannot stall behind a slow in-flight query.
  size_t memory_bytes() const { return footprint_.load(); }

 private:
  friend class DocumentStore;

  /// Resolved metric handles for one document (and, for the axis block,
  /// one sweep family). All owned by the registry; null without one.
  struct AxisHandles {
    obs::Counter* sweeps = nullptr;
    obs::Counter* visited = nullptr;
    obs::Counter* full = nullptr;
    obs::Counter* pruned = nullptr;
    obs::Counter* skipped = nullptr;
    obs::Counter* seconds = nullptr;
    obs::Gauge* prune_ratio = nullptr;
  };
  struct Handles {
    obs::Counter* queries = nullptr;
    obs::Counter* query_errors = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* batches_shared = nullptr;
    obs::Histogram* latency = nullptr;
    obs::Counter* phase_seconds[obs::kPhaseCount] = {};
    AxisHandles axis[engine::kAxisFamilyCount];
    obs::Gauge* memory_bytes = nullptr;
    obs::Gauge* vertices = nullptr;
    obs::Gauge* tree_nodes = nullptr;
    obs::Gauge* summary_nodes = nullptr;
    obs::Gauge* summary_builds = nullptr;
    obs::Gauge* traversal_builds = nullptr;
    obs::Gauge* scratch_resident = nullptr;
    obs::Gauge* scratch_capacity = nullptr;
    obs::Gauge* scratch_hits = nullptr;
    obs::Gauge* scratch_allocations = nullptr;
    obs::Gauge* qps = nullptr;
    obs::Gauge* batch_share_rate = nullptr;
  };

  /// Recomputes the cached footprint; mu_ must be held.
  void RefreshFootprintLocked();

  /// Rewrites this document's spill when the tracked label set grew
  /// since the last spill (or none was written yet); mu_ must be held.
  /// No-op without an owning store, without durability, or before the
  /// session has built an instance. Write failures are logged once per
  /// document and serving continues (durability degrades, availability
  /// does not).
  void MaybeSpillLocked();

  /// Spill-if-dirty with its own locking — the store calls this on
  /// load, on demotion, and from FlushSpills().
  void PersistIfDirty();

  /// Unconditionally rewrites the spill (PERSIST verb). Fails with
  /// kInvalidArgument before the first query of an XML-loaded document
  /// (there is no compiled instance to persist yet).
  Status ForcePersist();

  /// Marks the current label set as already spilled — set after a
  /// fault-in so the first query does not immediately rewrite the spill
  /// it was just read from.
  void MarkSpilledClean();

  /// Folds one outcome's pruning counters into the cumulative totals;
  /// mu_ must be held.
  void AccumulateSweepStats(const engine::EvalStats& stats);

  /// Pushes one successful outcome into the resolved metric handles
  /// (per-axis counters, phase seconds, latency histogram); mu_ must be
  /// held. `elapsed_seconds` is this query's share of serving time.
  void RecordOutcomeMetricsLocked(const QueryOutcome& outcome,
                                  double elapsed_seconds);

  mutable std::mutex mu_;
  QuerySession session_;
  std::string name_;
  obs::Registry* registry_;  ///< Null = metrics disabled.
  Handles handles_;
  /// The owning store, for spill writes; null for store-less embedders.
  class DocumentStore* owner_ = nullptr;
  bool spilled_ = false;          ///< A spill of this session exists.
  size_t spilled_labels_ = 0;     ///< Tracked label count at last spill.
  bool spill_error_logged_ = false;
  std::atomic<size_t> footprint_{0};
  /// LRU stamp, owned by the store; atomic so Find() can bump it under
  /// the store's *shared* lock.
  std::atomic<uint64_t> last_used_{0};
  uint64_t queries_served_ = 0;
  uint64_t batches_served_ = 0;
  /// Cumulative sweep-pruning counters over all served queries
  /// (docs/INTERNALS.md §9); surfaced via STATS.
  uint64_t sweep_visited_ = 0;
  uint64_t sweep_full_ = 0;
  uint64_t pruned_sweeps_ = 0;
  uint64_t skipped_sweeps_ = 0;
  double label_seconds_ = 0.0;
  double minimize_seconds_ = 0.0;
};

/// \brief Thread-safe name → StoredDocument map with LRU eviction.
class DocumentStore {
 public:
  explicit DocumentStore(StoreOptions options = {});

  /// Compresses `xml` under `name` (replacing any previous document of
  /// that name). The text is retained so later queries can merge missing
  /// labels in.
  Status LoadXml(const std::string& name, std::string xml);

  /// Caches an already-built instance under `name` with no source text
  /// behind it; queries needing absent labels fail instead of parsing.
  Status LoadInstance(const std::string& name, Instance instance);

  /// Loads `path` as either a serialized `.xcqi` instance or raw XML,
  /// sniffing the format from the leading bytes.
  Status LoadFile(const std::string& name, const std::string& path);

  /// The *resident* document, bumping its LRU stamp; null if absent or
  /// warm. Takes the store lock shared: lookups from concurrent queries
  /// never serialize on each other.
  std::shared_ptr<StoredDocument> Find(const std::string& name);

  /// The document for serving: a resident hit is as cheap as `Find`; a
  /// warm entry is faulted back in from its spill via `FromInstance`
  /// (single-flight — N concurrent acquires of one warm document do one
  /// spill read, everyone else blocks on the loader). A spill that
  /// fails *verification* (CRC/size/structural mismatch, or a file that
  /// is provably gone) degrades to a cold miss: the entry and its
  /// artifacts are dropped, one canonical line is logged, and every
  /// waiter gets the same `kCorruption` status — other documents are
  /// unaffected. A *transient* read failure (fd pressure, ENOMEM)
  /// never destroys durable state: the warm entry and spill stay, and
  /// waiters get a retryable `kIoError` — the next Acquire starts a
  /// fresh fault-in. `kNotFound` for names that are neither.
  Result<std::shared_ptr<StoredDocument>> Acquire(const std::string& name);

  /// Drops `name`'s residency. With durability, a spill-backed document
  /// is *demoted* to a warm entry (its spill is refreshed if the label
  /// set grew since the last write) and the next Acquire faults it back
  /// in; without, this is a full drop as before. False if the name is
  /// neither resident nor warm (warm-only names return true and stay
  /// warm). The evicted document's metric series stop rendering
  /// (RemoveLabeled), and `evictions_total` moves. When the map held
  /// the last reference, the document is destroyed on the calling
  /// thread *after* the store lock is released, so a large teardown
  /// never blocks concurrent `Find()`s.
  bool Evict(const std::string& name);

  /// Forces a spill write for resident `name` (PERSIST verb); a
  /// warm-only name is already durable and succeeds as a no-op.
  /// `kNotFound` for unknown names, `kInvalidArgument` when durability
  /// is off or the document has no compiled instance yet.
  Status Persist(const std::string& name);

  /// Removes `name` everywhere: residency, warm entry, spill file, and
  /// manifest entry (FORGET verb). False if nothing existed.
  bool Forget(const std::string& name);

  /// Rewrites every resident document's spill that is stale (graceful
  /// shutdown hook; the destructor deliberately does NOT do this, so a
  /// destructed store models a hard stop). No-op without durability.
  void FlushSpills();

  /// Snapshot of every cached document, name order.
  std::vector<DocumentInfo> Stats() const;

  /// The METRICS scrape: refreshes every document's gauges and the
  /// store-level gauges, then renders the registry as Prometheus text
  /// exposition format (docs/OBSERVABILITY.md).
  std::string ScrapeMetrics();

  /// The store's metrics registry (never null; owned by the store, so
  /// it outlives every StoredDocument handle the store hands out).
  obs::Registry* registry() { return &registry_; }
  const obs::Registry* registry() const { return &registry_; }

  /// Summed instance footprint of all cached documents.
  size_t total_bytes() const;

  size_t document_count() const;

  /// Warm (spill-backed, non-resident) entries right now.
  size_t warm_count() const;

  /// Spill reads performed since construction (fault-ins, successful or
  /// not) — the single-flight tests pin this to 1 per warm document.
  uint64_t spill_reads() const { return spill_reads_.load(); }

  /// What the startup recovery scan found; zeros without `data_dir`.
  const RecoveryStats& recovery_stats() const { return recovery_; }

  /// OK when durability is off or the data dir initialized cleanly;
  /// the error otherwise (the store then runs memory-only).
  const Status& durability_status() const { return durability_status_; }

  bool durable() const { return spills_.enabled(); }

  const StoreOptions& options() const { return options_; }

 private:
  friend class StoredDocument;

  /// Single-flight latch for one warm document's fault-in.
  struct FaultIn {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;
  };
  /// A warm (spill-backed, non-resident) entry: presence marks the
  /// state, `inflight` is non-null while a fault-in runs. The spill
  /// metadata itself lives in the SpillManager's catalog.
  struct WarmEntry {
    std::shared_ptr<FaultIn> inflight;
  };

  /// Must hold `mu_` exclusively. Evicts LRU entries (excluding `keep`)
  /// until the footprint fits `capacity_bytes`. Spill-backed victims
  /// are demoted to warm entries. Victims are moved into `doomed`
  /// instead of destroyed, so the caller can release `mu_` before the
  /// (potentially large) frees run — via `FinalizeDoomed`, which also
  /// refreshes stale spills of demoted documents first.
  void EnforceCapacityLocked(const std::string& keep,
                             std::vector<std::shared_ptr<StoredDocument>>*
                                 doomed);
  /// Runs after `mu_` is released: final spill refresh for spill-backed
  /// victims, then destruction.
  void FinalizeDoomed(std::vector<std::shared_ptr<StoredDocument>>* doomed);
  size_t TotalBytesLocked() const;

  /// Registers `doc` under `name` (exclusive lock inside), displacing
  /// any warm entry, and enforces capacity. Shared tail of the Load*
  /// paths and the fault-in.
  void InstallDocument(const std::string& name,
                       std::shared_ptr<StoredDocument> doc);

  /// The loader side of Acquire: reads the spill, rebuilds the session,
  /// installs the document. `latch` is this fault-in's single-flight
  /// latch; a warm entry whose latch no longer matches was superseded
  /// (LOAD/FORGET raced) and the result is quietly discarded.
  Status FaultInDocument(const std::string& name,
                         const std::shared_ptr<FaultIn>& latch);

  /// Spill write + metrics, called from StoredDocument under its lock.
  Status WriteSpill(const std::string& name, const Instance& instance);

  /// Declared first: documents cache raw handle pointers into the
  /// registry, so it must outlive `docs_` during destruction.
  obs::Registry registry_;
  StoreOptions options_;
  /// Store-level handles, resolved once in the constructor.
  obs::Counter* loads_total_;
  obs::Counter* load_misses_total_;
  obs::Counter* evictions_total_;
  obs::Counter* spill_writes_total_;
  obs::Counter* spill_errors_total_;
  obs::Counter* warm_hits_total_;
  obs::Counter* warm_misses_total_;
  obs::Counter* recovered_total_;
  obs::Counter* recovery_errors_total_;
  obs::Gauge* documents_gauge_;
  obs::Gauge* warm_documents_gauge_;
  obs::Gauge* spill_bytes_gauge_;
  obs::Gauge* bytes_gauge_;
  obs::Gauge* uptime_gauge_;
  obs::Gauge* recovery_seconds_gauge_;
  SpillManager spills_;
  RecoveryStats recovery_;
  Status durability_status_;
  std::atomic<uint64_t> spill_reads_{0};
  mutable std::shared_mutex mu_;
  /// Ordered so STATS is stable.
  std::map<std::string, std::shared_ptr<StoredDocument>> docs_;
  /// Warm entries; disjoint from `docs_` keys by invariant.
  std::map<std::string, WarmEntry> warm_;
  std::atomic<uint64_t> clock_{0};
};

}  // namespace xcq::server

#endif  // XCQ_SERVER_DOCUMENT_STORE_H_
