#ifndef XCQ_SERVER_TCP_SERVER_H_
#define XCQ_SERVER_TCP_SERVER_H_

/// \file tcp_server.h
/// `xcq_serverd`'s front end: a POSIX TCP listener speaking the line
/// protocol of protocol.h.
///
/// Threading model (three layers, each bounded):
///  * one accept thread,
///  * one connection thread per client, which only parses lines and
///    blocks on futures — it never evaluates queries itself,
///  * the `QueryService` worker pool, where all evaluation happens.
///
/// So the expensive, memory-growing work is capped at `worker_threads`
/// regardless of client count, and a slow query on one document never
/// blocks queries against other documents.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "xcq/server/document_store.h"
#include "xcq/server/protocol.h"
#include "xcq/server/query_service.h"
#include "xcq/util/result.h"

namespace xcq::server {

struct ServerOptions {
  /// Port to bind ("127.0.0.1"); 0 picks an ephemeral port (tests).
  uint16_t port = 7878;
  /// Bind address; the default keeps the daemon loopback-only.
  std::string bind_address = "127.0.0.1";
  /// Evaluation worker pool size.
  size_t worker_threads = 4;
  /// Document store capacity (0 = unlimited).
  size_t capacity_bytes = 0;
  /// Session behaviour for every stored document.
  SessionOptions session;
  /// Per-query trace logging (`--trace=off|slow:<ms>|all`).
  TraceOptions trace;
};

class TcpServer {
 public:
  explicit TcpServer(ServerOptions options = {});

  /// Stops and joins everything still running.
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and spawns the accept thread. After an OK return,
  /// `port()` is the actually-bound port.
  Status Start();

  /// Closes the listener, wakes every connection, joins all threads.
  /// Idempotent; also run by the destructor.
  void Stop();

  uint16_t port() const { return port_; }

  DocumentStore& store() { return store_; }
  QueryService& service() { return service_; }

  /// Connections accepted so far.
  uint64_t connections_accepted() const { return connections_accepted_; }

 private:
  struct Connection {
    std::thread thread;
    /// Set by the connection thread as its last act, so the accept loop
    /// can reap finished threads without blocking on live ones.
    std::shared_ptr<std::atomic<bool>> done;
  };

  void AcceptLoop();
  void ServeConnection(int fd);
  /// Joins and drops finished connection threads; conn_mu_ must be held.
  void ReapFinishedLocked();

  ServerOptions options_;
  DocumentStore store_;
  QueryService service_;
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> connections_accepted_{0};
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<Connection> connections_;
  std::vector<int> open_fds_;
};

}  // namespace xcq::server

#endif  // XCQ_SERVER_TCP_SERVER_H_
