#ifndef XCQ_SERVER_TCP_SERVER_H_
#define XCQ_SERVER_TCP_SERVER_H_

/// \file tcp_server.h
/// `xcq_serverd`'s front end: a non-blocking **epoll event loop**
/// speaking the line protocol of protocol.h with pipelined requests.
///
/// One event-loop thread owns every socket: edge-triggered
/// accept/read/write, per-connection input framing (`LineFramer`) and a
/// coalescing output buffer. Requests are dispatched to the
/// `QueryService` worker pool through a `PipelinedHandler` per
/// connection — many requests from one socket may be in flight at once;
/// completions run on worker threads, format the reply bytes, and post
/// them back to the loop (eventfd wakeup), which reassembles them in
/// sequence order. Replies therefore always come back in request order.
///
/// Backpressure, outside-in:
///  * `max_connections` caps sockets; excess connects get one `ERR
///    ResourceExhausted` line and a close.
///  * Per-connection `max_inflight_per_connection` and the service's
///    bounded `queue_depth` gate dispatch; when either is exhausted the
///    parked request stays parked and the loop **stops reading that
///    socket** — kernel TCP backpressure stalls the client, nothing is
///    dropped or reordered — until a completion frees capacity.
///  * `write_high_watermark` bounds the output buffer of a slow reader
///    the same way: reads pause until the backlog flushes.
///  * `max_line_bytes` bounds input framing; an oversized request line
///    gets a canonical `ERR` and the connection closes (the stream
///    cannot be re-framed).
///
/// Timers: `idle_timeout_s` disconnects connections with no traffic and
/// nothing owed; `write_timeout_s` disconnects peers that stop draining
/// their replies. `Stop()` drains gracefully — in-flight requests are
/// answered and flushed (bounded by `drain_timeout_s`), idle
/// connections close immediately.
///
/// All evaluation still happens in the worker pool, so the expensive,
/// memory-growing work stays capped at `worker_threads` regardless of
/// client count, and the loop thread never runs a query, a LOAD, an
/// EVICT, or a STATS/METRICS scrape (all of which can block on store or
/// document locks — an EVICT can even free a whole document). Only QUIT
/// and parse errors answer inline.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "xcq/server/document_store.h"
#include "xcq/server/protocol.h"
#include "xcq/server/query_service.h"
#include "xcq/util/result.h"

namespace xcq::server {

struct ServerOptions {
  /// Port to bind ("127.0.0.1"); 0 picks an ephemeral port (tests).
  uint16_t port = 7878;
  /// Bind address; the default keeps the daemon loopback-only.
  std::string bind_address = "127.0.0.1";
  /// Evaluation worker pool size.
  size_t worker_threads = 4;
  /// Document store capacity (0 = unlimited).
  size_t capacity_bytes = 0;
  /// Spill directory for durable documents (`--data-dir`); empty keeps
  /// the store memory-only.
  std::string data_dir;
  /// Register spilled documents as warm entries on startup
  /// (`--warm-start=on|off`). Off still loads the manifest (so spills
  /// are never orphaned) but answers NotFound until an explicit LOAD.
  bool warm_start = true;
  /// Session behaviour for every stored document.
  SessionOptions session;
  /// Per-query trace logging (`--trace=off|slow:<ms>|all`).
  TraceOptions trace;
  /// Concurrent-connection cap; 0 = unlimited (`--max-connections`).
  size_t max_connections = 0;
  /// Disconnect a connection with no traffic and nothing in flight
  /// after this many seconds; 0 = never (`--idle-timeout`).
  double idle_timeout_s = 0.0;
  /// Disconnect a peer whose pending replies make no write progress
  /// for this many seconds; 0 = never (`--write-timeout`).
  double write_timeout_s = 0.0;
  /// Bound on the QueryService submission queue (`--queue-depth`);
  /// 0 = unbounded. Full queue = stalled sockets, not errors.
  size_t queue_depth = 256;
  /// Outstanding requests allowed per connection before its reads stall.
  size_t max_inflight_per_connection = 32;
  /// Request-line length cap; longer lines answer a canonical ERR and
  /// close (the framing cannot recover).
  size_t max_line_bytes = kDefaultMaxLineBytes;
  /// Pause reading a connection whose unflushed output exceeds this
  /// (the slow-reader guard); resumes when the backlog flushes.
  size_t write_high_watermark = size_t{1} << 20;
  /// Graceful-shutdown bound: Stop() force-closes connections still
  /// owing replies after this many seconds.
  double drain_timeout_s = 30.0;
  /// Deadline applied to QUERY/BATCH requests without a `TIMEOUT`
  /// clause (`--default-deadline-ms`); 0 = none. Expired requests
  /// answer `ERR DeadlineExceeded` — shed before evaluation when the
  /// deadline passed while queued.
  uint64_t default_deadline_ms = 0;
  /// Upper bound on BATCH bodies (`--max-batch`); larger headers answer
  /// a canonical `ERR InvalidArgument` without consuming body lines.
  size_t max_batch = 100000;
};

class TcpServer {
 public:
  explicit TcpServer(ServerOptions options = {});

  /// Stops and joins everything still running.
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and spawns the event-loop thread. After an OK
  /// return, `port()` is the actually-bound port.
  Status Start();

  /// Graceful drain: stops accepting, closes idle connections
  /// immediately, answers and flushes everything in flight (bounded by
  /// `drain_timeout_s`), then joins the loop. Idempotent; also run by
  /// the destructor.
  void Stop();

  uint16_t port() const { return port_; }

  DocumentStore& store() { return store_; }
  QueryService& service() { return service_; }

  /// Connections accepted (admitted, not rejected) so far.
  uint64_t connections_accepted() const { return connections_accepted_; }

 private:
  /// A reply formatted by a worker, waiting for the loop to flush it.
  struct Completion {
    uint64_t conn_id = 0;
    uint64_t seq = 0;
    std::string bytes;
    bool close_after = false;
  };

  struct Conn;

  void EventLoop();
  void AcceptNew();
  void ReadFromConn(Conn* conn);
  /// Pulls framed lines out of the connection's buffer into the
  /// handler until it needs more bytes, stalls, or closes.
  void ProcessInput(Conn* conn);
  void HandleEof(Conn* conn);
  /// Moves ready in-sequence replies to the output buffer and writes.
  /// False when the connection was closed.
  bool FlushConn(Conn* conn);
  /// Sends the output buffer. False when the connection was closed —
  /// including by the nested read-resume after a write stall — in which
  /// case `conn` has been freed and must not be touched again.
  bool WriteOut(Conn* conn);
  void DrainCompletions();
  /// Re-tries parked requests after completions freed capacity.
  void RetryStalled();
  void CheckTimers();
  /// First Stop() observation: close the listener, close idle conns.
  void BeginDrain();
  /// Closes conns that owe nothing; true when none remain.
  bool DrainStep();
  void UpdateEvents(Conn* conn);
  void CloseConn(uint64_t id);
  void PostCompletion(Completion completion);
  void WakeLoop();
  /// True when the connection owes the client nothing.
  static bool ConnFinished(const Conn& conn);

  ServerOptions options_;
  DocumentStore store_;

  /// Completion plumbing, shared with worker threads. Declared before
  /// `service_`: its destructor joins workers whose closures still post
  /// completions, so this must outlive it.
  std::mutex completion_mu_;
  std::vector<Completion> completions_;
  int event_fd_ = -1;  ///< Guarded by completion_mu_ for write/close.

  QueryService service_;

  /// Front-end metric handles, resolved once in the constructor.
  obs::Gauge* connections_gauge_;
  obs::Counter* connections_total_;
  obs::Counter* rejected_total_;
  obs::Gauge* stalled_gauge_;
  obs::Counter* stalls_total_;
  obs::Counter* idle_disconnects_total_;
  obs::Counter* write_timeouts_total_;
  obs::Counter* pipelined_requests_total_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> connections_accepted_{0};
  std::thread loop_thread_;

  /// Everything below is owned by the event-loop thread.
  std::map<uint64_t, std::unique_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = 2;  ///< 0 = listener, 1 = eventfd.
  /// Accept4 failed transiently (EMFILE-class): the edge-triggered
  /// listener will not re-fire for already-queued connections, so the
  /// loop re-runs AcceptNew on a short timeout until the backlog drains.
  bool accept_retry_ = false;
  bool draining_ = false;
  std::chrono::steady_clock::time_point drain_deadline_{};
};

}  // namespace xcq::server

#endif  // XCQ_SERVER_TCP_SERVER_H_
