#ifndef XCQ_SERVER_QUERY_SERVICE_H_
#define XCQ_SERVER_QUERY_SERVICE_H_

/// \file query_service.h
/// Fixed-size worker pool that compiles and evaluates queries against
/// `DocumentStore` documents, behind a **bounded submission queue** —
/// the admission-control point between the async front end and the
/// evaluation workers.
///
/// Every QUERY / BATCH / LOAD / STATS request becomes a task executed
/// on one of `worker_threads` pool threads, so the number of concurrent
/// evaluations — and therefore peak split-growth memory — is bounded no
/// matter how many clients connect. Two submission paths exist:
///
///  * `Submit(job)` — the embedder API: always enqueues (unbounded) and
///    returns a future. Tests and simple callers block on it.
///  * `TrySubmitWork(document, work)` — the front-end API: refuses
///    (returns false, nothing enqueued) when the bounded queue
///    (`ServiceOptions::queue_depth`) is full. The event loop reacts by
///    *pausing the connection's socket reads* — natural TCP
///    backpressure — and retrying when a completion frees a slot, so
///    overload stalls clients instead of dropping or reordering work.
///
/// Completions are plain callbacks run on the worker thread that
/// executed the task; the async front end's callbacks format the
/// response and hand the bytes back to the event loop (the "completion
/// enqueues bytes" inversion — see tcp_server.h).
///
/// Batching: a job carrying N queries is evaluated via
/// `QuerySession::RunBatch`, which unions the label sets of all N
/// queries *before* the one merge+evaluate pass — the common-extension
/// work is paid once per batch instead of once per query.
///
/// Observability: the service registers `xcq_server_queue_depth`,
/// `xcq_server_queue_limit`, `xcq_server_queue_rejections_total`, and
/// `xcq_server_jobs_inflight` on the store's registry
/// (docs/OBSERVABILITY.md) and keeps per-document queued/in-flight
/// counts for the STATS `queued=`/`inflight=` fields.
///
/// Deadlines and load shedding: a `WorkItem` may carry a `CancelToken`
/// (deadline and/or client-disconnect cancellation). The service never
/// runs a dead request: a task whose token is expired or cancelled at
/// dequeue is **shed** — its `shed` callback (which still owes the
/// client a canonical `ERR DeadlineExceeded` / `ERR Cancelled` reply
/// under the pipelined protocol) runs instead of `run`, off the worker's
/// evaluation path. A *full* bounded queue additionally sheds one
/// already-dead queued task to admit fresh work, so a storm of expired
/// requests cannot wedge the queue ahead of live ones. Disjoint counter
/// semantics per request: `shed_total` = deadline expired before
/// execution; `cancelled_total` = token cancelled (queued or
/// in-flight); `deadline_exceeded_total` = execution started and hit
/// the deadline mid-evaluation.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "xcq/server/document_store.h"
#include "xcq/util/cancel.h"
#include "xcq/util/result.h"

namespace xcq::server {

struct ServiceOptions {
  /// Worker pool size; clamped to at least 1.
  size_t worker_threads = 4;
  /// Bound on tasks waiting in the queue for the admission-controlled
  /// `TrySubmitWork` path; 0 = unbounded. The blocking `Submit` path
  /// always enqueues regardless (embedders manage their own pressure).
  size_t queue_depth = 0;
};

/// \brief One unit of work: evaluate `queries` against document `name`.
struct QueryJob {
  std::string document;
  std::vector<std::string> queries;
  /// Cancellation / deadline state threaded into the evaluation as
  /// `QueryControl::cancel`; null = unrestricted. Shared so the front
  /// end can still cancel after handing the job off.
  std::shared_ptr<CancelToken> token;
};

/// \brief Index-aligned outcomes for a job's queries.
using QueryResponse = Result<std::vector<QueryOutcome>>;

/// \brief One admission-controlled task with its cancellation state.
struct WorkItem {
  /// Attributes the task in the per-document counts; "" = store-wide.
  std::string document;
  /// The task body; runs on a worker thread when the token is live.
  std::function<void()> run;
  /// Owed-reply path: runs (with the token's terminal status) instead
  /// of `run` when the task is dead at dequeue or shed from a full
  /// queue. Null = the task is silently dropped when dead.
  std::function<void(const Status&)> shed;
  /// Deadline / cancellation state; null = never expires or cancels.
  std::shared_ptr<CancelToken> token;
};

class QueryService {
 public:
  QueryService(DocumentStore* store, ServiceOptions options = {});

  /// Drains the queue and joins the workers.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Enqueues `job` for the pool; the future resolves when a worker has
  /// evaluated it. Never refused (the embedder path).
  std::future<QueryResponse> Submit(QueryJob job);

  /// Admission-controlled enqueue: runs `work` on a worker thread, or
  /// returns false *without enqueueing* when the bounded queue is full.
  /// `document` attributes the task in the per-document queue counts
  /// (STATS `queued=`/`inflight=`); pass "" for store-wide work.
  /// `work` owns its own completion delivery.
  bool TrySubmitWork(std::string document, std::function<void()> work);

  /// As above with cancellation state: a dead item is shed instead of
  /// run, and a full queue sheds one already-dead queued task to admit
  /// this one before refusing. The shed callback of a displaced task
  /// runs on the submitting thread, after the queue lock is released.
  bool TrySubmitWork(WorkItem item);

  /// Records a request that *executed* and failed with `kCancelled`
  /// (counted with the cancelled family and the document's STATS
  /// `cancelled=`) or `kDeadlineExceeded` (counted in
  /// `deadline_exceeded_total` only — it was not shed, it ran). Other
  /// codes are ignored, so handlers can call this on every error.
  void NoteRequestError(const std::string& document, StatusCode code);

  /// Evaluates `job` on the calling thread (the worker path, also
  /// useful for tests and simple embedders).
  QueryResponse Execute(const QueryJob& job);

  /// Jobs accepted so far (served + queued).
  uint64_t jobs_submitted() const;

  /// TrySubmitWork refusals so far (each one paused a connection; no
  /// request is ever dropped).
  uint64_t rejected() const;

  /// Tasks currently waiting in the queue (not yet picked by a worker).
  size_t queue_depth() const;

  /// The configured bound (0 = unbounded).
  size_t queue_limit() const { return options_.queue_depth; }

  /// Tasks currently executing on workers.
  size_t jobs_inflight() const;

  /// Queue introspection for one document: tasks waiting (`queued`) and
  /// executing (`inflight`) right now.
  void PendingForDocument(const std::string& document, uint64_t* queued,
                          uint64_t* inflight) const;

  /// Cumulative shed / cancelled request counts for one document (the
  /// STATS `shed=`/`cancelled=` fields). Never reset while the service
  /// lives, unlike the queued/inflight snapshot.
  void ShedForDocument(const std::string& document, uint64_t* shed,
                       uint64_t* cancelled) const;

  /// Requests shed (deadline already expired at dequeue / displacement).
  uint64_t shed_total() const;

  /// Requests cancelled (token cancelled while queued or in flight).
  uint64_t cancelled_total() const;

  size_t worker_count() const { return workers_.size(); }

 private:
  struct Task {
    std::string document;
    std::function<void()> run;
    std::function<void(const Status&)> shed;
    std::shared_ptr<CancelToken> token;
  };
  struct Pending {
    uint64_t queued = 0;
    uint64_t inflight = 0;
  };
  /// Cumulative per-document shed/cancelled counts; never erased.
  struct ShedCounts {
    uint64_t shed = 0;
    uint64_t cancelled = 0;
  };

  void WorkerLoop();
  /// Appends a task and refreshes the queue gauges; mu_ must be held.
  void EnqueueLocked(Task task);
  /// Books one dead-at-dequeue task under the shed or cancelled family
  /// (by the status code) and drops its per-document queued count;
  /// mu_ must be held. The caller runs the shed callback after
  /// releasing mu_.
  void CountDeadLocked(const std::string& document, const Status& status);

  DocumentStore* store_;
  ServiceOptions options_;
  /// Resolved once; registered on the store's registry so the daemon's
  /// METRICS scrape carries the admission-control series.
  obs::Gauge* queue_depth_gauge_;
  obs::Gauge* queue_limit_gauge_;
  obs::Counter* rejections_total_;
  obs::Gauge* inflight_gauge_;
  obs::Counter* shed_counter_;
  obs::Counter* cancelled_counter_;
  obs::Counter* deadline_exceeded_counter_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  /// Per-document queued/in-flight counts; entries erased at zero.
  std::map<std::string, Pending> pending_;
  /// Per-document cumulative shed/cancelled counts (STATS); kept for
  /// the service's lifetime.
  std::map<std::string, ShedCounts> shed_counts_;
  size_t inflight_ = 0;
  bool stopping_ = false;
  uint64_t jobs_submitted_ = 0;
  uint64_t rejected_ = 0;
  uint64_t shed_total_ = 0;
  uint64_t cancelled_total_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace xcq::server

#endif  // XCQ_SERVER_QUERY_SERVICE_H_
