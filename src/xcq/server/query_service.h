#ifndef XCQ_SERVER_QUERY_SERVICE_H_
#define XCQ_SERVER_QUERY_SERVICE_H_

/// \file query_service.h
/// Fixed-size worker pool that compiles and evaluates queries against
/// `DocumentStore` documents, behind a **bounded submission queue** —
/// the admission-control point between the async front end and the
/// evaluation workers.
///
/// Every QUERY / BATCH / LOAD / STATS request becomes a task executed
/// on one of `worker_threads` pool threads, so the number of concurrent
/// evaluations — and therefore peak split-growth memory — is bounded no
/// matter how many clients connect. Two submission paths exist:
///
///  * `Submit(job)` — the embedder API: always enqueues (unbounded) and
///    returns a future. Tests and simple callers block on it.
///  * `TrySubmitWork(document, work)` — the front-end API: refuses
///    (returns false, nothing enqueued) when the bounded queue
///    (`ServiceOptions::queue_depth`) is full. The event loop reacts by
///    *pausing the connection's socket reads* — natural TCP
///    backpressure — and retrying when a completion frees a slot, so
///    overload stalls clients instead of dropping or reordering work.
///
/// Completions are plain callbacks run on the worker thread that
/// executed the task; the async front end's callbacks format the
/// response and hand the bytes back to the event loop (the "completion
/// enqueues bytes" inversion — see tcp_server.h).
///
/// Batching: a job carrying N queries is evaluated via
/// `QuerySession::RunBatch`, which unions the label sets of all N
/// queries *before* the one merge+evaluate pass — the common-extension
/// work is paid once per batch instead of once per query.
///
/// Observability: the service registers `xcq_server_queue_depth`,
/// `xcq_server_queue_limit`, `xcq_server_queue_rejections_total`, and
/// `xcq_server_jobs_inflight` on the store's registry
/// (docs/OBSERVABILITY.md) and keeps per-document queued/in-flight
/// counts for the STATS `queued=`/`inflight=` fields.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "xcq/server/document_store.h"
#include "xcq/util/result.h"

namespace xcq::server {

struct ServiceOptions {
  /// Worker pool size; clamped to at least 1.
  size_t worker_threads = 4;
  /// Bound on tasks waiting in the queue for the admission-controlled
  /// `TrySubmitWork` path; 0 = unbounded. The blocking `Submit` path
  /// always enqueues regardless (embedders manage their own pressure).
  size_t queue_depth = 0;
};

/// \brief One unit of work: evaluate `queries` against document `name`.
struct QueryJob {
  std::string document;
  std::vector<std::string> queries;
};

/// \brief Index-aligned outcomes for a job's queries.
using QueryResponse = Result<std::vector<QueryOutcome>>;

class QueryService {
 public:
  QueryService(DocumentStore* store, ServiceOptions options = {});

  /// Drains the queue and joins the workers.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Enqueues `job` for the pool; the future resolves when a worker has
  /// evaluated it. Never refused (the embedder path).
  std::future<QueryResponse> Submit(QueryJob job);

  /// Admission-controlled enqueue: runs `work` on a worker thread, or
  /// returns false *without enqueueing* when the bounded queue is full.
  /// `document` attributes the task in the per-document queue counts
  /// (STATS `queued=`/`inflight=`); pass "" for store-wide work.
  /// `work` owns its own completion delivery.
  bool TrySubmitWork(std::string document, std::function<void()> work);

  /// Evaluates `job` on the calling thread (the worker path, also
  /// useful for tests and simple embedders).
  QueryResponse Execute(const QueryJob& job);

  /// Jobs accepted so far (served + queued).
  uint64_t jobs_submitted() const;

  /// TrySubmitWork refusals so far (each one paused a connection; no
  /// request is ever dropped).
  uint64_t rejected() const;

  /// Tasks currently waiting in the queue (not yet picked by a worker).
  size_t queue_depth() const;

  /// The configured bound (0 = unbounded).
  size_t queue_limit() const { return options_.queue_depth; }

  /// Tasks currently executing on workers.
  size_t jobs_inflight() const;

  /// Queue introspection for one document: tasks waiting (`queued`) and
  /// executing (`inflight`) right now.
  void PendingForDocument(const std::string& document, uint64_t* queued,
                          uint64_t* inflight) const;

  size_t worker_count() const { return workers_.size(); }

 private:
  struct Task {
    std::string document;
    std::function<void()> run;
  };
  struct Pending {
    uint64_t queued = 0;
    uint64_t inflight = 0;
  };

  void WorkerLoop();
  /// Appends a task and refreshes the queue gauges; mu_ must be held.
  void EnqueueLocked(Task task);

  DocumentStore* store_;
  ServiceOptions options_;
  /// Resolved once; registered on the store's registry so the daemon's
  /// METRICS scrape carries the admission-control series.
  obs::Gauge* queue_depth_gauge_;
  obs::Gauge* queue_limit_gauge_;
  obs::Counter* rejections_total_;
  obs::Gauge* inflight_gauge_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  /// Per-document queued/in-flight counts; entries erased at zero.
  std::map<std::string, Pending> pending_;
  size_t inflight_ = 0;
  bool stopping_ = false;
  uint64_t jobs_submitted_ = 0;
  uint64_t rejected_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace xcq::server

#endif  // XCQ_SERVER_QUERY_SERVICE_H_
