#ifndef XCQ_SERVER_QUERY_SERVICE_H_
#define XCQ_SERVER_QUERY_SERVICE_H_

/// \file query_service.h
/// Fixed-size worker pool that compiles and evaluates queries against
/// `DocumentStore` documents.
///
/// Every QUERY / BATCH request becomes a `QueryJob` executed on one of
/// `worker_threads` pool threads, so the number of concurrent
/// evaluations — and therefore peak split-growth memory — is bounded no
/// matter how many clients connect. Front ends block on the returned
/// future; the pool is the single throttling point.
///
/// Batching: a job carrying N queries is evaluated via
/// `QuerySession::RunBatch`, which unions the label sets of all N
/// queries *before* the one merge+evaluate pass — the common-extension
/// work is paid once per batch instead of once per query.

#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "xcq/server/document_store.h"
#include "xcq/util/result.h"

namespace xcq::server {

struct ServiceOptions {
  /// Worker pool size; clamped to at least 1.
  size_t worker_threads = 4;
};

/// \brief One unit of work: evaluate `queries` against document `name`.
struct QueryJob {
  std::string document;
  std::vector<std::string> queries;
};

/// \brief Index-aligned outcomes for a job's queries.
using QueryResponse = Result<std::vector<QueryOutcome>>;

class QueryService {
 public:
  QueryService(DocumentStore* store, ServiceOptions options = {});

  /// Drains the queue and joins the workers.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Enqueues `job` for the pool; the future resolves when a worker has
  /// evaluated it.
  std::future<QueryResponse> Submit(QueryJob job);

  /// Evaluates `job` on the calling thread (the worker path, also
  /// useful for tests and simple embedders).
  QueryResponse Execute(const QueryJob& job);

  /// Jobs accepted so far (served + queued).
  uint64_t jobs_submitted() const;

  size_t worker_count() const { return workers_.size(); }

 private:
  void WorkerLoop();

  DocumentStore* store_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::packaged_task<QueryResponse()>> queue_;
  bool stopping_ = false;
  uint64_t jobs_submitted_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace xcq::server

#endif  // XCQ_SERVER_QUERY_SERVICE_H_
