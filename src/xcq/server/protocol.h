#ifndef XCQ_SERVER_PROTOCOL_H_
#define XCQ_SERVER_PROTOCOL_H_

/// \file protocol.h
/// The daemon's line-oriented text protocol, kept free of socket code so
/// the whole conversation logic is unit-testable over strings.
///
/// Requests (one line each, fields space-separated; `\r` tolerated):
///
///   LOAD <name> <path>      cache file `path` (`.xcqi` instance or raw
///                           XML, sniffed from the leading bytes) as
///                           document `name`
///   QUERY <name> [TIMEOUT <ms>] <query>
///                           evaluate one Core XPath query (the query is
///                           the rest of the line, spaces included). An
///                           optional `TIMEOUT <ms>` clause right after
///                           the name sets this request's deadline; a
///                           request that misses it answers
///                           `ERR DeadlineExceeded: ...` (`TIMEOUT` is
///                           therefore a reserved word in that position)
///   BATCH <name> <count> [TIMEOUT <ms>]
///                           followed by <count> lines, one query each;
///                           evaluated with a single merged label pass.
///                           The optional deadline covers the whole batch
///   STATS                   one line per cached document
///   METRICS                 Prometheus text exposition format scrape
///                           (docs/OBSERVABILITY.md)
///   EVICT <name>            drop a document's residency (spill-backed
///                           documents demote to warm entries and fault
///                           back in on the next QUERY/BATCH)
///   PERSIST <name>          force a durable spill write now (requires
///                           `--data-dir`; see docs/SERVER.md)
///   FORGET <name>           remove a document everywhere: residency,
///                           warm entry, spill file, manifest entry
///   QUIT                    close the conversation
///
/// Blank (or whitespace-only) lines *between* requests are keep-alive
/// no-ops: both front ends skip them without answering. Inside a BATCH
/// body a blank line still counts as one (empty) query. A request line
/// that is non-blank but has no parseable verb answers `ERR`.
///
/// Responses: first line `OK ...` or `ERR <Code>: <message>`. QUERY:
/// `OK dag=<d> tree=<t> splits=<s> label_s=<x> eval_s=<y>`. BATCH,
/// STATS, and METRICS: `OK <n>` followed by exactly n detail lines, so
/// clients can read a response without a terminator sentinel. A failed
/// BATCH fails as a whole (one ERR line) — batches are atomic.
///
/// The STATS line format is frozen: fields are `key=value`, space
/// separated, in the exact order documented in docs/SERVER.md; new
/// fields are appended, existing ones never move or disappear —
/// scripts may parse by position or by key.
///
/// Three layers, outermost first:
///
///  * `LineFramer` — incremental byte→line framing with a bounded line
///    length, shared by the epoll front end and the fuzzer.
///  * `Build*Reply` — pure request→response-lines functions; every
///    front end (blocking or pipelined) formats replies through these,
///    so both speak byte-identical protocol.
///  * `RequestHandler` (blocking, one request at a time over abstract
///    line I/O — the unit-test surface) and `PipelinedHandler` (the
///    event loop's per-connection state machine: many requests in
///    flight, replies reassembled by sequence number, admission
///    control + per-connection in-flight limits).

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "xcq/server/document_store.h"
#include "xcq/server/query_service.h"
#include "xcq/util/result.h"

namespace xcq::server {

/// \brief A parsed request line.
struct Request {
  enum class Kind {
    kLoad,
    kQuery,
    kBatch,
    kStats,
    kMetrics,
    kEvict,
    kPersist,
    kForget,
    kQuit,
  };
  Kind kind = Kind::kStats;
  std::string name;      ///< Document name (LOAD/QUERY/BATCH/EVICT/
                         ///  PERSIST/FORGET).
  std::string path;      ///< LOAD only.
  std::string query;     ///< QUERY only — the rest of the line.
  size_t batch_size = 0; ///< BATCH only.
  uint64_t timeout_ms = 0;  ///< QUERY/BATCH `TIMEOUT` clause; 0 = none
                            ///  (the handler's default deadline applies).
};

/// \brief Conversation-level knobs shared by both front ends.
struct HandlerOptions {
  /// Deadline applied to QUERY/BATCH requests that carry no `TIMEOUT`
  /// clause (daemon `--default-deadline-ms`); 0 = no default deadline.
  uint64_t default_deadline_ms = 0;
  /// Upper bound on BATCH body sizes (daemon `--max-batch`); a header
  /// announcing more queries answers a canonical `ERR InvalidArgument`
  /// without consuming any body lines (same contract as a count the
  /// parser itself rejects).
  size_t max_batch = 100000;
};

/// \brief Parses one request line; `kInvalidArgument` on malformed input
/// or unknown verbs.
Result<Request> ParseRequest(std::string_view line);

/// \brief `dag=.. tree=.. splits=.. label_s=.. eval_s=..` for one outcome.
std::string FormatOutcome(const QueryOutcome& outcome);

/// \brief One STATS detail line for a document snapshot.
std::string FormatDocumentInfo(const DocumentInfo& info);

/// \brief `ERR <Code>: <message>` with newlines flattened, so an error
/// always stays one line.
std::string FormatError(const Status& status);

/// Default `LineFramer` bound; also the daemon's request-line cap.
inline constexpr size_t kDefaultMaxLineBytes = 64 * 1024;

/// \brief Incremental line framing over a byte stream.
///
/// Feed arbitrary byte chunks with `Append` (partial lines, many lines
/// at once — however the socket delivered them) and pull complete lines
/// with `NextLine`. Lines are LF-terminated; one trailing `\r` is
/// stripped (so `\r\n` and `\n` are equivalent, and a bare interior
/// `\r` stays part of the line). A line longer than `max_line_bytes`
/// trips the **sticky overflow** state: the buffer is discarded, later
/// `Append`s are dropped, and `NextLine` keeps answering `kOverflow` —
/// the connection is beyond repair (the discarded bytes cannot be
/// re-framed) and must be closed after one canonical `ERR`. This is
/// what bounds per-connection input memory no matter what bytes arrive.
class LineFramer {
 public:
  explicit LineFramer(size_t max_line_bytes = kDefaultMaxLineBytes)
      : max_line_bytes_(max_line_bytes) {}

  enum class Next {
    kLine,      ///< `*line` holds the next complete line.
    kNeedMore,  ///< No complete line buffered; Append more bytes.
    kOverflow,  ///< A line exceeded the bound; the stream is unusable.
  };

  void Append(std::string_view bytes);

  Next NextLine(std::string* line);

  /// At end of input: the final unterminated line, if any (trailing
  /// `\r` stripped, like a terminated line). False when nothing is
  /// buffered or the framer overflowed.
  bool TakeResidual(std::string* line);

  size_t buffered() const { return data_.size(); }
  bool overflowed() const { return overflowed_; }
  size_t max_line_bytes() const { return max_line_bytes_; }

 private:
  size_t max_line_bytes_;
  std::string data_;
  /// Resume point for the newline scan, so repeated `kNeedMore` polls
  /// do not rescan the prefix.
  size_t scan_ = 0;
  bool overflowed_ = false;
};

/// Strips one trailing '\r' (the `\r\n` tolerance) in place.
void StripTrailingCr(std::string* line);

/// \name Reply builders
/// Each returns the complete response as lines (no terminators). They
/// are the single source of truth for response bytes: the blocking
/// `RequestHandler` and the event loop's `PipelinedHandler` both format
/// through them, from whatever thread runs the work. Trace emission
/// (`StoreOptions::trace`) happens inside the query/batch builders.
/// @{

/// Performs the load and formats its reply.
std::vector<std::string> BuildLoadReply(DocumentStore* store,
                                        const std::string& name,
                                        const std::string& path);

/// Formats one QUERY response (one `OK ...` or `ERR ...` line).
std::vector<std::string> BuildQueryReply(DocumentStore* store,
                                         const std::string& name,
                                         const std::string& query,
                                         const QueryResponse& response);

/// Formats one BATCH response (`OK <n>` + n detail lines, or one ERR).
std::vector<std::string> BuildBatchReply(
    DocumentStore* store, const std::string& name,
    const std::vector<std::string>& queries, const QueryResponse& response);

/// `OK <n>` + one frozen-format line per document. `service` may be
/// null (no queue columns — the embedder case); with a service the
/// per-document `queued=`/`inflight=` fields read its counts.
std::vector<std::string> BuildStatsReply(DocumentStore* store,
                                         QueryService* service);

/// `OK <n>` + the Prometheus exposition, one line each.
std::vector<std::string> BuildMetricsReply(DocumentStore* store);

/// Performs the evict and formats its reply.
std::vector<std::string> BuildEvictReply(DocumentStore* store,
                                         const std::string& name);

/// Performs the forced spill write and formats its reply.
std::vector<std::string> BuildPersistReply(DocumentStore* store,
                                           const std::string& name);

/// Removes the document everywhere and formats its reply.
std::vector<std::string> BuildForgetReply(DocumentStore* store,
                                          const std::string& name);

/// @}

/// \brief Drives one client conversation over abstract line I/O.
///
/// Blocking, one request at a time; tests run it over string vectors.
/// `read_line` must yield the next input line (without the newline) and
/// return false at end of input; `write_line` receives response lines
/// (also without newlines).
class RequestHandler {
 public:
  RequestHandler(DocumentStore* store, QueryService* service,
                 HandlerOptions options = {})
      : store_(store), service_(service), options_(options) {}

  /// Handles the single request starting at `line` (consuming further
  /// input lines only for BATCH bodies). Writes the complete response.
  /// Returns false when the conversation should end (QUIT).
  bool Handle(std::string_view line,
              const std::function<bool(std::string*)>& read_line,
              const std::function<void(std::string_view)>& write_line);

 private:
  DocumentStore* store_;
  QueryService* service_;
  HandlerOptions options_;
};

/// \brief Per-connection protocol state machine for the epoll front end:
/// pipelined requests, in-order replies, admission control.
///
/// The event loop feeds framed lines in arrival order; the handler
/// assigns each request a **sequence number** at dispatch and hands the
/// work to the `QueryService` pool. Completions run on worker threads,
/// format the reply through the `Build*Reply` functions, and deliver
/// the bytes via the `ReplySink` — the event loop reassembles them in
/// sequence order, so replies always come back in request order even
/// though evaluations may finish out of order. (Replies are *written*
/// in order; side-effecting verbs — LOAD, EVICT — may still *execute*
/// concurrently with earlier in-flight queries. A client that needs
/// strict effect ordering waits for each reply, exactly as it would
/// without pipelining.)
///
/// Backpressure: a dispatch is refused — and the request **parked**,
/// not dropped — when this connection already has `max_inflight`
/// requests outstanding or the service's bounded queue is full. `Feed`
/// then answers `kStalled`; the event loop stops reading the socket
/// (kernel TCP backpressure does the rest) and calls `ResumeDeferred`
/// when a completion frees capacity.
///
/// Threading: `Feed` / `ResumeDeferred` / `OnInputClosed` /
/// `FeedOversized` are called from the event-loop thread only. The
/// completion path (and therefore the sink) runs on worker threads.
/// The handler is held by `shared_ptr`; worker closures keep it alive
/// past connection close, and the sink is responsible for tolerating
/// completions for connections that no longer exist.
class PipelinedHandler
    : public std::enable_shared_from_this<PipelinedHandler> {
 public:
  /// Receives one complete reply: `bytes` is newline-terminated wire
  /// data; replies must be written strictly in `seq` order (0,1,2,...).
  /// `close_after` asks the front end to close the connection once
  /// every reply up to and including `seq` is flushed. May be invoked
  /// from worker threads or inline from the event-loop thread.
  using ReplySink =
      std::function<void(uint64_t seq, std::string bytes, bool close_after)>;

  struct Limits {
    /// Outstanding (dispatched, not yet completed) requests allowed on
    /// this connection before `Feed` stalls it.
    size_t max_inflight = 32;
  };
  struct Hooks {
    /// Incremented once per dispatched request (optional).
    obs::Counter* requests = nullptr;
  };

  PipelinedHandler(DocumentStore* store, QueryService* service,
                   ReplySink sink, Limits limits, Hooks hooks,
                   HandlerOptions options = {});
  /// Default limits, no hooks. (A separate overload: the nested
  /// structs' member initializers cannot serve as `= {}` default
  /// arguments while the enclosing class is incomplete.)
  PipelinedHandler(DocumentStore* store, QueryService* service,
                   ReplySink sink);

  enum class FeedResult {
    kOk,       ///< Line consumed; keep feeding.
    kStalled,  ///< Request parked — stop reading until ResumeDeferred.
    kClose,    ///< Conversation over (QUIT / fatal framing error); stop
               ///< reading, flush, close.
  };

  /// Consumes one framed input line.
  FeedResult Feed(const std::string& line);

  /// Retries the parked request, if any. `kOk` means capacity was found
  /// (or nothing was parked) and reading may resume; `kStalled` means
  /// still no room.
  FeedResult ResumeDeferred();

  /// End of input. Emits the truncated-BATCH error if a batch body was
  /// being collected (the blocking handler's behavior on early EOF).
  void OnInputClosed();

  /// The framer overflowed: emit the canonical oversized-line `ERR`
  /// (close_after) — the stream cannot be re-framed.
  void FeedOversized(size_t max_line_bytes);

  /// The client is gone: cancels every queued and in-flight request
  /// dispatched by this connection. Queued work is then shed at dequeue
  /// (never evaluated); in-flight evaluations abort at their next
  /// cancellation checkpoint. Their replies still flow to the sink in
  /// sequence order — the sink already tolerates completions for closed
  /// connections. Loop thread only (like Feed), idempotent.
  void CancelOutstanding();

  bool has_deferred() const { return deferred_.has_value(); }

  /// Requests dispatched but not yet completed (worker side decrements).
  uint64_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

  /// Sequence numbers handed out so far == replies owed to the client.
  uint64_t dispatched() const { return next_seq_; }

 private:
  struct Deferred {
    Request request;
    std::vector<std::string> batch_queries;
    /// Created at the *first* dispatch attempt so the deadline keeps
    /// running while the request is parked — parking must not extend a
    /// request's deadline.
    std::shared_ptr<CancelToken> token;
  };

  /// Admission-checks and dispatches one parsed request; parks it and
  /// returns kStalled when out of capacity. `token` is non-null only
  /// when re-dispatching a parked request that already has one.
  FeedResult Dispatch(Request request, std::vector<std::string> batch_queries,
                      std::shared_ptr<CancelToken> token);
  /// Worker-side completion shared by the run and shed paths: retires
  /// `seq`'s token, decrements the in-flight count, and hands the bytes
  /// to the sink.
  void Complete(uint64_t seq, std::vector<std::string> lines);
  /// Emits an already-built reply inline (loop thread), in sequence.
  void EmitNow(std::vector<std::string> lines, bool close_after);
  /// Response lines → newline-terminated wire bytes.
  static std::string JoinLines(const std::vector<std::string>& lines);

  DocumentStore* store_;
  QueryService* service_;
  ReplySink sink_;
  Limits limits_;
  Hooks hooks_;
  HandlerOptions options_;
  /// Tokens of dispatched-but-uncompleted QUERY/BATCH requests, by
  /// sequence number. Guarded by `tokens_mu_`: inserted on the loop
  /// thread at dispatch, erased by workers at completion, swept by
  /// `CancelOutstanding` when the connection dies.
  std::mutex tokens_mu_;
  std::map<uint64_t, std::shared_ptr<CancelToken>> outstanding_;
  /// Next sequence number to assign; loop thread only. Monotonic in
  /// request order because nothing feeds while a request is parked.
  uint64_t next_seq_ = 0;
  std::atomic<uint64_t> inflight_{0};
  /// BATCH body being collected (header seen, queries outstanding).
  std::optional<Request> collecting_;
  std::vector<std::string> batch_body_;
  /// Request admitted nowhere yet — retried by ResumeDeferred.
  std::optional<Deferred> deferred_;
  bool closed_ = false;
};

}  // namespace xcq::server

#endif  // XCQ_SERVER_PROTOCOL_H_
