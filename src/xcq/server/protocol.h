#ifndef XCQ_SERVER_PROTOCOL_H_
#define XCQ_SERVER_PROTOCOL_H_

/// \file protocol.h
/// The daemon's line-oriented text protocol, kept free of socket code so
/// the whole conversation logic is unit-testable over strings.
///
/// Requests (one line each, fields space-separated; `\r` tolerated):
///
///   LOAD <name> <path>      cache file `path` (`.xcqi` instance or raw
///                           XML, sniffed from the leading bytes) as
///                           document `name`
///   QUERY <name> <query>    evaluate one Core XPath query (the query is
///                           the rest of the line, spaces included)
///   BATCH <name> <count>    followed by <count> lines, one query each;
///                           evaluated with a single merged label pass
///   STATS                   one line per cached document
///   METRICS                 Prometheus text exposition format scrape
///                           (docs/OBSERVABILITY.md)
///   EVICT <name>            drop a document
///   QUIT                    close the conversation
///
/// Responses: first line `OK ...` or `ERR <Code>: <message>`. QUERY:
/// `OK dag=<d> tree=<t> splits=<s> label_s=<x> eval_s=<y>`. BATCH,
/// STATS, and METRICS: `OK <n>` followed by exactly n detail lines, so
/// clients can read a response without a terminator sentinel. A failed
/// BATCH fails as a whole (one ERR line) — batches are atomic.
///
/// The STATS line format is frozen: fields are `key=value`, space
/// separated, in the exact order documented in docs/SERVER.md; new
/// fields are appended, existing ones never move or disappear —
/// scripts may parse by position or by key.

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "xcq/server/document_store.h"
#include "xcq/server/query_service.h"
#include "xcq/util/result.h"

namespace xcq::server {

/// \brief A parsed request line.
struct Request {
  enum class Kind { kLoad, kQuery, kBatch, kStats, kMetrics, kEvict, kQuit };
  Kind kind = Kind::kStats;
  std::string name;      ///< Document name (LOAD/QUERY/BATCH/EVICT).
  std::string path;      ///< LOAD only.
  std::string query;     ///< QUERY only — the rest of the line.
  size_t batch_size = 0; ///< BATCH only.
};

/// \brief Parses one request line; `kInvalidArgument` on malformed input
/// or unknown verbs.
Result<Request> ParseRequest(std::string_view line);

/// \brief `dag=.. tree=.. splits=.. label_s=.. eval_s=..` for one outcome.
std::string FormatOutcome(const QueryOutcome& outcome);

/// \brief One STATS detail line for a document snapshot.
std::string FormatDocumentInfo(const DocumentInfo& info);

/// \brief `ERR <Code>: <message>` with newlines flattened, so an error
/// always stays one line.
std::string FormatError(const Status& status);

/// \brief Drives one client conversation over abstract line I/O.
///
/// The TCP front end runs it over a socket; tests run it over string
/// vectors. `read_line` must yield the next input line (without the
/// newline) and return false at end of input; `write_line` receives
/// response lines (also without newlines).
class RequestHandler {
 public:
  RequestHandler(DocumentStore* store, QueryService* service)
      : store_(store), service_(service) {}

  /// Handles the single request starting at `line` (consuming further
  /// input lines only for BATCH bodies). Writes the complete response.
  /// Returns false when the conversation should end (QUIT).
  bool Handle(std::string_view line,
              const std::function<bool(std::string*)>& read_line,
              const std::function<void(std::string_view)>& write_line);

 private:
  /// Appends the serialize span to `outcome`'s trace and emits the
  /// one-line JSON trace when `StoreOptions::trace` says so.
  void MaybeEmitTrace(const std::string& document,
                      const std::string& query,
                      const QueryOutcome& outcome) const;

  DocumentStore* store_;
  QueryService* service_;
};

}  // namespace xcq::server

#endif  // XCQ_SERVER_PROTOCOL_H_
