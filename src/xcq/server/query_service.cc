#include "xcq/server/query_service.h"

#include <utility>

#include "xcq/util/string_util.h"

namespace xcq::server {

QueryService::QueryService(DocumentStore* store, ServiceOptions options)
    : store_(store), options_(options) {
  obs::Registry* registry = store_->registry();
  queue_depth_gauge_ = registry->GetGauge(
      "xcq_server_queue_depth", {},
      "Tasks waiting in the QueryService submission queue");
  queue_limit_gauge_ = registry->GetGauge(
      "xcq_server_queue_limit", {},
      "Configured submission-queue bound (0 = unbounded)");
  rejections_total_ = registry->GetCounter(
      "xcq_server_queue_rejections_total", {},
      "Admission-controlled submissions refused because the queue was full");
  inflight_gauge_ =
      registry->GetGauge("xcq_server_jobs_inflight", {},
                         "Tasks currently executing on worker threads");
  queue_limit_gauge_->Set(static_cast<double>(options_.queue_depth));
  const size_t n = options_.worker_threads < 1 ? 1 : options_.worker_threads;
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void QueryService::EnqueueLocked(Task task) {
  ++pending_[task.document].queued;
  queue_.push_back(std::move(task));
  ++jobs_submitted_;
  queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
}

std::future<QueryResponse> QueryService::Submit(QueryJob job) {
  std::string document = job.document;
  auto task = std::make_shared<std::packaged_task<QueryResponse()>>(
      [this, job = std::move(job)] { return Execute(job); });
  std::future<QueryResponse> future = task->get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Resolve immediately instead of leaving a never-ready future.
      std::packaged_task<QueryResponse()> rejected(
          [] { return QueryResponse(Status::Internal("service stopped")); });
      future = rejected.get_future();
      rejected();
      return future;
    }
    EnqueueLocked(
        Task{std::move(document), [task = std::move(task)] { (*task)(); }});
  }
  cv_.notify_one();
  return future;
}

bool QueryService::TrySubmitWork(std::string document,
                                 std::function<void()> work) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ ||
        (options_.queue_depth > 0 && queue_.size() >= options_.queue_depth)) {
      ++rejected_;
      rejections_total_->Increment();
      return false;
    }
    EnqueueLocked(Task{std::move(document), std::move(work)});
  }
  cv_.notify_one();
  return true;
}

QueryResponse QueryService::Execute(const QueryJob& job) {
  if (job.queries.empty()) {
    return Status::InvalidArgument("job carries no queries");
  }
  // Acquire, not Find: a warm (spill-backed) document is faulted back
  // in here, on a worker thread — single-flight per document, so a
  // stampede of queries does one spill read.
  XCQ_ASSIGN_OR_RETURN(const std::shared_ptr<StoredDocument> doc,
                       store_->Acquire(job.document));
  if (job.queries.size() == 1) {
    XCQ_ASSIGN_OR_RETURN(const QueryOutcome outcome,
                         doc->Query(job.queries.front()));
    return std::vector<QueryOutcome>{outcome};
  }
  return doc->Batch(job.queries);
}

uint64_t QueryService::jobs_submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_submitted_;
}

uint64_t QueryService::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

size_t QueryService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t QueryService::jobs_inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

void QueryService::PendingForDocument(const std::string& document,
                                      uint64_t* queued,
                                      uint64_t* inflight) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = pending_.find(document);
  if (it == pending_.end()) {
    *queued = 0;
    *inflight = 0;
    return;
  }
  *queued = it->second.queued;
  *inflight = it->second.inflight;
}

void QueryService::WorkerLoop() {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      Pending& pending = pending_[task.document];
      --pending.queued;
      ++pending.inflight;
      ++inflight_;
      queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
      inflight_gauge_->Set(static_cast<double>(inflight_));
    }
    task.run();
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = pending_.find(task.document);
      if (it != pending_.end()) {
        --it->second.inflight;
        if (it->second.queued == 0 && it->second.inflight == 0) {
          pending_.erase(it);
        }
      }
      --inflight_;
      inflight_gauge_->Set(static_cast<double>(inflight_));
    }
  }
}

}  // namespace xcq::server
