#include "xcq/server/query_service.h"

#include <utility>

#include "xcq/util/string_util.h"

namespace xcq::server {

QueryService::QueryService(DocumentStore* store, ServiceOptions options)
    : store_(store), options_(options) {
  obs::Registry* registry = store_->registry();
  queue_depth_gauge_ = registry->GetGauge(
      "xcq_server_queue_depth", {},
      "Tasks waiting in the QueryService submission queue");
  queue_limit_gauge_ = registry->GetGauge(
      "xcq_server_queue_limit", {},
      "Configured submission-queue bound (0 = unbounded)");
  rejections_total_ = registry->GetCounter(
      "xcq_server_queue_rejections_total", {},
      "Admission-controlled submissions refused because the queue was full");
  inflight_gauge_ =
      registry->GetGauge("xcq_server_jobs_inflight", {},
                         "Tasks currently executing on worker threads");
  shed_counter_ = registry->GetCounter(
      "xcq_server_requests_shed_total", {},
      "Requests shed because their deadline expired before execution");
  cancelled_counter_ = registry->GetCounter(
      "xcq_server_requests_cancelled_total", {},
      "Requests cancelled (client disconnect) while queued or in flight");
  deadline_exceeded_counter_ = registry->GetCounter(
      "xcq_server_deadline_exceeded_total", {},
      "Requests that started executing and hit their deadline mid-flight");
  queue_limit_gauge_->Set(static_cast<double>(options_.queue_depth));
  const size_t n = options_.worker_threads < 1 ? 1 : options_.worker_threads;
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void QueryService::EnqueueLocked(Task task) {
  ++pending_[task.document].queued;
  queue_.push_back(std::move(task));
  ++jobs_submitted_;
  queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
}

std::future<QueryResponse> QueryService::Submit(QueryJob job) {
  std::string document = job.document;
  auto task = std::make_shared<std::packaged_task<QueryResponse()>>(
      [this, job = std::move(job)] { return Execute(job); });
  std::future<QueryResponse> future = task->get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Resolve immediately instead of leaving a never-ready future.
      std::packaged_task<QueryResponse()> rejected(
          [] { return QueryResponse(Status::Internal("service stopped")); });
      future = rejected.get_future();
      rejected();
      return future;
    }
    EnqueueLocked(
        Task{std::move(document), [task = std::move(task)] { (*task)(); }});
  }
  cv_.notify_one();
  return future;
}

bool QueryService::TrySubmitWork(std::string document,
                                 std::function<void()> work) {
  WorkItem item;
  item.document = std::move(document);
  item.run = std::move(work);
  return TrySubmitWork(std::move(item));
}

bool QueryService::TrySubmitWork(WorkItem item) {
  Task displaced;
  Status displaced_status;
  bool have_displaced = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ++rejected_;
      rejections_total_->Increment();
      return false;
    }
    if (options_.queue_depth > 0 && queue_.size() >= options_.queue_depth) {
      // Before refusing, try to shed one queued task that is already
      // dead (deadline passed / client gone): its reply is still owed,
      // but its evaluation never will be, so a fresh live request
      // should take the slot — an expired-request storm must not wedge
      // the queue ahead of live work.
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->token == nullptr) continue;
        const Status status = it->token->Check();
        if (status.ok()) continue;
        displaced = std::move(*it);
        queue_.erase(it);
        displaced_status = status;
        have_displaced = true;
        CountDeadLocked(displaced.document, displaced_status);
        break;
      }
      if (!have_displaced) {
        ++rejected_;
        rejections_total_->Increment();
        return false;
      }
    }
    EnqueueLocked(Task{std::move(item.document), std::move(item.run),
                       std::move(item.shed), std::move(item.token)});
  }
  cv_.notify_one();
  if (have_displaced && displaced.shed) displaced.shed(displaced_status);
  return true;
}

void QueryService::CountDeadLocked(const std::string& document,
                                   const Status& status) {
  Pending& pending = pending_[document];
  if (pending.queued > 0) --pending.queued;
  if (pending.queued == 0 && pending.inflight == 0) {
    pending_.erase(document);
  }
  if (status.code() == StatusCode::kCancelled) {
    ++cancelled_total_;
    ++shed_counts_[document].cancelled;
    cancelled_counter_->Increment();
  } else {
    ++shed_total_;
    ++shed_counts_[document].shed;
    shed_counter_->Increment();
  }
  queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
}

void QueryService::NoteRequestError(const std::string& document,
                                    StatusCode code) {
  if (code == StatusCode::kCancelled) {
    std::lock_guard<std::mutex> lock(mu_);
    ++cancelled_total_;
    ++shed_counts_[document].cancelled;
    cancelled_counter_->Increment();
  } else if (code == StatusCode::kDeadlineExceeded) {
    // Ran and timed out mid-flight: not shed (the point of shedding is
    // that it never ran), so only the deadline family moves.
    deadline_exceeded_counter_->Increment();
  }
}

namespace {

/// The evaluation proper, factored out so `Execute` can wrap every exit
/// path with the post-evaluation deadline poll and error accounting.
QueryResponse ExecuteJob(DocumentStore* store, const QueryJob& job) {
  if (job.queries.empty()) {
    return Status::InvalidArgument("job carries no queries");
  }
  // Acquire, not Find: a warm (spill-backed) document is faulted back
  // in here, on a worker thread — single-flight per document, so a
  // stampede of queries does one spill read.
  XCQ_ASSIGN_OR_RETURN(const std::shared_ptr<StoredDocument> doc,
                       store->Acquire(job.document));
  QueryControl control;
  control.cancel = job.token.get();
  if (job.queries.size() == 1) {
    XCQ_ASSIGN_OR_RETURN(const QueryOutcome outcome,
                         doc->Query(job.queries.front(), control));
    return std::vector<QueryOutcome>{outcome};
  }
  return doc->Batch(job.queries, control);
}

}  // namespace

QueryResponse QueryService::Execute(const QueryJob& job) {
  QueryResponse response = ExecuteJob(store_, job);
  if (response.ok() && job.token != nullptr) {
    // The deadline also covers reply serialization: one more poll here
    // turns an on-time evaluation whose deadline has since passed into
    // the canonical error before any reply bytes are formatted.
    const Status post = job.token->Check();
    if (!post.ok()) response = QueryResponse(post);
  }
  if (!response.ok()) {
    NoteRequestError(job.document, response.status().code());
  }
  return response;
}

uint64_t QueryService::jobs_submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_submitted_;
}

uint64_t QueryService::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

size_t QueryService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t QueryService::jobs_inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

uint64_t QueryService::shed_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_total_;
}

uint64_t QueryService::cancelled_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cancelled_total_;
}

void QueryService::ShedForDocument(const std::string& document,
                                   uint64_t* shed,
                                   uint64_t* cancelled) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = shed_counts_.find(document);
  if (it == shed_counts_.end()) {
    *shed = 0;
    *cancelled = 0;
    return;
  }
  *shed = it->second.shed;
  *cancelled = it->second.cancelled;
}

void QueryService::PendingForDocument(const std::string& document,
                                      uint64_t* queued,
                                      uint64_t* inflight) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = pending_.find(document);
  if (it == pending_.end()) {
    *queued = 0;
    *inflight = 0;
    return;
  }
  *queued = it->second.queued;
  *inflight = it->second.inflight;
}

void QueryService::WorkerLoop() {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      // Never run a dead request: a task whose deadline passed (or
      // whose client vanished) while queued is shed here, at dequeue —
      // the reply is still owed (pipelined responses are strictly
      // sequence-ordered), but the evaluation is skipped entirely.
      if (task.token != nullptr) {
        const Status status = task.token->Check();
        if (!status.ok()) {
          CountDeadLocked(task.document, status);
          lock.unlock();
          if (task.shed) task.shed(status);
          continue;
        }
      }
      Pending& pending = pending_[task.document];
      --pending.queued;
      ++pending.inflight;
      ++inflight_;
      queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
      inflight_gauge_->Set(static_cast<double>(inflight_));
    }
    task.run();
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = pending_.find(task.document);
      if (it != pending_.end()) {
        --it->second.inflight;
        if (it->second.queued == 0 && it->second.inflight == 0) {
          pending_.erase(it);
        }
      }
      --inflight_;
      inflight_gauge_->Set(static_cast<double>(inflight_));
    }
  }
}

}  // namespace xcq::server
