#include "xcq/server/query_service.h"

#include <utility>

#include "xcq/util/string_util.h"

namespace xcq::server {

QueryService::QueryService(DocumentStore* store, ServiceOptions options)
    : store_(store) {
  const size_t n = options.worker_threads < 1 ? 1 : options.worker_threads;
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<QueryResponse> QueryService::Submit(QueryJob job) {
  std::packaged_task<QueryResponse()> task(
      [this, job = std::move(job)] { return Execute(job); });
  std::future<QueryResponse> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Resolve immediately instead of leaving a never-ready future.
      std::packaged_task<QueryResponse()> rejected(
          [] { return QueryResponse(Status::Internal("service stopped")); });
      future = rejected.get_future();
      rejected();
      return future;
    }
    queue_.push(std::move(task));
    ++jobs_submitted_;
  }
  cv_.notify_one();
  return future;
}

QueryResponse QueryService::Execute(const QueryJob& job) {
  if (job.queries.empty()) {
    return Status::InvalidArgument("job carries no queries");
  }
  const std::shared_ptr<StoredDocument> doc = store_->Find(job.document);
  if (doc == nullptr) {
    return Status::NotFound(
        StrFormat("no document named '%s' is loaded", job.document.c_str()));
  }
  if (job.queries.size() == 1) {
    XCQ_ASSIGN_OR_RETURN(const QueryOutcome outcome,
                         doc->Query(job.queries.front()));
    return std::vector<QueryOutcome>{outcome};
  }
  return doc->Batch(job.queries);
}

uint64_t QueryService::jobs_submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_submitted_;
}

void QueryService::WorkerLoop() {
  while (true) {
    std::packaged_task<QueryResponse()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace xcq::server
