#include "xcq/server/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "xcq/util/string_util.h"

namespace xcq::server {

namespace {

using Clock = std::chrono::steady_clock;

constexpr uint64_t kListenerId = 0;
constexpr uint64_t kEventFdId = 1;

/// One best-effort blocking-ish send for the pre-admission rejection
/// line; the socket is non-blocking, so a full buffer just drops it.
void SendBestEffort(int fd, std::string_view data) {
  (void)::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
}

}  // namespace

/// Per-connection state, owned by the event-loop thread. Reply bytes
/// cross threads only through the completion queue; everything here is
/// loop-local.
struct TcpServer::Conn {
  int fd = -1;
  uint64_t id = 0;
  LineFramer framer;
  std::shared_ptr<PipelinedHandler> handler;

  /// Coalescing output: every in-sequence reply appends here; one
  /// writev-style send loop drains it. `out_pos` avoids a memmove per
  /// partial write.
  std::string out;
  size_t out_pos = 0;
  /// Out-of-order completions waiting for their turn (seq → reply).
  std::map<uint64_t, Completion> ready;
  uint64_t next_flush = 0;

  uint32_t events = 0;       ///< Last epoll mask registered.
  bool want_write = false;   ///< send() hit EAGAIN; waiting for EPOLLOUT.
  bool stalled_queue = false;  ///< Parked request (admission refused).
  bool stalled_write = false;  ///< Output backlog over the watermark.
  bool read_closed = false;    ///< EOF seen / QUIT / fatal framing.
  bool closing = false;        ///< Close once the output drains.
  bool eof_pending = false;    ///< EOF seen while a request was parked.

  Clock::time_point last_activity;
  Clock::time_point last_write_progress;

  explicit Conn(size_t max_line_bytes) : framer(max_line_bytes) {}

  bool stalled() const { return stalled_queue || stalled_write; }
  size_t unflushed() const { return out.size() - out_pos; }
};

bool TcpServer::ConnFinished(const Conn& conn) {
  return conn.handler->dispatched() == conn.next_flush &&
         conn.ready.empty() && conn.unflushed() == 0 &&
         !conn.handler->has_deferred();
}

TcpServer::TcpServer(ServerOptions options)
    : options_(std::move(options)),
      store_(StoreOptions{options_.capacity_bytes, options_.session,
                          options_.trace, options_.data_dir,
                          options_.warm_start}),
      service_(&store_,
               ServiceOptions{options_.worker_threads, options_.queue_depth}) {
  obs::Registry* registry = store_.registry();
  connections_gauge_ = registry->GetGauge("xcq_server_connections", {},
                                          "Open client connections");
  connections_total_ = registry->GetCounter("xcq_server_connections_total", {},
                                            "Connections accepted");
  rejected_total_ = registry->GetCounter(
      "xcq_server_connections_rejected_total", {},
      "Connections refused by the --max-connections cap");
  stalled_gauge_ = registry->GetGauge(
      "xcq_server_stalled_connections", {},
      "Connections whose reads are paused by backpressure");
  stalls_total_ = registry->GetCounter(
      "xcq_server_stalls_total", {},
      "Times a connection's reads were paused (queue full, in-flight "
      "limit, or output backlog)");
  idle_disconnects_total_ = registry->GetCounter(
      "xcq_server_idle_disconnects_total", {},
      "Connections closed by --idle-timeout");
  write_timeouts_total_ = registry->GetCounter(
      "xcq_server_write_timeouts_total", {},
      "Connections closed by --write-timeout (peer stopped reading)");
  pipelined_requests_total_ = registry->GetCounter(
      "xcq_server_pipelined_requests_total", {},
      "Requests dispatched by the pipelined front end");
}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  if (listen_fd_ >= 0) {
    return Status::AlreadyExists("server already started");
  }
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError(StrFormat("socket: %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument(
        StrFormat("bad bind address '%s'", options_.bind_address.c_str()));
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status =
        Status::IoError(StrFormat("bind %s:%u: %s",
                                  options_.bind_address.c_str(),
                                  static_cast<unsigned>(options_.port),
                                  std::strerror(errno)));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 256) < 0) {
    const Status status =
        Status::IoError(StrFormat("listen: %s", std::strerror(errno)));
    ::close(fd);
    return status;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }

  const int epfd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd < 0) {
    ::close(fd);
    return Status::IoError(
        StrFormat("epoll_create1: %s", std::strerror(errno)));
  }
  const int efd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (efd < 0) {
    ::close(fd);
    ::close(epfd);
    return Status::IoError(StrFormat("eventfd: %s", std::strerror(errno)));
  }

  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.u64 = kListenerId;
  ::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev);
  ev.events = EPOLLIN | EPOLLET;
  ev.data.u64 = kEventFdId;
  ::epoll_ctl(epfd, EPOLL_CTL_ADD, efd, &ev);

  listen_fd_ = fd;
  epoll_fd_ = epfd;
  {
    std::lock_guard<std::mutex> lock(completion_mu_);
    event_fd_ = efd;
  }
  stopping_ = false;
  draining_ = false;
  loop_thread_ = std::thread([this] { EventLoop(); });
  return Status::OK();
}

void TcpServer::Stop() {
  stopping_ = true;
  WakeLoop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // The loop closed every connection and the listener on its way out;
  // reclaim whatever is left so Start() can run again.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(completion_mu_);
    if (event_fd_ >= 0) {
      ::close(event_fd_);
      event_fd_ = -1;
    }
  }
  // Graceful stop: every in-flight request has been answered, so the
  // residents' label sets are final — write any dirty spills now. A
  // hard stop (SIGKILL) skips this and recovery still works; the flush
  // just captures labels learned since the last per-query spill.
  store_.FlushSpills();
}

void TcpServer::WakeLoop() {
  std::lock_guard<std::mutex> lock(completion_mu_);
  if (event_fd_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(event_fd_, &one, sizeof(one));
  }
}

void TcpServer::PostCompletion(Completion completion) {
  std::lock_guard<std::mutex> lock(completion_mu_);
  completions_.push_back(std::move(completion));
  if (event_fd_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(event_fd_, &one, sizeof(one));
  }
}

void TcpServer::EventLoop() {
  epoll_event events[64];
  while (true) {
    if (stopping_ && !draining_) BeginDrain();
    if (draining_ && DrainStep()) break;

    int timeout_ms = -1;
    if (draining_) {
      timeout_ms = 10;
    } else if (options_.idle_timeout_s > 0 || options_.write_timeout_s > 0) {
      timeout_ms = 50;
    }
    if (accept_retry_ && (timeout_ms < 0 || timeout_ms > 50)) {
      timeout_ms = 50;  // a failed accept must be retried without an edge
    }
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone — unrecoverable
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      const uint32_t mask = events[i].events;
      if (id == kListenerId) {
        AcceptNew();
        continue;
      }
      if (id == kEventFdId) {
        uint64_t drained;
        while (::read(event_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      const auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // closed earlier this round
      Conn* conn = it->second.get();
      if ((mask & (EPOLLERR | EPOLLHUP)) != 0) {
        CloseConn(id);
        continue;
      }
      if ((mask & EPOLLOUT) != 0) {
        if (!WriteOut(conn)) continue;
      }
      if ((mask & (EPOLLIN | EPOLLRDHUP)) != 0) {
        ReadFromConn(conn);
      }
    }
    // Retry a backlog stalled on descriptor pressure: events handled
    // above may have freed fds, and no new listener edge will fire for
    // connections that were already queued when accept4 failed.
    if (accept_retry_ && !draining_) AcceptNew();
    DrainCompletions();
    CheckTimers();
  }

  // Loop exit: every connection is gone (DrainStep) — release the
  // listener so the port frees immediately.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TcpServer::AcceptNew() {
  accept_retry_ = false;
  while (true) {
    const int cfd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // drained
      // EMFILE/ENFILE/ENOBUFS/ENOMEM: transient descriptor pressure.
      // The listener is edge-triggered, so connections already queued
      // in the accept backlog would hang until a *fresh* SYN produced
      // another edge — arm a short-timeout retry in the event loop
      // instead of spinning here.
      accept_retry_ = true;
      return;
    }
    if (draining_) {
      ::close(cfd);
      continue;
    }
    if (options_.max_connections > 0 &&
        conns_.size() >= options_.max_connections) {
      // Count before the close: a client may observe the EOF the
      // instant close() runs, and the metric should already agree.
      rejected_total_->Increment();
      SendBestEffort(cfd,
                     FormatError(Status::ResourceExhausted(StrFormat(
                         "connection limit (%zu) reached",
                         options_.max_connections))) +
                         "\n");
      ::close(cfd);
      continue;
    }

    const uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Conn>(options_.max_line_bytes);
    conn->fd = cfd;
    conn->id = id;
    conn->last_activity = Clock::now();
    conn->last_write_progress = conn->last_activity;
    conn->handler = std::make_shared<PipelinedHandler>(
        &store_, &service_,
        [this, id](uint64_t seq, std::string bytes, bool close_after) {
          PostCompletion(Completion{id, seq, std::move(bytes), close_after});
        },
        PipelinedHandler::Limits{options_.max_inflight_per_connection},
        PipelinedHandler::Hooks{pipelined_requests_total_},
        HandlerOptions{options_.default_deadline_ms, options_.max_batch});

    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, cfd, &ev) < 0) {
      ::close(cfd);
      continue;
    }
    conn->events = ev.events;
    conns_[id] = std::move(conn);
    ++connections_accepted_;
    connections_total_->Increment();
    connections_gauge_->Set(static_cast<double>(conns_.size()));
  }
}

void TcpServer::UpdateEvents(Conn* conn) {
  uint32_t desired = EPOLLRDHUP | EPOLLET;
  if (!conn->read_closed && !conn->stalled() && !draining_) {
    desired |= EPOLLIN;
  }
  if (conn->want_write) desired |= EPOLLOUT;
  if (desired == conn->events) return;
  epoll_event ev{};
  ev.events = desired;
  ev.data.u64 = conn->id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->events = desired;
  }
}

void TcpServer::ReadFromConn(Conn* conn) {
  char buf[64 * 1024];
  while (!conn->read_closed && !conn->stalled()) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->last_activity = Clock::now();
      conn->framer.Append(std::string_view(buf, static_cast<size_t>(n)));
      ProcessInput(conn);
      continue;
    }
    if (n == 0) {
      HandleEof(conn);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(conn->id);
    return;
  }
  UpdateEvents(conn);
}

void TcpServer::ProcessInput(Conn* conn) {
  std::string line;
  while (!conn->read_closed && !conn->stalled()) {
    // Slow-reader guard: stop parsing (and reading) while the peer's
    // unread replies exceed the watermark; WriteOut resumes us.
    if (conn->unflushed() > options_.write_high_watermark) {
      conn->stalled_write = true;
      stalls_total_->Increment();
      stalled_gauge_->Add(1);
      break;
    }
    const LineFramer::Next next = conn->framer.NextLine(&line);
    if (next == LineFramer::Next::kNeedMore) break;
    if (next == LineFramer::Next::kOverflow) {
      conn->handler->FeedOversized(conn->framer.max_line_bytes());
      conn->read_closed = true;
      ::shutdown(conn->fd, SHUT_RD);
      break;
    }
    const PipelinedHandler::FeedResult result = conn->handler->Feed(line);
    if (result == PipelinedHandler::FeedResult::kStalled) {
      conn->stalled_queue = true;
      stalls_total_->Increment();
      stalled_gauge_->Add(1);
      break;
    }
    if (result == PipelinedHandler::FeedResult::kClose) {
      conn->read_closed = true;
      ::shutdown(conn->fd, SHUT_RD);
      break;
    }
  }
  UpdateEvents(conn);
}

void TcpServer::HandleEof(Conn* conn) {
  conn->read_closed = true;
  std::string residual;
  if (conn->framer.TakeResidual(&residual) && !Trim(residual).empty()) {
    // A final unterminated line is a line (matches the blocking front
    // end): feed it; if it parks, remember the EOF for after it runs.
    const PipelinedHandler::FeedResult result = conn->handler->Feed(residual);
    if (result == PipelinedHandler::FeedResult::kStalled) {
      conn->stalled_queue = true;
      stalls_total_->Increment();
      stalled_gauge_->Add(1);
      conn->eof_pending = true;
      UpdateEvents(conn);
      return;
    }
  }
  conn->handler->OnInputClosed();
  UpdateEvents(conn);
}

bool TcpServer::FlushConn(Conn* conn) {
  while (true) {
    const auto it = conn->ready.find(conn->next_flush);
    if (it == conn->ready.end()) break;
    conn->out.append(it->second.bytes);
    if (it->second.close_after) conn->closing = true;
    conn->ready.erase(it);
    ++conn->next_flush;
  }
  return WriteOut(conn);
}

bool TcpServer::WriteOut(Conn* conn) {
  while (conn->out_pos < conn->out.size()) {
    const ssize_t n = ::send(conn->fd, conn->out.data() + conn->out_pos,
                             conn->out.size() - conn->out_pos, MSG_NOSIGNAL);
    if (n >= 0) {
      conn->out_pos += static_cast<size_t>(n);
      conn->last_write_progress = Clock::now();
      conn->last_activity = conn->last_write_progress;
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!conn->want_write) {
        conn->want_write = true;
        UpdateEvents(conn);
      }
      return true;
    }
    CloseConn(conn->id);
    return false;
  }
  conn->out.clear();
  conn->out_pos = 0;
  if (conn->want_write) {
    conn->want_write = false;
    UpdateEvents(conn);
  }
  if (conn->closing) {
    CloseConn(conn->id);
    return false;
  }
  if (conn->stalled_write) {
    // Backlog drained: resume parsing buffered frames, then the socket
    // (edge-triggered reads need the manual retry — no new edge will
    // fire for bytes that already arrived).
    const uint64_t id = conn->id;
    conn->stalled_write = false;
    stalled_gauge_->Add(-1);
    ProcessInput(conn);
    if (!conn->read_closed && !conn->stalled()) {
      ReadFromConn(conn);
      // The nested read may have hit a hard recv error and closed —
      // freed — the connection. Report that, so no caller (e.g. the
      // event loop handling the EPOLLIN bit of the same event mask)
      // touches `conn` again.
      if (conns_.find(id) == conns_.end()) return false;
    }
  }
  return true;
}

void TcpServer::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completion_mu_);
    batch.swap(completions_);
  }
  if (batch.empty()) return;
  for (Completion& completion : batch) {
    const auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) continue;  // connection already gone
    const uint64_t seq = completion.seq;
    it->second->ready.emplace(seq, std::move(completion));
  }
  // Flush after grouping so one conn's pipelined replies coalesce into
  // one send. Look conns up again: a flush can close its connection.
  std::vector<uint64_t> touched;
  touched.reserve(batch.size());
  for (const Completion& completion : batch) {
    touched.push_back(completion.conn_id);
  }
  for (const uint64_t id : touched) {
    const auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    FlushConn(it->second.get());
  }
  RetryStalled();
}

void TcpServer::RetryStalled() {
  std::vector<uint64_t> stalled_ids;
  for (const auto& [id, conn] : conns_) {
    if (conn->stalled_queue) stalled_ids.push_back(id);
  }
  for (const uint64_t id : stalled_ids) {
    const auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    Conn* conn = it->second.get();
    const PipelinedHandler::FeedResult result =
        conn->handler->ResumeDeferred();
    if (result == PipelinedHandler::FeedResult::kStalled) continue;
    conn->stalled_queue = false;
    stalled_gauge_->Add(-1);
    if (conn->eof_pending) {
      conn->eof_pending = false;
      conn->handler->OnInputClosed();
      UpdateEvents(conn);
      continue;
    }
    if (!conn->read_closed) {
      ProcessInput(conn);
      if (!conn->read_closed && !conn->stalled()) ReadFromConn(conn);
    } else {
      UpdateEvents(conn);
    }
  }
}

void TcpServer::CheckTimers() {
  if (options_.idle_timeout_s <= 0 && options_.write_timeout_s <= 0) return;
  const Clock::time_point now = Clock::now();
  std::vector<uint64_t> idle_ids;
  std::vector<uint64_t> stuck_ids;
  for (const auto& [id, conn] : conns_) {
    if (options_.idle_timeout_s > 0 && ConnFinished(*conn)) {
      const double idle =
          std::chrono::duration<double>(now - conn->last_activity).count();
      if (idle > options_.idle_timeout_s) {
        idle_ids.push_back(id);
        continue;
      }
    }
    if (options_.write_timeout_s > 0 && conn->unflushed() > 0) {
      const double blocked =
          std::chrono::duration<double>(now - conn->last_write_progress)
              .count();
      if (blocked > options_.write_timeout_s) stuck_ids.push_back(id);
    }
  }
  for (const uint64_t id : idle_ids) {
    idle_disconnects_total_->Increment();
    CloseConn(id);
  }
  for (const uint64_t id : stuck_ids) {
    write_timeouts_total_->Increment();
    CloseConn(id);
  }
}

void TcpServer::BeginDrain() {
  draining_ = true;
  accept_retry_ = false;
  drain_deadline_ =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             options_.drain_timeout_s > 0
                                 ? options_.drain_timeout_s
                                 : 1e9));
  // Stop accepting immediately; pending replies still flush below.
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (const auto& [id, conn] : conns_) {
    UpdateEvents(conn.get());  // draining_ masks EPOLLIN off
  }
}

bool TcpServer::DrainStep() {
  // Close everything that owes the client nothing; force-close the
  // rest once the deadline passes.
  const bool expired = Clock::now() >= drain_deadline_;
  std::vector<uint64_t> close_ids;
  for (const auto& [id, conn] : conns_) {
    if (expired || ConnFinished(*conn)) close_ids.push_back(id);
  }
  for (const uint64_t id : close_ids) CloseConn(id);
  return conns_.empty();
}

void TcpServer::CloseConn(uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn* conn = it->second.get();
  // The client is gone, so nothing it still has queued or in flight is
  // worth evaluating: cancel it all. Queued tasks are shed at dequeue;
  // running evaluations abort at their next checkpoint. Their replies
  // still post completions for this id, which DrainCompletions already
  // tolerates for closed connections.
  if (conn->handler != nullptr) conn->handler->CancelOutstanding();
  if (conn->stalled()) stalled_gauge_->Add(-1);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conns_.erase(it);
  connections_gauge_->Set(static_cast<double>(conns_.size()));
}

}  // namespace xcq::server
