#include "xcq/server/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "xcq/util/string_util.h"

namespace xcq::server {

namespace {

/// Buffered line reader over a socket fd. Lines are LF-terminated; a
/// trailing CR is stripped so `telnet`-style clients work.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// False on EOF or error with no pending data.
  bool ReadLine(std::string* line) {
    line->clear();
    while (true) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        if (!line->empty() && line->back() == '\r') line->pop_back();
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        // Treat a final unterminated line as a line.
        if (!buffer_.empty()) {
          *line = std::move(buffer_);
          buffer_.clear();
          return true;
        }
        return false;
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buffer_;
};

bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

TcpServer::TcpServer(ServerOptions options)
    : options_(std::move(options)),
      store_(StoreOptions{options_.capacity_bytes, options_.session,
                          options_.trace}),
      service_(&store_, ServiceOptions{options_.worker_threads}) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  if (listen_fd_.load() >= 0) {
    return Status::AlreadyExists("server already started");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(StrFormat("socket: %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument(
        StrFormat("bad bind address '%s'", options_.bind_address.c_str()));
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status =
        Status::IoError(StrFormat("bind %s:%u: %s",
                                  options_.bind_address.c_str(),
                                  static_cast<unsigned>(options_.port),
                                  std::strerror(errno)));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) < 0) {
    const Status status =
        Status::IoError(StrFormat("listen: %s", std::strerror(errno)));
    ::close(fd);
    return status;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }

  listen_fd_.store(fd);
  stopping_ = false;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpServer::Stop() {
  stopping_ = true;
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<Connection> connections;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    // Wake connection threads blocked in recv() on idle clients; the
    // threads own and close their fds themselves.
    for (const int open : open_fds_) ::shutdown(open, SHUT_RDWR);
    connections.swap(connections_);
  }
  for (Connection& conn : connections) {
    if (conn.thread.joinable()) conn.thread.join();
  }
}

void TcpServer::ReapFinishedLocked() {
  std::erase_if(connections_, [](Connection& conn) {
    if (!conn.done->load()) return false;
    if (conn.thread.joinable()) conn.thread.join();
    return true;
  });
}

void TcpServer::AcceptLoop() {
  // Snapshot once: Stop() closes the fd and swaps in -1; accept() then
  // fails and the loop exits. Re-reading listen_fd_ per iteration would
  // race that swap.
  const int fd = listen_fd_.load();
  while (!stopping_) {
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      // Transient conditions must not kill the accept loop — a daemon
      // that silently stops accepting is worse than a refused client.
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Out of descriptors/buffers: back off until connections close.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      return;  // listener closed by Stop(), or fatal
    }
    ++connections_accepted_;
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::lock_guard<std::mutex> lock(conn_mu_);
    // A long-lived daemon sees many short connections: join the ones
    // already finished so thread handles do not accumulate.
    ReapFinishedLocked();
    open_fds_.push_back(client);
    connections_.push_back(Connection{
        std::thread([this, client, done] {
          ServeConnection(client);
          done->store(true);
        }),
        done});
  }
}

void TcpServer::ServeConnection(int fd) {
  LineReader reader(fd);
  RequestHandler handler(&store_, &service_);
  const auto read_line = [&reader](std::string* line) {
    return reader.ReadLine(line);
  };
  const auto write_line = [fd](std::string_view line) {
    std::string out(line);
    out += '\n';
    SendAll(fd, out);
  };
  std::string line;
  while (!stopping_ && reader.ReadLine(&line)) {
    if (Trim(line).empty()) continue;
    if (!handler.Handle(line, read_line, write_line)) break;
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    std::erase(open_fds_, fd);
  }
  ::close(fd);
}

}  // namespace xcq::server
