#include "xcq/server/document_store.h"

#include <utility>

#include "xcq/instance/instance_io.h"
#include "xcq/instance/stats.h"
#include "xcq/util/string_util.h"
#include "xcq/xml/sax_parser.h"

namespace xcq::server {

// --- StoredDocument --------------------------------------------------------

StoredDocument::StoredDocument(QuerySession session)
    : session_(std::move(session)) {
  RefreshFootprintLocked();  // single-threaded here: no lock needed yet
}

void StoredDocument::RefreshFootprintLocked() {
  footprint_.store(session_.has_instance()
                       ? session_.instance().MemoryFootprint()
                       : 0);
}

Result<QueryOutcome> StoredDocument::Query(std::string_view query_text) {
  std::lock_guard<std::mutex> lock(mu_);
  const Result<QueryOutcome> outcome = session_.Run(query_text);
  // Even failed runs can have merged labels in before erroring.
  RefreshFootprintLocked();
  if (outcome.ok()) {
    ++queries_served_;
    AccumulateSweepStats(outcome->stats);
  }
  return outcome;
}

Result<std::vector<QueryOutcome>> StoredDocument::Batch(
    const std::vector<std::string>& query_texts) {
  std::lock_guard<std::mutex> lock(mu_);
  Result<std::vector<QueryOutcome>> outcomes =
      session_.RunBatch(query_texts);
  RefreshFootprintLocked();
  if (outcomes.ok()) {
    ++batches_served_;
    queries_served_ += outcomes->size();
    for (const QueryOutcome& outcome : *outcomes) {
      AccumulateSweepStats(outcome.stats);
    }
  }
  return outcomes;
}

void StoredDocument::AccumulateSweepStats(const engine::EvalStats& stats) {
  sweep_visited_ += stats.sweep_visited;
  sweep_full_ += stats.sweep_full;
  pruned_sweeps_ += stats.pruned_sweeps;
  skipped_sweeps_ += stats.skipped_sweeps;
}

DocumentInfo StoredDocument::Info(std::string name) const {
  std::lock_guard<std::mutex> lock(mu_);
  DocumentInfo info;
  info.name = std::move(name);
  info.queries_served = queries_served_;
  info.batches_served = batches_served_;
  info.batches_shared = session_.shared_batch_count();
  info.source_parses = session_.source_parse_count();
  info.has_source = session_.has_source();
  info.tracked_tags = session_.tracked_tag_count();
  info.tracked_patterns = session_.tracked_pattern_count();
  info.sweep_visited = sweep_visited_;
  info.sweep_full = sweep_full_;
  info.pruned_sweeps = pruned_sweeps_;
  info.skipped_sweeps = skipped_sweeps_;
  if (session_.has_instance()) {
    const Instance& instance = session_.instance();
    info.memory_bytes = instance.MemoryFootprint();
    info.vertex_count = instance.vertex_count();
    info.rle_edges = instance.rle_edge_count();
    info.tree_nodes = TreeNodeCount(instance);
    // Report the built size only — STATS must not trigger a build.
    if (instance.path_summary_valid()) {
      info.summary_nodes = instance.EnsurePathSummary().nodes.size();
    }
  }
  return info;
}

// --- DocumentStore ---------------------------------------------------------

DocumentStore::DocumentStore(StoreOptions options)
    : options_(std::move(options)) {}

Status DocumentStore::LoadXml(const std::string& name, std::string xml) {
  XCQ_ASSIGN_OR_RETURN(QuerySession session,
                       QuerySession::Open(std::move(xml), options_.session));
  auto doc = std::make_shared<StoredDocument>(std::move(session));
  doc->last_used_.store(++clock_);
  std::unique_lock<std::shared_mutex> lock(mu_);
  docs_[name] = std::move(doc);
  EnforceCapacityLocked(name);
  return Status::OK();
}

Status DocumentStore::LoadInstance(const std::string& name,
                                   Instance instance) {
  XCQ_ASSIGN_OR_RETURN(
      QuerySession session,
      QuerySession::FromInstance(std::move(instance), options_.session));
  auto doc = std::make_shared<StoredDocument>(std::move(session));
  doc->last_used_.store(++clock_);
  std::unique_lock<std::shared_mutex> lock(mu_);
  docs_[name] = std::move(doc);
  EnforceCapacityLocked(name);
  return Status::OK();
}

Status DocumentStore::LoadFile(const std::string& name,
                               const std::string& path) {
  // Two-step declare + assign: GCC 12's -Wmaybe-uninitialized misfires
  // on the declaration-inside-macro form (bogus warning through the
  // StatusOr move, https://gcc.gnu.org/bugzilla/show_bug.cgi?id=105562;
  // re-verified against g++ 12.2.0 with -DXCQ_WARNINGS_AS_ERRORS=ON).
  // Collapse to one line once the floor compiler is GCC >= 13.
  std::string bytes;
  XCQ_ASSIGN_OR_RETURN(bytes, xml::ReadFileToString(path));
  if (StartsWith(bytes, "XCQI")) {
    XCQ_ASSIGN_OR_RETURN(Instance instance, DeserializeInstance(bytes));
    return LoadInstance(name, std::move(instance));
  }
  return LoadXml(name, std::move(bytes));
}

std::shared_ptr<StoredDocument> DocumentStore::Find(
    const std::string& name) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = docs_.find(name);
  if (it == docs_.end()) return nullptr;
  it->second->last_used_.store(++clock_);
  return it->second;
}

bool DocumentStore::Evict(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return docs_.erase(name) > 0;
}

std::vector<DocumentInfo> DocumentStore::Stats() const {
  // Copy the document pointers under the shared lock, then take each
  // document's own lock outside of it — Info() can be slow (tree-node
  // counting) and must not block loads.
  std::vector<std::pair<std::string, std::shared_ptr<StoredDocument>>> docs;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    docs.reserve(docs_.size());
    for (const auto& [name, doc] : docs_) docs.emplace_back(name, doc);
  }
  std::vector<DocumentInfo> infos;
  infos.reserve(docs.size());
  for (auto& [name, doc] : docs) infos.push_back(doc->Info(std::move(name)));
  return infos;
}

size_t DocumentStore::total_bytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return TotalBytesLocked();
}

size_t DocumentStore::document_count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return docs_.size();
}

size_t DocumentStore::TotalBytesLocked() const {
  size_t total = 0;
  for (const auto& [name, doc] : docs_) {
    total += doc->memory_bytes();
  }
  return total;
}

void DocumentStore::EnforceCapacityLocked(const std::string& keep) {
  if (options_.capacity_bytes == 0) return;
  while (docs_.size() > 1 &&
         TotalBytesLocked() > options_.capacity_bytes) {
    auto victim = docs_.end();
    for (auto it = docs_.begin(); it != docs_.end(); ++it) {
      if (it->first == keep) continue;
      if (victim == docs_.end() ||
          it->second->last_used_.load() <
              victim->second->last_used_.load()) {
        victim = it;
      }
    }
    if (victim == docs_.end()) return;  // only `keep` is left
    docs_.erase(victim);
  }
}

}  // namespace xcq::server
