#include "xcq/server/document_store.h"

#include <utility>

#include "xcq/instance/instance_io.h"
#include "xcq/instance/stats.h"
#include "xcq/util/string_util.h"
#include "xcq/util/timer.h"
#include "xcq/xml/sax_parser.h"

namespace xcq::server {

namespace {

/// The per-document label every document-scoped series carries.
obs::LabelSet DocLabels(const std::string& name) {
  return obs::LabelSet{{"document", name}};
}

obs::LabelSet DocAxisLabels(const std::string& name,
                            engine::AxisFamily family) {
  return obs::LabelSet{
      {"document", name},
      {"axis", std::string(engine::AxisFamilyName(family))}};
}

}  // namespace

// --- StoredDocument --------------------------------------------------------

StoredDocument::StoredDocument(QuerySession session, std::string name,
                               obs::Registry* registry)
    : session_(std::move(session)),
      name_(std::move(name)),
      registry_(registry) {
  RefreshFootprintLocked();  // single-threaded here: no lock needed yet
  if (registry_ == nullptr) return;
  // Resolve every handle once; the per-query metrics cost is then only
  // relaxed atomic adds. The full series catalog is documented in
  // docs/OBSERVABILITY.md — keep the two in sync.
  obs::Registry& r = *registry_;
  handles_.queries = r.GetCounter("xcq_document_queries_total",
                                  DocLabels(name_),
                                  "Queries evaluated against the document");
  handles_.query_errors =
      r.GetCounter("xcq_document_query_errors_total", DocLabels(name_),
                   "Queries that failed (parse, compile, or evaluation)");
  handles_.batches =
      r.GetCounter("xcq_document_batches_total", DocLabels(name_),
                   "BATCH requests evaluated against the document");
  handles_.batches_shared = r.GetCounter(
      "xcq_document_batches_shared_total", DocLabels(name_),
      "Batches served with shared (multi-query) axis sweeps");
  handles_.latency = r.GetHistogram(
      "xcq_query_seconds", DocLabels(name_),
      obs::Histogram::LatencyBounds(),
      "End-to-end query latency at the document store (lock held)");
  for (size_t p = 0; p < obs::kPhaseCount; ++p) {
    obs::LabelSet labels = DocLabels(name_);
    labels.Add("phase",
               std::string(obs::PhaseName(static_cast<obs::Phase>(p))));
    handles_.phase_seconds[p] =
        r.GetCounter("xcq_phase_seconds_total", std::move(labels),
                     "Seconds spent per query phase (from trace spans)");
  }
  for (size_t f = 0; f < engine::kAxisFamilyCount; ++f) {
    const auto family = static_cast<engine::AxisFamily>(f);
    AxisHandles& ah = handles_.axis[f];
    ah.sweeps = r.GetCounter("xcq_sweeps_total",
                             DocAxisLabels(name_, family),
                             "Axis sweeps run, by kernel family");
    ah.visited = r.GetCounter("xcq_sweep_visited_total",
                              DocAxisLabels(name_, family),
                              "Vertices visited by axis sweeps");
    ah.full = r.GetCounter(
        "xcq_sweep_full_total", DocAxisLabels(name_, family),
        "Vertices unpruned sweeps would have visited");
    ah.pruned = r.GetCounter("xcq_sweeps_pruned_total",
                             DocAxisLabels(name_, family),
                             "Sweeps restricted to a path-summary region");
    ah.skipped = r.GetCounter("xcq_sweeps_skipped_total",
                              DocAxisLabels(name_, family),
                              "Sweeps skipped outright (empty region)");
    ah.seconds = r.GetCounter("xcq_sweep_seconds_total",
                              DocAxisLabels(name_, family),
                              "Seconds inside sweep kernels");
    ah.prune_ratio = r.GetGauge(
        "xcq_sweep_prune_ratio", DocAxisLabels(name_, family),
        "Fraction of full-sweep visits avoided by pruning (on scrape)");
  }
  handles_.memory_bytes =
      r.GetGauge("xcq_document_memory_bytes", DocLabels(name_),
                 "Instance footprint in bytes");
  handles_.vertices = r.GetGauge("xcq_document_vertices", DocLabels(name_),
                                 "DAG vertices (including splits)");
  handles_.tree_nodes =
      r.GetGauge("xcq_document_tree_nodes", DocLabels(name_),
                 "Tree nodes the DAG represents");
  handles_.summary_nodes =
      r.GetGauge("xcq_document_summary_nodes", DocLabels(name_),
                 "Path-summary nodes (0 = not built)");
  handles_.summary_builds =
      r.GetGauge("xcq_document_summary_builds", DocLabels(name_),
                 "Path-summary (re)builds so far");
  handles_.traversal_builds =
      r.GetGauge("xcq_document_traversal_builds", DocLabels(name_),
                 "Traversal-cache (re)builds so far");
  handles_.scratch_resident =
      r.GetGauge("xcq_document_scratch_resident", DocLabels(name_),
                 "Scratch-pool slots currently held by the instance");
  handles_.scratch_capacity =
      r.GetGauge("xcq_document_scratch_capacity", DocLabels(name_),
                 "Scratch-pool residency cap");
  handles_.scratch_hits =
      r.GetGauge("xcq_document_scratch_hits", DocLabels(name_),
                 "Scratch checkouts served without allocating");
  handles_.scratch_allocations =
      r.GetGauge("xcq_document_scratch_allocations", DocLabels(name_),
                 "Scratch checkouts that had to (re)allocate");
  handles_.qps = r.GetGauge("xcq_document_qps", DocLabels(name_),
                            "Queries per second of registry uptime");
  handles_.batch_share_rate =
      r.GetGauge("xcq_document_batch_share_rate", DocLabels(name_),
                 "Fraction of batches served with shared sweeps");
}

void StoredDocument::RefreshFootprintLocked() {
  footprint_.store(session_.has_instance()
                       ? session_.instance().MemoryFootprint()
                       : 0);
}

Result<QueryOutcome> StoredDocument::Query(std::string_view query_text) {
  std::lock_guard<std::mutex> lock(mu_);
  double elapsed = 0.0;
  Result<QueryOutcome> outcome = Status::Internal("query did not run");
  {
    ScopedTimer timer(&elapsed);
    outcome = session_.Run(query_text);
  }
  // Even failed runs can have merged labels in before erroring.
  RefreshFootprintLocked();
  if (outcome.ok()) {
    ++queries_served_;
    label_seconds_ += outcome->label_seconds;
    minimize_seconds_ += outcome->minimize_seconds;
    AccumulateSweepStats(outcome->stats);
    if (handles_.queries != nullptr) handles_.queries->Increment();
    RecordOutcomeMetricsLocked(*outcome, elapsed);
  } else if (handles_.query_errors != nullptr) {
    handles_.query_errors->Increment();
  }
  return outcome;
}

Result<std::vector<QueryOutcome>> StoredDocument::Batch(
    const std::vector<std::string>& query_texts) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t shared_before = session_.shared_batch_count();
  double elapsed = 0.0;
  Result<std::vector<QueryOutcome>> outcomes =
      Status::Internal("batch did not run");
  {
    ScopedTimer timer(&elapsed);
    outcomes = session_.RunBatch(query_texts);
  }
  RefreshFootprintLocked();
  if (outcomes.ok()) {
    ++batches_served_;
    queries_served_ += outcomes->size();
    // Each batch member is charged an equal share of the batch's wall
    // time in the latency histogram — per-member times do not exist on
    // the shared-sweep path.
    const double share =
        outcomes->empty() ? 0.0
                          : elapsed / static_cast<double>(outcomes->size());
    for (const QueryOutcome& outcome : *outcomes) {
      label_seconds_ += outcome.label_seconds;
      minimize_seconds_ += outcome.minimize_seconds;
      AccumulateSweepStats(outcome.stats);
      if (handles_.queries != nullptr) handles_.queries->Increment();
      RecordOutcomeMetricsLocked(outcome, share);
    }
    if (handles_.batches != nullptr) handles_.batches->Increment();
    if (handles_.batches_shared != nullptr) {
      const uint64_t shared_delta =
          session_.shared_batch_count() - shared_before;
      if (shared_delta > 0) {
        handles_.batches_shared->Increment(
            static_cast<double>(shared_delta));
      }
    }
  } else if (handles_.query_errors != nullptr) {
    handles_.query_errors->Increment(
        static_cast<double>(query_texts.size()));
  }
  return outcomes;
}

void StoredDocument::AccumulateSweepStats(const engine::EvalStats& stats) {
  sweep_visited_ += stats.sweep_visited;
  sweep_full_ += stats.sweep_full;
  pruned_sweeps_ += stats.pruned_sweeps;
  skipped_sweeps_ += stats.skipped_sweeps;
}

void StoredDocument::RecordOutcomeMetricsLocked(const QueryOutcome& outcome,
                                                double elapsed_seconds) {
  if (registry_ == nullptr) return;
  handles_.latency->Observe(elapsed_seconds);
  for (size_t p = 0; p < obs::kPhaseCount; ++p) {
    const double seconds =
        outcome.trace.PhaseSeconds(static_cast<obs::Phase>(p));
    if (seconds > 0.0) handles_.phase_seconds[p]->Increment(seconds);
  }
  for (size_t f = 0; f < engine::kAxisFamilyCount; ++f) {
    const engine::AxisFamilyStats& src = outcome.stats.axis[f];
    AxisHandles& ah = handles_.axis[f];
    if (src.sweeps > 0) ah.sweeps->Increment(static_cast<double>(src.sweeps));
    if (src.visited > 0) {
      ah.visited->Increment(static_cast<double>(src.visited));
    }
    if (src.full > 0) ah.full->Increment(static_cast<double>(src.full));
    if (src.pruned > 0) ah.pruned->Increment(static_cast<double>(src.pruned));
    if (src.skipped > 0) {
      ah.skipped->Increment(static_cast<double>(src.skipped));
    }
    if (src.seconds > 0.0) ah.seconds->Increment(src.seconds);
  }
}

DocumentInfo StoredDocument::Info(std::string name) const {
  std::lock_guard<std::mutex> lock(mu_);
  DocumentInfo info;
  info.name = std::move(name);
  info.queries_served = queries_served_;
  info.batches_served = batches_served_;
  info.batches_shared = session_.shared_batch_count();
  info.source_parses = session_.source_parse_count();
  info.has_source = session_.has_source();
  info.tracked_tags = session_.tracked_tag_count();
  info.tracked_patterns = session_.tracked_pattern_count();
  info.sweep_visited = sweep_visited_;
  info.sweep_full = sweep_full_;
  info.pruned_sweeps = pruned_sweeps_;
  info.skipped_sweeps = skipped_sweeps_;
  info.label_seconds = label_seconds_;
  info.minimize_seconds = minimize_seconds_;
  if (session_.has_instance()) {
    const Instance& instance = session_.instance();
    info.memory_bytes = instance.MemoryFootprint();
    info.vertex_count = instance.vertex_count();
    info.rle_edges = instance.rle_edge_count();
    info.tree_nodes = TreeNodeCount(instance);
    // Report the built size only — STATS must not trigger a build.
    if (instance.path_summary_valid()) {
      info.summary_nodes = instance.EnsurePathSummary().nodes.size();
    }
    info.scratch_resident = instance.scratch_slot_count();
    info.scratch_hits = instance.scratch_stats().pool_hits;
    info.scratch_allocs = instance.scratch_stats().allocations;
    info.traversal_builds = instance.traversal_builds();
    info.summary_builds = instance.path_summary_builds();
  }
  if (batches_served_ > 0) {
    info.share_rate = static_cast<double>(session_.shared_batch_count()) /
                      static_cast<double>(batches_served_);
  }
  if (registry_ != nullptr) {
    const double uptime = registry_->UptimeSeconds();
    if (uptime > 0.0) {
      info.qps = static_cast<double>(queries_served_) / uptime;
    }
    const obs::Histogram::Snapshot snap = handles_.latency->Snap();
    const std::vector<double>& bounds = handles_.latency->bounds();
    info.p50_ms = obs::Histogram::Quantile(snap, bounds, 0.50) * 1e3;
    info.p95_ms = obs::Histogram::Quantile(snap, bounds, 0.95) * 1e3;
    info.p99_ms = obs::Histogram::Quantile(snap, bounds, 0.99) * 1e3;
  }
  return info;
}

void StoredDocument::UpdateScrapeGauges(double uptime_seconds) {
  if (registry_ == nullptr) return;
  const DocumentInfo info = Info(name_);
  handles_.memory_bytes->Set(static_cast<double>(info.memory_bytes));
  handles_.vertices->Set(static_cast<double>(info.vertex_count));
  handles_.tree_nodes->Set(static_cast<double>(info.tree_nodes));
  handles_.summary_nodes->Set(static_cast<double>(info.summary_nodes));
  handles_.summary_builds->Set(static_cast<double>(info.summary_builds));
  handles_.traversal_builds->Set(
      static_cast<double>(info.traversal_builds));
  handles_.scratch_resident->Set(
      static_cast<double>(info.scratch_resident));
  handles_.scratch_hits->Set(static_cast<double>(info.scratch_hits));
  handles_.scratch_allocations->Set(
      static_cast<double>(info.scratch_allocs));
  handles_.batch_share_rate->Set(info.share_rate);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (session_.has_instance()) {
      handles_.scratch_capacity->Set(
          static_cast<double>(session_.instance().scratch_capacity()));
    }
    if (uptime_seconds > 0.0) {
      handles_.qps->Set(static_cast<double>(queries_served_) /
                        uptime_seconds);
    }
    for (size_t f = 0; f < engine::kAxisFamilyCount; ++f) {
      AxisHandles& ah = handles_.axis[f];
      const double full = ah.full->Value();
      const double visited = ah.visited->Value();
      ah.prune_ratio->Set(full > 0.0 ? 1.0 - visited / full : 0.0);
    }
  }
}

// --- DocumentStore ---------------------------------------------------------

DocumentStore::DocumentStore(StoreOptions options)
    : options_(std::move(options)),
      loads_total_(registry_.GetCounter("xcq_store_loads_total", {},
                                        "Documents loaded (LOAD requests)")),
      load_misses_total_(registry_.GetCounter(
          "xcq_store_load_misses_total", {},
          "Lookups of documents that were not loaded")),
      evictions_total_(registry_.GetCounter(
          "xcq_store_evictions_total", {},
          "Documents dropped (EVICT requests and capacity eviction)")),
      documents_gauge_(registry_.GetGauge("xcq_store_documents", {},
                                          "Documents currently cached")),
      bytes_gauge_(registry_.GetGauge(
          "xcq_store_bytes", {},
          "Summed instance footprint of cached documents")),
      uptime_gauge_(registry_.GetGauge("xcq_server_uptime_seconds", {},
                                       "Seconds since the store started")) {
}

Status DocumentStore::LoadXml(const std::string& name, std::string xml) {
  XCQ_ASSIGN_OR_RETURN(QuerySession session,
                       QuerySession::Open(std::move(xml), options_.session));
  auto doc =
      std::make_shared<StoredDocument>(std::move(session), name, &registry_);
  doc->last_used_.store(++clock_);
  loads_total_->Increment();
  // Capacity victims destruct after `mu_` is released (see Evict).
  std::vector<std::shared_ptr<StoredDocument>> doomed;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    docs_[name] = std::move(doc);
    EnforceCapacityLocked(name, &doomed);
  }
  return Status::OK();
}

Status DocumentStore::LoadInstance(const std::string& name,
                                   Instance instance) {
  XCQ_ASSIGN_OR_RETURN(
      QuerySession session,
      QuerySession::FromInstance(std::move(instance), options_.session));
  auto doc =
      std::make_shared<StoredDocument>(std::move(session), name, &registry_);
  doc->last_used_.store(++clock_);
  loads_total_->Increment();
  // Capacity victims destruct after `mu_` is released (see Evict).
  std::vector<std::shared_ptr<StoredDocument>> doomed;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    docs_[name] = std::move(doc);
    EnforceCapacityLocked(name, &doomed);
  }
  return Status::OK();
}

Status DocumentStore::LoadFile(const std::string& name,
                               const std::string& path) {
  // Two-step declare + assign: GCC 12's -Wmaybe-uninitialized misfires
  // on the declaration-inside-macro form (bogus warning through the
  // StatusOr move, https://gcc.gnu.org/bugzilla/show_bug.cgi?id=105562;
  // re-verified against g++ 12.2.0 with -DXCQ_WARNINGS_AS_ERRORS=ON).
  // Collapse to one line once the floor compiler is GCC >= 13.
  std::string bytes;
  XCQ_ASSIGN_OR_RETURN(bytes, xml::ReadFileToString(path));
  if (StartsWith(bytes, "XCQI")) {
    XCQ_ASSIGN_OR_RETURN(Instance instance, DeserializeInstance(bytes));
    return LoadInstance(name, std::move(instance));
  }
  return LoadXml(name, std::move(bytes));
}

std::shared_ptr<StoredDocument> DocumentStore::Find(
    const std::string& name) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = docs_.find(name);
  if (it == docs_.end()) {
    load_misses_total_->Increment();
    return nullptr;
  }
  it->second->last_used_.store(++clock_);
  return it->second;
}

bool DocumentStore::Evict(const std::string& name) {
  // Move the document out of the map and let it destruct after the
  // exclusive lock is released: when the map held the last reference,
  // freeing a large instance under `mu_` would stall every concurrent
  // Find() (and whoever called us) for the whole teardown.
  std::shared_ptr<StoredDocument> doomed;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    const auto it = docs_.find(name);
    if (it == docs_.end()) return false;
    doomed = std::move(it->second);
    docs_.erase(it);
    evictions_total_->Increment();
    // Stop rendering the evicted document's series; cached handles stay
    // valid (clients may still hold the StoredDocument shared_ptr).
    registry_.RemoveLabeled("document", name);
  }
  return true;
}

std::vector<DocumentInfo> DocumentStore::Stats() const {
  // Copy the document pointers under the shared lock, then take each
  // document's own lock outside of it — Info() can be slow (tree-node
  // counting) and must not block loads.
  std::vector<std::pair<std::string, std::shared_ptr<StoredDocument>>> docs;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    docs.reserve(docs_.size());
    for (const auto& [name, doc] : docs_) docs.emplace_back(name, doc);
  }
  std::vector<DocumentInfo> infos;
  infos.reserve(docs.size());
  for (auto& [name, doc] : docs) infos.push_back(doc->Info(std::move(name)));
  return infos;
}

size_t DocumentStore::total_bytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return TotalBytesLocked();
}

size_t DocumentStore::document_count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return docs_.size();
}

size_t DocumentStore::TotalBytesLocked() const {
  size_t total = 0;
  for (const auto& [name, doc] : docs_) {
    total += doc->memory_bytes();
  }
  return total;
}

void DocumentStore::EnforceCapacityLocked(
    const std::string& keep,
    std::vector<std::shared_ptr<StoredDocument>>* doomed) {
  if (options_.capacity_bytes == 0) return;
  while (docs_.size() > 1 &&
         TotalBytesLocked() > options_.capacity_bytes) {
    auto victim = docs_.end();
    for (auto it = docs_.begin(); it != docs_.end(); ++it) {
      if (it->first == keep) continue;
      if (victim == docs_.end() ||
          it->second->last_used_.load() <
              victim->second->last_used_.load()) {
        victim = it;
      }
    }
    if (victim == docs_.end()) return;  // only `keep` is left
    evictions_total_->Increment();
    registry_.RemoveLabeled("document", victim->first);
    doomed->push_back(std::move(victim->second));
    docs_.erase(victim);
  }
}

std::string DocumentStore::ScrapeMetrics() {
  // Snapshot the document pointers under the shared lock, then refresh
  // each document's gauges outside it (gauge refresh takes the document
  // lock and counts tree nodes — it must not block loads).
  std::vector<std::shared_ptr<StoredDocument>> docs;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    docs.reserve(docs_.size());
    for (const auto& [name, doc] : docs_) docs.push_back(doc);
  }
  const double uptime = registry_.UptimeSeconds();
  for (const std::shared_ptr<StoredDocument>& doc : docs) {
    doc->UpdateScrapeGauges(uptime);
  }
  documents_gauge_->Set(static_cast<double>(document_count()));
  bytes_gauge_->Set(static_cast<double>(total_bytes()));
  uptime_gauge_->Set(uptime);
  return registry_.RenderPrometheus();
}

}  // namespace xcq::server
