#include "xcq/server/document_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "xcq/instance/instance_io.h"
#include "xcq/instance/stats.h"
#include "xcq/util/string_util.h"
#include "xcq/util/timer.h"
#include "xcq/xml/sax_parser.h"

namespace xcq::server {

namespace {

/// The per-document label every document-scoped series carries.
obs::LabelSet DocLabels(const std::string& name) {
  return obs::LabelSet{{"document", name}};
}

obs::LabelSet DocAxisLabels(const std::string& name,
                            engine::AxisFamily family) {
  return obs::LabelSet{
      {"document", name},
      {"axis", std::string(engine::AxisFamilyName(family))}};
}

/// Manifest header: format magic + version, own line.
constexpr std::string_view kManifestHeader = "XCQM 1";
constexpr std::string_view kManifestName = "MANIFEST";

/// Percent-encodes `s` so it is safe both as a file-name stem and as a
/// space-separated manifest token. Conservative: everything outside
/// [A-Za-z0-9._-] is escaped.
std::string EscapeToken(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const bool plain = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                       c == '-';
    if (plain) {
      out.push_back(c);
    } else {
      static const char* kHex = "0123456789ABCDEF";
      out.push_back('%');
      out.push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xF]);
      out.push_back(kHex[static_cast<unsigned char>(c) & 0xF]);
    }
  }
  return out;
}

bool UnescapeToken(std::string_view s, std::string* out) {
  out->clear();
  out->reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out->push_back(s[i]);
      continue;
    }
    if (i + 2 >= s.size()) return false;
    auto hex = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      return -1;
    };
    const int hi = hex(s[i + 1]);
    const int lo = hex(s[i + 2]);
    if (hi < 0 || lo < 0) return false;
    out->push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return true;
}

std::vector<std::string_view> SplitTokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t pos = 0;
  while (pos < line.size()) {
    const size_t space = line.find(' ', pos);
    const size_t end = space == std::string_view::npos ? line.size() : space;
    if (end > pos) tokens.push_back(line.substr(pos, end - pos));
    pos = end + 1;
  }
  return tokens;
}

bool ParseU64Token(std::string_view token, uint64_t* out) {
  if (token.empty() || token.size() > 20) return false;
  uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
    const auto digit = static_cast<uint64_t>(c - '0');
    // A wrapped value would look valid and then fail the size check as
    // a spurious corruption (or regress the generation counter).
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

/// Whole-file read that distinguishes a verified-missing file
/// (kNotFound) from a transient I/O failure such as fd pressure
/// (kIoError) — the fault-in policy may delete durable state only on
/// the former.
Result<std::string> ReadSpillBytes(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound(
          StrFormat("spill file '%s' is missing", path.c_str()));
    }
    return Status::IoError(StrFormat("cannot open '%s': %s", path.c_str(),
                                     std::strerror(errno)));
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Status::IoError(StrFormat(
          "error reading '%s': %s", path.c_str(), std::strerror(errno)));
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

}  // namespace

// --- SpillManager ----------------------------------------------------------

Status SpillManager::Init(const std::string& data_dir, RecoveryStats* stats) {
  if (::mkdir(data_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError(StrFormat("cannot create data dir '%s': %s",
                                     data_dir.c_str(), std::strerror(errno)));
  }
  struct stat st{};
  if (::stat(data_dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::IoError(
        StrFormat("data dir '%s' is not a directory", data_dir.c_str()));
  }

  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  const std::string manifest_path =
      data_dir + "/" + std::string(kManifestName);
  bool catalog_trusted = true;  // cleanup may delete unreferenced files
  if (::access(manifest_path.c_str(), F_OK) == 0) {
    Result<std::string> text = xml::ReadFileToString(manifest_path);
    if (!text.ok()) {
      ++stats->errors;
      std::fprintf(stderr, "xcq: recovery: manifest unreadable: %s\n",
                   text.status().ToString().c_str());
      catalog_trusted = false;
    } else {
      size_t line_no = 0;
      size_t pos = 0;
      bool header_ok = false;
      while (pos <= text->size()) {
        const size_t nl = text->find('\n', pos);
        // A manifest is rewritten atomically and always ends in '\n';
        // a final fragment without one is a torn line — skip it.
        const bool torn = nl == std::string::npos;
        const std::string_view line =
            std::string_view(*text).substr(
                pos, torn ? text->size() - pos : nl - pos);
        pos = torn ? text->size() + 1 : nl + 1;
        if (line.empty() && torn) break;  // text ended cleanly in '\n'
        ++line_no;
        if (line.empty()) continue;
        if (line_no == 1) {
          if (!torn && line == kManifestHeader) {
            header_ok = true;
            continue;
          }
          ++stats->errors;
          std::fprintf(stderr,
                       "xcq: recovery: manifest header unrecognized; "
                       "starting cold\n");
          catalog_trusted = false;
          break;
        }
        if (!header_ok) break;
        std::string reason;
        SpillRecord rec;
        std::string name;
        const std::vector<std::string_view> tokens = SplitTokens(line);
        uint64_t bytes = 0;
        uint64_t crc = 0;
        if (torn) {
          reason = "torn line";
        } else if (tokens.size() != 7 || tokens[0] != "doc") {
          reason = "malformed line";
        } else if (!UnescapeToken(tokens[1], &name) || name.empty()) {
          reason = "bad document name";
        } else if (tokens[2].find('/') != std::string_view::npos ||
                   tokens[2].empty()) {
          reason = "bad spill file name";
        } else if (!ParseU64Token(tokens[3], &bytes) ||
                   !ParseU64Token(tokens[4], &crc) || crc > UINT32_MAX ||
                   !ParseU64Token(tokens[5], &rec.generation)) {
          reason = "bad numeric field";
        }
        if (!reason.empty()) {
          ++stats->errors;
          std::fprintf(stderr,
                       "xcq: recovery: manifest line %zu skipped (%s)\n",
                       line_no, reason.c_str());
          continue;
        }
        rec.file = std::string(tokens[2]);
        rec.bytes = bytes;
        rec.crc = static_cast<uint32_t>(crc);
        if (tokens[6] != "-") {
          size_t lp = 0;
          const std::string_view packed = tokens[6];
          while (lp <= packed.size()) {
            const size_t comma = packed.find(',', lp);
            const size_t end =
                comma == std::string_view::npos ? packed.size() : comma;
            std::string label;
            if (end > lp && UnescapeToken(packed.substr(lp, end - lp),
                                          &label)) {
              rec.labels.push_back(std::move(label));
            }
            if (comma == std::string_view::npos) break;
            lp = comma + 1;
          }
        }
        next_generation_ = std::max(next_generation_, rec.generation + 1);
        // Duplicate names: last entry wins (a rewritten manifest never
        // has duplicates; tolerating them keeps recovery total).
        records_[name] = std::move(rec);
      }
      if (!header_ok) catalog_trusted = false;
    }
  }

  // Clean torn temp files always; clean unreferenced spills only when
  // the manifest was trusted (they are then crash leftovers from the
  // window between a spill rename and the manifest rewrite).
  DIR* dir = ::opendir(data_dir.c_str());
  if (dir != nullptr) {
    std::vector<std::string> referenced;
    for (const auto& [name, rec] : records_) referenced.push_back(rec.file);
    while (struct dirent* entry = ::readdir(dir)) {
      const std::string_view file = entry->d_name;
      if (file == "." || file == ".." || file == kManifestName) continue;
      const bool tmp = file.size() > 4 &&
                       file.substr(file.size() - 4) == ".tmp";
      const bool spill = file.size() > 5 &&
                         file.substr(file.size() - 5) == ".xcqi";
      const bool orphan =
          spill && catalog_trusted &&
          std::find(referenced.begin(), referenced.end(), file) ==
              referenced.end();
      if (tmp || orphan) {
        ::unlink((data_dir + "/" + std::string(file)).c_str());
      }
    }
    ::closedir(dir);
  }

  dir_ = data_dir;
  return Status::OK();
}

Result<SpillRecord> SpillManager::Write(const std::string& name,
                                        const Instance& instance) {
  if (!enabled()) {
    return Status::InvalidArgument("spill manager is disabled");
  }
  // Serialize outside the manager lock: callers hold their document
  // lock, so the instance cannot mutate underneath us.
  std::string bytes = SerializeInstanceChecksummed(instance);
  std::vector<std::string> labels;
  for (const RelationId r : instance.LiveRelations()) {
    labels.push_back(instance.schema().Name(r));
  }
  std::lock_guard<std::mutex> lock(mu_);
  SpillRecord rec;
  rec.generation = next_generation_++;
  rec.file = EscapeToken(name) + ".g" + std::to_string(rec.generation) +
             ".xcqi";
  rec.bytes = bytes.size();
  rec.crc = Crc32(bytes);
  rec.labels = std::move(labels);
  XCQ_RETURN_IF_ERROR(AtomicWriteFile(dir_ + "/" + rec.file, bytes));
  std::string superseded;
  const auto it = records_.find(name);
  if (it != records_.end() && it->second.file != rec.file) {
    superseded = it->second.file;
  }
  records_[name] = rec;
  // Crash order: the new spill is durable before the manifest points at
  // it, and the old generation is deleted only after the manifest no
  // longer references it — every crash point leaves a consistent view.
  XCQ_RETURN_IF_ERROR(RewriteManifestLocked());
  if (!superseded.empty()) {
    ::unlink((dir_ + "/" + superseded).c_str());
  }
  return rec;
}

Result<Instance> SpillManager::Read(const std::string& name,
                                    uint64_t* generation) const {
  SpillRecord rec;
  if (!Lookup(name, &rec)) {
    return Status::NotFound(
        StrFormat("no spill for document '%s'", name.c_str()));
  }
  for (;;) {
    if (generation != nullptr) *generation = rec.generation;
    Status failure = Status::OK();
    const Result<std::string> bytes = ReadSpillBytes(dir_ + "/" + rec.file);
    if (!bytes.ok()) {
      failure = bytes.status();
    } else if (bytes->size() != rec.bytes) {
      failure = Status::Corruption(
          StrFormat("spill '%s' is %zu bytes, manifest says %zu",
                    rec.file.c_str(), bytes->size(), rec.bytes));
    } else if (Crc32(*bytes) != rec.crc) {
      failure = Status::Corruption(StrFormat(
          "spill '%s' CRC does not match the manifest", rec.file.c_str()));
    } else {
      Result<Instance> instance = DeserializeInstance(*bytes);
      if (instance.ok()) return instance;
      failure = instance.status();
    }
    // A concurrent respill (demotion, PERSIST, label growth) may have
    // superseded `rec` — Write unlinks the old generation's file right
    // after the manifest rename, so a reader holding the stale record
    // sees ENOENT. If the catalog moved on, the failure was against
    // stale state: retry against the fresh record. Generations strictly
    // increase, so every retry consumes a completed Write — progress.
    SpillRecord fresh;
    if (Lookup(name, &fresh) && fresh.generation != rec.generation) {
      rec = std::move(fresh);
      continue;
    }
    return failure;
  }
}

bool SpillManager::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = records_.find(name);
  if (it == records_.end()) return false;
  return RemoveEntryLocked(it);
}

bool SpillManager::RemoveIfGeneration(const std::string& name,
                                      uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = records_.find(name);
  if (it == records_.end() || it->second.generation != generation) {
    return false;  // superseded (or gone) — the newer spill must survive
  }
  return RemoveEntryLocked(it);
}

bool SpillManager::RemoveEntryLocked(
    std::map<std::string, SpillRecord>::iterator it) {
  const std::string file = it->second.file;
  records_.erase(it);
  // Manifest first, file second: a crash in between leaves an orphan
  // spill, which the next recovery scan cleans up. Rewrite failure is
  // tolerated — a stale entry pointing at a deleted file degrades to a
  // cold miss at the next fault-in, never to wrong data.
  const Status status = RewriteManifestLocked();
  if (!status.ok()) {
    std::fprintf(stderr, "xcq: manifest rewrite after removal failed: %s\n",
                 status.ToString().c_str());
  }
  ::unlink((dir_ + "/" + file).c_str());
  return true;
}

bool SpillManager::Lookup(const std::string& name, SpillRecord* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = records_.find(name);
  if (it == records_.end()) return false;
  *out = it->second;
  return true;
}

std::vector<std::string> SpillManager::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(records_.size());
  for (const auto& [name, rec] : records_) names.push_back(name);
  return names;
}

size_t SpillManager::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [name, rec] : records_) total += rec.bytes;
  return total;
}

Status SpillManager::RewriteManifestLocked() {
  std::string out(kManifestHeader);
  out.push_back('\n');
  for (const auto& [name, rec] : records_) {
    out.append("doc ");
    out.append(EscapeToken(name));
    out.push_back(' ');
    out.append(rec.file);
    out.append(StrFormat(" %zu %u %llu ", rec.bytes, rec.crc,
                         static_cast<unsigned long long>(rec.generation)));
    if (rec.labels.empty()) {
      out.push_back('-');
    } else {
      for (size_t i = 0; i < rec.labels.size(); ++i) {
        if (i > 0) out.push_back(',');
        out.append(EscapeToken(rec.labels[i]));
      }
    }
    out.push_back('\n');
  }
  return AtomicWriteFile(dir_ + "/" + std::string(kManifestName), out);
}

// --- StoredDocument --------------------------------------------------------

StoredDocument::StoredDocument(QuerySession session, std::string name,
                               obs::Registry* registry)
    : session_(std::move(session)),
      name_(std::move(name)),
      registry_(registry) {
  RefreshFootprintLocked();  // single-threaded here: no lock needed yet
  if (registry_ == nullptr) return;
  // Resolve every handle once; the per-query metrics cost is then only
  // relaxed atomic adds. The full series catalog is documented in
  // docs/OBSERVABILITY.md — keep the two in sync.
  obs::Registry& r = *registry_;
  handles_.queries = r.GetCounter("xcq_document_queries_total",
                                  DocLabels(name_),
                                  "Queries evaluated against the document");
  handles_.query_errors =
      r.GetCounter("xcq_document_query_errors_total", DocLabels(name_),
                   "Queries that failed (parse, compile, or evaluation)");
  handles_.batches =
      r.GetCounter("xcq_document_batches_total", DocLabels(name_),
                   "BATCH requests evaluated against the document");
  handles_.batches_shared = r.GetCounter(
      "xcq_document_batches_shared_total", DocLabels(name_),
      "Batches served with shared (multi-query) axis sweeps");
  handles_.latency = r.GetHistogram(
      "xcq_query_seconds", DocLabels(name_),
      obs::Histogram::LatencyBounds(),
      "End-to-end query latency at the document store (lock held)");
  for (size_t p = 0; p < obs::kPhaseCount; ++p) {
    obs::LabelSet labels = DocLabels(name_);
    labels.Add("phase",
               std::string(obs::PhaseName(static_cast<obs::Phase>(p))));
    handles_.phase_seconds[p] =
        r.GetCounter("xcq_phase_seconds_total", std::move(labels),
                     "Seconds spent per query phase (from trace spans)");
  }
  for (size_t f = 0; f < engine::kAxisFamilyCount; ++f) {
    const auto family = static_cast<engine::AxisFamily>(f);
    AxisHandles& ah = handles_.axis[f];
    ah.sweeps = r.GetCounter("xcq_sweeps_total",
                             DocAxisLabels(name_, family),
                             "Axis sweeps run, by kernel family");
    ah.visited = r.GetCounter("xcq_sweep_visited_total",
                              DocAxisLabels(name_, family),
                              "Vertices visited by axis sweeps");
    ah.full = r.GetCounter(
        "xcq_sweep_full_total", DocAxisLabels(name_, family),
        "Vertices unpruned sweeps would have visited");
    ah.pruned = r.GetCounter("xcq_sweeps_pruned_total",
                             DocAxisLabels(name_, family),
                             "Sweeps restricted to a path-summary region");
    ah.skipped = r.GetCounter("xcq_sweeps_skipped_total",
                              DocAxisLabels(name_, family),
                              "Sweeps skipped outright (empty region)");
    ah.seconds = r.GetCounter("xcq_sweep_seconds_total",
                              DocAxisLabels(name_, family),
                              "Seconds inside sweep kernels");
    ah.prune_ratio = r.GetGauge(
        "xcq_sweep_prune_ratio", DocAxisLabels(name_, family),
        "Fraction of full-sweep visits avoided by pruning (on scrape)");
  }
  handles_.memory_bytes =
      r.GetGauge("xcq_document_memory_bytes", DocLabels(name_),
                 "Instance footprint in bytes");
  handles_.vertices = r.GetGauge("xcq_document_vertices", DocLabels(name_),
                                 "DAG vertices (including splits)");
  handles_.tree_nodes =
      r.GetGauge("xcq_document_tree_nodes", DocLabels(name_),
                 "Tree nodes the DAG represents");
  handles_.summary_nodes =
      r.GetGauge("xcq_document_summary_nodes", DocLabels(name_),
                 "Path-summary nodes (0 = not built)");
  handles_.summary_builds =
      r.GetGauge("xcq_document_summary_builds", DocLabels(name_),
                 "Path-summary (re)builds so far");
  handles_.traversal_builds =
      r.GetGauge("xcq_document_traversal_builds", DocLabels(name_),
                 "Traversal-cache (re)builds so far");
  handles_.scratch_resident =
      r.GetGauge("xcq_document_scratch_resident", DocLabels(name_),
                 "Scratch-pool slots currently held by the instance");
  handles_.scratch_capacity =
      r.GetGauge("xcq_document_scratch_capacity", DocLabels(name_),
                 "Scratch-pool residency cap");
  handles_.scratch_hits =
      r.GetGauge("xcq_document_scratch_hits", DocLabels(name_),
                 "Scratch checkouts served without allocating");
  handles_.scratch_allocations =
      r.GetGauge("xcq_document_scratch_allocations", DocLabels(name_),
                 "Scratch checkouts that had to (re)allocate");
  handles_.qps = r.GetGauge("xcq_document_qps", DocLabels(name_),
                            "Queries per second of registry uptime");
  handles_.batch_share_rate =
      r.GetGauge("xcq_document_batch_share_rate", DocLabels(name_),
                 "Fraction of batches served with shared sweeps");
}

void StoredDocument::RefreshFootprintLocked() {
  footprint_.store(session_.has_instance()
                       ? session_.instance().MemoryFootprint()
                       : 0);
}

Result<QueryOutcome> StoredDocument::Query(std::string_view query_text,
                                           const QueryControl& control) {
  std::lock_guard<std::mutex> lock(mu_);
  double elapsed = 0.0;
  Result<QueryOutcome> outcome = Status::Internal("query did not run");
  {
    ScopedTimer timer(&elapsed);
    outcome = session_.Run(query_text, control);
  }
  // Even failed runs can have merged labels in before erroring.
  RefreshFootprintLocked();
  if (outcome.ok()) {
    ++queries_served_;
    label_seconds_ += outcome->label_seconds;
    minimize_seconds_ += outcome->minimize_seconds;
    AccumulateSweepStats(outcome->stats);
    if (handles_.queries != nullptr) handles_.queries->Increment();
    RecordOutcomeMetricsLocked(*outcome, elapsed);
    MaybeSpillLocked();
  } else if (handles_.query_errors != nullptr) {
    handles_.query_errors->Increment();
  }
  return outcome;
}

Result<std::vector<QueryOutcome>> StoredDocument::Batch(
    const std::vector<std::string>& query_texts,
    const QueryControl& control) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t shared_before = session_.shared_batch_count();
  double elapsed = 0.0;
  Result<std::vector<QueryOutcome>> outcomes =
      Status::Internal("batch did not run");
  {
    ScopedTimer timer(&elapsed);
    outcomes = session_.RunBatch(query_texts, control);
  }
  RefreshFootprintLocked();
  if (outcomes.ok()) {
    ++batches_served_;
    queries_served_ += outcomes->size();
    // Each batch member is charged an equal share of the batch's wall
    // time in the latency histogram — per-member times do not exist on
    // the shared-sweep path.
    const double share =
        outcomes->empty() ? 0.0
                          : elapsed / static_cast<double>(outcomes->size());
    for (const QueryOutcome& outcome : *outcomes) {
      label_seconds_ += outcome.label_seconds;
      minimize_seconds_ += outcome.minimize_seconds;
      AccumulateSweepStats(outcome.stats);
      if (handles_.queries != nullptr) handles_.queries->Increment();
      RecordOutcomeMetricsLocked(outcome, share);
    }
    if (handles_.batches != nullptr) handles_.batches->Increment();
    if (handles_.batches_shared != nullptr) {
      const uint64_t shared_delta =
          session_.shared_batch_count() - shared_before;
      if (shared_delta > 0) {
        handles_.batches_shared->Increment(
            static_cast<double>(shared_delta));
      }
    }
    MaybeSpillLocked();
  } else if (handles_.query_errors != nullptr) {
    handles_.query_errors->Increment(
        static_cast<double>(query_texts.size()));
  }
  return outcomes;
}

void StoredDocument::MaybeSpillLocked() {
  if (owner_ == nullptr || !owner_->spills_.enabled()) return;
  if (!session_.has_instance()) return;
  const size_t labels =
      session_.tracked_tag_count() + session_.tracked_pattern_count();
  if (spilled_ && labels == spilled_labels_) return;
  const Status status = owner_->WriteSpill(name_, session_.instance());
  if (status.ok()) {
    spilled_ = true;
    spilled_labels_ = labels;
    spill_error_logged_ = false;
  } else if (!spill_error_logged_) {
    // Log once per failure streak: durability degrades, serving does
    // not, and every later label growth retries the write.
    spill_error_logged_ = true;
    std::fprintf(stderr, "xcq: spill of document '%s' failed: %s\n",
                 name_.c_str(), status.ToString().c_str());
  }
}

void StoredDocument::PersistIfDirty() {
  std::lock_guard<std::mutex> lock(mu_);
  MaybeSpillLocked();
}

Status StoredDocument::ForcePersist() {
  std::lock_guard<std::mutex> lock(mu_);
  if (owner_ == nullptr || !owner_->spills_.enabled()) {
    return Status::InvalidArgument(
        "persistence is disabled; start the server with --data-dir");
  }
  if (!session_.has_instance()) {
    return Status::InvalidArgument(StrFormat(
        "document '%s' has no compiled instance to persist yet; "
        "run a query first",
        name_.c_str()));
  }
  XCQ_RETURN_IF_ERROR(owner_->WriteSpill(name_, session_.instance()));
  spilled_ = true;
  spilled_labels_ =
      session_.tracked_tag_count() + session_.tracked_pattern_count();
  spill_error_logged_ = false;
  return Status::OK();
}

void StoredDocument::MarkSpilledClean() {
  std::lock_guard<std::mutex> lock(mu_);
  spilled_ = true;
  spilled_labels_ =
      session_.tracked_tag_count() + session_.tracked_pattern_count();
}

void StoredDocument::AccumulateSweepStats(const engine::EvalStats& stats) {
  sweep_visited_ += stats.sweep_visited;
  sweep_full_ += stats.sweep_full;
  pruned_sweeps_ += stats.pruned_sweeps;
  skipped_sweeps_ += stats.skipped_sweeps;
}

void StoredDocument::RecordOutcomeMetricsLocked(const QueryOutcome& outcome,
                                                double elapsed_seconds) {
  if (registry_ == nullptr) return;
  handles_.latency->Observe(elapsed_seconds);
  for (size_t p = 0; p < obs::kPhaseCount; ++p) {
    const double seconds =
        outcome.trace.PhaseSeconds(static_cast<obs::Phase>(p));
    if (seconds > 0.0) handles_.phase_seconds[p]->Increment(seconds);
  }
  for (size_t f = 0; f < engine::kAxisFamilyCount; ++f) {
    const engine::AxisFamilyStats& src = outcome.stats.axis[f];
    AxisHandles& ah = handles_.axis[f];
    if (src.sweeps > 0) ah.sweeps->Increment(static_cast<double>(src.sweeps));
    if (src.visited > 0) {
      ah.visited->Increment(static_cast<double>(src.visited));
    }
    if (src.full > 0) ah.full->Increment(static_cast<double>(src.full));
    if (src.pruned > 0) ah.pruned->Increment(static_cast<double>(src.pruned));
    if (src.skipped > 0) {
      ah.skipped->Increment(static_cast<double>(src.skipped));
    }
    if (src.seconds > 0.0) ah.seconds->Increment(src.seconds);
  }
}

DocumentInfo StoredDocument::Info(std::string name) const {
  std::lock_guard<std::mutex> lock(mu_);
  DocumentInfo info;
  info.name = std::move(name);
  info.queries_served = queries_served_;
  info.batches_served = batches_served_;
  info.batches_shared = session_.shared_batch_count();
  info.source_parses = session_.source_parse_count();
  info.has_source = session_.has_source();
  info.tracked_tags = session_.tracked_tag_count();
  info.tracked_patterns = session_.tracked_pattern_count();
  info.sweep_visited = sweep_visited_;
  info.sweep_full = sweep_full_;
  info.pruned_sweeps = pruned_sweeps_;
  info.skipped_sweeps = skipped_sweeps_;
  info.label_seconds = label_seconds_;
  info.minimize_seconds = minimize_seconds_;
  if (session_.has_instance()) {
    const Instance& instance = session_.instance();
    info.memory_bytes = instance.MemoryFootprint();
    info.vertex_count = instance.vertex_count();
    info.rle_edges = instance.rle_edge_count();
    info.tree_nodes = TreeNodeCount(instance);
    // Report the built size only — STATS must not trigger a build.
    if (instance.path_summary_valid()) {
      info.summary_nodes = instance.EnsurePathSummary().nodes.size();
    }
    info.scratch_resident = instance.scratch_slot_count();
    info.scratch_hits = instance.scratch_stats().pool_hits;
    info.scratch_allocs = instance.scratch_stats().allocations;
    info.traversal_builds = instance.traversal_builds();
    info.summary_builds = instance.path_summary_builds();
  }
  if (batches_served_ > 0) {
    info.share_rate = static_cast<double>(session_.shared_batch_count()) /
                      static_cast<double>(batches_served_);
  }
  if (registry_ != nullptr) {
    const double uptime = registry_->UptimeSeconds();
    if (uptime > 0.0) {
      info.qps = static_cast<double>(queries_served_) / uptime;
    }
    const obs::Histogram::Snapshot snap = handles_.latency->Snap();
    const std::vector<double>& bounds = handles_.latency->bounds();
    info.p50_ms = obs::Histogram::Quantile(snap, bounds, 0.50) * 1e3;
    info.p95_ms = obs::Histogram::Quantile(snap, bounds, 0.95) * 1e3;
    info.p99_ms = obs::Histogram::Quantile(snap, bounds, 0.99) * 1e3;
  }
  return info;
}

void StoredDocument::UpdateScrapeGauges(double uptime_seconds) {
  if (registry_ == nullptr) return;
  const DocumentInfo info = Info(name_);
  handles_.memory_bytes->Set(static_cast<double>(info.memory_bytes));
  handles_.vertices->Set(static_cast<double>(info.vertex_count));
  handles_.tree_nodes->Set(static_cast<double>(info.tree_nodes));
  handles_.summary_nodes->Set(static_cast<double>(info.summary_nodes));
  handles_.summary_builds->Set(static_cast<double>(info.summary_builds));
  handles_.traversal_builds->Set(
      static_cast<double>(info.traversal_builds));
  handles_.scratch_resident->Set(
      static_cast<double>(info.scratch_resident));
  handles_.scratch_hits->Set(static_cast<double>(info.scratch_hits));
  handles_.scratch_allocations->Set(
      static_cast<double>(info.scratch_allocs));
  handles_.batch_share_rate->Set(info.share_rate);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (session_.has_instance()) {
      handles_.scratch_capacity->Set(
          static_cast<double>(session_.instance().scratch_capacity()));
    }
    if (uptime_seconds > 0.0) {
      handles_.qps->Set(static_cast<double>(queries_served_) /
                        uptime_seconds);
    }
    for (size_t f = 0; f < engine::kAxisFamilyCount; ++f) {
      AxisHandles& ah = handles_.axis[f];
      const double full = ah.full->Value();
      const double visited = ah.visited->Value();
      ah.prune_ratio->Set(full > 0.0 ? 1.0 - visited / full : 0.0);
    }
  }
}

// --- DocumentStore ---------------------------------------------------------

DocumentStore::DocumentStore(StoreOptions options)
    : options_(std::move(options)),
      loads_total_(registry_.GetCounter("xcq_store_loads_total", {},
                                        "Documents loaded (LOAD requests)")),
      load_misses_total_(registry_.GetCounter(
          "xcq_store_load_misses_total", {},
          "Lookups of documents that were not loaded")),
      evictions_total_(registry_.GetCounter(
          "xcq_store_evictions_total", {},
          "Documents dropped (EVICT requests and capacity eviction)")),
      spill_writes_total_(registry_.GetCounter(
          "xcq_store_spill_writes_total", {},
          "Durable document spills written to the data dir")),
      spill_errors_total_(registry_.GetCounter(
          "xcq_store_spill_errors_total", {},
          "Spill or manifest writes that failed")),
      warm_hits_total_(registry_.GetCounter(
          "xcq_store_warm_hits_total", {},
          "Warm documents faulted back in from their spill")),
      warm_misses_total_(registry_.GetCounter(
          "xcq_store_warm_misses_total", {},
          "Warm fault-ins that failed (corrupt, missing, or unreadable "
          "spill)")),
      recovered_total_(registry_.GetCounter(
          "xcq_store_recovered_total", {},
          "Warm documents registered by the startup recovery scan")),
      recovery_errors_total_(registry_.GetCounter(
          "xcq_store_recovery_errors_total", {},
          "Manifest lines or spill artifacts skipped during recovery")),
      documents_gauge_(registry_.GetGauge("xcq_store_documents", {},
                                          "Documents currently cached")),
      warm_documents_gauge_(registry_.GetGauge(
          "xcq_store_warm_documents", {},
          "Spill-backed documents currently not resident")),
      spill_bytes_gauge_(registry_.GetGauge(
          "xcq_store_spill_bytes", {},
          "Summed on-disk size of durable spills")),
      bytes_gauge_(registry_.GetGauge(
          "xcq_store_bytes", {},
          "Summed instance footprint of cached documents")),
      uptime_gauge_(registry_.GetGauge("xcq_server_uptime_seconds", {},
                                       "Seconds since the store started")),
      recovery_seconds_gauge_(registry_.GetGauge(
          "xcq_store_recovery_seconds", {},
          "Wall time of the startup recovery scan")) {
  if (!options_.data_dir.empty()) {
    double seconds = 0.0;
    {
      ScopedTimer timer(&seconds);
      durability_status_ = spills_.Init(options_.data_dir, &recovery_);
      if (durability_status_.ok() && options_.warm_start) {
        for (const std::string& name : spills_.Names()) {
          warm_.emplace(name, WarmEntry{});
          ++recovery_.recovered;
        }
      }
    }
    recovery_.seconds = seconds;
    if (!durability_status_.ok()) {
      std::fprintf(stderr,
                   "xcq: data dir '%s' unusable, running memory-only: %s\n",
                   options_.data_dir.c_str(),
                   durability_status_.ToString().c_str());
    }
    recovered_total_->Increment(static_cast<double>(recovery_.recovered));
    recovery_errors_total_->Increment(static_cast<double>(recovery_.errors));
    recovery_seconds_gauge_->Set(recovery_.seconds);
  }
}

Status DocumentStore::LoadXml(const std::string& name, std::string xml) {
  XCQ_ASSIGN_OR_RETURN(QuerySession session,
                       QuerySession::Open(std::move(xml), options_.session));
  auto doc =
      std::make_shared<StoredDocument>(std::move(session), name, &registry_);
  doc->owner_ = this;
  // No instance exists before the first query of an XML-loaded document,
  // so there is nothing to spill yet; the first query writes it.
  loads_total_->Increment();
  InstallDocument(name, std::move(doc));
  return Status::OK();
}

Status DocumentStore::LoadInstance(const std::string& name,
                                   Instance instance) {
  XCQ_ASSIGN_OR_RETURN(
      QuerySession session,
      QuerySession::FromInstance(std::move(instance), options_.session));
  auto doc =
      std::make_shared<StoredDocument>(std::move(session), name, &registry_);
  doc->owner_ = this;
  // Eager spill before publication: an instance LOAD is durable by the
  // time the reply goes out.
  doc->PersistIfDirty();
  loads_total_->Increment();
  InstallDocument(name, std::move(doc));
  return Status::OK();
}

void DocumentStore::InstallDocument(const std::string& name,
                                    std::shared_ptr<StoredDocument> doc) {
  doc->last_used_.store(++clock_);
  // Capacity victims destruct after `mu_` is released (see Evict).
  std::vector<std::shared_ptr<StoredDocument>> doomed;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    // A fresh LOAD supersedes any warm entry (and orphans an in-flight
    // fault-in, which detects the latch mismatch and discards itself).
    warm_.erase(name);
    docs_[name] = std::move(doc);
    EnforceCapacityLocked(name, &doomed);
  }
  FinalizeDoomed(&doomed);
}

Status DocumentStore::LoadFile(const std::string& name,
                               const std::string& path) {
  // Two-step declare + assign: GCC 12's -Wmaybe-uninitialized misfires
  // on the declaration-inside-macro form (bogus warning through the
  // StatusOr move, https://gcc.gnu.org/bugzilla/show_bug.cgi?id=105562;
  // re-verified against g++ 12.2.0 with -DXCQ_WARNINGS_AS_ERRORS=ON).
  // Collapse to one line once the floor compiler is GCC >= 13.
  std::string bytes;
  XCQ_ASSIGN_OR_RETURN(bytes, xml::ReadFileToString(path));
  if (StartsWith(bytes, "XCQI")) {
    XCQ_ASSIGN_OR_RETURN(Instance instance, DeserializeInstance(bytes));
    return LoadInstance(name, std::move(instance));
  }
  return LoadXml(name, std::move(bytes));
}

std::shared_ptr<StoredDocument> DocumentStore::Find(
    const std::string& name) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = docs_.find(name);
  if (it == docs_.end()) {
    load_misses_total_->Increment();
    return nullptr;
  }
  it->second->last_used_.store(++clock_);
  return it->second;
}

Result<std::shared_ptr<StoredDocument>> DocumentStore::Acquire(
    const std::string& name) {
  for (;;) {
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      const auto it = docs_.find(name);
      if (it != docs_.end()) {
        it->second->last_used_.store(++clock_);
        return it->second;
      }
    }
    std::shared_ptr<FaultIn> latch;
    bool loader = false;
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      const auto it = docs_.find(name);
      if (it != docs_.end()) {  // installed between the two lock grabs
        it->second->last_used_.store(++clock_);
        return it->second;
      }
      const auto wit = warm_.find(name);
      if (wit == warm_.end()) {
        load_misses_total_->Increment();
        return Status::NotFound(
            StrFormat("no document named '%s' is loaded", name.c_str()));
      }
      if (wit->second.inflight == nullptr) {
        wit->second.inflight = std::make_shared<FaultIn>();
        loader = true;
      }
      latch = wit->second.inflight;
    }
    if (loader) {
      const Status status = FaultInDocument(name, latch);
      {
        std::lock_guard<std::mutex> flock(latch->mu);
        latch->done = true;
        latch->status = status;
      }
      latch->cv.notify_all();
      if (!status.ok()) return status;
      continue;  // the document is resident now
    }
    // Single-flight: wait for the loader, then re-resolve. Every waiter
    // of a failed fault-in gets the loader's canonical status.
    std::unique_lock<std::mutex> flock(latch->mu);
    latch->cv.wait(flock, [&latch] { return latch->done; });
    if (!latch->status.ok()) return latch->status;
  }
}

Status DocumentStore::FaultInDocument(const std::string& name,
                                      const std::shared_ptr<FaultIn>& latch) {
  spill_reads_.fetch_add(1);
  uint64_t generation = 0;
  Result<QuerySession> session = Status::Internal("fault-in did not run");
  {
    Result<Instance> instance = spills_.Read(name, &generation);
    if (instance.ok()) {
      session =
          QuerySession::FromInstance(std::move(*instance), options_.session);
    } else {
      session = instance.status();
    }
  }
  if (!session.ok()) {
    warm_misses_total_->Increment();
    // Only a *verified* permanent failure — CRC/size/structural mismatch
    // (kCorruption) or a spill file that is provably gone (kNotFound) —
    // may destroy durable state. Anything else (fd pressure, ENOMEM,
    // permissions) is transient: keep the warm entry and the spill,
    // hand every waiter a retryable error, and let the next Acquire
    // start a fresh fault-in.
    const StatusCode code = session.status().code();
    if (code != StatusCode::kCorruption && code != StatusCode::kNotFound) {
      const Status retryable = Status::IoError(
          StrFormat("warm document '%s' fault-in failed, will retry: %s",
                    name.c_str(), session.status().message().c_str()));
      std::fprintf(stderr, "xcq: %s\n", retryable.ToString().c_str());
      std::unique_lock<std::shared_mutex> lock(mu_);
      const auto wit = warm_.find(name);
      if (wit != warm_.end() && wit->second.inflight == latch) {
        wit->second.inflight = nullptr;
      }
      return retryable;
    }
    // The canonical cold-miss degradation: drop the entry and its
    // artifacts, log one line, fail this document only.
    const Status canonical = Status::Corruption(
        StrFormat("warm document '%s' unrecoverable: %s", name.c_str(),
                  session.status().message().c_str()));
    std::fprintf(stderr, "xcq: %s\n", canonical.ToString().c_str());
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      const auto wit = warm_.find(name);
      if (wit != warm_.end() && wit->second.inflight == latch) {
        warm_.erase(wit);
      }
    }
    // Generation-guarded: a LOAD or respill that superseded the record
    // mid-fault-in wrote a *new* good spill — never delete that one.
    spills_.RemoveIfGeneration(name, generation);
    return canonical;
  }
  auto doc =
      std::make_shared<StoredDocument>(std::move(*session), name, &registry_);
  doc->owner_ = this;
  // The spill we just read is current — do not rewrite it on the next
  // query unless the label set actually grows.
  doc->MarkSpilledClean();
  doc->last_used_.store(++clock_);
  std::vector<std::shared_ptr<StoredDocument>> doomed;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    const auto wit = warm_.find(name);
    if (wit == warm_.end() || wit->second.inflight != latch) {
      // Superseded by a LOAD or FORGET while the spill was being read;
      // discard our result — waiters re-resolve against current state.
      return Status::OK();
    }
    warm_.erase(wit);
    docs_[name] = std::move(doc);
    warm_hits_total_->Increment();
    EnforceCapacityLocked(name, &doomed);
  }
  FinalizeDoomed(&doomed);
  return Status::OK();
}

bool DocumentStore::Evict(const std::string& name) {
  // Move the document out of the map and let it destruct after the
  // exclusive lock is released: when the map held the last reference,
  // freeing a large instance under `mu_` would stall every concurrent
  // Find() (and whoever called us) for the whole teardown.
  std::shared_ptr<StoredDocument> doomed;
  bool demoted = false;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    const auto it = docs_.find(name);
    if (it == docs_.end()) {
      // Warm-only names have no residency to drop; they stay warm.
      return warm_.count(name) > 0;
    }
    doomed = std::move(it->second);
    docs_.erase(it);
    evictions_total_->Increment();
    // Stop rendering the evicted document's series; cached handles stay
    // valid (clients may still hold the StoredDocument shared_ptr).
    // A later fault-in re-registers them with counters intact.
    registry_.RemoveLabeled("document", name);
    SpillRecord rec;
    if (spills_.Lookup(name, &rec)) {
      // Demote: keep the spill, drop residency. The next Acquire
      // faults the document back in.
      warm_.emplace(name, WarmEntry{});
      demoted = true;
    }
  }
  // Final spill refresh off the store lock: if queries grew the label
  // set since the last spill, capture that before the session goes
  // away. (A fault-in racing this reads the previous spill — answers
  // from it are correct, it merely lags the newest labels.)
  if (demoted) doomed->PersistIfDirty();
  return true;
}

Status DocumentStore::Persist(const std::string& name) {
  if (!spills_.enabled()) {
    return Status::InvalidArgument(
        "persistence is disabled; start the server with --data-dir");
  }
  std::shared_ptr<StoredDocument> doc;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = docs_.find(name);
    if (it != docs_.end()) {
      doc = it->second;
    } else if (warm_.count(name) > 0) {
      return Status::OK();  // warm = already durable; no-op
    }
  }
  if (doc == nullptr) {
    return Status::NotFound(
        StrFormat("no document named '%s' is loaded", name.c_str()));
  }
  return doc->ForcePersist();
}

bool DocumentStore::Forget(const std::string& name) {
  std::shared_ptr<StoredDocument> doomed;
  bool existed = false;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    const auto it = docs_.find(name);
    if (it != docs_.end()) {
      doomed = std::move(it->second);
      docs_.erase(it);
      registry_.RemoveLabeled("document", name);
      existed = true;
    }
    existed = warm_.erase(name) > 0 || existed;
  }
  existed = spills_.Remove(name) || existed;
  if (existed) evictions_total_->Increment();
  return existed;
}

void DocumentStore::FlushSpills() {
  if (!spills_.enabled()) return;
  std::vector<std::shared_ptr<StoredDocument>> docs;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    docs.reserve(docs_.size());
    for (const auto& [name, doc] : docs_) docs.push_back(doc);
  }
  for (const std::shared_ptr<StoredDocument>& doc : docs) {
    doc->PersistIfDirty();
  }
}

std::vector<DocumentInfo> DocumentStore::Stats() const {
  // Copy the document pointers under the shared lock, then take each
  // document's own lock outside of it — Info() can be slow (tree-node
  // counting) and must not block loads.
  std::vector<std::pair<std::string, std::shared_ptr<StoredDocument>>> docs;
  std::vector<std::string> warm_only;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    docs.reserve(docs_.size());
    for (const auto& [name, doc] : docs_) docs.emplace_back(name, doc);
    warm_only.reserve(warm_.size());
    for (const auto& [name, entry] : warm_) warm_only.push_back(name);
  }
  std::vector<DocumentInfo> infos;
  infos.reserve(docs.size() + warm_only.size());
  for (auto& [name, doc] : docs) {
    DocumentInfo info = doc->Info(name);
    info.resident = true;
    SpillRecord rec;
    if (spills_.Lookup(name, &rec)) {
      info.warm = true;
      info.spill_bytes = rec.bytes;
    }
    infos.push_back(std::move(info));
  }
  // Warm entries get a metadata-only row: only the fields the manifest
  // knows are filled, everything else reads zero until a fault-in.
  for (const std::string& name : warm_only) {
    DocumentInfo info;
    info.name = name;
    info.warm = true;
    SpillRecord rec;
    if (spills_.Lookup(name, &rec)) info.spill_bytes = rec.bytes;
    infos.push_back(std::move(info));
  }
  std::sort(infos.begin(), infos.end(),
            [](const DocumentInfo& a, const DocumentInfo& b) {
              return a.name < b.name;
            });
  return infos;
}

size_t DocumentStore::total_bytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return TotalBytesLocked();
}

size_t DocumentStore::document_count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return docs_.size();
}

size_t DocumentStore::warm_count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return warm_.size();
}

Status DocumentStore::WriteSpill(const std::string& name,
                                 const Instance& instance) {
  const Result<SpillRecord> rec = spills_.Write(name, instance);
  if (!rec.ok()) {
    spill_errors_total_->Increment();
    return rec.status();
  }
  spill_writes_total_->Increment();
  return Status::OK();
}

size_t DocumentStore::TotalBytesLocked() const {
  size_t total = 0;
  for (const auto& [name, doc] : docs_) {
    total += doc->memory_bytes();
  }
  return total;
}

void DocumentStore::EnforceCapacityLocked(
    const std::string& keep,
    std::vector<std::shared_ptr<StoredDocument>>* doomed) {
  if (options_.capacity_bytes == 0) return;
  while (docs_.size() > 1 &&
         TotalBytesLocked() > options_.capacity_bytes) {
    auto victim = docs_.end();
    for (auto it = docs_.begin(); it != docs_.end(); ++it) {
      if (it->first == keep) continue;
      if (victim == docs_.end() ||
          it->second->last_used_.load() <
              victim->second->last_used_.load()) {
        victim = it;
      }
    }
    if (victim == docs_.end()) return;  // only `keep` is left
    evictions_total_->Increment();
    registry_.RemoveLabeled("document", victim->first);
    SpillRecord rec;
    if (spills_.Lookup(victim->first, &rec)) {
      // Demote spill-backed victims to warm entries instead of
      // discarding; FinalizeDoomed refreshes the spill if stale.
      warm_.emplace(victim->first, WarmEntry{});
    }
    doomed->push_back(std::move(victim->second));
    docs_.erase(victim);
  }
}

void DocumentStore::FinalizeDoomed(
    std::vector<std::shared_ptr<StoredDocument>>* doomed) {
  for (const std::shared_ptr<StoredDocument>& doc : *doomed) {
    SpillRecord rec;
    if (spills_.Lookup(doc->name_, &rec)) doc->PersistIfDirty();
  }
  doomed->clear();  // destruction happens here, off the store lock
}

std::string DocumentStore::ScrapeMetrics() {
  // Snapshot the document pointers under the shared lock, then refresh
  // each document's gauges outside it (gauge refresh takes the document
  // lock and counts tree nodes — it must not block loads).
  std::vector<std::shared_ptr<StoredDocument>> docs;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    docs.reserve(docs_.size());
    for (const auto& [name, doc] : docs_) docs.push_back(doc);
  }
  const double uptime = registry_.UptimeSeconds();
  for (const std::shared_ptr<StoredDocument>& doc : docs) {
    doc->UpdateScrapeGauges(uptime);
  }
  documents_gauge_->Set(static_cast<double>(document_count()));
  warm_documents_gauge_->Set(static_cast<double>(warm_count()));
  spill_bytes_gauge_->Set(static_cast<double>(spills_.TotalBytes()));
  bytes_gauge_->Set(static_cast<double>(total_bytes()));
  uptime_gauge_->Set(uptime);
  return registry_.RenderPrometheus();
}

}  // namespace xcq::server
