#include "xcq/server/protocol.h"

#include <cstdio>
#include <cstdlib>

#include "xcq/util/string_util.h"

namespace xcq::server {

namespace {

/// Splits off the first space-separated token of `*rest`, trimming the
/// remainder; empty when exhausted.
std::string_view NextToken(std::string_view* rest) {
  *rest = Trim(*rest);
  const size_t space = rest->find(' ');
  std::string_view token;
  if (space == std::string_view::npos) {
    token = *rest;
    *rest = {};
  } else {
    token = rest->substr(0, space);
    *rest = Trim(rest->substr(space + 1));
  }
  return token;
}

}  // namespace

Result<Request> ParseRequest(std::string_view line) {
  std::string_view rest = Trim(line);
  const std::string_view verb = NextToken(&rest);
  if (verb.empty()) {
    return Status::InvalidArgument("empty request line");
  }

  Request request;
  if (verb == "LOAD") {
    request.kind = Request::Kind::kLoad;
    request.name = std::string(NextToken(&rest));
    request.path = std::string(rest);
    if (request.name.empty() || request.path.empty()) {
      return Status::InvalidArgument("usage: LOAD <name> <path>");
    }
  } else if (verb == "QUERY") {
    request.kind = Request::Kind::kQuery;
    request.name = std::string(NextToken(&rest));
    request.query = std::string(rest);
    if (request.name.empty() || request.query.empty()) {
      return Status::InvalidArgument("usage: QUERY <name> <query>");
    }
  } else if (verb == "BATCH") {
    request.kind = Request::Kind::kBatch;
    request.name = std::string(NextToken(&rest));
    const std::string_view count = NextToken(&rest);
    if (request.name.empty() || count.empty() || !rest.empty()) {
      return Status::InvalidArgument("usage: BATCH <name> <count>");
    }
    const std::string count_str(count);
    char* end = nullptr;
    const unsigned long long n = std::strtoull(count_str.c_str(), &end, 10);
    // The whole token must be digits: "12x" desynchronizes the body
    // framing if accepted as 12.
    if (end != count_str.c_str() + count_str.size() || n == 0 ||
        n > 100000) {
      return Status::InvalidArgument(
          "BATCH count must be an integer between 1 and 100000");
    }
    request.batch_size = static_cast<size_t>(n);
  } else if (verb == "STATS") {
    request.kind = Request::Kind::kStats;
    if (!rest.empty()) {
      return Status::InvalidArgument("usage: STATS");
    }
  } else if (verb == "METRICS") {
    request.kind = Request::Kind::kMetrics;
    if (!rest.empty()) {
      return Status::InvalidArgument("usage: METRICS");
    }
  } else if (verb == "EVICT") {
    request.kind = Request::Kind::kEvict;
    request.name = std::string(rest);
    if (request.name.empty()) {
      return Status::InvalidArgument("usage: EVICT <name>");
    }
  } else if (verb == "QUIT") {
    request.kind = Request::Kind::kQuit;
  } else {
    return Status::InvalidArgument(
        StrFormat("unknown verb '%s' (expected LOAD, QUERY, BATCH, STATS, "
                  "METRICS, EVICT, or QUIT)",
                  std::string(verb).c_str()));
  }
  return request;
}

std::string FormatOutcome(const QueryOutcome& outcome) {
  return StrFormat(
      "dag=%llu tree=%llu splits=%llu label_s=%.6f eval_s=%.6f",
      static_cast<unsigned long long>(outcome.selected_dag_nodes),
      static_cast<unsigned long long>(outcome.selected_tree_nodes),
      static_cast<unsigned long long>(outcome.stats.splits),
      outcome.label_seconds, outcome.stats.seconds);
}

std::string FormatDocumentInfo(const DocumentInfo& info) {
  // The field order below is FROZEN (docs/SERVER.md documents every
  // key): scripts parse these lines by position or key, so new fields
  // are appended at the end and existing ones never move. server_test
  // asserts the exact field set.
  return StrFormat(
      "%s bytes=%zu vertices=%zu edges=%llu tree_nodes=%llu tags=%zu "
      "patterns=%zu queries=%llu batches=%llu shared=%llu parses=%llu "
      "source=%s summary=%llu visited=%llu full=%llu pruned=%llu "
      "skipped=%llu scratch_resident=%zu scratch_hits=%llu "
      "scratch_allocs=%llu traversal_builds=%llu summary_builds=%llu "
      "label_s=%.6f minimize_s=%.6f qps=%.3f share_rate=%.3f "
      "p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f",
      info.name.c_str(), info.memory_bytes, info.vertex_count,
      static_cast<unsigned long long>(info.rle_edges),
      static_cast<unsigned long long>(info.tree_nodes), info.tracked_tags,
      info.tracked_patterns,
      static_cast<unsigned long long>(info.queries_served),
      static_cast<unsigned long long>(info.batches_served),
      static_cast<unsigned long long>(info.batches_shared),
      static_cast<unsigned long long>(info.source_parses),
      info.has_source ? "xml" : "xcqi",
      static_cast<unsigned long long>(info.summary_nodes),
      static_cast<unsigned long long>(info.sweep_visited),
      static_cast<unsigned long long>(info.sweep_full),
      static_cast<unsigned long long>(info.pruned_sweeps),
      static_cast<unsigned long long>(info.skipped_sweeps),
      info.scratch_resident,
      static_cast<unsigned long long>(info.scratch_hits),
      static_cast<unsigned long long>(info.scratch_allocs),
      static_cast<unsigned long long>(info.traversal_builds),
      static_cast<unsigned long long>(info.summary_builds),
      info.label_seconds, info.minimize_seconds, info.qps,
      info.share_rate, info.p50_ms, info.p95_ms, info.p99_ms);
}

std::string FormatError(const Status& status) {
  std::string flat = status.ToString();
  for (char& c : flat) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return "ERR " + flat;
}

void RequestHandler::MaybeEmitTrace(const std::string& document,
                                    const std::string& query,
                                    const QueryOutcome& outcome) const {
  const TraceOptions& trace_options = store_->options().trace;
  if (trace_options.mode == TraceOptions::Mode::kOff) return;
  if (trace_options.mode == TraceOptions::Mode::kSlow &&
      outcome.trace.Elapsed() < trace_options.slow_threshold_s) {
    return;
  }
  const std::string line = outcome.trace.ToJson(
      document, query, outcome.selected_tree_nodes, outcome.stats.splits);
  if (trace_options.sink) {
    trace_options.sink(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

bool RequestHandler::Handle(
    std::string_view line,
    const std::function<bool(std::string*)>& read_line,
    const std::function<void(std::string_view)>& write_line) {
  const Result<Request> parsed = ParseRequest(line);
  if (!parsed.ok()) {
    write_line(FormatError(parsed.status()));
    return true;
  }
  const Request& request = *parsed;

  switch (request.kind) {
    case Request::Kind::kQuit:
      write_line("OK bye");
      return false;

    case Request::Kind::kLoad: {
      const Status status = store_->LoadFile(request.name, request.path);
      if (!status.ok()) {
        write_line(FormatError(status));
        return true;
      }
      const std::shared_ptr<StoredDocument> doc = store_->Find(request.name);
      // The document cannot disappear between load and lookup unless a
      // concurrent EVICT raced us; report the load either way.
      if (doc == nullptr) {
        write_line(StrFormat("OK loaded %s", request.name.c_str()));
      } else {
        const DocumentInfo info = doc->Info(request.name);
        write_line(StrFormat(
            "OK loaded %s vertices=%zu edges=%llu bytes=%zu source=%s",
            request.name.c_str(), info.vertex_count,
            static_cast<unsigned long long>(info.rle_edges),
            info.memory_bytes, info.has_source ? "xml" : "xcqi"));
      }
      return true;
    }

    case Request::Kind::kQuery: {
      QueryJob job;
      job.document = request.name;
      job.queries.push_back(request.query);
      const QueryResponse response =
          service_->Submit(std::move(job)).get();
      if (!response.ok()) {
        write_line(FormatError(response.status()));
      } else {
        QueryOutcome outcome = response->front();
        std::string formatted;
        {
          obs::QueryTrace::Scope serialize_span(&outcome.trace,
                                                obs::Phase::kSerialize);
          formatted = "OK " + FormatOutcome(outcome);
        }
        MaybeEmitTrace(request.name, request.query, outcome);
        write_line(formatted);
      }
      return true;
    }

    case Request::Kind::kBatch: {
      QueryJob job;
      job.document = request.name;
      job.queries.reserve(request.batch_size);
      for (size_t i = 0; i < request.batch_size; ++i) {
        std::string query;
        if (!read_line(&query)) {
          write_line(FormatError(Status::InvalidArgument(StrFormat(
              "input ended after %zu of %zu batch queries", i,
              request.batch_size))));
          return false;  // the stream is out of sync; close
        }
        job.queries.push_back(std::move(query));
      }
      const std::vector<std::string> queries = job.queries;
      const QueryResponse response =
          service_->Submit(std::move(job)).get();
      if (!response.ok()) {
        write_line(FormatError(response.status()));
        return true;
      }
      write_line(StrFormat("OK %zu", response->size()));
      for (size_t i = 0; i < response->size(); ++i) {
        QueryOutcome outcome = (*response)[i];
        std::string formatted;
        {
          obs::QueryTrace::Scope serialize_span(&outcome.trace,
                                                obs::Phase::kSerialize);
          formatted = StrFormat("%zu ", i) + FormatOutcome(outcome);
        }
        MaybeEmitTrace(request.name,
                       i < queries.size() ? queries[i] : std::string(),
                       outcome);
        write_line(formatted);
      }
      return true;
    }

    case Request::Kind::kStats: {
      const std::vector<DocumentInfo> infos = store_->Stats();
      write_line(StrFormat("OK %zu", infos.size()));
      for (const DocumentInfo& info : infos) {
        write_line(FormatDocumentInfo(info));
      }
      return true;
    }

    case Request::Kind::kMetrics: {
      const std::string exposition = store_->ScrapeMetrics();
      // Split into lines for the `OK <n>` framing; the exposition never
      // contains empty interior lines, and the trailing newline does
      // not produce a phantom final line.
      std::vector<std::string_view> lines;
      size_t begin = 0;
      while (begin < exposition.size()) {
        size_t end = exposition.find('\n', begin);
        if (end == std::string::npos) end = exposition.size();
        lines.push_back(
            std::string_view(exposition).substr(begin, end - begin));
        begin = end + 1;
      }
      write_line(StrFormat("OK %zu", lines.size()));
      for (const std::string_view metric_line : lines) {
        write_line(metric_line);
      }
      return true;
    }

    case Request::Kind::kEvict: {
      if (store_->Evict(request.name)) {
        write_line(StrFormat("OK evicted %s", request.name.c_str()));
      } else {
        write_line(FormatError(Status::NotFound(StrFormat(
            "no document named '%s' is loaded", request.name.c_str()))));
      }
      return true;
    }
  }
  write_line(FormatError(Status::Internal("unhandled request kind")));
  return true;
}

}  // namespace xcq::server
