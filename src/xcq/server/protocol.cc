#include "xcq/server/protocol.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "xcq/util/string_util.h"

namespace xcq::server {

namespace {

/// Splits off the first space-separated token of `*rest`, trimming the
/// remainder; empty when exhausted.
std::string_view NextToken(std::string_view* rest) {
  *rest = Trim(*rest);
  const size_t space = rest->find(' ');
  std::string_view token;
  if (space == std::string_view::npos) {
    token = *rest;
    *rest = {};
  } else {
    token = rest->substr(0, space);
    *rest = Trim(rest->substr(space + 1));
  }
  return token;
}

/// Parses the `<ms>` value of a `TIMEOUT` clause: all digits, 1 ms to
/// one hour. The cap keeps a typo ("TIMEOUT 50000000000") from quietly
/// meaning "no deadline at all".
Result<uint64_t> ParseTimeoutMs(std::string_view token) {
  const std::string str(token);
  char* end = nullptr;
  const unsigned long long n = std::strtoull(str.c_str(), &end, 10);
  if (str.empty() || end != str.c_str() + str.size() || n == 0 ||
      n > 3600000ULL) {
    return Status::InvalidArgument(
        "TIMEOUT must be an integer number of milliseconds between 1 and "
        "3600000");
  }
  return static_cast<uint64_t>(n);
}

/// Appends the serialize span to `outcome`'s trace and emits the
/// one-line JSON trace when `StoreOptions::trace` says so. Thread-safe
/// like the sink it forwards to: traces come from whatever thread
/// served the query.
void MaybeEmitTrace(const DocumentStore* store, const std::string& document,
                    const std::string& query, const QueryOutcome& outcome) {
  const TraceOptions& trace_options = store->options().trace;
  if (trace_options.mode == TraceOptions::Mode::kOff) return;
  if (trace_options.mode == TraceOptions::Mode::kSlow &&
      outcome.trace.Elapsed() < trace_options.slow_threshold_s) {
    return;
  }
  const std::string line = outcome.trace.ToJson(
      document, query, outcome.selected_tree_nodes, outcome.stats.splits);
  if (trace_options.sink) {
    trace_options.sink(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

/// The request's deadline token: the explicit `TIMEOUT` clause wins,
/// then the handler's default deadline; null when neither applies.
std::shared_ptr<CancelToken> MakeDeadlineToken(uint64_t request_ms,
                                               uint64_t default_ms) {
  const uint64_t ms = request_ms != 0 ? request_ms : default_ms;
  if (ms == 0) return nullptr;
  auto token = std::make_shared<CancelToken>();
  token->SetTimeout(std::chrono::milliseconds(ms));
  return token;
}

/// The canonical over-limit BATCH reply (`--max-batch`). Emitted for
/// the header alone — like a count the parser rejects, no body line is
/// ever consumed for a refused batch.
std::string FormatBatchLimitError(size_t batch_size, size_t max_batch) {
  return FormatError(Status::InvalidArgument(
      StrFormat("BATCH count %zu exceeds the server's limit of %zu queries",
                batch_size, max_batch)));
}

}  // namespace

Result<Request> ParseRequest(std::string_view line) {
  std::string_view rest = Trim(line);
  const std::string_view verb = NextToken(&rest);
  if (verb.empty()) {
    return Status::InvalidArgument("empty request line");
  }

  Request request;
  if (verb == "LOAD") {
    request.kind = Request::Kind::kLoad;
    request.name = std::string(NextToken(&rest));
    request.path = std::string(rest);
    if (request.name.empty() || request.path.empty()) {
      return Status::InvalidArgument("usage: LOAD <name> <path>");
    }
  } else if (verb == "QUERY") {
    request.kind = Request::Kind::kQuery;
    request.name = std::string(NextToken(&rest));
    // Optional deadline clause; `TIMEOUT` is reserved as the first
    // query token (Core XPath queries start with '/', so no real query
    // collides).
    std::string_view peek = rest;
    if (NextToken(&peek) == "TIMEOUT") {
      NextToken(&rest);  // consume the keyword
      const Result<uint64_t> ms = ParseTimeoutMs(NextToken(&rest));
      if (!ms.ok()) return ms.status();
      request.timeout_ms = *ms;
    }
    request.query = std::string(rest);
    if (request.name.empty() || request.query.empty()) {
      return Status::InvalidArgument(
          "usage: QUERY <name> [TIMEOUT <ms>] <query>");
    }
  } else if (verb == "BATCH") {
    request.kind = Request::Kind::kBatch;
    request.name = std::string(NextToken(&rest));
    const std::string_view count = NextToken(&rest);
    if (request.name.empty() || count.empty()) {
      return Status::InvalidArgument(
          "usage: BATCH <name> <count> [TIMEOUT <ms>]");
    }
    if (!rest.empty()) {
      if (NextToken(&rest) != "TIMEOUT") {
        return Status::InvalidArgument(
            "usage: BATCH <name> <count> [TIMEOUT <ms>]");
      }
      const Result<uint64_t> ms = ParseTimeoutMs(NextToken(&rest));
      if (!ms.ok()) return ms.status();
      request.timeout_ms = *ms;
      if (!rest.empty()) {
        return Status::InvalidArgument(
            "usage: BATCH <name> <count> [TIMEOUT <ms>]");
      }
    }
    const std::string count_str(count);
    char* end = nullptr;
    const unsigned long long n = std::strtoull(count_str.c_str(), &end, 10);
    // The whole token must be digits: "12x" desynchronizes the body
    // framing if accepted as 12.
    if (end != count_str.c_str() + count_str.size() || n == 0 ||
        n > 100000) {
      return Status::InvalidArgument(
          "BATCH count must be an integer between 1 and 100000");
    }
    request.batch_size = static_cast<size_t>(n);
  } else if (verb == "STATS") {
    request.kind = Request::Kind::kStats;
    if (!rest.empty()) {
      return Status::InvalidArgument("usage: STATS");
    }
  } else if (verb == "METRICS") {
    request.kind = Request::Kind::kMetrics;
    if (!rest.empty()) {
      return Status::InvalidArgument("usage: METRICS");
    }
  } else if (verb == "EVICT") {
    request.kind = Request::Kind::kEvict;
    request.name = std::string(rest);
    if (request.name.empty()) {
      return Status::InvalidArgument("usage: EVICT <name>");
    }
  } else if (verb == "PERSIST") {
    request.kind = Request::Kind::kPersist;
    request.name = std::string(rest);
    if (request.name.empty()) {
      return Status::InvalidArgument("usage: PERSIST <name>");
    }
  } else if (verb == "FORGET") {
    request.kind = Request::Kind::kForget;
    request.name = std::string(rest);
    if (request.name.empty()) {
      return Status::InvalidArgument("usage: FORGET <name>");
    }
  } else if (verb == "QUIT") {
    request.kind = Request::Kind::kQuit;
  } else {
    return Status::InvalidArgument(
        StrFormat("unknown verb '%s' (expected LOAD, QUERY, BATCH, STATS, "
                  "METRICS, EVICT, PERSIST, FORGET, or QUIT)",
                  std::string(verb).c_str()));
  }
  return request;
}

std::string FormatOutcome(const QueryOutcome& outcome) {
  return StrFormat(
      "dag=%llu tree=%llu splits=%llu label_s=%.6f eval_s=%.6f",
      static_cast<unsigned long long>(outcome.selected_dag_nodes),
      static_cast<unsigned long long>(outcome.selected_tree_nodes),
      static_cast<unsigned long long>(outcome.stats.splits),
      outcome.label_seconds, outcome.stats.seconds);
}

std::string FormatDocumentInfo(const DocumentInfo& info) {
  // The field order below is FROZEN (docs/SERVER.md documents every
  // key): scripts parse these lines by position or key, so new fields
  // are appended at the end and existing ones never move. server_test
  // asserts the exact field set.
  return StrFormat(
      "%s bytes=%zu vertices=%zu edges=%llu tree_nodes=%llu tags=%zu "
      "patterns=%zu queries=%llu batches=%llu shared=%llu parses=%llu "
      "source=%s summary=%llu visited=%llu full=%llu pruned=%llu "
      "skipped=%llu scratch_resident=%zu scratch_hits=%llu "
      "scratch_allocs=%llu traversal_builds=%llu summary_builds=%llu "
      "label_s=%.6f minimize_s=%.6f qps=%.3f share_rate=%.3f "
      "p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f queued=%llu inflight=%llu "
      "warm=%d resident=%d spill_bytes=%zu shed=%llu cancelled=%llu",
      info.name.c_str(), info.memory_bytes, info.vertex_count,
      static_cast<unsigned long long>(info.rle_edges),
      static_cast<unsigned long long>(info.tree_nodes), info.tracked_tags,
      info.tracked_patterns,
      static_cast<unsigned long long>(info.queries_served),
      static_cast<unsigned long long>(info.batches_served),
      static_cast<unsigned long long>(info.batches_shared),
      static_cast<unsigned long long>(info.source_parses),
      info.has_source ? "xml" : "xcqi",
      static_cast<unsigned long long>(info.summary_nodes),
      static_cast<unsigned long long>(info.sweep_visited),
      static_cast<unsigned long long>(info.sweep_full),
      static_cast<unsigned long long>(info.pruned_sweeps),
      static_cast<unsigned long long>(info.skipped_sweeps),
      info.scratch_resident,
      static_cast<unsigned long long>(info.scratch_hits),
      static_cast<unsigned long long>(info.scratch_allocs),
      static_cast<unsigned long long>(info.traversal_builds),
      static_cast<unsigned long long>(info.summary_builds),
      info.label_seconds, info.minimize_seconds, info.qps,
      info.share_rate, info.p50_ms, info.p95_ms, info.p99_ms,
      static_cast<unsigned long long>(info.queued),
      static_cast<unsigned long long>(info.inflight),
      info.warm ? 1 : 0, info.resident ? 1 : 0, info.spill_bytes,
      static_cast<unsigned long long>(info.shed),
      static_cast<unsigned long long>(info.cancelled));
}

std::string FormatError(const Status& status) {
  std::string flat = status.ToString();
  for (char& c : flat) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return "ERR " + flat;
}

void StripTrailingCr(std::string* line) {
  if (!line->empty() && line->back() == '\r') line->pop_back();
}

void LineFramer::Append(std::string_view bytes) {
  // Past overflow the stream cannot be re-framed — drop everything so
  // a hostile peer cannot grow the buffer either.
  if (overflowed_) return;
  data_.append(bytes);
}

LineFramer::Next LineFramer::NextLine(std::string* line) {
  if (overflowed_) return Next::kOverflow;
  const size_t newline = data_.find('\n', scan_);
  if (newline == std::string::npos) {
    scan_ = data_.size();
    if (data_.size() > max_line_bytes_) {
      overflowed_ = true;
      data_.clear();
      data_.shrink_to_fit();
      scan_ = 0;
      return Next::kOverflow;
    }
    return Next::kNeedMore;
  }
  if (newline > max_line_bytes_) {
    overflowed_ = true;
    data_.clear();
    data_.shrink_to_fit();
    scan_ = 0;
    return Next::kOverflow;
  }
  line->assign(data_, 0, newline);
  StripTrailingCr(line);
  data_.erase(0, newline + 1);
  scan_ = 0;
  return Next::kLine;
}

bool LineFramer::TakeResidual(std::string* line) {
  if (overflowed_ || data_.empty()) return false;
  *line = std::move(data_);
  data_.clear();
  scan_ = 0;
  StripTrailingCr(line);
  return true;
}

std::vector<std::string> BuildLoadReply(DocumentStore* store,
                                        const std::string& name,
                                        const std::string& path) {
  const Status status = store->LoadFile(name, path);
  if (!status.ok()) {
    return {FormatError(status)};
  }
  const std::shared_ptr<StoredDocument> doc = store->Find(name);
  // The document cannot disappear between load and lookup unless a
  // concurrent EVICT raced us; report the load either way.
  if (doc == nullptr) {
    return {StrFormat("OK loaded %s", name.c_str())};
  }
  const DocumentInfo info = doc->Info(name);
  return {StrFormat("OK loaded %s vertices=%zu edges=%llu bytes=%zu source=%s",
                    name.c_str(), info.vertex_count,
                    static_cast<unsigned long long>(info.rle_edges),
                    info.memory_bytes, info.has_source ? "xml" : "xcqi")};
}

std::vector<std::string> BuildQueryReply(DocumentStore* store,
                                         const std::string& name,
                                         const std::string& query,
                                         const QueryResponse& response) {
  if (!response.ok()) {
    return {FormatError(response.status())};
  }
  QueryOutcome outcome = response->front();
  std::string formatted;
  {
    obs::QueryTrace::Scope serialize_span(&outcome.trace,
                                          obs::Phase::kSerialize);
    formatted = "OK " + FormatOutcome(outcome);
  }
  MaybeEmitTrace(store, name, query, outcome);
  return {std::move(formatted)};
}

std::vector<std::string> BuildBatchReply(
    DocumentStore* store, const std::string& name,
    const std::vector<std::string>& queries, const QueryResponse& response) {
  if (!response.ok()) {
    return {FormatError(response.status())};
  }
  std::vector<std::string> lines;
  lines.reserve(response->size() + 1);
  lines.push_back(StrFormat("OK %zu", response->size()));
  for (size_t i = 0; i < response->size(); ++i) {
    QueryOutcome outcome = (*response)[i];
    std::string formatted;
    {
      obs::QueryTrace::Scope serialize_span(&outcome.trace,
                                            obs::Phase::kSerialize);
      formatted = StrFormat("%zu ", i) + FormatOutcome(outcome);
    }
    MaybeEmitTrace(store, name,
                   i < queries.size() ? queries[i] : std::string(), outcome);
    lines.push_back(std::move(formatted));
  }
  return lines;
}

std::vector<std::string> BuildStatsReply(DocumentStore* store,
                                         QueryService* service) {
  std::vector<DocumentInfo> infos = store->Stats();
  std::vector<std::string> lines;
  lines.reserve(infos.size() + 1);
  lines.push_back(StrFormat("OK %zu", infos.size()));
  for (DocumentInfo& info : infos) {
    if (service != nullptr) {
      service->PendingForDocument(info.name, &info.queued, &info.inflight);
      service->ShedForDocument(info.name, &info.shed, &info.cancelled);
    }
    lines.push_back(FormatDocumentInfo(info));
  }
  return lines;
}

std::vector<std::string> BuildMetricsReply(DocumentStore* store) {
  const std::string exposition = store->ScrapeMetrics();
  // Split into lines for the `OK <n>` framing; the exposition never
  // contains empty interior lines, and the trailing newline does not
  // produce a phantom final line.
  std::vector<std::string> lines;
  lines.push_back("");  // placeholder for the OK header
  size_t begin = 0;
  while (begin < exposition.size()) {
    size_t end = exposition.find('\n', begin);
    if (end == std::string::npos) end = exposition.size();
    lines.push_back(exposition.substr(begin, end - begin));
    begin = end + 1;
  }
  lines.front() = StrFormat("OK %zu", lines.size() - 1);
  return lines;
}

std::vector<std::string> BuildEvictReply(DocumentStore* store,
                                         const std::string& name) {
  if (store->Evict(name)) {
    return {StrFormat("OK evicted %s", name.c_str())};
  }
  return {FormatError(Status::NotFound(
      StrFormat("no document named '%s' is loaded", name.c_str())))};
}

std::vector<std::string> BuildPersistReply(DocumentStore* store,
                                           const std::string& name) {
  const Status status = store->Persist(name);
  if (!status.ok()) {
    return {FormatError(status)};
  }
  return {StrFormat("OK persisted %s", name.c_str())};
}

std::vector<std::string> BuildForgetReply(DocumentStore* store,
                                          const std::string& name) {
  if (store->Forget(name)) {
    return {StrFormat("OK forgot %s", name.c_str())};
  }
  return {FormatError(Status::NotFound(
      StrFormat("no document named '%s' is loaded", name.c_str())))};
}

bool RequestHandler::Handle(
    std::string_view line,
    const std::function<bool(std::string*)>& read_line,
    const std::function<void(std::string_view)>& write_line) {
  // Blank keep-alive lines between requests are skipped, not answered —
  // the one defined behavior for both front ends (see the header).
  if (Trim(line).empty()) return true;
  const Result<Request> parsed = ParseRequest(line);
  if (!parsed.ok()) {
    write_line(FormatError(parsed.status()));
    return true;
  }
  const Request& request = *parsed;

  if (request.kind == Request::Kind::kBatch &&
      request.batch_size > options_.max_batch) {
    write_line(FormatBatchLimitError(request.batch_size, options_.max_batch));
    return true;
  }

  std::vector<std::string> reply;
  switch (request.kind) {
    case Request::Kind::kQuit:
      write_line("OK bye");
      return false;

    case Request::Kind::kLoad:
      reply = BuildLoadReply(store_, request.name, request.path);
      break;

    case Request::Kind::kQuery: {
      QueryJob job;
      job.document = request.name;
      job.queries.push_back(request.query);
      job.token = MakeDeadlineToken(request.timeout_ms,
                                    options_.default_deadline_ms);
      const QueryResponse response = service_->Submit(std::move(job)).get();
      reply = BuildQueryReply(store_, request.name, request.query, response);
      break;
    }

    case Request::Kind::kBatch: {
      QueryJob job;
      job.document = request.name;
      job.queries.reserve(request.batch_size);
      for (size_t i = 0; i < request.batch_size; ++i) {
        std::string query;
        if (!read_line(&query)) {
          write_line(FormatError(Status::InvalidArgument(StrFormat(
              "input ended after %zu of %zu batch queries", i,
              request.batch_size))));
          return false;  // the stream is out of sync; close
        }
        job.queries.push_back(std::move(query));
      }
      job.token = MakeDeadlineToken(request.timeout_ms,
                                    options_.default_deadline_ms);
      const std::vector<std::string> queries = job.queries;
      const QueryResponse response = service_->Submit(std::move(job)).get();
      reply = BuildBatchReply(store_, request.name, queries, response);
      break;
    }

    case Request::Kind::kStats:
      reply = BuildStatsReply(store_, service_);
      break;

    case Request::Kind::kMetrics:
      reply = BuildMetricsReply(store_);
      break;

    case Request::Kind::kEvict:
      reply = BuildEvictReply(store_, request.name);
      break;

    case Request::Kind::kPersist:
      reply = BuildPersistReply(store_, request.name);
      break;

    case Request::Kind::kForget:
      reply = BuildForgetReply(store_, request.name);
      break;
  }
  for (const std::string& reply_line : reply) {
    write_line(reply_line);
  }
  return true;
}

PipelinedHandler::PipelinedHandler(DocumentStore* store, QueryService* service,
                                   ReplySink sink, Limits limits, Hooks hooks,
                                   HandlerOptions options)
    : store_(store),
      service_(service),
      sink_(std::move(sink)),
      limits_(limits),
      hooks_(hooks),
      options_(options) {
  if (limits_.max_inflight < 1) limits_.max_inflight = 1;
}

PipelinedHandler::PipelinedHandler(DocumentStore* store, QueryService* service,
                                   ReplySink sink)
    : PipelinedHandler(store, service, std::move(sink), Limits{}, Hooks{}) {}

void PipelinedHandler::Complete(uint64_t seq, std::vector<std::string> lines) {
  {
    std::lock_guard<std::mutex> lock(tokens_mu_);
    outstanding_.erase(seq);
  }
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  sink_(seq, JoinLines(lines), /*close_after=*/false);
}

void PipelinedHandler::CancelOutstanding() {
  std::lock_guard<std::mutex> lock(tokens_mu_);
  for (auto& [seq, token] : outstanding_) {
    (void)seq;
    token->Cancel();
  }
}

std::string PipelinedHandler::JoinLines(const std::vector<std::string>& lines) {
  size_t total = 0;
  for (const std::string& line : lines) total += line.size() + 1;
  std::string bytes;
  bytes.reserve(total);
  for (const std::string& line : lines) {
    bytes.append(line);
    bytes.push_back('\n');
  }
  return bytes;
}

void PipelinedHandler::EmitNow(std::vector<std::string> lines,
                               bool close_after) {
  sink_(next_seq_++, JoinLines(lines), close_after);
}

PipelinedHandler::FeedResult PipelinedHandler::Feed(const std::string& line) {
  if (closed_) return FeedResult::kClose;

  if (collecting_.has_value()) {
    // BATCH body: every line — blank included — is one query.
    batch_body_.push_back(line);
    if (batch_body_.size() < collecting_->batch_size) return FeedResult::kOk;
    Request request = std::move(*collecting_);
    collecting_.reset();
    return Dispatch(std::move(request), std::move(batch_body_), nullptr);
  }

  // Blank keep-alive lines: same skip as RequestHandler (see header).
  if (Trim(line).empty()) return FeedResult::kOk;

  Result<Request> parsed = ParseRequest(line);
  if (!parsed.ok()) {
    EmitNow({FormatError(parsed.status())}, /*close_after=*/false);
    return FeedResult::kOk;
  }

  if (parsed->kind == Request::Kind::kBatch) {
    if (parsed->batch_size > options_.max_batch) {
      // Refused at the header, so no body line is ever collected — the
      // same framing contract as a count the parser itself rejects.
      EmitNow({FormatBatchLimitError(parsed->batch_size, options_.max_batch)},
              /*close_after=*/false);
      return FeedResult::kOk;
    }
    collecting_ = std::move(*parsed);
    batch_body_.clear();
    batch_body_.reserve(collecting_->batch_size);
    return FeedResult::kOk;
  }
  return Dispatch(std::move(*parsed), {}, nullptr);
}

PipelinedHandler::FeedResult PipelinedHandler::Dispatch(
    Request request, std::vector<std::string> batch_queries,
    std::shared_ptr<CancelToken> token) {
  // Only QUIT answers inline on the loop thread (pure protocol state,
  // no store access). Everything else — EVICT included — goes through
  // the worker pool: Evict takes the store's exclusive lock and may
  // destroy an entire document, which must never run on (or block) the
  // thread that owns every socket.
  if (request.kind == Request::Kind::kQuit) {
    closed_ = true;
    EmitNow({"OK bye"}, /*close_after=*/true);
    return FeedResult::kClose;
  }

  // Every QUERY/BATCH carries a token — even without a deadline it is
  // the disconnect-cancellation handle. Created at the first dispatch
  // attempt only (null `token` means this is it), so parking on a full
  // queue does not restart the deadline clock.
  if (token == nullptr && (request.kind == Request::Kind::kQuery ||
                           request.kind == Request::Kind::kBatch)) {
    token = MakeDeadlineToken(request.timeout_ms,
                              options_.default_deadline_ms);
    if (token == nullptr) token = std::make_shared<CancelToken>();
  }

  if (inflight_.load(std::memory_order_relaxed) >= limits_.max_inflight) {
    deferred_ =
        Deferred{std::move(request), std::move(batch_queries), std::move(token)};
    return FeedResult::kStalled;
  }

  // The work closure runs on a QueryService worker: evaluate (or load,
  // or scrape), format through the shared builders, hand the bytes to
  // the sink. `self` keeps the handler alive past connection close;
  // the payload is shared so a *refused* submission (queue full) can
  // recover the request for parking instead of losing it.
  const uint64_t seq = next_seq_;
  auto self = shared_from_this();
  auto payload = std::make_shared<Deferred>(Deferred{
      std::move(request), std::move(batch_queries), std::move(token)});
  auto work = [self, seq, payload] {
    const Request& req = payload->request;
    std::vector<std::string> lines;
    switch (req.kind) {
      case Request::Kind::kLoad:
        lines = BuildLoadReply(self->store_, req.name, req.path);
        break;
      case Request::Kind::kQuery: {
        QueryJob job;
        job.document = req.name;
        job.queries.push_back(req.query);
        job.token = payload->token;
        lines = BuildQueryReply(self->store_, req.name, req.query,
                                self->service_->Execute(job));
        break;
      }
      case Request::Kind::kBatch: {
        QueryJob job;
        job.document = req.name;
        job.queries = payload->batch_queries;
        job.token = payload->token;
        lines = BuildBatchReply(self->store_, req.name,
                                payload->batch_queries,
                                self->service_->Execute(job));
        break;
      }
      case Request::Kind::kStats:
        lines = BuildStatsReply(self->store_, self->service_);
        break;
      case Request::Kind::kMetrics:
        lines = BuildMetricsReply(self->store_);
        break;
      case Request::Kind::kEvict:
        lines = BuildEvictReply(self->store_, req.name);
        break;
      case Request::Kind::kPersist:
        lines = BuildPersistReply(self->store_, req.name);
        break;
      case Request::Kind::kForget:
        lines = BuildForgetReply(self->store_, req.name);
        break;
      case Request::Kind::kQuit:
        lines = {FormatError(Status::Internal("unreachable dispatch kind"))};
        break;
    }
    self->Complete(seq, std::move(lines));
  };

  // Count in flight *before* TrySubmitWork: a worker could finish the
  // task before a post-submit fetch_add ran and the counter would go
  // negative. The token registers first for the same reason — a worker
  // completion erases it.
  inflight_.fetch_add(1, std::memory_order_relaxed);
  if (payload->token != nullptr) {
    std::lock_guard<std::mutex> lock(tokens_mu_);
    outstanding_[seq] = payload->token;
  }
  WorkItem item;
  item.document = payload->request.name;
  item.run = std::move(work);
  item.token = payload->token;
  if (payload->token != nullptr) {
    // The shed path: the service refused to evaluate a dead request
    // (deadline passed / client gone while queued) but the reply slot
    // at `seq` is still owed — fill it with the canonical error.
    item.shed = [self, seq](const Status& status) {
      self->Complete(seq, {FormatError(status)});
    };
  }
  if (!service_->TrySubmitWork(std::move(item))) {
    // Refused — the closure was destroyed un-run, so `payload` is ours
    // again. Park it; the caller stops reading this socket until a
    // completion frees queue capacity.
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    if (payload->token != nullptr) {
      std::lock_guard<std::mutex> lock(tokens_mu_);
      outstanding_.erase(seq);
    }
    deferred_ = std::move(*payload);
    return FeedResult::kStalled;
  }
  ++next_seq_;
  if (hooks_.requests != nullptr) hooks_.requests->Increment();
  return FeedResult::kOk;
}

PipelinedHandler::FeedResult PipelinedHandler::ResumeDeferred() {
  if (!deferred_.has_value()) return FeedResult::kOk;
  Deferred deferred = std::move(*deferred_);
  deferred_.reset();
  return Dispatch(std::move(deferred.request),
                  std::move(deferred.batch_queries),
                  std::move(deferred.token));
}

void PipelinedHandler::OnInputClosed() {
  if (closed_) return;
  closed_ = true;
  if (collecting_.has_value()) {
    // The blocking handler's early-EOF contract: answer ERR, close.
    EmitNow({FormatError(Status::InvalidArgument(
                StrFormat("input ended after %zu of %zu batch queries",
                          batch_body_.size(), collecting_->batch_size)))},
            /*close_after=*/true);
    collecting_.reset();
    return;
  }
  // Nothing mid-frame: close once everything in flight has flushed.
  // An empty reply advances no protocol state but carries the
  // close_after marker at the right position in the sequence.
  EmitNow({}, /*close_after=*/true);
}

void PipelinedHandler::FeedOversized(size_t max_line_bytes) {
  if (closed_) return;
  closed_ = true;
  EmitNow({FormatError(Status::InvalidArgument(StrFormat(
              "request line exceeds %zu bytes", max_line_bytes)))},
          /*close_after=*/true);
}

}  // namespace xcq::server
