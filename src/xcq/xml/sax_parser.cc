#include "xcq/xml/sax_parser.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "xcq/util/string_util.h"
#include "xcq/xml/entities.h"

namespace xcq::xml {

namespace {

bool IsNameStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':' || static_cast<unsigned char>(c) >= 0x80;
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

/// Cursor over the document with error-reporting helpers.
class Cursor {
 public:
  Cursor(std::string_view xml) : xml_(xml) {}

  bool AtEnd() const { return pos_ >= xml_.size(); }
  size_t pos() const { return pos_; }
  char Peek() const { return xml_[pos_]; }
  char PeekAt(size_t ahead) const {
    return pos_ + ahead < xml_.size() ? xml_[pos_ + ahead] : '\0';
  }
  void Advance(size_t n = 1) { pos_ += n; }

  bool Consume(std::string_view token) {
    if (xml_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  void SkipWhitespace() {
    while (!AtEnd() && IsSpace(xml_[pos_])) ++pos_;
  }

  /// Advances past `token`; error if not found before EOF.
  Status SkipPast(std::string_view token, const char* what) {
    const size_t found = xml_.find(token, pos_);
    if (found == std::string_view::npos) {
      return Error(StrFormat("unterminated %s", what));
    }
    pos_ = found + token.size();
    return Status::OK();
  }

  std::string_view Slice(size_t begin, size_t end) const {
    return xml_.substr(begin, end - begin);
  }

  std::string_view ParseName() {
    const size_t begin = pos_;
    if (!AtEnd() && IsNameStartChar(xml_[pos_])) {
      ++pos_;
      while (!AtEnd() && IsNameChar(xml_[pos_])) ++pos_;
    }
    return xml_.substr(begin, pos_ - begin);
  }

  /// Builds a ParseError with 1-based line:column for the current offset.
  Status Error(std::string msg) const { return ErrorAt(pos_, std::move(msg)); }

  Status ErrorAt(size_t offset, std::string msg) const {
    size_t line = 1;
    size_t col = 1;
    const size_t end = offset < xml_.size() ? offset : xml_.size();
    for (size_t i = 0; i < end; ++i) {
      if (xml_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return Status::ParseError(StrFormat("%zu:%zu: %s", line, col,
                                        msg.c_str()));
  }

 private:
  std::string_view xml_;
  size_t pos_ = 0;
};

class ParserImpl {
 public:
  ParserImpl(std::string_view xml, const SaxParser::Options& options,
             SaxHandler* handler)
      : cursor_(xml), options_(options), handler_(handler) {}

  Status Run() {
    cursor_.Consume("\xEF\xBB\xBF");  // UTF-8 BOM
    XCQ_RETURN_IF_ERROR(handler_->OnStartDocument());
    while (!cursor_.AtEnd()) {
      if (cursor_.Peek() == '<') {
        XCQ_RETURN_IF_ERROR(ParseMarkup());
      } else {
        XCQ_RETURN_IF_ERROR(ParseText());
      }
    }
    if (!open_tags_.empty()) {
      return cursor_.Error(StrFormat(
          "unexpected end of document: %zu element(s) still open, "
          "innermost is <%.*s>",
          open_tags_.size(), static_cast<int>(open_tags_.back().size()),
          open_tags_.back().data()));
    }
    if (!seen_root_ && !options_.fragment) {
      return cursor_.Error("document has no root element");
    }
    return handler_->OnEndDocument();
  }

 private:
  Status ParseMarkup() {
    if (cursor_.Consume("<?")) return SkipProcessingInstruction();
    if (cursor_.Consume("<!--")) {
      return cursor_.SkipPast("-->", "comment");
    }
    if (cursor_.Consume("<![CDATA[")) return ParseCdata();
    if (cursor_.PeekAt(1) == '!') {
      cursor_.Advance(2);
      return SkipDoctype();
    }
    if (cursor_.PeekAt(1) == '/') {
      cursor_.Advance(2);
      return ParseEndTag();
    }
    cursor_.Advance(1);
    return ParseStartTag();
  }

  Status SkipProcessingInstruction() {
    return cursor_.SkipPast("?>", "processing instruction");
  }

  Status SkipDoctype() {
    // Already past "<!". Skip to '>' at bracket depth zero; the internal
    // subset "[ ... ]" may itself contain markup declarations with '>'.
    int bracket_depth = 0;
    while (!cursor_.AtEnd()) {
      const char c = cursor_.Peek();
      cursor_.Advance();
      if (c == '[') {
        ++bracket_depth;
      } else if (c == ']') {
        --bracket_depth;
      } else if (c == '>' && bracket_depth <= 0) {
        return Status::OK();
      }
    }
    return cursor_.Error("unterminated DOCTYPE declaration");
  }

  Status ParseCdata() {
    const size_t begin_offset = cursor_.pos();
    if (open_tags_.empty() && !options_.fragment) {
      return cursor_.Error("CDATA section outside of root element");
    }
    const size_t begin = cursor_.pos();
    XCQ_RETURN_IF_ERROR(cursor_.SkipPast("]]>", "CDATA section"));
    const std::string_view text = cursor_.Slice(begin, cursor_.pos() - 3);
    if (text.empty()) return Status::OK();
    (void)begin_offset;
    return handler_->OnCharacters(text);
  }

  Status ParseStartTag() {
    const size_t name_offset = cursor_.pos();
    const std::string_view name = cursor_.ParseName();
    if (name.empty()) {
      return cursor_.ErrorAt(name_offset, "expected element name after '<'");
    }
    if (open_tags_.empty() && seen_root_ && !options_.fragment) {
      return cursor_.ErrorAt(name_offset,
                             "document has more than one root element");
    }
    XCQ_RETURN_IF_ERROR(ParseAttributes());
    const bool self_closing = cursor_.Consume("/");
    if (!cursor_.Consume(">")) {
      return cursor_.Error(StrFormat("expected '>' to close tag <%.*s>",
                                     static_cast<int>(name.size()),
                                     name.data()));
    }
    if (open_tags_.size() >= options_.max_depth) {
      return cursor_.ErrorAt(
          name_offset,
          StrFormat("element nesting exceeds max depth %zu",
                    options_.max_depth));
    }
    seen_root_ = true;
    XCQ_RETURN_IF_ERROR(handler_->OnStartElement(name, attributes_));
    if (self_closing) {
      return handler_->OnEndElement(name);
    }
    open_tags_.push_back(name);
    return Status::OK();
  }

  Status ParseAttributes() {
    attributes_.clear();
    while (true) {
      cursor_.SkipWhitespace();
      if (cursor_.AtEnd()) return cursor_.Error("unterminated start tag");
      const char c = cursor_.Peek();
      if (c == '>' || c == '/') return Status::OK();
      const size_t name_offset = cursor_.pos();
      const std::string_view attr_name = cursor_.ParseName();
      if (attr_name.empty()) {
        return cursor_.ErrorAt(name_offset, "expected attribute name");
      }
      cursor_.SkipWhitespace();
      if (!cursor_.Consume("=")) {
        return cursor_.Error("expected '=' after attribute name");
      }
      cursor_.SkipWhitespace();
      if (cursor_.AtEnd() ||
          (cursor_.Peek() != '"' && cursor_.Peek() != '\'')) {
        return cursor_.Error("expected quoted attribute value");
      }
      const char quote = cursor_.Peek();
      cursor_.Advance();
      const size_t value_begin = cursor_.pos();
      while (!cursor_.AtEnd() && cursor_.Peek() != quote) {
        if (cursor_.Peek() == '<') {
          return cursor_.Error("'<' not allowed in attribute value");
        }
        cursor_.Advance();
      }
      if (cursor_.AtEnd()) {
        return cursor_.ErrorAt(value_begin, "unterminated attribute value");
      }
      const std::string_view raw = cursor_.Slice(value_begin, cursor_.pos());
      cursor_.Advance();  // closing quote
      Attribute attr;
      attr.name = attr_name;
      Status decoded = DecodeText(raw, &attr.value);
      if (!decoded.ok()) {
        return cursor_.ErrorAt(value_begin, decoded.message());
      }
      attributes_.push_back(std::move(attr));
    }
  }

  Status ParseEndTag() {
    const size_t name_offset = cursor_.pos();
    const std::string_view name = cursor_.ParseName();
    cursor_.SkipWhitespace();
    if (!cursor_.Consume(">")) {
      return cursor_.Error("expected '>' in end tag");
    }
    if (open_tags_.empty()) {
      return cursor_.ErrorAt(
          name_offset,
          StrFormat("end tag </%.*s> with no element open",
                    static_cast<int>(name.size()), name.data()));
    }
    if (open_tags_.back() != name) {
      return cursor_.ErrorAt(
          name_offset,
          StrFormat("end tag </%.*s> does not match open element <%.*s>",
                    static_cast<int>(name.size()), name.data(),
                    static_cast<int>(open_tags_.back().size()),
                    open_tags_.back().data()));
    }
    open_tags_.pop_back();
    return handler_->OnEndElement(name);
  }

  Status ParseText() {
    const size_t begin = cursor_.pos();
    while (!cursor_.AtEnd() && cursor_.Peek() != '<') cursor_.Advance();
    const std::string_view raw = cursor_.Slice(begin, cursor_.pos());
    const bool whitespace_only = Trim(raw).empty();
    if (open_tags_.empty() && !options_.fragment) {
      if (!whitespace_only) {
        return cursor_.ErrorAt(begin, "character data outside root element");
      }
      return Status::OK();
    }
    if (whitespace_only && !options_.report_whitespace) return Status::OK();
    if (raw.find('&') == std::string_view::npos) {
      return handler_->OnCharacters(raw);
    }
    scratch_.clear();
    Status decoded = DecodeText(raw, &scratch_);
    if (!decoded.ok()) {
      return cursor_.ErrorAt(begin, decoded.message());
    }
    return handler_->OnCharacters(scratch_);
  }

  Cursor cursor_;
  SaxParser::Options options_;
  SaxHandler* handler_;
  std::vector<std::string_view> open_tags_;
  std::vector<Attribute> attributes_;
  std::string scratch_;
  bool seen_root_ = false;
};

}  // namespace

Status SaxParser::Parse(std::string_view xml, SaxHandler* handler) {
  if (handler == nullptr) {
    return Status::InvalidArgument("SaxParser::Parse: handler is null");
  }
  ParserImpl impl(xml, options_, handler);
  return impl.Run();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IoError(StrFormat("error reading '%s'", path.c_str()));
  }
  return std::move(buffer).str();
}

Status WriteStringToFile(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError(StrFormat("cannot create '%s'", path.c_str()));
  }
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) {
    return Status::IoError(StrFormat("error writing '%s'", path.c_str()));
  }
  return Status::OK();
}

}  // namespace xcq::xml
