#include "xcq/xml/entities.h"

#include <cctype>

#include "xcq/util/string_util.h"

namespace xcq::xml {

bool AppendUtf8(uint32_t cp, std::string* out) {
  if (cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF)) return false;
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
  return true;
}

Result<size_t> DecodeEntity(std::string_view s, std::string* out) {
  if (s.empty() || s[0] != '&') {
    return Status::InvalidArgument("DecodeEntity: input must start with '&'");
  }
  const size_t semi = s.find(';');
  if (semi == std::string_view::npos || semi == 1) {
    return Status::ParseError("unterminated or empty entity reference");
  }
  if (semi > 12) {
    return Status::ParseError("entity reference too long");
  }
  const std::string_view body = s.substr(1, semi - 1);
  if (body == "lt") {
    out->push_back('<');
  } else if (body == "gt") {
    out->push_back('>');
  } else if (body == "amp") {
    out->push_back('&');
  } else if (body == "apos") {
    out->push_back('\'');
  } else if (body == "quot") {
    out->push_back('"');
  } else if (body.size() >= 2 && body[0] == '#') {
    uint32_t cp = 0;
    bool any = false;
    if (body[1] == 'x' || body[1] == 'X') {
      for (size_t i = 2; i < body.size(); ++i) {
        const char c = body[i];
        uint32_t digit;
        if (c >= '0' && c <= '9') {
          digit = static_cast<uint32_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
          digit = static_cast<uint32_t>(c - 'a' + 10);
        } else if (c >= 'A' && c <= 'F') {
          digit = static_cast<uint32_t>(c - 'A' + 10);
        } else {
          return Status::ParseError("bad hex character reference");
        }
        cp = cp * 16 + digit;
        if (cp > 0x10FFFF) return Status::ParseError("character reference out of range");
        any = true;
      }
    } else {
      for (size_t i = 1; i < body.size(); ++i) {
        const char c = body[i];
        if (c < '0' || c > '9') {
          return Status::ParseError("bad decimal character reference");
        }
        cp = cp * 10 + static_cast<uint32_t>(c - '0');
        if (cp > 0x10FFFF) return Status::ParseError("character reference out of range");
        any = true;
      }
    }
    if (!any || !AppendUtf8(cp, out)) {
      return Status::ParseError("invalid character reference");
    }
  } else {
    return Status::ParseError(
        StrFormat("unknown entity '&%.*s;'", static_cast<int>(body.size()),
                  body.data()));
  }
  return semi + 1;
}

Status DecodeText(std::string_view s, std::string* out) {
  size_t i = 0;
  while (i < s.size()) {
    const size_t amp = s.find('&', i);
    if (amp == std::string_view::npos) {
      out->append(s.substr(i));
      return Status::OK();
    }
    out->append(s.substr(i, amp - i));
    XCQ_ASSIGN_OR_RETURN(const size_t consumed,
                         DecodeEntity(s.substr(amp), out));
    i = amp + consumed;
  }
  return Status::OK();
}

void EscapeText(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '&':
        out->append("&amp;");
        break;
      case '<':
        out->append("&lt;");
        break;
      case '>':
        out->append("&gt;");
        break;
      default:
        out->push_back(c);
    }
  }
}

void EscapeAttribute(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '&':
        out->append("&amp;");
        break;
      case '<':
        out->append("&lt;");
        break;
      case '"':
        out->append("&quot;");
        break;
      default:
        out->push_back(c);
    }
  }
}

}  // namespace xcq::xml
