#include "xcq/xml/string_matcher.h"

#include <deque>

#include "xcq/util/string_util.h"

namespace xcq::xml {

Result<StringMatcher> StringMatcher::Build(
    std::vector<std::string> patterns) {
  for (size_t i = 0; i < patterns.size(); ++i) {
    if (patterns[i].empty()) {
      return Status::InvalidArgument(
          StrFormat("string pattern %zu is empty", i));
    }
  }

  // Phase 1: trie construction with sparse children.
  struct TrieNode {
    std::vector<std::pair<unsigned char, uint32_t>> children;
    std::vector<uint32_t> outputs;
    uint32_t fail = 0;
  };
  std::vector<TrieNode> trie(1);
  const auto find_child = [&trie](uint32_t node,
                                  unsigned char c) -> uint32_t {
    for (const auto& [ch, child] : trie[node].children) {
      if (ch == c) return child;
    }
    return UINT32_MAX;
  };
  for (uint32_t p = 0; p < patterns.size(); ++p) {
    uint32_t node = 0;
    for (char raw : patterns[p]) {
      const auto c = static_cast<unsigned char>(raw);
      uint32_t child = find_child(node, c);
      if (child == UINT32_MAX) {
        child = static_cast<uint32_t>(trie.size());
        trie.emplace_back();
        trie[node].children.emplace_back(c, child);
      }
      node = child;
    }
    trie[node].outputs.push_back(p);
  }

  // Phase 2: BFS failure links.
  std::deque<uint32_t> queue;
  for (const auto& [c, child] : trie[0].children) {
    trie[child].fail = 0;
    queue.push_back(child);
  }
  std::vector<uint32_t> bfs_order;
  while (!queue.empty()) {
    const uint32_t node = queue.front();
    queue.pop_front();
    bfs_order.push_back(node);
    for (const auto& [c, child] : trie[node].children) {
      uint32_t f = trie[node].fail;
      uint32_t via = find_child(f, c);
      while (f != 0 && via == UINT32_MAX) {
        f = trie[f].fail;
        via = find_child(f, c);
      }
      trie[child].fail = via == UINT32_MAX || via == child ? 0 : via;
      queue.push_back(child);
    }
  }

  // Phase 3: dense DFA table + dictionary (suffix-output) links.
  StringMatcher m;
  m.patterns_ = std::move(patterns);
  const size_t n = trie.size();
  m.transitions_.assign(n, {});
  m.outputs_.resize(n);
  m.suffix_output_.assign(n, 0);
  m.has_output_.assign(n, false);
  for (size_t s = 0; s < n; ++s) m.outputs_[s] = std::move(trie[s].outputs);

  // Root transitions: stay at root unless a child exists.
  for (int c = 0; c < 256; ++c) m.transitions_[0][c] = 0;
  for (const auto& [c, child] : trie[0].children) {
    m.transitions_[0][c] = child;
  }
  // Other states in BFS order: inherit from the failure state.
  for (uint32_t node : bfs_order) {
    m.transitions_[node] = m.transitions_[trie[node].fail];
    for (const auto& [c, child] : trie[node].children) {
      m.transitions_[node][c] = child;
    }
    const uint32_t f = trie[node].fail;
    m.suffix_output_[node] =
        m.outputs_[f].empty() ? m.suffix_output_[f] : f;
    m.has_output_[node] =
        !m.outputs_[node].empty() || m.suffix_output_[node] != 0;
  }
  return m;
}

}  // namespace xcq::xml
