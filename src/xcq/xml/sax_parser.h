#ifndef XCQ_XML_SAX_PARSER_H_
#define XCQ_XML_SAX_PARSER_H_

/// \file sax_parser.h
/// A from-scratch streaming (SAX-style) XML parser.
///
/// This is the "very fast SAX(-like) parser" of Sec. 4 of the paper: it
/// drives both the tree-skeleton builder and the streaming compressor,
/// which build their structures in a single left-to-right pass.
///
/// Scope (the paper's simplified XML model):
///  * elements, character data, CDATA sections
///  * attributes are parsed and reported but carry no skeleton semantics
///  * comments, processing instructions, XML declaration, DOCTYPE
///    (including a bracketed internal subset) are skipped
///  * predefined entities and numeric character references are decoded
///  * well-formedness is enforced: matching end tags, a single root
///    element, no stray text outside the root, proper EOF
///
/// Errors are reported as `Status` values carrying 1-based line:column.

#include <string>
#include <string_view>
#include <vector>

#include "xcq/util/result.h"
#include "xcq/util/status.h"

namespace xcq::xml {

/// \brief One attribute of a start tag; `value` is entity-decoded.
struct Attribute {
  std::string_view name;
  std::string value;
};

/// \brief Event sink for `SaxParser::Parse`.
///
/// Character data may be delivered in multiple consecutive `OnCharacters`
/// calls (e.g. around entity references or CDATA boundaries); consumers
/// that need contiguous text must concatenate.
class SaxHandler {
 public:
  virtual ~SaxHandler() = default;

  virtual Status OnStartDocument() { return Status::OK(); }
  virtual Status OnEndDocument() { return Status::OK(); }
  virtual Status OnStartElement(std::string_view name,
                                const std::vector<Attribute>& attributes) = 0;
  virtual Status OnEndElement(std::string_view name) = 0;
  virtual Status OnCharacters(std::string_view text) = 0;
};

/// \brief Streaming XML parser over an in-memory document.
class SaxParser {
 public:
  struct Options {
    /// Deliver whitespace-only text between elements. The skeleton model
    /// ignores formatting whitespace, so the default is off.
    bool report_whitespace = false;
    /// Maximum element nesting depth (guards the event consumers' stacks).
    size_t max_depth = 100000;
    /// Parse a *document fragment*: any number of top-level elements
    /// (including zero), with character data and CDATA sections allowed
    /// between them (reported by the usual rules). Used by the sharded
    /// compressor, which slices one document at top-level subtree
    /// boundaries (docs/PARALLELISM.md §3).
    bool fragment = false;
  };

  SaxParser() = default;
  explicit SaxParser(Options options) : options_(options) {}

  /// Parses `xml` and invokes `handler` callbacks in document order.
  /// The string_views passed to the handler alias `xml` (names) or an
  /// internal scratch buffer valid only during the callback (text).
  Status Parse(std::string_view xml, SaxHandler* handler);

 private:
  Options options_;
};

/// \brief Reads a whole file into memory (helper for tools and tests).
Result<std::string> ReadFileToString(const std::string& path);

/// \brief Writes `content` to `path`, replacing any existing file.
Status WriteStringToFile(const std::string& path, std::string_view content);

}  // namespace xcq::xml

#endif  // XCQ_XML_SAX_PARSER_H_
