#include "xcq/xml/writer.h"

#include "xcq/util/string_util.h"
#include "xcq/xml/entities.h"

namespace xcq::xml {

XmlWriter::XmlWriter(std::string* out, Options options)
    : out_(out), options_(options) {
  if (options_.declaration) {
    out_->append("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
    if (options_.indent) out_->push_back('\n');
  }
}

void XmlWriter::CloseStartTagIfOpen() {
  if (start_tag_open_) {
    out_->push_back('>');
    start_tag_open_ = false;
  }
}

void XmlWriter::Newline() {
  if (!options_.indent) return;
  out_->push_back('\n');
  out_->append(2 * open_.size(), ' ');
}

Status XmlWriter::StartElement(std::string_view name) {
  if (!IsValidTagName(name)) {
    return Status::InvalidArgument(
        StrFormat("invalid element name '%.*s'",
                  static_cast<int>(name.size()), name.data()));
  }
  CloseStartTagIfOpen();
  if (!last_was_text_) Newline();
  out_->push_back('<');
  out_->append(name);
  open_.emplace_back(name);
  start_tag_open_ = true;
  last_was_text_ = false;
  return Status::OK();
}

Status XmlWriter::Attribute(std::string_view name, std::string_view value) {
  if (!start_tag_open_) {
    return Status::InvalidArgument(
        "Attribute() must directly follow StartElement()");
  }
  if (!IsValidTagName(name)) {
    return Status::InvalidArgument(
        StrFormat("invalid attribute name '%.*s'",
                  static_cast<int>(name.size()), name.data()));
  }
  out_->push_back(' ');
  out_->append(name);
  out_->append("=\"");
  EscapeAttribute(value, out_);
  out_->push_back('"');
  return Status::OK();
}

Status XmlWriter::Text(std::string_view text) {
  if (open_.empty()) {
    return Status::InvalidArgument("Text() outside of any element");
  }
  CloseStartTagIfOpen();
  EscapeText(text, out_);
  last_was_text_ = true;
  return Status::OK();
}

Status XmlWriter::EndElement() {
  if (open_.empty()) {
    return Status::InvalidArgument("EndElement() with no element open");
  }
  const std::string name = std::move(open_.back());
  open_.pop_back();
  if (start_tag_open_) {
    out_->append("/>");
    start_tag_open_ = false;
  } else {
    if (!last_was_text_) Newline();
    out_->append("</");
    out_->append(name);
    out_->push_back('>');
  }
  last_was_text_ = false;
  return Status::OK();
}

Status XmlWriter::TextElement(std::string_view name, std::string_view text) {
  XCQ_RETURN_IF_ERROR(StartElement(name));
  if (!text.empty()) XCQ_RETURN_IF_ERROR(Text(text));
  return EndElement();
}

Status XmlWriter::Finish() const {
  if (!open_.empty()) {
    return Status::InvalidArgument(
        StrFormat("Finish() with %zu element(s) still open: <%s>",
                  open_.size(), open_.back().c_str()));
  }
  return Status::OK();
}

}  // namespace xcq::xml
