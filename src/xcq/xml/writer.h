#ifndef XCQ_XML_WRITER_H_
#define XCQ_XML_WRITER_H_

/// \file writer.h
/// Streaming XML emitter (the inverse of the SAX parser).
///
/// Used by corpus generators and by decompression round-trip tests: a
/// skeleton serialized with `XmlWriter` re-parses to the identical
/// skeleton.

#include <string>
#include <string_view>
#include <vector>

#include "xcq/util/status.h"

namespace xcq::xml {

/// \brief Appends well-formed XML to a caller-owned buffer.
///
/// The writer validates nesting (every `EndElement` must match the open
/// element) and escapes character data. Indentation is optional; corpus
/// generators disable it to keep documents dense.
struct WriterOptions {
  bool indent = false;
  /// Emit an XML declaration header.
  bool declaration = true;
};

class XmlWriter {
 public:
  using Options = WriterOptions;

  explicit XmlWriter(std::string* out, Options options = Options());

  /// Opens `<name>`. Attributes may be attached with `Attribute` before
  /// any content is written.
  Status StartElement(std::string_view name);

  /// Adds an attribute to the most recently opened, still-empty element.
  Status Attribute(std::string_view name, std::string_view value);

  /// Writes escaped character data.
  Status Text(std::string_view text);

  /// Closes the innermost open element (using `<.../>` if it is empty).
  Status EndElement();

  /// Convenience: `<name>text</name>`.
  Status TextElement(std::string_view name, std::string_view text);

  /// Fails unless every element has been closed.
  Status Finish() const;

  size_t depth() const { return open_.size(); }

 private:
  void CloseStartTagIfOpen();
  void Newline();

  std::string* out_;
  Options options_;
  std::vector<std::string> open_;
  bool start_tag_open_ = false;
  bool last_was_text_ = false;
};

}  // namespace xcq::xml

#endif  // XCQ_XML_WRITER_H_
