#ifndef XCQ_XML_ENTITIES_H_
#define XCQ_XML_ENTITIES_H_

/// \file entities.h
/// XML entity decoding and text escaping.
///
/// The parser supports the five predefined entities (&lt; &gt; &amp;
/// &apos; &quot;) and decimal / hexadecimal character references
/// (&#NN; / &#xNN;), encoded back to UTF-8.

#include <string>
#include <string_view>

#include "xcq/util/result.h"

namespace xcq::xml {

/// \brief Decodes the entity reference starting at `s[0] == '&'`.
///
/// On success returns the number of input bytes consumed (including the
/// terminating ';') and appends the decoded bytes to `*out`.
Result<size_t> DecodeEntity(std::string_view s, std::string* out);

/// \brief Decodes all entity references in `s`, appending to `*out`.
Status DecodeText(std::string_view s, std::string* out);

/// \brief Escapes `s` for use as XML character data (&, <, >).
void EscapeText(std::string_view s, std::string* out);

/// \brief Escapes `s` for use inside a double-quoted attribute value.
void EscapeAttribute(std::string_view s, std::string* out);

/// \brief Appends the UTF-8 encoding of code point `cp` to `*out`.
/// Returns false for invalid code points (surrogates, > U+10FFFF).
bool AppendUtf8(uint32_t cp, std::string* out);

}  // namespace xcq::xml

#endif  // XCQ_XML_ENTITIES_H_
