#ifndef XCQ_XML_STRING_MATCHER_H_
#define XCQ_XML_STRING_MATCHER_H_

/// \file string_matcher.h
/// Multi-pattern substring search over the document's character stream.
///
/// The paper (Sec. 4): "String constraints are matched to nodes on the
/// stack on the fly during parsing using automata-based techniques." This
/// is that automaton: an Aho–Corasick machine built over the query's
/// string constraints. The compressor feeds it every character-data byte
/// in document order; each reported match carries the pattern and the
/// global start offset, from which the compressor identifies the deepest
/// open element whose string value contains the match.
///
/// Because an XPath string value concatenates *all* descendant text, the
/// automaton state deliberately persists across text-node and element
/// boundaries: a match spanning two sibling text blocks is a real match
/// for their common ancestors, and the compressor's offset bookkeeping
/// assigns it to exactly those.

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "xcq/util/result.h"

namespace xcq::xml {

/// \brief A completed pattern occurrence in the global text stream.
struct PatternMatch {
  uint32_t pattern;       ///< Index into the pattern list.
  uint64_t start_offset;  ///< Global offset of the first matched byte.
};

/// \brief Aho–Corasick multi-pattern matcher with a dense DFA table.
///
/// Query string-constraint sets are small (a handful of patterns), so the
/// automaton trades memory (256 transitions per state) for a branch-free
/// per-byte step.
class StringMatcher {
 public:
  /// Builds the automaton. Patterns must be non-empty; duplicates are
  /// allowed (each occurrence reports every duplicate id).
  static Result<StringMatcher> Build(std::vector<std::string> patterns);

  /// Number of patterns the automaton was built with.
  size_t pattern_count() const { return patterns_.size(); }

  /// The pattern text for id `i`.
  const std::string& pattern(size_t i) const { return patterns_[i]; }

  /// Feeds a chunk of character data; `fn(const PatternMatch&)` is invoked
  /// for every pattern occurrence that *ends* inside this chunk. The
  /// stream offset advances by `chunk.size()`.
  template <typename Fn>
  void Feed(std::string_view chunk, Fn&& fn) {
    uint32_t state = state_;
    for (char c : chunk) {
      state = transitions_[state][static_cast<unsigned char>(c)];
      ++offset_;
      if (has_output_[state]) {
        for (uint32_t node = state; node != 0; node = suffix_output_[node]) {
          for (uint32_t p : outputs_[node]) {
            fn(PatternMatch{p, offset_ - patterns_[p].size()});
          }
        }
      }
    }
    state_ = state;
  }

  /// Resets the automaton state and stream offset (new document).
  void Reset() {
    state_ = 0;
    offset_ = 0;
  }

  /// Total bytes fed since construction / Reset().
  uint64_t offset() const { return offset_; }

  /// Number of DFA states (for tests).
  size_t state_count() const { return transitions_.size(); }

 private:
  StringMatcher() = default;

  std::vector<std::string> patterns_;
  /// Dense DFA transition table: state x byte -> state.
  std::vector<std::array<uint32_t, 256>> transitions_;
  /// Patterns ending exactly at this state.
  std::vector<std::vector<uint32_t>> outputs_;
  /// Nearest proper-suffix state with a non-empty output set (0 = none).
  std::vector<uint32_t> suffix_output_;
  /// True if this state or any suffix state has outputs.
  std::vector<bool> has_output_;
  uint32_t state_ = 0;
  uint64_t offset_ = 0;
};

}  // namespace xcq::xml

#endif  // XCQ_XML_STRING_MATCHER_H_
