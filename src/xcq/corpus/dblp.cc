#include <algorithm>

#include "xcq/corpus/generator.h"
#include "xcq/corpus/registry.h"

namespace xcq::corpus {

namespace {

/// DBLP: bibliographic records. Extremely regular — a handful of shallow
/// record shapes repeated hundreds of thousands of times; the paper
/// compresses 2.6M nodes to 321 DAG vertices in "−" mode. The wide root
/// keeps |E^M| large (171,820 runs) even though |V^M| is tiny.
class DblpGenerator : public GeneratorBase {
 public:
  std::string_view name() const override { return "DBLP"; }

  PaperFigures paper_figures() const override {
    PaperFigures f;
    f.tree_nodes = 2611932;
    f.bytes = 108635750;  // 103.6 MB
    f.vm_bare = 321;
    f.em_bare = 171820;
    f.ratio_bare = 0.066;
    f.vm_tags = 4481;
    f.em_tags = 222755;
    f.ratio_tags = 0.085;
    return f;
  }

  uint64_t default_target_nodes() const override { return 250000; }

  std::string Generate(const GenerateOptions& options) const override {
    Rng rng(options.seed);
    const uint64_t kNodesPerRecord = 8;
    const uint64_t records =
        std::max<uint64_t>(1, options.target_nodes / kNodesPerRecord);
    return Emit([&](xml::XmlWriter& w) {
      static const std::vector<std::string> kAuthors = {
          "Codd",       "Chandra", "Harel",   "Vardi",   "Ullman",
          "Abiteboul",  "Hull",    "Vianu",   "Suciu",   "Buneman",
          "Grohe",      "Koch",    "Gottlob", "Pichler", "Fagin",
          "Papadimitriou",
      };
      static const std::vector<std::string> kJournals = {
          "CACM", "JACM", "TODS", "VLDB Journal", "SIGMOD Record",
      };

      w.StartElement("dblp");
      for (uint64_t r = 0; r < records; ++r) {
        // Four record types with distinct field layouts, as in DBLP.
        const double type_roll = rng.UniformReal();
        const bool is_article = type_roll < 0.55;
        const char* record_tag =
            is_article ? "article"
            : type_roll < 0.9
                ? "inproceedings"
                : (type_roll < 0.96 ? "phdthesis" : "www");
        w.StartElement(record_tag);

        // ~1.5% of records carry the adjacent Chandra→Harel author pair
        // that Q4/Q5 look for. Author lists have a long tail (the real
        // corpus has papers with dozens of authors), which is the main
        // driver of distinct record shapes.
        if (is_article && rng.Chance(0.015)) {
          w.TextElement("author", "Chandra");
          w.TextElement("author", "Harel");
        } else {
          uint64_t authors = rng.GeometricCount(1, 4, 0.5);
          if (rng.Chance(0.08)) authors += rng.Uniform(3, 16);  // tail
          for (uint64_t a = 0; a < authors; ++a) {
            w.TextElement("author", rng.Pick(kAuthors));
          }
        }
        w.TextElement("title", RandomSentence(rng, 4 + rng.Uniform(0, 5)));
        w.TextElement("year",
                      std::to_string(1970 + rng.Uniform(0, 33)));
        if (is_article) {
          w.TextElement("journal", rng.Pick(kJournals));
          if (rng.Chance(0.7)) {
            w.TextElement("volume",
                          std::to_string(rng.Uniform(1, 40)));
          }
          if (rng.Chance(0.5)) {
            w.TextElement("number", std::to_string(rng.Uniform(1, 12)));
          }
          if (rng.Chance(0.6)) {
            const uint64_t first = rng.Uniform(1, 800);
            w.TextElement("pages",
                          std::to_string(first) + "-" +
                              std::to_string(first + rng.Uniform(5, 40)));
          }
        } else if (std::string_view(record_tag) == "inproceedings") {
          w.TextElement("booktitle", rng.Pick(kJournals));
          if (rng.Chance(0.4)) {
            w.TextElement("crossref",
                          "conf/x/" + std::to_string(rng.Uniform(0, 400)));
          }
        } else if (std::string_view(record_tag) == "phdthesis") {
          w.TextElement("school", RandomSentence(rng, 2));
        }
        if (rng.Chance(0.8)) {
          w.TextElement("url", "db/journals/paper" + std::to_string(r));
        }
        if (rng.Chance(0.3)) {
          w.TextElement("ee", "https://doi.example/" + std::to_string(r));
        }
        // Citation lists (long tail) add further width variety.
        if (rng.Chance(0.12)) {
          const uint64_t cites = rng.Uniform(1, 25);
          for (uint64_t c = 0; c < cites; ++c) {
            w.TextElement("cite", "ref" + std::to_string(rng.Uniform(
                                              0, 4000)));
          }
        }
        w.EndElement();
      }
      w.EndElement();  // dblp
    });
  }
};

}  // namespace

const CorpusGenerator& Dblp() {
  static const DblpGenerator kInstance;
  return kInstance;
}

}  // namespace xcq::corpus
