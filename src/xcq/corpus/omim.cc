#include <algorithm>

#include "xcq/corpus/generator.h"
#include "xcq/corpus/registry.h"

namespace xcq::corpus {

namespace {

/// OMIM: Online Mendelian Inheritance in Man — gene/disorder records
/// with titles, long text sections, and clinical synopses. Highly
/// regular (5.8% / 7.0% in the paper) with few distinct shapes.
class OmimGenerator : public GeneratorBase {
 public:
  std::string_view name() const override { return "OMIM"; }

  PaperFigures paper_figures() const override {
    PaperFigures f;
    f.tree_nodes = 206454;
    f.bytes = 29674700;  // 28.3 MB
    f.vm_bare = 962;
    f.em_bare = 11921;
    f.ratio_bare = 0.058;
    f.vm_tags = 975;
    f.em_tags = 14416;
    f.ratio_tags = 0.070;
    return f;
  }

  uint64_t default_target_nodes() const override { return 200000; }

  std::string Generate(const GenerateOptions& options) const override {
    Rng rng(options.seed);
    const uint64_t kNodesPerRecord = 18;
    const uint64_t records =
        std::max<uint64_t>(1, options.target_nodes / kNodesPerRecord);
    return Emit([&](xml::XmlWriter& w) {
      static const std::vector<std::string> kParts = {
          "Metabolic", "Neuro", "Cardiac", "Skin", "Growth", "Heme",
      };
      static const std::vector<std::string> kSynops = {
          "Lactic acidosis",      "Seizures",          "Hypotonia",
          "Cardiomyopathy",       "Short stature",     "Anemia",
          "Developmental delay",  "Hepatomegaly",
      };

      w.StartElement("ROOT");
      for (uint64_t r = 0; r < records; ++r) {
        w.StartElement("Record");
        w.TextElement("No", std::to_string(100000 + r));

        std::string title = RandomSentence(rng, 3);
        // ~3% of titles carry the Q3/Q4 marker.
        if (rng.Chance(0.03)) title += " LETHAL FORM";
        w.TextElement("Title", title);

        // Records carry a long-tailed number of text paragraphs; the
        // paragraph-count distribution drives OMIM's shape diversity.
        w.StartElement("Text");
        uint64_t paragraphs = rng.GeometricCount(1, 5, 0.45);
        if (rng.Chance(0.06)) paragraphs += rng.Uniform(2, 12);
        for (uint64_t p = 0; p < paragraphs; ++p) {
          std::string text = RandomSentence(rng, 15 + rng.Uniform(0, 25));
          if (p == 0 && rng.Chance(0.05)) {
            text += " reported in offspring of consanguineous parents";
          }
          w.TextElement("P", text);
        }
        w.EndElement();  // Text

        if (rng.Chance(0.7)) {
          w.StartElement("Clinical_Synop");
          const uint64_t parts = rng.GeometricCount(1, 3, 0.5);
          for (uint64_t p = 0; p < parts; ++p) {
            const bool plant = p == 0 && rng.Chance(0.06);
            w.TextElement("Part", plant ? kParts[0] : rng.Pick(kParts));
            const uint64_t synops = rng.GeometricCount(1, 4, 0.45);
            for (uint64_t s = 0; s < synops; ++s) {
              // The Q5 pattern: Part["Metabolic"] followed (as sibling)
              // by a Synop containing "Lactic acidosis".
              w.TextElement("Synop", plant && s == 0
                                         ? kSynops[0]
                                         : rng.Pick(kSynops));
            }
          }
          w.EndElement();  // Clinical_Synop
        }

        // Optional allelic-variant entries (two layouts).
        if (rng.Chance(0.12)) {
          const uint64_t variants = rng.GeometricCount(1, 3, 0.6);
          for (uint64_t v = 0; v < variants; ++v) {
            w.StartElement("AV");
            w.TextElement("Mutation", RandomSentence(rng, 2));
            if (rng.Chance(0.3)) {
              w.TextElement("Description", RandomSentence(rng, 8));
            }
            w.EndElement();
          }
        }

        const uint64_t refs = rng.GeometricCount(0, 3, 0.5);
        for (uint64_t k = 0; k < refs; ++k) {
          w.TextElement("Reference", RandomSentence(rng, 6));
        }
        if (rng.Chance(0.2)) {
          const uint64_t edits = rng.GeometricCount(1, 3, 0.7);
          for (uint64_t e = 0; e < edits; ++e) {
            w.TextElement("Edited",
                          "curator" + std::to_string(rng.Uniform(1, 20)));
          }
        }
        w.EndElement();  // Record
      }
      w.EndElement();  // ROOT
    });
  }
};

}  // namespace

const CorpusGenerator& Omim() {
  static const OmimGenerator kInstance;
  return kInstance;
}

}  // namespace xcq::corpus
