#include <algorithm>

#include "xcq/corpus/generator.h"
#include "xcq/corpus/registry.h"

namespace xcq::corpus {

namespace {

/// XMark: the standard XML auction benchmark — regions with item
/// listings, people, and auctions. Item descriptions use nested
/// parlist/listitem markup whose text (in the real generator) is drawn
/// from Shakespeare, hence the "cassio"/"portia" query constants.
class XMarkGenerator : public GeneratorBase {
 public:
  std::string_view name() const override { return "XMark"; }

  PaperFigures paper_figures() const override {
    PaperFigures f;
    f.tree_nodes = 190488;
    f.bytes = 10066330;  // 9.6 MB
    f.vm_bare = 3642;
    f.em_bare = 11837;
    f.ratio_bare = 0.062;
    f.vm_tags = 6692;
    f.em_tags = 27438;
    f.ratio_tags = 0.144;
    return f;
  }

  uint64_t default_target_nodes() const override { return 190000; }

  std::string Generate(const GenerateOptions& options) const override {
    Rng rng(options.seed);
    // Per item: ~17 nodes of its own (incl. nested parlists and mailbox)
    // plus ~5 more from the associated people (items/2) and auction
    // (items/3) entries.
    const uint64_t kNodesPerItem = 22;
    const uint64_t items =
        std::max<uint64_t>(6, options.target_nodes / kNodesPerItem);
    const uint64_t people = items / 2;
    const uint64_t auctions = items / 3;
    return Emit([&](xml::XmlWriter& w) {
      static const std::vector<std::string> kRegions = {
          "africa", "asia", "australia", "europe", "namerica", "samerica",
      };
      static const std::vector<std::string> kLocations = {
          "United States", "Germany", "Japan", "Kenya", "Brazil",
          "Australia",
      };
      static const std::vector<std::string> kPayments = {
          "Creditcard", "Cash", "Money order", "Personal Check",
      };
      static const std::vector<std::string> kShakespeareWords = {
          "cassio", "portia", "brutus", "iago", "ophelia", "yorick",
          "laertes", "desdemona",
      };

      w.StartElement("site");
      w.StartElement("regions");
      uint64_t item_id = 0;
      for (const std::string& region : kRegions) {
        w.StartElement(region);
        const uint64_t region_items = items / kRegions.size() + 1;
        for (uint64_t i = 0; i < region_items; ++i) {
          w.StartElement("item");
          w.Attribute("id", "item" + std::to_string(item_id++));
          w.TextElement("location", rng.Pick(kLocations));
          w.TextElement("quantity", std::to_string(rng.Uniform(1, 9)));
          w.TextElement("name", RandomSentence(rng, 3));
          w.TextElement("payment", rng.Pick(kPayments));
          w.StartElement("description");
          EmitParlist(w, rng, kShakespeareWords, /*depth=*/0,
                      /*plant=*/rng.Chance(0.04));
          w.EndElement();  // description
          if (rng.Chance(0.35)) {
            w.StartElement("mailbox");
            const uint64_t mails = rng.GeometricCount(1, 3, 0.55);
            for (uint64_t m = 0; m < mails; ++m) {
              w.StartElement("mail");
              w.TextElement("from", RandomSentence(rng, 2));
              w.TextElement("to", RandomSentence(rng, 2));
              w.TextElement("date",
                            std::to_string(rng.Uniform(1, 28)) + "/" +
                                std::to_string(rng.Uniform(1, 12)) +
                                "/1998");
              w.TextElement("text", RandomSentence(rng, 8));
              w.EndElement();
            }
            w.EndElement();  // mailbox
          }
          if (rng.Chance(0.25)) {
            w.TextElement("reserve",
                          std::to_string(rng.Uniform(20, 900)) + ".00");
          }
          const uint64_t cats = rng.GeometricCount(1, 3, 0.5);
          for (uint64_t c = 0; c < cats; ++c) {
            w.StartElement("incategory");
            w.Attribute("category",
                        "category" + std::to_string(rng.Uniform(0, 40)));
            w.EndElement();
          }
          w.EndElement();  // item
        }
        w.EndElement();  // region
      }
      w.EndElement();  // regions

      w.StartElement("people");
      for (uint64_t p = 0; p < people; ++p) {
        w.StartElement("person");
        w.Attribute("id", "person" + std::to_string(p));
        w.TextElement("name", RandomSentence(rng, 2));
        w.TextElement("emailaddress",
                      "mailto:person" + std::to_string(p) + "@example.org");
        if (rng.Chance(0.4)) {
          w.TextElement("phone", std::to_string(rng.Uniform(1000000, 9999999)));
        }
        if (rng.Chance(0.3)) {
          w.StartElement("address");
          w.TextElement("street", RandomSentence(rng, 2));
          w.TextElement("city", RandomSentence(rng, 1));
          w.TextElement("country", rng.Pick(kLocations));
          w.EndElement();
        }
        if (rng.Chance(0.25)) {
          w.StartElement("profile");
          const uint64_t interests = rng.GeometricCount(1, 4, 0.5);
          for (uint64_t i = 0; i < interests; ++i) {
            w.StartElement("interest");
            w.Attribute("category",
                        "category" + std::to_string(rng.Uniform(0, 40)));
            w.EndElement();
          }
          if (rng.Chance(0.5)) {
            w.TextElement("education", RandomSentence(rng, 2));
          }
          w.TextElement("income",
                        std::to_string(rng.Uniform(20000, 120000)));
          w.EndElement();
        }
        w.EndElement();
      }
      w.EndElement();  // people

      w.StartElement("open_auctions");
      for (uint64_t a = 0; a < auctions; ++a) {
        w.StartElement("open_auction");
        w.Attribute("id", "auction" + std::to_string(a));
        w.TextElement("initial",
                      std::to_string(rng.Uniform(10, 300)) + ".00");
        const uint64_t bids = rng.GeometricCount(0, 5, 0.4);
        for (uint64_t b = 0; b < bids; ++b) {
          w.StartElement("bidder");
          w.TextElement("increase",
                        std::to_string(rng.Uniform(1, 30)) + ".00");
          w.EndElement();
        }
        w.TextElement("current",
                      std::to_string(rng.Uniform(10, 900)) + ".00");
        w.EndElement();
      }
      w.EndElement();  // open_auctions
      w.EndElement();  // site
    });
  }

 private:
  /// Emits a parlist whose listitems may recursively contain nested
  /// parlists (as the real XMark generator produces). When `plant` is
  /// set, the first two top-level listitems carry the Q5 anchor pair.
  static void EmitParlist(xml::XmlWriter& w, Rng& rng,
                          const std::vector<std::string>& words, int depth,
                          bool plant) {
    w.StartElement("parlist");
    uint64_t listitems = rng.GeometricCount(1, 4, 0.45);
    if (plant && listitems < 2) listitems = 2;
    for (uint64_t li = 0; li < listitems; ++li) {
      w.StartElement("listitem");
      std::string text = RandomSentence(rng, 5);
      if (plant && li == 0) {
        text += " quoth cassio";  // Q5 anchor
      } else if (plant && li == 1) {
        text += " quoth portia";  // Q5 following sibling
      } else if (rng.Chance(0.15)) {
        text += " quoth " + rng.Pick(words);
      }
      w.TextElement("text", text);
      if (depth < 2 && rng.Chance(0.18)) {
        EmitParlist(w, rng, words, depth + 1, /*plant=*/false);
      }
      w.EndElement();  // listitem
    }
    w.EndElement();  // parlist
  }
};

}  // namespace

const CorpusGenerator& XMark() {
  static const XMarkGenerator kInstance;
  return kInstance;
}

}  // namespace xcq::corpus
