#include <algorithm>

#include "xcq/corpus/generator.h"
#include "xcq/corpus/registry.h"

namespace xcq::corpus {

namespace {

/// Penn TreeBank: manually annotated parse trees of Wall Street Journal
/// text. Deep, irregular structure — the paper's notable compression
/// outlier (34.9% "−" / 53.2% "+"): random-ish parse trees share few
/// subtrees. The generator expands a small probabilistic grammar whose
/// derivations are deliberately varied.
class TreeBankGenerator : public GeneratorBase {
 public:
  std::string_view name() const override { return "TreeBank"; }

  PaperFigures paper_figures() const override {
    PaperFigures f;
    f.tree_nodes = 2447728;
    f.bytes = 58510540;  // 55.8 MB
    f.vm_bare = 323256;
    f.em_bare = 853242;
    f.ratio_bare = 0.349;
    f.vm_tags = 475366;
    f.em_tags = 1301690;
    f.ratio_tags = 0.532;
    return f;
  }

  uint64_t default_target_nodes() const override { return 250000; }

  std::string Generate(const GenerateOptions& options) const override {
    Rng rng(options.seed);
    const uint64_t kNodesPerSentence = 40;
    const uint64_t sentences =
        std::max<uint64_t>(1, options.target_nodes / kNodesPerSentence);
    const uint64_t kSentencesPerFile = 50;
    return Emit([&](xml::XmlWriter& w) {
      w.StartElement("alltreebank");
      uint64_t emitted = 0;
      while (emitted < sentences) {
        w.StartElement("FILE");
        w.StartElement("EMPTY");  // the corpus' wrapper element
        const uint64_t batch =
            std::min<uint64_t>(kSentencesPerFile, sentences - emitted);
        for (uint64_t s = 0; s < batch; ++s) {
          // Every ~25th sentence starts with the Q1/Q2 spine
          // S/VP/S/VP/NP so the path queries select nodes.
          EmitS(w, rng, /*depth=*/0,
                /*force_spine=*/(emitted + s) % 25 == 0);
        }
        emitted += batch;
        w.EndElement();  // EMPTY
        w.EndElement();  // FILE
      }
      w.EndElement();  // alltreebank
    });
  }

 private:
  static constexpr int kMaxDepth = 18;

  /// S -> NP VP | VP | S SBAR | NP VP PP
  void EmitS(xml::XmlWriter& w, Rng& rng, int depth,
             bool force_spine = false) const {
    w.StartElement("S");
    if (force_spine) {
      // S / VP / S / VP / NP, then a following clause with NP VP NP PP
      // material for Q5.
      w.StartElement("VP");
      EmitTerminal(w, rng, "VB");
      w.StartElement("S");
      w.StartElement("VP");
      EmitTerminal(w, rng, "VBD");
      EmitNP(w, rng, depth + 4);
      w.EndElement();  // inner VP
      w.EndElement();  // inner S
      w.EndElement();  // outer VP
      EmitNP(w, rng, depth + 1);
      w.EndElement();  // S
      return;
    }
    if (depth >= kMaxDepth) {
      EmitTerminal(w, rng, "NN");
      w.EndElement();
      return;
    }
    const double roll = rng.UniformReal();
    if (roll < 0.45) {
      EmitNP(w, rng, depth + 1);
      EmitVP(w, rng, depth + 1);
    } else if (roll < 0.65) {
      EmitVP(w, rng, depth + 1);
    } else if (roll < 0.85) {
      EmitNP(w, rng, depth + 1);
      EmitVP(w, rng, depth + 1);
      EmitPP(w, rng, depth + 1);
    } else {
      EmitS(w, rng, depth + 1);
      w.StartElement("SBAR");
      EmitTerminal(w, rng, "IN");
      EmitS(w, rng, depth + 2);
      w.EndElement();
    }
    w.EndElement();  // S
  }

  /// NP -> DT NN | NNS | NP PP | NP S | NP VP | JJ NN
  /// (NP -> NP VP models the Penn TreeBank's reduced relative clauses,
  /// and gives Q5's VP/NP/VP/NP chains a chance to occur.)
  void EmitNP(xml::XmlWriter& w, Rng& rng, int depth) const {
    w.StartElement("NP");
    if (depth >= kMaxDepth) {
      EmitTerminal(w, rng, "NNS");
      w.EndElement();
      return;
    }
    const double roll = rng.UniformReal();
    if (roll < 0.35) {
      EmitTerminal(w, rng, "DT");
      EmitTerminal(w, rng, "NN");
    } else if (roll < 0.55) {
      EmitTerminal(w, rng, "NNS");
    } else if (roll < 0.72) {
      EmitNP(w, rng, depth + 1);
      EmitPP(w, rng, depth + 1);
    } else if (roll < 0.80) {
      EmitNP(w, rng, depth + 1);
      EmitS(w, rng, depth + 1);
    } else if (roll < 0.90) {
      EmitNP(w, rng, depth + 1);
      EmitVP(w, rng, depth + 1);
    } else {
      EmitTerminal(w, rng, "JJ");
      EmitTerminal(w, rng, "NN");
    }
    w.EndElement();  // NP
  }

  /// VP -> VB NP | VBD NP PP | VB S | VP NP
  void EmitVP(xml::XmlWriter& w, Rng& rng, int depth) const {
    w.StartElement("VP");
    if (depth >= kMaxDepth) {
      EmitTerminal(w, rng, "VB");
      w.EndElement();
      return;
    }
    const double roll = rng.UniformReal();
    if (roll < 0.4) {
      EmitTerminal(w, rng, "VB");
      EmitNP(w, rng, depth + 1);
    } else if (roll < 0.65) {
      EmitTerminal(w, rng, "VBD");
      EmitNP(w, rng, depth + 1);
      EmitPP(w, rng, depth + 1);
    } else if (roll < 0.85) {
      EmitTerminal(w, rng, "VB");
      EmitS(w, rng, depth + 1);
    } else {
      EmitVP(w, rng, depth + 1);
      EmitNP(w, rng, depth + 1);
    }
    w.EndElement();  // VP
  }

  /// PP -> IN NP
  void EmitPP(xml::XmlWriter& w, Rng& rng, int depth) const {
    w.StartElement("PP");
    EmitTerminal(w, rng, "IN");
    EmitNP(w, rng, std::min(depth + 1, kMaxDepth));
    w.EndElement();
  }

  /// Terminals vary within their category (the Penn tag set has ~45
  /// POS tags); this drives the "+"-mode diversity the paper measures.
  void EmitTerminal(xml::XmlWriter& w, Rng& rng,
                    std::string_view pos) const {
    std::string_view tag = pos;
    const double roll = rng.UniformReal();
    if (pos == "NN" && roll < 0.3) {
      tag = roll < 0.15 ? "NNP" : "CD";
    } else if (pos == "VB" && roll < 0.4) {
      tag = roll < 0.15 ? "VBZ" : (roll < 0.3 ? "VBG" : "MD");
    } else if (pos == "DT" && roll < 0.25) {
      tag = "PRP";
    } else if (pos == "IN" && roll < 0.3) {
      tag = roll < 0.15 ? "TO" : "CC";
    } else if (pos == "JJ" && roll < 0.3) {
      tag = "RB";
    }
    w.TextElement(tag, RandomWord(rng));
  }
};

}  // namespace

const CorpusGenerator& TreeBank() {
  static const TreeBankGenerator kInstance;
  return kInstance;
}

}  // namespace xcq::corpus
