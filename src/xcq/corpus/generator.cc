#include "xcq/corpus/generator.h"

namespace xcq::corpus {

std::string_view RandomWord(Rng& rng) {
  static const std::vector<std::string> kWords = {
      "the",      "market",   "company",  "shares",   "report",
      "children", "granting", "access",   "yesterday", "analysts",
      "said",     "new",      "york",     "stock",    "exchange",
      "growth",   "quarter",  "billion",  "index",    "trading",
      "interest", "rates",    "federal",  "board",    "plan",
      "program",  "results",  "little",   "change",   "investors",
      "while",    "against",  "because",  "between",  "system",
      "value",    "price",    "percent",  "director", "officer",
  };
  return kWords[rng.SkewedIndex(kWords.size(), 4.0)];
}

std::string RandomSentence(Rng& rng, size_t words) {
  std::string out;
  for (size_t i = 0; i < words; ++i) {
    if (i != 0) out.push_back(' ');
    out.append(RandomWord(rng));
  }
  return out;
}

std::string RandomProteinSequence(Rng& rng, size_t len) {
  static constexpr std::string_view kAminoAcids = "ACDEFGHIKLMNPQRSTVWY";
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kAminoAcids[rng.Uniform(0, kAminoAcids.size() - 1)]);
  }
  return out;
}

}  // namespace xcq::corpus
