#ifndef XCQ_CORPUS_QUERIES_H_
#define XCQ_CORPUS_QUERIES_H_

/// \file queries.h
/// The paper's Appendix-A benchmark queries, verbatim.
///
/// For each corpus: Q1 is a tree-pattern query (upward-only algebra — no
/// decompression, Cor. 3.7), Q2 the same path selecting its endpoint,
/// Q3 adds descendant axes and string constraints, Q4 adds branching
/// predicates, Q5 uses the remaining axes (sibling / following /
/// preceding). TPC-D has no queries (excluded in the paper too).

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "xcq/util/result.h"

namespace xcq::corpus {

struct QuerySet {
  std::string_view corpus;
  std::array<std::string_view, 5> queries;  ///< Q1..Q5.
};

/// \brief All query sets, in Fig. 7 corpus order.
const std::vector<QuerySet>& AppendixAQueries();

/// \brief The query set for `corpus` (kNotFound for TPC-D / unknown).
Result<QuerySet> QueriesFor(std::string_view corpus);

}  // namespace xcq::corpus

#endif  // XCQ_CORPUS_QUERIES_H_
