#include <algorithm>

#include "xcq/corpus/generator.h"
#include "xcq/corpus/registry.h"

namespace xcq::corpus {

namespace {

/// Shakespeare's collected works (the classic Bosak XML): plays divided
/// into acts, scenes and speeches. Speeches are highly uniform
/// (SPEAKER + LINE*), giving decent compression (16.1% / 17.8%).
class ShakespeareGenerator : public GeneratorBase {
 public:
  std::string_view name() const override { return "Shakespeare"; }

  PaperFigures paper_figures() const override {
    PaperFigures f;
    f.tree_nodes = 179691;
    f.bytes = 8283750;  // 7.9 MB
    f.vm_bare = 1121;
    f.em_bare = 29006;
    f.ratio_bare = 0.161;
    f.vm_tags = 1534;
    f.em_tags = 31910;
    f.ratio_tags = 0.178;
    return f;
  }

  uint64_t default_target_nodes() const override { return 180000; }

  std::string Generate(const GenerateOptions& options) const override {
    Rng rng(options.seed);
    const uint64_t kNodesPerSpeech = 7;
    const uint64_t speeches =
        std::max<uint64_t>(1, options.target_nodes / kNodesPerSpeech);
    const uint64_t kSpeechesPerScene = 20;
    const uint64_t kScenesPerAct = 5;
    const uint64_t kActsPerPlay = 5;
    return Emit([&](xml::XmlWriter& w) {
      static const std::vector<std::string> kSpeakers = {
          "MARK ANTONY", "CLEOPATRA", "OCTAVIUS CAESAR", "CHARMIAN",
          "ENOBARBUS",   "LEPIDUS",   "First Messenger", "DOLABELLA",
      };

      w.StartElement("all");
      uint64_t emitted = 0;
      uint64_t play_no = 0;
      while (emitted < speeches) {
        w.StartElement("PLAY");
        w.TextElement("TITLE",
                      "The Tragedie " + std::to_string(++play_no));
        w.StartElement("PERSONAE");
        for (const std::string& speaker : kSpeakers) {
          w.TextElement("PERSONA", speaker);
        }
        w.EndElement();  // PERSONAE
        for (uint64_t act = 0; act < kActsPerPlay && emitted < speeches;
             ++act) {
          w.StartElement("ACT");
          w.TextElement("TITLE", "ACT " + std::to_string(act + 1));
          for (uint64_t scene = 0;
               scene < kScenesPerAct && emitted < speeches; ++scene) {
            w.StartElement("SCENE");
            w.TextElement("TITLE", "SCENE " + std::to_string(scene + 1));
            if (rng.Chance(0.5)) {
              w.TextElement("STAGEDIR", RandomSentence(rng, 4));
            }
            const uint64_t batch = std::min<uint64_t>(
                kSpeechesPerScene, speeches - emitted);
            for (uint64_t s = 0; s < batch; ++s) {
              // ~5% of speech pairs are MARK ANTONY followed by
              // CLEOPATRA (the Q5 pattern).
              if (s + 1 < batch && rng.Chance(0.05)) {
                EmitSpeech(w, rng, "MARK ANTONY");
                EmitSpeech(w, rng, "CLEOPATRA");
                ++s;
                emitted += 2;
                continue;
              }
              EmitSpeech(w, rng, rng.Pick(kSpeakers));
              ++emitted;
            }
            w.EndElement();  // SCENE
          }
          w.EndElement();  // ACT
        }
        w.EndElement();  // PLAY
      }
      w.EndElement();  // all
    });
  }

 private:
  void EmitSpeech(xml::XmlWriter& w, Rng& rng,
                  std::string_view speaker) const {
    w.StartElement("SPEECH");
    w.TextElement("SPEAKER", speaker);
    const uint64_t lines = rng.GeometricCount(1, 6, 0.4);
    for (uint64_t l = 0; l < lines; ++l) {
      std::string line = RandomSentence(rng, 6);
      if (rng.Chance(0.03)) line += " o Cleopatra";  // Q4's line marker
      w.TextElement("LINE", line);
    }
    w.EndElement();  // SPEECH
  }
};

}  // namespace

const CorpusGenerator& Shakespeare() {
  static const ShakespeareGenerator kInstance;
  return kInstance;
}

}  // namespace xcq::corpus
