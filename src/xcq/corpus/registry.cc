#include "xcq/corpus/registry.h"

#include "xcq/util/string_util.h"

namespace xcq::corpus {

const std::vector<const CorpusGenerator*>& AllCorpora() {
  static const std::vector<const CorpusGenerator*> kAll = {
      &SwissProt(), &Dblp(),        &TreeBank(), &Omim(),
      &XMark(),     &Shakespeare(), &Baseball(), &Tpcd(),
  };
  return kAll;
}

Result<const CorpusGenerator*> FindCorpus(std::string_view name) {
  for (const CorpusGenerator* corpus : AllCorpora()) {
    if (corpus->name() == name) return corpus;
  }
  return Status::NotFound(StrFormat("unknown corpus '%.*s'",
                                    static_cast<int>(name.size()),
                                    name.data()));
}

}  // namespace xcq::corpus
