#ifndef XCQ_CORPUS_REGISTRY_H_
#define XCQ_CORPUS_REGISTRY_H_

/// \file registry.h
/// Lookup of the eight benchmark corpora by name.

#include <string_view>
#include <vector>

#include "xcq/corpus/generator.h"
#include "xcq/util/result.h"

namespace xcq::corpus {

/// \brief All corpora, in the order of the paper's Fig. 6 (largest
/// first): SwissProt, DBLP, TreeBank, OMIM, XMark, Shakespeare,
/// Baseball, TPC-D.
const std::vector<const CorpusGenerator*>& AllCorpora();

/// \brief Finds a corpus by (case-sensitive) name.
Result<const CorpusGenerator*> FindCorpus(std::string_view name);

// Accessors for the individual generators (used by targeted tests).
const CorpusGenerator& SwissProt();
const CorpusGenerator& Dblp();
const CorpusGenerator& TreeBank();
const CorpusGenerator& Omim();
const CorpusGenerator& XMark();
const CorpusGenerator& Shakespeare();
const CorpusGenerator& Baseball();
const CorpusGenerator& Tpcd();

}  // namespace xcq::corpus

#endif  // XCQ_CORPUS_REGISTRY_H_
