#include <algorithm>

#include "xcq/corpus/generator.h"
#include "xcq/corpus/registry.h"

namespace xcq::corpus {

namespace {

/// SwissProt: a protein database. Deep regular records with a protein
/// header, a sequence, a variable number of comment/feature/reference
/// blocks. Moderately regular — the paper measures 7.3% ("−") / 10.1%
/// ("+") edge ratios on 10.9M nodes.
class SwissProtGenerator : public GeneratorBase {
 public:
  std::string_view name() const override { return "SwissProt"; }

  PaperFigures paper_figures() const override {
    PaperFigures f;
    f.tree_nodes = 10903569;
    f.bytes = 479662899;  // 457.4 MB
    f.vm_bare = 83427;
    f.em_bare = 792620;
    f.ratio_bare = 0.073;
    f.vm_tags = 85712;
    f.em_tags = 1100648;
    f.ratio_tags = 0.101;
    return f;
  }

  uint64_t default_target_nodes() const override { return 500000; }

  std::string Generate(const GenerateOptions& options) const override {
    Rng rng(options.seed);
    const uint64_t kNodesPerRecord = 34;
    const uint64_t records =
        std::max<uint64_t>(1, options.target_nodes / kNodesPerRecord);
    return Emit([&](xml::XmlWriter& w) {
      static const std::vector<std::string> kOrganisms = {
          "Homo sapiens",   "Rattus norvegicus", "Mus musculus",
          "Gallus gallus",  "Escherichia coli",  "Bos taurus",
          "Xenopus laevis", "Drosophila melanogaster",
      };
      static const std::vector<std::string> kLineages = {
          "Eukaryota; Metazoa; Chordata; Mammalia",
          "Eukaryota; Metazoa; Chordata; Aves",
          "Bacteria; Proteobacteria; Enterobacteriaceae",
          "Eukaryota; Metazoa; Arthropoda; Insecta",
          "Eukaryota; Fungi; Ascomycota",
      };
      static const std::vector<std::string> kTopics = {
          "FUNCTION",       "SUBUNIT",           "SUBCELLULAR LOCATION",
          "SIMILARITY",     "TISSUE SPECIFICITY", "DEVELOPMENTAL STAGE",
          "PTM",            "DISEASE",           "CATALYTIC ACTIVITY",
      };
      static const std::vector<std::string> kFeatureTypes = {
          "DOMAIN", "CHAIN", "SIGNAL", "TRANSMEM", "BINDING", "ACT_SITE",
      };

      w.StartElement("ROOT");
      for (uint64_t r = 0; r < records; ++r) {
        w.StartElement("Record");

        // Protein header: 1-3 names, optional gene, organism, lineage.
        w.StartElement("protein");
        const uint64_t names = rng.GeometricCount(1, 2, 0.85);
        for (uint64_t n = 0; n < names; ++n) {
          w.TextElement("name", RandomSentence(rng, 2));
        }
        if (rng.Chance(0.3)) {
          w.TextElement("gene", RandomSentence(rng, 1));
        }
        w.TextElement("from", rng.Pick(kOrganisms));
        w.TextElement("taxo", rng.Pick(kLineages));
        w.EndElement();

        w.StartElement("sequence");
        std::string seq =
            RandomProteinSequence(rng, 40 + rng.Uniform(0, 80));
        // Plant the Q4 motif in ~2% of sequences.
        if (rng.Chance(0.02)) seq.insert(seq.size() / 2, "MMSARGDFLN");
        w.TextElement("seq", seq);
        w.TextElement("length", std::to_string(seq.size()));
        if (rng.Chance(0.15)) {
          w.TextElement("checksum",
                        std::to_string(rng.Uniform(1000, 99999)));
        }
        w.EndElement();

        const uint64_t keywords = rng.GeometricCount(0, 4, 0.6);
        for (uint64_t k = 0; k < keywords; ++k) {
          w.TextElement("keyword", RandomSentence(rng, 1));
        }

        const uint64_t comments = rng.GeometricCount(1, 6, 0.45);
        bool planted_pair = false;
        for (uint64_t c = 0; c < comments; ++c) {
          // ~4% of records carry the Q5 adjacent topic pair.
          if (!planted_pair && c + 1 < comments && rng.Chance(0.04)) {
            planted_pair = true;
            w.StartElement("comment");
            w.TextElement("topic", "TISSUE SPECIFICITY");
            w.TextElement("text", RandomSentence(rng, 8));
            w.EndElement();
            ++c;
            w.StartElement("comment");
            w.TextElement("topic", "DEVELOPMENTAL STAGE");
            w.TextElement("text", RandomSentence(rng, 8));
            w.EndElement();
            continue;
          }
          w.StartElement("comment");
          w.TextElement("topic", rng.Pick(kTopics));
          w.TextElement("text", RandomSentence(rng, 6 + rng.Uniform(0, 8)));
          if (rng.Chance(0.1)) {
            std::string evidence = "E";
            evidence += std::to_string(rng.Uniform(1, 40));
            w.TextElement("evidence", evidence);
          }
          w.EndElement();
        }

        // Features come in two layouts, as in the real corpus: ranged
        // (from/to) and point (location), with an optional description.
        const uint64_t features = rng.GeometricCount(1, 8, 0.4);
        for (uint64_t f = 0; f < features; ++f) {
          w.StartElement("feature");
          w.TextElement("type", rng.Pick(kFeatureTypes));
          if (rng.Chance(0.3)) {
            const uint64_t from = rng.Uniform(1, 800);
            w.TextElement("from", std::to_string(from));
            w.TextElement("to",
                          std::to_string(from + rng.Uniform(1, 90)));
          } else {
            w.TextElement("location",
                          std::to_string(rng.Uniform(1, 900)));
          }
          if (rng.Chance(0.2)) {
            w.TextElement("description", RandomSentence(rng, 4));
          }
          w.EndElement();
        }

        const uint64_t refs = rng.GeometricCount(1, 4, 0.5);
        for (uint64_t k = 0; k < refs; ++k) {
          w.StartElement("reference");
          const uint64_t authors = rng.GeometricCount(1, 4, 0.6);
          for (uint64_t a = 0; a < authors; ++a) {
            w.TextElement("author", RandomSentence(rng, 2));
          }
          w.TextElement("title", RandomSentence(rng, 5));
          if (rng.Chance(0.25)) {
            w.TextElement("cite",
                          "MEDLINE " + std::to_string(rng.Uniform(
                                           70000000, 99999999)));
          }
          w.EndElement();
        }

        w.EndElement();  // Record
      }
      w.EndElement();  // ROOT
    });
  }
};

}  // namespace

const CorpusGenerator& SwissProt() {
  static const SwissProtGenerator kInstance;
  return kInstance;
}

}  // namespace xcq::corpus
