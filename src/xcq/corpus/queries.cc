#include "xcq/corpus/queries.h"

#include "xcq/util/string_util.h"

namespace xcq::corpus {

const std::vector<QuerySet>& AppendixAQueries() {
  static const std::vector<QuerySet> kQueries = {
      {"SwissProt",
       {
           "/self::*[ROOT/Record/comment/topic]",
           "/ROOT/Record/comment/topic",
           "//Record/protein[taxo[\"Eukaryota\"]]",
           "//Record[sequence/seq[\"MMSARGDFLN\"] and "
           "protein/from[\"Rattus norvegicus\"]]",
           "//Record/comment[topic[\"TISSUE SPECIFICITY\"] and "
           "following-sibling::comment/topic[\"DEVELOPMENTAL STAGE\"]]",
       }},
      {"DBLP",
       {
           "/self::*[dblp/article/url]",
           "/dblp/article/url",
           "//article[author[\"Codd\"]]",
           "/dblp/article[author[\"Chandra\"] and "
           "author[\"Harel\"]]/title",
           "/dblp/article[author[\"Chandra\" and "
           "following-sibling::author[\"Harel\"]]]/title",
       }},
      {"TreeBank",
       {
           "/self::*[alltreebank/FILE/EMPTY/S/VP/S/VP/NP]",
           "/alltreebank/FILE/EMPTY/S/VP/S/VP/NP",
           "//S//S[descendant::NNS[\"children\"]]",
           "//VP[\"granting\" and descendant::NP[\"access\"]]",
           "//VP/NP/VP/NP[following::NP/VP/NP/PP]",
       }},
      {"OMIM",
       {
           "/self::*[ROOT/Record/Title]",
           "/ROOT/Record/Title",
           "//Title[\"LETHAL\"]",
           "//Record[Text[\"consanguineous parents\"]]/Title[\"LETHAL\"]",
           "//Record[Clinical_Synop/Part[\"Metabolic\"]/"
           "following-sibling::Synop[\"Lactic acidosis\"]]",
       }},
      {"XMark",
       {
           "/self::*[site/regions/africa/item/"
           "description/parlist/listitem/text]",
           "/site/regions/africa/item/description/parlist/listitem/text",
           "//item[payment[\"Creditcard\"]]",
           "//item[location[\"United States\"] and parent::africa]",
           "//item/description/parlist/listitem[\"cassio\" and "
           "following-sibling::*[\"portia\"]]",
       }},
      {"Shakespeare",
       {
           "/self::*[all/PLAY/ACT/SCENE/SPEECH/LINE]",
           "/all/PLAY/ACT/SCENE/SPEECH/LINE",
           "//SPEECH[SPEAKER[\"MARK ANTONY\"]]/LINE",
           "//SPEECH[SPEAKER[\"CLEOPATRA\"] or LINE[\"Cleopatra\"]]",
           "//SPEECH[SPEAKER[\"CLEOPATRA\"] and "
           "preceding-sibling::SPEECH[SPEAKER[\"MARK ANTONY\"]]]",
       }},
      {"Baseball",
       {
           "/self::*[SEASON/LEAGUE/DIVISION/TEAM/PLAYER]",
           "/SEASON/LEAGUE/DIVISION/TEAM/PLAYER",
           "//PLAYER[THROWS[\"Right\"]]",
           "//PLAYER[ancestor::TEAM[TEAM_CITY[\"Atlanta\"]] or "
           "(HOME_RUNS[\"5\"] and STEALS[\"1\"])]",
           "//PLAYER[POSITION[\"First Base\"] and "
           "following-sibling::PLAYER[POSITION[\"Starting Pitcher\"]]]",
       }},
  };
  return kQueries;
}

Result<QuerySet> QueriesFor(std::string_view corpus) {
  for (const QuerySet& set : AppendixAQueries()) {
    if (set.corpus == corpus) return set;
  }
  return Status::NotFound(StrFormat("no benchmark queries for '%.*s'",
                                    static_cast<int>(corpus.size()),
                                    corpus.data()));
}

}  // namespace xcq::corpus
