#include <algorithm>

#include "xcq/corpus/generator.h"
#include "xcq/corpus/registry.h"

namespace xcq::corpus {

namespace {

/// TPC-D: XML-ized relational rows — the intro's motivating example of
/// extreme regularity. An R x C table's skeleton compresses from O(C*R)
/// to O(C + log R) with edge multiplicities. The paper includes it in
/// Fig. 6 but excludes it from the query experiments.
class TpcdGenerator : public GeneratorBase {
 public:
  std::string_view name() const override { return "TPC-D"; }

  PaperFigures paper_figures() const override {
    PaperFigures f;
    f.tree_nodes = 11765;
    f.bytes = 294810;  // 287.9 KB
    f.vm_bare = 15;
    f.em_bare = 161;
    f.ratio_bare = 0.014;
    f.vm_tags = 53;
    f.em_tags = 261;
    f.ratio_tags = 0.022;
    return f;
  }

  uint64_t default_target_nodes() const override { return 12000; }

  std::string Generate(const GenerateOptions& options) const override {
    Rng rng(options.seed);
    // Three tables with distinct column sets, proportioned like TPC-D
    // (lineitem dominates). An occasional nullable column varies the row
    // shape slightly, as real exports do.
    struct TableSpec {
      const char* name;
      std::vector<std::string> columns;
      int nullable_column;  // -1 = none
      uint64_t weight;      // relative row share
    };
    static const std::vector<TableSpec> kTables = {
        {"lineitem",
         {"L_ORDERKEY", "L_PARTKEY", "L_SUPPKEY", "L_QUANTITY",
          "L_DISCOUNT", "L_TAX", "L_RETURNFLAG", "L_SHIPDATE",
          "L_SHIPMODE", "L_COMMENT"},
         9,
         8},
        {"orders",
         {"O_ORDERKEY", "O_CUSTKEY", "O_STATUS", "O_TOTALPRICE",
          "O_ORDERDATE", "O_PRIORITY", "O_CLERK"},
         6,
         3},
        {"supplier",
         {"S_SUPPKEY", "S_NAME", "S_ADDRESS", "S_NATIONKEY", "S_PHONE",
          "S_ACCTBAL"},
         -1,
         1},
    };
    uint64_t total_weight = 0;
    uint64_t weighted_row_nodes = 0;
    for (const TableSpec& table : kTables) {
      total_weight += table.weight;
      weighted_row_nodes += table.weight * (table.columns.size() + 1);
    }
    const uint64_t rows_total = std::max<uint64_t>(
        kTables.size(),
        options.target_nodes * total_weight / weighted_row_nodes);
    return Emit([&](xml::XmlWriter& w) {
      w.StartElement("tpcd");
      for (const TableSpec& table : kTables) {
        w.StartElement(table.name);
        const uint64_t rows =
            std::max<uint64_t>(1, rows_total * table.weight / total_weight);
        for (uint64_t r = 0; r < rows; ++r) {
          w.StartElement("T");
          for (size_t c = 0; c < table.columns.size(); ++c) {
            if (static_cast<int>(c) == table.nullable_column &&
                rng.Chance(0.08)) {
              continue;  // null column omitted from this row
            }
            w.TextElement(table.columns[c],
                          std::to_string(rng.Uniform(0, 99999)));
          }
          w.EndElement();
        }
        w.EndElement();
      }
      w.EndElement();  // tpcd
    });
  }
};

}  // namespace

const CorpusGenerator& Tpcd() {
  static const TpcdGenerator kInstance;
  return kInstance;
}

}  // namespace xcq::corpus
