#include <algorithm>

#include "xcq/corpus/generator.h"
#include "xcq/corpus/registry.h"

namespace xcq::corpus {

namespace {

/// 1998 Major League Baseball statistics: a fixed league/division/team
/// hierarchy with per-player stat records — essentially XML-ized
/// relational data, the paper's most compressible corpus (0.3% bare).
class BaseballGenerator : public GeneratorBase {
 public:
  std::string_view name() const override { return "Baseball"; }

  PaperFigures paper_figures() const override {
    PaperFigures f;
    f.tree_nodes = 28307;
    f.bytes = 688026;  // 671.9 KB
    f.vm_bare = 26;
    f.em_bare = 76;
    f.ratio_bare = 0.003;
    f.vm_tags = 83;
    f.em_tags = 727;
    f.ratio_tags = 0.026;
    return f;
  }

  uint64_t default_target_nodes() const override { return 28000; }

  std::string Generate(const GenerateOptions& options) const override {
    Rng rng(options.seed);
    const uint64_t kNodesPerPlayer = 12;
    // 2 leagues x 3 divisions x ~5 teams.
    const uint64_t kTeams = 30;
    const uint64_t players_per_team = std::max<uint64_t>(
        1, options.target_nodes / (kNodesPerPlayer * kTeams));
    return Emit([&](xml::XmlWriter& w) {
      static const std::vector<std::string> kCities = {
          "Atlanta", "New York",  "Chicago", "Houston",   "San Diego",
          "Boston",  "Cleveland", "Seattle", "Baltimore", "Denver",
      };
      static const std::vector<std::string> kPositions = {
          "First Base",  "Second Base", "Third Base", "Shortstop",
          "Catcher",     "Outfield",    "Starting Pitcher",
          "Relief Pitcher",
      };
      w.StartElement("SEASON");
      w.TextElement("YEAR", "1998");
      for (const char* league : {"National", "American"}) {
        w.StartElement("LEAGUE");
        w.TextElement("LEAGUE_NAME", league);
        for (const char* division : {"East", "Central", "West"}) {
          w.StartElement("DIVISION");
          w.TextElement("DIVISION_NAME", division);
          for (uint64_t t = 0; t < kTeams / 6; ++t) {
            w.StartElement("TEAM");
            w.TextElement("TEAM_CITY", rng.Pick(kCities));
            w.TextElement("TEAM_NAME", RandomSentence(rng, 1));
            for (uint64_t p = 0; p < players_per_team; ++p) {
              // ~4% of adjacent pairs realize Q5's First Base followed
              // by Starting Pitcher.
              const bool plant =
                  p + 1 < players_per_team && rng.Chance(0.04);
              EmitPlayer(w, rng,
                         plant ? "First Base" : rng.Pick(kPositions));
              if (plant) {
                ++p;
                EmitPlayer(w, rng, "Starting Pitcher");
              }
            }
            w.EndElement();  // TEAM
          }
          w.EndElement();  // DIVISION
        }
        w.EndElement();  // LEAGUE
      }
      w.EndElement();  // SEASON
    });
  }

 private:
  /// The 1998 corpus has two record layouts: position players carry
  /// batting statistics, pitchers carry a pitching block instead (with
  /// occasional missing fields). The layout split is what gives the real
  /// corpus its 83 tagged vertices despite total regularity elsewhere.
  static void EmitPlayer(xml::XmlWriter& w, Rng& rng,
                         const std::string& position) {
    static const std::vector<std::string> kSurnames = {
        "Martinez", "Johnson", "Griffey", "Sosa",  "McGwire",
        "Ripken",   "Gwynn",   "Maddux", "Glavine", "Thomas",
    };
    const bool is_pitcher = position.find("Pitcher") != std::string::npos;
    w.StartElement("PLAYER");
    w.TextElement("SURNAME", rng.Pick(kSurnames));
    w.TextElement("GIVEN_NAME", RandomSentence(rng, 1));
    w.TextElement("POSITION", position);
    w.TextElement("THROWS", rng.Chance(0.7) ? "Right" : "Left");
    w.TextElement("BATS", rng.Chance(0.6) ? "Right" : "Left");
    w.TextElement("GAMES", std::to_string(rng.Uniform(1, 162)));
    if (is_pitcher) {
      w.TextElement("WINS", std::to_string(rng.Uniform(0, 24)));
      w.TextElement("LOSSES", std::to_string(rng.Uniform(0, 18)));
      if (rng.Chance(0.5)) {
        w.TextElement("SAVES", std::to_string(rng.Uniform(0, 50)));
      }
      w.TextElement("ERA", std::to_string(rng.Uniform(2, 6)) + "." +
                               std::to_string(rng.Uniform(0, 99)));
      // Pitchers rarely bat enough to have counting stats, but Q4's
      // HOME_RUNS/STEALS combination must stay satisfiable everywhere.
      if (rng.Chance(0.3)) {
        w.TextElement("HOME_RUNS", std::to_string(rng.Uniform(0, 5)));
        w.TextElement("STEALS", std::to_string(rng.Uniform(0, 2)));
      }
    } else {
      w.TextElement("AT_BATS", std::to_string(rng.Uniform(50, 650)));
      w.TextElement("HITS", std::to_string(rng.Uniform(10, 220)));
      w.TextElement("HOME_RUNS", std::to_string(rng.Uniform(0, 70)));
      w.TextElement("STEALS", std::to_string(rng.Uniform(0, 40)));
      if (rng.Chance(0.6)) {
        w.TextElement("RBI", std::to_string(rng.Uniform(5, 160)));
      }
      if (rng.Chance(0.4)) {
        w.TextElement("ERRORS", std::to_string(rng.Uniform(0, 30)));
      }
    }
    w.EndElement();  // PLAYER
  }
};

}  // namespace

const CorpusGenerator& Baseball() {
  static const BaseballGenerator kInstance;
  return kInstance;
}

}  // namespace xcq::corpus
