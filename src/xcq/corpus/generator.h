#ifndef XCQ_CORPUS_GENERATOR_H_
#define XCQ_CORPUS_GENERATOR_H_

/// \file generator.h
/// Synthetic stand-ins for the paper's benchmark corpora (Sec. 5).
///
/// The real corpora (SwissProt, DBLP, Penn TreeBank, OMIM, XMark,
/// Shakespeare, 1998 Baseball, TPC-D) are not redistributable here, so
/// each generator reproduces the *structural* signature that drives the
/// paper's results: element vocabulary, nesting shape, fan-out/depth
/// distributions, and — crucially for subtree-sharing compression — the
/// degree of regularity (how many distinct subtree shapes occur and how
/// often they repeat). Each generator also plants the strings that the
/// Appendix-A queries match ("Codd", "MARK ANTONY", "Eukaryota", ...), so
/// every benchmark query selects at least one node, as in the paper.
///
/// Generators are deterministic in (target_nodes, seed).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "xcq/util/result.h"
#include "xcq/util/rng.h"
#include "xcq/xml/writer.h"

namespace xcq::corpus {

/// \brief Reference numbers from the paper (Fig. 6) for one corpus.
struct PaperFigures {
  uint64_t tree_nodes = 0;     ///< |V^T|
  uint64_t bytes = 0;          ///< document size on disk
  uint64_t vm_bare = 0;        ///< |V^{M(T)}|, tags ignored ("−")
  uint64_t em_bare = 0;        ///< |E^{M(T)}|, tags ignored
  double ratio_bare = 0.0;     ///< |E^M|/|E^T|, tags ignored
  uint64_t vm_tags = 0;        ///< |V^{M(T)}|, all tags ("+")
  uint64_t em_tags = 0;        ///< |E^{M(T)}|, all tags
  double ratio_tags = 0.0;     ///< |E^M|/|E^T|, all tags
};

struct GenerateOptions {
  /// Approximate number of skeleton nodes to produce (excluding #doc).
  uint64_t target_nodes = 100000;
  uint64_t seed = 42;
};

/// \brief Interface implemented by the eight corpus generators.
class CorpusGenerator {
 public:
  virtual ~CorpusGenerator() = default;

  /// Corpus name as used in the paper's tables, e.g. "SwissProt".
  virtual std::string_view name() const = 0;

  /// The paper's measured numbers for the real corpus (Fig. 6).
  virtual PaperFigures paper_figures() const = 0;

  /// Default node budget used by the benchmark harnesses (a laptop-scale
  /// fraction of the paper's corpus size).
  virtual uint64_t default_target_nodes() const = 0;

  /// Produces the XML document text.
  virtual std::string Generate(const GenerateOptions& options) const = 0;
};

/// \brief Uniform word source for generated text content (lowercase
/// English-ish words from a fixed pool).
std::string_view RandomWord(Rng& rng);

/// \brief Space-separated words, no trailing space.
std::string RandomSentence(Rng& rng, size_t words);

/// \brief Uppercase amino-acid letter string of length `len`.
std::string RandomProteinSequence(Rng& rng, size_t len);

/// \brief Helper base carrying the writer boilerplate shared by all
/// generators.
class GeneratorBase : public CorpusGenerator {
 protected:
  /// Hands a writer over `out` (no indentation — dense documents like the
  /// real corpora) to `body`, asserting balanced elements.
  template <typename Body>
  static std::string Emit(Body&& body) {
    std::string out;
    xml::XmlWriter writer(&out, xml::WriterOptions{
                                    .indent = false,
                                    .declaration = true,
                                });
    body(writer);
    // Generators are trusted internal code; an unbalanced document is a
    // programming error surfaced loudly in tests via parse failure.
    return out;
  }
};

}  // namespace xcq::corpus

#endif  // XCQ_CORPUS_GENERATOR_H_
