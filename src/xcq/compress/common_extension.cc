#include "xcq/compress/common_extension.h"

#include <unordered_map>

#include "xcq/compress/minimize.h"
#include "xcq/util/hash.h"
#include "xcq/util/string_util.h"

namespace xcq {

namespace {

uint64_t PairKey(VertexId a, VertexId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

/// Decomposes the child sequences of a vertex pair into lockstep runs:
/// each output triple is (child_of_a, child_of_b, shared_multiplicity).
/// Fails if the expanded sequences have different lengths.
Status LockstepRuns(std::span<const Edge> ea, std::span<const Edge> eb,
                    std::vector<std::tuple<VertexId, VertexId, uint64_t>>*
                        out) {
  out->clear();
  size_t i = 0;
  size_t j = 0;
  uint64_t rem_a = ea.empty() ? 0 : ea[0].count;
  uint64_t rem_b = eb.empty() ? 0 : eb[0].count;
  while (i < ea.size() && j < eb.size()) {
    const uint64_t take = rem_a < rem_b ? rem_a : rem_b;
    out->emplace_back(ea[i].child, eb[j].child, take);
    rem_a -= take;
    rem_b -= take;
    if (rem_a == 0 && ++i < ea.size()) rem_a = ea[i].count;
    if (rem_b == 0 && ++j < eb.size()) rem_b = eb[j].count;
  }
  if (i < ea.size() || j < eb.size()) {
    return Status::Incompatible(
        "instances disagree on the number of children of a shared node");
  }
  return Status::OK();
}

}  // namespace

Result<Instance> CommonExtension(const Instance& a, const Instance& b,
                                 const CommonExtensionOptions& options) {
  if (a.vertex_count() == 0 || b.vertex_count() == 0 ||
      a.root() == kNoVertex || b.root() == kNoVertex) {
    return Status::InvalidArgument("CommonExtension: empty instance");
  }

  // Union schema: relations of `a` first, then the names unique to `b`.
  // For shared names, memberships must agree on every paired vertex.
  Instance out;
  struct RelSource {
    RelationId out_id;
    RelationId a_id;  // kNoRelation if absent in a
    RelationId b_id;  // kNoRelation if absent in b
  };
  std::vector<RelSource> sources;
  for (RelationId ra : a.LiveRelations()) {
    const std::string& name = a.schema().Name(ra);
    sources.push_back(
        RelSource{out.AddRelation(name), ra, b.FindRelation(name)});
  }
  for (RelationId rb : b.LiveRelations()) {
    const std::string& name = b.schema().Name(rb);
    if (a.FindRelation(name) != kNoRelation) continue;
    sources.push_back(RelSource{out.AddRelation(name), kNoRelation, rb});
  }

  // Lazy product over reachable pairs, children-first (post-order).
  std::unordered_map<uint64_t, VertexId> memo;
  constexpr VertexId kInProgress = kNoVertex;

  struct Frame {
    VertexId va;
    VertexId vb;
    std::vector<std::tuple<VertexId, VertexId, uint64_t>> runs;
    size_t next = 0;
  };
  std::vector<Frame> stack;

  const auto schedule = [&](VertexId va, VertexId vb) -> Status {
    Frame frame;
    frame.va = va;
    frame.vb = vb;
    XCQ_RETURN_IF_ERROR(
        LockstepRuns(a.Children(va), b.Children(vb), &frame.runs));
    memo.emplace(PairKey(va, vb), kInProgress);
    stack.push_back(std::move(frame));
    return Status::OK();
  };

  XCQ_RETURN_IF_ERROR(schedule(a.root(), b.root()));
  std::vector<Edge> edges_scratch;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    bool descended = false;
    while (frame.next < frame.runs.size()) {
      const auto& [ca, cb, count] = frame.runs[frame.next];
      const auto it = memo.find(PairKey(ca, cb));
      if (it == memo.end()) {
        XCQ_RETURN_IF_ERROR(schedule(ca, cb));
        descended = true;
        break;
      }
      if (it->second == kInProgress) {
        // Only possible if an input graph has a cycle (invalid instance).
        return Status::Incompatible(
            "cycle detected while building the product");
      }
      ++frame.next;
    }
    if (descended) continue;

    // All child pairs resolved: emit this product vertex.
    edges_scratch.clear();
    for (const auto& [ca, cb, count] : frame.runs) {
      const VertexId child = memo.at(PairKey(ca, cb));
      AppendEdgeRle(&edges_scratch, Edge{child, count});
    }
    const VertexId v = out.AddVertex();
    if (out.vertex_count() > options.max_vertices) {
      return Status::ResourceExhausted(
          "common extension exceeds the vertex budget");
    }
    out.SetEdges(v, edges_scratch);
    for (const RelSource& src : sources) {
      const bool in_a =
          src.a_id != kNoRelation && a.Test(src.a_id, frame.va);
      const bool in_b =
          src.b_id != kNoRelation && b.Test(src.b_id, frame.vb);
      if (src.a_id != kNoRelation && src.b_id != kNoRelation &&
          in_a != in_b) {
        return Status::Incompatible(StrFormat(
            "instances disagree on shared relation '%s'",
            out.schema().Name(src.out_id).c_str()));
      }
      if (in_a || in_b) out.SetBit(src.out_id, v);
    }
    memo[PairKey(frame.va, frame.vb)] = v;
    stack.pop_back();
  }

  out.SetRoot(memo.at(PairKey(a.root(), b.root())));
  if (options.minimize_result) return Minimize(out);
  return out;
}

Instance Reduct(const Instance& instance,
                const std::vector<std::string>& keep) {
  Instance out;
  for (VertexId v = 0; v < instance.vertex_count(); ++v) out.AddVertex();
  for (VertexId v = 0; v < instance.vertex_count(); ++v) {
    out.SetEdges(v, instance.Children(v));
  }
  out.SetRoot(instance.root());
  for (const std::string& name : keep) {
    const RelationId src = instance.FindRelation(name);
    if (src == kNoRelation) continue;
    const RelationId dst = out.AddRelation(name);
    out.MutableRelationBits(dst) = instance.RelationBits(src);
  }
  return out;
}

}  // namespace xcq
