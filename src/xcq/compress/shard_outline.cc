#include "xcq/compress/shard_outline.h"

namespace xcq {

namespace {

// Mirrors the name character classes of xml/sax_parser.cc; only used to
// find the end of a name, never to validate it.
bool IsNameStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':' || static_cast<unsigned char>(c) >= 0x80;
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || (c >= '0' && c <= '9') || c == '-' ||
         c == '.';
}

bool IsSpaceChar(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/// Cursor with the skip helpers the outline needs. Every helper returns
/// false on EOF-before-done, which the caller turns into "ineligible".
struct Scan {
  std::string_view xml;
  size_t pos = 0;

  bool AtEnd() const { return pos >= xml.size(); }
  bool Starts(std::string_view token) const {
    return xml.substr(pos, token.size()) == token;
  }
  bool SkipPast(std::string_view token) {
    const size_t found = xml.find(token, pos);
    if (found == std::string_view::npos) return false;
    pos = found + token.size();
    return true;
  }
  void SkipWhitespace() {
    while (!AtEnd() && IsSpaceChar(xml[pos])) ++pos;
  }
  std::string_view TakeName() {
    const size_t begin = pos;
    if (!AtEnd() && IsNameStartChar(xml[pos])) {
      ++pos;
      while (!AtEnd() && IsNameChar(xml[pos])) ++pos;
    }
    return xml.substr(begin, pos - begin);
  }

  /// From just past a start tag's name to just past its '>', skipping
  /// quoted attribute values (which may contain '>'). Sets
  /// `self_closing` from a contiguous "/>" — the only form the parser
  /// accepts.
  bool SkipStartTag(bool* self_closing) {
    *self_closing = false;
    while (!AtEnd()) {
      const char c = xml[pos];
      if (c == '"' || c == '\'') {
        ++pos;
        const size_t close = xml.find(c, pos);
        if (close == std::string_view::npos) return false;
        pos = close + 1;
        continue;
      }
      if (c == '>') {
        *self_closing = pos > 0 && xml[pos - 1] == '/';
        ++pos;
        return true;
      }
      ++pos;
    }
    return false;
  }

  /// "<!" already seen: skip a DOCTYPE (bracket-aware, like the parser).
  bool SkipDoctype() {
    int bracket_depth = 0;
    while (!AtEnd()) {
      const char c = xml[pos];
      ++pos;
      if (c == '[') {
        ++bracket_depth;
      } else if (c == ']') {
        --bracket_depth;
      } else if (c == '>' && bracket_depth <= 0) {
        return true;
      }
    }
    return false;
  }

  /// Skips misc items (whitespace, comments, PIs) and — in the prologue
  /// only — a DOCTYPE. Stops at the first byte it cannot classify.
  bool SkipMisc(bool allow_doctype) {
    while (true) {
      SkipWhitespace();
      if (Starts("<?")) {
        if (!SkipPast("?>")) return false;
        continue;
      }
      if (Starts("<!--")) {
        if (!SkipPast("-->")) return false;
        continue;
      }
      if (allow_doctype && Starts("<!") && !Starts("<![CDATA[")) {
        pos += 2;
        if (!SkipDoctype()) return false;
        continue;
      }
      return true;
    }
  }
};

}  // namespace

DocumentOutline ScanDocumentOutline(std::string_view xml) {
  DocumentOutline out;
  Scan scan{xml};
  if (scan.Starts("\xEF\xBB\xBF")) scan.pos = 3;

  // Prologue, then the document element's start tag.
  if (!scan.SkipMisc(/*allow_doctype=*/true)) return out;
  if (scan.AtEnd() || xml[scan.pos] != '<') return out;
  ++scan.pos;
  out.root_tag = scan.TakeName();
  if (out.root_tag.empty()) return out;
  bool self_closing = false;
  if (!scan.SkipStartTag(&self_closing)) return out;
  // A childless document element has nothing to shard.
  if (self_closing) return out;
  out.content_begin = scan.pos;

  // Content: track element depth below the document element. Character
  // data needs no inspection — only markup moves the depth.
  size_t depth = 0;
  while (!scan.AtEnd()) {
    if (xml[scan.pos] != '<') {
      ++scan.pos;
      continue;
    }
    if (scan.Starts("<!--")) {
      if (!scan.SkipPast("-->")) return out;
      continue;
    }
    if (scan.Starts("<![CDATA[")) {
      if (!scan.SkipPast("]]>")) return out;
      continue;
    }
    if (scan.Starts("<?")) {
      if (!scan.SkipPast("?>")) return out;
      continue;
    }
    if (scan.Starts("<!")) return out;  // doctype inside content
    if (scan.Starts("</")) {
      const size_t tag_open = scan.pos;
      scan.pos += 2;
      if (scan.TakeName().empty()) return out;
      scan.SkipWhitespace();
      if (scan.AtEnd() || xml[scan.pos] != '>') return out;
      ++scan.pos;
      if (depth == 0) {
        // The document element's own end tag: only misc may follow.
        out.content_end = tag_open;
        if (!scan.SkipMisc(/*allow_doctype=*/false)) return out;
        if (!scan.AtEnd()) return out;
        out.eligible = true;
        return out;
      }
      --depth;
      if (depth == 0) out.cuts.push_back(scan.pos);
      continue;
    }
    // Start tag.
    ++scan.pos;
    if (scan.TakeName().empty()) return out;
    if (!scan.SkipStartTag(&self_closing)) return out;
    if (self_closing) {
      if (depth == 0) out.cuts.push_back(scan.pos);
    } else {
      ++depth;
    }
  }
  return out;  // EOF before the document element closed
}

}  // namespace xcq
