#include "xcq/compress/compressor.h"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "xcq/compress/dag_builder.h"
#include "xcq/tree/tree_skeleton.h"
#include "xcq/util/timer.h"
#include "xcq/xml/sax_parser.h"
#include "xcq/xml/string_matcher.h"

namespace xcq {

namespace {

/// SAX handler implementing the paper's one-scan compression algorithm.
class CompressorHandler : public xml::SaxHandler {
 public:
  CompressorHandler(const CompressOptions& options,
                    xml::StringMatcher* matcher, CompressRunStats* stats)
      : options_(options), matcher_(matcher), stats_(stats) {
    // Pattern relations take ids [0, P); tag relations follow so that tag
    // discovery during the scan can append names freely.
    for (const std::string& pattern : options_.patterns) {
      relation_names_.push_back(Schema::StringRelationName(pattern));
    }
    if (options_.mode == LabelMode::kSchema) {
      for (const std::string& tag : options_.tags) {
        const RelationId id =
            static_cast<RelationId>(relation_names_.size());
        if (tag_ids_.emplace(tag, id).second) {
          relation_names_.push_back(tag);
        }
      }
    }
  }

  Status OnStartDocument() override {
    PushFrame(kDocumentTag);
    return Status::OK();
  }

  Status OnStartElement(std::string_view name,
                        const std::vector<xml::Attribute>&) override {
    PushFrame(name);
    return Status::OK();
  }

  Status OnCharacters(std::string_view text) override {
    if (stats_ != nullptr) stats_->text_bytes += text.size();
    if (matcher_ == nullptr) return Status::OK();
    matcher_->Feed(text, [this](const xml::PatternMatch& m) {
      if (stats_ != nullptr) ++stats_->pattern_hits;
      for (size_t i = stack_.size(); i-- > 0;) {
        if (stack_[i].open_offset <= m.start_offset) {
          stack_[i].pattern_mask |= uint64_t{1} << m.pattern;
          break;
        }
      }
    });
    return Status::OK();
  }

  Status OnEndElement(std::string_view) override {
    PopAndIntern();
    return Status::OK();
  }

  Status OnEndDocument() override {
    root_ = PopAndIntern();
    if (!stack_.empty()) {
      return Status::Internal("compressor stack not empty at end");
    }
    return Status::OK();
  }

  Result<Instance> Finish() {
    if (root_ == kNoVertex) {
      return Status::Internal("compressor finished without a root");
    }
    return builder_.Finish(root_, relation_names_);
  }

 private:
  struct Frame {
    RelationId tag_label;   ///< kNoRelation if the tag is not tracked.
    uint64_t open_offset;   ///< Matcher offset when the element opened.
    uint64_t pattern_mask;  ///< Patterns contained in the string value.
    std::vector<Edge> edges;
  };

  void PushFrame(std::string_view tag) {
    if (stats_ != nullptr) ++stats_->tree_nodes;
    Frame frame;
    frame.tag_label = ResolveTag(tag);
    frame.open_offset = matcher_ ? matcher_->offset() : 0;
    frame.pattern_mask = 0;
    if (!spare_edge_lists_.empty()) {
      frame.edges = std::move(spare_edge_lists_.back());
      spare_edge_lists_.pop_back();
      frame.edges.clear();
    }
    stack_.push_back(std::move(frame));
  }

  RelationId ResolveTag(std::string_view tag) {
    switch (options_.mode) {
      case LabelMode::kNone:
        return kNoRelation;
      case LabelMode::kAllTags: {
        auto it = tag_ids_.find(std::string(tag));
        if (it != tag_ids_.end()) return it->second;
        const RelationId id =
            static_cast<RelationId>(relation_names_.size());
        relation_names_.emplace_back(tag);
        tag_ids_.emplace(std::string(tag), id);
        return id;
      }
      case LabelMode::kSchema: {
        auto it = tag_ids_.find(std::string(tag));
        return it == tag_ids_.end() ? kNoRelation : it->second;
      }
    }
    return kNoRelation;
  }

  VertexId PopAndIntern() {
    Frame& frame = stack_.back();
    // Assemble the sorted label list: patterns have ids below all tags in
    // kSchema mode, but in kAllTags mode tag ids interleave with nothing
    // (patterns absent) — in both cases a final sort keeps it canonical.
    labels_scratch_.clear();
    uint64_t mask = frame.pattern_mask;
    while (mask != 0) {
      const int p = __builtin_ctzll(mask);
      labels_scratch_.push_back(static_cast<RelationId>(p));
      mask &= mask - 1;
    }
    if (frame.tag_label != kNoRelation) {
      labels_scratch_.push_back(frame.tag_label);
    }
    std::sort(labels_scratch_.begin(), labels_scratch_.end());
    const VertexId id = builder_.Intern(labels_scratch_, frame.edges);

    const uint64_t child_mask = frame.pattern_mask;
    spare_edge_lists_.push_back(std::move(frame.edges));
    stack_.pop_back();
    if (!stack_.empty()) {
      AppendEdgeRle(&stack_.back().edges, Edge{id, 1});
      // Ancestors' string values contain this element's string value.
      stack_.back().pattern_mask |= child_mask;
    }
    return id;
  }

  const CompressOptions& options_;
  xml::StringMatcher* matcher_;
  CompressRunStats* stats_;

  DagBuilder builder_;
  std::vector<Frame> stack_;
  std::vector<std::vector<Edge>> spare_edge_lists_;
  std::vector<RelationId> labels_scratch_;
  std::vector<std::string> relation_names_;
  std::unordered_map<std::string, RelationId> tag_ids_;
  VertexId root_ = kNoVertex;
};

}  // namespace

Result<Instance> CompressXmlWithStats(std::string_view xml,
                                      const CompressOptions& options,
                                      CompressRunStats* stats) {
  if (options.patterns.size() > 64) {
    return Status::InvalidArgument(
        "at most 64 string patterns are supported per compression pass");
  }
  if (options.mode != LabelMode::kSchema && !options.tags.empty()) {
    return Status::InvalidArgument(
        "CompressOptions::tags is only meaningful in kSchema mode");
  }
  Timer timer;
  std::optional<xml::StringMatcher> matcher;
  if (!options.patterns.empty()) {
    XCQ_ASSIGN_OR_RETURN(matcher,
                         xml::StringMatcher::Build(options.patterns));
  }
  CompressorHandler handler(options, matcher ? &*matcher : nullptr, stats);
  xml::SaxParser parser;
  XCQ_RETURN_IF_ERROR(parser.Parse(xml, &handler));
  XCQ_ASSIGN_OR_RETURN(Instance instance, handler.Finish());
  if (stats != nullptr) stats->parse_seconds = timer.Seconds();
  return instance;
}

Result<Instance> CompressXml(std::string_view xml,
                             const CompressOptions& options) {
  return CompressXmlWithStats(xml, options, nullptr);
}

}  // namespace xcq
