#include "xcq/compress/compressor.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <unordered_map>

#include "xcq/compress/dag_builder.h"
#include "xcq/compress/shard_outline.h"
#include "xcq/parallel/task_pool.h"
#include "xcq/tree/tree_skeleton.h"
#include "xcq/util/timer.h"
#include "xcq/xml/sax_parser.h"
#include "xcq/xml/string_matcher.h"

namespace xcq {

namespace {

/// Documents below this size never shard — the slices would not repay
/// the per-shard parser setup and the merge.
constexpr size_t kShardMinBytes = 64 * 1024;

/// DagBuilder reservation heuristic: an element costs at least a few
/// dozen bytes of markup, and distinct DAG vertices never exceed
/// element count, so bytes/48 over-reserves mildly for dense documents
/// and generously for text-heavy ones. The builder spends 8 bytes per
/// hinted vertex on hash buckets (~17% of the input size, worst case,
/// once) and deliberately reserves only a fraction of the heavier
/// arenas — see the DagBuilder constructor.
size_t ReserveHintForBytes(size_t bytes) {
  const size_t hint = bytes / 48;
  return hint < 16 ? 0 : (hint > (size_t{1} << 24) ? size_t{1} << 24
                                                   : hint);
}

/// Tag-name → relation-id interning shared by the sequential handler,
/// the per-shard handlers, and the shard merge. Ids are assigned in
/// resolution order, which every caller keeps equal to document
/// open-tag order — the property that makes shard merges reproduce the
/// sequential schema exactly.
class TagInterner {
 public:
  /// Pattern relations take ids [0, P); tag relations follow so that tag
  /// discovery during the scan can append names freely.
  TagInterner(const CompressOptions& options, bool with_patterns)
      : mode_(options.mode) {
    if (with_patterns) {
      for (const std::string& pattern : options.patterns) {
        relation_names_.push_back(Schema::StringRelationName(pattern));
      }
    }
    if (mode_ == LabelMode::kSchema) {
      for (const std::string& tag : options.tags) {
        const RelationId id =
            static_cast<RelationId>(relation_names_.size());
        if (tag_ids_.emplace(tag, id).second) {
          relation_names_.push_back(tag);
        }
      }
    }
  }

  RelationId Resolve(std::string_view tag) {
    switch (mode_) {
      case LabelMode::kNone:
        return kNoRelation;
      case LabelMode::kAllTags: {
        auto it = tag_ids_.find(std::string(tag));
        if (it != tag_ids_.end()) return it->second;
        const RelationId id =
            static_cast<RelationId>(relation_names_.size());
        relation_names_.emplace_back(tag);
        tag_ids_.emplace(std::string(tag), id);
        return id;
      }
      case LabelMode::kSchema: {
        auto it = tag_ids_.find(std::string(tag));
        return it == tag_ids_.end() ? kNoRelation : it->second;
      }
    }
    return kNoRelation;
  }

  const std::vector<std::string>& names() const { return relation_names_; }

 private:
  LabelMode mode_;
  std::vector<std::string> relation_names_;
  std::unordered_map<std::string, RelationId> tag_ids_;
};

/// SAX handler implementing the paper's one-scan compression algorithm.
class CompressorHandler : public xml::SaxHandler {
 public:
  CompressorHandler(const CompressOptions& options,
                    xml::StringMatcher* matcher, CompressRunStats* stats,
                    size_t reserve_hint)
      : matcher_(matcher),
        stats_(stats),
        builder_(reserve_hint),
        tags_(options, /*with_patterns=*/true) {}

  Status OnStartDocument() override {
    PushFrame(kDocumentTag);
    return Status::OK();
  }

  Status OnStartElement(std::string_view name,
                        const std::vector<xml::Attribute>&) override {
    PushFrame(name);
    return Status::OK();
  }

  Status OnCharacters(std::string_view text) override {
    if (stats_ != nullptr) stats_->text_bytes += text.size();
    if (matcher_ == nullptr) return Status::OK();
    matcher_->Feed(text, [this](const xml::PatternMatch& m) {
      if (stats_ != nullptr) ++stats_->pattern_hits;
      for (size_t i = stack_.size(); i-- > 0;) {
        if (stack_[i].open_offset <= m.start_offset) {
          stack_[i].pattern_mask |= uint64_t{1} << m.pattern;
          break;
        }
      }
    });
    return Status::OK();
  }

  Status OnEndElement(std::string_view) override {
    PopAndIntern();
    return Status::OK();
  }

  Status OnEndDocument() override {
    root_ = PopAndIntern();
    if (!stack_.empty()) {
      return Status::Internal("compressor stack not empty at end");
    }
    return Status::OK();
  }

  Result<Instance> Finish() {
    if (root_ == kNoVertex) {
      return Status::Internal("compressor finished without a root");
    }
    return builder_.Finish(root_, tags_.names());
  }

 private:
  struct Frame {
    RelationId tag_label;   ///< kNoRelation if the tag is not tracked.
    uint64_t open_offset;   ///< Matcher offset when the element opened.
    uint64_t pattern_mask;  ///< Patterns contained in the string value.
    std::vector<Edge> edges;
  };

  void PushFrame(std::string_view tag) {
    if (stats_ != nullptr) ++stats_->tree_nodes;
    Frame frame;
    frame.tag_label = tags_.Resolve(tag);
    frame.open_offset = matcher_ ? matcher_->offset() : 0;
    frame.pattern_mask = 0;
    if (!spare_edge_lists_.empty()) {
      frame.edges = std::move(spare_edge_lists_.back());
      spare_edge_lists_.pop_back();
      frame.edges.clear();
    }
    stack_.push_back(std::move(frame));
  }

  VertexId PopAndIntern() {
    Frame& frame = stack_.back();
    // Assemble the sorted label list: patterns have ids below all tags in
    // kSchema mode, but in kAllTags mode tag ids interleave with nothing
    // (patterns absent) — in both cases a final sort keeps it canonical.
    labels_scratch_.clear();
    uint64_t mask = frame.pattern_mask;
    while (mask != 0) {
      const int p = __builtin_ctzll(mask);
      labels_scratch_.push_back(static_cast<RelationId>(p));
      mask &= mask - 1;
    }
    if (frame.tag_label != kNoRelation) {
      labels_scratch_.push_back(frame.tag_label);
    }
    std::sort(labels_scratch_.begin(), labels_scratch_.end());
    const VertexId id = builder_.Intern(labels_scratch_, frame.edges);

    const uint64_t child_mask = frame.pattern_mask;
    spare_edge_lists_.push_back(std::move(frame.edges));
    stack_.pop_back();
    if (!stack_.empty()) {
      AppendEdgeRle(&stack_.back().edges, Edge{id, 1});
      // Ancestors' string values contain this element's string value.
      stack_.back().pattern_mask |= child_mask;
    }
    return id;
  }

  xml::StringMatcher* matcher_;
  CompressRunStats* stats_;

  DagBuilder builder_;
  TagInterner tags_;
  std::vector<Frame> stack_;
  std::vector<std::vector<Edge>> spare_edge_lists_;
  std::vector<RelationId> labels_scratch_;
  VertexId root_ = kNoVertex;
};

/// Per-shard handler for one top-level slice of the document, parsed in
/// fragment mode: like CompressorHandler without the #doc frame, the
/// matcher (patterns force the sequential path), and with the roots of
/// the slice's top-level subtrees collected as an RLE run list for the
/// merge to splice into the document element's child sequence.
class FragmentCompressor : public xml::SaxHandler {
 public:
  FragmentCompressor(const CompressOptions& options, size_t reserve_hint)
      : builder_(reserve_hint), tags_(options, /*with_patterns=*/false) {}

  Status OnStartElement(std::string_view name,
                        const std::vector<xml::Attribute>&) override {
    ++tree_nodes_;
    Frame frame;
    frame.tag_label = tags_.Resolve(name);
    if (!spare_edge_lists_.empty()) {
      frame.edges = std::move(spare_edge_lists_.back());
      spare_edge_lists_.pop_back();
      frame.edges.clear();
    }
    stack_.push_back(std::move(frame));
    return Status::OK();
  }

  Status OnCharacters(std::string_view text) override {
    text_bytes_ += text.size();
    return Status::OK();
  }

  Status OnEndElement(std::string_view) override {
    Frame& frame = stack_.back();
    labels_scratch_.clear();
    if (frame.tag_label != kNoRelation) {
      labels_scratch_.push_back(frame.tag_label);
    }
    const VertexId id = builder_.Intern(labels_scratch_, frame.edges);
    spare_edge_lists_.push_back(std::move(frame.edges));
    stack_.pop_back();
    if (!stack_.empty()) {
      AppendEdgeRle(&stack_.back().edges, Edge{id, 1});
    } else {
      AppendEdgeRle(&top_runs_, Edge{id, 1});
    }
    return Status::OK();
  }

  Status OnEndDocument() override {
    return stack_.empty()
               ? Status::OK()
               : Status::Internal("fragment compressor stack not empty");
  }

  const DagBuilder& builder() const { return builder_; }
  const std::vector<Edge>& top_runs() const { return top_runs_; }
  const std::vector<std::string>& names() const { return tags_.names(); }
  uint64_t tree_nodes() const { return tree_nodes_; }
  uint64_t text_bytes() const { return text_bytes_; }

 private:
  struct Frame {
    RelationId tag_label;
    std::vector<Edge> edges;
  };

  DagBuilder builder_;
  TagInterner tags_;
  std::vector<Frame> stack_;
  std::vector<std::vector<Edge>> spare_edge_lists_;
  std::vector<RelationId> labels_scratch_;
  std::vector<Edge> top_runs_;
  uint64_t tree_nodes_ = 0;
  uint64_t text_bytes_ = 0;
};

/// Sharded compression (docs/PARALLELISM.md §3): parse the outlined
/// slices concurrently into thread-local builders, then replay the
/// shard DAGs into one global builder in document order. Interning in
/// shard order reproduces the sequential pass's first-close order
/// exactly — same vertex ids, same relation ids, same edges — so the
/// result is bit-identical to CompressorHandler's.
///
/// Returns nullopt when any shard fails to parse; the caller then runs
/// the sequential path, which reports the canonical error (with
/// whole-document line numbers) or succeeds where the outline was
/// wrong.
std::optional<Result<Instance>> CompressSharded(
    std::string_view xml, const CompressOptions& options,
    const DocumentOutline& outline, CompressRunStats* stats) {
  // Group consecutive top-level subtrees into byte-balanced slices —
  // at most one per (hardware-clamped) lane, so a wild thread request
  // cannot explode into per-subtree shards.
  const size_t lanes = parallel::ClampLanes(options.threads);
  std::vector<std::pair<size_t, size_t>> slices;
  {
    const size_t total = outline.content_end - outline.content_begin;
    const size_t target = total / lanes + 1;
    size_t begin = outline.content_begin;
    for (const size_t cut : outline.cuts) {
      if (cut - begin >= target) {
        slices.emplace_back(begin, cut);
        begin = cut;
      }
    }
    if (begin < outline.content_end || slices.empty()) {
      slices.emplace_back(begin, outline.content_end);
    }
  }
  if (stats != nullptr) stats->shards = slices.size();
  if (slices.size() < 2) return std::nullopt;  // nothing to parallelize

  std::vector<std::unique_ptr<FragmentCompressor>> shards(slices.size());
  std::vector<Status> statuses(slices.size(), Status::OK());
  for (size_t s = 0; s < slices.size(); ++s) {
    shards[s] = std::make_unique<FragmentCompressor>(
        options, ReserveHintForBytes(slices[s].second - slices[s].first));
  }
  parallel::TaskPool& pool = parallel::SharedPool(options.threads);
  pool.Run(slices.size(), [&](size_t s) {
    xml::SaxParser::Options popts;
    popts.fragment = true;
    xml::SaxParser parser(popts);
    statuses[s] = parser.Parse(
        xml.substr(slices[s].first, slices[s].second - slices[s].first),
        shards[s].get());
  });
  for (const Status& status : statuses) {
    if (!status.ok()) return std::nullopt;  // sequential reports it
  }

  // Merge, in document order. The global builder's capacity is known
  // exactly: no shard contributes more vertices than it interned.
  size_t upper = 2;  // the document element and #doc
  for (const auto& shard : shards) upper += shard->builder().vertex_count();
  if (stats != nullptr) stats->dag_reserve = upper;
  DagBuilder global(upper);
  TagInterner global_tags(options, /*with_patterns=*/false);
  // The sequential pass resolves #doc (OnStartDocument) and the
  // document element's tag before any content tag; match its id order.
  const RelationId doc_relation = global_tags.Resolve(kDocumentTag);
  const RelationId root_relation = global_tags.Resolve(outline.root_tag);

  std::vector<Edge> root_edges;
  std::vector<RelationId> label_map;
  std::vector<VertexId> vertex_map;
  std::vector<RelationId> labels_scratch;
  std::vector<Edge> edges_scratch;
  for (const auto& shard : shards) {
    const DagBuilder& local = shard->builder();
    label_map.clear();
    for (const std::string& name : shard->names()) {
      label_map.push_back(global_tags.Resolve(name));
    }
    vertex_map.assign(local.vertex_count(), kNoVertex);
    for (VertexId v = 0; v < local.vertex_count(); ++v) {
      labels_scratch.clear();
      for (const RelationId label : local.Labels(v)) {
        labels_scratch.push_back(label_map[label]);
      }
      std::sort(labels_scratch.begin(), labels_scratch.end());
      edges_scratch.clear();
      for (const Edge& e : local.Edges(v)) {
        // Children intern before parents, so the map entry is final.
        edges_scratch.push_back(Edge{vertex_map[e.child], e.count});
      }
      vertex_map[v] = global.Intern(labels_scratch, edges_scratch);
    }
    for (const Edge& e : shard->top_runs()) {
      AppendEdgeRle(&root_edges, Edge{vertex_map[e.child], e.count});
    }
    if (stats != nullptr) {
      stats->tree_nodes += shard->tree_nodes();
      stats->text_bytes += shard->text_bytes();
    }
  }

  labels_scratch.clear();
  if (root_relation != kNoRelation) labels_scratch.push_back(root_relation);
  const VertexId doc_element = global.Intern(labels_scratch, root_edges);
  labels_scratch.clear();
  if (doc_relation != kNoRelation) labels_scratch.push_back(doc_relation);
  const Edge doc_edge{doc_element, 1};
  const VertexId root = global.Intern(labels_scratch, {&doc_edge, 1});
  if (stats != nullptr) stats->tree_nodes += 2;  // doc element + #doc

  return global.Finish(root, global_tags.names());
}

}  // namespace

Result<Instance> CompressXmlWithStats(std::string_view xml,
                                      const CompressOptions& options,
                                      CompressRunStats* stats) {
  if (options.patterns.size() > 64) {
    return Status::InvalidArgument(
        "at most 64 string patterns are supported per compression pass");
  }
  if (options.mode != LabelMode::kSchema && !options.tags.empty()) {
    return Status::InvalidArgument(
        "CompressOptions::tags is only meaningful in kSchema mode");
  }
  Timer timer;
  const size_t reserve_hint = ReserveHintForBytes(xml.size());

  if (options.threads > 1 && options.patterns.empty() &&
      xml.size() >= kShardMinBytes) {
    const DocumentOutline outline = ScanDocumentOutline(xml);
    if (outline.eligible && outline.cuts.size() >= 2) {
      std::optional<Result<Instance>> sharded =
          CompressSharded(xml, options, outline, stats);
      if (sharded.has_value()) {
        if (stats != nullptr) stats->parse_seconds = timer.Seconds();
        return *std::move(sharded);
      }
      // A shard failed (or degenerated to one slice): start over on the
      // sequential path, which reports the canonical error.
      if (stats != nullptr) {
        stats->tree_nodes = 0;
        stats->text_bytes = 0;
        stats->shards = 1;
      }
    }
  }

  std::optional<xml::StringMatcher> matcher;
  if (!options.patterns.empty()) {
    XCQ_ASSIGN_OR_RETURN(matcher,
                         xml::StringMatcher::Build(options.patterns));
  }
  if (stats != nullptr) stats->dag_reserve = reserve_hint;
  CompressorHandler handler(options, matcher ? &*matcher : nullptr, stats,
                            reserve_hint);
  xml::SaxParser parser;
  XCQ_RETURN_IF_ERROR(parser.Parse(xml, &handler));
  XCQ_ASSIGN_OR_RETURN(Instance instance, handler.Finish());
  if (stats != nullptr) stats->parse_seconds = timer.Seconds();
  return instance;
}

Result<Instance> CompressXml(std::string_view xml,
                             const CompressOptions& options) {
  return CompressXmlWithStats(xml, options, nullptr);
}

}  // namespace xcq
