#ifndef XCQ_COMPRESS_COMPRESSOR_H_
#define XCQ_COMPRESS_COMPRESSOR_H_

/// \file compressor.h
/// One-pass construction of the minimal compressed instance from XML text
/// (Sec. 2.2 + Sec. 4 of the paper).
///
/// The compressor is a SAX handler that keeps "a stack for DAG nodes
/// under construction and a hash table of existing nodes already in the
/// compressed instance". When an element closes, its children are already
/// interned, so the redundancy check is a single hash probe. String
/// constraints are matched on the fly by the Aho–Corasick automaton and
/// become labels of the enclosing elements before those elements are
/// interned — so string-match information participates in the
/// bisimulation, exactly as the paper's query-specific instances require.
///
/// Label modes mirror the two rows of Fig. 6 plus the per-query setting
/// of Fig. 7:
///  * kNone    ("−"): bare structure, all tags erased.
///  * kAllTags ("+"): one relation per distinct tag.
///  * kSchema       : only the given tags and string patterns, i.e. the
///                    information a specific query needs.

#include <string>
#include <string_view>
#include <vector>

#include "xcq/instance/instance.h"
#include "xcq/util/result.h"

namespace xcq {

/// \brief Which node labels the compressed instance carries.
enum class LabelMode {
  kNone,
  kAllTags,
  kSchema,
};

/// \brief Compression configuration.
struct CompressOptions {
  LabelMode mode = LabelMode::kAllTags;
  /// Tags to track (kSchema mode only).
  std::vector<std::string> tags;
  /// String constraints to match (<= 64). The resulting relations are
  /// named `Schema::StringRelationName(pattern)`.
  std::vector<std::string> patterns;
  /// Lanes for sharded compression (docs/PARALLELISM.md §3): the
  /// document is split at top-level subtree boundaries, each slice is
  /// parsed and hash-consed against a thread-local DagBuilder, and the
  /// shard DAGs are merged in document order — producing an instance
  /// *bit-identical* (vertex ids, relation ids, edges) to the
  /// sequential pass. 1 = the single-pass compressor. Sharding is
  /// skipped (sequential fallback, same output) for small documents,
  /// documents whose top level does not split, and whenever string
  /// `patterns` are requested — pattern matches may span subtree
  /// boundaries, which only the sequential matcher can observe.
  size_t threads = 1;
};

/// \brief Parses `xml` and returns its minimal compressed instance.
///
/// The instance's root is the synthetic `#doc` vertex above the document
/// element (labeled with relation "#doc" in kAllTags mode, or when
/// "#doc" is listed in `options.tags`).
Result<Instance> CompressXml(std::string_view xml,
                             const CompressOptions& options = {});

/// \brief Statistics of the most interesting intermediate quantities,
/// returned alongside the instance by `CompressXmlWithStats`.
struct CompressRunStats {
  uint64_t tree_nodes = 0;     ///< Skeleton nodes seen (incl. #doc).
  uint64_t text_bytes = 0;     ///< Character-data bytes fed to matching.
  uint64_t pattern_hits = 0;   ///< Pattern occurrences reported.
  double parse_seconds = 0.0;  ///< Wall time of the parse+compress pass.
  /// Parallel shards the pass actually used (1 = sequential, whether by
  /// request or by fallback — see CompressOptions::threads).
  uint64_t shards = 1;
  /// Vertex-count hint the pass's main DagBuilder hash-cons table was
  /// reserved for: derived from the input byte count on a sequential
  /// pass, from the exact summed shard vertex counts for a sharded
  /// pass's merge builder (0 = default small table).
  uint64_t dag_reserve = 0;
};

Result<Instance> CompressXmlWithStats(std::string_view xml,
                                      const CompressOptions& options,
                                      CompressRunStats* stats);

}  // namespace xcq

#endif  // XCQ_COMPRESS_COMPRESSOR_H_
