#ifndef XCQ_COMPRESS_COMMON_EXTENSION_H_
#define XCQ_COMPRESS_COMMON_EXTENSION_H_

/// \file common_extension.h
/// Reducts and common extensions (Sec. 2.3, Lemma 2.7).
///
/// Two instances obtained from the same document but carrying different
/// labeling information (say, tag sets in one and string-match sets in
/// the other) are *compatible*; their *common extension* carries both
/// labelings at once. The construction is the product construction for
/// finite automata, built lazily over reachable state pairs only, so the
/// running time is linear in the size of the *output* — at worst the
/// uncompressed tree, in practice barely larger than the inputs.

#include <string_view>

#include "xcq/instance/instance.h"
#include "xcq/util/result.h"

namespace xcq {

struct CommonExtensionOptions {
  /// Re-minimize the product (the lazy product yields the least upper
  /// bound in the bisimilarity lattice, which may not be minimal for the
  /// union schema).
  bool minimize_result = false;
  /// Abort with kResourceExhausted past this many product vertices.
  uint64_t max_vertices = 100'000'000;
};

/// \brief Computes a common extension of `a` and `b`.
///
/// Fails with `kIncompatible` if the instances do not describe the same
/// tree, or if a relation name they share disagrees on any paired vertex
/// (i.e. the shared reducts are not equivalent).
Result<Instance> CommonExtension(const Instance& a, const Instance& b,
                                 const CommonExtensionOptions& options = {});

/// \brief The σ'-reduct I|σ' (Sec. 2.3): same DAG, only the relations
/// whose names appear in `keep`. Unknown names are ignored.
Instance Reduct(const Instance& instance,
                const std::vector<std::string>& keep);

}  // namespace xcq

#endif  // XCQ_COMPRESS_COMMON_EXTENSION_H_
