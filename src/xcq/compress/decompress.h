#ifndef XCQ_COMPRESS_DECOMPRESS_H_
#define XCQ_COMPRESS_DECOMPRESS_H_

/// \file decompress.h
/// Full decompression: materializes the unique tree-instance T(I)
/// equivalent to a DAG instance (Prop. 2.2).
///
/// Decompression can blow up exponentially (Sec. 3.4), so it is guarded
/// by a node budget and fails with `kResourceExhausted` when exceeded.
/// Production code should prefer the DAG-arithmetic counters in
/// instance/stats.h; full decompression exists for result decoding,
/// round-trip tests, and the differential-testing oracle.

#include <cstdint>
#include <string>
#include <vector>

#include "xcq/instance/instance.h"
#include "xcq/tree/tree_skeleton.h"
#include "xcq/util/bitset.h"
#include "xcq/util/result.h"

namespace xcq {

/// \brief T(I) with relations transported to tree nodes.
struct DecompressedTree {
  /// Shape of T(I). Tags are synthesized: if the originating vertex is a
  /// member of exactly one non-`str:` relation, that relation's name is
  /// the tag; otherwise "#node".
  TreeSkeleton tree;
  /// For each tree node, the DAG vertex it expands (|Π(v)| fibers).
  std::vector<VertexId> origin;
  /// Live relation names of the instance, in instance id order.
  std::vector<std::string> relation_names;
  /// Per relation, the set of tree nodes whose origin vertex is a member.
  std::vector<DynamicBitset> relation_sets;

  /// The node set for `name`; empty set if unknown.
  DynamicBitset RelationSet(std::string_view name) const;
};

struct DecompressOptions {
  /// Abort with kResourceExhausted when T(I) would exceed this many nodes.
  uint64_t max_nodes = 50'000'000;
};

/// \brief Expands `instance` to its equivalent tree.
Result<DecompressedTree> Decompress(const Instance& instance,
                                    const DecompressOptions& options = {});

}  // namespace xcq

#endif  // XCQ_COMPRESS_DECOMPRESS_H_
