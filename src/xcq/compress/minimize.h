#ifndef XCQ_COMPRESS_MINIMIZE_H_
#define XCQ_COMPRESS_MINIMIZE_H_

/// \file minimize.h
/// Movement inside the lattice of bisimilarity relations (Sec. 2.2).
///
/// Every class of equivalent instances forms a lattice whose maximum is
/// the tree-instance T(I) and whose minimum is the unique minimal
/// instance M(I). `Minimize` maps any instance to M(I) without
/// decompressing; `InstanceFromTree` produces the maximum element from a
/// labeled tree (used by tests and the uncompressed baseline).

#include <string>
#include <vector>

#include "xcq/instance/instance.h"
#include "xcq/tree/tree_builder.h"
#include "xcq/util/result.h"

namespace xcq {

/// \brief Computes the minimal instance equivalent to `input`
/// (Prop. 2.5/2.6): hash-consing over the reachable vertices in
/// children-first order. Unreachable vertices are dropped; live relations
/// are preserved by name.
Result<Instance> Minimize(const Instance& input);

/// \brief Builds the (uncompressed) tree-instance of a labeled tree:
/// one vertex per tree node, no sharing.
///
/// Relations: in kAllTags mode one per distinct tag; in kSchema mode one
/// per listed tag; plus one `str:` relation per pattern of the
/// `LabeledTree`. Minimizing the result equals the streaming compressor's
/// output on the same document — a property the tests rely on.
struct TreeInstanceOptions {
  bool all_tags = true;
  /// Tags to label when `all_tags` is false.
  std::vector<std::string> tags;
};

Result<Instance> InstanceFromTree(const LabeledTree& labeled,
                                  const TreeInstanceOptions& options = {});

}  // namespace xcq

#endif  // XCQ_COMPRESS_MINIMIZE_H_
