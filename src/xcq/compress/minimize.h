#ifndef XCQ_COMPRESS_MINIMIZE_H_
#define XCQ_COMPRESS_MINIMIZE_H_

/// \file minimize.h
/// Movement inside the lattice of bisimilarity relations (Sec. 2.2).
///
/// Every class of equivalent instances forms a lattice whose maximum is
/// the tree-instance T(I) and whose minimum is the unique minimal
/// instance M(I). `Minimize` maps any instance to M(I) without
/// decompressing; `InstanceFromTree` produces the maximum element from a
/// labeled tree (used by tests and the uncompressed baseline).
///
/// Two minimization passes exist:
///  * `Minimize` — the full pass: re-hashes every reachable vertex and
///    rebuilds a fresh instance. O(reachable instance) per call, always.
///  * `MinimizeInPlace` — the incremental pass: re-canonicalizes only
///    the vertices recorded dirty since the previous pass (splits,
///    edge rewrites, result-relation flips), folding duplicates into the
///    persistent hash-cons table kept in `Instance::minimize_cache()`.
///    This is the serving hot path: all hashing, table maintenance, and
///    rebuild work scales with the dirty set instead of the whole DAG.
///    The pass still pays one pointer walk over the reachable DAG per
///    call (reachability + height ordering), so its floor is
///    O(reachable |V| + |E|) — cheap next to the full pass's re-hash of
///    every label set and wholesale instance rebuild, but not sublinear.
/// See docs/INTERNALS.md for the algorithm and a worked example.

#include <string>
#include <vector>

#include "xcq/instance/instance.h"
#include "xcq/tree/tree_builder.h"
#include "xcq/util/cancel.h"
#include "xcq/util/result.h"

namespace xcq {

/// \brief Computes the minimal instance equivalent to `input`
/// (Prop. 2.5/2.6): hash-consing over the reachable vertices in
/// children-first order. Unreachable vertices are dropped; live relations
/// are preserved by name.
Result<Instance> Minimize(const Instance& input);

/// \brief Tuning knobs for `MinimizeInPlace`.
struct InPlaceMinimizeOptions {
  /// The in-place pass leaves merged-away vertices behind as unreachable
  /// garbage (vertex ids must stay stable for the cache). When the
  /// garbage fraction of the vertex array exceeds this ratio, the pass
  /// falls back to one full `Minimize` rebuild, which compacts ids,
  /// drops schema tombstones, and reseeds the cache on the next call.
  /// <= 0 disables compaction.
  double compact_garbage_ratio = 0.5;
  /// Cooperative cancellation, polled between height buckets (and on a
  /// vertex stride during reseeding). A cancelled pass returns the
  /// token's status with the instance structurally consistent — merges
  /// already applied are tree-preserving — but invalidates the
  /// hash-cons cache, so the next pass reseeds. Borrowed; may be null.
  const CancelToken* cancel = nullptr;
};

/// \brief Counters reported by one `MinimizeInPlace` call.
struct InPlaceMinimizeStats {
  bool skipped = false;    ///< Cache valid and dirty set empty: no work.
  bool reseeded = false;   ///< Cache was (re)built by a full seeding pass.
  bool compacted = false;  ///< Garbage ratio triggered a full rebuild.
  uint64_t dirty = 0;      ///< Dirty vertices processed (incl. cascades).
  uint64_t merged = 0;     ///< Vertices folded into an existing one.
  uint64_t reachable_vertices = 0;  ///< After the pass (0 when skipped).
  uint64_t reachable_edges = 0;     ///< RLE edges after (0 when skipped).
  double seconds = 0.0;
};

/// \brief Re-minimizes `*instance` in place, bottom-up from the dirty
/// vertices recorded by the instance (consumed via `TakeDirtyVertices`),
/// against the persistent hash-cons table in `instance->minimize_cache()`.
///
/// Contract: since the cache was last valid, every structural change
/// (edges, splits) must have been recorded while dirty tracking was on,
/// and every live-relation membership change must have been marked via
/// `MarkVertexDirty` by the caller (`QuerySession` diffs the result
/// column). Changing the *set* of live relations is detected via a
/// schema fingerprint and triggers a full reseeding pass, as does the
/// first call on a fresh instance.
///
/// Equivalent to `Minimize` on the reachable part: after the call the
/// reachable subgraph is the minimal instance M(I) (merged vertices
/// linger unreachable until compaction — see
/// `InPlaceMinimizeOptions::compact_garbage_ratio`).
Status MinimizeInPlace(Instance* instance,
                       const InPlaceMinimizeOptions& options = {},
                       InPlaceMinimizeStats* stats = nullptr);

/// \brief Builds the (uncompressed) tree-instance of a labeled tree:
/// one vertex per tree node, no sharing.
///
/// Relations: in kAllTags mode one per distinct tag; in kSchema mode one
/// per listed tag; plus one `str:` relation per pattern of the
/// `LabeledTree`. Minimizing the result equals the streaming compressor's
/// output on the same document — a property the tests rely on.
struct TreeInstanceOptions {
  bool all_tags = true;
  /// Tags to label when `all_tags` is false.
  std::vector<std::string> tags;
};

Result<Instance> InstanceFromTree(const LabeledTree& labeled,
                                  const TreeInstanceOptions& options = {});

}  // namespace xcq

#endif  // XCQ_COMPRESS_MINIMIZE_H_
