#include "xcq/compress/minimize.h"

#include <algorithm>
#include <unordered_map>

#include "xcq/compress/dag_builder.h"
#include "xcq/util/string_util.h"

namespace xcq {

Result<Instance> Minimize(const Instance& input) {
  if (input.vertex_count() == 0 || input.root() == kNoVertex) {
    return Status::InvalidArgument("Minimize: empty instance");
  }

  // Dense label ids for live relations, in schema-id order; names carry
  // over to the output so equivalence is preserved relation-by-relation.
  const std::vector<RelationId> live = input.LiveRelations();
  std::vector<std::string> names;
  names.reserve(live.size());
  for (RelationId r : live) names.push_back(input.schema().Name(r));

  // Per-vertex sorted label lists, built column-by-column: the outer loop
  // ascends over dense ids, so each vertex's list is already sorted.
  std::vector<std::vector<RelationId>> labels(input.vertex_count());
  for (size_t dense = 0; dense < live.size(); ++dense) {
    input.RelationBits(live[dense]).ForEach([&](size_t v) {
      labels[v].push_back(static_cast<RelationId>(dense));
    });
  }

  DagBuilder builder;
  std::vector<VertexId> remap(input.vertex_count(), kNoVertex);
  std::vector<Edge> edges_scratch;
  for (VertexId v : input.PostOrder()) {
    edges_scratch.clear();
    for (const Edge& e : input.Children(v)) {
      // Children interned first (post-order); merging runs here re-joins
      // edges whose distinct children collapsed to one canonical vertex.
      AppendEdgeRle(&edges_scratch, Edge{remap[e.child], e.count});
    }
    remap[v] = builder.Intern(labels[v], edges_scratch);
  }
  return builder.Finish(remap[input.root()], names);
}

Result<Instance> InstanceFromTree(const LabeledTree& labeled,
                                  const TreeInstanceOptions& options) {
  const TreeSkeleton& tree = labeled.tree;
  if (tree.empty()) {
    return Status::InvalidArgument("InstanceFromTree: empty tree");
  }

  Instance instance;
  // Vertex ids coincide with tree node ids (both preorder).
  for (TreeNodeId n = 0; n < tree.node_count(); ++n) instance.AddVertex();

  std::vector<Edge> edges;
  for (TreeNodeId n = 0; n < tree.node_count(); ++n) {
    edges.clear();
    for (TreeNodeId c = tree.FirstChild(n); c != kNoTreeNode;
         c = tree.NextSibling(c)) {
      // Distinct tree nodes: every run has multiplicity 1 by construction.
      edges.push_back(Edge{c, 1});
    }
    instance.SetEdges(n, edges);
  }
  instance.SetRoot(tree.root());

  // Pattern relations.
  for (size_t p = 0; p < labeled.patterns.size(); ++p) {
    const RelationId r = instance.AddRelation(
        Schema::StringRelationName(labeled.patterns[p]));
    instance.MutableRelationBits(r) = labeled.pattern_sets[p];
  }

  // Tag relations.
  if (options.all_tags) {
    for (TreeNodeId n = 0; n < tree.node_count(); ++n) {
      const RelationId r = instance.AddRelation(tree.TagName(n));
      instance.SetBit(r, n);
    }
  } else {
    for (const std::string& tag : options.tags) {
      const RelationId r = instance.AddRelation(tag);
      const TagId tag_id = tree.tag_table().Find(tag);
      if (tag_id == TagTable::kNoTag) continue;
      for (TreeNodeId n = 0; n < tree.node_count(); ++n) {
        if (tree.Tag(n) == tag_id) instance.SetBit(r, n);
      }
    }
  }
  return instance;
}

}  // namespace xcq
