#include "xcq/compress/minimize.h"

#include <algorithm>
#include <unordered_map>

#include "xcq/compress/dag_builder.h"
#include "xcq/util/hash.h"
#include "xcq/util/string_util.h"
#include "xcq/util/timer.h"

namespace xcq {

namespace {

/// Fingerprint of the live relation *name set* (order-independent): the
/// cache's stored signatures are valid only while this set is unchanged.
uint64_t SchemaFingerprint(std::vector<uint64_t> name_hashes) {
  std::sort(name_hashes.begin(), name_hashes.end());
  Hasher hasher;
  hasher.Add(name_hashes.size());
  for (const uint64_t h : name_hashes) hasher.Add(h);
  return hasher.Finish();
}

/// Finishes a vertex-signature hash from its (commutative) label-hash
/// sum and current RLE child runs. Never returns 0 — the cache uses 0 as
/// "not in the table".
uint64_t SignatureFromLabelSum(const Instance& instance, uint64_t labels,
                               VertexId v) {
  Hasher hasher;
  hasher.Add(labels);
  const std::span<const Edge> edges = instance.Children(v);
  hasher.Add(edges.size());
  for (const Edge& e : edges) {
    hasher.Add(e.child);
    hasher.Add(e.count);
  }
  const uint64_t h = hasher.Finish();
  return h == 0 ? 1 : h;
}

/// Commutative hash sum over the live-relation memberships of `v`
/// (combined over relation-name hashes, so relation ids may churn
/// without disturbing stored signatures).
uint64_t LabelSum(const Instance& instance,
                  const std::vector<RelationId>& live,
                  const std::vector<uint64_t>& name_hash, VertexId v) {
  uint64_t labels = 0;
  for (size_t i = 0; i < live.size(); ++i) {
    if (instance.Test(live[i], v)) labels += Mix64(name_hash[i]);
  }
  return labels;
}

/// Exact signature equality: same membership in every live relation and
/// identical child runs. Both vertices belong to `instance`.
bool SameSignature(const Instance& instance,
                   const std::vector<RelationId>& live, VertexId a,
                   VertexId b) {
  const std::span<const Edge> ea = instance.Children(a);
  const std::span<const Edge> eb = instance.Children(b);
  if (ea.size() != eb.size()) return false;
  for (size_t i = 0; i < ea.size(); ++i) {
    if (ea[i] != eb[i]) return false;
  }
  for (const RelationId r : live) {
    if (instance.Test(r, a) != instance.Test(r, b)) return false;
  }
  return true;
}

void EraseCacheEntry(MinimizeCache* cache, VertexId v) {
  const uint64_t h = cache->vertex_hash[v];
  if (h == 0) return;
  const auto [lo, hi] = cache->table.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == v) {
      cache->table.erase(it);
      break;
    }
  }
  cache->vertex_hash[v] = 0;
}

}  // namespace

Result<Instance> Minimize(const Instance& input) {
  if (input.vertex_count() == 0 || input.root() == kNoVertex) {
    return Status::InvalidArgument("Minimize: empty instance");
  }

  // Dense label ids for live relations, in schema-id order; names carry
  // over to the output so equivalence is preserved relation-by-relation.
  const std::vector<RelationId> live = input.LiveRelations();
  std::vector<std::string> names;
  names.reserve(live.size());
  for (RelationId r : live) names.push_back(input.schema().Name(r));

  // Per-vertex sorted label lists, built column-by-column: the outer loop
  // ascends over dense ids, so each vertex's list is already sorted.
  std::vector<std::vector<RelationId>> labels(input.vertex_count());
  for (size_t dense = 0; dense < live.size(); ++dense) {
    input.RelationBits(live[dense]).ForEach([&](size_t v) {
      labels[v].push_back(static_cast<RelationId>(dense));
    });
  }

  DagBuilder builder;
  std::vector<VertexId> remap(input.vertex_count(), kNoVertex);
  std::vector<Edge> edges_scratch;
  // `input` is only read; the cached order is safe to iterate in place.
  for (VertexId v : input.EnsureTraversal().order) {
    edges_scratch.clear();
    for (const Edge& e : input.Children(v)) {
      // Children interned first (post-order); merging runs here re-joins
      // edges whose distinct children collapsed to one canonical vertex.
      AppendEdgeRle(&edges_scratch, Edge{remap[e.child], e.count});
    }
    remap[v] = builder.Intern(labels[v], edges_scratch);
  }
  return builder.Finish(remap[input.root()], names);
}

Status MinimizeInPlace(Instance* instance,
                       const InPlaceMinimizeOptions& options,
                       InPlaceMinimizeStats* stats) {
  if (instance == nullptr) {
    return Status::InvalidArgument("MinimizeInPlace: instance is null");
  }
  if (instance->vertex_count() == 0 || instance->root() == kNoVertex) {
    return Status::InvalidArgument("MinimizeInPlace: empty instance");
  }
  Timer timer;
  InPlaceMinimizeStats local;
  InPlaceMinimizeStats& out = stats != nullptr ? *stats : local;
  out = InPlaceMinimizeStats{};

  // Entry poll: nothing consumed yet, so a dead request aborts with
  // the dirty set and cache fully intact.
  if (options.cancel != nullptr) {
    XCQ_RETURN_IF_ERROR(options.cancel->Check());
  }

  MinimizeCache& cache = instance->minimize_cache();
  std::vector<VertexId> dirty_in = instance->TakeDirtyVertices();
  // The pass itself rewrites edges; do not track its own mutations.
  const bool was_tracking = instance->dirty_tracking();
  instance->SetDirtyTracking(false);

  const std::vector<RelationId> live = instance->LiveRelations();
  std::vector<uint64_t> name_hash;
  name_hash.reserve(live.size());
  for (const RelationId r : live) {
    name_hash.push_back(HashString(instance->schema().Name(r)));
  }
  const uint64_t fingerprint = SchemaFingerprint(name_hash);
  const bool reseed =
      !cache.valid || cache.schema_fingerprint != fingerprint;

  if (!reseed && dirty_in.empty()) {
    // Nothing changed since the last pass: the reachable part is still
    // minimal and every table entry is still accurate.
    instance->SetDirtyTracking(was_tracking);
    out.skipped = true;
    out.seconds = timer.Seconds();
    return Status::OK();
  }

  // Copied (not referenced): the pass below rewrites edges, and the
  // compaction fallback re-reads the cache, which would rebuild under a
  // live reference. On the serving hot path the copy is served from the
  // cache the evaluation just left behind — no extra walk.
  const std::vector<VertexId> post = instance->EnsureTraversal().order;
  const size_t n = instance->vertex_count();

  std::vector<uint8_t> in_post(n, 0);
  for (const VertexId v : post) in_post[v] = 1;

  std::vector<uint8_t> is_dirty(n, 0);
  size_t reachable_dirty = 0;
  bool do_reseed = reseed;
  if (!do_reseed) {
    cache.vertex_hash.resize(n, 0);  // vertices added since the last pass
    for (const VertexId v : dirty_in) {
      if (v < n && in_post[v] && !is_dirty[v]) {
        is_dirty[v] = 1;
        ++reachable_dirty;
      }
    }
    // When most of the DAG is dirty anyway (e.g. a whole-document sweep
    // flipped every result bit), per-entry table maintenance costs more
    // than rebuilding the table outright: escalate to a reseed.
    if (reachable_dirty * 2 >= post.size()) do_reseed = true;
  }

  // Mid-pass cancellation. Every committed merge is tree-preserving,
  // so the instance is consistent at any bucket/stride boundary — but
  // the dirty set is already consumed and the table partially updated,
  // so the cache is declared invalid: the next pass reseeds instead of
  // trusting partial bookkeeping.
  const auto abort_cancelled = [&](const Status& cancelled) {
    cache.valid = false;
    instance->SetDirtyTracking(was_tracking);
    out.seconds = timer.Seconds();
    return cancelled;
  };

  // remap[v] != kNoVertex: v was folded into that vertex. Chains can
  // form (a -> b, later b -> c), so canonical() chases; cycles cannot
  // occur because merged vertices leave the table before anyone can
  // merge into them.
  std::vector<VertexId> remap(n, kNoVertex);
  const auto canonical = [&remap](VertexId v) {
    while (remap[v] != kNoVertex) v = remap[v];
    return v;
  };

  // Processes one vertex: re-points its child runs at canonical
  // vertices, recomputes its signature, then either merges it into an
  // equal table entry or records it as the canonical carrier. Returns
  // the merge target, or kNoVertex if v stays canonical.
  std::vector<Edge> scratch;
  const auto process = [&](VertexId v, uint64_t label_sum) {
    scratch.clear();
    for (const Edge& e : instance->Children(v)) {
      AppendEdgeRle(&scratch, Edge{canonical(e.child), e.count});
    }
    const std::span<const Edge> current = instance->Children(v);
    if (scratch.size() != current.size() ||
        !std::equal(scratch.begin(), scratch.end(), current.begin())) {
      instance->SetEdges(v, scratch);
    }
    const uint64_t h = SignatureFromLabelSum(*instance, label_sum, v);
    const auto [lo, hi] = cache.table.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      // Stale entries of unreachable vertices linger until compaction;
      // never merge into those.
      if (it->second != v && in_post[it->second] &&
          SameSignature(*instance, live, it->second, v)) {
        return it->second;
      }
    }
    cache.table.emplace(h, v);
    cache.vertex_hash[v] = h;
    return kNoVertex;
  };

  if (do_reseed) {
    // Full seeding pass: hash-cons every reachable vertex bottom-up
    // (children before parents, so each vertex sees final children).
    // Label sums are accumulated column-by-column — word-parallel over
    // the relation bitsets instead of per-vertex membership probes.
    cache.table.clear();
    cache.vertex_hash.assign(n, 0);
    cache.valid = true;
    cache.schema_fingerprint = fingerprint;
    out.reseeded = true;
    std::vector<uint64_t> label_sum(n, 0);
    for (size_t i = 0; i < live.size(); ++i) {
      const uint64_t mixed = Mix64(name_hash[i]);
      instance->RelationBits(live[i]).ForEach(
          [&label_sum, mixed](size_t v) { label_sum[v] += mixed; });
    }
    size_t processed = 0;
    for (const VertexId v : post) {
      if (options.cancel != nullptr && ++processed % 4096 == 0) {
        const Status cancelled = options.cancel->Check();
        if (!cancelled.ok()) return abort_cancelled(cancelled);
      }
      ++out.dirty;
      const VertexId target = process(v, label_sum[v]);
      if (target != kNoVertex) {
        remap[v] = target;
        ++out.merged;
      }
    }
  } else {
    // Incremental pass. Work is ordered by *height* (longest distance to
    // a leaf): bisimilar vertices always have equal height and canonical
    // re-pointing preserves it, so when a vertex is processed all of its
    // (current and future) children are final, and a merge can only
    // cascade dirtiness into strictly higher buckets — always ahead of
    // the cursor. (A plain post-order sweep does not have this property:
    // merges can direct edges at table entries later in the order.)
    std::vector<uint32_t> height(n, 0);
    uint32_t max_height = 0;
    for (const VertexId v : post) {
      uint32_t h = 0;
      for (const Edge& e : instance->Children(v)) {
        h = std::max(h, height[e.child] + 1);
      }
      height[v] = h;
      max_height = std::max(max_height, h);
    }

    // Reverse adjacency (CSR layout) over the reachable part, built
    // lazily at the first merge. Edges into a vertex are owned by
    // strictly higher vertices, which cannot have been processed yet, so
    // the pass-start snapshot is accurate whenever a cascade needs it.
    std::vector<uint32_t> parent_offset;
    std::vector<VertexId> parent_data;
    const auto ensure_parents = [&]() {
      if (!parent_offset.empty()) return;
      parent_offset.assign(n + 1, 0);
      for (const VertexId v : post) {
        for (const Edge& e : instance->Children(v)) {
          ++parent_offset[e.child + 1];
        }
      }
      for (size_t i = 1; i <= n; ++i) parent_offset[i] += parent_offset[i - 1];
      parent_data.resize(parent_offset[n]);
      std::vector<uint32_t> cursor(parent_offset.begin(),
                                   parent_offset.end() - 1);
      for (const VertexId v : post) {
        for (const Edge& e : instance->Children(v)) {
          parent_data[cursor[e.child]++] = v;
        }
      }
    };

    std::vector<std::vector<VertexId>> buckets(max_height + 1);
    for (const VertexId v : post) {
      if (is_dirty[v]) buckets[height[v]].push_back(v);
    }
    for (uint32_t h = 0; h <= max_height; ++h) {
      if (options.cancel != nullptr && !buckets[h].empty()) {
        const Status cancelled = options.cancel->Check();
        if (!cancelled.ok()) return abort_cancelled(cancelled);
      }
      for (size_t i = 0; i < buckets[h].size(); ++i) {
        const VertexId v = buckets[h][i];
        ++out.dirty;
        EraseCacheEntry(&cache, v);
        const VertexId target =
            process(v, LabelSum(*instance, live, name_hash, v));
        if (target == kNoVertex) continue;
        remap[v] = target;
        ++out.merged;
        ensure_parents();
        for (uint32_t p = parent_offset[v]; p < parent_offset[v + 1]; ++p) {
          const VertexId parent = parent_data[p];
          if (!is_dirty[parent]) {
            is_dirty[parent] = 1;
            buckets[height[parent]].push_back(parent);
          }
        }
      }
    }
  }

  const VertexId new_root = canonical(instance->root());
  if (new_root != instance->root()) instance->SetRoot(new_root);

  for (const VertexId v : post) {
    if (remap[v] != kNoVertex) continue;
    ++out.reachable_vertices;
    out.reachable_edges += instance->Children(v).size();
  }

  instance->SetDirtyTracking(was_tracking);

  // Merged-away vertices (and any split leftovers) stay behind as
  // unreachable garbage; amortize reclamation with an occasional full
  // rebuild, which also drops schema tombstones and compacts the edge
  // arena. The rebuilt instance starts with an invalid cache, so the
  // next pass reseeds.
  const uint64_t garbage = n - out.reachable_vertices;
  if (options.compact_garbage_ratio > 0 &&
      static_cast<double>(garbage) >
          options.compact_garbage_ratio * static_cast<double>(n)) {
    XCQ_ASSIGN_OR_RETURN(Instance compacted, Minimize(*instance));
    *instance = std::move(compacted);
    instance->SetDirtyTracking(was_tracking);
    out.compacted = true;
  }
  out.seconds = timer.Seconds();
  return Status::OK();
}

Result<Instance> InstanceFromTree(const LabeledTree& labeled,
                                  const TreeInstanceOptions& options) {
  const TreeSkeleton& tree = labeled.tree;
  if (tree.empty()) {
    return Status::InvalidArgument("InstanceFromTree: empty tree");
  }

  Instance instance;
  // Vertex ids coincide with tree node ids (both preorder).
  for (TreeNodeId n = 0; n < tree.node_count(); ++n) instance.AddVertex();

  std::vector<Edge> edges;
  for (TreeNodeId n = 0; n < tree.node_count(); ++n) {
    edges.clear();
    for (TreeNodeId c = tree.FirstChild(n); c != kNoTreeNode;
         c = tree.NextSibling(c)) {
      // Distinct tree nodes: every run has multiplicity 1 by construction.
      edges.push_back(Edge{c, 1});
    }
    instance.SetEdges(n, edges);
  }
  instance.SetRoot(tree.root());

  // Pattern relations.
  for (size_t p = 0; p < labeled.patterns.size(); ++p) {
    const RelationId r = instance.AddRelation(
        Schema::StringRelationName(labeled.patterns[p]));
    instance.MutableRelationBits(r) = labeled.pattern_sets[p];
  }

  // Tag relations.
  if (options.all_tags) {
    for (TreeNodeId n = 0; n < tree.node_count(); ++n) {
      const RelationId r = instance.AddRelation(tree.TagName(n));
      instance.SetBit(r, n);
    }
  } else {
    for (const std::string& tag : options.tags) {
      const RelationId r = instance.AddRelation(tag);
      const TagId tag_id = tree.tag_table().Find(tag);
      if (tag_id == TagTable::kNoTag) continue;
      for (TreeNodeId n = 0; n < tree.node_count(); ++n) {
        if (tree.Tag(n) == tag_id) instance.SetBit(r, n);
      }
    }
  }
  return instance;
}

}  // namespace xcq
