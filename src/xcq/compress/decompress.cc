#include "xcq/compress/decompress.h"

#include "xcq/util/string_util.h"

namespace xcq {

DynamicBitset DecompressedTree::RelationSet(std::string_view name) const {
  for (size_t i = 0; i < relation_names.size(); ++i) {
    if (relation_names[i] == name) return relation_sets[i];
  }
  return DynamicBitset(tree.node_count());
}

Result<DecompressedTree> Decompress(const Instance& instance,
                                    const DecompressOptions& options) {
  if (instance.vertex_count() == 0 || instance.root() == kNoVertex) {
    return Status::InvalidArgument("Decompress: empty instance");
  }

  DecompressedTree out;
  const std::vector<RelationId> live = instance.LiveRelations();

  // Synthesized tags: the unique non-"str:" relation of a vertex, if any.
  std::vector<TagId> vertex_tag(instance.vertex_count(),
                                TagTable::kNoTag);
  {
    const TagId fallback = out.tree.tag_table().Intern("#node");
    std::vector<uint8_t> tag_count(instance.vertex_count(), 0);
    for (RelationId r : live) {
      std::string_view pattern;
      if (Schema::ParseStringRelationName(instance.schema().Name(r),
                                          &pattern)) {
        continue;
      }
      const TagId tag = out.tree.tag_table().Intern(instance.schema().Name(r));
      instance.RelationBits(r).ForEach([&](size_t v) {
        vertex_tag[v] = tag_count[v] == 0 ? tag : fallback;
        if (tag_count[v] < 2) ++tag_count[v];
      });
    }
    for (VertexId v = 0; v < instance.vertex_count(); ++v) {
      if (vertex_tag[v] == TagTable::kNoTag) vertex_tag[v] = fallback;
    }
  }

  // Iterative preorder expansion with multiplicities.
  struct StackEntry {
    VertexId vertex;
    TreeNodeId tree_node;
    uint32_t run_index;       ///< Next child run of `vertex` to expand.
    uint64_t run_remaining;   ///< Occurrences left in the current run.
  };
  std::vector<StackEntry> stack;
  const TreeNodeId root =
      out.tree.AppendNode(kNoTreeNode, vertex_tag[instance.root()]);
  out.origin.push_back(instance.root());
  stack.push_back(StackEntry{instance.root(), root, 0, 0});
  uint64_t produced = 1;

  while (!stack.empty()) {
    StackEntry& top = stack.back();
    const std::span<const Edge> children = instance.Children(top.vertex);
    if (top.run_remaining == 0) {
      if (top.run_index >= children.size()) {
        out.tree.SealNode(top.tree_node);
        stack.pop_back();
        continue;
      }
      top.run_remaining = children[top.run_index].count;
    }
    const VertexId child_vertex = children[top.run_index].child;
    --top.run_remaining;
    if (top.run_remaining == 0) ++top.run_index;

    if (++produced > options.max_nodes) {
      return Status::ResourceExhausted(
          StrFormat("decompression exceeds %llu nodes",
                    static_cast<unsigned long long>(options.max_nodes)));
    }
    const TreeNodeId child_node =
        out.tree.AppendNode(top.tree_node, vertex_tag[child_vertex]);
    out.origin.push_back(child_vertex);
    stack.push_back(StackEntry{child_vertex, child_node, 0, 0});
  }

  // Transport relations: tree node n is in R iff origin[n] is.
  out.relation_names.reserve(live.size());
  out.relation_sets.reserve(live.size());
  for (RelationId r : live) {
    out.relation_names.push_back(instance.schema().Name(r));
    DynamicBitset bits(out.tree.node_count());
    const DynamicBitset& vertex_bits = instance.RelationBits(r);
    for (TreeNodeId n = 0; n < out.tree.node_count(); ++n) {
      if (vertex_bits.Test(out.origin[n])) bits.Set(n);
    }
    out.relation_sets.push_back(std::move(bits));
  }
  XCQ_RETURN_IF_ERROR(out.tree.Validate());
  return out;
}

}  // namespace xcq
