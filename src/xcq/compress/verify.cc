#include "xcq/compress/verify.h"

#include <algorithm>

#include "xcq/compress/minimize.h"
#include "xcq/util/string_util.h"

namespace xcq {

Result<bool> IsMinimal(const Instance& instance) {
  XCQ_ASSIGN_OR_RETURN(const Instance minimal, Minimize(instance));
  return minimal.vertex_count() == instance.ReachableCount();
}

Result<bool> AreEquivalent(const Instance& a, const Instance& b) {
  XCQ_ASSIGN_OR_RETURN(const Instance ma, Minimize(a));
  XCQ_ASSIGN_OR_RETURN(const Instance mb, Minimize(b));
  if (ma.vertex_count() != mb.vertex_count()) return false;

  // Live relation name sets must coincide.
  std::vector<std::string> names_a = ma.schema().LiveNames();
  std::vector<std::string> names_b = mb.schema().LiveNames();
  std::sort(names_a.begin(), names_a.end());
  std::sort(names_b.begin(), names_b.end());
  if (names_a != names_b) return false;

  // Align relation ids by name.
  std::vector<std::pair<RelationId, RelationId>> aligned;
  for (RelationId ra : ma.LiveRelations()) {
    const RelationId rb = mb.FindRelation(ma.schema().Name(ra));
    aligned.emplace_back(ra, rb);
  }

  // Simultaneous DFS: a consistent, structure-preserving pairing of two
  // *minimal* instances is exactly an isomorphism (Prop. 2.5 uniqueness).
  std::vector<VertexId> mapped(ma.vertex_count(), kNoVertex);
  std::vector<std::pair<VertexId, VertexId>> stack;
  mapped[ma.root()] = mb.root();
  stack.emplace_back(ma.root(), mb.root());
  while (!stack.empty()) {
    const auto [va, vb] = stack.back();
    stack.pop_back();
    for (const auto& [ra, rb] : aligned) {
      if (ma.Test(ra, va) != mb.Test(rb, vb)) return false;
    }
    const std::span<const Edge> ea = ma.Children(va);
    const std::span<const Edge> eb = mb.Children(vb);
    if (ea.size() != eb.size()) return false;
    for (size_t i = 0; i < ea.size(); ++i) {
      if (ea[i].count != eb[i].count) return false;
      const VertexId ca = ea[i].child;
      const VertexId cb = eb[i].child;
      if (mapped[ca] == kNoVertex) {
        mapped[ca] = cb;
        stack.emplace_back(ca, cb);
      } else if (mapped[ca] != cb) {
        return false;
      }
    }
  }
  return true;
}

namespace {

struct PathEnumerator {
  const Instance& instance;
  RelationId relation;
  uint64_t limit;
  uint64_t visited = 0;
  std::set<std::vector<uint64_t>> paths;
  std::vector<uint64_t> current;

  Status Visit(VertexId v) {
    if (++visited > limit) {
      return Status::ResourceExhausted(
          "edge-path enumeration exceeds the configured limit");
    }
    if (relation == kNoRelation || instance.Test(relation, v)) {
      paths.insert(current);
    }
    uint64_t position = 0;
    for (const Edge& e : instance.Children(v)) {
      for (uint64_t k = 0; k < e.count; ++k) {
        ++position;
        current.push_back(position);
        XCQ_RETURN_IF_ERROR(Visit(e.child));
        current.pop_back();
      }
    }
    return Status::OK();
  }
};

}  // namespace

Result<std::set<std::vector<uint64_t>>> EnumerateEdgePaths(
    const Instance& instance, RelationId r, uint64_t limit) {
  if (instance.vertex_count() == 0 || instance.root() == kNoVertex) {
    return Status::InvalidArgument("EnumerateEdgePaths: empty instance");
  }
  PathEnumerator enumerator{instance, r, limit, 0, {}, {}};
  XCQ_RETURN_IF_ERROR(enumerator.Visit(instance.root()));
  return std::move(enumerator.paths);
}

}  // namespace xcq
