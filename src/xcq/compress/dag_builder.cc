#include "xcq/compress/dag_builder.h"

#include <cassert>

#include "xcq/util/hash.h"
#include "xcq/util/string_util.h"

namespace xcq {

namespace {

uint64_t HashVertexData(std::span<const RelationId> labels,
                        std::span<const Edge> edges) {
  Hasher hasher;
  hasher.Add(labels.size());
  for (RelationId label : labels) hasher.Add(label);
  hasher.Add(edges.size());
  for (const Edge& e : edges) {
    hasher.Add(e.child);
    hasher.Add(e.count);
  }
  return hasher.Finish();
}

}  // namespace

DagBuilder::DagBuilder(size_t expected_vertices)
    : interned_(expected_vertices < 16 ? 16 : expected_vertices,
                VertexHash{this}, VertexEq{this}) {
  if (expected_vertices > 0) {
    // The bucket array is the part worth pre-sizing in full: a rehash
    // re-buckets every interned vertex, and buckets cost 8 bytes each.
    // The record/label/edge arenas grow by amortized doubling with
    // trivially-copyable elements, so an overshooting hint (the
    // compressor's is an upper bound derived from input bytes — far too
    // high for text-heavy or highly redundant documents) must not
    // commit tens of bytes per phantom vertex up front; reserving an
    // eighth still skips the churny early doublings while capping the
    // waste on a wild hint at a few bytes per hinted vertex.
    const size_t arena_hint = expected_vertices / 8 + 16;
    records_.reserve(arena_hint);
    labels_.reserve(arena_hint);
    edges_.reserve(2 * arena_hint);
  }
}

uint64_t DagBuilder::HashOf(VertexId v) const {
  return v == kStaged ? staged_hash_ : records_[v].hash;
}

std::span<const RelationId> DagBuilder::LabelsOf(VertexId v) const {
  if (v == kStaged) return staged_labels_;
  const Record& r = records_[v];
  return {labels_.data() + r.label_offset, r.label_length};
}

std::span<const Edge> DagBuilder::EdgesOf(VertexId v) const {
  if (v == kStaged) return staged_edges_;
  const Record& r = records_[v];
  return {edges_.data() + r.edge_offset, r.edge_length};
}

size_t DagBuilder::VertexHash::operator()(VertexId v) const {
  return static_cast<size_t>(builder->HashOf(v));
}

bool DagBuilder::VertexEq::operator()(VertexId a, VertexId b) const {
  if (a == b) return true;
  const std::span<const RelationId> la = builder->LabelsOf(a);
  const std::span<const RelationId> lb = builder->LabelsOf(b);
  if (la.size() != lb.size()) return false;
  const std::span<const Edge> ea = builder->EdgesOf(a);
  const std::span<const Edge> eb = builder->EdgesOf(b);
  if (ea.size() != eb.size()) return false;
  for (size_t i = 0; i < la.size(); ++i) {
    if (la[i] != lb[i]) return false;
  }
  for (size_t i = 0; i < ea.size(); ++i) {
    if (ea[i] != eb[i]) return false;
  }
  return true;
}

VertexId DagBuilder::Intern(std::span<const RelationId> labels,
                            std::span<const Edge> edges) {
  staged_hash_ = HashVertexData(labels, edges);
  staged_labels_ = labels;
  staged_edges_ = edges;
  const auto it = interned_.find(kStaged);
  if (it != interned_.end()) return *it;

  const VertexId id = static_cast<VertexId>(records_.size());
  Record record;
  record.hash = staged_hash_;
  record.label_offset = static_cast<uint32_t>(labels_.size());
  record.label_length = static_cast<uint32_t>(labels.size());
  record.edge_offset = edges_.size();
  record.edge_length = static_cast<uint32_t>(edges.size());
  labels_.insert(labels_.end(), labels.begin(), labels.end());
  edges_.insert(edges_.end(), edges.begin(), edges.end());
  records_.push_back(record);
  interned_.insert(id);
  return id;
}

Result<Instance> DagBuilder::Finish(
    VertexId root, const std::vector<std::string>& relation_names) {
  if (root >= records_.size()) {
    return Status::InvalidArgument("DagBuilder::Finish: bad root id");
  }
  Instance instance;
  for (size_t v = 0; v < records_.size(); ++v) {
    const VertexId id = instance.AddVertex();
    (void)id;
    assert(id == v);
  }
  for (VertexId v = 0; v < records_.size(); ++v) {
    instance.SetEdges(v, EdgesOf(v));
  }
  for (size_t r = 0; r < relation_names.size(); ++r) {
    const RelationId id = instance.AddRelation(relation_names[r]);
    if (id != r) {
      return Status::InvalidArgument(StrFormat(
          "duplicate relation name '%s'", relation_names[r].c_str()));
    }
  }
  for (VertexId v = 0; v < records_.size(); ++v) {
    for (RelationId label : LabelsOf(v)) {
      if (label >= relation_names.size()) {
        return Status::InvalidArgument(
            StrFormat("label id %u has no relation name", label));
      }
      instance.SetBit(label, v);
    }
  }
  instance.SetRoot(root);

  interned_.clear();
  records_.clear();
  labels_.clear();
  edges_.clear();
  return instance;
}

}  // namespace xcq
