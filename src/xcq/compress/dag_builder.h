#ifndef XCQ_COMPRESS_DAG_BUILDER_H_
#define XCQ_COMPRESS_DAG_BUILDER_H_

/// \file dag_builder.h
/// Hash-consing construction of minimal DAG instances (Sec. 2.2).
///
/// The builder maintains "a hash table of nodes previously inserted into
/// the compressed instance" (the paper's words): `Intern` is called
/// bottom-up — a vertex only after all its children — and returns either
/// an existing vertex with identical labels and child sequence or a fresh
/// one. Because two vertices with equal labels and pairwise-identified
/// equal children are bisimilar, the resulting instance is the *minimal*
/// instance of its equivalence class (Prop. 2.5), and each Intern costs
/// amortized O(labels + children) (Prop. 2.6).

#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "xcq/instance/instance.h"
#include "xcq/util/result.h"

namespace xcq {

/// \brief Bottom-up interning builder for minimal instances.
class DagBuilder {
 public:
  /// `expected_vertices` pre-sizes the hash-cons table (in full — a
  /// rehash re-buckets everything) and a fraction of the record / label
  /// / edge arenas (amortized doubling covers the rest, so a hint that
  /// overshoots on text-heavy documents wastes little). Callers size it
  /// from what they know — the compressor from the input byte count (a
  /// markup element costs tens of bytes of text, and distinct vertices
  /// never exceed elements), the shard merge from the exact per-shard
  /// vertex totals. 0 keeps the small default.
  explicit DagBuilder(size_t expected_vertices = 0);

  // The hash-table functors capture `this`; the builder must stay put.
  DagBuilder(const DagBuilder&) = delete;
  DagBuilder& operator=(const DagBuilder&) = delete;
  DagBuilder(DagBuilder&&) = delete;
  DagBuilder& operator=(DagBuilder&&) = delete;

  /// Returns the canonical vertex with exactly these labels and children.
  ///
  /// \param labels  strictly increasing relation ids.
  /// \param edges   RLE-canonical child runs; every child id must have
  ///                been returned by an earlier Intern call.
  VertexId Intern(std::span<const RelationId> labels,
                  std::span<const Edge> edges);

  /// Number of distinct vertices interned so far.
  size_t vertex_count() const { return records_.size(); }

  /// Total RLE edges over all interned vertices.
  uint64_t rle_edge_count() const { return edges_.size(); }

  /// The labels / child runs of an interned vertex (views valid until
  /// the next Intern). Used by the sharded compressor's merge, which
  /// replays one builder's vertices into another under an id remap.
  std::span<const RelationId> Labels(VertexId v) const {
    return LabelsOf(v);
  }
  std::span<const Edge> Edges(VertexId v) const { return EdgesOf(v); }

  /// Moves the built DAG into an `Instance`. `relation_names[i]` names
  /// the relation whose id `i` was used in `Intern` label lists. The
  /// builder is left empty.
  Result<Instance> Finish(VertexId root,
                          const std::vector<std::string>& relation_names);

 private:
  struct Record {
    uint64_t hash = 0;
    uint32_t label_offset = 0;
    uint32_t label_length = 0;
    uint64_t edge_offset = 0;
    uint32_t edge_length = 0;
  };

  /// Sentinel id meaning "the staged candidate in the scratch buffers".
  static constexpr VertexId kStaged = kNoVertex;

  uint64_t HashOf(VertexId v) const;
  std::span<const RelationId> LabelsOf(VertexId v) const;
  std::span<const Edge> EdgesOf(VertexId v) const;

  struct VertexHash {
    const DagBuilder* builder;
    size_t operator()(VertexId v) const;
  };
  struct VertexEq {
    const DagBuilder* builder;
    bool operator()(VertexId a, VertexId b) const;
  };

  std::vector<Record> records_;
  std::vector<RelationId> labels_;
  std::vector<Edge> edges_;

  // Staged candidate (compared against by VertexHash/VertexEq when the
  // probed id is kStaged).
  uint64_t staged_hash_ = 0;
  std::span<const RelationId> staged_labels_;
  std::span<const Edge> staged_edges_;

  std::unordered_set<VertexId, VertexHash, VertexEq> interned_;
};

}  // namespace xcq

#endif  // XCQ_COMPRESS_DAG_BUILDER_H_
