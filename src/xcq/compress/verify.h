#ifndef XCQ_COMPRESS_VERIFY_H_
#define XCQ_COMPRESS_VERIFY_H_

/// \file verify.h
/// Semantic checkers for the formal notions of Sec. 2: instance
/// equivalence (Def. 2.1), minimality (Prop. 2.5), and the edge-path
/// semantics Π used to define both. These are the oracles the test suite
/// leans on; the enumeration-based checks are exponential and exist only
/// for small instances.

#include <set>
#include <vector>

#include "xcq/instance/instance.h"
#include "xcq/util/result.h"

namespace xcq {

/// \brief True iff the reachable part of `instance` is minimal: no two
/// distinct reachable vertices are bisimilar (Sec. 2.2).
Result<bool> IsMinimal(const Instance& instance);

/// \brief True iff `a` and `b` are equivalent in the sense of Def. 2.1:
/// Π(V^a) = Π(V^b) and Π(S^a) = Π(S^b) for every relation name S (live
/// relation name sets must coincide).
///
/// Decided in linear time by minimizing both sides and checking DAG
/// isomorphism (the minimal instance is unique up to isomorphism).
Result<bool> AreEquivalent(const Instance& a, const Instance& b);

/// \brief Enumerates Π(S) — every edge-path from the root to a vertex in
/// relation `r` — as explicit integer sequences (1-based positions, per
/// the paper). Exponential; fails with kResourceExhausted past `limit`
/// paths. Pass `r == kNoRelation` for Π(V), the paths to all vertices.
Result<std::set<std::vector<uint64_t>>> EnumerateEdgePaths(
    const Instance& instance, RelationId r, uint64_t limit = 1u << 20);

}  // namespace xcq

#endif  // XCQ_COMPRESS_VERIFY_H_
