#ifndef XCQ_COMPRESS_SHARD_OUTLINE_H_
#define XCQ_COMPRESS_SHARD_OUTLINE_H_

/// \file shard_outline.h
/// Byte-range outline of an XML document for sharded compression
/// (docs/PARALLELISM.md §3).
///
/// `ScanDocumentOutline` finds the positions at which a document may be
/// split into independently parseable fragments: the end of the
/// document element's start tag, the boundary after each of its child
/// subtrees, and the start of its end tag. The scan tracks only markup
/// structure (tags, comments, CDATA, PIs, quoted attribute values) —
/// names and well-formedness are left to the real parser, which every
/// shard runs in fragment mode.
///
/// The scanner is deliberately conservative: anything it does not fully
/// understand (doctype inside content, stray markup, truncation, a
/// childless document element) makes the document *ineligible*, and the
/// compressor falls back to the sequential single-pass path — which
/// either succeeds or reports the canonical parse error. A document the
/// scanner mis-measures can therefore never be silently mis-compressed:
/// a wrong cut produces an unbalanced fragment, the shard parse fails,
/// and the sequential path takes over.

#include <cstddef>
#include <string_view>
#include <vector>

namespace xcq {

struct DocumentOutline {
  /// False: use the sequential path (reason irrelevant — see above).
  bool eligible = false;
  /// Document element name (view into the scanned text).
  std::string_view root_tag;
  /// Just past the '>' of the document element's start tag.
  size_t content_begin = 0;
  /// At the '<' of the document element's end tag.
  size_t content_end = 0;
  /// Position just past each top-level child subtree's closing '>'.
  /// Slice k of a shard plan spans [previous cut, cut_k); text between
  /// subtrees rides with the slice that follows it, trailing text
  /// before the end tag with the last slice (whose end is content_end).
  std::vector<size_t> cuts;
};

DocumentOutline ScanDocumentOutline(std::string_view xml);

}  // namespace xcq

#endif  // XCQ_COMPRESS_SHARD_OUTLINE_H_
