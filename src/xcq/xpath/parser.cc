#include "xcq/xpath/parser.h"

#include <utility>

#include "xcq/util/string_util.h"
#include "xcq/xpath/lexer.h"

namespace xcq::xpath {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Run() {
    Query query;
    XCQ_ASSIGN_OR_RETURN(query.path, ParsePath());
    if (Peek().kind != TokenKind::kEnd) {
      return Error(StrFormat("unexpected %s after the end of the query",
                             TokenKindName(Peek().kind)));
    }
    return query;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  const Token& Take() { return tokens_[pos_++]; }

  bool Accept(TokenKind kind) {
    if (Peek().kind != kind) return false;
    ++pos_;
    return true;
  }

  Status Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return Error(StrFormat("expected %s, found %s", TokenKindName(kind),
                             TokenKindName(Peek().kind)));
    }
    ++pos_;
    return Status::OK();
  }

  Status Error(std::string message) const {
    return Status::ParseError(StrFormat("offset %zu: %s", Peek().offset,
                                        message.c_str()));
  }

  /// True if the upcoming tokens start a location step.
  bool AtStepStart() const {
    return Peek().kind == TokenKind::kName ||
           Peek().kind == TokenKind::kStar;
  }

  Result<LocationPath> ParsePath() {
    LocationPath path;
    bool pending_dos = false;  // a '//' awaiting its following step
    if (Accept(TokenKind::kSlash)) {
      path.absolute = true;
    } else if (Accept(TokenKind::kDoubleSlash)) {
      path.absolute = true;
      pending_dos = true;
    }
    if (!AtStepStart()) {
      if (path.absolute && !pending_dos) {
        return Error("'/' alone is not a query; add at least one step");
      }
      return Error("expected a location step");
    }
    while (true) {
      XCQ_RETURN_IF_ERROR(ParseStepInto(&path, pending_dos));
      pending_dos = false;
      if (Accept(TokenKind::kSlash)) {
        // continue
      } else if (Accept(TokenKind::kDoubleSlash)) {
        pending_dos = true;
      } else {
        break;
      }
      if (!AtStepStart()) {
        return Error("expected a location step after '/'");
      }
    }
    return path;
  }

  /// Parses one step; if `after_double_slash`, fuses the implicit
  /// descendant-or-self::* with the step when possible.
  Status ParseStepInto(LocationPath* path, bool after_double_slash) {
    Step step;
    if (Peek().kind == TokenKind::kName &&
        Peek(1).kind == TokenKind::kAxisSep) {
      XCQ_ASSIGN_OR_RETURN(step.axis, AxisFromName(Take().text));
      XCQ_RETURN_IF_ERROR(Expect(TokenKind::kAxisSep));
    }
    if (Accept(TokenKind::kStar)) {
      step.node_test = '*';
    } else if (Peek().kind == TokenKind::kName) {
      step.node_test = std::string(Take().text);
    } else {
      return Error("expected a node test (name or '*')");
    }
    while (Accept(TokenKind::kLBracket)) {
      XCQ_ASSIGN_OR_RETURN(std::unique_ptr<Condition> cond, ParseOr());
      XCQ_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
      step.predicates.push_back(std::move(cond));
    }
    if (after_double_slash) {
      // `//child::t` == descendant::t, `//self::t` == descendant-or-self::t;
      // other axes keep the explicit descendant-or-self::* step.
      if (step.axis == Axis::kChild) {
        step.axis = Axis::kDescendant;
      } else if (step.axis == Axis::kSelf) {
        step.axis = Axis::kDescendantOrSelf;
      } else {
        Step dos;
        dos.axis = Axis::kDescendantOrSelf;
        dos.node_test = '*';
        path->steps.push_back(std::move(dos));
      }
    }
    path->steps.push_back(std::move(step));
    return Status::OK();
  }

  Result<std::unique_ptr<Condition>> ParseOr() {
    XCQ_ASSIGN_OR_RETURN(std::unique_ptr<Condition> lhs, ParseAnd());
    while (Peek().kind == TokenKind::kName && Peek().text == "or" &&
           Peek(1).kind != TokenKind::kAxisSep) {
      Take();
      XCQ_ASSIGN_OR_RETURN(std::unique_ptr<Condition> rhs, ParseAnd());
      auto node = std::make_unique<Condition>();
      node->kind = Condition::Kind::kOr;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<std::unique_ptr<Condition>> ParseAnd() {
    XCQ_ASSIGN_OR_RETURN(std::unique_ptr<Condition> lhs, ParseUnary());
    while (Peek().kind == TokenKind::kName && Peek().text == "and" &&
           Peek(1).kind != TokenKind::kAxisSep) {
      Take();
      XCQ_ASSIGN_OR_RETURN(std::unique_ptr<Condition> rhs, ParseUnary());
      auto node = std::make_unique<Condition>();
      node->kind = Condition::Kind::kAnd;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<std::unique_ptr<Condition>> ParseUnary() {
    if (Peek().kind == TokenKind::kName && Peek().text == "not" &&
        Peek(1).kind == TokenKind::kLParen) {
      Take();
      Take();
      XCQ_ASSIGN_OR_RETURN(std::unique_ptr<Condition> inner, ParseOr());
      XCQ_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      auto node = std::make_unique<Condition>();
      node->kind = Condition::Kind::kNot;
      node->lhs = std::move(inner);
      return node;
    }
    if (Accept(TokenKind::kLParen)) {
      XCQ_ASSIGN_OR_RETURN(std::unique_ptr<Condition> inner, ParseOr());
      XCQ_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return inner;
    }
    if (Peek().kind == TokenKind::kString) {
      auto node = std::make_unique<Condition>();
      node->kind = Condition::Kind::kString;
      node->string_pattern = std::string(Take().text);
      return node;
    }
    if (AtStepStart() || Peek().kind == TokenKind::kSlash ||
        Peek().kind == TokenKind::kDoubleSlash) {
      auto node = std::make_unique<Condition>();
      node->kind = Condition::Kind::kPath;
      XCQ_ASSIGN_OR_RETURN(node->path, ParsePath());
      return node;
    }
    return Error(StrFormat("expected a condition, found %s",
                           TokenKindName(Peek().kind)));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text) {
  XCQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.Run();
}

}  // namespace xcq::xpath
