#ifndef XCQ_XPATH_LEXER_H_
#define XCQ_XPATH_LEXER_H_

/// \file lexer.h
/// Tokenizer for the Core XPath surface syntax.

#include <string_view>
#include <vector>

#include "xcq/util/result.h"

namespace xcq::xpath {

enum class TokenKind {
  kSlash,        ///< /
  kDoubleSlash,  ///< //
  kAxisSep,      ///< ::
  kLBracket,     ///< [
  kRBracket,     ///< ]
  kLParen,       ///< (
  kRParen,       ///< )
  kStar,         ///< *
  kName,         ///< element name or keyword (and / or / not)
  kString,       ///< "..." or '...' (text excludes the quotes)
  kEnd,          ///< end of input
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string_view text;  ///< Aliases the query string.
  size_t offset = 0;      ///< Byte offset in the query string.
};

/// \brief Tokenizes `query`. The returned tokens alias `query` and end
/// with a kEnd sentinel.
Result<std::vector<Token>> Tokenize(std::string_view query);

}  // namespace xcq::xpath

#endif  // XCQ_XPATH_LEXER_H_
