#include "xcq/xpath/lexer.h"

#include <cctype>

#include "xcq/util/string_util.h"

namespace xcq::xpath {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.';
}

}  // namespace

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kDoubleSlash:
      return "'//'";
    case TokenKind::kAxisSep:
      return "'::'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kName:
      return "name";
    case TokenKind::kString:
      return "string literal";
    case TokenKind::kEnd:
      return "end of query";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(std::string_view query) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < query.size()) {
    const char c = query[i];
    if (IsSpace(c)) {
      ++i;
      continue;
    }
    Token token;
    token.offset = i;
    switch (c) {
      case '/':
        if (i + 1 < query.size() && query[i + 1] == '/') {
          token.kind = TokenKind::kDoubleSlash;
          token.text = query.substr(i, 2);
          i += 2;
        } else {
          token.kind = TokenKind::kSlash;
          token.text = query.substr(i, 1);
          ++i;
        }
        break;
      case ':':
        if (i + 1 >= query.size() || query[i + 1] != ':') {
          return Status::ParseError(
              StrFormat("offset %zu: stray ':' (expected '::')", i));
        }
        token.kind = TokenKind::kAxisSep;
        token.text = query.substr(i, 2);
        i += 2;
        break;
      case '[':
        token.kind = TokenKind::kLBracket;
        token.text = query.substr(i, 1);
        ++i;
        break;
      case ']':
        token.kind = TokenKind::kRBracket;
        token.text = query.substr(i, 1);
        ++i;
        break;
      case '(':
        token.kind = TokenKind::kLParen;
        token.text = query.substr(i, 1);
        ++i;
        break;
      case ')':
        token.kind = TokenKind::kRParen;
        token.text = query.substr(i, 1);
        ++i;
        break;
      case '*':
        token.kind = TokenKind::kStar;
        token.text = query.substr(i, 1);
        ++i;
        break;
      case '"':
      case '\'': {
        const size_t close = query.find(c, i + 1);
        if (close == std::string_view::npos) {
          return Status::ParseError(
              StrFormat("offset %zu: unterminated string literal", i));
        }
        token.kind = TokenKind::kString;
        token.text = query.substr(i + 1, close - i - 1);
        i = close + 1;
        break;
      }
      default: {
        if (!IsNameStart(c)) {
          return Status::ParseError(
              StrFormat("offset %zu: unexpected character '%c'", i, c));
        }
        size_t end = i + 1;
        while (end < query.size() && IsNameChar(query[end])) ++end;
        token.kind = TokenKind::kName;
        token.text = query.substr(i, end - i);
        i = end;
        break;
      }
    }
    tokens.push_back(token);
  }
  tokens.push_back(Token{TokenKind::kEnd, {}, query.size()});
  return tokens;
}

}  // namespace xcq::xpath
