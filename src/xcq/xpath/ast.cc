#include "xcq/xpath/ast.h"

#include <algorithm>

#include "xcq/util/string_util.h"

namespace xcq::xpath {

Axis InverseAxis(Axis axis) {
  switch (axis) {
    case Axis::kSelf:
      return Axis::kSelf;
    case Axis::kChild:
      return Axis::kParent;
    case Axis::kParent:
      return Axis::kChild;
    case Axis::kDescendant:
      return Axis::kAncestor;
    case Axis::kDescendantOrSelf:
      return Axis::kAncestorOrSelf;
    case Axis::kAncestor:
      return Axis::kDescendant;
    case Axis::kAncestorOrSelf:
      return Axis::kDescendantOrSelf;
    case Axis::kFollowingSibling:
      return Axis::kPrecedingSibling;
    case Axis::kPrecedingSibling:
      return Axis::kFollowingSibling;
    case Axis::kFollowing:
      return Axis::kPreceding;
    case Axis::kPreceding:
      return Axis::kFollowing;
  }
  return Axis::kSelf;
}

const char* AxisName(Axis axis) {
  switch (axis) {
    case Axis::kSelf:
      return "self";
    case Axis::kChild:
      return "child";
    case Axis::kParent:
      return "parent";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kAncestor:
      return "ancestor";
    case Axis::kAncestorOrSelf:
      return "ancestor-or-self";
    case Axis::kFollowingSibling:
      return "following-sibling";
    case Axis::kPrecedingSibling:
      return "preceding-sibling";
    case Axis::kFollowing:
      return "following";
    case Axis::kPreceding:
      return "preceding";
  }
  return "?";
}

Result<Axis> AxisFromName(std::string_view name) {
  static constexpr std::pair<std::string_view, Axis> kAxes[] = {
      {"self", Axis::kSelf},
      {"child", Axis::kChild},
      {"parent", Axis::kParent},
      {"descendant", Axis::kDescendant},
      {"descendant-or-self", Axis::kDescendantOrSelf},
      {"ancestor", Axis::kAncestor},
      {"ancestor-or-self", Axis::kAncestorOrSelf},
      {"following-sibling", Axis::kFollowingSibling},
      {"preceding-sibling", Axis::kPrecedingSibling},
      {"following", Axis::kFollowing},
      {"preceding", Axis::kPreceding},
  };
  for (const auto& [axis_name, axis] : kAxes) {
    if (axis_name == name) return axis;
  }
  return Status::ParseError(StrFormat("unknown axis '%.*s'",
                                      static_cast<int>(name.size()),
                                      name.data()));
}

bool IsUpwardAxis(Axis axis) {
  switch (axis) {
    case Axis::kSelf:
    case Axis::kParent:
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
      return true;
    default:
      return false;
  }
}

namespace {

void AppendPath(const LocationPath& path, std::string* out);

void AppendCondition(const Condition& condition, std::string* out) {
  switch (condition.kind) {
    case Condition::Kind::kAnd:
    case Condition::Kind::kOr: {
      out->push_back('(');
      AppendCondition(*condition.lhs, out);
      out->append(condition.kind == Condition::Kind::kAnd ? " and "
                                                          : " or ");
      AppendCondition(*condition.rhs, out);
      out->push_back(')');
      break;
    }
    case Condition::Kind::kNot:
      out->append("not(");
      AppendCondition(*condition.lhs, out);
      out->push_back(')');
      break;
    case Condition::Kind::kPath:
      AppendPath(condition.path, out);
      break;
    case Condition::Kind::kString:
      out->push_back('"');
      out->append(condition.string_pattern);
      out->push_back('"');
      break;
  }
}

void AppendStep(const Step& step, std::string* out) {
  out->append(AxisName(step.axis));
  out->append("::");
  out->append(step.node_test);
  for (const auto& predicate : step.predicates) {
    out->push_back('[');
    AppendCondition(*predicate, out);
    out->push_back(']');
  }
}

void AppendPath(const LocationPath& path, std::string* out) {
  if (path.absolute) out->push_back('/');
  for (size_t i = 0; i < path.steps.size(); ++i) {
    if (i != 0) out->push_back('/');
    AppendStep(path.steps[i], out);
  }
}

void CollectFromPath(const LocationPath& path, QueryRequirements* out);

void CollectFromCondition(const Condition& condition,
                          QueryRequirements* out) {
  switch (condition.kind) {
    case Condition::Kind::kAnd:
    case Condition::Kind::kOr:
      CollectFromCondition(*condition.lhs, out);
      CollectFromCondition(*condition.rhs, out);
      break;
    case Condition::Kind::kNot:
      CollectFromCondition(*condition.lhs, out);
      break;
    case Condition::Kind::kPath:
      CollectFromPath(condition.path, out);
      break;
    case Condition::Kind::kString:
      out->patterns.push_back(condition.string_pattern);
      break;
  }
}

void CollectFromPath(const LocationPath& path, QueryRequirements* out) {
  for (const Step& step : path.steps) {
    if (step.node_test != "*") out->tags.push_back(step.node_test);
    for (const auto& predicate : step.predicates) {
      CollectFromCondition(*predicate, out);
    }
  }
}

void SortUnique(std::vector<std::string>* values) {
  std::sort(values->begin(), values->end());
  values->erase(std::unique(values->begin(), values->end()), values->end());
}

}  // namespace

std::string ToString(const LocationPath& path) {
  std::string out;
  AppendPath(path, &out);
  return out;
}

std::string ToString(const Condition& condition) {
  std::string out;
  AppendCondition(condition, &out);
  return out;
}

std::string Query::ToString() const { return xpath::ToString(path); }

QueryRequirements CollectRequirements(const Query& query) {
  QueryRequirements out;
  CollectFromPath(query.path, &out);
  SortUnique(&out.tags);
  SortUnique(&out.patterns);
  return out;
}

}  // namespace xcq::xpath
