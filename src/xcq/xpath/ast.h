#ifndef XCQ_XPATH_AST_H_
#define XCQ_XPATH_AST_H_

/// \file ast.h
/// Abstract syntax of Core XPath (Sec. 3.1, following [14] = Gottlob,
/// Koch, Pichler, "Efficient Algorithms for Processing XPath Queries").
///
/// The fragment covers all eleven node-set axes, node tests (tag or `*`),
/// nested predicates with `and` / `or` / `not(...)` / parentheses,
/// relative and root-relative paths inside predicates, and the paper's
/// string constraints `["abc"]` (true at a node whose string value
/// contains "abc"). This is exactly the language of the Appendix-A
/// benchmark queries.

#include <memory>
#include <string>
#include <vector>

#include "xcq/util/result.h"

namespace xcq::xpath {

/// \brief The XPath axes that map node sets to node sets.
enum class Axis {
  kSelf,
  kChild,
  kParent,
  kDescendant,
  kDescendantOrSelf,
  kAncestor,
  kAncestorOrSelf,
  kFollowingSibling,
  kPrecedingSibling,
  kFollowing,
  kPreceding,
};

/// \brief The inverse axis: `m in χ({n})` iff `n in Inverse(χ)({m})`.
/// Predicate paths are evaluated through inverses (Sec. 3.1's "reverse
/// paths in conditions").
Axis InverseAxis(Axis axis);

/// \brief XPath surface name, e.g. "descendant-or-self".
const char* AxisName(Axis axis);

/// \brief Parses an axis name; error on unknown names.
Result<Axis> AxisFromName(std::string_view name);

/// \brief True for axes whose DAG implementation never splits vertices
/// (Prop. 3.3: self, parent, ancestor, ancestor-or-self).
bool IsUpwardAxis(Axis axis);

struct Condition;

/// \brief One location step: `axis::nodetest[pred]...`.
struct Step {
  Axis axis = Axis::kChild;
  /// Element name, or "*" to match any node.
  std::string node_test = "*";
  /// Conjunctively-applied predicates.
  std::vector<std::unique_ptr<Condition>> predicates;
};

/// \brief A location path; `absolute` paths start at the root, relative
/// ones at the context node(s).
struct LocationPath {
  bool absolute = false;
  std::vector<Step> steps;
};

/// \brief Predicate expression tree.
struct Condition {
  enum class Kind {
    kAnd,
    kOr,
    kNot,
    kPath,    ///< Existential path test.
    kString,  ///< String containment on the context node.
  };

  Kind kind;
  std::unique_ptr<Condition> lhs;  ///< kAnd/kOr left, kNot operand.
  std::unique_ptr<Condition> rhs;  ///< kAnd/kOr right.
  LocationPath path;               ///< kPath payload.
  std::string string_pattern;      ///< kString payload.
};

/// \brief A complete Core XPath query.
struct Query {
  LocationPath path;

  /// Round-trippable textual rendering (explicit axes, no abbreviations).
  std::string ToString() const;
};

std::string ToString(const LocationPath& path);
std::string ToString(const Condition& condition);

/// \brief Everything a query needs from the document: the tags it names
/// and the string constants it matches. Used to configure kSchema
/// compression so the instance carries exactly the relevant relations.
struct QueryRequirements {
  std::vector<std::string> tags;
  std::vector<std::string> patterns;
};

QueryRequirements CollectRequirements(const Query& query);

}  // namespace xcq::xpath

#endif  // XCQ_XPATH_AST_H_
