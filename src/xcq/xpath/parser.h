#ifndef XCQ_XPATH_PARSER_H_
#define XCQ_XPATH_PARSER_H_

/// \file parser.h
/// Recursive-descent parser for Core XPath.
///
/// Accepted grammar (abbreviations desugared during parsing):
///
///   query     := path
///   path      := ('/' | '//')? step (('/' | '//') step)*
///   step      := (axis '::')? nodetest predicate*
///   axis      := self | child | parent | descendant | descendant-or-self
///              | ancestor | ancestor-or-self | following-sibling
///              | preceding-sibling | following | preceding
///   nodetest  := NAME | '*'
///   predicate := '[' or-expr ']'
///   or-expr   := and-expr ('or' and-expr)*
///   and-expr  := unary ('and' unary)*
///   unary     := 'not' '(' or-expr ')' | '(' or-expr ')' | STRING | path
///
/// `//` desugars to an explicit `descendant-or-self::*` step; when it is
/// directly followed by a child (resp. self) step, the pair is fused into
/// a single descendant (resp. descendant-or-self) step, which is the form
/// the paper's algebra examples use (Ex. 3.5: `//a/b` becomes
/// child(descendant({root}) ∩ L_a) ∩ L_b).

#include <string_view>

#include "xcq/util/result.h"
#include "xcq/xpath/ast.h"

namespace xcq::xpath {

/// \brief Parses `text` into a Core XPath query.
Result<Query> ParseQuery(std::string_view text);

}  // namespace xcq::xpath

#endif  // XCQ_XPATH_PARSER_H_
