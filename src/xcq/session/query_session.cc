#include "xcq/session/query_session.h"

#include <algorithm>

#include "xcq/algebra/compiler.h"
#include "xcq/compress/common_extension.h"
#include "xcq/compress/minimize.h"
#include "xcq/instance/stats.h"
#include "xcq/util/timer.h"
#include "xcq/xpath/parser.h"

namespace xcq {

Result<QuerySession> QuerySession::Open(std::string xml,
                                        SessionOptions options) {
  return QuerySession(std::move(xml), options);
}

Status QuerySession::EnsureLabels(const std::vector<std::string>& tags,
                                  const std::vector<std::string>& patterns,
                                  double* seconds) {
  Timer timer;
  std::vector<std::string> missing_tags;
  std::vector<std::string> missing_patterns;
  for (const std::string& tag : tags) {
    if (!tags_.count(tag)) missing_tags.push_back(tag);
  }
  for (const std::string& pattern : patterns) {
    if (!patterns_.count(pattern)) missing_patterns.push_back(pattern);
  }

  const bool fresh = !instance_.has_value() || !options_.reuse_instance;
  if (!fresh && missing_tags.empty() && missing_patterns.empty()) {
    *seconds = timer.Seconds();
    return Status::OK();  // everything already present — no re-parse
  }

  CompressOptions copts;
  copts.mode = LabelMode::kSchema;
  if (fresh) {
    // First query (or per-query mode): one scan with the full label set.
    copts.tags = tags;
    copts.patterns = patterns;
    XCQ_ASSIGN_OR_RETURN(Instance inst, CompressXml(xml_, copts));
    instance_ = std::move(inst);
    tags_ = {tags.begin(), tags.end()};
    patterns_ = {patterns.begin(), patterns.end()};
    if (!options_.reuse_instance) {
      // The per-query mode never accumulates.
      tags_.clear();
      patterns_.clear();
    }
    *seconds = timer.Seconds();
    return Status::OK();
  }

  // Reuse mode with missing labels: distill a small instance carrying
  // only what is missing, and merge it in (Sec. 2.3).
  copts.tags = missing_tags;
  copts.patterns = missing_patterns;
  XCQ_ASSIGN_OR_RETURN(const Instance addition, CompressXml(xml_, copts));
  XCQ_ASSIGN_OR_RETURN(Instance merged,
                       CommonExtension(*instance_, addition));
  if (options_.minimize_after_merge) {
    XCQ_ASSIGN_OR_RETURN(merged, Minimize(merged));
  }
  instance_ = std::move(merged);
  tags_.insert(missing_tags.begin(), missing_tags.end());
  patterns_.insert(missing_patterns.begin(), missing_patterns.end());
  *seconds = timer.Seconds();
  return Status::OK();
}

Result<QueryOutcome> QuerySession::Run(std::string_view query_text) {
  XCQ_ASSIGN_OR_RETURN(const xpath::Query query,
                       xpath::ParseQuery(query_text));
  XCQ_ASSIGN_OR_RETURN(const algebra::QueryPlan plan,
                       algebra::Compile(query));
  const xpath::QueryRequirements reqs = CollectRequirements(query);

  QueryOutcome outcome;
  XCQ_RETURN_IF_ERROR(
      EnsureLabels(reqs.tags, reqs.patterns, &outcome.label_seconds));

  XCQ_ASSIGN_OR_RETURN(
      const RelationId result,
      engine::Evaluate(&*instance_, plan, engine::EvalOptions{},
                       &outcome.stats));
  outcome.selected_dag_nodes = SelectedDagNodeCount(*instance_, result);
  outcome.selected_tree_nodes = SelectedTreeNodeCount(*instance_, result);
  return outcome;
}

}  // namespace xcq
