#include "xcq/session/query_session.h"

#include <algorithm>

#include "xcq/algebra/compiler.h"
#include "xcq/compress/common_extension.h"
#include "xcq/compress/decompress.h"
#include "xcq/compress/minimize.h"
#include "xcq/engine/batch.h"
#include "xcq/instance/stats.h"
#include "xcq/util/string_util.h"
#include "xcq/util/timer.h"
#include "xcq/xpath/parser.h"

namespace xcq {

namespace {

/// Inserts `items` into `out` preserving first-seen order, skipping
/// duplicates already in `seen`.
void MergeUnique(const std::vector<std::string>& items,
                 std::set<std::string>* seen,
                 std::vector<std::string>* out) {
  for (const std::string& item : items) {
    if (seen->insert(item).second) out->push_back(item);
  }
}

}  // namespace

xpath::QueryRequirements CollectBatchRequirements(
    const std::vector<xpath::Query>& queries) {
  xpath::QueryRequirements all;
  std::set<std::string> seen_tags;
  std::set<std::string> seen_patterns;
  for (const xpath::Query& query : queries) {
    const xpath::QueryRequirements reqs = CollectRequirements(query);
    MergeUnique(reqs.tags, &seen_tags, &all.tags);
    MergeUnique(reqs.patterns, &seen_patterns, &all.patterns);
  }
  return all;
}

Result<xpath::QueryRequirements> CollectBatchRequirements(
    const std::vector<std::string>& query_texts) {
  std::vector<xpath::Query> queries;
  queries.reserve(query_texts.size());
  for (const std::string& text : query_texts) {
    XCQ_ASSIGN_OR_RETURN(xpath::Query query, xpath::ParseQuery(text));
    queries.push_back(std::move(query));
  }
  return CollectBatchRequirements(queries);
}

Result<QuerySession> QuerySession::Open(std::string xml,
                                        SessionOptions options) {
  return QuerySession(std::move(xml), options);
}

Result<QuerySession> QuerySession::FromInstance(Instance instance,
                                                SessionOptions options) {
  XCQ_RETURN_IF_ERROR(instance.Validate());
  if (instance.vertex_count() == 0 || instance.root() == kNoVertex) {
    return Status::InvalidArgument(
        "QuerySession::FromInstance: instance has no root");
  }
  // There is no document to re-scan, so per-query mode is meaningless.
  options.reuse_instance = true;
  QuerySession session(std::string(), options);
  session.has_source_ = false;
  // Recover the tracked label sets from the live relations: `str:`
  // relations are string patterns, everything else a tag (or a result /
  // temporary relation from an earlier evaluation, which is harmless to
  // track — queries cannot name `xcq:`-prefixed relations).
  for (const RelationId r : instance.LiveRelations()) {
    const std::string& name = instance.schema().Name(r);
    std::string_view pattern;
    if (Schema::ParseStringRelationName(name, &pattern)) {
      session.patterns_.insert(std::string(pattern));
    } else {
      session.tags_.insert(name);
    }
  }
  session.instance_ = std::move(instance);
  return session;
}

Status QuerySession::EnsureLabels(const std::vector<std::string>& tags,
                                  const std::vector<std::string>& patterns,
                                  double* seconds) {
  Timer timer;
  std::vector<std::string> missing_tags;
  std::vector<std::string> missing_patterns;
  for (const std::string& tag : tags) {
    if (!tags_.count(tag)) missing_tags.push_back(tag);
  }
  for (const std::string& pattern : patterns) {
    if (!patterns_.count(pattern)) missing_patterns.push_back(pattern);
  }

  const bool fresh = !instance_.has_value() || !options_.reuse_instance;
  if (!fresh && missing_tags.empty() && missing_patterns.empty()) {
    *seconds = timer.Seconds();
    return Status::OK();  // everything already present — no re-parse
  }

  if (!has_source_) {
    // Instance-only sessions have nothing to scan: surface exactly what
    // is missing instead of silently answering from absent relations.
    std::string detail;
    for (const std::string& tag : missing_tags) {
      detail += detail.empty() ? tag : ", " + tag;
    }
    for (const std::string& pattern : missing_patterns) {
      const std::string quoted = "\"" + pattern + "\"";
      detail += detail.empty() ? quoted : ", " + quoted;
    }
    return Status::NotFound(
        StrFormat("query needs labels not carried by the cached instance "
                  "and no source document is available: %s",
                  detail.c_str()));
  }

  CompressOptions copts;
  copts.mode = LabelMode::kSchema;
  copts.threads = options_.engine_threads;
  if (fresh) {
    // First query (or per-query mode): one scan with the full label set.
    copts.tags = tags;
    copts.patterns = patterns;
    ++source_parse_count_;
    XCQ_ASSIGN_OR_RETURN(Instance inst, CompressXml(xml_, copts));
    instance_ = std::move(inst);
    tags_ = {tags.begin(), tags.end()};
    patterns_ = {patterns.begin(), patterns.end()};
    if (!options_.reuse_instance) {
      // The per-query mode never accumulates.
      tags_.clear();
      patterns_.clear();
    }
    *seconds = timer.Seconds();
    return Status::OK();
  }

  // Reuse mode with missing labels: distill a small instance carrying
  // only what is missing, and merge it in (Sec. 2.3).
  copts.tags = missing_tags;
  copts.patterns = missing_patterns;
  ++source_parse_count_;
  XCQ_ASSIGN_OR_RETURN(const Instance addition, CompressXml(xml_, copts));
  XCQ_ASSIGN_OR_RETURN(Instance merged,
                       CommonExtension(*instance_, addition));
  if (options_.minimize_after_merge) {
    XCQ_ASSIGN_OR_RETURN(merged, Minimize(merged));
  }
  instance_ = std::move(merged);
  tags_.insert(missing_tags.begin(), missing_tags.end());
  patterns_.insert(missing_patterns.begin(), missing_patterns.end());
  *seconds = timer.Seconds();
  return Status::OK();
}

engine::EvalOptions QuerySession::MakeEvalOptions(
    const QueryControl& control) const {
  engine::EvalOptions eval_options;
  eval_options.threads = options_.engine_threads;
  eval_options.prune_sweeps = options_.prune_sweeps;
  eval_options.cancel = control.cancel;
  eval_options.max_sweep_visits = control.max_sweep_visits != 0
                                      ? control.max_sweep_visits
                                      : options_.max_sweep_visits;
  eval_options.max_split_growth = control.max_split_growth != 0
                                      ? control.max_split_growth
                                      : options_.max_split_growth;
  return eval_options;
}

Result<QueryOutcome> QuerySession::EvaluatePlan(
    const algebra::QueryPlan& plan, obs::QueryTrace* trace,
    const QueryControl& control) {
  QueryOutcome outcome;
  const bool incremental =
      options_.minimize_after_query && options_.incremental_minimize;

  // The incremental pass needs every structural change recorded and the
  // result-column delta: snapshot the previous result bits, then let the
  // instance track splits and edge rewrites through the evaluation.
  DynamicBitset previous_result;
  bool had_previous = false;
  if (incremental) {
    instance_->SetDirtyTracking(true);
    const RelationId prev =
        instance_->FindRelation(engine::kResultRelation);
    if (prev != kNoRelation) {
      previous_result = instance_->RelationBits(prev);
      had_previous = true;
    }
  }

  // The pruning oracle needs the exact pre-query instance; copy it
  // before the pruned evaluation mutates anything.
  std::optional<Instance> snapshot;
  if (options_.verify_pruned_sweeps && options_.prune_sweeps) {
    snapshot = *instance_;
  }

  const engine::EvalOptions eval_options = MakeEvalOptions(control);
  RelationId result = kNoRelation;
  {
    obs::QueryTrace::Scope sweep_span(trace, obs::Phase::kSweep);
    XCQ_ASSIGN_OR_RETURN(
        const RelationId sweep_result,
        engine::Evaluate(&*instance_, plan, eval_options, &outcome.stats));
    result = sweep_result;
  }
  if (trace != nullptr && outcome.stats.prune_bind_seconds > 0.0) {
    // The engine times pruner binding itself (it happens mid-Evaluate,
    // inside the sweep span); book it as a nested span whose start is
    // reconstructed from the evaluation total.
    const double eval_start =
        std::max(0.0, trace->Elapsed() - outcome.stats.seconds);
    trace->AddSpan(obs::Phase::kPruneBind, eval_start,
                   outcome.stats.prune_bind_seconds);
  }
  outcome.selected_dag_nodes = SelectedDagNodeCount(*instance_, result);
  outcome.selected_tree_nodes = SelectedTreeNodeCount(*instance_, result);
  if (snapshot.has_value()) {
    XCQ_RETURN_IF_ERROR(
        VerifyPrunedSweeps(std::move(*snapshot), plan, outcome, result));
  }
  if (options_.minimize_after_query) {
    // Counts were taken above; the result relation survives minimization
    // (vertices differing on it are not bisimilar), so enumeration over
    // `instance()` stays possible — just over the re-compressed DAG.
    obs::QueryTrace::Scope minimize_span(trace, obs::Phase::kMinimize);
    if (incremental) {
      MarkResultFlips(previous_result, had_previous, result);
      InPlaceMinimizeOptions mopts;
      mopts.cancel = control.cancel;
      InPlaceMinimizeStats mstats;
      // On a cancelled pass dirty tracking stays on and the cache is
      // invalidated, so the next pass reseeds — the instance itself is
      // already minimal-or-consistent either way.
      XCQ_RETURN_IF_ERROR(MinimizeInPlace(&*instance_, mopts, &mstats));
      instance_->SetDirtyTracking(false);
      outcome.minimize_seconds = mstats.seconds;
      if (options_.verify_incremental_minimize) {
        XCQ_RETURN_IF_ERROR(VerifyIncrementalMinimize());
      }
    } else {
      // The full pass rebuilds into a fresh instance, so mid-pass
      // cancellation points are unnecessary for consistency; one poll
      // up front keeps an expired request from paying for the rebuild.
      if (control.cancel != nullptr) {
        XCQ_RETURN_IF_ERROR(control.cancel->Check());
      }
      Timer timer;
      XCQ_ASSIGN_OR_RETURN(Instance minimal, Minimize(*instance_));
      instance_ = std::move(minimal);
      outcome.minimize_seconds = timer.Seconds();
    }
  }
  return outcome;
}

void QuerySession::MarkResultFlips(const DynamicBitset& previous,
                                   bool had_previous, RelationId result) {
  const DynamicBitset& current = instance_->RelationBits(result);
  if (!had_previous) {
    // First query: the whole selection is new. (The cache is invalid
    // before the first pass anyway, but keep the contract exact.)
    current.ForEach([this](size_t v) {
      instance_->MarkVertexDirty(static_cast<VertexId>(v));
    });
    return;
  }
  // Word-parallel XOR of the two columns. Bits past the previous size
  // belong to vertices created during this evaluation, which are already
  // dirty by construction.
  const std::vector<uint64_t>& before = previous.words();
  const std::vector<uint64_t>& after = current.words();
  const size_t words = std::min(before.size(), after.size());
  for (size_t w = 0; w < words; ++w) {
    uint64_t diff = before[w] ^ after[w];
    while (diff != 0) {
      const int bit = __builtin_ctzll(diff);
      instance_->MarkVertexDirty(
          static_cast<VertexId>(w * 64 + static_cast<size_t>(bit)));
      diff &= diff - 1;
    }
  }
}

Status QuerySession::VerifyIncrementalMinimize() const {
  XCQ_ASSIGN_OR_RETURN(Instance full, Minimize(*instance_));
  const uint64_t vertices = instance_->ReachableCount();
  const uint64_t edges = instance_->ReachableEdgeCount();
  if (vertices != full.vertex_count() ||
      edges != full.rle_edge_count()) {
    return Status::Internal(StrFormat(
        "incremental minimize diverged from the full pass: "
        "%llu vertices / %llu edges (incremental, reachable) vs "
        "%llu / %llu (full)",
        static_cast<unsigned long long>(vertices),
        static_cast<unsigned long long>(edges),
        static_cast<unsigned long long>(full.vertex_count()),
        static_cast<unsigned long long>(full.rle_edge_count())));
  }
  const RelationId mine =
      instance_->FindRelation(engine::kResultRelation);
  const RelationId theirs = full.FindRelation(engine::kResultRelation);
  if ((mine == kNoRelation) != (theirs == kNoRelation)) {
    return Status::Internal(
        "incremental minimize diverged: result relation presence");
  }
  if (mine != kNoRelation &&
      (SelectedDagNodeCount(*instance_, mine) !=
           SelectedDagNodeCount(full, theirs) ||
       SelectedTreeNodeCount(*instance_, mine) !=
           SelectedTreeNodeCount(full, theirs))) {
    return Status::Internal(
        "incremental minimize diverged: result selection counts");
  }
  return Status::OK();
}

Result<QueryOutcome> QuerySession::Run(std::string_view query_text,
                                       const QueryControl& control) {
  // A request that expired while queued should not pay for parsing or
  // a document scan; the engine re-polls throughout the evaluation.
  if (control.cancel != nullptr) {
    XCQ_RETURN_IF_ERROR(control.cancel->Check());
  }
  obs::QueryTrace trace;
  obs::QueryTrace::Scope parse_span(&trace, obs::Phase::kParse);
  XCQ_ASSIGN_OR_RETURN(const xpath::Query query,
                       xpath::ParseQuery(query_text));
  parse_span.Close();
  obs::QueryTrace::Scope compile_span(&trace, obs::Phase::kCompile);
  XCQ_ASSIGN_OR_RETURN(const algebra::QueryPlan plan,
                       algebra::Compile(query));
  compile_span.Close();
  const xpath::QueryRequirements reqs = CollectRequirements(query);

  double label_seconds = 0.0;
  {
    obs::QueryTrace::Scope label_span(&trace, obs::Phase::kLabel);
    XCQ_RETURN_IF_ERROR(
        EnsureLabels(reqs.tags, reqs.patterns, &label_seconds));
  }
  XCQ_ASSIGN_OR_RETURN(QueryOutcome outcome,
                       EvaluatePlan(plan, &trace, control));
  outcome.label_seconds = label_seconds;
  outcome.trace = trace;
  return outcome;
}

Status QuerySession::VerifyPrunedSweeps(Instance snapshot,
                                        const algebra::QueryPlan& plan,
                                        const QueryOutcome& outcome,
                                        RelationId result) const {
  engine::EvalOptions oracle_options;
  oracle_options.threads = options_.engine_threads;
  oracle_options.prune_sweeps = false;
  engine::EvalStats oracle_stats;
  XCQ_ASSIGN_OR_RETURN(
      const RelationId oracle_result,
      engine::Evaluate(&snapshot, plan, oracle_options, &oracle_stats));
  if (outcome.stats.splits != oracle_stats.splits ||
      outcome.stats.vertices_after != oracle_stats.vertices_after ||
      outcome.stats.edges_after != oracle_stats.edges_after) {
    return Status::Internal(StrFormat(
        "pruned sweeps diverged from the full-sweep oracle: "
        "%llu splits / %llu vertices / %llu edges (pruned) vs "
        "%llu / %llu / %llu (full)",
        static_cast<unsigned long long>(outcome.stats.splits),
        static_cast<unsigned long long>(outcome.stats.vertices_after),
        static_cast<unsigned long long>(outcome.stats.edges_after),
        static_cast<unsigned long long>(oracle_stats.splits),
        static_cast<unsigned long long>(oracle_stats.vertices_after),
        static_cast<unsigned long long>(oracle_stats.edges_after)));
  }
  const uint64_t oracle_dag = SelectedDagNodeCount(snapshot, oracle_result);
  const uint64_t oracle_tree =
      SelectedTreeNodeCount(snapshot, oracle_result);
  if (outcome.selected_dag_nodes != oracle_dag ||
      outcome.selected_tree_nodes != oracle_tree) {
    return Status::Internal(StrFormat(
        "pruned sweeps diverged from the full-sweep oracle: "
        "%llu dag / %llu tree selected (pruned) vs %llu / %llu (full)",
        static_cast<unsigned long long>(outcome.selected_dag_nodes),
        static_cast<unsigned long long>(outcome.selected_tree_nodes),
        static_cast<unsigned long long>(oracle_dag),
        static_cast<unsigned long long>(oracle_tree)));
  }
  // The pruning claim is bit-identical *answers*. Without splits the
  // vertex numbering cannot change, so the result columns must agree
  // bit for bit. With splits the two runs may assign original-vs-clone
  // ids differently (a region forces the banded downward kernel, whose
  // variant orientation differs from the sequential DFS — isomorphic
  // DAGs either way), so the exact check moves to the tree level:
  // decompress both and compare the selected tree-node sets.
  if (outcome.stats.splits == 0) {
    if (instance_->RelationBits(result) !=
        snapshot.RelationBits(oracle_result)) {
      return Status::Internal(
          "pruned sweeps diverged from the full-sweep oracle: result "
          "selection bits differ");
    }
    return Status::OK();
  }
  DecompressOptions dopts;
  XCQ_ASSIGN_OR_RETURN(const DecompressedTree pruned_tree,
                       Decompress(*instance_, dopts));
  XCQ_ASSIGN_OR_RETURN(const DecompressedTree oracle_tree_doc,
                       Decompress(snapshot, dopts));
  if (pruned_tree.RelationSet(instance_->schema().Name(result)) !=
      oracle_tree_doc.RelationSet(snapshot.schema().Name(oracle_result))) {
    return Status::Internal(
        "pruned sweeps diverged from the full-sweep oracle: selected "
        "tree-node sets differ");
  }
  return Status::OK();
}

Result<std::vector<QueryOutcome>> QuerySession::RunBatch(
    const std::vector<std::string>& query_texts,
    const QueryControl& control) {
  if (control.cancel != nullptr) {
    XCQ_RETURN_IF_ERROR(control.cancel->Check());
  }
  // Parse and compile everything first — a batch is all-or-nothing, and
  // failing before EnsureLabels keeps the accumulated instance untouched
  // on bad input.
  std::vector<xpath::Query> queries;
  std::vector<algebra::QueryPlan> plans;
  std::vector<obs::QueryTrace> traces(query_texts.size());
  queries.reserve(query_texts.size());
  plans.reserve(query_texts.size());
  for (size_t i = 0; i < query_texts.size(); ++i) {
    obs::QueryTrace::Scope parse_span(&traces[i], obs::Phase::kParse);
    XCQ_ASSIGN_OR_RETURN(xpath::Query query,
                         xpath::ParseQuery(query_texts[i]));
    parse_span.Close();
    obs::QueryTrace::Scope compile_span(&traces[i], obs::Phase::kCompile);
    XCQ_ASSIGN_OR_RETURN(algebra::QueryPlan plan, algebra::Compile(query));
    compile_span.Close();
    queries.push_back(std::move(query));
    plans.push_back(std::move(plan));
  }
  const xpath::QueryRequirements all = CollectBatchRequirements(queries);

  // One scan + one common-extension merge for the union of all label
  // sets — the amortization that makes batching worthwhile. Like the
  // shared label time, the shared label span lands on the first trace.
  double label_seconds = 0.0;
  {
    obs::QueryTrace::Scope label_span(
        traces.empty() ? nullptr : &traces.front(), obs::Phase::kLabel);
    XCQ_RETURN_IF_ERROR(
        EnsureLabels(all.tags, all.patterns, &label_seconds));
  }

  // Shared sweeps: evaluate the whole batch in lockstep, same-axis ops
  // of different queries folded into one traversal (engine/batch.h).
  // Only attempted when per-query evaluation would not interleave
  // instance mutations between queries; the attempt itself aborts —
  // leaving the instance untouched — if any query demands a split.
  if (plans.size() >= 2 && options_.shared_batch_sweeps &&
      !options_.minimize_after_query) {
    engine::EvalOptions eval_options = MakeEvalOptions(control);
    eval_options.context_relation.clear();
    engine::SharedBatchStats shared_stats;
    const double shared_start = traces.front().Elapsed();
    engine::SharedBatchResult shared = engine::EvaluateBatchShared(
        &*instance_, plans, eval_options, &shared_stats);
    if (shared.engaged) {
      // Book the whole shared traversal as one sweep span on the first
      // trace (the convention for per-batch figures); on fallback the
      // per-query EvaluatePlan spans cover it instead.
      traces.front().AddSpan(obs::Phase::kSweep, shared_start,
                             traces.front().Elapsed() - shared_start);
      ++shared_batches_;
      std::vector<QueryOutcome> outcomes(plans.size());
      const TraversalCache& t = instance_->EnsureTraversal();
      for (size_t i = 0; i < plans.size(); ++i) {
        QueryOutcome& outcome = outcomes[i];
        // No query mutated the DAG (sharing aborts otherwise), so every
        // query saw — and left — the same instance.
        outcome.stats.vertices_before = t.order.size();
        outcome.stats.vertices_after = t.order.size();
        outcome.stats.edges_before = t.reachable_edges;
        outcome.stats.edges_after = t.reachable_edges;
        outcome.stats.seconds =
            shared_stats.seconds / static_cast<double>(plans.size());
        outcome.selected_dag_nodes =
            SelectedDagNodeCount(*instance_, shared.results[i]);
        outcome.selected_tree_nodes =
            SelectedTreeNodeCount(*instance_, shared.results[i]);
      }
      // Net observable effect of the per-query loop: the public result
      // relation holds the last query's selection.
      const RelationId result =
          instance_->AddRelation(engine::kResultRelation);
      instance_->MutableRelationBits(result) =
          instance_->RelationBits(shared.results.back());
      for (const RelationId id : shared.results) {
        instance_->ReleaseScratchRelation(id);
      }
      // Shared sweeps are per batch, not per query: report the prune
      // counters on the first outcome (like the shared label time).
      outcomes.front().stats.pruned_sweeps = shared_stats.pruned_sweeps;
      outcomes.front().stats.skipped_sweeps = shared_stats.skipped_sweeps;
      outcomes.front().stats.sweep_visited = shared_stats.sweep_visited;
      outcomes.front().stats.sweep_full = shared_stats.sweep_full;
      outcomes.front().label_seconds = label_seconds;
      for (size_t i = 0; i < outcomes.size(); ++i) {
        outcomes[i].trace = std::move(traces[i]);
      }
      return outcomes;
    }
    ++shared_batch_fallbacks_;
  }

  std::vector<QueryOutcome> outcomes;
  outcomes.reserve(plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    XCQ_ASSIGN_OR_RETURN(QueryOutcome outcome,
                         EvaluatePlan(plans[i], &traces[i], control));
    outcome.trace = std::move(traces[i]);
    outcomes.push_back(std::move(outcome));
  }
  if (!outcomes.empty()) outcomes.front().label_seconds = label_seconds;
  return outcomes;
}

}  // namespace xcq
