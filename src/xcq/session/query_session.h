#ifndef XCQ_SESSION_QUERY_SESSION_H_
#define XCQ_SESSION_QUERY_SESSION_H_

/// \file query_session.h
/// High-level query interface over one document — the evaluation mode of
/// Sec. 4 of the paper, packaged for downstream use.
///
/// The paper's prototype re-parses the document for every query,
/// extracting exactly the tags and string constraints the query needs.
/// `QuerySession` supports that mode (`reuse_instance = false`) and the
/// mode the paper describes as the natural next step (Sec. 2.3 + Sec. 4):
/// keep one accumulated compressed instance; when a query needs labels
/// that are not yet present, distill a small instance carrying only the
/// missing labels in one scan and merge it in with the common-extension
/// (product) algorithm, then evaluate purely in main memory.

#include <optional>
#include <set>
#include <string>
#include <string_view>

#include "xcq/compress/compressor.h"
#include "xcq/engine/evaluator.h"
#include "xcq/instance/instance.h"
#include "xcq/util/result.h"

namespace xcq {

struct SessionOptions {
  /// Accumulate one instance across queries, merging in missing labels
  /// via common extensions; false re-compresses per query (the paper's
  /// prototype behaviour).
  bool reuse_instance = true;
  /// Re-minimize the accumulated instance after each merge (splits from
  /// earlier queries may otherwise linger; cf. Sec. 3.3's re-compression
  /// remark).
  bool minimize_after_merge = false;
};

/// \brief Result summary of one query execution.
struct QueryOutcome {
  /// Reachable instance vertices selected.
  uint64_t selected_dag_nodes = 0;
  /// Tree nodes those vertices represent (decoded by path counting).
  uint64_t selected_tree_nodes = 0;
  /// Engine counters (splits, sizes, time).
  engine::EvalStats stats;
  /// Seconds spent parsing/merging to obtain the labeled instance.
  double label_seconds = 0.0;
};

/// \brief One document, many queries.
class QuerySession {
 public:
  /// Takes ownership of the document text.
  static Result<QuerySession> Open(std::string xml,
                                   SessionOptions options = {});

  /// Parses, compiles, and evaluates `query_text`; returns the outcome.
  /// The result selection also remains available as the
  /// `engine::kResultRelation` relation of `instance()`.
  Result<QueryOutcome> Run(std::string_view query_text);

  /// The current accumulated instance (reuse mode), or the instance of
  /// the most recent query. Invalid before the first `Run`.
  const Instance& instance() const { return *instance_; }
  bool has_instance() const { return instance_.has_value(); }

  /// Labels currently present in the accumulated instance.
  size_t tracked_tag_count() const { return tags_.size(); }
  size_t tracked_pattern_count() const { return patterns_.size(); }

 private:
  QuerySession(std::string xml, SessionOptions options)
      : xml_(std::move(xml)), options_(options) {}

  /// Ensures `instance_` carries all of `tags` / `patterns`.
  Status EnsureLabels(const std::vector<std::string>& tags,
                      const std::vector<std::string>& patterns,
                      double* seconds);

  std::string xml_;
  SessionOptions options_;
  std::optional<Instance> instance_;
  std::set<std::string> tags_;
  std::set<std::string> patterns_;
};

}  // namespace xcq

#endif  // XCQ_SESSION_QUERY_SESSION_H_
