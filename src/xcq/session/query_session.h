#ifndef XCQ_SESSION_QUERY_SESSION_H_
#define XCQ_SESSION_QUERY_SESSION_H_

/// \file query_session.h
/// High-level query interface over one document — the evaluation mode of
/// Sec. 4 of the paper, packaged for downstream use.
///
/// The paper's prototype re-parses the document for every query,
/// extracting exactly the tags and string constraints the query needs.
/// `QuerySession` supports that mode (`reuse_instance = false`) and the
/// mode the paper describes as the natural next step (Sec. 2.3 + Sec. 4):
/// keep one accumulated compressed instance; when a query needs labels
/// that are not yet present, distill a small instance carrying only the
/// missing labels in one scan and merge it in with the common-extension
/// (product) algorithm, then evaluate purely in main memory.
///
/// A session can also be opened directly over a compressed instance
/// (`FromInstance`, e.g. one reloaded from a `.xcqi` file): the source
/// document is then never touched again — queries whose labels the
/// instance does not carry fail with `kNotFound` instead of re-parsing.

#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "xcq/compress/compressor.h"
#include "xcq/engine/evaluator.h"
#include "xcq/instance/instance.h"
#include "xcq/obs/trace.h"
#include "xcq/util/result.h"

namespace xcq {

struct SessionOptions {
  /// Accumulate one instance across queries, merging in missing labels
  /// via common extensions; false re-compresses per query (the paper's
  /// prototype behaviour).
  bool reuse_instance = true;
  /// Re-minimize the accumulated instance after each merge (splits from
  /// earlier queries may otherwise linger; cf. Sec. 3.3's re-compression
  /// remark).
  bool minimize_after_merge = false;
  /// Re-minimize after each `Evaluate`, so splitting queries do not leave
  /// the accumulated instance permanently grown (the reclaim measured by
  /// bench_ablation section (c)). Result counts are taken before the
  /// re-minimization, so outcomes are unaffected.
  bool minimize_after_query = false;
  /// With `minimize_after_query`: reclaim with the *incremental* in-place
  /// pass (`MinimizeInPlace`) — only vertices split, re-pointed, or whose
  /// result bit flipped are re-canonicalized against the persistent
  /// hash-cons table kept in the instance. Off = the original full
  /// re-hash rebuild (`Minimize`) after every query.
  bool incremental_minimize = true;
  /// Debug oracle: after every incremental pass, also run the full pass
  /// on a copy and fail with `kInternal` unless both agree on reachable
  /// vertex/edge counts and the result selection. Expensive — it
  /// re-introduces the full-pass cost the incremental pass avoids; for
  /// tests and bring-up only.
  bool verify_incremental_minimize = false;
  /// Evaluate BATCH requests with *shared sweeps* (engine/batch.h):
  /// same-axis ops of different queries in a batch are grouped into one
  /// multi-source traversal instead of one sweep per query. Answers are
  /// bit-identical to per-query evaluation — sharing engages only while
  /// no query would split the DAG and falls back (per batch) otherwise.
  /// Requires `minimize_after_query` off: per-query re-minimization
  /// between batch members re-orders mutations that sharing elides.
  bool shared_batch_sweeps = true;
  /// Restrict axis sweeps to the vertices the path summary proves can
  /// contribute (docs/INTERNALS.md §9). Answers, splits, and the
  /// resulting instance are independent of the value; off = every sweep
  /// walks the whole reachable DAG.
  bool prune_sweeps = true;
  /// Debug oracle: evaluate every query a second time *without* pruning
  /// on a copy of the pre-query instance and fail with `kInternal`
  /// unless both runs agree on the result selection, the splits, and
  /// the resulting reachable sizes. Expensive — it re-introduces the
  /// full-sweep cost pruning avoids; for tests and bring-up only.
  bool verify_pruned_sweeps = false;
  /// Lanes for the *intra-document* parallelism of docs/PARALLELISM.md:
  /// sharded compression of this document's instance and partitioned
  /// axis sweeps during evaluation. 1 (the default) is the sequential
  /// oracle; answers are identical for every value. Distinct from the
  /// server's worker pool, which parallelizes *across* documents —
  /// worker_threads × engine_threads is the daemon's peak lane count.
  size_t engine_threads = 1;
  /// Default per-query work budgets (engine/guard.h); 0 = unlimited.
  /// Applied to every evaluation unless the per-request `QueryControl`
  /// overrides them. Blow-ups convert to `kResourceExhausted` instead
  /// of unbounded latency.
  uint64_t max_sweep_visits = 0;
  uint64_t max_split_growth = 0;
};

/// \brief Per-request execution controls threaded from the serving
/// layer: cooperative cancellation (deadline / client disconnect) and
/// work-budget overrides. All fields optional; a default-constructed
/// control runs unrestricted (minus the session's default budgets).
struct QueryControl {
  /// Borrowed cancellation token; polled at phase and band boundaries
  /// throughout parsing, labeling, evaluation, and minimization. Null =
  /// never cancelled.
  const CancelToken* cancel = nullptr;
  /// Overrides `SessionOptions::max_sweep_visits` when non-zero.
  uint64_t max_sweep_visits = 0;
  /// Overrides `SessionOptions::max_split_growth` when non-zero.
  uint64_t max_split_growth = 0;
};

/// \brief Result summary of one query execution.
struct QueryOutcome {
  /// Reachable instance vertices selected.
  uint64_t selected_dag_nodes = 0;
  /// Tree nodes those vertices represent (decoded by path counting).
  uint64_t selected_tree_nodes = 0;
  /// Engine counters (splits, sizes, time).
  engine::EvalStats stats;
  /// Seconds spent parsing/merging to obtain the labeled instance.
  double label_seconds = 0.0;
  /// Seconds spent re-minimizing after the query (0 unless
  /// `minimize_after_query` is set); covers the incremental or full
  /// pass, whichever the options selected.
  double minimize_seconds = 0.0;
  /// Phase spans of this query (parse / compile / label / prune-bind /
  /// sweep / minimize), recorded inline — no allocation. The serving
  /// layer appends its serialize span and renders the JSON trace line.
  obs::QueryTrace trace;
};

/// \brief Everything a *set* of queries needs from the document: the
/// union of each query's tags and string patterns, deduplicated. Used by
/// batched evaluation to pay the label-extraction / common-extension
/// merge once for the whole batch.
xpath::QueryRequirements CollectBatchRequirements(
    const std::vector<xpath::Query>& queries);

/// As above from query texts; fails on the first unparseable query.
Result<xpath::QueryRequirements> CollectBatchRequirements(
    const std::vector<std::string>& query_texts);

/// \brief One document, many queries.
class QuerySession {
 public:
  /// Takes ownership of the document text.
  static Result<QuerySession> Open(std::string xml,
                                   SessionOptions options = {});

  /// Opens a session over an already-compressed instance (typically
  /// loaded from a `.xcqi` file) with no source document behind it.
  /// The tracked tag / pattern sets are recovered from the instance's
  /// live relations; queries needing anything else fail with `kNotFound`
  /// rather than re-parsing. `reuse_instance` is forced on.
  static Result<QuerySession> FromInstance(Instance instance,
                                           SessionOptions options = {});

  /// Parses, compiles, and evaluates `query_text`; returns the outcome.
  /// The result selection also remains available as the
  /// `engine::kResultRelation` relation of `instance()`. A cancelled or
  /// budget-exhausted run fails with `kCancelled` / `kDeadlineExceeded` /
  /// `kResourceExhausted` and leaves the instance structurally
  /// consistent (same represented tree; at most some unmerged splits,
  /// reclaimed by the next minimization) — the session stays usable.
  Result<QueryOutcome> Run(std::string_view query_text,
                           const QueryControl& control = {});

  /// Evaluates a batch of queries in one pass: the label sets of all
  /// queries are unioned *before* the (single) scan + common-extension
  /// merge, so a batch pays the per-label document work once instead of
  /// once per query. Outcomes are index-aligned with `query_texts`; the
  /// shared label time is reported on the first outcome. Fails as a
  /// whole if any query does not parse or compile.
  Result<std::vector<QueryOutcome>> RunBatch(
      const std::vector<std::string>& query_texts,
      const QueryControl& control = {});

  /// The current accumulated instance (reuse mode), or the instance of
  /// the most recent query. Invalid before the first `Run`.
  const Instance& instance() const { return *instance_; }
  bool has_instance() const { return instance_.has_value(); }

  /// True when a source document is available for label extraction
  /// (false for `FromInstance` sessions).
  bool has_source() const { return has_source_; }

  /// Labels currently present in the accumulated instance.
  size_t tracked_tag_count() const { return tags_.size(); }
  size_t tracked_pattern_count() const { return patterns_.size(); }

  /// Number of scans of the source document so far (initial compression
  /// plus every common-extension distillation). Stays 0 for
  /// `FromInstance` sessions — the "zero re-parses" guarantee.
  uint64_t source_parse_count() const { return source_parse_count_; }

  /// Batches served with shared sweeps / batches whose shared attempt
  /// aborted on a split demand and fell back to per-query evaluation.
  /// Batches that never attempt sharing (single query, option off,
  /// `minimize_after_query` on) move neither counter, so their sum is
  /// the number of shared *attempts*, not of RunBatch calls.
  uint64_t shared_batch_count() const { return shared_batches_; }
  uint64_t shared_batch_fallback_count() const {
    return shared_batch_fallbacks_;
  }

 private:
  QuerySession(std::string xml, SessionOptions options)
      : xml_(std::move(xml)), options_(options) {}

  /// Ensures `instance_` carries all of `tags` / `patterns`.
  Status EnsureLabels(const std::vector<std::string>& tags,
                      const std::vector<std::string>& patterns,
                      double* seconds);

  /// Evaluates one compiled plan on the ensured instance; shared by Run
  /// and RunBatch. Records sweep / prune-bind / minimize spans on
  /// `trace` (null = no tracing).
  Result<QueryOutcome> EvaluatePlan(const algebra::QueryPlan& plan,
                                    obs::QueryTrace* trace,
                                    const QueryControl& control);

  /// Engine options for one evaluation under `control`: session threads
  /// and pruning, plus cancellation and the resolved work budgets
  /// (per-request override wins over the session default).
  engine::EvalOptions MakeEvalOptions(const QueryControl& control) const;

  /// Marks vertices whose result-relation bit flipped between queries as
  /// dirty (relation columns are rewritten wholesale, so the instance
  /// cannot attribute those changes itself). `had_previous` is false on
  /// the first query, when every set result bit is a flip.
  void MarkResultFlips(const DynamicBitset& previous, bool had_previous,
                       RelationId result);

  /// The `verify_incremental_minimize` oracle: full-minimizes a copy and
  /// compares reachable counts and the result selection.
  Status VerifyIncrementalMinimize() const;

  /// The `verify_pruned_sweeps` oracle: re-evaluates `plan` with
  /// pruning off on `snapshot` (the instance as it stood before the
  /// pruned evaluation) and compares result selection, splits, and
  /// reachable sizes against the pruned run.
  Status VerifyPrunedSweeps(Instance snapshot,
                            const algebra::QueryPlan& plan,
                            const QueryOutcome& outcome,
                            RelationId result) const;

  std::string xml_;
  SessionOptions options_;
  std::optional<Instance> instance_;
  std::set<std::string> tags_;
  std::set<std::string> patterns_;
  bool has_source_ = true;
  uint64_t source_parse_count_ = 0;
  uint64_t shared_batches_ = 0;
  uint64_t shared_batch_fallbacks_ = 0;
};

}  // namespace xcq

#endif  // XCQ_SESSION_QUERY_SESSION_H_
