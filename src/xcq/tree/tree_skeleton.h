#ifndef XCQ_TREE_TREE_SKELETON_H_
#define XCQ_TREE_TREE_SKELETON_H_

/// \file tree_skeleton.h
/// The uncompressed skeleton of an XML document (Sec. 1 of the paper):
/// the ordered, node-labeled tree obtained by stripping all character
/// data, with one extra `#doc` vertex above the document element so that
/// absolute XPath expressions (`/self::*`, `/tag/...`) have a context
/// node, mirroring the XPath document node.
///
/// The representation is flat arrays indexed by `TreeNodeId`, with ids
/// assigned in document (pre-) order. Each node additionally records the
/// exclusive end of its preorder subtree range, which makes descendant
/// tests O(1) and descendant sweeps cache-friendly — this is what lets
/// the baseline engine hit the paper's O(|Q|·|T|) bound with a small
/// constant.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "xcq/util/bitset.h"
#include "xcq/util/result.h"

namespace xcq {

using TreeNodeId = uint32_t;
using TagId = uint32_t;

inline constexpr TreeNodeId kNoTreeNode = UINT32_MAX;

/// Tag used for the synthetic node above the document element.
inline constexpr std::string_view kDocumentTag = "#doc";

/// \brief Interned element-name table shared by all nodes of a skeleton.
class TagTable {
 public:
  /// Returns the id for `name`, interning it on first use.
  TagId Intern(std::string_view name);

  /// Returns the id for `name`, or `kNoTag` if never interned.
  TagId Find(std::string_view name) const;

  const std::string& Name(TagId id) const { return names_[id]; }
  size_t size() const { return names_.size(); }

  static constexpr TagId kNoTag = UINT32_MAX;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, TagId> index_;
};

/// \brief Ordered labeled tree in preorder array form.
class TreeSkeleton {
 public:
  TreeSkeleton() = default;

  /// The synthetic `#doc` node; always id 0 in a non-empty skeleton.
  TreeNodeId root() const { return 0; }
  size_t node_count() const { return tags_.size(); }
  bool empty() const { return tags_.empty(); }

  TreeNodeId Parent(TreeNodeId n) const { return parent_[n]; }
  TreeNodeId FirstChild(TreeNodeId n) const { return first_child_[n]; }
  TreeNodeId NextSibling(TreeNodeId n) const { return next_sibling_[n]; }
  TreeNodeId PrevSibling(TreeNodeId n) const { return prev_sibling_[n]; }

  /// Exclusive end of n's preorder subtree: descendants of n are exactly
  /// the ids in (n, SubtreeEnd(n)).
  TreeNodeId SubtreeEnd(TreeNodeId n) const { return subtree_end_[n]; }

  /// True if `d` is a proper descendant of `a`.
  bool IsDescendant(TreeNodeId d, TreeNodeId a) const {
    return d > a && d < subtree_end_[a];
  }

  TagId Tag(TreeNodeId n) const { return tags_[n]; }
  const std::string& TagName(TreeNodeId n) const {
    return tag_table_.Name(tags_[n]);
  }

  const TagTable& tag_table() const { return tag_table_; }
  TagTable& tag_table() { return tag_table_; }

  /// Bitset of all nodes labeled `tag` (empty set if tag unknown).
  DynamicBitset NodesWithTag(std::string_view tag) const;

  /// Number of children of `n` (O(#children)).
  size_t ChildCount(TreeNodeId n) const;

  /// Maximum depth (root = 1).
  size_t Depth() const;

  /// Appends a node in document order. `parent` must be `kNoTreeNode` for
  /// the first (root) node and an existing open ancestor otherwise; the
  /// builder guarantees this. Returns the new id.
  TreeNodeId AppendNode(TreeNodeId parent, TagId tag);

  /// Records the subtree end of `n` once all descendants are appended.
  void SealNode(TreeNodeId n) {
    subtree_end_[n] = static_cast<TreeNodeId>(node_count());
  }

  /// Structural validation (used by tests and after deserialization).
  Status Validate() const;

 private:
  TagTable tag_table_;
  std::vector<TagId> tags_;
  std::vector<TreeNodeId> parent_;
  std::vector<TreeNodeId> first_child_;
  std::vector<TreeNodeId> last_child_;
  std::vector<TreeNodeId> next_sibling_;
  std::vector<TreeNodeId> prev_sibling_;
  std::vector<TreeNodeId> subtree_end_;
};

}  // namespace xcq

#endif  // XCQ_TREE_TREE_SKELETON_H_
