#ifndef XCQ_TREE_TREE_BUILDER_H_
#define XCQ_TREE_TREE_BUILDER_H_

/// \file tree_builder.h
/// Builds an uncompressed, labeled tree skeleton from XML text.
///
/// This is the input side of the *baseline* system (Sec. 3.1): the same
/// document and the same labeling information (tags + string-constraint
/// matches) as the compressor produces, but as a plain tree. The DAG
/// engine and the tree engine are differential-tested against each other
/// on these two views of one document.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "xcq/tree/tree_skeleton.h"
#include "xcq/util/bitset.h"
#include "xcq/util/result.h"

namespace xcq {

/// \brief A tree skeleton plus, per string pattern, the set of nodes whose
/// XPath string value contains the pattern.
struct LabeledTree {
  TreeSkeleton tree;
  std::vector<std::string> patterns;
  std::vector<DynamicBitset> pattern_sets;

  /// The node set for a pattern; empty set for unknown patterns.
  DynamicBitset NodesMatching(std::string_view pattern) const;
};

/// \brief One-pass SAX construction of a `LabeledTree`.
class TreeBuilder {
 public:
  /// Parses `xml` into a labeled skeleton. `patterns` are the string
  /// constraints to match (at most 64; the paper's queries use <= 4).
  static Result<LabeledTree> Build(std::string_view xml,
                                   std::vector<std::string> patterns = {});
};

}  // namespace xcq

#endif  // XCQ_TREE_TREE_BUILDER_H_
