#include "xcq/tree/tree_skeleton.h"

#include "xcq/util/string_util.h"

namespace xcq {

TagId TagTable::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  const TagId id = static_cast<TagId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

TagId TagTable::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kNoTag : it->second;
}

TreeNodeId TreeSkeleton::AppendNode(TreeNodeId parent, TagId tag) {
  const TreeNodeId id = static_cast<TreeNodeId>(node_count());
  tags_.push_back(tag);
  parent_.push_back(parent);
  first_child_.push_back(kNoTreeNode);
  last_child_.push_back(kNoTreeNode);
  next_sibling_.push_back(kNoTreeNode);
  prev_sibling_.push_back(kNoTreeNode);
  subtree_end_.push_back(id + 1);
  if (parent != kNoTreeNode) {
    if (first_child_[parent] == kNoTreeNode) {
      first_child_[parent] = id;
    } else {
      next_sibling_[last_child_[parent]] = id;
      prev_sibling_[id] = last_child_[parent];
    }
    last_child_[parent] = id;
  }
  return id;
}

DynamicBitset TreeSkeleton::NodesWithTag(std::string_view tag) const {
  DynamicBitset out(node_count());
  const TagId id = tag_table_.Find(tag);
  if (id == TagTable::kNoTag) return out;
  for (TreeNodeId n = 0; n < node_count(); ++n) {
    if (tags_[n] == id) out.Set(n);
  }
  return out;
}

size_t TreeSkeleton::ChildCount(TreeNodeId n) const {
  size_t count = 0;
  for (TreeNodeId c = FirstChild(n); c != kNoTreeNode; c = NextSibling(c)) {
    ++count;
  }
  return count;
}

size_t TreeSkeleton::Depth() const {
  if (empty()) return 0;
  std::vector<uint32_t> depth(node_count(), 1);
  size_t max_depth = 1;
  // Preorder ids: a parent always precedes its children.
  for (TreeNodeId n = 1; n < node_count(); ++n) {
    depth[n] = depth[parent_[n]] + 1;
    if (depth[n] > max_depth) max_depth = depth[n];
  }
  return max_depth;
}

Status TreeSkeleton::Validate() const {
  if (empty()) return Status::OK();
  if (parent_[0] != kNoTreeNode) {
    return Status::Corruption("root node has a parent");
  }
  for (TreeNodeId n = 1; n < node_count(); ++n) {
    if (parent_[n] == kNoTreeNode) {
      return Status::Corruption(
          StrFormat("node %u is a second root", n));
    }
    if (parent_[n] >= n) {
      return Status::Corruption(
          StrFormat("node %u has non-preorder parent %u", n, parent_[n]));
    }
    if (subtree_end_[n] <= n || subtree_end_[n] > node_count()) {
      return Status::Corruption(
          StrFormat("node %u has bad subtree end %u", n, subtree_end_[n]));
    }
    if (subtree_end_[n] > subtree_end_[parent_[n]]) {
      return Status::Corruption(
          StrFormat("node %u subtree extends past its parent's", n));
    }
    if (tags_[n] >= tag_table_.size()) {
      return Status::Corruption(StrFormat("node %u has bad tag id", n));
    }
  }
  if (subtree_end_[0] != node_count()) {
    return Status::Corruption("root subtree does not span the tree");
  }
  return Status::OK();
}

}  // namespace xcq
