#include "xcq/tree/tree_builder.h"

#include <optional>

#include "xcq/util/string_util.h"
#include "xcq/xml/sax_parser.h"
#include "xcq/xml/string_matcher.h"

namespace xcq {

namespace {

/// SAX handler that appends nodes in document order and assigns each
/// completed pattern match to the deepest element whose string value
/// contains it; matches propagate to ancestors when elements close.
class BuilderHandler : public xml::SaxHandler {
 public:
  BuilderHandler(LabeledTree* out, xml::StringMatcher* matcher)
      : out_(out), matcher_(matcher) {}

  Status OnStartDocument() override {
    const TagId tag = out_->tree.tag_table().Intern(kDocumentTag);
    const TreeNodeId root = out_->tree.AppendNode(kNoTreeNode, tag);
    stack_.push_back(Frame{root, 0, 0});
    node_masks_.push_back(0);
    return Status::OK();
  }

  Status OnStartElement(std::string_view name,
                        const std::vector<xml::Attribute>&) override {
    const TagId tag = out_->tree.tag_table().Intern(name);
    const TreeNodeId node = out_->tree.AppendNode(stack_.back().node, tag);
    stack_.push_back(
        Frame{node, matcher_ ? matcher_->offset() : 0, 0});
    node_masks_.push_back(0);
    return Status::OK();
  }

  Status OnCharacters(std::string_view text) override {
    if (matcher_ == nullptr) return Status::OK();
    matcher_->Feed(text, [this](const xml::PatternMatch& m) {
      // The deepest open element opened at or before the match start is
      // the deepest node whose string value contains the whole match.
      for (size_t i = stack_.size(); i-- > 0;) {
        if (stack_[i].open_offset <= m.start_offset) {
          stack_[i].pattern_mask |= uint64_t{1} << m.pattern;
          break;
        }
      }
    });
    return Status::OK();
  }

  Status OnEndElement(std::string_view) override {
    PopFrame();
    return Status::OK();
  }

  Status OnEndDocument() override {
    PopFrame();  // the #doc frame
    if (!stack_.empty()) {
      return Status::Internal("tree builder stack not empty at end");
    }
    return Status::OK();
  }

  const std::vector<uint64_t>& node_masks() const { return node_masks_; }

 private:
  struct Frame {
    TreeNodeId node;
    uint64_t open_offset;   ///< Global text offset when the element opened.
    uint64_t pattern_mask;  ///< Patterns matched within this element.
  };

  void PopFrame() {
    const Frame frame = stack_.back();
    stack_.pop_back();
    node_masks_[frame.node] = frame.pattern_mask;
    out_->tree.SealNode(frame.node);
    if (!stack_.empty()) {
      // The parent's string value contains this element's string value.
      stack_.back().pattern_mask |= frame.pattern_mask;
    }
  }

  LabeledTree* out_;
  xml::StringMatcher* matcher_;
  std::vector<Frame> stack_;
  std::vector<uint64_t> node_masks_;
};

}  // namespace

DynamicBitset LabeledTree::NodesMatching(std::string_view pattern) const {
  for (size_t i = 0; i < patterns.size(); ++i) {
    if (patterns[i] == pattern) return pattern_sets[i];
  }
  return DynamicBitset(tree.node_count());
}

Result<LabeledTree> TreeBuilder::Build(std::string_view xml,
                                       std::vector<std::string> patterns) {
  if (patterns.size() > 64) {
    return Status::InvalidArgument(
        "at most 64 string patterns are supported per document pass");
  }
  LabeledTree out;
  out.patterns = patterns;

  std::optional<xml::StringMatcher> matcher;
  if (!patterns.empty()) {
    XCQ_ASSIGN_OR_RETURN(matcher, xml::StringMatcher::Build(patterns));
  }

  BuilderHandler handler(&out, matcher ? &*matcher : nullptr);
  xml::SaxParser parser;
  XCQ_RETURN_IF_ERROR(parser.Parse(xml, &handler));
  XCQ_RETURN_IF_ERROR(out.tree.Validate());

  out.pattern_sets.assign(patterns.size(),
                          DynamicBitset(out.tree.node_count()));
  const std::vector<uint64_t>& masks = handler.node_masks();
  for (TreeNodeId n = 0; n < out.tree.node_count(); ++n) {
    uint64_t mask = masks[n];
    while (mask != 0) {
      const int p = __builtin_ctzll(mask);
      out.pattern_sets[static_cast<size_t>(p)].Set(n);
      mask &= mask - 1;
    }
  }
  return out;
}

}  // namespace xcq
