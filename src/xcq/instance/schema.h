#ifndef XCQ_INSTANCE_SCHEMA_H_
#define XCQ_INSTANCE_SCHEMA_H_

/// \file schema.h
/// Schemas are finite sets of unary relation names (Sec. 2.1). A relation
/// may mark nodes with a tag, nodes whose string value contains a query
/// constant, or nodes selected by a (sub)query — the model treats all of
/// them uniformly.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace xcq {

using RelationId = uint32_t;
inline constexpr RelationId kNoRelation = UINT32_MAX;

/// \brief Relation-name registry. Ids are stable for the life of the
/// schema; removed names leave a tombstone so other ids never shift.
class Schema {
 public:
  /// Returns the id of `name`, interning it if new. Re-interning a
  /// removed name creates a fresh id.
  RelationId Intern(std::string_view name);

  /// Appends an unnamed slot and returns its id. Anonymous slots back
  /// pooled scratch columns (Instance::AcquireScratchRelation): they are
  /// never findable by name, never counted live, and look exactly like
  /// tombstones to schema iteration — which is what keeps per-query
  /// temporaries out of signatures, serialization, and merges.
  RelationId InternAnonymous();

  /// Id of `name`, or `kNoRelation`.
  RelationId Find(std::string_view name) const;

  /// Name of relation `id`; empty string for tombstones.
  const std::string& Name(RelationId id) const { return names_[id]; }

  /// Forgets `name` (tombstone). Returns false if absent.
  bool Remove(std::string_view name);

  /// Total slots, including tombstones. Iterate 0..size() and skip
  /// `Name(i).empty()`.
  size_t size() const { return names_.size(); }

  /// Number of live (non-tombstone) relations.
  size_t live_count() const { return index_.size(); }

  /// Live relation names, in id order.
  std::vector<std::string> LiveNames() const;

  /// Naming convention for string-constraint relations: the relation
  /// holding nodes whose string value contains `pattern`.
  static std::string StringRelationName(std::string_view pattern);

  /// Inverse of StringRelationName; returns false if `name` is not a
  /// string-constraint relation.
  static bool ParseStringRelationName(std::string_view name,
                                      std::string_view* pattern);

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, RelationId> index_;
};

}  // namespace xcq

#endif  // XCQ_INSTANCE_SCHEMA_H_
