#ifndef XCQ_INSTANCE_STATS_H_
#define XCQ_INSTANCE_STATS_H_

/// \file stats.h
/// Measurements over instances that the paper's tables report:
/// vertex / edge counts (Fig. 6), the number of *tree* nodes an instance
/// or a selection represents (Fig. 7 columns 7–8), and structural
/// statistics. Tree-node counts are computed by DAG arithmetic — no
/// decompression — and saturate at UINT64_MAX, since compression can be
/// doubly exponential with edge multiplicities (Sec. 3.4).

#include <cstdint>
#include <vector>

#include "xcq/instance/instance.h"

namespace xcq {

/// Saturating arithmetic helpers (public for tests).
uint64_t SaturatingAdd(uint64_t a, uint64_t b);
uint64_t SaturatingMul(uint64_t a, uint64_t b);

/// \brief Number of edges in the fully expanded (tree) view, i.e. the sum
/// of all edge multiplicities along all paths; saturating.
/// Equivalently `TreeNodeCount(i) - 1` for non-empty instances.
uint64_t TreeEdgeCount(const Instance& instance);

/// \brief Number of nodes of the unique equivalent tree T(I) (Prop. 2.2);
/// saturating.
uint64_t TreeNodeCount(const Instance& instance);

/// \brief Sum of edge-run multiplicities over live spans (the edge count
/// of the multiplicity-free DAG of Fig. 1 (b)); saturating.
uint64_t ExpandedDagEdgeCount(const Instance& instance);

/// \brief For each vertex, the number of edge-paths from the root
/// (|Π(v)|, Sec. 2.1) — i.e. how many tree nodes the vertex represents.
/// Unreachable vertices get 0; saturating.
std::vector<uint64_t> PathCounts(const Instance& instance);

/// \brief Number of tree nodes represented by the vertices in relation
/// `r` (Fig. 7 column 8: "#nodes sel. (tree)"); saturating.
uint64_t SelectedTreeNodeCount(const Instance& instance, RelationId r);

/// \brief Number of vertices in relation `r` that are reachable from the
/// root (Fig. 7 column 7: "#nodes sel. (dag)"). Unreachable split
/// leftovers are excluded, matching what decompression would see.
uint64_t SelectedDagNodeCount(const Instance& instance, RelationId r);

/// \brief Longest root-to-leaf path in the DAG (root = 1).
size_t DagDepth(const Instance& instance);

/// \brief Compression summary for one instance (one row of Fig. 6).
struct CompressionStats {
  uint64_t tree_nodes = 0;      ///< |V^T|
  uint64_t dag_vertices = 0;    ///< |V^{M(T)}| (reachable)
  uint64_t dag_rle_edges = 0;   ///< |E^{M(T)}| with multiplicity runs
  double edge_ratio = 0.0;      ///< |E^M| / |E^T|
};

CompressionStats ComputeCompressionStats(const Instance& instance);

}  // namespace xcq

#endif  // XCQ_INSTANCE_STATS_H_
