#include "xcq/instance/instance_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "xcq/util/string_util.h"
#include "xcq/xml/sax_parser.h"

namespace xcq {

namespace {

constexpr char kMagic[4] = {'X', 'C', 'Q', 'I'};
constexpr uint32_t kVersion = 1;

/// End-of-file magic of the checksum footer. Distinct from the header
/// magic so a truncated-to-prefix file can never look footered.
constexpr char kFooterMagic[4] = {'X', 'C', 'Q', 'F'};
/// u32 crc | u64 payload_size | kFooterMagic.
constexpr size_t kFooterSize = 4 + 8 + 4;

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  Status GetVarint(uint64_t* out) {
    uint64_t value = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= bytes_.size()) {
        return Status::Corruption("truncated varint");
      }
      const auto byte = static_cast<unsigned char>(bytes_[pos_++]);
      if (shift >= 63 && byte > 1) {
        return Status::Corruption("varint overflow");
      }
      value |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    *out = value;
    return Status::OK();
  }

  Status GetU32(uint32_t* out) {
    if (pos_ + 4 > bytes_.size()) return Status::Corruption("truncated u32");
    std::memcpy(out, bytes_.data() + pos_, 4);
    pos_ += 4;
    return Status::OK();
  }

  Status GetU64(uint64_t* out) {
    if (pos_ + 8 > bytes_.size()) return Status::Corruption("truncated u64");
    std::memcpy(out, bytes_.data() + pos_, 8);
    pos_ += 8;
    return Status::OK();
  }

  Status GetBytes(size_t n, std::string_view* out) {
    if (pos_ + n > bytes_.size()) return Status::Corruption("truncated bytes");
    *out = bytes_.substr(pos_, n);
    pos_ += n;
    return Status::OK();
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace

uint32_t Crc32(std::string_view bytes) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (const char ch : bytes) {
    c = kTable[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string SerializeInstance(const Instance& instance) {
  std::string out;
  out.append(kMagic, 4);
  PutU32(&out, kVersion);
  PutVarint(&out, instance.vertex_count());
  PutVarint(&out, instance.root() == kNoVertex ? 0 : instance.root() + 1);

  const std::vector<RelationId> live = instance.LiveRelations();
  PutVarint(&out, live.size());
  for (RelationId r : live) {
    const std::string& name = instance.schema().Name(r);
    PutVarint(&out, name.size());
    out.append(name);
  }

  for (VertexId v = 0; v < instance.vertex_count(); ++v) {
    const std::span<const Edge> children = instance.Children(v);
    PutVarint(&out, children.size());
    for (const Edge& e : children) {
      PutVarint(&out, e.child);
      PutVarint(&out, e.count);
    }
  }

  const size_t words = (instance.vertex_count() + 63) / 64;
  for (RelationId r : live) {
    const DynamicBitset& bits = instance.RelationBits(r);
    for (size_t w = 0; w < words; ++w) {
      PutU64(&out, w < bits.words().size() ? bits.words()[w] : 0);
    }
  }
  return out;
}

std::string SerializeInstanceChecksummed(const Instance& instance) {
  std::string out = SerializeInstance(instance);
  const uint32_t crc = Crc32(out);
  const uint64_t payload_size = out.size();
  PutU32(&out, crc);
  PutU64(&out, payload_size);
  out.append(kFooterMagic, 4);
  return out;
}

Result<Instance> DeserializeInstance(std::string_view bytes) {
  if (bytes.size() >= kFooterSize &&
      std::memcmp(bytes.data() + bytes.size() - 4, kFooterMagic, 4) == 0) {
    uint32_t crc = 0;
    uint64_t payload_size = 0;
    std::memcpy(&crc, bytes.data() + bytes.size() - kFooterSize, 4);
    std::memcpy(&payload_size, bytes.data() + bytes.size() - kFooterSize + 4,
                8);
    if (payload_size != bytes.size() - kFooterSize) {
      return Status::Corruption(
          "spill footer payload size mismatch (torn write)");
    }
    const std::string_view payload = bytes.substr(0, payload_size);
    if (Crc32(payload) != crc) {
      return Status::Corruption("spill payload CRC mismatch");
    }
    bytes = payload;
  }
  Reader reader(bytes);
  std::string_view magic;
  XCQ_RETURN_IF_ERROR(reader.GetBytes(4, &magic));
  if (std::memcmp(magic.data(), kMagic, 4) != 0) {
    return Status::Corruption("bad magic; not an xcq instance file");
  }
  uint32_t version = 0;
  XCQ_RETURN_IF_ERROR(reader.GetU32(&version));
  if (version != kVersion) {
    return Status::Corruption(
        StrFormat("unsupported instance format version %u", version));
  }

  uint64_t vertex_count = 0;
  uint64_t root_plus1 = 0;
  XCQ_RETURN_IF_ERROR(reader.GetVarint(&vertex_count));
  XCQ_RETURN_IF_ERROR(reader.GetVarint(&root_plus1));
  if (vertex_count > UINT32_MAX) {
    return Status::Corruption("vertex count exceeds 32-bit id space");
  }
  if (root_plus1 > vertex_count) {
    return Status::Corruption("root vertex out of range");
  }

  uint64_t relation_count = 0;
  XCQ_RETURN_IF_ERROR(reader.GetVarint(&relation_count));
  if (relation_count > 1u << 20) {
    return Status::Corruption("implausible relation count");
  }
  std::vector<std::string> names;
  names.reserve(relation_count);
  for (uint64_t i = 0; i < relation_count; ++i) {
    uint64_t len = 0;
    XCQ_RETURN_IF_ERROR(reader.GetVarint(&len));
    if (len > 1u << 16) return Status::Corruption("relation name too long");
    std::string_view name;
    XCQ_RETURN_IF_ERROR(reader.GetBytes(len, &name));
    names.emplace_back(name);
  }

  Instance instance;
  for (uint64_t v = 0; v < vertex_count; ++v) instance.AddVertex();
  std::vector<Edge> edges;
  for (uint64_t v = 0; v < vertex_count; ++v) {
    uint64_t runs = 0;
    XCQ_RETURN_IF_ERROR(reader.GetVarint(&runs));
    if (runs > vertex_count) {
      // A canonical RLE list cannot repeat children adjacently, but it can
      // still be long; bound it by remaining input to avoid OOM on fuzz.
      if (runs > bytes.size()) {
        return Status::Corruption("implausible edge run count");
      }
    }
    edges.clear();
    edges.reserve(runs);
    for (uint64_t i = 0; i < runs; ++i) {
      uint64_t child = 0;
      uint64_t count = 0;
      XCQ_RETURN_IF_ERROR(reader.GetVarint(&child));
      XCQ_RETURN_IF_ERROR(reader.GetVarint(&count));
      if (child >= vertex_count) {
        return Status::Corruption("edge child out of range");
      }
      if (count == 0) return Status::Corruption("zero edge multiplicity");
      edges.push_back(Edge{static_cast<VertexId>(child), count});
    }
    instance.SetEdges(static_cast<VertexId>(v), edges);
  }
  if (root_plus1 > 0) {
    instance.SetRoot(static_cast<VertexId>(root_plus1 - 1));
  }

  const size_t words = (vertex_count + 63) / 64;
  for (const std::string& name : names) {
    const RelationId r = instance.AddRelation(name);
    DynamicBitset& bits = instance.MutableRelationBits(r);
    for (size_t w = 0; w < words; ++w) {
      uint64_t word = 0;
      XCQ_RETURN_IF_ERROR(reader.GetU64(&word));
      for (int b = 0; b < 64; ++b) {
        const size_t idx = w * 64 + static_cast<size_t>(b);
        if (idx < vertex_count && ((word >> b) & 1) != 0) bits.Set(idx);
      }
    }
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after instance data");
  }
  XCQ_RETURN_IF_ERROR(instance.Validate());
  return instance;
}

Status AtomicWriteFile(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError(
        StrFormat("cannot open '%s': %s", tmp.c_str(), std::strerror(errno)));
  }
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::IoError(StrFormat("short write to '%s': %s", tmp.c_str(),
                                       std::strerror(err)));
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::IoError(
        StrFormat("fsync '%s': %s", tmp.c_str(), std::strerror(err)));
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return Status::IoError(StrFormat("rename '%s' -> '%s': %s", tmp.c_str(),
                                     path.c_str(), std::strerror(err)));
  }
  // Persist the rename itself: fsync the containing directory.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

Status SaveInstance(const Instance& instance, const std::string& path) {
  return AtomicWriteFile(path, SerializeInstanceChecksummed(instance));
}

Result<Instance> LoadInstance(const std::string& path) {
  XCQ_ASSIGN_OR_RETURN(const std::string bytes,
                       xml::ReadFileToString(path));
  return DeserializeInstance(bytes);
}

}  // namespace xcq
