#include "xcq/instance/schema.h"

#include "xcq/util/string_util.h"

namespace xcq {

namespace {
constexpr std::string_view kStringRelationPrefix = "str:";
}  // namespace

RelationId Schema::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  const RelationId id = static_cast<RelationId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

RelationId Schema::InternAnonymous() {
  const RelationId id = static_cast<RelationId>(names_.size());
  names_.emplace_back();
  return id;
}

RelationId Schema::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kNoRelation : it->second;
}

bool Schema::Remove(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return false;
  names_[it->second].clear();
  index_.erase(it);
  return true;
}

std::vector<std::string> Schema::LiveNames() const {
  std::vector<std::string> out;
  out.reserve(index_.size());
  for (const std::string& name : names_) {
    if (!name.empty()) out.push_back(name);
  }
  return out;
}

std::string Schema::StringRelationName(std::string_view pattern) {
  std::string out(kStringRelationPrefix);
  out.append(pattern);
  return out;
}

bool Schema::ParseStringRelationName(std::string_view name,
                                     std::string_view* pattern) {
  if (!StartsWith(name, kStringRelationPrefix)) return false;
  *pattern = name.substr(kStringRelationPrefix.size());
  return true;
}

}  // namespace xcq
