#include "xcq/instance/stats.h"

#include <limits>

namespace xcq {

uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  const uint64_t sum = a + b;
  return sum < a ? std::numeric_limits<uint64_t>::max() : sum;
}

uint64_t SaturatingMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > std::numeric_limits<uint64_t>::max() / b) {
    return std::numeric_limits<uint64_t>::max();
  }
  return a * b;
}

uint64_t TreeNodeCount(const Instance& instance) {
  if (instance.vertex_count() == 0 || instance.root() == kNoVertex) return 0;
  // subtree_nodes(v) = 1 + sum over runs (count * subtree_nodes(child)),
  // computed children-first over the cached order.
  std::vector<uint64_t> subtree(instance.vertex_count(), 0);
  for (VertexId v : instance.EnsureTraversal().order) {
    uint64_t total = 1;
    for (const Edge& e : instance.Children(v)) {
      total = SaturatingAdd(total, SaturatingMul(e.count, subtree[e.child]));
    }
    subtree[v] = total;
  }
  return subtree[instance.root()];
}

uint64_t TreeEdgeCount(const Instance& instance) {
  const uint64_t nodes = TreeNodeCount(instance);
  return nodes == 0 ? 0 : nodes - 1;
}

uint64_t ExpandedDagEdgeCount(const Instance& instance) {
  uint64_t total = 0;
  for (VertexId v = 0; v < instance.vertex_count(); ++v) {
    for (const Edge& e : instance.Children(v)) {
      total = SaturatingAdd(total, e.count);
    }
  }
  return total;
}

std::vector<uint64_t> PathCounts(const Instance& instance) {
  // Path counts depend only on structure, so they live in the traversal
  // cache; this returns a copy for callers that hold the vector across
  // mutations. Hot paths (SelectedTreeNodeCount below) read in place.
  return instance.EnsureTraversal(false, true).path_counts;
}

uint64_t SelectedTreeNodeCount(const Instance& instance, RelationId r) {
  const std::vector<uint64_t>& paths =
      instance.EnsureTraversal(false, true).path_counts;
  uint64_t total = 0;
  instance.RelationBits(r).ForEach([&](size_t v) {
    total = SaturatingAdd(total, paths[v]);
  });
  return total;
}

uint64_t SelectedDagNodeCount(const Instance& instance, RelationId r) {
  const std::vector<uint64_t>& paths =
      instance.EnsureTraversal(false, true).path_counts;
  uint64_t total = 0;
  instance.RelationBits(r).ForEach([&](size_t v) {
    if (paths[v] > 0) ++total;
  });
  return total;
}

size_t DagDepth(const Instance& instance) {
  if (instance.vertex_count() == 0 || instance.root() == kNoVertex) return 0;
  // Cached heights count edges from the deepest leaf (leaf = 0); depth
  // here counts vertices on that path, hence the +1.
  return instance.EnsureTraversal(true).height[instance.root()] + 1;
}

CompressionStats ComputeCompressionStats(const Instance& instance) {
  CompressionStats stats;
  const TraversalCache& t = instance.EnsureTraversal();
  stats.tree_nodes = TreeNodeCount(instance);
  stats.dag_vertices = t.order.size();
  // RLE edges over reachable vertices only (split leftovers and
  // never-linked scratch vertices do not represent document structure).
  stats.dag_rle_edges = t.reachable_edges;
  const uint64_t tree_edges = stats.tree_nodes > 0 ? stats.tree_nodes - 1 : 0;
  stats.edge_ratio =
      tree_edges == 0 ? 0.0
                      : static_cast<double>(stats.dag_rle_edges) /
                            static_cast<double>(tree_edges);
  return stats;
}

}  // namespace xcq
