#ifndef XCQ_INSTANCE_INSTANCE_IO_H_
#define XCQ_INSTANCE_INSTANCE_IO_H_

/// \file instance_io.h
/// Binary serialization of compressed instances.
///
/// The paper's motivating use is to keep skeletons of very large
/// documents resident in main memory; persisting the compressed instance
/// lets an application parse + compress once and reload the (small) DAG
/// afterwards. The format is a little-endian, varint-compressed dump:
///
///   magic "XCQI" | u32 version | varint vertex_count | varint root
///   | varint relation_count | (name_len name_bytes)*      -- live schema
///   | per vertex: varint run_count, (varint child, varint count)*
///   | per relation: bitset words
///
/// `LoadInstance` validates everything (ids, acyclicity, RLE form) before
/// returning, so corrupt files surface as `StatusCode::kCorruption`.

#include <string>

#include "xcq/instance/instance.h"
#include "xcq/util/result.h"

namespace xcq {

/// \brief Serializes `instance` (live relations only) to bytes.
std::string SerializeInstance(const Instance& instance);

/// \brief Parses bytes produced by `SerializeInstance`.
Result<Instance> DeserializeInstance(std::string_view bytes);

/// \brief Serializes to a file.
Status SaveInstance(const Instance& instance, const std::string& path);

/// \brief Loads and validates an instance file.
Result<Instance> LoadInstance(const std::string& path);

}  // namespace xcq

#endif  // XCQ_INSTANCE_INSTANCE_IO_H_
