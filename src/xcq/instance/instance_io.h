#ifndef XCQ_INSTANCE_INSTANCE_IO_H_
#define XCQ_INSTANCE_INSTANCE_IO_H_

/// \file instance_io.h
/// Binary serialization of compressed instances.
///
/// The paper's motivating use is to keep skeletons of very large
/// documents resident in main memory; persisting the compressed instance
/// lets an application parse + compress once and reload the (small) DAG
/// afterwards. The format is a varint-compressed dump whose fixed-width
/// fields (u32 version, bitset words, footer) are written in host byte
/// order — `.xcqi` files are a same-host cache, not an interchange
/// format, and do not port between hosts of different endianness:
///
///   magic "XCQI" | u32 version | varint vertex_count | varint root
///   | varint relation_count | (name_len name_bytes)*      -- live schema
///   | per vertex: varint run_count, (varint child, varint count)*
///   | per relation: bitset words
///
/// Files written since the durable store landed carry a 16-byte
/// trailing footer so a half-written or bit-flipped spill is detected
/// before any of it is interpreted:
///
///   u32 crc32(payload) | u64 payload_size | end magic "XCQF"
///
/// (footer integers host-endian, matching the rest of the format).
///
/// `DeserializeInstance` accepts both forms: bytes ending in the footer
/// magic are checksum-verified first, anything else takes the legacy
/// footer-less path, so pre-footer `.xcqi` files keep loading.
///
/// `LoadInstance` validates everything (ids, acyclicity, RLE form) before
/// returning, so corrupt files surface as `StatusCode::kCorruption`.

#include <string>

#include "xcq/instance/instance.h"
#include "xcq/util/result.h"

namespace xcq {

/// \brief CRC-32 (IEEE 802.3 polynomial) of `bytes`.
uint32_t Crc32(std::string_view bytes);

/// \brief Serializes `instance` (live relations only) to bytes, without
/// a checksum footer. This is the legacy on-disk form; prefer
/// `SerializeInstanceChecksummed` for anything that touches a disk.
std::string SerializeInstance(const Instance& instance);

/// \brief Serializes `instance` and appends the CRC footer.
std::string SerializeInstanceChecksummed(const Instance& instance);

/// \brief Parses bytes produced by either Serialize variant. A present
/// footer is verified (size + CRC) before the payload is interpreted.
Result<Instance> DeserializeInstance(std::string_view bytes);

/// \brief Crash-safe whole-file write: `bytes` goes to `path + ".tmp"`,
/// is fsync'd, and is atomically renamed over `path` (the containing
/// directory is fsync'd too). After a crash `path` holds either the old
/// or the new content, never a mix.
Status AtomicWriteFile(const std::string& path, std::string_view bytes);

/// \brief Serializes to a file: checksummed format, atomic write.
Status SaveInstance(const Instance& instance, const std::string& path);

/// \brief Loads and validates an instance file (either format).
Result<Instance> LoadInstance(const std::string& path);

}  // namespace xcq

#endif  // XCQ_INSTANCE_INSTANCE_IO_H_
