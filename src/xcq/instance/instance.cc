#include "xcq/instance/instance.h"

#include <algorithm>

#include "xcq/util/string_util.h"

namespace xcq {

VertexId Instance::AddVertex() {
  const VertexId id = static_cast<VertexId>(spans_.size());
  spans_.push_back(EdgeSpan{});
  for (size_t r = 0; r < relations_.size(); ++r) {
    if (relation_live_[r]) relations_[r].PushBack(false);
  }
  MarkVertexDirty(id);
  return id;
}

void Instance::SetEdges(VertexId v, std::span<const Edge> edges) {
  // The input may alias this instance's own edge arena (e.g. a caller
  // passing another vertex's Children()); reallocation or in-place reuse
  // would then corrupt the source, so detach aliased inputs first.
  const bool aliased = !edges_.empty() && !edges.empty() &&
                       edges.data() >= edges_.data() &&
                       edges.data() < edges_.data() + edges_.size();
  std::vector<Edge> detached;
  if (aliased) {
    detached.assign(edges.begin(), edges.end());
    edges = detached;
  }
  if (track_dirty_) {
    const std::span<const Edge> current{edges_.data() + spans_[v].offset,
                                        spans_[v].length};
    if (current.size() != edges.size() ||
        !std::equal(current.begin(), current.end(), edges.begin())) {
      MarkVertexDirty(v);
    }
  }
  live_edge_count_ -= spans_[v].length;
  if (edges.size() <= spans_[v].length) {
    // Reuse the existing span in place.
    std::copy(edges.begin(), edges.end(), edges_.begin() + spans_[v].offset);
    spans_[v].length = static_cast<uint32_t>(edges.size());
  } else {
    spans_[v].offset = edges_.size();
    spans_[v].length = static_cast<uint32_t>(edges.size());
    edges_.insert(edges_.end(), edges.begin(), edges.end());
  }
  live_edge_count_ += spans_[v].length;
}

VertexId Instance::CloneVertex(VertexId v) {
  const VertexId id = static_cast<VertexId>(spans_.size());
  // Deep-copy the edge span: the clone's children may later be rewritten
  // independently of the original's.
  const EdgeSpan src = spans_[v];
  EdgeSpan dst;
  dst.offset = edges_.size();
  dst.length = src.length;
  edges_.insert(edges_.end(), edges_.begin() + src.offset,
                edges_.begin() + src.offset + src.length);
  spans_.push_back(dst);
  live_edge_count_ += dst.length;
  for (size_t r = 0; r < relations_.size(); ++r) {
    if (relation_live_[r]) relations_[r].PushBack(relations_[r].Test(v));
  }
  MarkVertexDirty(id);
  return id;
}

void Instance::CompactEdges() {
  std::vector<Edge> packed;
  packed.reserve(live_edge_count_);
  for (EdgeSpan& span : spans_) {
    const uint64_t new_offset = packed.size();
    packed.insert(packed.end(), edges_.begin() + span.offset,
                  edges_.begin() + span.offset + span.length);
    span.offset = new_offset;
  }
  edges_ = std::move(packed);
}

RelationId Instance::AddRelation(std::string_view name) {
  const RelationId existing = schema_.Find(name);
  if (existing != kNoRelation) return existing;
  const RelationId id = schema_.Intern(name);
  if (id == relations_.size()) {
    relations_.emplace_back(vertex_count());
    relation_live_.push_back(1);
  } else {
    // Intern reused a slot? Schema ids are append-only, so this cannot
    // happen; guard for safety.
    relations_.resize(schema_.size());
    relation_live_.resize(schema_.size(), 1);
    relations_[id] = DynamicBitset(vertex_count());
    relation_live_[id] = 1;
  }
  return id;
}

bool Instance::RemoveRelation(std::string_view name) {
  const RelationId id = schema_.Find(name);
  if (id == kNoRelation) return false;
  schema_.Remove(name);
  relations_[id] = DynamicBitset();  // release storage; tombstone stays
  relation_live_[id] = 0;
  return true;
}

std::vector<RelationId> Instance::LiveRelations() const {
  std::vector<RelationId> out;
  out.reserve(schema_.live_count());
  for (RelationId r = 0; r < schema_.size(); ++r) {
    if (!schema_.Name(r).empty()) out.push_back(r);
  }
  return out;
}

std::vector<VertexId> Instance::PostOrder() const {
  std::vector<VertexId> order;
  if (root_ == kNoVertex || vertex_count() == 0) return order;
  order.reserve(vertex_count());
  std::vector<uint8_t> visited(vertex_count(), 0);
  // Iterative DFS; frame = (vertex, index of next child run to visit).
  std::vector<std::pair<VertexId, uint32_t>> stack;
  stack.emplace_back(root_, 0);
  visited[root_] = 1;
  while (!stack.empty()) {
    auto& [v, next] = stack.back();
    const std::span<const Edge> children = Children(v);
    bool descended = false;
    while (next < children.size()) {
      const VertexId child = children[next].child;
      ++next;
      if (!visited[child]) {
        visited[child] = 1;
        stack.emplace_back(child, 0);
        descended = true;
        break;
      }
    }
    if (!descended && next >= children.size()) {
      order.push_back(v);
      stack.pop_back();
    }
  }
  return order;
}

uint64_t Instance::ReachableEdgeCount() const {
  uint64_t edges = 0;
  for (const VertexId v : PostOrder()) edges += Children(v).size();
  return edges;
}

std::vector<VertexId> Instance::TopologicalOrder() const {
  std::vector<VertexId> order = PostOrder();
  std::reverse(order.begin(), order.end());
  return order;
}

Status Instance::Validate() const {
  const size_t n = vertex_count();
  if (n == 0) {
    return root_ == kNoVertex
               ? Status::OK()
               : Status::Corruption("empty instance has a root");
  }
  if (root_ >= n) return Status::Corruption("root vertex out of range");
  for (VertexId v = 0; v < n; ++v) {
    if (spans_[v].offset + spans_[v].length > edges_.size()) {
      return Status::Corruption(
          StrFormat("vertex %u edge span out of range", v));
    }
    const std::span<const Edge> children = Children(v);
    for (size_t i = 0; i < children.size(); ++i) {
      if (children[i].child >= n) {
        return Status::Corruption(
            StrFormat("vertex %u has out-of-range child", v));
      }
      if (children[i].count == 0) {
        return Status::Corruption(
            StrFormat("vertex %u has a zero-count edge", v));
      }
      if (i > 0 && children[i].child == children[i - 1].child) {
        return Status::Corruption(
            StrFormat("vertex %u has adjacent runs of the same child "
                      "(not RLE-canonical)",
                      v));
      }
    }
  }
  for (const DynamicBitset& column : relations_) {
    if (!column.empty() && column.size() != n) {
      return Status::Corruption("relation column size mismatch");
    }
  }
  // Acyclicity: DFS with colors (0 = new, 1 = on stack, 2 = done).
  std::vector<uint8_t> color(n, 0);
  std::vector<std::pair<VertexId, uint32_t>> stack;
  for (VertexId start = 0; start < n; ++start) {
    if (color[start] != 0) continue;
    stack.emplace_back(start, 0);
    color[start] = 1;
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      const std::span<const Edge> children = Children(v);
      if (next < children.size()) {
        const VertexId child = children[next].child;
        ++next;
        if (color[child] == 1) {
          return Status::Corruption(
              StrFormat("cycle through vertex %u", child));
        }
        if (color[child] == 0) {
          color[child] = 1;
          stack.emplace_back(child, 0);
        }
      } else {
        color[v] = 2;
        stack.pop_back();
      }
    }
  }
  return Status::OK();
}

size_t Instance::MemoryFootprint() const {
  size_t bytes = spans_.capacity() * sizeof(EdgeSpan) +
                 edges_.capacity() * sizeof(Edge);
  for (const DynamicBitset& column : relations_) {
    bytes += column.words().capacity() * sizeof(uint64_t);
  }
  // The incremental-minimization cache lives inside the instance and is
  // real heap; count it so the server's capacity accounting stays honest.
  bytes += minimize_cache_.MemoryFootprint();
  bytes += dirty_flag_.capacity() +
           dirty_list_.capacity() * sizeof(VertexId);
  return bytes;
}

}  // namespace xcq
