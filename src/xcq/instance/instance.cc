#include "xcq/instance/instance.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "xcq/instance/stats.h"
#include "xcq/util/string_util.h"

namespace xcq {

VertexId Instance::AddVertex() {
  const VertexId id = static_cast<VertexId>(spans_.size());
  spans_.push_back(EdgeSpan{});
  for (size_t r = 0; r < relations_.size(); ++r) {
    if (relation_state_[r] != kRelationDead) relations_[r].PushBack(false);
  }
  MarkVertexDirty(id);
  InvalidateTraversal();
  return id;
}

void Instance::SetEdges(VertexId v, std::span<const Edge> edges) {
  // The input may alias this instance's own edge arena (e.g. a caller
  // passing another vertex's Children()); reallocation or in-place reuse
  // would then corrupt the source, so detach aliased inputs first.
  const bool aliased = !edges_.empty() && !edges.empty() &&
                       edges.data() >= edges_.data() &&
                       edges.data() < edges_.data() + edges_.size();
  std::vector<Edge> detached;
  if (aliased) {
    detached.assign(edges.begin(), edges.end());
    edges = detached;
  }
  {
    // No-op rewrites (common when kernels re-emit unchanged lists) keep
    // the traversal cache valid and the vertex clean.
    const std::span<const Edge> current{edges_.data() + spans_[v].offset,
                                        spans_[v].length};
    if (current.size() == edges.size() &&
        std::equal(current.begin(), current.end(), edges.begin())) {
      return;
    }
    MarkVertexDirty(v);
    InvalidateTraversal();
  }
  live_edge_count_ -= spans_[v].length;
  if (edges.size() <= spans_[v].length) {
    // Reuse the existing span in place.
    std::copy(edges.begin(), edges.end(), edges_.begin() + spans_[v].offset);
    spans_[v].length = static_cast<uint32_t>(edges.size());
  } else {
    spans_[v].offset = edges_.size();
    spans_[v].length = static_cast<uint32_t>(edges.size());
    edges_.insert(edges_.end(), edges.begin(), edges.end());
  }
  live_edge_count_ += spans_[v].length;
}

VertexId Instance::CloneVertex(VertexId v) {
  const VertexId id = static_cast<VertexId>(spans_.size());
  // Deep-copy the edge span: the clone's children may later be rewritten
  // independently of the original's.
  const EdgeSpan src = spans_[v];
  EdgeSpan dst;
  dst.offset = edges_.size();
  dst.length = src.length;
  edges_.insert(edges_.end(), edges_.begin() + src.offset,
                edges_.begin() + src.offset + src.length);
  spans_.push_back(dst);
  live_edge_count_ += dst.length;
  // Checked-out scratch columns carry in-flight selections and must be
  // split-copied exactly like live ones; idle columns copy too (cheap,
  // and keeps every grown column sized to vertex_count()).
  for (size_t r = 0; r < relations_.size(); ++r) {
    if (relation_state_[r] != kRelationDead) {
      relations_[r].PushBack(relations_[r].Test(v));
    }
  }
  MarkVertexDirty(id);
  InvalidateTraversal();
  return id;
}

// Note: compaction moves spans inside the arena but leaves every child
// sequence — and therefore the traversal cache — unchanged.
void Instance::CompactEdges() {
  std::vector<Edge> packed;
  packed.reserve(live_edge_count_);
  for (EdgeSpan& span : spans_) {
    const uint64_t new_offset = packed.size();
    packed.insert(packed.end(), edges_.begin() + span.offset,
                  edges_.begin() + span.offset + span.length);
    span.offset = new_offset;
  }
  edges_ = std::move(packed);
}

RelationId Instance::AddRelation(std::string_view name) {
  const RelationId existing = schema_.Find(name);
  if (existing != kNoRelation) return existing;
  const RelationId id = schema_.Intern(name);
  if (id == relations_.size()) {
    relations_.emplace_back(vertex_count());
    relation_state_.push_back(kRelationLive);
  } else {
    // Intern reused a slot? Schema ids are append-only, so this cannot
    // happen; guard for safety.
    relations_.resize(schema_.size());
    relation_state_.resize(schema_.size(), kRelationLive);
    relations_[id] = DynamicBitset(vertex_count());
    relation_state_[id] = kRelationLive;
  }
  return id;
}

bool Instance::RemoveRelation(std::string_view name) {
  const RelationId id = schema_.Find(name);
  if (id == kNoRelation) return false;
  schema_.Remove(name);
  relations_[id] = DynamicBitset();  // release storage; tombstone stays
  relation_state_[id] = kRelationDead;
  ++tombstones_added_;
  return true;
}

std::vector<RelationId> Instance::LiveRelations() const {
  std::vector<RelationId> out;
  out.reserve(schema_.live_count());
  for (RelationId r = 0; r < schema_.size(); ++r) {
    if (!schema_.Name(r).empty()) out.push_back(r);
  }
  return out;
}

RelationId Instance::AcquireScratchRelation() {
  ++scratch_stats_.acquires;
  ++scratch_active_;
  if (!scratch_free_.empty()) {
    // Resident column: storage was kept at release and the column kept
    // growing with the vertex array, so a word-parallel clear is the
    // whole checkout cost.
    const RelationId id = scratch_free_.back();
    scratch_free_.pop_back();
    relation_state_[id] = kRelationScratch;
    relations_[id].ResetAll();
    ++scratch_stats_.pool_hits;
    return id;
  }
  if (!scratch_parked_.empty()) {
    // Parked slot beyond the resident cap: reuse the id, reallocate the
    // storage (the exhaustion fallback — counted, never fatal).
    const RelationId id = scratch_parked_.back();
    scratch_parked_.pop_back();
    relation_state_[id] = kRelationScratch;
    relations_[id] = DynamicBitset(vertex_count());
    ++scratch_stats_.allocations;
    return id;
  }
  const RelationId id = schema_.InternAnonymous();
  relations_.emplace_back(vertex_count());
  relation_state_.push_back(kRelationScratch);
  ++scratch_stats_.allocations;
  return id;
}

void Instance::ReleaseScratchRelation(RelationId r) {
  if (r >= relation_state_.size() ||
      relation_state_[r] != kRelationScratch) {
    return;  // not a checked-out scratch column; ignore
  }
  ++scratch_stats_.releases;
  --scratch_active_;
  if (scratch_free_.size() < scratch_capacity_) {
    relation_state_[r] = kRelationIdle;
    scratch_free_.push_back(r);
    return;
  }
  relations_[r] = DynamicBitset();  // past the cap: keep the id only
  relation_state_[r] = kRelationDead;
  scratch_parked_.push_back(r);
}

std::vector<VertexId> Instance::PostOrder() const {
  std::vector<VertexId> order;
  if (root_ == kNoVertex || vertex_count() == 0) return order;
  order.reserve(vertex_count());
  std::vector<uint8_t> visited(vertex_count(), 0);
  // Iterative DFS; frame = (vertex, index of next child run to visit).
  std::vector<std::pair<VertexId, uint32_t>> stack;
  stack.emplace_back(root_, 0);
  visited[root_] = 1;
  while (!stack.empty()) {
    auto& [v, next] = stack.back();
    const std::span<const Edge> children = Children(v);
    bool descended = false;
    while (next < children.size()) {
      const VertexId child = children[next].child;
      ++next;
      if (!visited[child]) {
        visited[child] = 1;
        stack.emplace_back(child, 0);
        descended = true;
        break;
      }
    }
    if (!descended && next >= children.size()) {
      order.push_back(v);
      stack.pop_back();
    }
  }
  return order;
}

std::vector<VertexId> Instance::TopologicalOrder() const {
  const TraversalCache& t = EnsureTraversal();
  std::vector<VertexId> order(t.order.rbegin(), t.order.rend());
  return order;
}

const TraversalCache& Instance::EnsureTraversal(
    bool need_heights, bool need_path_counts) const {
  if (traversal_.generation != structure_generation_) {
    traversal_.order = PostOrder();
    uint64_t edges = 0;
    for (const VertexId v : traversal_.order) {
      edges += Children(v).size();
    }
    traversal_.reachable_edges = edges;
    traversal_.has_heights = false;
    traversal_.has_path_counts = false;
    traversal_.generation = structure_generation_;
    ++traversal_builds_;
  }
  if (need_heights && !traversal_.has_heights) {
    const size_t n = vertex_count();
    traversal_.height.assign(n, TraversalCache::kNoHeight);
    uint32_t max_height = 0;
    for (const VertexId v : traversal_.order) {
      uint32_t h = 0;
      for (const Edge& e : Children(v)) {
        // Children precede parents in post-order, so their height is
        // final; reachable vertices only reach reachable children.
        const uint32_t below = traversal_.height[e.child] + 1;
        if (below > h) h = below;
      }
      traversal_.height[v] = h;
      if (h > max_height) max_height = h;
    }
    traversal_.bands.assign(traversal_.order.empty() ? 0 : max_height + 1,
                            {});
    for (const VertexId v : traversal_.order) {
      traversal_.bands[traversal_.height[v]].push_back(v);
    }
    traversal_.has_heights = true;
  }
  if (need_path_counts && !traversal_.has_path_counts) {
    traversal_.path_counts.assign(vertex_count(), 0);
    if (root_ != kNoVertex && vertex_count() > 0) {
      traversal_.path_counts[root_] = 1;
      // Reverse post-order = parents before children: each vertex's own
      // count is final before it is pushed down.
      for (auto it = traversal_.order.rbegin();
           it != traversal_.order.rend(); ++it) {
        const uint64_t mine = traversal_.path_counts[*it];
        for (const Edge& e : Children(*it)) {
          traversal_.path_counts[e.child] =
              SaturatingAdd(traversal_.path_counts[e.child],
                            SaturatingMul(mine, e.count));
        }
      }
    }
    traversal_.has_path_counts = true;
  }
  return traversal_;
}

uint64_t Instance::LabelSchemaFingerprint() const {
  // FNV-1a over (id, name) of every live non-`xcq:` relation. Ids are
  // mixed in because summary labels store ids: a removed-and-reinterned
  // name gets a fresh id and must invalidate.
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  for (RelationId r = 0; r < schema_.size(); ++r) {
    const std::string_view name = schema_.Name(r);
    if (name.empty() || name.starts_with("xcq:")) continue;
    mix(r);
    for (const char c : name) mix(static_cast<unsigned char>(c));
    mix(0x1F);  // name terminator
  }
  return h;
}

const PathSummary& Instance::EnsurePathSummary() const {
  const uint64_t fingerprint = LabelSchemaFingerprint();
  if (path_summary_.generation == structure_generation_ &&
      path_summary_.schema_fingerprint == fingerprint) {
    return path_summary_;
  }
  ++path_summary_builds_;
  path_summary_ = PathSummary{};
  path_summary_.generation = structure_generation_;
  path_summary_.schema_fingerprint = fingerprint;

  const size_t n = vertex_count();
  const TraversalCache& t = EnsureTraversal();
  if (root_ == kNoVertex || t.order.empty()) {
    path_summary_.vertex_begin.assign(n + 1, 0);
    return path_summary_;
  }

  // Intern per-vertex labels (sorted live non-`xcq:` relation id sets).
  std::vector<RelationId> label_rels;
  for (RelationId r = 0; r < schema_.size(); ++r) {
    const std::string_view name = schema_.Name(r);
    if (!name.empty() && !name.starts_with("xcq:")) label_rels.push_back(r);
  }
  std::map<std::vector<RelationId>, uint32_t> label_ids;
  std::vector<uint32_t> vertex_label(n, 0);
  std::vector<RelationId> key;
  for (const VertexId v : t.order) {
    key.clear();
    for (const RelationId r : label_rels) {
      const DynamicBitset& column = relations_[r];
      if (v < column.size() && column.Test(v)) key.push_back(r);
    }
    const auto it = label_ids.find(key);
    if (it != label_ids.end()) {
      vertex_label[v] = it->second;
    } else {
      const uint32_t id = static_cast<uint32_t>(path_summary_.labels.size());
      label_ids.emplace(key, id);
      path_summary_.labels.push_back(key);
      vertex_label[v] = id;
    }
  }

  // Grow the trie over reverse post-order (parents before children), so
  // every vertex's realized-path set is final before it is pushed down.
  std::vector<PathSummary::Node>& nodes = path_summary_.nodes;
  std::unordered_map<uint64_t, uint32_t> child_index;  // parent<<32 | label
  std::unordered_set<uint64_t> realization_seen;       // vertex<<32 | node
  std::vector<std::vector<uint32_t>> realized(n);
  size_t realizations = 1;
  bool saturated = false;
  nodes.push_back(
      PathSummary::Node{PathSummary::kNoNode, vertex_label[root_]});
  realized[root_].push_back(0);

  for (auto it = t.order.rbegin(); it != t.order.rend() && !saturated;
       ++it) {
    const VertexId v = *it;
    for (const uint32_t path : realized[v]) {
      for (const Edge& e : Children(v)) {
        const uint64_t lookup =
            (uint64_t{path} << 32) | vertex_label[e.child];
        uint32_t node;
        const auto found = child_index.find(lookup);
        if (found != child_index.end()) {
          node = found->second;
        } else {
          if (nodes.size() >= PathSummary::kMaxNodes) {
            saturated = true;
            break;
          }
          node = static_cast<uint32_t>(nodes.size());
          nodes.push_back(PathSummary::Node{path, vertex_label[e.child]});
          child_index.emplace(lookup, node);
        }
        // RLE lists may repeat a child in non-adjacent runs, and many
        // parents realizing the same path reach the same child; the
        // hash dedups in O(1) (deep corpora realize tens of thousands
        // of paths at one vertex, so a linear scan would be quadratic).
        // Membership only — push order stays deterministic.
        std::vector<uint32_t>& into = realized[e.child];
        if (realization_seen
                .emplace((uint64_t{e.child} << 32) | node)
                .second) {
          if (realizations >= PathSummary::kMaxRealizations) {
            saturated = true;
            break;
          }
          into.push_back(node);
          ++realizations;
        }
      }
      if (saturated) break;
    }
  }

  if (saturated) {
    // Stay "built" for this generation so hot paths do not rebuild per
    // query; carry no nodes so pruning stands down.
    path_summary_.saturated = true;
    path_summary_.nodes.clear();
    path_summary_.nodes.shrink_to_fit();
    path_summary_.labels.clear();
    path_summary_.vertex_begin.assign(n + 1, 0);
    return path_summary_;
  }

  path_summary_.vertex_begin.resize(n + 1);
  path_summary_.vertex_nodes.reserve(realizations);
  uint32_t offset = 0;
  for (VertexId v = 0; v < n; ++v) {
    path_summary_.vertex_begin[v] = offset;
    path_summary_.vertex_nodes.insert(path_summary_.vertex_nodes.end(),
                                      realized[v].begin(),
                                      realized[v].end());
    offset += static_cast<uint32_t>(realized[v].size());
  }
  path_summary_.vertex_begin[n] = offset;
  return path_summary_;
}

Status Instance::Validate() const {
  const size_t n = vertex_count();
  if (n == 0) {
    return root_ == kNoVertex
               ? Status::OK()
               : Status::Corruption("empty instance has a root");
  }
  if (root_ >= n) return Status::Corruption("root vertex out of range");
  for (VertexId v = 0; v < n; ++v) {
    if (spans_[v].offset + spans_[v].length > edges_.size()) {
      return Status::Corruption(
          StrFormat("vertex %u edge span out of range", v));
    }
    const std::span<const Edge> children = Children(v);
    for (size_t i = 0; i < children.size(); ++i) {
      if (children[i].child >= n) {
        return Status::Corruption(
            StrFormat("vertex %u has out-of-range child", v));
      }
      if (children[i].count == 0) {
        return Status::Corruption(
            StrFormat("vertex %u has a zero-count edge", v));
      }
      if (i > 0 && children[i].child == children[i - 1].child) {
        return Status::Corruption(
            StrFormat("vertex %u has adjacent runs of the same child "
                      "(not RLE-canonical)",
                      v));
      }
    }
  }
  for (const DynamicBitset& column : relations_) {
    if (!column.empty() && column.size() != n) {
      return Status::Corruption("relation column size mismatch");
    }
  }
  // Acyclicity: DFS with colors (0 = new, 1 = on stack, 2 = done).
  std::vector<uint8_t> color(n, 0);
  std::vector<std::pair<VertexId, uint32_t>> stack;
  for (VertexId start = 0; start < n; ++start) {
    if (color[start] != 0) continue;
    stack.emplace_back(start, 0);
    color[start] = 1;
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      const std::span<const Edge> children = Children(v);
      if (next < children.size()) {
        const VertexId child = children[next].child;
        ++next;
        if (color[child] == 1) {
          return Status::Corruption(
              StrFormat("cycle through vertex %u", child));
        }
        if (color[child] == 0) {
          color[child] = 1;
          stack.emplace_back(child, 0);
        }
      } else {
        color[v] = 2;
        stack.pop_back();
      }
    }
  }
  return Status::OK();
}

size_t Instance::MemoryFootprint() const {
  size_t bytes = spans_.capacity() * sizeof(EdgeSpan) +
                 edges_.capacity() * sizeof(Edge);
  for (const DynamicBitset& column : relations_) {
    bytes += column.words().capacity() * sizeof(uint64_t);
  }
  // The incremental-minimization cache and the traversal cache live
  // inside the instance and are real heap; count them so the server's
  // capacity accounting stays honest.
  bytes += minimize_cache_.MemoryFootprint();
  bytes += traversal_.MemoryFootprint();
  bytes += path_summary_.MemoryFootprint();
  bytes += dirty_flag_.capacity() +
           dirty_list_.capacity() * sizeof(VertexId);
  return bytes;
}

}  // namespace xcq
