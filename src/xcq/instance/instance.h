#ifndef XCQ_INSTANCE_INSTANCE_H_
#define XCQ_INSTANCE_INSTANCE_H_

/// \file instance.h
/// σ-instances (Sec. 2.1): rooted DAGs whose vertices carry a sequence of
/// children and memberships in the schema's unary relations. Both the
/// original tree skeleton and all of its (partially) compressed versions
/// are instances; queries map instances to instances.
///
/// Representation notes:
///  * Child sequences are run-length encoded: consecutive occurrences of
///    the same child are one `Edge{child, count}` (Fig. 1 (c)). The paper
///    reports edge counts in this representation and we follow it.
///  * Edge lists live in one flat arena; each vertex owns a span. Query
///    operators rewrite spans in place (same length) or append fresh
///    spans (splits); `CompactEdges()` reclaims abandoned spans.
///  * Relations are columnar bitsets indexed by vertex id, so set
///    operations are word-parallel and a vertex split copies its bits in
///    O(live relations).

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "xcq/instance/schema.h"
#include "xcq/util/bitset.h"
#include "xcq/util/result.h"

namespace xcq {

using VertexId = uint32_t;
inline constexpr VertexId kNoVertex = UINT32_MAX;

/// \brief Persistent hash-cons state for incremental re-minimization
/// (`MinimizeInPlace` in compress/minimize.h).
///
/// The full `Minimize` pass re-hashes every reachable vertex on every
/// call. This cache keeps the hash-cons table alive *inside the
/// instance* between passes: `table` maps a vertex-signature hash to the
/// canonical vertex carrying it, and `vertex_hash` remembers each
/// vertex's signature at insertion time (0 = not in the table) so stale
/// entries can be evicted without recomputing old signatures.
/// Signatures are derived from live relation *names* (not ids), so the
/// cache survives schema tombstone churn from per-query temporaries.
///
/// The cache is a plain value: copying an instance copies the cache,
/// which remains valid for the copy. `valid` is false until the first
/// seeding pass; `schema_fingerprint` detects live-relation-set changes
/// that invalidate every stored signature.
struct MinimizeCache {
  bool valid = false;
  uint64_t schema_fingerprint = 0;
  std::vector<uint64_t> vertex_hash;
  std::unordered_multimap<uint64_t, VertexId> table;

  void Invalidate() {
    valid = false;
    schema_fingerprint = 0;
    vertex_hash.clear();
    table.clear();
  }

  /// Rough heap footprint in bytes (counted by Instance::MemoryFootprint).
  size_t MemoryFootprint() const {
    return vertex_hash.capacity() * sizeof(uint64_t) +
           table.size() * (sizeof(std::pair<uint64_t, VertexId>) +
                           2 * sizeof(void*)) +
           table.bucket_count() * sizeof(void*);
  }
};

/// \brief A run of `count` consecutive edges to the same child.
struct Edge {
  VertexId child = kNoVertex;
  uint64_t count = 1;

  bool operator==(const Edge&) const = default;
};

/// \brief Memoized structural traversal of an instance, owned by
/// `Instance` and rebuilt lazily (docs/INTERNALS.md §8).
///
/// Every axis sweep, reachability count, and path-count decode starts
/// from the same derived data: the DFS post-order over the reachable
/// DAG, per-vertex heights with their height bands, and per-vertex
/// root-path counts. Before this cache each operator recomputed them
/// with a private `PostOrder()` walk — per *op*, which dominates short
/// queries. The cache computes each section once per structural
/// generation: any mutation of vertices, edges, or the root bumps
/// `Instance::structure_generation()` and the next `EnsureTraversal`
/// rebuilds. Relation-column writes (selections) do not invalidate.
///
/// Sections are filled on demand: `order` + `reachable_edges` always,
/// heights/bands and path counts only when a caller asks (each costs
/// one extra pass over the order). References returned by
/// `EnsureTraversal` are stable until the next rebuild — callers that
/// mutate the instance while iterating must copy first (the kernels
/// snapshot by holding the reference across a generation they know is
/// stale only for *later* readers; see docs/PARALLELISM.md §2).
struct TraversalCache {
  static constexpr uint32_t kNoHeight = UINT32_MAX;

  /// Reachable vertices, children before parents (DFS post-order).
  std::vector<VertexId> order;
  /// RLE edges over the reachable vertices.
  uint64_t reachable_edges = 0;

  /// height[v] = longest path to a leaf for reachable v; kNoHeight for
  /// unreachable ids. Leaves are 0; the root is the unique maximum.
  bool has_heights = false;
  std::vector<uint32_t> height;
  /// bands[h] = reachable vertices of height h, in post-order position.
  std::vector<std::vector<VertexId>> bands;

  /// path_counts[v] = number of root paths to v (saturating), the
  /// decoding weights of Sec. 2.1; 0 for unreachable ids.
  bool has_path_counts = false;
  std::vector<uint64_t> path_counts;

  /// Structure generation this cache was built at (0 = never built).
  uint64_t generation = 0;

  size_t MemoryFootprint() const {
    size_t bytes = order.capacity() * sizeof(VertexId) +
                   height.capacity() * sizeof(uint32_t) +
                   path_counts.capacity() * sizeof(uint64_t) +
                   bands.capacity() * sizeof(std::vector<VertexId>);
    for (const std::vector<VertexId>& band : bands) {
      bytes += band.capacity() * sizeof(VertexId);
    }
    return bytes;
  }
};

/// \brief Path summary: the trie of distinct root-to-label paths of the
/// tree `T(I)`, with the vertex slices realizing each path — the second
/// product of the traversal-cache family (docs/INTERNALS.md §9).
///
/// A *label* is the set of live, non-`xcq:` relations a vertex belongs
/// to (tags and string-pattern relations; result/temporary columns are
/// excluded because their bits change without a structure-generation
/// bump). A summary node stands for one distinct sequence of labels
/// from the root; `vertex_nodes` lists, per vertex, the nodes whose
/// paths reach it. Splits change which vertex realizes which path but
/// never the path set itself (they preserve `T(I)`), so plan-side
/// admissible-path sets survive splits; only the vertex slices must be
/// rebuilt, which the structure generation triggers.
///
/// Validity = structure generation + a fingerprint of the live
/// non-`xcq:` relation set (ids and names): adding, removing, or
/// re-interning a label relation rebuilds. Corollary of the label
/// definition: callers must not hand-mutate the bits of a live named
/// non-`xcq:` relation on an unchanged structure (the compressor writes
/// them once; splits copy them; nothing else in the tree does).
///
/// Documents whose path diversity exceeds the caps mark the summary
/// `saturated`: it stays "built" for the generation (no rebuild storm)
/// but carries no nodes, and sweep pruning stands down.
struct PathSummary {
  static constexpr uint32_t kNoNode = UINT32_MAX;
  /// Distinct root-to-label paths beyond this stop paying for
  /// themselves (region construction scans realizations linearly).
  /// Sized for the worst corpus: TreeBank's deep recursive nesting
  /// yields ~385k distinct paths at the benchmark scale — an order of
  /// magnitude more than every other corpus combined, and the corpus
  /// where pruning matters most.
  static constexpr size_t kMaxNodes = size_t{1} << 20;
  /// Cap on (vertex, path) realization pairs.
  static constexpr size_t kMaxRealizations = size_t{1} << 22;

  /// One distinct root-to-label path. Parents precede children in
  /// `nodes` (node 0 is the root's path), so a single ascending /
  /// descending index pass computes downward / upward closures.
  struct Node {
    uint32_t parent = kNoNode;
    uint32_t label = 0;  ///< Index into `labels`.
  };

  bool saturated = false;
  std::vector<Node> nodes;
  /// Interned label alphabet: each entry the sorted live non-`xcq:`
  /// relation ids of the vertices carrying it.
  std::vector<std::vector<RelationId>> labels;
  /// CSR: `vertex_nodes[vertex_begin[v] .. vertex_begin[v+1])` are the
  /// summary nodes vertex `v` realizes (empty for unreachable ids).
  std::vector<uint32_t> vertex_begin;
  std::vector<uint32_t> vertex_nodes;

  /// Structure generation this summary was built at (0 = never built).
  uint64_t generation = 0;
  /// Fingerprint of the live non-`xcq:` relation set at build time.
  uint64_t schema_fingerprint = 0;

  size_t MemoryFootprint() const {
    size_t bytes = nodes.capacity() * sizeof(Node) +
                   vertex_begin.capacity() * sizeof(uint32_t) +
                   vertex_nodes.capacity() * sizeof(uint32_t) +
                   labels.capacity() * sizeof(std::vector<RelationId>);
    for (const std::vector<RelationId>& label : labels) {
      bytes += label.capacity() * sizeof(RelationId);
    }
    return bytes;
  }
};

/// \brief Counters for the resident scratch-relation pool (per-op query
/// temporaries; see Instance::AcquireScratchRelation).
struct ScratchPoolStats {
  uint64_t acquires = 0;     ///< Total checkouts.
  uint64_t pool_hits = 0;    ///< Served from a resident column: no allocation.
  uint64_t allocations = 0;  ///< Column storage had to be (re)allocated.
  uint64_t releases = 0;     ///< Columns returned to the pool.
};

/// \brief A rooted DAG over a schema of unary relations.
class Instance {
 public:
  Instance() = default;

  // --- Vertices and edges -------------------------------------------------

  size_t vertex_count() const { return spans_.size(); }

  VertexId root() const { return root_; }
  void SetRoot(VertexId v) {
    if (root_ != v) InvalidateTraversal();
    root_ = v;
  }

  /// Appends a leaf vertex (no edges, no relation memberships).
  VertexId AddVertex();

  /// Replaces v's child sequence. The new sequence must be RLE-canonical
  /// (no two adjacent edges with the same child, all counts >= 1); use
  /// `AppendEdgeRle` to build such sequences incrementally.
  void SetEdges(VertexId v, std::span<const Edge> edges);

  /// Duplicates `v`: same child sequence, same memberships in every live
  /// relation. This is the "split" primitive of partial decompression.
  VertexId CloneVertex(VertexId v);

  /// The child runs of `v`, in order.
  std::span<const Edge> Children(VertexId v) const {
    return {edges_.data() + spans_[v].offset, spans_[v].length};
  }

  /// Mutable access for in-place child rewrites (length is fixed).
  /// Conservatively marks `v` dirty when dirty tracking is on and
  /// conservatively invalidates the traversal cache — callers take this
  /// span to rewrite edges.
  std::span<Edge> MutableChildren(VertexId v) {
    MarkVertexDirty(v);
    InvalidateTraversal();
    return {edges_.data() + spans_[v].offset, spans_[v].length};
  }

  bool IsLeaf(VertexId v) const { return spans_[v].length == 0; }

  /// Number of RLE edges currently owned by vertices (|E| of the paper).
  uint64_t rle_edge_count() const { return live_edge_count_; }

  /// Drops abandoned edge spans (after heavy splitting).
  void CompactEdges();

  // --- Relations -----------------------------------------------------------

  const Schema& schema() const { return schema_; }

  /// Id of `name`, interning and allocating an empty column if new.
  RelationId AddRelation(std::string_view name);

  /// Id of `name`, or kNoRelation.
  RelationId FindRelation(std::string_view name) const {
    return schema_.Find(name);
  }

  /// Drops a relation (its column becomes a tombstone). False if absent.
  bool RemoveRelation(std::string_view name);

  const DynamicBitset& RelationBits(RelationId r) const {
    return relations_[r];
  }
  DynamicBitset& MutableRelationBits(RelationId r) { return relations_[r]; }

  bool Test(RelationId r, VertexId v) const { return relations_[r].Test(v); }
  void SetBit(RelationId r, VertexId v) { relations_[r].Set(v); }
  void AssignBit(RelationId r, VertexId v, bool value) {
    relations_[r].Assign(v, value);
  }

  /// Live relation ids in id order (skips tombstones and scratch).
  std::vector<RelationId> LiveRelations() const;

  /// Named relations tombstoned over this instance's lifetime (the
  /// schema churn `bench_hotpath` requires to be zero per query).
  uint64_t tombstones_added() const { return tombstones_added_; }

  // --- Scratch-relation pool -----------------------------------------------
  //
  // Per-op query temporaries used to be named relations, interned into
  // the schema per evaluation and tombstoned right after — churn that
  // grew the schema, invalidated minimize-cache fingerprints, and
  // allocated a fresh column per op. The pool keeps a bounded set of
  // *anonymous* columns resident inside the instance instead: checked
  // out zeroed per op, returned after evaluation, excluded from
  // LiveRelations / serialization / merges / signatures, but grown and
  // split-copied exactly like live columns while checked out (splits
  // must keep every in-flight selection consistent).

  /// Checks out a zeroed scratch column sized to vertex_count(). Serves
  /// a resident column when one is free (no allocation); falls back to
  /// allocating a new or evicted slot otherwise (counted, never fails).
  RelationId AcquireScratchRelation();

  /// Returns `r` to the pool. Up to `scratch_capacity()` columns stay
  /// resident (storage kept for the next checkout); beyond that the
  /// column's storage is released and the slot parked for reuse.
  void ReleaseScratchRelation(RelationId r);

  /// Resident-column cap for the pool (default 64 — comfortably above
  /// any compiled plan's op count times a realistic batch width).
  size_t scratch_capacity() const { return scratch_capacity_; }
  void set_scratch_capacity(size_t capacity) {
    scratch_capacity_ = capacity;
  }

  const ScratchPoolStats& scratch_stats() const { return scratch_stats_; }

  /// Schema slots currently backing scratch columns (any state).
  size_t scratch_slot_count() const {
    return scratch_active_ + scratch_free_.size() + scratch_parked_.size();
  }

  // --- Traversal helpers ---------------------------------------------------

  /// The memoized traversal (see TraversalCache), rebuilt if the
  /// structure changed since the last call; heights/bands and path
  /// counts are filled only when requested. The returned reference is
  /// stable until the next structural mutation *followed by* another
  /// EnsureTraversal call — callers that mutate while iterating must
  /// copy the sections they need first. Not thread-safe while it
  /// (re)builds: like all Instance mutation, first access after a
  /// structural change requires exclusive access.
  const TraversalCache& EnsureTraversal(bool need_heights = false,
                                        bool need_path_counts = false) const;

  /// Monotone counter bumped by every structural mutation; the cache is
  /// current iff EnsureTraversal().generation equals this.
  uint64_t structure_generation() const { return structure_generation_; }

  /// True when the next EnsureTraversal() is a pure read (no walk).
  bool traversal_cache_valid() const {
    return traversal_.generation == structure_generation_;
  }

  /// Full post-order walks performed so far (cache rebuilds). After
  /// warmup a steady-state query must not move this counter.
  uint64_t traversal_builds() const { return traversal_builds_; }

  /// The memoized path summary (see PathSummary), rebuilt when the
  /// structure or the live non-`xcq:` relation set changed since the
  /// last call. Same stability and thread-safety contract as
  /// EnsureTraversal: the reference survives until a mutation followed
  /// by another Ensure call, and a (re)build requires exclusive access.
  const PathSummary& EnsurePathSummary() const;

  /// True when the next EnsurePathSummary() is a pure read.
  bool path_summary_valid() const {
    return path_summary_.generation == structure_generation_ &&
           path_summary_.schema_fingerprint == LabelSchemaFingerprint();
  }

  /// Summary rebuilds so far (saturated builds included). After warmup
  /// a steady-state query must not move this counter.
  uint64_t path_summary_builds() const { return path_summary_builds_; }

  /// Fingerprint of the live non-`xcq:` relation set (ids and names) —
  /// the schema half of the path-summary validity check.
  uint64_t LabelSchemaFingerprint() const;

  /// Reachable vertices, parents before children (reverse DFS
  /// post-order). Served from the traversal cache (copied).
  std::vector<VertexId> TopologicalOrder() const;

  /// Reachable vertices, children before parents (DFS post-order).
  /// Always a fresh walk, bypassing the cache — this is the oracle the
  /// traversal-cache tests compare against; hot paths read
  /// EnsureTraversal() instead.
  std::vector<VertexId> PostOrder() const;

  /// Number of vertices reachable from the root (cache read).
  size_t ReachableCount() const { return EnsureTraversal().order.size(); }

  /// RLE edges over the reachable vertices only — the |E| the paper
  /// reports once split leftovers / merged-away garbage are excluded.
  uint64_t ReachableEdgeCount() const {
    return EnsureTraversal().reachable_edges;
  }

  // --- Dirty-vertex tracking (incremental re-minimization) -----------------
  //
  // When tracking is on, every structural change records the touched
  // vertex: `CloneVertex`/`AddVertex` mark the new vertex, `SetEdges`
  // marks on content change, `MutableChildren` marks conservatively.
  // Callers mark relation-membership changes themselves (relation
  // columns are rewritten wholesale, so the instance cannot attribute
  // them). `MinimizeInPlace` consumes the set via TakeDirtyVertices().

  /// Turns dirty tracking on or off. The accumulated set is preserved
  /// across toggles; use TakeDirtyVertices() to drain it.
  void SetDirtyTracking(bool enabled) { track_dirty_ = enabled; }
  bool dirty_tracking() const { return track_dirty_; }

  /// Records `v` as structurally changed (no-op when tracking is off).
  void MarkVertexDirty(VertexId v) {
    if (!track_dirty_) return;
    if (dirty_flag_.size() < spans_.size()) {
      dirty_flag_.resize(spans_.size(), 0);
    }
    if (v >= dirty_flag_.size() || dirty_flag_[v]) return;
    dirty_flag_[v] = 1;
    dirty_list_.push_back(v);
  }

  /// Returns the accumulated dirty set (deduplicated, in first-marked
  /// order) and clears it.
  std::vector<VertexId> TakeDirtyVertices() {
    for (const VertexId v : dirty_list_) {
      if (v < dirty_flag_.size()) dirty_flag_[v] = 0;
    }
    return std::exchange(dirty_list_, {});
  }

  size_t dirty_count() const { return dirty_list_.size(); }

  /// Persistent hash-cons state for `MinimizeInPlace` (see MinimizeCache).
  MinimizeCache& minimize_cache() { return minimize_cache_; }
  const MinimizeCache& minimize_cache() const { return minimize_cache_; }

  // --- Integrity -----------------------------------------------------------

  /// Checks structural invariants: valid ids, RLE canonical form,
  /// acyclicity, root in range, relation columns sized to vertex_count.
  Status Validate() const;

  /// Estimated heap footprint in bytes (for the experiment reports).
  size_t MemoryFootprint() const;

 private:
  struct EdgeSpan {
    uint64_t offset = 0;
    uint32_t length = 0;
  };

  /// Per-column state, parallel to relations_. Dead columns stay empty
  /// and are skipped by vertex-growth operations; every other state is
  /// grown (and split-copied) with the vertex array. Only kLive columns
  /// are visible to LiveRelations().
  enum RelationState : uint8_t {
    kRelationDead = 0,     ///< Tombstone or parked scratch slot (empty).
    kRelationLive = 1,     ///< Named relation.
    kRelationScratch = 2,  ///< Checked-out scratch column.
    kRelationIdle = 3,     ///< Resident pooled column awaiting checkout.
  };

  void InvalidateTraversal() { ++structure_generation_; }

  Schema schema_;
  std::vector<EdgeSpan> spans_;
  std::vector<Edge> edges_;
  std::vector<DynamicBitset> relations_;
  std::vector<uint8_t> relation_state_;
  VertexId root_ = kNoVertex;
  uint64_t live_edge_count_ = 0;
  uint64_t tombstones_added_ = 0;

  /// Scratch pool: ids of resident idle columns (storage kept) and of
  /// parked dead slots (storage released, reusable with a realloc).
  std::vector<RelationId> scratch_free_;
  std::vector<RelationId> scratch_parked_;
  size_t scratch_active_ = 0;
  size_t scratch_capacity_ = 64;
  ScratchPoolStats scratch_stats_;

  /// Traversal memoization (see TraversalCache). `mutable`: logically
  /// derived state filled in by const readers.
  uint64_t structure_generation_ = 1;
  mutable TraversalCache traversal_;
  mutable uint64_t traversal_builds_ = 0;
  mutable PathSummary path_summary_;
  mutable uint64_t path_summary_builds_ = 0;

  bool track_dirty_ = false;
  /// Parallel to spans_ (grown lazily): 1 for vertices in dirty_list_.
  std::vector<uint8_t> dirty_flag_;
  std::vector<VertexId> dirty_list_;
  MinimizeCache minimize_cache_;
};

/// \brief Appends `edge` to an RLE sequence, merging with the last run if
/// it has the same child.
inline void AppendEdgeRle(std::vector<Edge>* edges, Edge edge) {
  if (!edges->empty() && edges->back().child == edge.child) {
    edges->back().count += edge.count;
  } else {
    edges->push_back(edge);
  }
}

}  // namespace xcq

#endif  // XCQ_INSTANCE_INSTANCE_H_
