#ifndef XCQ_INSTANCE_INSTANCE_H_
#define XCQ_INSTANCE_INSTANCE_H_

/// \file instance.h
/// σ-instances (Sec. 2.1): rooted DAGs whose vertices carry a sequence of
/// children and memberships in the schema's unary relations. Both the
/// original tree skeleton and all of its (partially) compressed versions
/// are instances; queries map instances to instances.
///
/// Representation notes:
///  * Child sequences are run-length encoded: consecutive occurrences of
///    the same child are one `Edge{child, count}` (Fig. 1 (c)). The paper
///    reports edge counts in this representation and we follow it.
///  * Edge lists live in one flat arena; each vertex owns a span. Query
///    operators rewrite spans in place (same length) or append fresh
///    spans (splits); `CompactEdges()` reclaims abandoned spans.
///  * Relations are columnar bitsets indexed by vertex id, so set
///    operations are word-parallel and a vertex split copies its bits in
///    O(live relations).

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "xcq/instance/schema.h"
#include "xcq/util/bitset.h"
#include "xcq/util/result.h"

namespace xcq {

using VertexId = uint32_t;
inline constexpr VertexId kNoVertex = UINT32_MAX;

/// \brief A run of `count` consecutive edges to the same child.
struct Edge {
  VertexId child = kNoVertex;
  uint64_t count = 1;

  bool operator==(const Edge&) const = default;
};

/// \brief A rooted DAG over a schema of unary relations.
class Instance {
 public:
  Instance() = default;

  // --- Vertices and edges -------------------------------------------------

  size_t vertex_count() const { return spans_.size(); }

  VertexId root() const { return root_; }
  void SetRoot(VertexId v) { root_ = v; }

  /// Appends a leaf vertex (no edges, no relation memberships).
  VertexId AddVertex();

  /// Replaces v's child sequence. The new sequence must be RLE-canonical
  /// (no two adjacent edges with the same child, all counts >= 1); use
  /// `AppendEdgeRle` to build such sequences incrementally.
  void SetEdges(VertexId v, std::span<const Edge> edges);

  /// Duplicates `v`: same child sequence, same memberships in every live
  /// relation. This is the "split" primitive of partial decompression.
  VertexId CloneVertex(VertexId v);

  /// The child runs of `v`, in order.
  std::span<const Edge> Children(VertexId v) const {
    return {edges_.data() + spans_[v].offset, spans_[v].length};
  }

  /// Mutable access for in-place child rewrites (length is fixed).
  std::span<Edge> MutableChildren(VertexId v) {
    return {edges_.data() + spans_[v].offset, spans_[v].length};
  }

  bool IsLeaf(VertexId v) const { return spans_[v].length == 0; }

  /// Number of RLE edges currently owned by vertices (|E| of the paper).
  uint64_t rle_edge_count() const { return live_edge_count_; }

  /// Drops abandoned edge spans (after heavy splitting).
  void CompactEdges();

  // --- Relations -----------------------------------------------------------

  const Schema& schema() const { return schema_; }

  /// Id of `name`, interning and allocating an empty column if new.
  RelationId AddRelation(std::string_view name);

  /// Id of `name`, or kNoRelation.
  RelationId FindRelation(std::string_view name) const {
    return schema_.Find(name);
  }

  /// Drops a relation (its column becomes a tombstone). False if absent.
  bool RemoveRelation(std::string_view name);

  const DynamicBitset& RelationBits(RelationId r) const {
    return relations_[r];
  }
  DynamicBitset& MutableRelationBits(RelationId r) { return relations_[r]; }

  bool Test(RelationId r, VertexId v) const { return relations_[r].Test(v); }
  void SetBit(RelationId r, VertexId v) { relations_[r].Set(v); }
  void AssignBit(RelationId r, VertexId v, bool value) {
    relations_[r].Assign(v, value);
  }

  /// Live relation ids in id order (skips tombstones).
  std::vector<RelationId> LiveRelations() const;

  // --- Traversal helpers ---------------------------------------------------

  /// Reachable vertices, parents before children (reverse DFS post-order).
  std::vector<VertexId> TopologicalOrder() const;

  /// Reachable vertices, children before parents (DFS post-order).
  std::vector<VertexId> PostOrder() const;

  /// Number of vertices reachable from the root.
  size_t ReachableCount() const { return PostOrder().size(); }

  // --- Integrity -----------------------------------------------------------

  /// Checks structural invariants: valid ids, RLE canonical form,
  /// acyclicity, root in range, relation columns sized to vertex_count.
  Status Validate() const;

  /// Estimated heap footprint in bytes (for the experiment reports).
  size_t MemoryFootprint() const;

 private:
  struct EdgeSpan {
    uint64_t offset = 0;
    uint32_t length = 0;
  };

  Schema schema_;
  std::vector<EdgeSpan> spans_;
  std::vector<Edge> edges_;
  std::vector<DynamicBitset> relations_;
  /// Parallel to relations_: false for tombstoned columns, which stay
  /// empty and must be skipped by vertex-growth operations.
  std::vector<uint8_t> relation_live_;
  VertexId root_ = kNoVertex;
  uint64_t live_edge_count_ = 0;
};

/// \brief Appends `edge` to an RLE sequence, merging with the last run if
/// it has the same child.
inline void AppendEdgeRle(std::vector<Edge>* edges, Edge edge) {
  if (!edges->empty() && edges->back().child == edge.child) {
    edges->back().count += edge.count;
  } else {
    edges->push_back(edge);
  }
}

}  // namespace xcq

#endif  // XCQ_INSTANCE_INSTANCE_H_
