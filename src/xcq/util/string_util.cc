#include "xcq/util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace xcq {

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && IsSpace(s[b])) ++b;
  while (e > b && IsSpace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string WithCommas(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < sizeof(units) / sizeof(units[0])) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
  return StrFormat("%.1f %s", value, units[unit]);
}

bool IsValidTagName(std::string_view name) {
  if (name.empty()) return false;
  const auto is_start = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '#';
  };
  const auto is_rest = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  };
  if (!is_start(name[0])) return false;
  for (size_t i = 1; i < name.size(); ++i) {
    if (!is_rest(name[i])) return false;
  }
  return true;
}

}  // namespace xcq
