#ifndef XCQ_UTIL_RESULT_H_
#define XCQ_UTIL_RESULT_H_

/// \file result.h
/// `Result<T>`: value-or-Status, the return type of fallible producers.

#include <cassert>
#include <utility>
#include <variant>

#include "xcq/util/status.h"

namespace xcq {

/// \brief Holds either a value of type `T` or a non-OK `Status`.
///
/// Usage:
/// \code
///   Result<Instance> r = Compressor::Run(xml);
///   if (!r.ok()) return r.status();
///   Instance inst = std::move(r).Value();
/// \endcode
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, enables `return value;`).
  Result(T value) : rep_(std::in_place_index<0>, std::move(value)) {}

  /// Constructs from a non-OK status (implicit, enables
  /// `return Status::...;`). Passing an OK status is a programming error
  /// and is converted to an Internal error.
  Result(Status status) : rep_(std::in_place_index<1>, std::move(status)) {
    if (std::get<1>(rep_).ok()) {
      rep_.template emplace<1>(
          Status::Internal("Result constructed from OK status"));
    }
  }

  bool ok() const { return rep_.index() == 0; }

  /// The error status; `Status::OK()` when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<1>(rep_);
  }

  /// Value access; must hold a value.
  const T& Value() const& {
    assert(ok());
    return std::get<0>(rep_);
  }
  T& Value() & {
    assert(ok());
    return std::get<0>(rep_);
  }
  T&& Value() && {
    assert(ok());
    return std::get<0>(std::move(rep_));
  }

  const T& operator*() const& { return Value(); }
  T& operator*() & { return Value(); }
  const T* operator->() const { return &Value(); }
  T* operator->() { return &Value(); }

 private:
  std::variant<T, Status> rep_;
};

/// Evaluates `expr` (a Result<T>), propagating errors; on success assigns
/// the value into `lhs` (which may be a declaration).
#define XCQ_ASSIGN_OR_RETURN(lhs, expr)                       \
  XCQ_ASSIGN_OR_RETURN_IMPL(                                  \
      XCQ_CONCAT_NAME(_xcq_result_, __LINE__), lhs, expr)

#define XCQ_CONCAT_NAME(x, y) XCQ_CONCAT_NAME_INNER(x, y)
#define XCQ_CONCAT_NAME_INNER(x, y) x##y

#define XCQ_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).Value();

}  // namespace xcq

#endif  // XCQ_UTIL_RESULT_H_
