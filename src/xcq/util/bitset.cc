#include "xcq/util/bitset.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace xcq {

namespace {
size_t WordsFor(size_t bits) { return (bits + 63) / 64; }
}  // namespace

DynamicBitset::DynamicBitset(size_t size, bool value) { Resize(size, value); }

void DynamicBitset::Resize(size_t size, bool value) {
  const size_t old_size = size_;
  words_.resize(WordsFor(size), value ? ~uint64_t{0} : 0);
  size_ = size;
  if (value && size > old_size && old_size % 64 != 0) {
    // The tail of the old last word was zeroed; set the newly valid bits.
    const size_t w = old_size / 64;
    words_[w] |= ~uint64_t{0} << (old_size % 64);
  }
  TrimTail();
}

void DynamicBitset::PushBack(bool value) {
  if (size_ % 64 == 0) words_.push_back(0);
  ++size_;
  if (value) Set(size_ - 1);
}

void DynamicBitset::ResetAll() {
  std::fill(words_.begin(), words_.end(), uint64_t{0});
}

void DynamicBitset::SetAll() {
  std::fill(words_.begin(), words_.end(), ~uint64_t{0});
  TrimTail();
}

void DynamicBitset::TrimTail() {
  if (size_ % 64 != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << (size_ % 64)) - 1;
  }
}

size_t DynamicBitset::Count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

bool DynamicBitset::None() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

size_t DynamicBitset::FindFirst() const { return FindNext(0); }

size_t DynamicBitset::FindNext(size_t from) const {
  if (from >= size_) return size_;
  size_t w = from / 64;
  uint64_t word = words_[w] & (~uint64_t{0} << (from % 64));
  while (true) {
    if (word != 0) {
      const size_t i = w * 64 + static_cast<size_t>(std::countr_zero(word));
      return i < size_ ? i : size_;
    }
    if (++w >= words_.size()) return size_;
    word = words_[w];
  }
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator-=(const DynamicBitset& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

void DynamicBitset::Flip() {
  for (uint64_t& w : words_) w = ~w;
  TrimTail();
}

bool DynamicBitset::operator==(const DynamicBitset& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

bool DynamicBitset::IsSubsetOf(const DynamicBitset& other) const {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

bool DynamicBitset::Intersects(const DynamicBitset& other) const {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

}  // namespace xcq
