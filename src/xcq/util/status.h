#ifndef XCQ_UTIL_STATUS_H_
#define XCQ_UTIL_STATUS_H_

/// \file status.h
/// Error handling primitives for the xcq library.
///
/// The library does not throw exceptions. Fallible operations return a
/// `Status` (or `Result<T>`, see result.h) in the style of Apache Arrow and
/// RocksDB. `Status` is cheap to copy in the OK case (a single pointer).

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace xcq {

/// Machine-readable category of an error.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kParseError = 2,       ///< Malformed XML or XPath input.
  kOutOfRange = 3,       ///< Index / id outside a valid range.
  kNotFound = 4,         ///< Named relation, file, or corpus missing.
  kAlreadyExists = 5,    ///< Duplicate name where uniqueness is required.
  kResourceExhausted = 6,///< A configured budget (e.g. decompression) hit.
  kIncompatible = 7,     ///< Instances are not compatible (Sec. 2.3).
  kIoError = 8,          ///< Filesystem read/write failure.
  kCorruption = 9,       ///< Serialized instance fails validation.
  kInternal = 10,        ///< Invariant violation; indicates a library bug.
  kDeadlineExceeded = 11,///< The request's deadline passed before completion.
  kCancelled = 12,       ///< The request was cancelled by the caller.
};

/// \brief Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: OK, or a code plus message.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<Rep>(Rep{code, std::move(message)})) {}

  /// True if the operation succeeded.
  bool ok() const noexcept { return rep_ == nullptr; }

  StatusCode code() const noexcept {
    return rep_ ? rep_->code : StatusCode::kOk;
  }

  /// Error message; empty for OK statuses.
  const std::string& message() const noexcept {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Incompatible(std::string msg) {
    return Status(StatusCode::kIncompatible, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;  // null == OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller.
#define XCQ_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::xcq::Status _xcq_status = (expr);           \
    if (!_xcq_status.ok()) return _xcq_status;    \
  } while (false)

}  // namespace xcq

#endif  // XCQ_UTIL_STATUS_H_
