#include "xcq/util/hash.h"

namespace xcq {

uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = UINT64_C(0xcbf29ce484222325);  // FNV offset basis
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= UINT64_C(0x100000001b3);  // FNV prime
  }
  return Mix64(h);
}

}  // namespace xcq
