#include "xcq/util/status.h"

namespace xcq {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kIncompatible:
      return "Incompatible";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace xcq
