#ifndef XCQ_UTIL_BITSET_H_
#define XCQ_UTIL_BITSET_H_

/// \file bitset.h
/// A growable bitset used for node-set (unary relation) storage.
///
/// Node sets are the workhorse of the query algebra (Sec. 3.1 of the paper):
/// every unary relation of an instance schema, and every intermediate query
/// selection, is one `DynamicBitset` indexed by vertex id. Set operations
/// (union / intersection / difference) are word-parallel.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xcq {

/// \brief Growable bitset with word-parallel set algebra.
class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// Constructs a bitset of `size` bits, all cleared (or all set).
  explicit DynamicBitset(size_t size, bool value = false);

  /// Number of addressable bits.
  size_t size() const { return size_; }

  bool empty() const { return size_ == 0; }

  /// Grows (or shrinks) to `size` bits; new bits are `value`.
  void Resize(size_t size, bool value = false);

  /// Appends one bit.
  void PushBack(bool value);

  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void Reset(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  void Assign(size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Reset(i);
    }
  }

  /// Clears all bits (size unchanged).
  void ResetAll();
  /// Sets all bits (size unchanged).
  void SetAll();

  /// Number of set bits.
  size_t Count() const;

  /// True if no bit is set.
  bool None() const;
  /// True if at least one bit is set.
  bool Any() const { return !None(); }

  /// Index of the first set bit, or `size()` if none.
  size_t FindFirst() const;
  /// Index of the first set bit at or after `from`, or `size()` if none.
  size_t FindNext(size_t from) const;

  /// Word-parallel set algebra. Operand sizes must match.
  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator&=(const DynamicBitset& other);
  /// Set difference: this \ other.
  DynamicBitset& operator-=(const DynamicBitset& other);
  /// Complement within `size()` bits.
  void Flip();

  bool operator==(const DynamicBitset& other) const;
  bool operator!=(const DynamicBitset& other) const {
    return !(*this == other);
  }

  /// True if every set bit of `*this` is also set in `other`.
  bool IsSubsetOf(const DynamicBitset& other) const;
  /// True if `*this` and `other` share at least one set bit.
  bool Intersects(const DynamicBitset& other) const;

  /// Invokes `fn(index)` for every set bit, ascending.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Raw word access (for hashing / serialization).
  const std::vector<uint64_t>& words() const { return words_; }

 private:
  // Zeroes bits beyond size_ in the last word so that Count/== stay exact.
  void TrimTail();

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace xcq

#endif  // XCQ_UTIL_BITSET_H_
