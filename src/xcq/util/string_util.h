#ifndef XCQ_UTIL_STRING_UTIL_H_
#define XCQ_UTIL_STRING_UTIL_H_

/// \file string_util.h
/// Small string helpers shared across modules.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xcq {

/// True if `c` is ASCII whitespace (space, tab, CR, LF).
inline bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

/// Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Splits on `sep`, keeping empty fields.
std::vector<std::string_view> Split(std::string_view s, char sep);

/// True if `s` starts with `prefix`.
inline bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders `n` with thousands separators, e.g. 10903569 -> "10,903,569".
std::string WithCommas(uint64_t n);

/// Renders bytes with a binary-prefix unit, e.g. "457.4 MB".
std::string HumanBytes(uint64_t bytes);

/// True if `name` is a valid XML element name for our simplified model
/// (first char letter/underscore, rest letter/digit/underscore/hyphen/dot).
bool IsValidTagName(std::string_view name);

}  // namespace xcq

#endif  // XCQ_UTIL_STRING_UTIL_H_
