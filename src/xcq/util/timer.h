#ifndef XCQ_UTIL_TIMER_H_
#define XCQ_UTIL_TIMER_H_

/// \file timer.h
/// The one steady-clock timing path — benches, the engine's EvalStats,
/// the session's phase timing, and the obs trace spans all measure
/// through these two types, so every `*_s` / `*_seconds` figure in the
/// system is comparable (same clock, same resolution).

#include <chrono>

namespace xcq {

/// \brief Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief RAII accumulator: adds the scope's elapsed seconds to
/// `*target` on destruction (null = measure-only). Exception-safe, so
/// a phase that errors out still books the time it spent — prefer this
/// over a hand-rolled `Timer t; ...; x = t.Seconds();` pair wherever
/// the measured region is a lexical scope.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* target) : target_(target) {}
  ~ScopedTimer() {
    if (target_ != nullptr) *target_ += timer_.Seconds();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Elapsed so far, without closing the scope.
  double Seconds() const { return timer_.Seconds(); }

 private:
  Timer timer_;
  double* target_;
};

}  // namespace xcq

#endif  // XCQ_UTIL_TIMER_H_
