#ifndef XCQ_UTIL_TIMER_H_
#define XCQ_UTIL_TIMER_H_

/// \file timer.h
/// Wall-clock stopwatch for the benchmark harnesses.

#include <chrono>

namespace xcq {

/// \brief Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace xcq

#endif  // XCQ_UTIL_TIMER_H_
