#ifndef XCQ_UTIL_CANCEL_H_
#define XCQ_UTIL_CANCEL_H_

/// \file cancel.h
/// Cooperative cancellation for long-running work (docs/SERVER.md
/// §Deadlines).
///
/// A `CancelToken` carries two independent stop signals for one
/// request: an explicit cancellation flag (flipped by whoever owns the
/// request — e.g. the event loop when the client disconnects) and an
/// absolute deadline on the steady clock. Workers never block on the
/// token; they *poll* it at structurally safe checkpoints —
/// `Check()` returns OK, `kCancelled`, or `kDeadlineExceeded` — and
/// unwind with that status. The token itself does no unwinding: every
/// layer that polls is responsible for leaving its data structures
/// consistent before returning, which is why the engine only polls
/// *between* mutation phases (band/phase/round boundaries; see
/// docs/INTERNALS.md §10).
///
/// Tokens are written from one thread (cancel) and read from many
/// (worker lanes); all members are atomics with relaxed ordering —
/// cancellation is a latency hint, not a synchronization edge, and a
/// poll that misses a just-set flag simply catches it next checkpoint.

#include <atomic>
#include <chrono>
#include <cstdint>

#include "xcq/util/status.h"

namespace xcq {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Idempotent; safe from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms (or re-arms) the absolute deadline. A zero time_point is
  /// treated as "no deadline".
  void SetDeadline(Clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

  /// Arms the deadline `timeout` from now.
  void SetTimeout(std::chrono::nanoseconds timeout) {
    SetDeadline(Clock::now() + timeout);
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// True when a deadline is armed and has passed.
  bool expired() const {
    const int64_t ns = deadline_ns_.load(std::memory_order_relaxed);
    return ns != 0 && Clock::now().time_since_epoch().count() >= ns;
  }

  /// Test hook: trips the cancelled flag on the n-th future `Check()`
  /// call (n >= 1). Deterministic under single-threaded evaluation, so
  /// tests can land a cancellation inside any chosen phase without
  /// racing timers.
  void CancelAfterChecks(uint64_t n) {
    trip_after_.store(static_cast<int64_t>(n), std::memory_order_relaxed);
  }

  /// Number of `Check()` calls observed so far (test instrumentation:
  /// calibrates `CancelAfterChecks` against a clean run).
  uint64_t checks() const { return checks_.load(std::memory_order_relaxed); }

  /// The poll. OK while the request should keep running; otherwise the
  /// canonical `kCancelled` / `kDeadlineExceeded` error. Cheap enough
  /// for per-band granularity: one relaxed load in the common
  /// no-deadline case, plus one clock read when a deadline is armed.
  Status Check() const {
    checks_.fetch_add(1, std::memory_order_relaxed);
    const int64_t trip = trip_after_.load(std::memory_order_relaxed);
    if (trip > 0 &&
        trip_after_.fetch_sub(1, std::memory_order_relaxed) == 1) {
      cancelled_.store(true, std::memory_order_relaxed);
    }
    if (cancelled()) {
      return Status::Cancelled("request cancelled");
    }
    if (expired()) {
      return Status::DeadlineExceeded("deadline exceeded");
    }
    return Status::OK();
  }

 private:
  mutable std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{0};  ///< steady epoch ns; 0 = none
  mutable std::atomic<int64_t> trip_after_{0};
  mutable std::atomic<uint64_t> checks_{0};
};

}  // namespace xcq

#endif  // XCQ_UTIL_CANCEL_H_
