#ifndef XCQ_UTIL_RNG_H_
#define XCQ_UTIL_RNG_H_

/// \file rng.h
/// Deterministic random source for corpus generators and property tests.
///
/// All randomness in the repository flows through `Rng` with an explicit
/// seed so that every corpus, test sweep, and benchmark is reproducible.

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace xcq {

/// \brief Seeded PRNG wrapper with convenience samplers.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  uint64_t Uniform(uint64_t lo, uint64_t hi) {
    return std::uniform_int_distribution<uint64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [0, 1).
  double UniformReal() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli trial.
  bool Chance(double p) { return UniformReal() < p; }

  /// Geometric-ish count >= `min`, with decay probability `p` of stopping
  /// after each increment; capped at `max`.
  uint64_t GeometricCount(uint64_t min, uint64_t max, double p) {
    uint64_t n = min;
    while (n < max && !Chance(p)) ++n;
    return n;
  }

  /// Uniformly selects one element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[Uniform(0, items.size() - 1)];
  }

  /// Zipf-like skewed index in [0, n): index 0 most likely.
  size_t SkewedIndex(size_t n, double skew = 1.5) {
    double u = UniformReal();
    double x = 1.0;
    for (size_t i = 0; i + 1 < n; ++i) {
      x *= skew / (skew + 1.0);
      if (u >= x) return i;
    }
    return n - 1;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace xcq

#endif  // XCQ_UTIL_RNG_H_
