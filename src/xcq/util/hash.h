#ifndef XCQ_UTIL_HASH_H_
#define XCQ_UTIL_HASH_H_

/// \file hash.h
/// Hash utilities used by the hash-consing DAG builder (Sec. 2.2).
///
/// The compression algorithm's inner loop is "have we already built a
/// vertex with these labels and this child sequence?" — a hash-table probe
/// whose key is a variable-length record. These helpers provide a fast
/// 64-bit mixing function with good avalanche behaviour.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace xcq {

/// \brief 64-bit finalizer from MurmurHash3 (fmix64); full avalanche.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= UINT64_C(0xff51afd7ed558ccd);
  x ^= x >> 33;
  x *= UINT64_C(0xc4ceb9fe1a85ec53);
  x ^= x >> 33;
  return x;
}

/// \brief Combines an accumulated hash with one more 64-bit value.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  // boost::hash_combine layout with a 64-bit golden-ratio constant,
  // strengthened by a final mix at each step via Mix64 of the operand.
  return seed ^ (Mix64(value) + UINT64_C(0x9e3779b97f4a7c15) + (seed << 6) +
                 (seed >> 2));
}

/// \brief Hashes a byte string (FNV-1a body + Mix64 finalizer).
uint64_t HashBytes(const void* data, size_t len);

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

/// \brief Incremental hasher for variable-length records.
class Hasher {
 public:
  Hasher& Add(uint64_t v) {
    state_ = HashCombine(state_, v);
    return *this;
  }
  Hasher& AddBytes(const void* data, size_t len) {
    state_ = HashCombine(state_, HashBytes(data, len));
    return *this;
  }
  uint64_t Finish() const { return Mix64(state_); }

 private:
  uint64_t state_ = UINT64_C(0x517cc1b727220a95);
};

}  // namespace xcq

#endif  // XCQ_UTIL_HASH_H_
