#ifndef XCQ_ENGINE_BATCH_H_
#define XCQ_ENGINE_BATCH_H_

/// \file batch.h
/// Shared-sweep evaluation of a batch of query plans (docs/SERVER.md
/// BATCH, docs/INTERNALS.md §8.3).
///
/// A BATCH of N short queries evaluated one at a time performs N
/// structural sweeps per axis depth even though every sweep walks the
/// same DAG. `EvaluateBatchShared` runs the plans in lockstep instead:
/// at round r it executes op r of every plan, grouping same-axis ops
/// into ONE multi-source sweep — one traversal-cache read, one pass
/// over the child arrays, per-query selections carried as bit positions
/// of per-vertex uint64 masks (batches wider than 64 sweep in chunks).
///
/// The sharing is *optimistic*: it is only correct while no op mutates
/// the DAG, because per-query evaluation orders mutations (splits)
/// between queries and lockstep does not. Every splitting axis is
/// therefore evaluated in a conflict-detecting form — demands are
/// accumulated per vertex and a vertex demanded with both selection
/// bits by the same query is exactly a split the sequential kernel
/// would perform. On the first such conflict the whole shared attempt
/// aborts *before any mutation*: scratch columns are returned, the
/// instance is untouched, and the caller falls back to the per-query
/// path. Answers from an engaged shared run are therefore bit-identical
/// to per-query evaluation; a warmed instance (split fixpoint reached)
/// never aborts.

#include <cstdint>
#include <vector>

#include "xcq/algebra/op.h"
#include "xcq/engine/evaluator.h"
#include "xcq/instance/instance.h"

namespace xcq::engine {

/// \brief Counters for one shared-batch attempt.
struct SharedBatchStats {
  bool engaged = false;        ///< Sharing held to the end; results valid.
  uint64_t rounds = 0;         ///< Lockstep rounds executed.
  uint64_t axis_ops = 0;       ///< Axis ops evaluated (incl. composed stages).
  uint64_t shared_groups = 0;  ///< Axis groups swept once for >= 2 queries.
  uint64_t shared_group_ops = 0;  ///< Axis ops covered by those groups.
  uint64_t conflicts = 0;      ///< Split demands that forced the abort.
  uint64_t pruned_sweeps = 0;  ///< Shared sweeps restricted to a region
                               ///< (union of the members' admissible
                               ///< regions; docs/INTERNALS.md §9).
  uint64_t skipped_sweeps = 0;  ///< Shared sweeps skipped outright.
  uint64_t sweep_visited = 0;  ///< Vertices visited by shared sweeps.
  uint64_t sweep_full = 0;     ///< Visits unpruned sweeps would make.
  double seconds = 0.0;
};

/// \brief Result of a shared-batch attempt. When `engaged`, `results`
/// holds one *scratch* relation per plan (index-aligned) carrying that
/// query's final selection; the caller must copy/count what it needs
/// and return each id via `Instance::ReleaseScratchRelation`. When not
/// engaged the instance is unchanged and `results` is empty.
struct SharedBatchResult {
  bool engaged = false;
  std::vector<RelationId> results;
};

/// \brief Attempts to evaluate `plans` with shared sweeps. Never fails:
/// any input the shared path cannot handle (empty plans, missing
/// context relation, a split demand) simply reports `engaged = false`
/// so the caller can fall back to per-query evaluation — which will
/// also surface any real error. `options.threads` shards the shared
/// sweeps exactly like the per-query kernels.
SharedBatchResult EvaluateBatchShared(
    Instance* instance, const std::vector<algebra::QueryPlan>& plans,
    const EvalOptions& options, SharedBatchStats* stats = nullptr);

}  // namespace xcq::engine

#endif  // XCQ_ENGINE_BATCH_H_
