#include "xcq/engine/evaluator.h"

#include <optional>
#include <vector>

#include "xcq/engine/axes.h"
#include "xcq/engine/prune.h"
#include "xcq/util/string_util.h"
#include "xcq/util/timer.h"

namespace xcq::engine {

namespace {

using algebra::Op;
using algebra::OpKind;
using xpath::Axis;

/// Reachable vertex / RLE-edge counts (split leftovers excluded);
/// served from the traversal cache, so on an unchanged instance this is
/// a pure read instead of a walk.
void ReachableSizes(const Instance& instance, uint64_t* vertices,
                    uint64_t* edges) {
  const TraversalCache& t = instance.EnsureTraversal();
  *vertices = t.order.size();
  *edges = t.reachable_edges;
}

class PlanRunner {
 public:
  PlanRunner(Instance* instance, const EvalOptions& options,
             EvalStats* stats)
      : instance_(instance),
        options_(options),
        stats_(stats),
        guard_(options.cancel, options.max_sweep_visits,
               options.max_split_growth) {}

  Result<RelationId> Run(const algebra::QueryPlan& plan) {
    op_relation_.assign(plan.ops.size(), kNoRelation);
    // Poll before the pruner binding: a bind may build the path
    // summary (a full-DAG walk), so a dead request skips it entirely.
    XCQ_RETURN_IF_ERROR(guard_.Poll());
    if (options_.prune_sweeps) {
      ScopedTimer bind(stats_ != nullptr ? &stats_->prune_bind_seconds
                                         : nullptr);
      pruner_.emplace(instance_, &plan, &options_);
    }
    const Status status = [&] {
      for (size_t i = 0; i < plan.ops.size(); ++i) {
        // Op boundaries are always between mutation phases; the
        // kernels add their own band/phase-granular checkpoints.
        XCQ_RETURN_IF_ERROR(guard_.Poll());
        XCQ_RETURN_IF_ERROR(RunOp(plan, i));
      }
      return Status::OK();
    }();

    RelationId result = kNoRelation;
    if (status.ok()) {
      // Persist the final selection under the public result name. The
      // relation is reused (not removed and re-interned) so its id stays
      // stable across queries: the schema gains no tombstone per query
      // and the incremental-minimization cache can diff the result
      // column.
      result = instance_->AddRelation(kResultRelation);
      if (result != op_relation_.back()) {
        instance_->MutableRelationBits(result) =
            instance_->RelationBits(op_relation_.back());
      }
    }

    // Scratch columns go back to the resident pool even on error; the
    // pooled path therefore adds zero schema tombstones per query.
    for (const RelationId id : scratch_) {
      instance_->ReleaseScratchRelation(id);
    }
    XCQ_RETURN_IF_ERROR(status);
    return result;
  }

  /// Path-summary size at the pruner's last binding (0 = pruning off
  /// or unavailable).
  uint64_t summary_nodes() const {
    return pruner_.has_value() ? pruner_->summary_nodes() : 0;
  }

 private:
  /// Checks out the temporary relation backing one op's node set. On
  /// the default path (`remove_temporaries`) this is a zeroed column
  /// from the instance's resident scratch pool — anonymous, returned
  /// after the run, no schema churn. With `remove_temporaries = false`
  /// the caller wants the per-op selections to outlive the evaluation,
  /// so they are materialized as named `xcq:tmp<serial>` relations
  /// instead; the column is zeroed even if a relation of the same name
  /// survived an earlier evaluation.
  RelationId NewTemporary() {
    if (options_.remove_temporaries) {
      const RelationId id = instance_->AcquireScratchRelation();
      scratch_.push_back(id);
      return id;
    }
    std::string name = StrFormat("xcq:tmp%zu", named_serial_++);
    const RelationId id = instance_->AddRelation(name);
    instance_->MutableRelationBits(id).ResetAll();
    return id;
  }

  Status RunOp(const algebra::QueryPlan& plan, size_t i) {
    const Op& op = plan.ops[i];
    switch (op.kind) {
      case OpKind::kRelation: {
        const RelationId existing = instance_->FindRelation(op.relation);
        if (existing != kNoRelation) {
          op_relation_[i] = existing;
          return Status::OK();
        }
        // A tag that never occurs (or was not tracked) denotes the empty
        // set; materialize it as an empty temporary.
        op_relation_[i] = NewTemporary();
        return Status::OK();
      }
      case OpKind::kContext: {
        if (!options_.context_relation.empty()) {
          const RelationId ctx =
              instance_->FindRelation(options_.context_relation);
          if (ctx == kNoRelation) {
            return Status::NotFound(
                StrFormat("context relation '%s' not present in instance",
                          options_.context_relation.c_str()));
          }
          op_relation_[i] = ctx;
          return Status::OK();
        }
        // Empty context means {root} — fall through to the column ops.
        [[fallthrough]];
      }
      case OpKind::kRoot:
      case OpKind::kAllNodes:
      case OpKind::kUnion:
      case OpKind::kIntersect:
      case OpKind::kDifference:
      case OpKind::kRootFilter: {
        const RelationId id = NewTemporary();
        ApplyColumnOp(instance_, op,
                      op.input0 >= 0 ? op_relation_[op.input0] : kNoRelation,
                      op.input1 >= 0 ? op_relation_[op.input1] : kNoRelation,
                      id);
        op_relation_[i] = id;
        return Status::OK();
      }
      case OpKind::kAxis: {
        XCQ_ASSIGN_OR_RETURN(op_relation_[i], RunAxis(plan, i));
        return Status::OK();
      }
    }
    return Status::Internal("unreachable op kind");
  }

  static AxisFamily FamilyOf(Axis axis) {
    switch (axis) {
      case Axis::kChild:
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf:
        return AxisFamily::kDownward;
      case Axis::kFollowingSibling:
      case Axis::kPrecedingSibling:
        return AxisFamily::kSibling;
      default:
        return AxisFamily::kUpward;
    }
  }

  /// One concrete sweep of op `i` with its prune gate: `stage` is -1
  /// for the op's own axis, 0/1/2 for the staged following/preceding
  /// composition. A skipped sweep leaves `d` all-zero — exactly the
  /// unpruned outcome when the admissible region or the concrete source
  /// is empty (such a sweep selects nothing and never splits).
  Status Sweep(size_t i, int stage, Axis axis, RelationId s, RelationId d) {
    AxisFamilyStats* family =
        stats_ != nullptr
            ? &stats_->axis[static_cast<size_t>(FamilyOf(axis))]
            : nullptr;
    if (family != nullptr) ++family->sweeps;
    // `//` from the document root admits a closed form: every reachable
    // vertex has the root above it, so descendant(-or-self) from {root}
    // selects the whole reachable set (minus the root itself for the
    // proper-descendant axis), no demand can clash, and no sweep is
    // needed. This removes the one inherently unprunable sweep from the
    // paper's `//tag` navigation shape. Gated on prune_sweeps so the
    // verify oracle still exercises the real kernels.
    if (options_.prune_sweeps &&
        (axis == Axis::kDescendant || axis == Axis::kDescendantOrSelf)) {
      const VertexId root = instance_->root();
      const DynamicBitset& source = instance_->RelationBits(s);
      if (root != kNoVertex && root < source.size() &&
          source.Test(root) && source.Count() == 1) {
        for (const VertexId v : instance_->EnsureTraversal().order) {
          if (axis == Axis::kDescendant && v == root) continue;
          instance_->SetBit(d, v);
        }
        if (stats_ != nullptr) {
          ++stats_->pruned_sweeps;
          stats_->sweep_full += instance_->ReachableCount();
          ++family->pruned;
          family->full += instance_->ReachableCount();
        }
        return Status::OK();
      }
    }
    PruneGate gate;
    if (pruner_.has_value()) {
      gate = stage < 0 ? pruner_->AxisGate(i) : pruner_->StageGate(i, stage);
      if (!gate.skip && pruner_->active() &&
          instance_->RelationBits(s).None()) {
        gate = PruneGate{};
        gate.skip = true;
      }
    }
    const uint64_t reachable_before =
        stats_ != nullptr ? instance_->ReachableCount() : 0;
    if (stats_ != nullptr) {
      if (gate.skip) {
        ++stats_->skipped_sweeps;
        ++family->skipped;
      }
      if (gate.region != nullptr) {
        ++stats_->pruned_sweeps;
        ++family->pruned;
      }
    }
    if (gate.skip) {
      if (stats_ != nullptr) {
        stats_->sweep_full += reachable_before;
        family->full += reachable_before;
      }
      return Status::OK();
    }

    AxisStats sweep_stats;
    Status status;
    double kernel_seconds = 0.0;
    {
      ScopedTimer kernel_timer(stats_ != nullptr ? &kernel_seconds
                                                 : nullptr);
      switch (axis) {
        case Axis::kParent:
        case Axis::kAncestor:
        case Axis::kAncestorOrSelf:
          status = ApplyUpwardAxis(instance_, axis, s, d, &sweep_stats,
                                   options_.threads, gate.region, &guard_);
          break;
        case Axis::kChild:
        case Axis::kDescendant:
        case Axis::kDescendantOrSelf:
          status = ApplyDownwardAxis(instance_, axis, s, d, &sweep_stats,
                                     options_.threads, gate.region, &guard_);
          break;
        case Axis::kFollowingSibling:
        case Axis::kPrecedingSibling:
          status = ApplySiblingAxis(instance_, axis, s, d, &sweep_stats,
                                    options_.threads, gate.region, &guard_);
          break;
        default:
          status = Status::Internal("Sweep: unexpected axis");
          break;
      }
    }
    if (stats_ != nullptr) {
      stats_->splits += sweep_stats.splits;
      stats_->sweep_visited += sweep_stats.visited;
      // Kernels count clones created mid-sweep as visits, and a pruned
      // run splits exactly where the full run would — so the full-sweep
      // visit count is the pre-sweep reachable set plus those clones.
      stats_->sweep_full += reachable_before + sweep_stats.splits;
      stats_->sweep_seconds += kernel_seconds;
      family->visited += sweep_stats.visited;
      family->full += reachable_before + sweep_stats.splits;
      family->seconds += kernel_seconds;
    }
    return status;
  }

  Result<RelationId> RunAxis(const algebra::QueryPlan& plan, size_t i) {
    const Axis axis = plan.ops[i].axis;
    const RelationId src = op_relation_[plan.ops[i].input0];
    RelationId dst = kNoRelation;
    switch (axis) {
      case Axis::kSelf:
        // A plain column copy — nothing to prune.
        dst = NewTemporary();
        XCQ_RETURN_IF_ERROR(ApplyUpwardAxis(instance_, axis, src, dst,
                                            nullptr, options_.threads));
        break;
      case Axis::kParent:
      case Axis::kAncestor:
      case Axis::kAncestorOrSelf:
      case Axis::kChild:
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf:
      case Axis::kFollowingSibling:
      case Axis::kPrecedingSibling:
        dst = NewTemporary();
        XCQ_RETURN_IF_ERROR(Sweep(i, -1, axis, src, dst));
        break;
      case Axis::kFollowing:
      case Axis::kPreceding: {
        // Sec. 3.2: following = d-o-s ∘ following-sibling ∘ a-o-s (and
        // mirrored for preceding), each stage gated separately.
        const Axis sibling = axis == Axis::kFollowing
                                 ? Axis::kFollowingSibling
                                 : Axis::kPrecedingSibling;
        const RelationId up = NewTemporary();
        XCQ_RETURN_IF_ERROR(Sweep(i, 0, Axis::kAncestorOrSelf, src, up));
        const RelationId side = NewTemporary();
        XCQ_RETURN_IF_ERROR(Sweep(i, 1, sibling, up, side));
        dst = NewTemporary();
        XCQ_RETURN_IF_ERROR(Sweep(i, 2, Axis::kDescendantOrSelf, side,
                                  dst));
        break;
      }
    }
    return dst;
  }

  Instance* instance_;
  const EvalOptions& options_;
  EvalStats* stats_;
  EvalGuard guard_;
  std::optional<PlanPruner> pruner_;
  std::vector<RelationId> op_relation_;
  /// Scratch columns checked out for this run (released in Run()).
  std::vector<RelationId> scratch_;
  /// Serial for named temporaries on the remove_temporaries=false path.
  size_t named_serial_ = 0;
};

}  // namespace

void ApplyColumnOp(Instance* instance, const algebra::Op& op,
                   RelationId input0, RelationId input1, RelationId dst) {
  switch (op.kind) {
    case OpKind::kRoot:
    case OpKind::kContext:  // callers resolve named contexts; empty = {root}
      instance->SetBit(dst, instance->root());
      return;
    case OpKind::kAllNodes:
      instance->MutableRelationBits(dst).SetAll();
      return;
    case OpKind::kUnion:
    case OpKind::kIntersect:
    case OpKind::kDifference: {
      DynamicBitset& out = instance->MutableRelationBits(dst);
      out = instance->RelationBits(input0);
      const DynamicBitset& rhs = instance->RelationBits(input1);
      if (op.kind == OpKind::kUnion) {
        out |= rhs;
      } else if (op.kind == OpKind::kIntersect) {
        out &= rhs;
      } else {
        out -= rhs;
      }
      return;
    }
    case OpKind::kRootFilter:
      if (instance->Test(input0, instance->root())) {
        instance->MutableRelationBits(dst).SetAll();
      }
      return;
    case OpKind::kRelation:
    case OpKind::kAxis:
      return;  // resolution / sweeps, not column arithmetic
  }
}

Result<RelationId> Evaluate(Instance* instance,
                            const algebra::QueryPlan& plan,
                            const EvalOptions& options, EvalStats* stats) {
  if (instance == nullptr) {
    return Status::InvalidArgument("Evaluate: instance is null");
  }
  if (plan.ops.empty()) {
    return Status::InvalidArgument("Evaluate: empty plan");
  }
  if (instance->vertex_count() == 0 || instance->root() == kNoVertex) {
    return Status::InvalidArgument("Evaluate: empty instance");
  }
  Timer timer;
  const uint64_t summary_builds_before = instance->path_summary_builds();
  if (stats != nullptr) {
    ReachableSizes(*instance, &stats->vertices_before,
                   &stats->edges_before);
  }
  PlanRunner runner(instance, options, stats);
  XCQ_ASSIGN_OR_RETURN(const RelationId result, runner.Run(plan));
  if (stats != nullptr) {
    ReachableSizes(*instance, &stats->vertices_after, &stats->edges_after);
    stats->summary_nodes = runner.summary_nodes();
    stats->summary_builds =
        instance->path_summary_builds() - summary_builds_before;
    stats->seconds = timer.Seconds();
  }
  return result;
}

}  // namespace xcq::engine
