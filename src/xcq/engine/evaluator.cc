#include "xcq/engine/evaluator.h"

#include <vector>

#include "xcq/engine/axes.h"
#include "xcq/util/string_util.h"
#include "xcq/util/timer.h"

namespace xcq::engine {

namespace {

using algebra::Op;
using algebra::OpKind;
using xpath::Axis;

/// Reachable vertex / RLE-edge counts (split leftovers excluded).
void ReachableSizes(const Instance& instance, uint64_t* vertices,
                    uint64_t* edges) {
  uint64_t v_count = 0;
  uint64_t e_count = 0;
  for (VertexId v : instance.PostOrder()) {
    ++v_count;
    e_count += instance.Children(v).size();
  }
  *vertices = v_count;
  *edges = e_count;
}

class PlanRunner {
 public:
  PlanRunner(Instance* instance, const EvalOptions& options,
             EvalStats* stats)
      : instance_(instance), options_(options), stats_(stats) {}

  Result<RelationId> Run(const algebra::QueryPlan& plan) {
    op_relation_.assign(plan.ops.size(), kNoRelation);
    for (size_t i = 0; i < plan.ops.size(); ++i) {
      XCQ_RETURN_IF_ERROR(RunOp(plan, i));
    }

    // Persist the final selection under the public result name. The
    // relation is reused (not removed and re-interned) so its id stays
    // stable across queries: the schema gains no tombstone per query and
    // the incremental-minimization cache can diff the result column.
    const RelationId result = instance_->AddRelation(kResultRelation);
    if (result != op_relation_.back()) {
      instance_->MutableRelationBits(result) =
          instance_->RelationBits(op_relation_.back());
    }

    if (options_.remove_temporaries) {
      for (const std::string& name : temporaries_) {
        instance_->RemoveRelation(name);
      }
    }
    return result;
  }

 private:
  /// Allocates the temporary relation backing op `i`'s node set. The
  /// column is zeroed even if a relation of the same name survived an
  /// earlier evaluation with `remove_temporaries = false`.
  RelationId NewTemporary(size_t i) {
    std::string name = StrFormat("xcq:tmp%zu", i);
    const RelationId id = instance_->AddRelation(name);
    instance_->MutableRelationBits(id).ResetAll();
    temporaries_.push_back(std::move(name));
    return id;
  }

  Status RunOp(const algebra::QueryPlan& plan, size_t i) {
    const Op& op = plan.ops[i];
    switch (op.kind) {
      case OpKind::kRelation: {
        const RelationId existing = instance_->FindRelation(op.relation);
        if (existing != kNoRelation) {
          op_relation_[i] = existing;
          return Status::OK();
        }
        // A tag that never occurs (or was not tracked) denotes the empty
        // set; materialize it as an empty temporary.
        op_relation_[i] = NewTemporary(i);
        return Status::OK();
      }
      case OpKind::kRoot: {
        const RelationId id = NewTemporary(i);
        instance_->SetBit(id, instance_->root());
        op_relation_[i] = id;
        return Status::OK();
      }
      case OpKind::kAllNodes: {
        const RelationId id = NewTemporary(i);
        instance_->MutableRelationBits(id).SetAll();
        op_relation_[i] = id;
        return Status::OK();
      }
      case OpKind::kContext: {
        if (options_.context_relation.empty()) {
          const RelationId id = NewTemporary(i);
          instance_->SetBit(id, instance_->root());
          op_relation_[i] = id;
          return Status::OK();
        }
        const RelationId ctx =
            instance_->FindRelation(options_.context_relation);
        if (ctx == kNoRelation) {
          return Status::NotFound(
              StrFormat("context relation '%s' not present in instance",
                        options_.context_relation.c_str()));
        }
        op_relation_[i] = ctx;
        return Status::OK();
      }
      case OpKind::kUnion:
      case OpKind::kIntersect:
      case OpKind::kDifference: {
        const RelationId id = NewTemporary(i);
        DynamicBitset& out = instance_->MutableRelationBits(id);
        out = instance_->RelationBits(op_relation_[op.input0]);
        const DynamicBitset& rhs =
            instance_->RelationBits(op_relation_[op.input1]);
        if (op.kind == OpKind::kUnion) {
          out |= rhs;
        } else if (op.kind == OpKind::kIntersect) {
          out &= rhs;
        } else {
          out -= rhs;
        }
        op_relation_[i] = id;
        return Status::OK();
      }
      case OpKind::kRootFilter: {
        const RelationId id = NewTemporary(i);
        if (instance_->Test(op_relation_[op.input0], instance_->root())) {
          instance_->MutableRelationBits(id).SetAll();
        }
        op_relation_[i] = id;
        return Status::OK();
      }
      case OpKind::kAxis: {
        XCQ_ASSIGN_OR_RETURN(op_relation_[i],
                             RunAxis(op.axis, op_relation_[op.input0], i));
        return Status::OK();
      }
    }
    return Status::Internal("unreachable op kind");
  }

  Result<RelationId> RunAxis(Axis axis, RelationId src, size_t i) {
    AxisStats axis_stats;
    const size_t threads = options_.threads;
    RelationId dst = kNoRelation;
    switch (axis) {
      case Axis::kSelf:
      case Axis::kParent:
      case Axis::kAncestor:
      case Axis::kAncestorOrSelf:
        dst = NewTemporary(i);
        XCQ_RETURN_IF_ERROR(
            ApplyUpwardAxis(instance_, axis, src, dst, threads));
        break;
      case Axis::kChild:
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf:
        dst = NewTemporary(i);
        XCQ_RETURN_IF_ERROR(ApplyDownwardAxis(instance_, axis, src, dst,
                                              &axis_stats, threads));
        break;
      case Axis::kFollowingSibling:
      case Axis::kPrecedingSibling:
        dst = NewTemporary(i);
        XCQ_RETURN_IF_ERROR(ApplySiblingAxis(instance_, axis, src, dst,
                                             &axis_stats, threads));
        break;
      case Axis::kFollowing:
      case Axis::kPreceding: {
        // Sec. 3.2: following = d-o-s ∘ following-sibling ∘ a-o-s (and
        // mirrored for preceding).
        const Axis sibling = axis == Axis::kFollowing
                                 ? Axis::kFollowingSibling
                                 : Axis::kPrecedingSibling;
        const RelationId up = NewTemporary(i * 3 + 1000000);
        XCQ_RETURN_IF_ERROR(ApplyUpwardAxis(
            instance_, Axis::kAncestorOrSelf, src, up, threads));
        const RelationId side = NewTemporary(i * 3 + 1000001);
        XCQ_RETURN_IF_ERROR(ApplySiblingAxis(instance_, sibling, up, side,
                                             &axis_stats, threads));
        dst = NewTemporary(i);
        AxisStats down_stats;
        XCQ_RETURN_IF_ERROR(
            ApplyDownwardAxis(instance_, Axis::kDescendantOrSelf, side,
                              dst, &down_stats, threads));
        axis_stats.splits += down_stats.splits;
        break;
      }
    }
    if (stats_ != nullptr) stats_->splits += axis_stats.splits;
    return dst;
  }

  Instance* instance_;
  const EvalOptions& options_;
  EvalStats* stats_;
  std::vector<RelationId> op_relation_;
  std::vector<std::string> temporaries_;
};

}  // namespace

Result<RelationId> Evaluate(Instance* instance,
                            const algebra::QueryPlan& plan,
                            const EvalOptions& options, EvalStats* stats) {
  if (instance == nullptr) {
    return Status::InvalidArgument("Evaluate: instance is null");
  }
  if (plan.ops.empty()) {
    return Status::InvalidArgument("Evaluate: empty plan");
  }
  if (instance->vertex_count() == 0 || instance->root() == kNoVertex) {
    return Status::InvalidArgument("Evaluate: empty instance");
  }
  Timer timer;
  if (stats != nullptr) {
    ReachableSizes(*instance, &stats->vertices_before,
                   &stats->edges_before);
  }
  PlanRunner runner(instance, options, stats);
  XCQ_ASSIGN_OR_RETURN(const RelationId result, runner.Run(plan));
  if (stats != nullptr) {
    ReachableSizes(*instance, &stats->vertices_after, &stats->edges_after);
    stats->seconds = timer.Seconds();
  }
  return result;
}

}  // namespace xcq::engine
