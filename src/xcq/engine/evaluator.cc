#include "xcq/engine/evaluator.h"

#include <vector>

#include "xcq/engine/axes.h"
#include "xcq/util/string_util.h"
#include "xcq/util/timer.h"

namespace xcq::engine {

namespace {

using algebra::Op;
using algebra::OpKind;
using xpath::Axis;

/// Reachable vertex / RLE-edge counts (split leftovers excluded);
/// served from the traversal cache, so on an unchanged instance this is
/// a pure read instead of a walk.
void ReachableSizes(const Instance& instance, uint64_t* vertices,
                    uint64_t* edges) {
  const TraversalCache& t = instance.EnsureTraversal();
  *vertices = t.order.size();
  *edges = t.reachable_edges;
}

class PlanRunner {
 public:
  PlanRunner(Instance* instance, const EvalOptions& options,
             EvalStats* stats)
      : instance_(instance), options_(options), stats_(stats) {}

  Result<RelationId> Run(const algebra::QueryPlan& plan) {
    op_relation_.assign(plan.ops.size(), kNoRelation);
    const Status status = [&] {
      for (size_t i = 0; i < plan.ops.size(); ++i) {
        XCQ_RETURN_IF_ERROR(RunOp(plan, i));
      }
      return Status::OK();
    }();

    RelationId result = kNoRelation;
    if (status.ok()) {
      // Persist the final selection under the public result name. The
      // relation is reused (not removed and re-interned) so its id stays
      // stable across queries: the schema gains no tombstone per query
      // and the incremental-minimization cache can diff the result
      // column.
      result = instance_->AddRelation(kResultRelation);
      if (result != op_relation_.back()) {
        instance_->MutableRelationBits(result) =
            instance_->RelationBits(op_relation_.back());
      }
    }

    // Scratch columns go back to the resident pool even on error; the
    // pooled path therefore adds zero schema tombstones per query.
    for (const RelationId id : scratch_) {
      instance_->ReleaseScratchRelation(id);
    }
    XCQ_RETURN_IF_ERROR(status);
    return result;
  }

 private:
  /// Checks out the temporary relation backing one op's node set. On
  /// the default path (`remove_temporaries`) this is a zeroed column
  /// from the instance's resident scratch pool — anonymous, returned
  /// after the run, no schema churn. With `remove_temporaries = false`
  /// the caller wants the per-op selections to outlive the evaluation,
  /// so they are materialized as named `xcq:tmp<serial>` relations
  /// instead; the column is zeroed even if a relation of the same name
  /// survived an earlier evaluation.
  RelationId NewTemporary() {
    if (options_.remove_temporaries) {
      const RelationId id = instance_->AcquireScratchRelation();
      scratch_.push_back(id);
      return id;
    }
    std::string name = StrFormat("xcq:tmp%zu", named_serial_++);
    const RelationId id = instance_->AddRelation(name);
    instance_->MutableRelationBits(id).ResetAll();
    return id;
  }

  Status RunOp(const algebra::QueryPlan& plan, size_t i) {
    const Op& op = plan.ops[i];
    switch (op.kind) {
      case OpKind::kRelation: {
        const RelationId existing = instance_->FindRelation(op.relation);
        if (existing != kNoRelation) {
          op_relation_[i] = existing;
          return Status::OK();
        }
        // A tag that never occurs (or was not tracked) denotes the empty
        // set; materialize it as an empty temporary.
        op_relation_[i] = NewTemporary();
        return Status::OK();
      }
      case OpKind::kContext: {
        if (!options_.context_relation.empty()) {
          const RelationId ctx =
              instance_->FindRelation(options_.context_relation);
          if (ctx == kNoRelation) {
            return Status::NotFound(
                StrFormat("context relation '%s' not present in instance",
                          options_.context_relation.c_str()));
          }
          op_relation_[i] = ctx;
          return Status::OK();
        }
        // Empty context means {root} — fall through to the column ops.
        [[fallthrough]];
      }
      case OpKind::kRoot:
      case OpKind::kAllNodes:
      case OpKind::kUnion:
      case OpKind::kIntersect:
      case OpKind::kDifference:
      case OpKind::kRootFilter: {
        const RelationId id = NewTemporary();
        ApplyColumnOp(instance_, op,
                      op.input0 >= 0 ? op_relation_[op.input0] : kNoRelation,
                      op.input1 >= 0 ? op_relation_[op.input1] : kNoRelation,
                      id);
        op_relation_[i] = id;
        return Status::OK();
      }
      case OpKind::kAxis: {
        XCQ_ASSIGN_OR_RETURN(op_relation_[i],
                             RunAxis(op.axis, op_relation_[op.input0]));
        return Status::OK();
      }
    }
    return Status::Internal("unreachable op kind");
  }

  Result<RelationId> RunAxis(Axis axis, RelationId src) {
    AxisStats axis_stats;
    const size_t threads = options_.threads;
    RelationId dst = kNoRelation;
    switch (axis) {
      case Axis::kSelf:
      case Axis::kParent:
      case Axis::kAncestor:
      case Axis::kAncestorOrSelf:
        dst = NewTemporary();
        XCQ_RETURN_IF_ERROR(
            ApplyUpwardAxis(instance_, axis, src, dst, threads));
        break;
      case Axis::kChild:
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf:
        dst = NewTemporary();
        XCQ_RETURN_IF_ERROR(ApplyDownwardAxis(instance_, axis, src, dst,
                                              &axis_stats, threads));
        break;
      case Axis::kFollowingSibling:
      case Axis::kPrecedingSibling:
        dst = NewTemporary();
        XCQ_RETURN_IF_ERROR(ApplySiblingAxis(instance_, axis, src, dst,
                                             &axis_stats, threads));
        break;
      case Axis::kFollowing:
      case Axis::kPreceding: {
        // Sec. 3.2: following = d-o-s ∘ following-sibling ∘ a-o-s (and
        // mirrored for preceding).
        const Axis sibling = axis == Axis::kFollowing
                                 ? Axis::kFollowingSibling
                                 : Axis::kPrecedingSibling;
        const RelationId up = NewTemporary();
        XCQ_RETURN_IF_ERROR(ApplyUpwardAxis(
            instance_, Axis::kAncestorOrSelf, src, up, threads));
        const RelationId side = NewTemporary();
        XCQ_RETURN_IF_ERROR(ApplySiblingAxis(instance_, sibling, up, side,
                                             &axis_stats, threads));
        dst = NewTemporary();
        AxisStats down_stats;
        XCQ_RETURN_IF_ERROR(
            ApplyDownwardAxis(instance_, Axis::kDescendantOrSelf, side,
                              dst, &down_stats, threads));
        axis_stats.splits += down_stats.splits;
        break;
      }
    }
    if (stats_ != nullptr) stats_->splits += axis_stats.splits;
    return dst;
  }

  Instance* instance_;
  const EvalOptions& options_;
  EvalStats* stats_;
  std::vector<RelationId> op_relation_;
  /// Scratch columns checked out for this run (released in Run()).
  std::vector<RelationId> scratch_;
  /// Serial for named temporaries on the remove_temporaries=false path.
  size_t named_serial_ = 0;
};

}  // namespace

void ApplyColumnOp(Instance* instance, const algebra::Op& op,
                   RelationId input0, RelationId input1, RelationId dst) {
  switch (op.kind) {
    case OpKind::kRoot:
    case OpKind::kContext:  // callers resolve named contexts; empty = {root}
      instance->SetBit(dst, instance->root());
      return;
    case OpKind::kAllNodes:
      instance->MutableRelationBits(dst).SetAll();
      return;
    case OpKind::kUnion:
    case OpKind::kIntersect:
    case OpKind::kDifference: {
      DynamicBitset& out = instance->MutableRelationBits(dst);
      out = instance->RelationBits(input0);
      const DynamicBitset& rhs = instance->RelationBits(input1);
      if (op.kind == OpKind::kUnion) {
        out |= rhs;
      } else if (op.kind == OpKind::kIntersect) {
        out &= rhs;
      } else {
        out -= rhs;
      }
      return;
    }
    case OpKind::kRootFilter:
      if (instance->Test(input0, instance->root())) {
        instance->MutableRelationBits(dst).SetAll();
      }
      return;
    case OpKind::kRelation:
    case OpKind::kAxis:
      return;  // resolution / sweeps, not column arithmetic
  }
}

Result<RelationId> Evaluate(Instance* instance,
                            const algebra::QueryPlan& plan,
                            const EvalOptions& options, EvalStats* stats) {
  if (instance == nullptr) {
    return Status::InvalidArgument("Evaluate: instance is null");
  }
  if (plan.ops.empty()) {
    return Status::InvalidArgument("Evaluate: empty plan");
  }
  if (instance->vertex_count() == 0 || instance->root() == kNoVertex) {
    return Status::InvalidArgument("Evaluate: empty instance");
  }
  Timer timer;
  if (stats != nullptr) {
    ReachableSizes(*instance, &stats->vertices_before,
                   &stats->edges_before);
  }
  PlanRunner runner(instance, options, stats);
  XCQ_ASSIGN_OR_RETURN(const RelationId result, runner.Run(plan));
  if (stats != nullptr) {
    ReachableSizes(*instance, &stats->vertices_after, &stats->edges_after);
    stats->seconds = timer.Seconds();
  }
  return result;
}

}  // namespace xcq::engine
