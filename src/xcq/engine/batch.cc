#include "xcq/engine/batch.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "xcq/engine/prune.h"
#include "xcq/engine/sweep.h"
#include "xcq/parallel/task_pool.h"
#include "xcq/util/timer.h"

namespace xcq::engine {

namespace {

using algebra::Op;
using algebra::OpKind;
using xpath::Axis;

/// Queries per mask chunk: one selection bit per query in a uint64.
constexpr size_t kMaskWidth = 64;

/// One axis op scheduled into a shared sweep: plan `plan`'s op `op`
/// mapping selection `src` into scratch column `dst`. Within a chunk
/// the entry's index is its bit position in the per-vertex masks.
struct AxisEntry {
  size_t plan = 0;
  size_t op = 0;
  RelationId src = kNoRelation;
  RelationId dst = kNoRelation;
};

/// Lockstep shared evaluation of N plans (see batch.h). All DAG *reads*
/// go through the traversal cache; all writes touch scratch columns
/// only, so aborting at any point leaves the instance untouched.
class SharedBatchRunner {
 public:
  SharedBatchRunner(Instance* instance, const EvalOptions& options,
                    const std::vector<algebra::QueryPlan>& plans,
                    SharedBatchStats* stats)
      : instance_(instance), options_(options), plans_(plans),
        stats_(stats) {}

  SharedBatchResult Run() {
    SharedBatchResult result;
    if (instance_->vertex_count() == 0 ||
        instance_->root() == kNoVertex) {
      return result;
    }
    // Work budgets are *per query* and shared sweeps have no per-query
    // attribution, so a budgeted evaluation takes the per-query path —
    // where the budgets are enforced exactly.
    if (options_.max_sweep_visits != 0 || options_.max_split_growth != 0) {
      return result;
    }
    size_t max_ops = 0;
    for (const algebra::QueryPlan& plan : plans_) {
      if (plan.ops.empty()) return result;  // vanilla path reports it
      max_ops = std::max(max_ops, plan.ops.size());
    }
    ComputeLastUses();

    // One summary binding serves the whole run: the shared path never
    // mutates the DAG (scratch columns only, abort before any split),
    // so the binding cannot go stale mid-batch. Each plan gets its own
    // abstract interpretation; chunk gates union the members' sets.
    if (options_.prune_sweeps) {
      regions_.Bind(*instance_);
      if (regions_.active()) {
        abstracts_.resize(plans_.size());
        for (size_t p = 0; p < plans_.size(); ++p) {
          abstracts_[p].Compute(*instance_, regions_.summary(), plans_[p],
                                options_);
        }
        prune_ready_ = true;
      }
    }

    op_rel_.resize(plans_.size());
    op_scratch_.resize(plans_.size());
    for (size_t p = 0; p < plans_.size(); ++p) {
      op_rel_[p].assign(plans_[p].ops.size(), kNoRelation);
      op_scratch_[p].assign(plans_[p].ops.size(), 0);
    }

    for (size_t round = 0; round < max_ops; ++round) {
      // Cancellation checkpoint between lockstep rounds, reusing the
      // optimistic-abort path: the shared run never mutates the DAG,
      // so disengaging here leaves the instance untouched and the
      // per-query fallback surfaces the canonical error at its first
      // guard poll.
      if (options_.cancel != nullptr && !options_.cancel->Check().ok()) {
        ReleaseAll();
        return result;
      }
      if (stats_ != nullptr) ++stats_->rounds;
      if (!RunRound(round)) {
        ReleaseAll();
        return result;  // not engaged; instance untouched
      }
      ReleaseDeadColumns(round);
    }

    // Hand every plan's final selection over as a scratch column the
    // caller releases; non-scratch finals (e.g. a plan ending on a bare
    // relation leaf) are copied so the contract is uniform.
    result.results.reserve(plans_.size());
    for (size_t p = 0; p < plans_.size(); ++p) {
      const size_t last = plans_[p].ops.size() - 1;
      RelationId id = op_rel_[p][last];
      if (!op_scratch_[p][last]) {
        const RelationId copy = instance_->AcquireScratchRelation();
        instance_->MutableRelationBits(copy) = instance_->RelationBits(id);
        id = copy;
      } else {
        op_scratch_[p][last] = 0;  // ownership moves to the caller
      }
      result.results.push_back(id);
    }
    ReleaseAll();
    result.engaged = true;
    if (stats_ != nullptr) stats_->engaged = true;
    return result;
  }

 private:
  static constexpr size_t kNeverReleased =
      std::numeric_limits<size_t>::max();

  /// last_use_[p][i]: the latest round that reads op i's column (the
  /// final op is pinned) — scratch is returned as soon as the lockstep
  /// cursor passes it, which keeps a wide batch inside the resident
  /// pool capacity.
  void ComputeLastUses() {
    last_use_.resize(plans_.size());
    for (size_t p = 0; p < plans_.size(); ++p) {
      const std::vector<Op>& ops = plans_[p].ops;
      last_use_[p].assign(ops.size(), 0);
      for (size_t i = 0; i < ops.size(); ++i) {
        last_use_[p][i] = i;
        if (ops[i].input0 >= 0) {
          last_use_[p][static_cast<size_t>(ops[i].input0)] = i;
        }
        if (ops[i].input1 >= 0) {
          last_use_[p][static_cast<size_t>(ops[i].input1)] = i;
        }
      }
      last_use_[p].back() = kNeverReleased;
    }
  }

  RelationId NewScratch(size_t plan, size_t op) {
    const RelationId id = instance_->AcquireScratchRelation();
    op_rel_[plan][op] = id;
    op_scratch_[plan][op] = 1;
    return id;
  }

  void ReleaseDeadColumns(size_t round) {
    for (size_t p = 0; p < plans_.size(); ++p) {
      if (round >= plans_[p].ops.size()) continue;
      for (size_t i = 0; i <= round; ++i) {
        if (op_scratch_[p][i] && last_use_[p][i] <= round) {
          instance_->ReleaseScratchRelation(op_rel_[p][i]);
          op_scratch_[p][i] = 0;
        }
      }
    }
  }

  void ReleaseAll() {
    for (size_t p = 0; p < plans_.size(); ++p) {
      for (size_t i = 0; i < op_rel_[p].size(); ++i) {
        if (op_scratch_[p][i]) {
          instance_->ReleaseScratchRelation(op_rel_[p][i]);
          op_scratch_[p][i] = 0;
        }
      }
    }
  }

  /// Executes round `round` of every plan. Non-axis ops are pure column
  /// ops and run immediately; axis ops are bucketed by axis and each
  /// bucket swept once. Returns false to abort sharing.
  bool RunRound(size_t round) {
    // Buckets keyed by the axis enum value.
    constexpr size_t kAxisKinds =
        static_cast<size_t>(Axis::kPreceding) + 1;
    std::array<std::vector<AxisEntry>, kAxisKinds> buckets;

    for (size_t p = 0; p < plans_.size(); ++p) {
      if (round >= plans_[p].ops.size()) continue;
      const Op& op = plans_[p].ops[round];
      if (op.kind == OpKind::kAxis) {
        AxisEntry entry;
        entry.plan = p;
        entry.op = round;
        entry.src = op_rel_[p][static_cast<size_t>(op.input0)];
        entry.dst = NewScratch(p, round);
        buckets[static_cast<size_t>(op.axis)].push_back(entry);
        if (stats_ != nullptr) ++stats_->axis_ops;
        continue;
      }
      if (!RunPureOp(p, round)) return false;
    }

    for (size_t a = 0; a < buckets.size(); ++a) {
      std::vector<AxisEntry>& bucket = buckets[a];
      if (bucket.empty()) continue;
      const Axis axis = static_cast<Axis>(a);
      if (stats_ != nullptr && bucket.size() >= 2) {
        ++stats_->shared_groups;
        stats_->shared_group_ops += bucket.size();
      }
      for (size_t begin = 0; begin < bucket.size();
           begin += kMaskWidth) {
        const size_t end = std::min(bucket.size(), begin + kMaskWidth);
        const std::span<const AxisEntry> chunk{bucket.data() + begin,
                                               end - begin};
        if (!RunAxisChunk(axis, chunk)) return false;
      }
    }
    return true;
  }

  /// The non-axis algebra ops. Resolution (existing relations, named
  /// contexts) is handled here; the column arithmetic itself is the
  /// same `ApplyColumnOp` the per-query evaluator runs, so the two
  /// paths cannot diverge.
  bool RunPureOp(size_t p, size_t i) {
    const Op& op = plans_[p].ops[i];
    switch (op.kind) {
      case OpKind::kRelation: {
        const RelationId existing = instance_->FindRelation(op.relation);
        if (existing != kNoRelation) {
          op_rel_[p][i] = existing;
        } else {
          NewScratch(p, i);  // empty selection
        }
        return true;
      }
      case OpKind::kContext: {
        if (!options_.context_relation.empty()) {
          const RelationId ctx =
              instance_->FindRelation(options_.context_relation);
          if (ctx == kNoRelation) return false;  // vanilla path errors
          op_rel_[p][i] = ctx;
          return true;
        }
        break;  // empty context = {root}: column op below
      }
      case OpKind::kAxis:
        return false;  // handled by the caller
      default:
        break;
    }
    const RelationId id = NewScratch(p, i);
    ApplyColumnOp(
        instance_, op,
        op.input0 >= 0 ? op_rel_[p][static_cast<size_t>(op.input0)]
                       : kNoRelation,
        op.input1 >= 0 ? op_rel_[p][static_cast<size_t>(op.input1)]
                       : kNoRelation,
        id);
    return true;
  }

  // --- Shared sweeps -------------------------------------------------------

  /// Per-vertex mask of queries whose `src` selection contains v,
  /// computed once per sweep (flat shards; each id is written by
  /// exactly one shard).
  std::vector<uint64_t> SourceMasks(std::span<const AxisEntry> chunk,
                                    const std::vector<VertexId>& order,
                                    size_t threads) {
    std::vector<uint64_t> src_mask(instance_->vertex_count(), 0);
    std::vector<const DynamicBitset*> src_bits;
    src_bits.reserve(chunk.size());
    for (const AxisEntry& e : chunk) {
      src_bits.push_back(&instance_->RelationBits(e.src));
    }
    const auto fill = [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        const VertexId v = order[i];
        uint64_t m = 0;
        for (size_t q = 0; q < src_bits.size(); ++q) {
          if (src_bits[q]->Test(v)) m |= uint64_t{1} << q;
        }
        src_mask[v] = m;
      }
    };
    const size_t shards = SweepShardCount(order.size(), threads);
    if (shards <= 1) {
      fill(0, order.size());
    } else {
      const auto ranges = parallel::SplitRange(order.size(), shards);
      parallel::SharedPool(threads).Run(ranges.size(), [&](size_t s) {
        fill(ranges[s].first, ranges[s].second);
      });
    }
    return src_mask;
  }

  /// Writes each entry's dst bits from the per-vertex result masks.
  void CommitMasks(std::span<const AxisEntry> chunk,
                   const std::vector<VertexId>& order,
                   const std::vector<uint64_t>& dst_mask) {
    for (const VertexId v : order) {
      uint64_t m = dst_mask[v];
      while (m != 0) {
        const int q = __builtin_ctzll(m);
        instance_->SetBit(chunk[static_cast<size_t>(q)].dst, v);
        m &= m - 1;
      }
    }
  }

  /// Prune gate for one shared sweep: the union over the chunk members
  /// of their abstract source / destination node sets, handed to the
  /// same region construction the per-query pruner uses. Every transfer
  /// and closure is monotone, so the union gate's region contains each
  /// member's per-query region — bit-identical parity per member — and
  /// a skip means *every* member's sweep would select and split nothing.
  /// `stage` is -1 for a plain axis, 0/1/2 for the composed stages.
  PruneGate ChunkGate(SweepKind kind, std::span<const AxisEntry> chunk,
                      int stage) {
    PruneGate gate;
    if (!prune_ready_) return gate;
    const size_t nn = regions_.summary().nodes.size();
    union_src_.Resize(nn, false);
    union_src_.ResetAll();
    union_dst_.Resize(nn, false);
    union_dst_.ResetAll();
    bool sources_live = false;
    for (const AxisEntry& e : chunk) {
      const PlanAbstract& abs = abstracts_[e.plan];
      const Op& op = plans_[e.plan].ops[e.op];
      const size_t input = static_cast<size_t>(op.input0);
      if (stage <= 0) {
        union_src_ |= abs.OpSet(input);
      } else {
        union_src_ |= abs.StageSet(e.op, stage - 1);
      }
      if (stage < 0) {
        union_dst_ |= abs.OpSet(e.op);
      } else {
        union_dst_ |= abs.StageSet(e.op, stage);
      }
      sources_live =
          sources_live || instance_->RelationBits(e.src).Any();
    }
    if (!sources_live) {
      // Every member's concrete source is empty: no sweep of this chunk
      // can select or demand anything (mirrors the evaluator's
      // empty-source skip).
      gate.skip = true;
      return gate;
    }
    return regions_.Gate(kind, union_src_, union_dst_);
  }

  /// Folds one shared sweep's gate into the batch counters. `visited`
  /// is what the sweep will walk; a full sweep walks every reachable
  /// vertex once regardless of chunk width.
  void CountSweep(const PruneGate& gate, uint64_t reachable) {
    if (stats_ == nullptr) return;
    stats_->sweep_full += reachable;
    if (gate.skip) {
      ++stats_->skipped_sweeps;
    } else if (gate.region != nullptr) {
      ++stats_->pruned_sweeps;
      stats_->sweep_visited += gate.region_vertices;
    } else {
      stats_->sweep_visited += reachable;
    }
  }

  bool RunAxisChunk(Axis axis, std::span<const AxisEntry> chunk) {
    switch (axis) {
      case Axis::kSelf:
        for (const AxisEntry& e : chunk) {
          instance_->MutableRelationBits(e.dst) =
              instance_->RelationBits(e.src);
        }
        return true;
      case Axis::kParent:
      case Axis::kAncestor:
      case Axis::kAncestorOrSelf:
        SharedUpward(axis, chunk);
        return true;
      case Axis::kChild:
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf:
        return SharedDownward(axis, chunk);
      case Axis::kFollowingSibling:
      case Axis::kPrecedingSibling:
        return SharedSibling(axis, chunk);
      case Axis::kFollowing:
      case Axis::kPreceding:
        return SharedComposed(axis, chunk);
    }
    return false;
  }

  /// Sec. 3.2: following = d-o-s ∘ following-sibling ∘ a-o-s (mirrored
  /// for preceding), each stage a shared sweep over the whole chunk.
  bool SharedComposed(Axis axis, std::span<const AxisEntry> chunk) {
    const Axis sibling = axis == Axis::kFollowing
                             ? Axis::kFollowingSibling
                             : Axis::kPrecedingSibling;
    std::vector<AxisEntry> stage(chunk.begin(), chunk.end());
    std::vector<RelationId> mid;
    mid.reserve(2 * chunk.size());
    const auto cleanup = [&] {
      for (const RelationId id : mid) {
        instance_->ReleaseScratchRelation(id);
      }
    };

    for (AxisEntry& e : stage) {  // a-o-s into fresh scratch
      const RelationId up = instance_->AcquireScratchRelation();
      mid.push_back(up);
      e.dst = up;
    }
    SharedUpward(Axis::kAncestorOrSelf, stage, /*stage=*/0);

    for (AxisEntry& e : stage) {  // sibling from the a-o-s columns
      const RelationId side = instance_->AcquireScratchRelation();
      mid.push_back(side);
      e.src = e.dst;
      e.dst = side;
    }
    if (!SharedSibling(sibling, stage, /*stage=*/1)) {
      cleanup();
      return false;
    }

    for (size_t i = 0; i < stage.size(); ++i) {  // d-o-s into final dst
      stage[i].src = stage[i].dst;
      stage[i].dst = chunk[i].dst;
    }
    const bool ok =
        SharedDownward(Axis::kDescendantOrSelf, stage, /*stage=*/2);
    cleanup();
    return ok;
  }

  /// parent / ancestor / ancestor-or-self for the whole chunk in one
  /// children-scan: never splits (Prop. 3.3), so never aborts. The
  /// region is every potential receiver; for the ancestor axes it
  /// contains all intermediate vertices of every selected chain (their
  /// paths are trie-ancestors of admissible source paths), so gating
  /// the scan never severs the child-to-ancestor mask flow.
  void SharedUpward(Axis axis, std::span<const AxisEntry> chunk,
                    int stage = -1) {
    const bool ancestor =
        axis == Axis::kAncestor || axis == Axis::kAncestorOrSelf;
    const TraversalCache& t = instance_->EnsureTraversal(ancestor);
    const PruneGate gate = ChunkGate(SweepKind::kUpward, chunk, stage);
    CountSweep(gate, t.order.size());
    if (gate.skip) return;  // dst scratch columns stay all-zero
    const DynamicBitset* const region = gate.region;
    const size_t threads = options_.threads;
    const std::vector<uint64_t> src_mask =
        SourceMasks(chunk, t.order, threads);
    std::vector<uint64_t> up_mask(instance_->vertex_count(), 0);

    const auto sweep_slice = [&](const std::vector<VertexId>& vertices,
                                 size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        const VertexId v = vertices[i];
        if (region != nullptr && !region->Test(v)) continue;
        uint64_t m = 0;
        for (const Edge& e : instance_->Children(v)) {
          m |= src_mask[e.child];
          if (ancestor) m |= up_mask[e.child];
        }
        up_mask[v] = m;
      }
    };

    const size_t shards = SweepShardCount(t.order.size(), threads);
    if (shards <= 1) {
      // Children-first over the cached order covers both axes.
      sweep_slice(t.order, 0, t.order.size());
    } else if (!ancestor) {
      // kParent reads only src masks: one flat parallel pass.
      const auto ranges = parallel::SplitRange(t.order.size(), shards);
      parallel::SharedPool(threads).Run(ranges.size(), [&](size_t s) {
        sweep_slice(t.order, ranges[s].first, ranges[s].second);
      });
    } else {
      // kAncestor: leaf-first bands; a band reads only masks of
      // strictly lower bands, finalized at the previous barrier.
      parallel::TaskPool& pool = parallel::SharedPool(threads);
      for (const std::vector<VertexId>& band : t.bands) {
        if (band.empty()) continue;
        const size_t band_shards = SweepShardCount(band.size(), threads);
        if (band_shards <= 1) {
          sweep_slice(band, 0, band.size());
          continue;
        }
        const auto ranges = parallel::SplitRange(band.size(), band_shards);
        pool.Run(ranges.size(), [&](size_t s) {
          sweep_slice(band, ranges[s].first, ranges[s].second);
        });
      }
    }

    if (axis == Axis::kAncestorOrSelf) {
      for (const VertexId v : t.order) up_mask[v] |= src_mask[v];
    }
    CommitMasks(chunk, t.order, up_mask);
  }

  /// child / descendant / descendant-or-self: root-first band sweep
  /// accumulating per-query demand masks. A vertex demanded with both
  /// bits by one query (and not folded by or-self) is a split the
  /// sequential kernel would perform — the abort condition.
  ///
  /// Demand pushes are commutative ORs; inside a parallel band they go
  /// through std::atomic_ref, while single-shard stretches use plain
  /// ORs (an uncontended lock-prefixed RMW per edge would cost more
  /// than the sharing saves on small batches).
  bool SharedDownward(Axis axis, std::span<const AxisEntry> chunk,
                      int stage = -1) {
    const bool inherit = axis != Axis::kChild;
    const bool or_self = axis == Axis::kDescendantOrSelf;
    const TraversalCache& t = instance_->EnsureTraversal(true);
    const PruneGate gate = ChunkGate(SweepKind::kDownward, chunk, stage);
    CountSweep(gate, t.order.size());
    if (gate.skip) return true;  // selects nothing, demands nothing
    const DynamicBitset* const region = gate.region;
    const size_t threads = options_.threads;
    const size_t n = instance_->vertex_count();
    const uint64_t full =
        chunk.size() == kMaskWidth
            ? ~uint64_t{0}
            : (uint64_t{1} << chunk.size()) - 1;
    const std::vector<uint64_t> src_mask =
        SourceMasks(chunk, t.order, threads);

    // demand1[w] / demand0[w]: queries with an occurrence of w that
    // must be selected / unselected. Commutative ORs, hence order-free.
    std::vector<uint64_t> demand1(n, 0);
    std::vector<uint64_t> demand0(n, 0);
    std::vector<uint64_t> dst_mask(n, 0);
    std::atomic<uint64_t> conflicts{0};
    const VertexId root = instance_->root();

    const auto decide_slice = [&](const std::vector<VertexId>& band,
                                  size_t begin, size_t end,
                                  bool concurrent) {
      for (size_t i = begin; i < end; ++i) {
        const VertexId w = band[i];
        // Outside the region nothing can be demanded selected: any d1
        // receiver is in V(dst) and every parent of such a receiver is
        // in the trie-parent closure, so all clash-relevant pushes come
        // from region vertices (same argument as the per-query kernel).
        if (region != nullptr && !region->Test(w)) continue;
        uint64_t d1 = demand1[w];
        uint64_t d0 = demand0[w];
        if (w == root) d0 = full;  // the root is entered by no edge
        const uint64_t os = or_self ? src_mask[w] : 0;
        const uint64_t clash = d1 & d0 & ~os;
        if (clash != 0) {
          conflicts.fetch_add(static_cast<uint64_t>(
                                  __builtin_popcountll(clash)),
                              std::memory_order_relaxed);
          continue;
        }
        const uint64_t mine = os | d1;
        dst_mask[w] = mine;
        const uint64_t out1 =
            src_mask[w] | (inherit ? mine : uint64_t{0});
        const uint64_t out0 = full & ~out1;
        if (concurrent) {
          for (const Edge& e : instance_->Children(w)) {
            std::atomic_ref<uint64_t>(demand1[e.child])
                .fetch_or(out1, std::memory_order_relaxed);
            std::atomic_ref<uint64_t>(demand0[e.child])
                .fetch_or(out0, std::memory_order_relaxed);
          }
        } else {
          for (const Edge& e : instance_->Children(w)) {
            demand1[e.child] |= out1;
            demand0[e.child] |= out0;
          }
        }
      }
    };

    parallel::TaskPool& pool = parallel::SharedPool(threads);
    for (size_t h = t.bands.size(); h-- > 0;) {
      const std::vector<VertexId>& band = t.bands[h];
      if (band.empty()) continue;
      const size_t shards = SweepShardCount(band.size(), threads);
      if (shards <= 1) {
        decide_slice(band, 0, band.size(), /*concurrent=*/false);
      } else {
        const auto ranges = parallel::SplitRange(band.size(), shards);
        pool.Run(ranges.size(), [&](size_t s) {
          decide_slice(band, ranges[s].first, ranges[s].second,
                       /*concurrent=*/true);
        });
      }
      if (conflicts.load(std::memory_order_relaxed) != 0) {
        if (stats_ != nullptr) {
          stats_->conflicts += conflicts.load(std::memory_order_relaxed);
        }
        return false;
      }
    }
    CommitMasks(chunk, t.order, dst_mask);
    return true;
  }

  /// following-sibling / preceding-sibling: one demand pass over every
  /// reachable child list. A run straddling a per-query selection
  /// boundary demands both bits of its child — the split the sequential
  /// kernel performs, hence the abort condition. Conflict-free demand
  /// masks ARE the answer: the rewritten lists would equal the
  /// originals run for run.
  bool SharedSibling(Axis axis, std::span<const AxisEntry> chunk,
                     int stage = -1) {
    const bool forward = axis == Axis::kFollowingSibling;
    const TraversalCache& t = instance_->EnsureTraversal();
    const PruneGate gate = ChunkGate(SweepKind::kSibling, chunk, stage);
    CountSweep(gate, t.order.size());
    if (gate.skip) return true;  // no list can demand a selection
    const DynamicBitset* const region = gate.region;
    const size_t threads = options_.threads;
    const size_t n = instance_->vertex_count();
    const uint64_t full =
        chunk.size() == kMaskWidth
            ? ~uint64_t{0}
            : (uint64_t{1} << chunk.size()) - 1;
    const std::vector<uint64_t> src_mask =
        SourceMasks(chunk, t.order, threads);

    // Plain ORs on the single-shard path, atomic_ref inside parallel
    // shards (different vertices' lists push to shared children).
    std::vector<uint64_t> demand1(n, 0);
    std::vector<uint64_t> demand0(n, 0);

    const auto demand_run = [&](VertexId child, uint64_t count,
                                uint64_t seen, uint64_t in_src,
                                bool concurrent) {
      // First (forward) / last (backward) occurrence of the run takes
      // the `seen` history; the remaining count-1 follow (precede) a
      // same-vertex occurrence, so their history also includes in_src.
      uint64_t d1 = seen;
      uint64_t d0 = full & ~seen;
      if (count > 1) {
        const uint64_t bulk = seen | in_src;
        d1 |= bulk;
        d0 |= full & ~bulk;
      }
      if (concurrent) {
        std::atomic_ref<uint64_t>(demand1[child])
            .fetch_or(d1, std::memory_order_relaxed);
        std::atomic_ref<uint64_t>(demand0[child])
            .fetch_or(d0, std::memory_order_relaxed);
      } else {
        demand1[child] |= d1;
        demand0[child] |= d0;
      }
    };
    const auto walk_slice = [&](size_t begin, size_t end,
                                bool concurrent) {
      for (size_t i = begin; i < end; ++i) {
        // The region is the set of sibling lists that can contain a
        // source child or a receiver; any other list's demands are
        // all-zero history over non-source runs — nothing to push.
        if (region != nullptr && !region->Test(t.order[i])) continue;
        const std::span<const Edge> runs =
            instance_->Children(t.order[i]);
        uint64_t seen = 0;
        if (forward) {
          for (const Edge& run : runs) {
            const uint64_t in_src = src_mask[run.child];
            demand_run(run.child, run.count, seen, in_src, concurrent);
            seen |= in_src;
          }
        } else {
          for (size_t r = runs.size(); r-- > 0;) {
            const uint64_t in_src = src_mask[runs[r].child];
            demand_run(runs[r].child, runs[r].count, seen, in_src,
                       concurrent);
            seen |= in_src;
          }
        }
      }
    };

    const size_t shards = SweepShardCount(t.order.size(), threads);
    if (shards <= 1) {
      walk_slice(0, t.order.size(), /*concurrent=*/false);
    } else {
      const auto ranges = parallel::SplitRange(t.order.size(), shards);
      parallel::SharedPool(threads).Run(ranges.size(), [&](size_t s) {
        walk_slice(ranges[s].first, ranges[s].second,
                   /*concurrent=*/true);
      });
    }
    demand0[instance_->root()] |= full;

    // Conflict check + commit in one pass.
    uint64_t clash_total = 0;
    for (const VertexId v : t.order) {
      clash_total |= demand1[v] & demand0[v];
    }
    if (clash_total != 0) {
      if (stats_ != nullptr) {
        stats_->conflicts +=
            static_cast<uint64_t>(__builtin_popcountll(clash_total));
      }
      return false;
    }
    CommitMasks(chunk, t.order, demand1);
    return true;
  }

  Instance* instance_;
  const EvalOptions& options_;
  const std::vector<algebra::QueryPlan>& plans_;
  SharedBatchStats* stats_;

  std::vector<std::vector<RelationId>> op_rel_;
  std::vector<std::vector<uint8_t>> op_scratch_;  ///< 1 = we own it.
  std::vector<std::vector<size_t>> last_use_;

  /// Sweep pruning (docs/INTERNALS.md §9): one summary binding for the
  /// run, one abstract interpretation per plan, reusable union buffers
  /// for the chunk gates.
  SummaryRegions regions_;
  std::vector<PlanAbstract> abstracts_;
  bool prune_ready_ = false;
  DynamicBitset union_src_;
  DynamicBitset union_dst_;
};

}  // namespace

SharedBatchResult EvaluateBatchShared(
    Instance* instance, const std::vector<algebra::QueryPlan>& plans,
    const EvalOptions& options, SharedBatchStats* stats) {
  Timer timer;
  SharedBatchRunner runner(instance, options, plans, stats);
  SharedBatchResult result = runner.Run();
  if (stats != nullptr) stats->seconds = timer.Seconds();
  return result;
}

}  // namespace xcq::engine
