#include "xcq/engine/prune.h"

#include <algorithm>
#include <string_view>

namespace xcq::engine {
namespace {

using algebra::Op;
using algebra::OpKind;
using xpath::Axis;

// --- Node-set transfers over the summary trie ------------------------------
//
// Summary nodes are created parents-first (node 0 is the root's path and
// every node's parent has a smaller id), so one ascending index pass
// computes a downward closure and one descending pass an upward closure.

/// set ∪= all trie descendants of set.
void CloseDown(const PathSummary& s, DynamicBitset* set) {
  for (size_t j = 1; j < s.nodes.size(); ++j) {
    if (set->Test(s.nodes[j].parent)) set->Set(j);
  }
}

/// set ∪= all trie ancestors of set.
void CloseUp(const PathSummary& s, DynamicBitset* set) {
  for (size_t j = s.nodes.size(); j-- > 1;) {
    if (set->Test(j)) set->Set(s.nodes[j].parent);
  }
}

/// out = trie children of `in` (out must be zeroed, distinct from in).
void TrieChildren(const PathSummary& s, const DynamicBitset& in,
                  DynamicBitset* out) {
  for (size_t j = 1; j < s.nodes.size(); ++j) {
    if (in.Test(s.nodes[j].parent)) out->Set(j);
  }
}

/// out ∪= trie parents of `in`.
void TrieParents(const PathSummary& s, const DynamicBitset& in,
                 DynamicBitset* out) {
  for (size_t j = 1; j < s.nodes.size(); ++j) {
    if (in.Test(j)) out->Set(s.nodes[j].parent);
  }
}

bool IsReserved(std::string_view name) { return name.starts_with("xcq:"); }

}  // namespace

SweepKind SweepKindFor(Axis axis) {
  switch (axis) {
    case Axis::kChild:
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf:
      return SweepKind::kDownward;
    case Axis::kFollowingSibling:
    case Axis::kPrecedingSibling:
      return SweepKind::kSibling;
    default:
      return SweepKind::kUpward;
  }
}

// --- SummaryRegions --------------------------------------------------------

void SummaryRegions::Bind(const Instance& instance) {
  instance_ = &instance;
  summary_ = &instance.EnsurePathSummary();
  active_ = !summary_->saturated && !summary_->nodes.empty() &&
            instance.vertex_count() > 0;
  bound_vertices_ = active_ ? instance.vertex_count() : 0;
}

void SummaryRegions::CollectRealized(const DynamicBitset& base) {
  const PathSummary& s = *summary_;
  collected_.Resize(s.nodes.size(), false);
  collected_.ResetAll();
  // Post-bind clones need no scan: a clone's true path set is a subset
  // of its original's bind-time set, so the original already collects a
  // superset of anything the clone could contribute.
  const size_t n =
      std::min(instance_->vertex_count(), bound_vertices_);
  for (size_t v = 0; v < n; ++v) {
    const uint32_t begin = s.vertex_begin[v];
    const uint32_t end = s.vertex_begin[v + 1];
    bool in_base = false;
    for (uint32_t k = begin; k < end && !in_base; ++k) {
      in_base = base.Test(s.vertex_nodes[k]);
    }
    if (!in_base) continue;
    for (uint32_t k = begin; k < end; ++k) {
      collected_.Set(s.vertex_nodes[k]);
    }
  }
}

uint64_t SummaryRegions::Realize(const DynamicBitset& want) {
  const PathSummary& s = *summary_;
  const size_t n = instance_->vertex_count();
  const size_t known = std::min(n, bound_vertices_);
  region_.Resize(n, false);
  region_.ResetAll();
  uint64_t count = 0;
  for (size_t v = 0; v < known; ++v) {
    const uint32_t begin = s.vertex_begin[v];
    const uint32_t end = s.vertex_begin[v + 1];
    for (uint32_t k = begin; k < end; ++k) {
      if (want.Test(s.vertex_nodes[k])) {
        region_.Set(v);
        ++count;
        break;
      }
    }
  }
  // Vertices created after binding (mid-plan split clones) have no
  // realization slice; admit them unconditionally — conservative, and
  // there are few of them relative to the corpus.
  for (size_t v = known; v < n; ++v) {
    region_.Set(v);
    ++count;
  }
  return count;
}

PruneGate SummaryRegions::Gate(SweepKind kind, const DynamicBitset& src_nodes,
                               const DynamicBitset& dst_nodes) {
  PruneGate gate;
  if (!active_) return gate;
  if (dst_nodes.None()) {
    // Nothing can be selected, so nothing is demanded both ways either:
    // the unpruned sweep would leave the destination all-zero and the
    // structure untouched (sibling rewrites are equal-content no-ops).
    gate.skip = true;
    return gate;
  }
  const PathSummary& s = *summary_;
  base_.Resize(s.nodes.size(), false);
  base_.ResetAll();
  base_ |= dst_nodes;
  switch (kind) {
    case SweepKind::kUpward:
      // Receivers only: the kernels read child source bits straight off
      // the column, and no vertex outside V(dst) can turn a bit on.
      gate.region_vertices = Realize(base_);
      break;
    case SweepKind::kDownward: {
      // base = V(src ∪ dst), then close with the vertices realizing a
      // trie-parent of any path of a base vertex: every reachable
      // parent of a base vertex realizes such a path, so the closure
      // contains the fringe whose demand-0 pushes the unpruned kernel
      // would deliver — giving exact split parity.
      base_ |= src_nodes;
      CollectRealized(base_);
      TrieParents(s, collected_, &base_);
      gate.region_vertices = Realize(base_);
      break;
    }
    case SweepKind::kSibling: {
      // The region is the set of sibling lists to walk: owners of any
      // list containing a source child or a potential receiver — i.e.
      // vertices realizing a trie-parent of any path of V(src ∪ dst).
      base_ |= src_nodes;
      CollectRealized(base_);
      base_.ResetAll();
      TrieParents(s, collected_, &base_);
      if (base_.None()) {
        gate.skip = true;
        return gate;
      }
      gate.region_vertices = Realize(base_);
      break;
    }
  }
  gate.region = &region_;
  return gate;
}

// --- PlanAbstract ----------------------------------------------------------

const DynamicBitset& PlanAbstract::StageSet(size_t i, int stage) const {
  if (stage == 2) return op_sets_[i];
  return stage_sets_.at(i)[static_cast<size_t>(stage)];
}

void PlanAbstract::Compute(const Instance& instance,
                           const PathSummary& summary,
                           const algebra::QueryPlan& plan,
                           const EvalOptions& options) {
  const size_t nn = summary.nodes.size();
  op_sets_.assign(plan.ops.size(), DynamicBitset(nn));
  stage_sets_.clear();
  DynamicBitset tmp(nn);
  for (size_t i = 0; i < plan.ops.size(); ++i) {
    const Op& op = plan.ops[i];
    DynamicBitset& out = op_sets_[i];
    switch (op.kind) {
      case OpKind::kRelation: {
        const RelationId r = instance.FindRelation(op.relation);
        if (r == kNoRelation) break;  // empty selection
        if (IsReserved(op.relation)) {
          // Reserved columns (results, kept temporaries) are written by
          // queries, not by compression — their bits are not part of
          // the label alphabet, so admit every path.
          out.SetAll();
          break;
        }
        // Admit the paths ending in a label that contains r.
        std::vector<uint8_t> has(summary.labels.size(), 0);
        for (size_t l = 0; l < summary.labels.size(); ++l) {
          has[l] = std::binary_search(summary.labels[l].begin(),
                                      summary.labels[l].end(), r)
                       ? 1
                       : 0;
        }
        for (size_t j = 0; j < nn; ++j) {
          if (has[summary.nodes[j].label]) out.Set(j);
        }
        break;
      }
      case OpKind::kRoot:
        if (nn > 0) out.Set(0);
        break;
      case OpKind::kAllNodes:
        out.SetAll();
        break;
      case OpKind::kContext:
        if (options.context_relation.empty()) {
          // Empty context = {root} (the evaluator's fallback).
          if (nn > 0) out.Set(0);
        } else {
          // A named context is caller-owned: its bits may be set by
          // hand without a structure-generation bump, so no label
          // information is trustworthy. Admit every path.
          out.SetAll();
        }
        break;
      case OpKind::kUnion:
        out |= op_sets_[op.input0];
        out |= op_sets_[op.input1];
        break;
      case OpKind::kIntersect:
        out |= op_sets_[op.input0];
        out &= op_sets_[op.input1];
        break;
      case OpKind::kDifference:
        // Only the left operand constrains paths (v ∈ result ⟹ v ∈
        // input0 on every occurrence).
        out |= op_sets_[op.input0];
        break;
      case OpKind::kRootFilter:
        // {V if root ∈ S}: if the root's path is inadmissible for the
        // input, the input cannot hold the root and the filter yields ∅.
        if (nn > 0 && op_sets_[op.input0].Test(0)) out.SetAll();
        break;
      case OpKind::kAxis: {
        const DynamicBitset& in = op_sets_[op.input0];
        switch (op.axis) {
          case Axis::kSelf:
            out |= in;
            break;
          case Axis::kChild:
            TrieChildren(summary, in, &out);
            break;
          case Axis::kDescendant:
            TrieChildren(summary, in, &out);
            CloseDown(summary, &out);
            break;
          case Axis::kDescendantOrSelf:
            out |= in;
            CloseDown(summary, &out);
            break;
          case Axis::kParent:
            TrieParents(summary, in, &out);
            break;
          case Axis::kAncestor:
            TrieParents(summary, in, &out);
            CloseUp(summary, &out);
            break;
          case Axis::kAncestorOrSelf:
            out |= in;
            CloseUp(summary, &out);
            break;
          case Axis::kFollowingSibling:
          case Axis::kPrecedingSibling:
            // Children of parents: a superset of the true sibling set
            // (trie-level order is unknown, so both directions share
            // the same abstraction).
            tmp.ResetAll();
            TrieParents(summary, in, &tmp);
            TrieChildren(summary, tmp, &out);
            break;
          case Axis::kFollowing:
          case Axis::kPreceding: {
            // Mirrors the evaluator's three staged sweeps:
            // aos → sibling → dos.
            std::array<DynamicBitset, 2>& stages = stage_sets_[i];
            stages[0] = DynamicBitset(nn);
            stages[0] |= in;
            CloseUp(summary, &stages[0]);
            stages[1] = DynamicBitset(nn);
            tmp.ResetAll();
            TrieParents(summary, stages[0], &tmp);
            TrieChildren(summary, tmp, &stages[1]);
            out |= stages[1];
            CloseDown(summary, &out);
            break;
          }
        }
        break;
      }
    }
  }
}

// --- PlanPruner ------------------------------------------------------------

PlanPruner::PlanPruner(Instance* instance, const algebra::QueryPlan* plan,
                       const EvalOptions* options)
    : instance_(instance), plan_(plan), options_(options) {}

bool PlanPruner::Sync() {
  const uint64_t generation = instance_->structure_generation();
  const uint64_t fingerprint = instance_->LabelSchemaFingerprint();
  if (bound_ && generation == bound_generation_ &&
      fingerprint == bound_fingerprint_) {
    return regions_.active();
  }
  if (bound_ && fingerprint == bound_fingerprint_ &&
      instance_->vertex_count() >= regions_.bound_vertices()) {
    // Structure-only drift: mid-plan splits add clone vertices and
    // re-point parent edges toward them, but never add labels (the
    // trie and the plan's abstract sets stay exact) and never add
    // incoming edges to pre-existing vertices (their bind-time
    // realization slices stay supersets of the truth). Regions built
    // from the stale summary therefore remain sound once Realize
    // admits every post-bind vertex unconditionally — so keep the
    // binding instead of paying a full summary rebuild per split.
    ++resyncs_;
    bound_generation_ = generation;
    return regions_.active();
  }
  regions_.Bind(*instance_);
  if (regions_.active()) {
    abstract_.Compute(*instance_, regions_.summary(), *plan_, *options_);
  }
  if (bound_) ++resyncs_;
  bound_ = true;
  bound_generation_ = instance_->structure_generation();
  bound_fingerprint_ = instance_->LabelSchemaFingerprint();
  return regions_.active();
}

PruneGate PlanPruner::AxisGate(size_t op_index) {
  if (!Sync()) return PruneGate{};
  const Op& op = plan_->ops[op_index];
  return regions_.Gate(SweepKindFor(op.axis),
                       abstract_.OpSet(op.input0),
                       abstract_.OpSet(op_index));
}

PruneGate PlanPruner::StageGate(size_t op_index, int stage) {
  if (!Sync()) return PruneGate{};
  const Op& op = plan_->ops[op_index];
  const DynamicBitset& src = stage == 0
                                 ? abstract_.OpSet(op.input0)
                                 : abstract_.StageSet(op_index, stage - 1);
  const DynamicBitset& dst = abstract_.StageSet(op_index, stage);
  const SweepKind kind = stage == 0   ? SweepKind::kUpward
                         : stage == 1 ? SweepKind::kSibling
                                      : SweepKind::kDownward;
  return regions_.Gate(kind, src, dst);
}

}  // namespace xcq::engine
