#ifndef XCQ_ENGINE_SWEEP_H_
#define XCQ_ENGINE_SWEEP_H_

/// \file sweep.h
/// Shared partitioning state for the axis sweeps
/// (docs/PARALLELISM.md §2, docs/INTERNALS.md §8).
///
/// The parallel kernels replace the sequential DFS of Fig. 4 with
/// *height-band* sweeps: `height(v)` (longest path to a leaf) strictly
/// decreases along every edge, so all vertices of one height can be
/// processed concurrently once every higher band is final — downward
/// axes walk bands root-first, upward axes leaf-first. A `SweepPlan`
/// carries the reachable set and the bands.
///
/// The plan *is* the instance's memoized `TraversalCache`: building it
/// used to cost one full `PostOrder()` walk per axis op, which
/// dominated short queries; now every op on a structurally unchanged
/// instance reads the same cached order/bands, and only a mutation
/// (split, edge rewrite, root move) triggers a rebuild on the next
/// read. Everything in the plan is derived deterministically from the
/// instance, independent of thread count.
///
/// Lifetime: the returned reference stays valid until a structural
/// mutation *followed by* another `EnsureTraversal` read. The kernels
/// take the plan once up front and may then mutate the instance
/// (splits, re-points) while still iterating the now-stale snapshot —
/// sound because nothing in a kernel re-reads the cache mid-sweep, and
/// exactly the snapshot semantics the pre-cache code had.

#include <cstdint>
#include <vector>

#include "xcq/instance/instance.h"

namespace xcq::engine {

/// The memoized traversal doubles as the sweep plan: `order`
/// (post-order), `height` / `bands` when requested.
using SweepPlan = TraversalCache;

/// \brief Reads the plan from the instance's traversal cache,
/// (re)building it only if the structure changed; heights and bands
/// cost one extra O(V + E) pass on first request per generation.
inline const SweepPlan& BuildSweepPlan(const Instance& instance,
                                       bool need_heights) {
  return instance.EnsureTraversal(need_heights);
}

/// Work below this many vertices per shard is not worth a barrier; the
/// kernels run such stretches inline on the calling thread.
inline constexpr size_t kSweepGrain = 1024;

/// \brief Number of shards for `n` items over `threads` lanes: enough
/// for balance (2 per lane), but never shards smaller than the grain.
inline size_t SweepShardCount(size_t n, size_t threads) {
  if (threads <= 1 || n < 2 * kSweepGrain) return 1;
  const size_t by_grain = n / kSweepGrain;
  const size_t by_lanes = 2 * threads;
  return by_grain < by_lanes ? by_grain : by_lanes;
}

}  // namespace xcq::engine

#endif  // XCQ_ENGINE_SWEEP_H_
