#ifndef XCQ_ENGINE_SWEEP_H_
#define XCQ_ENGINE_SWEEP_H_

/// \file sweep.h
/// Shared partitioning state for the parallel axis sweeps
/// (docs/PARALLELISM.md §2).
///
/// The parallel kernels replace the sequential DFS of Fig. 4 with
/// *height-band* sweeps: `height(v)` (longest path to a leaf) strictly
/// decreases along every edge, so all vertices of one height can be
/// processed concurrently once every higher band is final — downward
/// axes walk bands root-first, upward axes leaf-first. A `SweepPlan`
/// carries the reachable set and the bands.
///
/// Everything in the plan is derived deterministically from the
/// instance (post-order), independent of thread count.

#include <cstdint>
#include <vector>

#include "xcq/instance/instance.h"

namespace xcq::engine {

struct SweepPlan {
  /// Reachable vertices, children before parents (DFS post-order).
  std::vector<VertexId> order;

  /// height[v] for reachable v; kNoHeight for unreachable ids.
  /// Leaves have height 0; the root is the unique maximum.
  std::vector<uint32_t> height;

  /// bands[h] = reachable vertices of height h, in post-order position.
  std::vector<std::vector<VertexId>> bands;

  static constexpr uint32_t kNoHeight = UINT32_MAX;
};

/// \brief Builds the plan; heights and bands are only populated when
/// requested (they cost one extra O(V + E) loop over the order).
SweepPlan BuildSweepPlan(const Instance& instance, bool need_heights);

/// Work below this many vertices per shard is not worth a barrier; the
/// kernels run such stretches inline on the calling thread.
inline constexpr size_t kSweepGrain = 1024;

/// \brief Number of shards for `n` items over `threads` lanes: enough
/// for balance (2 per lane), but never shards smaller than the grain.
inline size_t SweepShardCount(size_t n, size_t threads) {
  if (threads <= 1 || n < 2 * kSweepGrain) return 1;
  const size_t by_grain = n / kSweepGrain;
  const size_t by_lanes = 2 * threads;
  return by_grain < by_lanes ? by_grain : by_lanes;
}

}  // namespace xcq::engine

#endif  // XCQ_ENGINE_SWEEP_H_
