#include <atomic>
#include <cassert>
#include <span>
#include <utility>
#include <vector>

#include "xcq/engine/axes.h"
#include "xcq/engine/sweep.h"
#include "xcq/parallel/task_pool.h"

namespace xcq::engine {

using xpath::Axis;

namespace {

/// The paper's Fig. 4 procedure, de-recursed.
///
/// Invariants maintained (they carry the correctness argument):
///  * every vertex is *visited* at most once; visiting assigns its `dst`
///    bit and schedules a scan of its child runs;
///  * `aux[w]` links a vertex to its unique counterpart with the opposite
///    `dst` bit (and vice versa), so each vertex is copied at most once
///    and the instance at most doubles;
///  * a conflict (visited child whose bit differs from the required one)
///    can only involve a child whose own scan has finished, because in a
///    DFS over a DAG any repeated child of an ancestor frame is reached
///    again only after its subtree completed — hence clones always copy
///    final, rewritten child lists.
Status ApplyDownwardAxisSequential(Instance* instance, Axis axis,
                                   RelationId src, RelationId dst,
                                   AxisStats* stats, EvalGuard* guard) {
  const bool inherit = axis != Axis::kChild;          // descendant / d-o-s
  const bool or_self = axis == Axis::kDescendantOrSelf;

  // Guard checkpoint stride: every iteration leaves the instance
  // consistent (a clone and its re-pointed edge land in the same
  // iteration), so any iteration boundary is a safe abort point; the
  // stride only keeps the poll off the hot path.
  constexpr uint64_t kGuardStride = 4096;
  uint64_t iterations = 0;
  uint64_t visit_count = 0;
  uint64_t split_count = 0;
  uint64_t charged_visits = 0;
  uint64_t charged_splits = 0;

  std::vector<uint8_t> visited(instance->vertex_count(), 0);
  std::vector<VertexId> aux(instance->vertex_count(), kNoVertex);
  std::vector<std::pair<VertexId, uint32_t>> stack;  // (vertex, next run)

  const auto push_visit = [&](VertexId v, bool sv) {
    visited[v] = 1;
    instance->AssignBit(dst, v, sv);
    stack.emplace_back(v, 0);
    ++visit_count;
    if (stats != nullptr) ++stats->visited;
  };

  const VertexId root = instance->root();
  push_visit(root, or_self && instance->Test(src, root));

  while (!stack.empty()) {
    if (guard != nullptr && ++iterations % kGuardStride == 0) {
      XCQ_RETURN_IF_ERROR(guard->Charge(visit_count - charged_visits,
                                        split_count - charged_splits));
      charged_visits = visit_count;
      charged_splits = split_count;
    }
    const VertexId v = stack.back().first;
    const uint32_t i = stack.back().second;
    if (i >= instance->Children(v).size()) {
      stack.pop_back();
      continue;
    }
    stack.back().second = i + 1;

    const VertexId w = instance->Children(v)[i].child;
    // Fig. 4 line 4: the child's new selection. Identical for every
    // occurrence in the run — multiplicities are orthogonal here.
    const bool sv = instance->Test(dst, v);
    const bool sw = instance->Test(src, v) || (inherit && sv) ||
                    (or_self && instance->Test(src, w));

    if (!visited[w]) {
      push_visit(w, sw);
      continue;
    }
    if (instance->Test(dst, w) == sw) continue;

    // Conflict: the required bit differs. Reuse or create the counterpart.
    VertexId counterpart = aux[w];
    if (counterpart == kNoVertex) {
      counterpart = instance->CloneVertex(w);
      visited.push_back(0);
      aux.push_back(kNoVertex);
      aux[w] = counterpart;
      aux[counterpart] = w;
      ++split_count;
      if (stats != nullptr) ++stats->splits;
      if (inherit) {
        // Descendants of the copy must see the new inherited selection.
        push_visit(counterpart, sw);
      } else {
        visited[counterpart] = 1;
        instance->AssignBit(dst, counterpart, sw);
        if (stats != nullptr) ++stats->visited;
      }
    }
    instance->MutableChildren(v)[i].child = counterpart;
  }
  if (guard != nullptr) {
    XCQ_RETURN_IF_ERROR(guard->Charge(visit_count - charged_visits,
                                      split_count - charged_splits));
  }
  return Status::OK();
}

/// Height-band reformulation of Fig. 4 (docs/PARALLELISM.md §2.2).
///
/// Bands are processed root-first. When band h starts, every vertex of
/// height > h carries its final `dst` bit and has *pushed* what each of
/// its edges demands of its child — src(p) ∨ inherit·dst(p) — into the
/// child's demand flags (a commutative atomic OR, hence order-free).
/// A band vertex folds its flags with or-self·src(w): one demanded bit
/// → take it and push onward; both → split, the original keeping 0 and
/// the clone (which pushes with bit 1) taking 1.
///
/// Edges are re-pointed to the right variant in ONE deferred pass at
/// the end — every edge's demand is recomputable from its (by then
/// final) parent bit — which runs only if any split happened at all.
/// Nothing in between reads an edge's variant association: demands are
/// indexed by the original vertex id, which is exactly the cell where
/// both variants' demands must meet.
///
/// The per-occurrence selections this computes are precisely Fig. 4's
/// (each edge stands for a set of tree-node occurrences that share a
/// parent variant, hence share a demanded bit), so answers match the
/// sequential kernel; only which variant keeps the original id may
/// differ (isomorphic DAGs, identical once re-minimized).
///
/// Thread discipline: parallel phases write only atomic demand flags,
/// per-vertex decision bytes, and per-shard buffers; all Instance
/// mutation (clones, edge re-points, relation bits) happens on the
/// calling thread between barriers.
///
/// With a `region` (engine/prune.h) only region vertices are decided.
/// The region contains V(src ∪ dst) closed with every reachable parent
/// of those vertices, so demand-1 receivers see their complete demand
/// pair (split parity) while skipped vertices would — in the unpruned
/// sweep — decide dst=0 and push demand-0, which region fringe vertices
/// (no demands, no src bit) reproduce exactly.
Status ApplyDownwardAxisBanded(Instance* instance, Axis axis,
                               RelationId src, RelationId dst,
                               AxisStats* stats, size_t threads,
                               const DynamicBitset* region,
                               EvalGuard* guard) {
  const bool inherit = axis != Axis::kChild;
  const bool or_self = axis == Axis::kDescendantOrSelf;

  // A reference into the traversal cache: the splits below invalidate
  // the cache for *later* readers, but no rebuild can happen while this
  // kernel runs (nothing here re-reads the cache), so the snapshot
  // stays intact exactly like the by-value plan it replaces.
  const SweepPlan& plan = BuildSweepPlan(*instance, /*need_heights=*/true);
  const size_t n0 = instance->vertex_count();
  const DynamicBitset& src_bits = instance->RelationBits(src);

  // Demand flags per original vertex: bit 0 = some occurrence needs
  // dst=0, bit 1 = needs dst=1. Clones are born resolved and edges are
  // re-pointed only at the very end, so no clone ever receives flags.
  std::vector<std::atomic<uint8_t>> demand(n0);
  // dst bit per vertex, grown as clones are allocated; counterpart[w]
  // is w's bit-1 clone when w split.
  std::vector<uint8_t> dst_bit(n0, 0);
  std::vector<VertexId> counterpart(n0, kNoVertex);
  uint64_t split_count = 0;
  uint64_t charged_splits = 0;

  parallel::TaskPool& pool = parallel::SharedPool(threads);
  std::vector<std::pair<size_t, size_t>> ranges;
  std::vector<std::vector<VertexId>> split_candidates;

  // Finalize the bit of one band vertex from its flags and push its
  // out-edge demands. Split candidates are deferred to the caller.
  const auto push_from = [&](VertexId v, bool bit) {
    const uint8_t out = src_bits.Test(v) || (inherit && bit) ? 2 : 1;
    for (const Edge& e : instance->Children(v)) {
      demand[e.child].fetch_or(out, std::memory_order_relaxed);
    }
  };

  const VertexId root = instance->root();
  for (size_t h = plan.bands.size(); h-- > 0;) {
    const std::vector<VertexId>& band = plan.bands[h];
    if (band.empty()) continue;

    // Guard checkpoint between bands: clones allocated so far are
    // unreachable (edges re-point only in the deferred pass below) and
    // the dst column is untouched until the final bit pass, so an
    // abort here leaves the instance representing the same tree, at
    // worst with unreachable clone leftovers.
    if (guard != nullptr) {
      const uint64_t before = split_count;
      XCQ_RETURN_IF_ERROR(guard->Charge(band.size(), before - charged_splits));
      charged_splits = before;
    }

    // Decide-and-push phase. Decisions depend only on flags accumulated
    // by (finalized) higher bands, so they are independent of sharding;
    // candidate lists concatenated in shard order reproduce band order
    // for every thread count.
    const size_t shards = SweepShardCount(band.size(), threads);
    ranges = parallel::SplitRange(band.size(), shards);
    split_candidates.assign(ranges.size(), {});
    const auto decide_range = [&](size_t s) {
      for (size_t i = ranges[s].first; i < ranges[s].second; ++i) {
        const VertexId w = band[i];
        if (region != nullptr && !region->Test(w)) continue;
        const bool os = or_self && src_bits.Test(w);
        uint8_t d = demand[w].load(std::memory_order_relaxed);
        if (d == 0) {
          // Only the root receives no demands (every other reachable
          // vertex is entered by a reachable parent's edge).
          d = w == root ? 1 : d;
        }
        if (os) d = 2;  // or-self folds every occurrence to selected
        if (d == 3) {
          dst_bit[w] = 0;  // the original keeps 0; the clone takes 1
          split_candidates[s].push_back(w);
          push_from(w, false);
        } else {
          dst_bit[w] = d == 2 ? 1 : 0;
          push_from(w, dst_bit[w] != 0);
        }
      }
    };
    if (ranges.size() == 1) {
      decide_range(0);
    } else {
      pool.Run(ranges.size(), decide_range);
    }

    // Split phase (sequential): allocate clones in band order; each
    // clone pushes with bit 1 (its child list equals the original's).
    for (const std::vector<VertexId>& candidates : split_candidates) {
      for (const VertexId w : candidates) {
        const VertexId clone = instance->CloneVertex(w);
        counterpart[w] = clone;
        dst_bit.push_back(1);  // dst_bit[clone]
        ++split_count;
        if (stats != nullptr) ++stats->splits;
        push_from(clone, true);
      }
    }
  }

  // Last checkpoint before the commit phases (re-point + bit pass):
  // past this point the sweep runs to completion.
  if (guard != nullptr) {
    XCQ_RETURN_IF_ERROR(guard->Charge(0, split_count - charged_splits));
  }

  // Deferred re-point pass, skipped when nothing split: every edge to a
  // split vertex goes to the variant its own demand selects. Parallel
  // shards only fill buffers; the commit (which touches the edge arena
  // and dirty tracking) stays on the calling thread, in shard order.
  if (split_count > 0) {
    const size_t total = plan.order.size();
    const size_t clones = instance->vertex_count() - n0;
    struct Repoint {
      VertexId parent;
      uint32_t run;
      VertexId variant;
    };
    const size_t shards = SweepShardCount(total + clones, threads);
    ranges = parallel::SplitRange(total + clones, shards);
    std::vector<std::vector<Repoint>> repoints(ranges.size());
    const auto scan_range = [&](size_t s) {
      for (size_t i = ranges[s].first; i < ranges[s].second; ++i) {
        const VertexId v = i < total
                               ? plan.order[i]
                               : static_cast<VertexId>(n0 + (i - total));
        // Reachable parents of split vertices are always in the region
        // (split vertices sit in its base), so skipped vertices have no
        // edges to re-point.
        if (region != nullptr && i < total && !region->Test(v)) continue;
        const bool demands =
            src_bits.Test(v) || (inherit && dst_bit[v] != 0);
        const std::span<const Edge> children = instance->Children(v);
        for (uint32_t j = 0; j < children.size(); ++j) {
          const VertexId w = children[j].child;
          if (counterpart[w] == kNoVertex) continue;
          // A split child never has or-self·src(w) (that forces every
          // occurrence selected, i.e. no split), so the edge's variant
          // depends on the parent's demand alone.
          assert(!(or_self && src_bits.Test(w)));
          if (demands) {
            repoints[s].push_back(Repoint{v, j, counterpart[w]});
          }
        }
      }
    };
    if (ranges.size() == 1) {
      scan_range(0);
    } else {
      pool.Run(ranges.size(), scan_range);
    }
    for (const std::vector<Repoint>& batch : repoints) {
      for (const Repoint& r : batch) {
        instance->MutableChildren(r.parent)[r.run].child = r.variant;
      }
    }
  }

  // Skipped vertices keep their (zeroed) dst bit: the destination is a
  // zeroed column by the operator contract.
  for (const VertexId v : plan.order) {
    if (region != nullptr && !region->Test(v)) continue;
    instance->AssignBit(dst, v, dst_bit[v] != 0);
  }
  for (VertexId v = static_cast<VertexId>(n0);
       v < instance->vertex_count(); ++v) {
    instance->AssignBit(dst, v, dst_bit[v] != 0);
  }
  if (stats != nullptr) {
    stats->visited +=
        (region != nullptr ? region->Count() : plan.order.size()) +
        (instance->vertex_count() - n0);
  }
  return Status::OK();
}

}  // namespace

Status ApplyDownwardAxis(Instance* instance, Axis axis, RelationId src,
                         RelationId dst, AxisStats* stats,
                         size_t threads, const DynamicBitset* region,
                         EvalGuard* guard) {
  if (axis != Axis::kChild && axis != Axis::kDescendant &&
      axis != Axis::kDescendantOrSelf) {
    return Status::InvalidArgument("ApplyDownwardAxis: not a downward axis");
  }
  if (instance->root() == kNoVertex) {
    return Status::InvalidArgument("ApplyDownwardAxis: empty instance");
  }
  // A region selects the banded form at any thread count: band/phase
  // iteration admits region filtering without changing split order.
  if (region != nullptr ||
      (threads > 1 && instance->vertex_count() >= 2 * kSweepGrain)) {
    return ApplyDownwardAxisBanded(instance, axis, src, dst, stats,
                                   threads, region, guard);
  }
  return ApplyDownwardAxisSequential(instance, axis, src, dst, stats, guard);
}

}  // namespace xcq::engine
