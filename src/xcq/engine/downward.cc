#include "xcq/engine/axes.h"

namespace xcq::engine {

using xpath::Axis;

/// The paper's Fig. 4 procedure, de-recursed.
///
/// Invariants maintained (they carry the correctness argument):
///  * every vertex is *visited* at most once; visiting assigns its `dst`
///    bit and schedules a scan of its child runs;
///  * `aux[w]` links a vertex to its unique counterpart with the opposite
///    `dst` bit (and vice versa), so each vertex is copied at most once
///    and the instance at most doubles;
///  * a conflict (visited child whose bit differs from the required one)
///    can only involve a child whose own scan has finished, because in a
///    DFS over a DAG any repeated child of an ancestor frame is reached
///    again only after its subtree completed — hence clones always copy
///    final, rewritten child lists.
Status ApplyDownwardAxis(Instance* instance, Axis axis, RelationId src,
                         RelationId dst, AxisStats* stats) {
  if (axis != Axis::kChild && axis != Axis::kDescendant &&
      axis != Axis::kDescendantOrSelf) {
    return Status::InvalidArgument("ApplyDownwardAxis: not a downward axis");
  }
  if (instance->root() == kNoVertex) {
    return Status::InvalidArgument("ApplyDownwardAxis: empty instance");
  }
  const bool inherit = axis != Axis::kChild;          // descendant / d-o-s
  const bool or_self = axis == Axis::kDescendantOrSelf;

  std::vector<uint8_t> visited(instance->vertex_count(), 0);
  std::vector<VertexId> aux(instance->vertex_count(), kNoVertex);
  std::vector<std::pair<VertexId, uint32_t>> stack;  // (vertex, next run)

  const auto push_visit = [&](VertexId v, bool sv) {
    visited[v] = 1;
    instance->AssignBit(dst, v, sv);
    stack.emplace_back(v, 0);
    if (stats != nullptr) ++stats->visited;
  };

  const VertexId root = instance->root();
  push_visit(root, or_self && instance->Test(src, root));

  while (!stack.empty()) {
    const VertexId v = stack.back().first;
    const uint32_t i = stack.back().second;
    if (i >= instance->Children(v).size()) {
      stack.pop_back();
      continue;
    }
    stack.back().second = i + 1;

    const VertexId w = instance->Children(v)[i].child;
    // Fig. 4 line 4: the child's new selection. Identical for every
    // occurrence in the run — multiplicities are orthogonal here.
    const bool sv = instance->Test(dst, v);
    const bool sw = instance->Test(src, v) || (inherit && sv) ||
                    (or_self && instance->Test(src, w));

    if (!visited[w]) {
      push_visit(w, sw);
      continue;
    }
    if (instance->Test(dst, w) == sw) continue;

    // Conflict: the required bit differs. Reuse or create the counterpart.
    VertexId counterpart = aux[w];
    if (counterpart == kNoVertex) {
      counterpart = instance->CloneVertex(w);
      visited.push_back(0);
      aux.push_back(kNoVertex);
      aux[w] = counterpart;
      aux[counterpart] = w;
      if (stats != nullptr) ++stats->splits;
      if (inherit) {
        // Descendants of the copy must see the new inherited selection.
        push_visit(counterpart, sw);
      } else {
        visited[counterpart] = 1;
        instance->AssignBit(dst, counterpart, sw);
        if (stats != nullptr) ++stats->visited;
      }
    }
    instance->MutableChildren(v)[i].child = counterpart;
  }
  return Status::OK();
}

}  // namespace xcq::engine
