#ifndef XCQ_ENGINE_GUARD_H_
#define XCQ_ENGINE_GUARD_H_

/// \file guard.h
/// Per-evaluation cancellation and work-budget guard
/// (docs/INTERNALS.md §10).
///
/// One `EvalGuard` is shared by every sweep of one plan evaluation. The
/// kernels call `Charge(visits, splits)` at their structural
/// checkpoints — band boundaries, phase boundaries, stride-counted DFS
/// batches — never from inner hot loops, and only from the
/// coordinating thread, so the accumulators are plain integers. A
/// charge that pushes an accumulator past its cap converts a cost
/// blow-up (the paper's Sec. 5 worst case: a split cascade that
/// balloons the DAG) into a clean `kResourceExhausted`; the token poll
/// folded into the same call surfaces `kCancelled` /
/// `kDeadlineExceeded`. Checkpoints sit *between* mutation phases, so
/// an aborted sweep leaves the instance representing the same tree it
/// did before the sweep started (splits are tree-invariant; see
/// axes.h).

#include <cstdint>

#include "xcq/util/cancel.h"
#include "xcq/util/status.h"

namespace xcq::engine {

class EvalGuard {
 public:
  /// Any argument may be null/zero: a null token skips polling, a zero
  /// cap is unlimited. A default-constructed guard charges for free.
  explicit EvalGuard(const CancelToken* cancel = nullptr,
                     uint64_t max_visits = 0, uint64_t max_splits = 0)
      : cancel_(cancel), max_visits_(max_visits), max_splits_(max_splits) {}

  /// Accumulates sweep work and polls the token. Called between
  /// mutation phases only.
  Status Charge(uint64_t visits, uint64_t splits) {
    visits_ += visits;
    splits_ += splits;
    if (max_visits_ != 0 && visits_ > max_visits_) {
      return Status::ResourceExhausted(
          "sweep visit budget exhausted (max_sweep_visits)");
    }
    if (max_splits_ != 0 && splits_ > max_splits_) {
      return Status::ResourceExhausted(
          "split growth budget exhausted (max_split_growth)");
    }
    return Poll();
  }

  /// Token poll alone (no work to account — e.g. op boundaries).
  Status Poll() const {
    return cancel_ != nullptr ? cancel_->Check() : Status::OK();
  }

  uint64_t visits() const { return visits_; }
  uint64_t splits() const { return splits_; }

 private:
  const CancelToken* cancel_ = nullptr;
  uint64_t max_visits_ = 0;
  uint64_t max_splits_ = 0;
  uint64_t visits_ = 0;
  uint64_t splits_ = 0;
};

}  // namespace xcq::engine

#endif  // XCQ_ENGINE_GUARD_H_
