#ifndef XCQ_ENGINE_ENUMERATE_H_
#define XCQ_ENGINE_ENUMERATE_H_

/// \file enumerate.h
/// Decoding query results: enumerating the *tree* nodes a selection
/// represents, in document order, without full decompression.
///
/// The paper (Fig. 7, column 8): "The depth-first traversal required to
/// compute the latter is the same as the one required to 'decode' the
/// query result in order to 'translate' or 'apply' it to the
/// uncompressed tree-version of the instance." This implementation
/// improves on the plain traversal by pruning: a shared subtree that
/// contains no selected vertex is skipped in O(1), with its contribution
/// to preorder numbering obtained from precomputed subtree sizes — so
/// enumeration costs O(answer + boundary), not O(|T|).

#include <cstdint>
#include <functional>
#include <vector>

#include "xcq/instance/instance.h"
#include "xcq/util/result.h"

namespace xcq::engine {

/// \brief One selected tree node.
struct SelectedNode {
  /// Document-order (preorder) index in T(I); equals the node id the
  /// tree builder / baseline engine assigns to the same node.
  uint64_t preorder = 0;
  /// The instance vertex this tree node is an occurrence of.
  VertexId vertex = kNoVertex;
  /// The edge-path from the root (1-based child positions — the node's
  /// address in Π notation, Sec. 2.1).
  std::vector<uint64_t> edge_path;
};

struct EnumerateOptions {
  /// Stop after this many selected nodes (0 = unlimited). Enumeration is
  /// cheap per node, but selections can be astronomically large on
  /// highly compressed data.
  uint64_t limit = 0;
  /// Skip materializing `SelectedNode::edge_path` (the preorder index
  /// alone is enough for many consumers and avoids per-node allocation).
  bool with_paths = true;
};

/// \brief Invokes `fn(const SelectedNode&)` for every tree node whose
/// vertex is in relation `r`, in document order. Stops early once
/// `options.limit` nodes were emitted.
///
/// Fails with kInvalidArgument on an empty instance. On
/// doubly-exponentially compressed instances whose tree has more than
/// 2^64 nodes, enumeration succeeds as long as every *emitted* node lies
/// within the representable preorder prefix, and fails with
/// kResourceExhausted the moment a node beyond it would be emitted
/// (counting via `SelectedTreeNodeCount` saturates instead).
Status EnumerateSelection(
    const Instance& instance, RelationId r, const EnumerateOptions& options,
    const std::function<void(const SelectedNode&)>& fn);

/// \brief Convenience: collects up to `limit` selected nodes (0 = all).
Result<std::vector<SelectedNode>> CollectSelection(
    const Instance& instance, RelationId r, uint64_t limit = 0);

}  // namespace xcq::engine

#endif  // XCQ_ENGINE_ENUMERATE_H_
