#include "xcq/engine/axes.h"

#include <algorithm>

namespace xcq::engine {

using xpath::Axis;

namespace {

/// Variant resolution shared by both sibling directions. A "variant" of
/// vertex `w` is `w` itself or its clone, carrying a required `dst` bit.
/// Fresh vertices (first visit) adopt the requested bit; a conflicting
/// request returns the aux-linked counterpart, cloning it on first use.
///
/// Unlike the downward axes, a sibling selection does not propagate into
/// the subtree, but a clone may be taken from a vertex whose own child
/// list has not been rewritten yet; therefore clones are scheduled for
/// (idempotent) processing as well.
class VariantResolver {
 public:
  VariantResolver(Instance* instance, RelationId src, RelationId dst,
                  AxisStats* stats)
      : instance_(instance),
        src_(src),
        dst_(dst),
        stats_(stats),
        visited_(instance->vertex_count(), 0),
        aux_(instance->vertex_count(), kNoVertex) {}

  bool InSource(VertexId w) const { return instance_->Test(src_, w); }

  VertexId Resolve(VertexId w, bool bit) {
    if (!visited_[w]) {
      Adopt(w, bit);
      return w;
    }
    if (instance_->Test(dst_, w) == bit) return w;
    if (aux_[w] == kNoVertex) {
      const VertexId clone = instance_->CloneVertex(w);
      visited_.push_back(0);
      aux_.push_back(kNoVertex);
      aux_[w] = clone;
      aux_[clone] = w;
      if (stats_ != nullptr) ++stats_->splits;
      Adopt(clone, bit);
    }
    return aux_[w];
  }

  bool HasWork() const { return !work_.empty(); }
  VertexId PopWork() {
    const VertexId v = work_.back();
    work_.pop_back();
    return v;
  }

  void AdoptRoot(VertexId root) { Adopt(root, false); }

 private:
  void Adopt(VertexId v, bool bit) {
    visited_[v] = 1;
    instance_->AssignBit(dst_, v, bit);
    work_.push_back(v);
    if (stats_ != nullptr) ++stats_->visited;
  }

  Instance* instance_;
  RelationId src_;
  RelationId dst_;
  AxisStats* stats_;
  std::vector<uint8_t> visited_;
  std::vector<VertexId> aux_;
  std::vector<VertexId> work_;
};

}  // namespace

/// following-sibling: an occurrence is selected iff an earlier occurrence
/// in the same (expanded) child list is in `src`; preceding-sibling is
/// the mirror image. A run `(w, c)` with `w` in `src` straddles the
/// boundary — its first (resp. last) occurrence may differ from the rest,
/// splitting the run in two (this is the multiplicity subtlety the paper
/// mentions under Prop. 3.4).
Status ApplySiblingAxis(Instance* instance, Axis axis, RelationId src,
                        RelationId dst, AxisStats* stats) {
  if (axis != Axis::kFollowingSibling && axis != Axis::kPrecedingSibling) {
    return Status::InvalidArgument("ApplySiblingAxis: not a sibling axis");
  }
  if (instance->root() == kNoVertex) {
    return Status::InvalidArgument("ApplySiblingAxis: empty instance");
  }
  const bool forward = axis == Axis::kFollowingSibling;

  VariantResolver resolver(instance, src, dst, stats);
  resolver.AdoptRoot(instance->root());

  std::vector<Edge> rewritten;
  std::vector<Edge> original;
  while (resolver.HasWork()) {
    const VertexId v = resolver.PopWork();
    const std::span<const Edge> current = instance->Children(v);
    if (current.empty()) continue;
    original.assign(current.begin(), current.end());
    rewritten.clear();

    bool seen = false;  // a source occurrence before (after) the cursor
    const auto emit_run = [&](VertexId w, uint64_t count, bool boundary_bit,
                              bool bulk_bit) {
      // `boundary_bit` selects the occurrence adjacent to `seen` history
      // (first for forward, last for backward); the remaining `count - 1`
      // occurrences follow (precede) a same-vertex occurrence.
      if (count == 1 || boundary_bit == bulk_bit) {
        AppendEdgeRle(&rewritten, Edge{resolver.Resolve(w, boundary_bit),
                                       count});
        return;
      }
      // Forward lists are assembled left-to-right and want
      // [boundary, bulk]; backward lists are assembled right-to-left and
      // reversed, so appending [boundary, bulk] here also lands the
      // boundary occurrence last in document order. Same code either way.
      AppendEdgeRle(&rewritten, Edge{resolver.Resolve(w, boundary_bit), 1});
      AppendEdgeRle(&rewritten,
                    Edge{resolver.Resolve(w, bulk_bit), count - 1});
    };

    if (forward) {
      for (const Edge& run : original) {
        const bool in_src = resolver.InSource(run.child);
        emit_run(run.child, run.count, seen, seen || in_src);
        seen = seen || in_src;
      }
    } else {
      // Process right-to-left, then reverse the assembled list.
      for (size_t i = original.size(); i-- > 0;) {
        const Edge& run = original[i];
        const bool in_src = resolver.InSource(run.child);
        emit_run(run.child, run.count, seen, seen || in_src);
        seen = seen || in_src;
      }
      std::reverse(rewritten.begin(), rewritten.end());
      // Reversal may have put mergeable runs adjacent; re-canonicalize.
      std::vector<Edge> canonical;
      canonical.reserve(rewritten.size());
      for (const Edge& e : rewritten) AppendEdgeRle(&canonical, e);
      rewritten.swap(canonical);
    }
    instance->SetEdges(v, rewritten);
  }
  return Status::OK();
}

}  // namespace xcq::engine
