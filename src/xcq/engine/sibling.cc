#include <algorithm>
#include <atomic>
#include <cassert>
#include <vector>

#include "xcq/engine/axes.h"
#include "xcq/engine/sweep.h"
#include "xcq/parallel/task_pool.h"

namespace xcq::engine {

using xpath::Axis;

namespace {

/// Variant resolution shared by both sibling directions. A "variant" of
/// vertex `w` is `w` itself or its clone, carrying a required `dst` bit.
/// Fresh vertices (first visit) adopt the requested bit; a conflicting
/// request returns the aux-linked counterpart, cloning it on first use.
///
/// Unlike the downward axes, a sibling selection does not propagate into
/// the subtree, but a clone may be taken from a vertex whose own child
/// list has not been rewritten yet; therefore clones are scheduled for
/// (idempotent) processing as well.
class VariantResolver {
 public:
  VariantResolver(Instance* instance, RelationId src, RelationId dst,
                  AxisStats* stats)
      : instance_(instance),
        src_(src),
        dst_(dst),
        stats_(stats),
        visited_(instance->vertex_count(), 0),
        aux_(instance->vertex_count(), kNoVertex) {}

  bool InSource(VertexId w) const { return instance_->Test(src_, w); }

  VertexId Resolve(VertexId w, bool bit) {
    if (!visited_[w]) {
      Adopt(w, bit);
      return w;
    }
    if (instance_->Test(dst_, w) == bit) return w;
    if (aux_[w] == kNoVertex) {
      const VertexId clone = instance_->CloneVertex(w);
      visited_.push_back(0);
      aux_.push_back(kNoVertex);
      aux_[w] = clone;
      aux_[clone] = w;
      ++splits;
      if (stats_ != nullptr) ++stats_->splits;
      Adopt(clone, bit);
    }
    return aux_[w];
  }

  /// Clones made so far (guard accounting, independent of `stats_`).
  uint64_t splits = 0;

  bool HasWork() const { return !work_.empty(); }
  VertexId PopWork() {
    const VertexId v = work_.back();
    work_.pop_back();
    return v;
  }

  void AdoptRoot(VertexId root) { Adopt(root, false); }

 private:
  void Adopt(VertexId v, bool bit) {
    visited_[v] = 1;
    instance_->AssignBit(dst_, v, bit);
    work_.push_back(v);
    if (stats_ != nullptr) ++stats_->visited;
  }

  Instance* instance_;
  RelationId src_;
  RelationId dst_;
  AxisStats* stats_;
  std::vector<uint8_t> visited_;
  std::vector<VertexId> aux_;
  std::vector<VertexId> work_;
};

/// Walks one child list and reports the `dst` bit each emitted run
/// requires of its child — the shared core of both the sequential
/// rewrite and the parallel kernel's two passes. `emit(child, count,
/// bit)` receives the runs of the rewritten list in assembly order
/// (left-to-right for following-sibling, right-to-left for preceding).
template <typename Emit>
void WalkSiblingRuns(std::span<const Edge> runs, bool forward,
                     const DynamicBitset& src_bits, const Emit& emit) {
  bool seen = false;  // a source occurrence before (after) the cursor
  const auto emit_run = [&](VertexId w, uint64_t count, bool boundary_bit,
                            bool bulk_bit) {
    // `boundary_bit` selects the occurrence adjacent to `seen` history
    // (first for forward, last for backward); the remaining `count - 1`
    // occurrences follow (precede) a same-vertex occurrence.
    if (count == 1 || boundary_bit == bulk_bit) {
      emit(w, count, boundary_bit);
      return;
    }
    emit(w, 1, boundary_bit);
    emit(w, count - 1, bulk_bit);
  };
  if (forward) {
    for (const Edge& run : runs) {
      const bool in_src = src_bits.Test(run.child);
      emit_run(run.child, run.count, seen, seen || in_src);
      seen = seen || in_src;
    }
  } else {
    for (size_t i = runs.size(); i-- > 0;) {
      const Edge& run = runs[i];
      const bool in_src = src_bits.Test(run.child);
      emit_run(run.child, run.count, seen, seen || in_src);
      seen = seen || in_src;
    }
  }
}

/// Backward lists are assembled right-to-left: restore document order
/// and re-merge runs the reversal made adjacent. Shared by the
/// sequential kernel and the phased rewrite so the canonical form can
/// never diverge between the two.
void FinishBackwardList(std::vector<Edge>* rewritten) {
  std::reverse(rewritten->begin(), rewritten->end());
  std::vector<Edge> canonical;
  canonical.reserve(rewritten->size());
  for (const Edge& e : *rewritten) AppendEdgeRle(&canonical, e);
  rewritten->swap(canonical);
}

Status ApplySiblingAxisSequential(Instance* instance, Axis axis,
                                  RelationId src, RelationId dst,
                                  AxisStats* stats, EvalGuard* guard) {
  const bool forward = axis == Axis::kFollowingSibling;
  const DynamicBitset& src_bits = instance->RelationBits(src);

  VariantResolver resolver(instance, src, dst, stats);
  resolver.AdoptRoot(instance->root());

  // Guard checkpoint stride: each loop iteration commits one complete
  // rewritten child list (clones and their SetEdges land together), so
  // every iteration boundary is a safe abort point.
  constexpr uint64_t kGuardStride = 1024;
  uint64_t pops = 0;
  uint64_t charged_splits = 0;

  std::vector<Edge> rewritten;
  std::vector<Edge> original;
  while (resolver.HasWork()) {
    if (guard != nullptr && ++pops % kGuardStride == 0) {
      XCQ_RETURN_IF_ERROR(
          guard->Charge(kGuardStride, resolver.splits - charged_splits));
      charged_splits = resolver.splits;
    }
    const VertexId v = resolver.PopWork();
    const std::span<const Edge> current = instance->Children(v);
    if (current.empty()) continue;
    original.assign(current.begin(), current.end());
    rewritten.clear();

    WalkSiblingRuns(original, forward, src_bits,
                    [&](VertexId w, uint64_t count, bool bit) {
                      AppendEdgeRle(&rewritten,
                                    Edge{resolver.Resolve(w, bit), count});
                    });
    if (!forward) FinishBackwardList(&rewritten);
    instance->SetEdges(v, rewritten);
  }
  return Status::OK();
}

/// Parallel sibling rewrite (docs/PARALLELISM.md §2.3).
///
/// A sibling selection does not propagate into subtrees, so each child
/// list can be rewritten from `src` bits alone — the only coupling
/// between vertices is *which variants of each child exist*. Three
/// phases:
///  1. demand   (parallel): every reachable list is walked; the bit each
///     emitted run requires of its child is OR-ed into the child's
///     demand flags. Commutative, hence deterministic.
///  2. resolve  (sequential): vertices demanded with both bits split.
///     The original keeps the *lower* demanded bit, the clone the other
///     — a rule independent of discovery order.
///  3. rewrite  (parallel): lists are walked again, now mapping each
///     run to its child's variant, into per-shard buffers; the calling
///     thread commits them (SetEdges, relation bits) in plan order, so
///     the edge arena layout is identical for every thread count.
/// With a `region` (engine/prune.h) only region-owned child lists are
/// walked. The region covers every list containing a potential source
/// or receiver, so demand-1 flags and split decisions are exactly the
/// unpruned ones; children of skipped lists are never demanded with
/// bit 1, which makes those lists' rewrites equal-content no-ops — so
/// skipping them leaves the instance bit-identical.
Status ApplySiblingAxisPhased(Instance* instance, Axis axis,
                              RelationId src, RelationId dst,
                              AxisStats* stats, size_t threads,
                              const DynamicBitset* region,
                              EvalGuard* guard) {
  const bool forward = axis == Axis::kFollowingSibling;
  // Cache reference; safe across the mutations below for the same
  // reason as in downward.cc (no mid-sweep cache re-read).
  const SweepPlan& plan = BuildSweepPlan(*instance, /*need_heights=*/false);
  const size_t n0 = instance->vertex_count();
  const DynamicBitset& src_bits = instance->RelationBits(src);
  parallel::TaskPool& pool = parallel::SharedPool(threads);
  const size_t shards = SweepShardCount(plan.order.size(), threads);
  const auto ranges = parallel::SplitRange(plan.order.size(), shards);

  // Demand phase. Bit 0: some occurrence needs dst=0; bit 1: dst=1.
  std::vector<std::atomic<uint8_t>> demand(n0);
  pool.Run(ranges.size(), [&](size_t s) {
    for (size_t i = ranges[s].first; i < ranges[s].second; ++i) {
      if (region != nullptr && !region->Test(plan.order[i])) continue;
      WalkSiblingRuns(instance->Children(plan.order[i]), forward, src_bits,
                      [&](VertexId w, uint64_t, bool bit) {
                        demand[w].fetch_or(bit ? 2 : 1,
                                           std::memory_order_relaxed);
                      });
    }
  });
  demand[instance->root()].fetch_or(1, std::memory_order_relaxed);

  // Guard checkpoint between demand and resolve: nothing has mutated
  // yet (demand writes only the side flags), so an abort here leaves
  // the instance untouched.
  if (guard != nullptr) {
    XCQ_RETURN_IF_ERROR(guard->Charge(plan.order.size(), 0));
  }

  // Resolve phase: allocate clones in plan order (deterministic).
  std::vector<uint8_t> dst_bit(n0, 0);
  std::vector<VertexId> counterpart(n0, kNoVertex);
  for (const VertexId v : plan.order) {
    const uint8_t d = demand[v].load(std::memory_order_relaxed);
    dst_bit[v] = d == 2 ? 1 : 0;  // both demanded: original keeps 0
    if (d == 3) {
      counterpart[v] = instance->CloneVertex(v);
      if (stats != nullptr) ++stats->splits;
    }
  }

  // Guard checkpoint between resolve and rewrite: the clones allocated
  // above are unreachable until the commit phase re-points parents at
  // them, so an abort here leaves only clone leftovers. Past this
  // point the sweep runs to completion.
  if (guard != nullptr) {
    XCQ_RETURN_IF_ERROR(guard->Charge(0, instance->vertex_count() - n0));
  }

  // Rewrite phase: per-shard buffers, no Instance mutation.
  struct ShardLists {
    std::vector<Edge> edges;
    std::vector<uint32_t> lengths;  // one per vertex of the shard slice
  };
  std::vector<ShardLists> shard_lists(ranges.size());
  pool.Run(ranges.size(), [&](size_t s) {
    ShardLists& out = shard_lists[s];
    std::vector<Edge> rewritten;
    for (size_t i = ranges[s].first; i < ranges[s].second; ++i) {
      if (region != nullptr && !region->Test(plan.order[i])) continue;
      rewritten.clear();
      WalkSiblingRuns(
          instance->Children(plan.order[i]), forward, src_bits,
          [&](VertexId w, uint64_t count, bool bit) {
            const VertexId variant =
                dst_bit[w] == (bit ? 1 : 0) ? w : counterpart[w];
            assert(variant != kNoVertex);
            AppendEdgeRle(&rewritten, Edge{variant, count});
          });
      if (!forward) FinishBackwardList(&rewritten);
      out.lengths.push_back(static_cast<uint32_t>(rewritten.size()));
      out.edges.insert(out.edges.end(), rewritten.begin(),
                       rewritten.end());
    }
  });

  // Commit phase (sequential, plan order): rewritten lists — a clone
  // shares its original's list, differing only in the dst bit — then
  // the relation column.
  // Skipped lists need no commit: their rewrite is a no-op, and a
  // skipped vertex's clone (split as a *child* elsewhere) was born with
  // a copy of the identical list.
  for (size_t s = 0; s < ranges.size(); ++s) {
    const ShardLists& out = shard_lists[s];
    size_t offset = 0;
    size_t emitted = 0;
    for (size_t i = ranges[s].first; i < ranges[s].second; ++i) {
      const VertexId v = plan.order[i];
      if (region != nullptr && !region->Test(v)) continue;
      const uint32_t length = out.lengths[emitted++];
      const std::span<const Edge> list{out.edges.data() + offset, length};
      offset += length;
      instance->SetEdges(v, list);
      if (counterpart[v] != kNoVertex) {
        instance->SetEdges(counterpart[v], list);
      }
    }
  }
  for (const VertexId v : plan.order) {
    instance->AssignBit(dst, v, dst_bit[v] != 0);
    if (counterpart[v] != kNoVertex) {
      instance->AssignBit(dst, counterpart[v], true);
    }
  }
  if (stats != nullptr) {
    stats->visited +=
        (region != nullptr ? region->Count() : plan.order.size()) +
        (instance->vertex_count() - n0);
  }
  return Status::OK();
}

}  // namespace

/// following-sibling: an occurrence is selected iff an earlier occurrence
/// in the same (expanded) child list is in `src`; preceding-sibling is
/// the mirror image. A run `(w, c)` with `w` in `src` straddles the
/// boundary — its first (resp. last) occurrence may differ from the rest,
/// splitting the run in two (this is the multiplicity subtlety the paper
/// mentions under Prop. 3.4).
Status ApplySiblingAxis(Instance* instance, Axis axis, RelationId src,
                        RelationId dst, AxisStats* stats,
                        size_t threads, const DynamicBitset* region,
                        EvalGuard* guard) {
  if (axis != Axis::kFollowingSibling && axis != Axis::kPrecedingSibling) {
    return Status::InvalidArgument("ApplySiblingAxis: not a sibling axis");
  }
  if (instance->root() == kNoVertex) {
    return Status::InvalidArgument("ApplySiblingAxis: empty instance");
  }
  // A region selects the phased form at any thread count.
  if (region != nullptr ||
      (threads > 1 && instance->vertex_count() >= 2 * kSweepGrain)) {
    return ApplySiblingAxisPhased(instance, axis, src, dst, stats,
                                  threads, region, guard);
  }
  return ApplySiblingAxisSequential(instance, axis, src, dst, stats, guard);
}

}  // namespace xcq::engine
