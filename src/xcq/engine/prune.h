#ifndef XCQ_ENGINE_PRUNE_H_
#define XCQ_ENGINE_PRUNE_H_

/// \file prune.h
/// Path-summary sweep pruning (docs/INTERNALS.md §9).
///
/// The evaluator interprets each plan abstractly over the instance's
/// path summary (Instance::EnsurePathSummary): every op gets an
/// *admissible node set* — summary paths its selection can possibly
/// lie on — computed by the same transfer the concrete op applies,
/// intersected down the plan. Before a concrete axis sweep, the
/// admissible sets of its source and destination are turned into a
/// *vertex region*: the set of vertices the deterministic banded /
/// phased kernels must visit to produce an instance bit-identical to
/// the unpruned sweep (same bits, same splits in the same order, same
/// re-pointed edges). Everything outside the region is provably
/// untouched: its destination bits stay 0, it never splits, and its
/// edge lists are rewritten (if at all) to identical content, which
/// `Instance::SetEdges` already treats as a no-op.
///
/// The soundness invariant maintained by every evaluator column: if a
/// relation bit is set on vertex v, then *all* tree occurrences of v
/// are selected, so v's entire realized path set lies inside the op's
/// admissible set. Region construction closes the admissible sets
/// under trie-parents of the realized paths, which covers exactly the
/// demand-0 completions (fringe parents, sibling lists) the kernels
/// need for split parity; see INTERNALS.md §9 for the argument.

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "xcq/algebra/op.h"
#include "xcq/engine/evaluator.h"
#include "xcq/instance/instance.h"
#include "xcq/util/bitset.h"

namespace xcq::engine {

/// \brief Which kernel family a sweep belongs to (drives the region
/// closure: downward needs fringe parents, sibling needs list owners,
/// upward needs only the receivers).
enum class SweepKind { kUpward, kDownward, kSibling };

/// \brief Region family for `axis`. kSelf (a column copy, never swept)
/// maps to kUpward but is never gated; kFollowing/kPreceding are
/// composed of three staged sweeps, each gated separately.
SweepKind SweepKindFor(xpath::Axis axis);

/// \brief Verdict for one concrete sweep.
struct PruneGate {
  /// The sweep cannot select or split anything: skip it outright (the
  /// destination column stays all-zero, exactly the unpruned result).
  bool skip = false;
  /// Vertex region to restrict the kernel to; null = sweep everything
  /// (pruning unavailable). Borrowed from the issuing pruner and valid
  /// until its next Gate call.
  const DynamicBitset* region = nullptr;
  /// Number of vertices in `region` (0 when null or skipped).
  uint64_t region_vertices = 0;
};

/// \brief Region machinery over one bound summary: turns admissible
/// node sets into vertex regions. The binding tolerates mid-plan
/// splits (which only add clone vertices): bind-time realization
/// slices stay supersets for pre-existing vertices, and Realize admits
/// every post-bind vertex unconditionally. Callers re-Bind only when
/// the label schema changes or vertices are renumbered.
class SummaryRegions {
 public:
  /// Binds to `instance.EnsurePathSummary()` (building it if needed).
  /// Inactive when the summary is saturated or the instance is empty.
  void Bind(const Instance& instance);

  bool active() const { return active_; }
  const PathSummary& summary() const { return *summary_; }
  /// Instance vertex count at Bind time (0 while inactive).
  size_t bound_vertices() const { return bound_vertices_; }

  /// Computes the gate for one sweep from the admissible node sets of
  /// its source and destination (sized to the summary's node count).
  /// The returned region pointer is invalidated by the next Gate call.
  PruneGate Gate(SweepKind kind, const DynamicBitset& src_nodes,
                 const DynamicBitset& dst_nodes);

 private:
  /// Sets `region_` to the vertices realizing a node in `want` and
  /// returns their count.
  uint64_t Realize(const DynamicBitset& want);
  /// Collects into `collected_` every node realized by a vertex that
  /// realizes a node in `base` (the paths of the base region).
  void CollectRealized(const DynamicBitset& base);

  const Instance* instance_ = nullptr;
  const PathSummary* summary_ = nullptr;
  bool active_ = false;
  size_t bound_vertices_ = 0;  ///< vertex count at Bind time
  DynamicBitset base_;       ///< node-set scratch
  DynamicBitset collected_;  ///< node-set scratch
  DynamicBitset region_;     ///< vertex region handed out via PruneGate
};

/// \brief The admissible node sets of one compiled plan over one bound
/// summary — a pure function of (summary, plan, options), recomputed
/// wholesale after a summary rebuild (node ids renumber).
class PlanAbstract {
 public:
  void Compute(const Instance& instance, const PathSummary& summary,
               const algebra::QueryPlan& plan, const EvalOptions& options);

  /// Admissible set of op `i`'s selection.
  const DynamicBitset& OpSet(size_t i) const { return op_sets_[i]; }

  /// Stage outputs for composed kFollowing/kPreceding ops: stage 0 =
  /// ancestor-or-self, stage 1 = sibling, stage 2 = OpSet(i).
  const DynamicBitset& StageSet(size_t i, int stage) const;

 private:
  std::vector<DynamicBitset> op_sets_;
  /// {aos, sibling} outputs, present only for composed-axis ops.
  std::map<size_t, std::array<DynamicBitset, 2>> stage_sets_;
};

/// \brief Per-query pruner driven by the evaluator: keeps the summary
/// binding and the plan's abstract sets in sync and issues gates per
/// sweep. Mid-plan splits bump the structure generation but leave the
/// binding usable (clones realize subsets of existing paths and old
/// vertices never gain incoming edges), so the pruner rides out the
/// drift instead of rebuilding the summary per split; only a label
/// schema change or vertex renumbering forces a re-bind.
class PlanPruner {
 public:
  PlanPruner(Instance* instance, const algebra::QueryPlan* plan,
             const EvalOptions* options);

  /// Re-binds if the instance's summary went stale. Returns active().
  bool Sync();

  /// Pruning is available (summary built, not saturated).
  bool active() const { return regions_.active(); }

  /// Gate for the single sweep of a plain-axis op (Syncs first).
  PruneGate AxisGate(size_t op_index);

  /// Gate for stage 0/1/2 of a composed kFollowing/kPreceding op:
  /// ancestor-or-self, sibling, descendant-or-self (Syncs first).
  PruneGate StageGate(size_t op_index, int stage);

  /// Summary nodes at the current binding (0 while inactive).
  uint64_t summary_nodes() const {
    return regions_.active() ? regions_.summary().nodes.size() : 0;
  }

  /// Generation drifts absorbed (stale rides + forced re-binds).
  uint64_t resyncs() const { return resyncs_; }

 private:
  Instance* instance_;
  const algebra::QueryPlan* plan_;
  const EvalOptions* options_;
  SummaryRegions regions_;
  PlanAbstract abstract_;
  uint64_t bound_generation_ = 0;
  uint64_t bound_fingerprint_ = 0;
  bool bound_ = false;
  uint64_t resyncs_ = 0;
};

}  // namespace xcq::engine

#endif  // XCQ_ENGINE_PRUNE_H_
