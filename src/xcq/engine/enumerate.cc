#include "xcq/engine/enumerate.h"

#include <functional>
#include <limits>

#include "xcq/instance/stats.h"

namespace xcq::engine {

namespace {

constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();

}  // namespace

Status EnumerateSelection(
    const Instance& instance, RelationId r, const EnumerateOptions& options,
    const std::function<void(const SelectedNode&)>& fn) {
  if (instance.vertex_count() == 0 || instance.root() == kNoVertex) {
    return Status::InvalidArgument("EnumerateSelection: empty instance");
  }
  if (r >= instance.schema().size()) {
    return Status::InvalidArgument("EnumerateSelection: bad relation id");
  }

  // Per-vertex subtree size (tree nodes, saturating) and whether the
  // subtree contains any selected vertex.
  const size_t n = instance.vertex_count();
  std::vector<uint64_t> subtree_size(n, 0);
  std::vector<uint8_t> has_selected(n, 0);
  const DynamicBitset& selected = instance.RelationBits(r);
  for (VertexId v : instance.EnsureTraversal().order) {
    uint64_t total = 1;
    uint8_t any = selected.Test(v) ? 1 : 0;
    for (const Edge& e : instance.Children(v)) {
      total = SaturatingAdd(total,
                            SaturatingMul(e.count, subtree_size[e.child]));
      any |= has_selected[e.child];
    }
    subtree_size[v] = total;
    has_selected[v] = any;
  }
  if (!has_selected[instance.root()]) return Status::OK();

  struct Frame {
    VertexId vertex;
    uint32_t run_index = 0;
    uint64_t run_remaining = 0;
    uint64_t position = 0;  ///< Expanded child positions consumed so far.
  };
  std::vector<Frame> stack;
  std::vector<uint64_t> path;  // 1-based positions, parallel to depth
  uint64_t preorder = 0;
  uint64_t emitted = 0;
  // Skipping a doubly-exponentially large unselected subtree can push
  // the preorder counter past uint64; that only matters if a node is
  // *emitted* afterwards, so poison the counter instead of failing
  // eagerly.
  bool preorder_poisoned = false;
  Status emit_status = Status::OK();
  SelectedNode node;

  const auto visit = [&](VertexId v) -> bool {
    // Returns false once the emission limit is reached.
    const uint64_t my_preorder = preorder++;
    if (selected.Test(v)) {
      if (preorder_poisoned) {
        emit_status = Status::ResourceExhausted(
            "preorder indices exceed uint64 range");
        return false;
      }
      node.preorder = my_preorder;
      node.vertex = v;
      if (options.with_paths) {
        node.edge_path = path;
      } else {
        node.edge_path.clear();
      }
      fn(node);
      ++emitted;
      if (options.limit != 0 && emitted >= options.limit) return false;
    }
    stack.push_back(Frame{v});
    return true;
  };

  if (!visit(instance.root())) return emit_status;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const std::span<const Edge> runs = instance.Children(frame.vertex);
    if (frame.run_remaining == 0) {
      // Advance over runs, skipping entire unselected subtrees in O(1).
      bool advanced = false;
      while (frame.run_index < runs.size()) {
        const Edge& run = runs[frame.run_index];
        if (!has_selected[run.child]) {
          const uint64_t skipped =
              SaturatingMul(run.count, subtree_size[run.child]);
          if (skipped == kMax || preorder > kMax - skipped) {
            preorder_poisoned = true;
          } else {
            preorder += skipped;
          }
          frame.position += run.count;
          ++frame.run_index;
          continue;
        }
        frame.run_remaining = run.count;
        advanced = true;
        break;
      }
      if (!advanced) {
        stack.pop_back();
        if (!path.empty()) path.pop_back();
        continue;
      }
    }
    // Expand one occurrence of the current run.
    const VertexId child = runs[frame.run_index].child;
    --frame.run_remaining;
    if (frame.run_remaining == 0) ++frame.run_index;
    path.push_back(++frame.position);
    if (!visit(child)) return emit_status;
    // `visit` pushed the child frame; its path entry is popped when the
    // frame finishes.
  }
  return Status::OK();
}

Result<std::vector<SelectedNode>> CollectSelection(
    const Instance& instance, RelationId r, uint64_t limit) {
  std::vector<SelectedNode> out;
  EnumerateOptions options;
  options.limit = limit;
  XCQ_RETURN_IF_ERROR(EnumerateSelection(
      instance, r, options,
      [&out](const SelectedNode& node) { out.push_back(node); }));
  return out;
}

}  // namespace xcq::engine
