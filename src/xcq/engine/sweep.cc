#include "xcq/engine/sweep.h"

namespace xcq::engine {

SweepPlan BuildSweepPlan(const Instance& instance, bool need_heights) {
  SweepPlan plan;
  plan.order = instance.PostOrder();
  const size_t n = instance.vertex_count();

  if (need_heights) {
    plan.height.assign(n, SweepPlan::kNoHeight);
    uint32_t max_height = 0;
    for (const VertexId v : plan.order) {
      uint32_t h = 0;
      for (const Edge& e : instance.Children(v)) {
        // Children precede parents in post-order, so their height is
        // final; reachable vertices only reach reachable children.
        const uint32_t below = plan.height[e.child] + 1;
        if (below > h) h = below;
      }
      plan.height[v] = h;
      if (h > max_height) max_height = h;
    }
    plan.bands.resize(plan.order.empty() ? 0 : max_height + 1);
    for (const VertexId v : plan.order) {
      plan.bands[plan.height[v]].push_back(v);
    }
  }

  return plan;
}

}  // namespace xcq::engine
