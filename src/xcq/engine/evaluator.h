#ifndef XCQ_ENGINE_EVALUATOR_H_
#define XCQ_ENGINE_EVALUATOR_H_

/// \file evaluator.h
/// Query evaluation on compressed instances (Sec. 3.3).
///
/// The evaluator interprets a compiled `QueryPlan` op by op, adding each
/// intermediate node set as a (temporary) relation of the instance —
/// exactly the paper's evaluation mode: "we process one expression after
/// the other, always adding the resulting selection to the resulting
/// instance for future use (and possibly partial decompression)". Vertex
/// splits automatically keep every earlier selection consistent because
/// selections are relation columns and splits copy them.
///
/// Guarantees carried over from the paper:
///  * upward-only plans never change the DAG (Cor. 3.7),
///  * each splitting axis at most doubles vertices and edges, so a plan
///    with k splitting axes grows the instance at most 2^k-fold
///    (Thm. 3.6) — and never beyond |T(I)|.

#include <string>
#include <string_view>

#include "xcq/algebra/op.h"
#include "xcq/instance/instance.h"
#include "xcq/util/cancel.h"
#include "xcq/util/result.h"

namespace xcq::engine {

/// \brief Name of the relation holding the final query result.
inline constexpr std::string_view kResultRelation = "xcq:result";

struct EvalOptions {
  /// Relation holding the query context (the paper's user-defined initial
  /// selection); empty means {root}.
  std::string context_relation;
  /// Drop the temporary per-op selections after evaluation, keeping only
  /// the result (mirrors the paper's note that intermediate selections
  /// "can be removed from an instance").
  bool remove_temporaries = true;
  /// Lanes for the axis sweeps (docs/PARALLELISM.md). 1 = the sequential
  /// oracle; more lanes shard each sweep over the process-wide task
  /// pool. Answers are independent of the value.
  size_t threads = 1;
  /// Restrict axis sweeps to the vertices whose path-summary paths can
  /// contribute (docs/INTERNALS.md §9). Answers, splits, and the
  /// resulting instance are independent of the value; `false` is the
  /// full-sweep oracle.
  bool prune_sweeps = true;
  /// Cooperative cancellation (docs/INTERNALS.md §10). Polled between
  /// ops and between kernel mutation phases; a tripped token aborts the
  /// evaluation with `kCancelled` / `kDeadlineExceeded`, leaving the
  /// instance representing the same tree. Borrowed; may be null.
  const CancelToken* cancel = nullptr;
  /// Per-evaluation work budgets; 0 = unlimited. When the cumulative
  /// vertices visited (resp. vertices cloned) by this evaluation's
  /// sweeps exceeds the cap, the evaluation aborts with a clean
  /// `kResourceExhausted` at the next checkpoint.
  uint64_t max_sweep_visits = 0;
  uint64_t max_split_growth = 0;
};

/// \brief The three sweep-kernel families, the `axis=` label of the
/// engine's exported metrics (docs/OBSERVABILITY.md).
enum class AxisFamily : uint8_t {
  kDownward = 0,  ///< child / descendant / descendant-or-self.
  kUpward = 1,    ///< parent / ancestor / ancestor-or-self / self.
  kSibling = 2,   ///< following- / preceding-sibling.
};
inline constexpr size_t kAxisFamilyCount = 3;

/// Stable lower-case family name ("downward" / "upward" / "sibling").
constexpr std::string_view AxisFamilyName(AxisFamily family) {
  switch (family) {
    case AxisFamily::kDownward:
      return "downward";
    case AxisFamily::kUpward:
      return "upward";
    case AxisFamily::kSibling:
      return "sibling";
  }
  return "unknown";
}

/// \brief Per-family slice of the sweep counters: for per-query
/// evaluation the family entries sum to the aggregate EvalStats fields
/// of the same name (shared-batch evaluation reports its sweeps in the
/// aggregates only), and `seconds` is time inside the family's kernels
/// (excluded: plan bookkeeping, prune binding, column ops).
struct AxisFamilyStats {
  uint64_t sweeps = 0;        ///< Sweeps of this family (incl. closed forms).
  uint64_t visited = 0;       ///< Vertices the family's sweeps visited.
  uint64_t full = 0;          ///< Visits unpruned sweeps would make.
  uint64_t pruned = 0;        ///< Sweeps restricted to a summary region.
  uint64_t skipped = 0;       ///< Sweeps skipped outright (∅ region).
  double seconds = 0.0;       ///< Time inside the kernels.
};

struct EvalStats {
  uint64_t vertices_before = 0;
  uint64_t vertices_after = 0;   ///< Reachable vertices after the query.
  uint64_t edges_before = 0;     ///< RLE edges (reachable) before.
  uint64_t edges_after = 0;      ///< RLE edges (reachable) after.
  uint64_t splits = 0;           ///< Vertices cloned during evaluation.
  uint64_t sweep_visited = 0;    ///< Vertices visited by axis sweeps.
  uint64_t sweep_full = 0;       ///< Visits a full (unpruned) run makes.
  uint64_t pruned_sweeps = 0;    ///< Sweeps restricted to a region.
  uint64_t skipped_sweeps = 0;   ///< Sweeps skipped outright (∅ region).
  uint64_t summary_nodes = 0;    ///< Path-summary size used (0 = none).
  uint64_t summary_builds = 0;   ///< Summary (re)builds this evaluation.
  /// Per-family counter slices, indexed by AxisFamily; inline array so
  /// collecting stats still allocates nothing on the hot path.
  AxisFamilyStats axis[kAxisFamilyCount];
  double prune_bind_seconds = 0.0;  ///< PlanPruner binding time.
  double sweep_seconds = 0.0;       ///< Total time inside sweep kernels.
  double seconds = 0.0;
};

/// \brief Evaluates `plan` on `*instance` (mutating it: the result and —
/// if requested — intermediate selections are added; splitting axes may
/// partially decompress). Returns the id of the result relation
/// (`kResultRelation`).
Result<RelationId> Evaluate(Instance* instance,
                            const algebra::QueryPlan& plan,
                            const EvalOptions& options = {},
                            EvalStats* stats = nullptr);

/// \brief The column arithmetic of one non-axis op, shared by the
/// per-query evaluator and the shared-batch runner (engine/batch.cc) —
/// one implementation so the two paths cannot diverge. Writes `op`'s
/// selection into the zeroed column `dst`; `input0`/`input1` are the
/// resolved input columns of the plan (ignored by ops that take none).
/// Covers kRoot / kAllNodes / kUnion / kIntersect / kDifference /
/// kRootFilter; relation and context *resolution* (and kAxis) stay with
/// the caller. No-op for those kinds.
void ApplyColumnOp(Instance* instance, const algebra::Op& op,
                   RelationId input0, RelationId input1, RelationId dst);

}  // namespace xcq::engine

#endif  // XCQ_ENGINE_EVALUATOR_H_
