#include <vector>

#include "xcq/engine/axes.h"
#include "xcq/engine/sweep.h"
#include "xcq/parallel/task_pool.h"

namespace xcq::engine {

using xpath::Axis;

namespace {

/// Parallel kParent / kAncestor(-OrSelf) (docs/PARALLELISM.md §2.1).
///
/// Upward axes never split (Prop. 3.3) and only *read* the DAG, so the
/// parallel form is a leaf-first band sweep: all vertices of height h
/// are independent given finalized lower bands (kParent reads only
/// `src`, so it is even a single flat sweep — every band at once).
/// Each vertex's bit lands in its own byte of `up_bit`; the bits enter
/// the relation column in one sequential pass at the end, which also
/// keeps unreachable split leftovers silent, exactly like the
/// sequential loop over PostOrder().
/// With a `region` (engine/prune.h) only region vertices are decided.
/// The region is V(dst): a vertex outside it can neither be selected
/// nor (being unselected) influence an ancestor's decision, so skipped
/// children are read as up_bit = 0, which is their unpruned value.
Status ApplyUpwardAxisBanded(Instance* instance, Axis axis, RelationId src,
                             RelationId dst, AxisStats* stats,
                             size_t threads, const DynamicBitset* region,
                             EvalGuard* guard) {
  const bool ancestor =
      axis == Axis::kAncestor || axis == Axis::kAncestorOrSelf;
  const SweepPlan& plan =
      BuildSweepPlan(*instance, /*need_heights=*/ancestor);
  const DynamicBitset& src_bits = instance->RelationBits(src);
  std::vector<uint8_t> up_bit(instance->vertex_count(), 0);
  parallel::TaskPool& pool = parallel::SharedPool(threads);

  const auto sweep_slice = [&](const std::vector<VertexId>& vertices,
                               size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const VertexId v = vertices[i];
      if (region != nullptr && !region->Test(v)) continue;
      for (const Edge& e : instance->Children(v)) {
        if (src_bits.Test(e.child) ||
            (ancestor && up_bit[e.child] != 0)) {
          up_bit[v] = 1;
          break;
        }
      }
    }
  };

  if (!ancestor) {
    // kParent: no cross-vertex dependency at all. Upward sweeps never
    // mutate, so a single guard charge up front suffices — an abort
    // here costs at most one flat pass of overshoot.
    if (guard != nullptr) {
      XCQ_RETURN_IF_ERROR(guard->Charge(plan.order.size(), 0));
    }
    const size_t shards = SweepShardCount(plan.order.size(), threads);
    const auto ranges = parallel::SplitRange(plan.order.size(), shards);
    pool.Run(ranges.size(), [&](size_t s) {
      sweep_slice(plan.order, ranges[s].first, ranges[s].second);
    });
  } else {
    // kAncestor: leaf-first bands; a band only reads bits of strictly
    // lower bands, finalized before the previous barrier. Read-only,
    // so the between-band checkpoint may abort anywhere.
    for (const std::vector<VertexId>& band : plan.bands) {
      if (band.empty()) continue;
      if (guard != nullptr) {
        XCQ_RETURN_IF_ERROR(guard->Charge(band.size(), 0));
      }
      const size_t shards = SweepShardCount(band.size(), threads);
      if (shards == 1) {
        sweep_slice(band, 0, band.size());
        continue;
      }
      const auto ranges = parallel::SplitRange(band.size(), shards);
      pool.Run(ranges.size(), [&](size_t s) {
        sweep_slice(band, ranges[s].first, ranges[s].second);
      });
    }
  }

  for (const VertexId v : plan.order) {
    if (up_bit[v] != 0) instance->SetBit(dst, v);
  }
  if (axis == Axis::kAncestorOrSelf) {
    instance->MutableRelationBits(dst) |= src_bits;
  }
  if (stats != nullptr) {
    stats->visited +=
        region != nullptr ? region->Count() : plan.order.size();
  }
  return Status::OK();
}

}  // namespace

/// Upward axes never split (Prop. 3.3): whether some tree node below a
/// shared vertex is selected is a property of the vertex itself (the
/// whole point of bisimulation-based sharing is that the subtree below a
/// vertex is the same for all of its occurrences), so one bottom-up pass
/// suffices.
Status ApplyUpwardAxis(Instance* instance, Axis axis, RelationId src,
                       RelationId dst, AxisStats* stats, size_t threads,
                       const DynamicBitset* region, EvalGuard* guard) {
  if (!xpath::IsUpwardAxis(axis)) {
    return Status::InvalidArgument("ApplyUpwardAxis: not an upward axis");
  }
  if (instance->root() == kNoVertex) {
    return Status::InvalidArgument("ApplyUpwardAxis: empty instance");
  }

  // A region selects the banded form at any thread count (kSelf is a
  // plain column copy and is never gated).
  if (axis != Axis::kSelf &&
      (region != nullptr ||
       (threads > 1 && instance->vertex_count() >= 2 * kSweepGrain))) {
    return ApplyUpwardAxisBanded(instance, axis, src, dst, stats, threads,
                                 region, guard);
  }

  // Sequential upward sweeps only read the DAG and set bits of the
  // zeroed dst column, so any stride boundary is a safe abort point.
  constexpr uint64_t kGuardStride = 4096;
  uint64_t since_charge = 0;
  const auto charge_stride = [&]() -> Status {
    if (guard != nullptr && ++since_charge % kGuardStride == 0) {
      return guard->Charge(kGuardStride, 0);
    }
    return Status::OK();
  };

  switch (axis) {
    case Axis::kSelf: {
      instance->MutableRelationBits(dst) = instance->RelationBits(src);
      return Status::OK();
    }
    case Axis::kParent: {
      // v is a parent of a selected node iff one of its children is
      // selected; reachability restriction keeps split leftovers silent.
      // Upward axes never mutate, so the cached order is read directly.
      for (VertexId v : instance->EnsureTraversal().order) {
        XCQ_RETURN_IF_ERROR(charge_stride());
        for (const Edge& e : instance->Children(v)) {
          if (instance->Test(src, e.child)) {
            instance->SetBit(dst, v);
            break;
          }
        }
      }
      if (stats != nullptr) {
        stats->visited += instance->EnsureTraversal().order.size();
      }
      return Status::OK();
    }
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      // Children-first: dst[child] is final before any parent reads it.
      for (VertexId v : instance->EnsureTraversal().order) {
        XCQ_RETURN_IF_ERROR(charge_stride());
        for (const Edge& e : instance->Children(v)) {
          if (instance->Test(src, e.child) ||
              instance->Test(dst, e.child)) {
            instance->SetBit(dst, v);
            break;
          }
        }
      }
      if (axis == Axis::kAncestorOrSelf) {
        instance->MutableRelationBits(dst) |= instance->RelationBits(src);
      }
      if (stats != nullptr) {
        stats->visited += instance->EnsureTraversal().order.size();
      }
      return Status::OK();
    }
    default:
      return Status::Internal("unhandled upward axis");
  }
}

}  // namespace xcq::engine
