#include "xcq/engine/axes.h"

namespace xcq::engine {

using xpath::Axis;

/// Upward axes never split (Prop. 3.3): whether some tree node below a
/// shared vertex is selected is a property of the vertex itself (the
/// whole point of bisimulation-based sharing is that the subtree below a
/// vertex is the same for all of its occurrences), so one bottom-up pass
/// suffices.
Status ApplyUpwardAxis(Instance* instance, Axis axis, RelationId src,
                       RelationId dst) {
  if (!xpath::IsUpwardAxis(axis)) {
    return Status::InvalidArgument("ApplyUpwardAxis: not an upward axis");
  }
  if (instance->root() == kNoVertex) {
    return Status::InvalidArgument("ApplyUpwardAxis: empty instance");
  }

  switch (axis) {
    case Axis::kSelf: {
      instance->MutableRelationBits(dst) = instance->RelationBits(src);
      return Status::OK();
    }
    case Axis::kParent: {
      // v is a parent of a selected node iff one of its children is
      // selected; reachability restriction keeps split leftovers silent.
      for (VertexId v : instance->PostOrder()) {
        for (const Edge& e : instance->Children(v)) {
          if (instance->Test(src, e.child)) {
            instance->SetBit(dst, v);
            break;
          }
        }
      }
      return Status::OK();
    }
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      // Children-first: dst[child] is final before any parent reads it.
      for (VertexId v : instance->PostOrder()) {
        for (const Edge& e : instance->Children(v)) {
          if (instance->Test(src, e.child) ||
              instance->Test(dst, e.child)) {
            instance->SetBit(dst, v);
            break;
          }
        }
      }
      if (axis == Axis::kAncestorOrSelf) {
        instance->MutableRelationBits(dst) |= instance->RelationBits(src);
      }
      return Status::OK();
    }
    default:
      return Status::Internal("unhandled upward axis");
  }
}

}  // namespace xcq::engine
