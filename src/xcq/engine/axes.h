#ifndef XCQ_ENGINE_AXES_H_
#define XCQ_ENGINE_AXES_H_

/// \file axes.h
/// The per-axis operators on compressed instances (Sec. 3.2).
///
/// Each operator reads a source selection `src` and fills a destination
/// selection `dst` (an existing, zeroed relation of the instance).
/// Upward axes and set operations never change the DAG (Prop. 3.3);
/// downward and sibling axes may split vertices (partial decompression),
/// at most doubling the instance (Prop. 3.2 / Thm. 3.6). `following` and
/// `preceding` are compositions (Sec. 3.2) handled by the evaluator.

#include "xcq/engine/guard.h"
#include "xcq/instance/instance.h"
#include "xcq/util/result.h"
#include "xcq/xpath/ast.h"

namespace xcq::engine {

/// \brief Counters exposed to the experiment harnesses.
struct AxisStats {
  uint64_t visited = 0;  ///< Vertices visited by the traversal.
  uint64_t splits = 0;   ///< Vertices cloned (partial decompression).
};

/// Each operator takes a `threads` hint: with `threads > 1` (and an
/// instance large enough to amortize the barriers) the sweep runs on
/// the shared `xcq::parallel` pool, partitioned into height-band /
/// subtree shards. `threads = 1` is the sequential oracle. Parallel
/// sweeps select exactly the same tree nodes and perform the same
/// splits as the sequential kernels; only the id↔variant association
/// after a split may differ (isomorphic DAGs, identical once
/// re-minimized). See docs/PARALLELISM.md.
///
/// An optional `region` (from engine/prune.h) restricts the sweep to
/// the vertices whose summary paths can contribute: downward/upward
/// kernels only decide vertices inside the region, the sibling kernel
/// only walks the child lists of region vertices. A non-null region
/// selects the deterministic banded/phased form at any thread count
/// (those forms admit region filtering without changing split order);
/// the caller guarantees the region is closed per docs/INTERNALS.md §9,
/// which makes the pruned sweep bit-identical to the unpruned one.
///
/// An optional `guard` (engine/guard.h) is charged with the sweep's
/// visit/split counts at band, phase, and stride boundaries — never
/// inside the inner loops — and aborts the sweep with the guard's
/// status (`kCancelled` / `kDeadlineExceeded` / `kResourceExhausted`).
/// Every abort point sits between mutation phases, so an aborted sweep
/// leaves the instance structurally consistent and representing the
/// same tree (at worst with unreachable clone leftovers, exactly like
/// the shared-batch optimistic abort).

/// \brief child / descendant / descendant-or-self — the Fig. 4 algorithm,
/// implemented iteratively (sequential) or as a root-first height-band
/// sweep (parallel).
Status ApplyDownwardAxis(Instance* instance, xpath::Axis axis,
                         RelationId src, RelationId dst,
                         AxisStats* stats = nullptr, size_t threads = 1,
                         const DynamicBitset* region = nullptr,
                         EvalGuard* guard = nullptr);

/// \brief self / parent / ancestor / ancestor-or-self — single bottom-up
/// pass (leaf-first bands in parallel), never splits.
Status ApplyUpwardAxis(Instance* instance, xpath::Axis axis, RelationId src,
                       RelationId dst, AxisStats* stats = nullptr,
                       size_t threads = 1,
                       const DynamicBitset* region = nullptr,
                       EvalGuard* guard = nullptr);

/// \brief following-sibling / preceding-sibling — one pass over child
/// lists, multiplicity-aware run splitting (demand/resolve/rewrite
/// phases in parallel).
Status ApplySiblingAxis(Instance* instance, xpath::Axis axis,
                        RelationId src, RelationId dst,
                        AxisStats* stats = nullptr, size_t threads = 1,
                        const DynamicBitset* region = nullptr,
                        EvalGuard* guard = nullptr);

}  // namespace xcq::engine

#endif  // XCQ_ENGINE_AXES_H_
