#ifndef XCQ_ENGINE_AXES_H_
#define XCQ_ENGINE_AXES_H_

/// \file axes.h
/// The per-axis operators on compressed instances (Sec. 3.2).
///
/// Each operator reads a source selection `src` and fills a destination
/// selection `dst` (an existing, zeroed relation of the instance).
/// Upward axes and set operations never change the DAG (Prop. 3.3);
/// downward and sibling axes may split vertices (partial decompression),
/// at most doubling the instance (Prop. 3.2 / Thm. 3.6). `following` and
/// `preceding` are compositions (Sec. 3.2) handled by the evaluator.

#include "xcq/instance/instance.h"
#include "xcq/util/result.h"
#include "xcq/xpath/ast.h"

namespace xcq::engine {

/// \brief Counters exposed to the experiment harnesses.
struct AxisStats {
  uint64_t visited = 0;  ///< Vertices visited by the traversal.
  uint64_t splits = 0;   ///< Vertices cloned (partial decompression).
};

/// \brief child / descendant / descendant-or-self — the Fig. 4 algorithm,
/// implemented iteratively.
Status ApplyDownwardAxis(Instance* instance, xpath::Axis axis,
                         RelationId src, RelationId dst,
                         AxisStats* stats = nullptr);

/// \brief self / parent / ancestor / ancestor-or-self — single bottom-up
/// pass, never splits.
Status ApplyUpwardAxis(Instance* instance, xpath::Axis axis, RelationId src,
                       RelationId dst);

/// \brief following-sibling / preceding-sibling — one pass over child
/// lists, multiplicity-aware run splitting.
Status ApplySiblingAxis(Instance* instance, xpath::Axis axis,
                        RelationId src, RelationId dst,
                        AxisStats* stats = nullptr);

}  // namespace xcq::engine

#endif  // XCQ_ENGINE_AXES_H_
