#ifndef XCQ_PARALLEL_TASK_POOL_H_
#define XCQ_PARALLEL_TASK_POOL_H_

/// \file task_pool.h
/// Work partitioning for intra-instance parallelism (axis sweeps,
/// sharded compression). See docs/PARALLELISM.md.
///
/// The design constraint everything here serves is *determinism*: a
/// computation run over N lanes must produce output bit-identical to
/// the same computation run on 1 lane, no matter how the OS schedules
/// the lanes. The pool therefore only offers *structured* parallelism —
/// `Run` hands out shard indices and blocks until every shard has
/// finished (a full barrier with acquire/release semantics), and
/// callers are expected to
///  * give each shard an exclusive slice of any output it writes, and
///  * merge per-shard results on the calling thread, in shard order.
/// Commutative accumulation (bit-OR into per-vertex flags) is the only
/// sanctioned cross-shard write, because its result is order-free.
///
/// `Run` is also *opportunistic*: if the pool's workers are already
/// busy with another caller's job (e.g. two server workers evaluating
/// queries on different documents at once), the caller simply executes
/// every shard inline instead of queueing. Parallelism is a speed
/// multiplier, never a correctness or liveness dependency.

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace xcq::parallel {

/// \brief Fixed set of worker threads executing sharded jobs.
///
/// A pool with `lanes` lanes uses `lanes - 1` worker threads plus the
/// calling thread; a pool with 0 or 1 lanes has no workers and `Run`
/// degenerates to a sequential loop.
class TaskPool {
 public:
  explicit TaskPool(size_t lanes);

  /// Joins the workers (after finishing any in-flight job).
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Total lanes (worker threads + the calling thread).
  size_t lanes() const { return worker_count_ + 1; }

  /// Executes `fn(shard)` for every shard in [0, shards), distributing
  /// shards over the lanes, and returns only when all calls finished
  /// (a barrier: writes made by any shard happen-before the return).
  ///
  /// At most one job runs at a time; if another thread's job occupies
  /// the pool, the caller runs all shards inline — same results, no
  /// waiting. `fn` must not call Run on the same pool (inline-recursion
  /// is detected and sequentialized, but don't rely on it for design).
  void Run(size_t shards, const std::function<void(size_t)>& fn);

 private:
  struct Impl;
  Impl* impl_;
  size_t worker_count_ = 0;
};

/// \brief Sanity cap applied to requested lane counts: 4x the hardware
/// concurrency (oversubscription beyond that is already past any
/// speedup). Both `SharedPool` and work *partitioners* (e.g. the
/// compression shard slicer) clamp through this, so a wild
/// `--engine-threads` can neither spawn hundreds of threads nor split
/// a document into millions of shards.
size_t ClampLanes(size_t lanes);

/// \brief Process-wide pool shared by all components, grown on demand.
///
/// Returns a pool with at least `lanes` lanes (capped at a small
/// multiple of the hardware concurrency to bound thread count when many
/// sessions ask at once). Thread-safe; the pool lives until process
/// exit. `lanes <= 1` still returns a (possibly worker-less) pool.
TaskPool& SharedPool(size_t lanes);

/// \brief Splits [0, n) into at most `max_shards` contiguous ranges of
/// near-equal size, each aligned so that `begin % align == 0` (except
/// possibly the first) — used to give shards exclusive bitset words.
/// Returns fewer ranges when n is small; never returns an empty range.
std::vector<std::pair<size_t, size_t>> SplitRange(size_t n,
                                                  size_t max_shards,
                                                  size_t align = 1);

}  // namespace xcq::parallel

#endif  // XCQ_PARALLEL_TASK_POOL_H_
