#include "xcq/parallel/task_pool.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

namespace xcq::parallel {

namespace {

/// One published job. Each job owns its shard cursor and completion
/// count, so a worker that wakes late (or loops once more after the
/// job drained) only ever touches *its* job's counters — it can never
/// claim shards of a successor job with a stale function pointer.
struct Job {
  const std::function<void(size_t)>* fn = nullptr;
  size_t shards = 0;
  std::atomic<size_t> next{0};
  std::atomic<size_t> remaining{0};
};

}  // namespace

/// Worker protocol: jobs are published as shared_ptr<Job> under `mu_`;
/// workers copy the pointer, then pull shard indices from the job's
/// atomic cursor until exhausted. The lane that retires the last shard
/// signals `done_cv_` under `mu_`, which gives Run its barrier: every
/// shard's writes happen-before Run returns.
struct TaskPool::Impl {
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;

  std::shared_ptr<Job> job_;  // guarded by mu_
  uint64_t generation_ = 0;   // guarded by mu_
  bool stop_ = false;         // guarded by mu_

  // Serializes jobs: only one Run owns the workers at a time. Taken
  // with try_lock — a busy pool makes the caller go inline.
  std::mutex job_mu_;

  std::vector<std::thread> workers_;

  void WorkerLoop() {
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      const std::shared_ptr<Job> job = job_;
      lock.unlock();
      Drain(*job);
      lock.lock();
    }
  }

  void Drain(Job& job) {
    while (true) {
      const size_t shard = job.next.fetch_add(1, std::memory_order_relaxed);
      if (shard >= job.shards) return;
      (*job.fn)(shard);
      if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last shard retired: wake the caller. Lock so the notify
        // cannot race past the caller's wait predicate check.
        std::lock_guard<std::mutex> lock(mu_);
        done_cv_.notify_all();
      }
    }
  }
};

TaskPool::TaskPool(size_t lanes) : impl_(new Impl) {
  worker_count_ = lanes > 1 ? lanes - 1 : 0;
  impl_->workers_.reserve(worker_count_);
  for (size_t i = 0; i < worker_count_; ++i) {
    impl_->workers_.emplace_back([impl = impl_] { impl->WorkerLoop(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu_);
    impl_->stop_ = true;
  }
  impl_->work_cv_.notify_all();
  for (std::thread& worker : impl_->workers_) worker.join();
  delete impl_;
}

void TaskPool::Run(size_t shards, const std::function<void(size_t)>& fn) {
  if (shards == 0) return;
  if (worker_count_ == 0 || shards == 1 || !impl_->job_mu_.try_lock()) {
    // No workers, nothing to split, or the pool is busy (another
    // caller's job, or a re-entrant Run from inside a shard): execute
    // inline. Shard functions are deterministic by contract, so the
    // result is identical either way.
    for (size_t shard = 0; shard < shards; ++shard) fn(shard);
    return;
  }
  std::unique_lock<std::mutex> job_lock(impl_->job_mu_, std::adopt_lock);
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->shards = shards;
  job->remaining.store(shards, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(impl_->mu_);
    impl_->job_ = job;
    ++impl_->generation_;
  }
  impl_->work_cv_.notify_all();
  impl_->Drain(*job);
  std::unique_lock<std::mutex> lock(impl_->mu_);
  impl_->done_cv_.wait(lock, [&] {
    return job->remaining.load(std::memory_order_acquire) == 0;
  });
}

size_t ClampLanes(size_t lanes) {
  const size_t hardware = std::thread::hardware_concurrency();
  const size_t cap = 4 * (hardware == 0 ? 8 : hardware);
  return lanes < 1 ? 1 : (lanes > cap ? cap : lanes);
}

TaskPool& SharedPool(size_t lanes) {
  // Grown to the high-water mark; subsequent callers share the largest
  // pool. Outgrown pools are retained (their references may still be in
  // use by concurrent Run calls) — growth happens a handful of times
  // per process, so the retired-thread cost is bounded and tiny. The
  // ClampLanes cap keeps a misconfigured --engine-threads from
  // spawning hundreds of threads.
  static std::mutex mu;
  static std::vector<std::unique_ptr<TaskPool>>& pools =
      *new std::vector<std::unique_ptr<TaskPool>>();
  const size_t want = ClampLanes(lanes);
  std::lock_guard<std::mutex> lock(mu);
  if (pools.empty() || pools.back()->lanes() < want) {
    pools.push_back(std::make_unique<TaskPool>(want));
  }
  return *pools.back();
}

std::vector<std::pair<size_t, size_t>> SplitRange(size_t n,
                                                  size_t max_shards,
                                                  size_t align) {
  std::vector<std::pair<size_t, size_t>> ranges;
  if (n == 0) return ranges;
  if (max_shards < 1) max_shards = 1;
  if (align < 1) align = 1;
  const size_t target = (n + max_shards - 1) / max_shards;
  size_t begin = 0;
  while (begin < n) {
    size_t end = begin + target;
    // Round the cut up to an alignment boundary so no two shards share
    // an aligned block (e.g. a 64-bit bitset word).
    end = ((end + align - 1) / align) * align;
    if (end > n) end = n;
    ranges.emplace_back(begin, end);
    begin = end;
  }
  return ranges;
}

}  // namespace xcq::parallel
