// Serialization coverage for instance_io: corruption handling (every
// kind of malformed input must come back as kCorruption, never a crash
// or a quietly-wrong instance) and a full serialize → deserialize →
// query round-trip on a multi-label instance.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "test_util.h"
#include "xcq/api.h"

namespace xcq {
namespace {

/// Varint encoder mirroring the writer's, for hand-crafting streams.
void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), 4);
}

/// Header for a hand-crafted instance stream: magic, version, counts,
/// no relations.
std::string Header(uint64_t vertex_count, uint64_t root_plus1) {
  std::string out("XCQI");
  PutU32(&out, 1);
  PutVarint(&out, vertex_count);
  PutVarint(&out, root_plus1);
  PutVarint(&out, 0);  // relation count
  return out;
}

Instance CompressedBib() {
  CompressOptions copts;
  copts.mode = LabelMode::kSchema;
  copts.tags = {"paper", "author", "title", "book"};
  copts.patterns = {"Vianu", "Codd"};
  auto instance = CompressXml(testing::BibExampleXml(), copts);
  EXPECT_TRUE(instance.ok()) << instance.status();
  return std::move(instance).Value();
}

TEST(InstanceIoTest, RoundTripPreservesStructureAndLabels) {
  const Instance original = CompressedBib();
  const std::string bytes = SerializeInstance(original);

  XCQ_ASSERT_OK_AND_ASSIGN(const Instance reloaded,
                           DeserializeInstance(bytes));
  XCQ_ASSERT_OK(reloaded.Validate());
  EXPECT_EQ(reloaded.vertex_count(), original.vertex_count());
  EXPECT_EQ(reloaded.rle_edge_count(), original.rle_edge_count());
  EXPECT_EQ(reloaded.root(), original.root());
  EXPECT_EQ(TreeNodeCount(reloaded), TreeNodeCount(original));
  EXPECT_EQ(reloaded.schema().LiveNames(), original.schema().LiveNames());
  for (const RelationId r : original.LiveRelations()) {
    const RelationId r2 =
        reloaded.FindRelation(original.schema().Name(r));
    ASSERT_NE(r2, kNoRelation);
    EXPECT_EQ(reloaded.RelationBits(r2).Count(),
              original.RelationBits(r).Count());
  }
}

TEST(InstanceIoTest, RoundTripAnswersQueriesIdentically) {
  // The acceptance path of the server: reload a multi-label instance and
  // query it with no document behind it.
  const std::string queries[] = {
      "//paper/author",
      "//book[author[\"Vianu\"]]",
      "//paper[author[\"Codd\"]]/title",
  };

  XCQ_ASSERT_OK_AND_ASSIGN(
      QuerySession reference,
      QuerySession::Open(testing::BibExampleXml()));
  XCQ_ASSERT_OK_AND_ASSIGN(
      const Instance reloaded,
      DeserializeInstance(SerializeInstance(CompressedBib())));
  XCQ_ASSERT_OK_AND_ASSIGN(QuerySession loaded,
                           QuerySession::FromInstance(reloaded));
  EXPECT_FALSE(loaded.has_source());

  for (const std::string& query : queries) {
    SCOPED_TRACE(query);
    XCQ_ASSERT_OK_AND_ASSIGN(const QueryOutcome want,
                             reference.Run(query));
    XCQ_ASSERT_OK_AND_ASSIGN(const QueryOutcome got, loaded.Run(query));
    EXPECT_EQ(got.selected_tree_nodes, want.selected_tree_nodes);
  }
  EXPECT_EQ(loaded.source_parse_count(), 0u);
}

TEST(InstanceIoTest, FromInstanceMissingLabelIsNotFoundNotReparse) {
  XCQ_ASSERT_OK_AND_ASSIGN(
      QuerySession loaded,
      QuerySession::FromInstance(
          DeserializeInstance(SerializeInstance(CompressedBib())).Value()));
  // "year" was never compressed in; with no source text the session must
  // refuse rather than silently answer from an absent relation.
  const Status status = loaded.Run("//paper[year]").status();
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_NE(status.message().find("year"), std::string::npos);
  EXPECT_EQ(loaded.source_parse_count(), 0u);
}

TEST(InstanceIoTest, TruncatedAtEveryPrefixIsCorruption) {
  const std::string bytes = SerializeInstance(CompressedBib());
  ASSERT_GT(bytes.size(), 8u);
  for (size_t len = 0; len < bytes.size(); ++len) {
    const auto truncated = DeserializeInstance(
        std::string_view(bytes).substr(0, len));
    ASSERT_FALSE(truncated.ok()) << "prefix of length " << len;
    EXPECT_EQ(truncated.status().code(), StatusCode::kCorruption)
        << "prefix of length " << len;
  }
}

TEST(InstanceIoTest, BadMagicIsCorruption) {
  std::string bytes = SerializeInstance(CompressedBib());
  bytes[0] = 'Y';
  const auto result = DeserializeInstance(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  EXPECT_NE(result.status().message().find("magic"), std::string::npos);
}

TEST(InstanceIoTest, UnsupportedVersionIsCorruption) {
  std::string bytes = SerializeInstance(CompressedBib());
  bytes[4] = 99;  // version lives right after the 4-byte magic
  const auto result = DeserializeInstance(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(InstanceIoTest, TrailingBytesAreCorruption) {
  std::string bytes = SerializeInstance(CompressedBib());
  bytes += "junk";
  const auto result = DeserializeInstance(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(InstanceIoTest, CyclicChildReferencesAreCorruption) {
  // A serialized cycle (v0 → v1 → v0) deserializes structurally but must
  // be rejected by validation: instances are DAGs.
  std::string bytes = Header(/*vertex_count=*/2, /*root_plus1=*/1);
  PutVarint(&bytes, 1);  // v0: one run
  PutVarint(&bytes, 1);  //   child v1
  PutVarint(&bytes, 1);  //   count 1
  PutVarint(&bytes, 1);  // v1: one run
  PutVarint(&bytes, 0);  //   child v0 — closes the cycle
  PutVarint(&bytes, 1);  //   count 1
  const auto result = DeserializeInstance(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(InstanceIoTest, SelfLoopIsCorruption) {
  std::string bytes = Header(1, 1);
  PutVarint(&bytes, 1);  // v0: one run
  PutVarint(&bytes, 0);  //   child v0
  PutVarint(&bytes, 1);
  const auto result = DeserializeInstance(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(InstanceIoTest, ChildOutOfRangeIsCorruption) {
  std::string bytes = Header(1, 1);
  PutVarint(&bytes, 1);  // v0: one run
  PutVarint(&bytes, 7);  //   child v7 of a 1-vertex instance
  PutVarint(&bytes, 1);
  const auto result = DeserializeInstance(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(InstanceIoTest, ZeroMultiplicityIsCorruption) {
  std::string bytes = Header(2, 1);
  PutVarint(&bytes, 1);  // v0: one run
  PutVarint(&bytes, 1);  //   child v1
  PutVarint(&bytes, 0);  //   count 0 — RLE runs are >= 1
  PutVarint(&bytes, 0);  // v1: leaf
  const auto result = DeserializeInstance(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(InstanceIoTest, RootOutOfRangeIsCorruption) {
  const std::string bytes = Header(1, /*root_plus1=*/5);
  const auto result = DeserializeInstance(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(InstanceIoTest, ChecksummedRoundTrip) {
  const Instance original = CompressedBib();
  const std::string bytes = SerializeInstanceChecksummed(original);
  // Footer = crc32 | payload size | "XCQF", 16 bytes past the payload.
  ASSERT_EQ(bytes.size(), SerializeInstance(original).size() + 16);
  EXPECT_EQ(bytes.substr(bytes.size() - 4), "XCQF");
  XCQ_ASSERT_OK_AND_ASSIGN(const Instance reloaded,
                           DeserializeInstance(bytes));
  XCQ_ASSERT_OK(reloaded.Validate());
  EXPECT_EQ(reloaded.vertex_count(), original.vertex_count());
  EXPECT_EQ(TreeNodeCount(reloaded), TreeNodeCount(original));
}

TEST(InstanceIoTest, ChecksummedTruncatedFooterIsCorruption) {
  const std::string bytes =
      SerializeInstanceChecksummed(CompressedBib());
  // Dropping any suffix of the footer destroys the end magic, so the
  // stream falls back to the legacy parse — which then chokes on the
  // partial footer as trailing bytes. Either way: kCorruption.
  for (size_t drop = 1; drop <= 15; ++drop) {
    const auto result = DeserializeInstance(
        std::string_view(bytes).substr(0, bytes.size() - drop));
    ASSERT_FALSE(result.ok()) << "dropped " << drop << " bytes";
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption)
        << "dropped " << drop << " bytes";
  }
}

TEST(InstanceIoTest, ChecksummedPayloadFlipIsCrcMismatch) {
  std::string bytes = SerializeInstanceChecksummed(CompressedBib());
  for (const size_t pos : {size_t{9}, bytes.size() / 2, bytes.size() - 17}) {
    SCOPED_TRACE(pos);
    std::string flipped = bytes;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x40);
    const auto result = DeserializeInstance(flipped);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
    EXPECT_NE(result.status().message().find("CRC"), std::string::npos);
  }
}

TEST(InstanceIoTest, ChecksummedTornWriteIsSizeMismatch) {
  // A torn write that somehow kept the 16-byte footer but lost payload
  // bytes: the recorded payload size no longer matches.
  const std::string bytes =
      SerializeInstanceChecksummed(CompressedBib());
  const std::string torn = bytes.substr(0, bytes.size() / 2) +
                           bytes.substr(bytes.size() - 16);
  const auto result = DeserializeInstance(torn);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  EXPECT_NE(result.status().message().find("torn"), std::string::npos);
}

TEST(InstanceIoTest, SaveInstanceWritesChecksummedFormat) {
  const std::string path =
      ::testing::TempDir() + "/instance_io_test_checksummed.xcqi";
  XCQ_ASSERT_OK(SaveInstance(CompressedBib(), path));
  std::string raw;
  XCQ_ASSERT_OK_AND_ASSIGN(raw, xml::ReadFileToString(path));
  ASSERT_GE(raw.size(), 20u);
  EXPECT_EQ(raw.substr(raw.size() - 4), "XCQF");
  // And no stray temp file from the atomic write.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
  std::remove(path.c_str());
}

TEST(InstanceIoTest, LegacyFooterlessFixtureStillLoads) {
  // tests/data/legacy_bib.xcqi is a checked-in bare (pre-footer) spill
  // of the bib example. It must load forever: a --data-dir written by an
  // older build survives the format upgrade.
  XCQ_ASSERT_OK_AND_ASSIGN(
      const Instance legacy,
      LoadInstance(std::string(XCQ_TEST_DATA_DIR) + "/legacy_bib.xcqi"));
  XCQ_ASSERT_OK(legacy.Validate());
  XCQ_ASSERT_OK_AND_ASSIGN(QuerySession session,
                           QuerySession::FromInstance(legacy));
  XCQ_ASSERT_OK_AND_ASSIGN(
      QuerySession reference,
      QuerySession::Open(testing::BibExampleXml()));
  XCQ_ASSERT_OK_AND_ASSIGN(const QueryOutcome want,
                           reference.Run("//paper/author"));
  XCQ_ASSERT_OK_AND_ASSIGN(const QueryOutcome got,
                           session.Run("//paper/author"));
  EXPECT_EQ(got.selected_tree_nodes, want.selected_tree_nodes);
}

TEST(InstanceIoTest, Crc32MatchesKnownVectors) {
  // IEEE 802.3 check values pin the polynomial and bit order.
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(InstanceIoTest, SaveLoadFileRoundTrip) {
  const Instance original = CompressedBib();
  const std::string path =
      ::testing::TempDir() + "/instance_io_test_roundtrip.xcqi";
  XCQ_ASSERT_OK(SaveInstance(original, path));
  XCQ_ASSERT_OK_AND_ASSIGN(const Instance reloaded, LoadInstance(path));
  EXPECT_EQ(reloaded.vertex_count(), original.vertex_count());
  EXPECT_EQ(TreeNodeCount(reloaded), TreeNodeCount(original));
  std::remove(path.c_str());
}

TEST(InstanceIoTest, LoadMissingFileIsError) {
  const auto result = LoadInstance("/nonexistent/xcq/instance.xcqi");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().code(), StatusCode::kOk);
}

}  // namespace
}  // namespace xcq
