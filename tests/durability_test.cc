// Fault-injection coverage for the durable DocumentStore
// (docs/SERVER.md §Persistence).
//
// The contract under test, end to end:
//
//  * A hard stop (store destroyed with no flush — the destructor
//    deliberately skips FlushSpills) followed by a restart on the same
//    --data-dir answers every query bit-identically to the first
//    process, with ZERO re-parses of any source document.
//  * Restart cost is O(manifest): warm entries are metadata until the
//    first Acquire faults them in, and N concurrent acquires of one
//    warm document do exactly one spill read (single-flight).
//  * Every corruption we can inject — truncated manifest line, torn
//    spill, flipped CRC byte, missing file, zero-byte file, duplicate
//    manifest entries, stray .tmp artifacts — degrades that one
//    document to a cold miss with a canonical kCorruption (or a skipped
//    manifest entry), never a crash, never a wrong answer, and never
//    any effect on the other documents.

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "xcq/api.h"

namespace xcq {
namespace {

using server::DocumentInfo;
using server::DocumentStore;
using server::StoreOptions;
using server::StoredDocument;

/// A fresh empty data dir under the gtest temp root.
std::string FreshDataDir(const std::string& tag) {
  std::string tmpl = ::testing::TempDir() + "/xcq_dur_" + tag + "_XXXXXX";
  const char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return tmpl;
}

StoreOptions DurableOptions(const std::string& data_dir) {
  StoreOptions options;
  options.data_dir = data_dir;
  return options;
}

std::string ReadRawFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteRawFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

/// The spill file of `name` inside `dir` (files are
/// `<escaped-name>.g<generation>.xcqi`); "" when none exists.
std::string SpillPathFor(const std::string& dir, const std::string& name) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return "";
  std::string found;
  while (dirent* entry = ::readdir(d)) {
    const std::string file = entry->d_name;
    if (file.rfind(name + ".g", 0) == 0 &&
        file.size() > 5 && file.substr(file.size() - 5) == ".xcqi") {
      found = dir + "/" + file;
      break;
    }
  }
  ::closedir(d);
  return found;
}

uint64_t QueryTreeCount(DocumentStore* store, const std::string& name,
                        const std::string& query) {
  auto doc = store->Acquire(name);
  EXPECT_TRUE(doc.ok()) << name << ": " << doc.status().ToString();
  if (!doc.ok()) return ~uint64_t{0};
  auto outcome = doc.Value()->Query(query);
  EXPECT_TRUE(outcome.ok()) << query << ": " << outcome.status().ToString();
  if (!outcome.ok()) return ~uint64_t{0};
  return outcome.Value().selected_tree_nodes;
}

DocumentInfo InfoFor(DocumentStore* store, const std::string& name) {
  for (const DocumentInfo& info : store->Stats()) {
    if (info.name == name) return info;
  }
  ADD_FAILURE() << "no STATS row for " << name;
  return {};
}

Instance CompressedBib() {
  CompressOptions copts;
  copts.mode = LabelMode::kSchema;
  copts.tags = {"paper", "author", "title", "book"};
  copts.patterns = {"Vianu", "Codd"};
  auto instance = CompressXml(testing::BibExampleXml(), copts);
  EXPECT_TRUE(instance.ok()) << instance.status();
  return std::move(instance).Value();
}

/// Loads a three-document corpus (two XML docs, one pre-built .xcqi
/// instance), runs one query per document so every XML doc has spilled,
/// and returns name → (query, expected tree count).
std::map<std::string, std::pair<std::string, uint64_t>> SeedCorpus(
    DocumentStore* store) {
  XCQ_EXPECT_OK(store->LoadXml("alpha", testing::BibExampleXml()));
  XCQ_EXPECT_OK(store->LoadXml("beta", testing::AlternatingBinaryTreeXml(5)));
  XCQ_EXPECT_OK(store->LoadInstance("gamma", CompressedBib()));
  std::map<std::string, std::pair<std::string, uint64_t>> expected;
  expected["alpha"] = {"//paper/author", 0};
  expected["beta"] = {"//a/b", 0};
  expected["gamma"] = {"//book[author[\"Vianu\"]]", 0};
  for (auto& [name, qa] : expected) {
    qa.second = QueryTreeCount(store, name, qa.first);
    EXPECT_NE(qa.second, ~uint64_t{0});
  }
  return expected;
}

TEST(DurabilityTest, WarmRestartAnswersIdenticallyWithZeroReparses) {
  const std::string dir = FreshDataDir("restart");
  std::map<std::string, std::pair<std::string, uint64_t>> expected;
  {
    DocumentStore store(DurableOptions(dir));
    XCQ_ASSERT_OK(store.durability_status());
    expected = SeedCorpus(&store);
    // Hard stop: the destructor writes nothing.
  }
  DocumentStore restarted(DurableOptions(dir));
  XCQ_ASSERT_OK(restarted.durability_status());
  EXPECT_EQ(restarted.recovery_stats().recovered, 3u);
  EXPECT_EQ(restarted.recovery_stats().errors, 0u);
  EXPECT_EQ(restarted.warm_count(), 3u);
  EXPECT_EQ(restarted.document_count(), 0u);  // lazy: metadata only
  for (const auto& [name, qa] : expected) {
    SCOPED_TRACE(name);
    EXPECT_EQ(restarted.Find(name), nullptr);  // still warm, not resident
    EXPECT_EQ(QueryTreeCount(&restarted, name, qa.first), qa.second);
    const DocumentInfo info = InfoFor(&restarted, name);
    EXPECT_TRUE(info.resident);
    EXPECT_TRUE(info.warm);
    EXPECT_EQ(info.source_parses, 0u);  // the whole point
    EXPECT_FALSE(info.has_source);
  }
  EXPECT_EQ(restarted.warm_count(), 0u);
  EXPECT_EQ(restarted.document_count(), 3u);
}

TEST(DurabilityTest, RestartPropertyLoopOverRandomCorpora) {
  // Property loop: random corpora, random mix of XML and instance
  // loads, every answer must survive a hard stop bit-identically.
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE(seed);
    const std::string dir =
        FreshDataDir("prop" + std::to_string(seed));
    std::map<std::string, std::pair<std::string, uint64_t>> expected;
    {
      DocumentStore store(DurableOptions(dir));
      Rng rng(seed * 977);
      for (int d = 0; d < 4; ++d) {
        const std::string name = "doc" + std::to_string(d);
        const std::string xml =
            testing::RandomXml(seed * 131 + d, 200, 4);
        if (rng.Chance(0.5)) {
          XCQ_ASSERT_OK(store.LoadXml(name, xml));
        } else {
          CompressOptions copts;
          copts.mode = LabelMode::kSchema;
          copts.tags = {"t0", "t1", "t2", "t3"};
          XCQ_ASSERT_OK_AND_ASSIGN(Instance instance,
                                   CompressXml(xml, copts));
          XCQ_ASSERT_OK(store.LoadInstance(name, std::move(instance)));
        }
        const std::string query =
            "//t" + std::to_string(rng.Uniform(0, 3)) + "//t" +
            std::to_string(rng.Uniform(0, 3));
        expected[name] = {query, QueryTreeCount(&store, name, query)};
        ASSERT_NE(expected[name].second, ~uint64_t{0});
      }
    }
    DocumentStore restarted(DurableOptions(dir));
    ASSERT_EQ(restarted.warm_count(), 4u);
    for (const auto& [name, qa] : expected) {
      SCOPED_TRACE(name);
      EXPECT_EQ(QueryTreeCount(&restarted, name, qa.first), qa.second);
      EXPECT_EQ(InfoFor(&restarted, name).source_parses, 0u);
    }
  }
}

TEST(DurabilityTest, TruncatedManifestLineSkipsOnlyThatDocument) {
  const std::string dir = FreshDataDir("tornline");
  auto expected = [&] {
    DocumentStore store(DurableOptions(dir));
    return SeedCorpus(&store);
  }();
  // Tear the manifest mid-way through its final line (a crash inside a
  // non-atomic editor, a bad disk — the parser must not care).
  const std::string manifest_path = dir + "/MANIFEST";
  std::string manifest = ReadRawFile(manifest_path);
  ASSERT_FALSE(manifest.empty());
  ASSERT_EQ(manifest.back(), '\n');
  manifest.pop_back();
  const size_t cut = manifest.find_last_of('\n');
  ASSERT_NE(cut, std::string::npos);
  // The torn doc is whichever entry the final line names.
  const std::string torn_line = manifest.substr(cut + 1);
  const size_t name_start = torn_line.find(' ') + 1;
  const std::string torn_doc = torn_line.substr(
      name_start, torn_line.find(' ', name_start) - name_start);
  WriteRawFile(manifest_path,
               manifest.substr(0, cut + 1 + torn_line.size() / 2));

  DocumentStore restarted(DurableOptions(dir));
  XCQ_ASSERT_OK(restarted.durability_status());
  EXPECT_EQ(restarted.recovery_stats().recovered, 2u);
  EXPECT_GE(restarted.recovery_stats().errors, 1u);
  EXPECT_EQ(restarted.warm_count(), 2u);
  const auto missing = restarted.Acquire(torn_doc);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  for (const auto& [name, qa] : expected) {
    if (name == torn_doc) continue;
    SCOPED_TRACE(name);
    EXPECT_EQ(QueryTreeCount(&restarted, name, qa.first), qa.second);
  }
}

TEST(DurabilityTest, FlippedSpillByteIsIsolatedColdMiss) {
  const std::string dir = FreshDataDir("crcflip");
  auto expected = [&] {
    DocumentStore store(DurableOptions(dir));
    return SeedCorpus(&store);
  }();
  const std::string spill = SpillPathFor(dir, "beta");
  ASSERT_FALSE(spill.empty());
  std::string bytes = ReadRawFile(spill);
  bytes[bytes.size() / 2] =
      static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  WriteRawFile(spill, bytes);

  DocumentStore restarted(DurableOptions(dir));
  EXPECT_EQ(restarted.warm_count(), 3u);  // corruption found at fault-in
  const auto acquired = restarted.Acquire("beta");
  ASSERT_FALSE(acquired.ok());
  EXPECT_EQ(acquired.status().code(), StatusCode::kCorruption);
  EXPECT_NE(acquired.status().message().find("unrecoverable"),
            std::string::npos)
      << acquired.status().ToString();
  // The entry degrades to cold: the canonical miss is reported once,
  // afterwards the name is simply not loaded.
  const auto again = restarted.Acquire("beta");
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(
      restarted.registry()->CounterValue("xcq_store_warm_misses_total", {}),
      1.0);
  for (const std::string name : {"alpha", "gamma"}) {
    SCOPED_TRACE(name);
    EXPECT_EQ(QueryTreeCount(&restarted, name, expected[name].first),
              expected[name].second);
  }
  // A cold miss is recoverable the way any unknown name is: re-LOAD.
  XCQ_ASSERT_OK(
      restarted.LoadXml("beta", testing::AlternatingBinaryTreeXml(5)));
  EXPECT_EQ(QueryTreeCount(&restarted, "beta", expected["beta"].first),
            expected["beta"].second);
}

TEST(DurabilityTest, MissingSpillFileIsIsolatedColdMiss) {
  const std::string dir = FreshDataDir("missing");
  auto expected = [&] {
    DocumentStore store(DurableOptions(dir));
    return SeedCorpus(&store);
  }();
  const std::string spill = SpillPathFor(dir, "gamma");
  ASSERT_FALSE(spill.empty());
  ASSERT_EQ(::unlink(spill.c_str()), 0);

  DocumentStore restarted(DurableOptions(dir));
  const auto acquired = restarted.Acquire("gamma");
  ASSERT_FALSE(acquired.ok());
  EXPECT_EQ(acquired.status().code(), StatusCode::kCorruption);
  EXPECT_NE(acquired.status().message().find("unrecoverable"),
            std::string::npos);
  for (const std::string name : {"alpha", "beta"}) {
    SCOPED_TRACE(name);
    EXPECT_EQ(QueryTreeCount(&restarted, name, expected[name].first),
              expected[name].second);
  }
}

TEST(DurabilityTest, TransientReadFailureKeepsWarmEntryAndRetries) {
  const std::string dir = FreshDataDir("transient");
  uint64_t want = 0;
  {
    DocumentStore store(DurableOptions(dir));
    XCQ_ASSERT_OK(store.LoadXml("alpha", testing::BibExampleXml()));
    want = QueryTreeCount(&store, "alpha", "//paper/author");
  }
  DocumentStore restarted(DurableOptions(dir));
  ASSERT_EQ(restarted.warm_count(), 1u);
  // Make the spill temporarily unreadable without deleting it: swap a
  // directory in at its path (open succeeds, read fails EISDIR) — the
  // moral equivalent of fd pressure or a flaky disk, and unlike
  // chmod 0 it fails for root too.
  const std::string spill = SpillPathFor(dir, "alpha");
  ASSERT_FALSE(spill.empty());
  const std::string hidden = spill + ".hidden";
  ASSERT_EQ(::rename(spill.c_str(), hidden.c_str()), 0);
  ASSERT_EQ(::mkdir(spill.c_str(), 0755), 0);

  const auto acquired = restarted.Acquire("alpha");
  ASSERT_FALSE(acquired.ok());
  EXPECT_EQ(acquired.status().code(), StatusCode::kIoError);
  EXPECT_NE(acquired.status().message().find("will retry"),
            std::string::npos)
      << acquired.status().ToString();
  // A transient failure must not destroy durable state: the entry is
  // still warm and its manifest record and spill bytes are untouched.
  EXPECT_EQ(restarted.warm_count(), 1u);
  EXPECT_TRUE(InfoFor(&restarted, "alpha").warm);
  EXPECT_TRUE(FileExists(hidden));

  // Heal the "disk": the very next request faults in normally.
  ASSERT_EQ(::rmdir(spill.c_str()), 0);
  ASSERT_EQ(::rename(hidden.c_str(), spill.c_str()), 0);
  EXPECT_EQ(QueryTreeCount(&restarted, "alpha", "//paper/author"), want);
  EXPECT_EQ(restarted.warm_count(), 0u);
  EXPECT_EQ(InfoFor(&restarted, "alpha").source_parses, 0u);
}

TEST(DurabilityTest, ZeroByteSpillIsIsolatedColdMiss) {
  const std::string dir = FreshDataDir("zerobyte");
  auto expected = [&] {
    DocumentStore store(DurableOptions(dir));
    return SeedCorpus(&store);
  }();
  const std::string spill = SpillPathFor(dir, "alpha");
  ASSERT_FALSE(spill.empty());
  WriteRawFile(spill, "");

  DocumentStore restarted(DurableOptions(dir));
  const auto acquired = restarted.Acquire("alpha");
  ASSERT_FALSE(acquired.ok());
  EXPECT_EQ(acquired.status().code(), StatusCode::kCorruption);
  for (const std::string name : {"beta", "gamma"}) {
    SCOPED_TRACE(name);
    EXPECT_EQ(QueryTreeCount(&restarted, name, expected[name].first),
              expected[name].second);
  }
}

TEST(DurabilityTest, OverflowedManifestNumberIsRejectedNotWrapped) {
  const std::string dir = FreshDataDir("overflow");
  auto expected = [&] {
    DocumentStore store(DurableOptions(dir));
    return SeedCorpus(&store);
  }();
  // Rewrite alpha's bytes field as a 20-digit value above 2^64-1.
  // Without an overflow check it wraps silently — a wrapped size later
  // fails the fault-in size check as a spurious corruption, a wrapped
  // generation regresses the collision-avoidance counter. With one the
  // line is skipped at recovery like any other malformed line.
  const std::string manifest_path = dir + "/MANIFEST";
  std::string manifest = ReadRawFile(manifest_path);
  const size_t line_start = manifest.find("doc alpha ");
  ASSERT_NE(line_start, std::string::npos);
  const size_t line_end = manifest.find('\n', line_start);
  ASSERT_NE(line_end, std::string::npos);
  std::istringstream line(
      manifest.substr(line_start, line_end - line_start));
  std::vector<std::string> tokens;
  std::string token;
  while (line >> token) tokens.push_back(token);
  ASSERT_EQ(tokens.size(), 7u);  // doc name file bytes crc gen labels
  tokens[3] = "99999999999999999999";
  std::string rebuilt;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) rebuilt += ' ';
    rebuilt += tokens[i];
  }
  manifest.replace(line_start, line_end - line_start, rebuilt);
  WriteRawFile(manifest_path, manifest);

  DocumentStore restarted(DurableOptions(dir));
  XCQ_ASSERT_OK(restarted.durability_status());
  EXPECT_GE(restarted.recovery_stats().errors, 1u);
  EXPECT_EQ(restarted.warm_count(), 2u);
  EXPECT_EQ(restarted.Acquire("alpha").status().code(),
            StatusCode::kNotFound);
  for (const std::string name : {"beta", "gamma"}) {
    SCOPED_TRACE(name);
    EXPECT_EQ(QueryTreeCount(&restarted, name, expected[name].first),
              expected[name].second);
  }
}

TEST(DurabilityTest, DuplicateManifestEntriesLastOneWins) {
  const std::string dir = FreshDataDir("dupes");
  auto expected = [&] {
    DocumentStore store(DurableOptions(dir));
    return SeedCorpus(&store);
  }();
  // Re-append every "doc" line: a manifest that crashed between append
  // and compaction in some future append-mode implementation. Last
  // entry wins; nothing doubles.
  const std::string manifest_path = dir + "/MANIFEST";
  const std::string manifest = ReadRawFile(manifest_path);
  std::string doubled = manifest;
  const size_t first_doc = manifest.find("doc ");
  ASSERT_NE(first_doc, std::string::npos);
  doubled += manifest.substr(first_doc);
  WriteRawFile(manifest_path, doubled);

  DocumentStore restarted(DurableOptions(dir));
  XCQ_ASSERT_OK(restarted.durability_status());
  EXPECT_EQ(restarted.warm_count(), 3u);
  for (const auto& [name, qa] : expected) {
    SCOPED_TRACE(name);
    EXPECT_EQ(QueryTreeCount(&restarted, name, qa.first), qa.second);
  }
}

TEST(DurabilityTest, StrayTmpArtifactsAreCleanedUp) {
  const std::string dir = FreshDataDir("tmpjunk");
  auto expected = [&] {
    DocumentStore store(DurableOptions(dir));
    return SeedCorpus(&store);
  }();
  // A crash between temp-write and rename leaves .tmp files behind.
  WriteRawFile(dir + "/MANIFEST.tmp", "XCQM 1\ndoc half-written");
  WriteRawFile(dir + "/alpha.g99.xcqi.tmp", "torn spill bytes");

  DocumentStore restarted(DurableOptions(dir));
  XCQ_ASSERT_OK(restarted.durability_status());
  EXPECT_EQ(restarted.warm_count(), 3u);
  EXPECT_FALSE(FileExists(dir + "/MANIFEST.tmp"));
  EXPECT_FALSE(FileExists(dir + "/alpha.g99.xcqi.tmp"));
  for (const auto& [name, qa] : expected) {
    SCOPED_TRACE(name);
    EXPECT_EQ(QueryTreeCount(&restarted, name, qa.first), qa.second);
  }
}

TEST(DurabilityTest, CorruptManifestHeaderDisablesCleanupNotServing) {
  const std::string dir = FreshDataDir("badheader");
  {
    DocumentStore store(DurableOptions(dir));
    SeedCorpus(&store);
  }
  const std::string spill = SpillPathFor(dir, "alpha");
  ASSERT_FALSE(spill.empty());
  WriteRawFile(dir + "/MANIFEST", "garbage header\n");

  // Nothing recovers (the catalog is untrusted) — but the spill FILES
  // must survive: a corrupt manifest must never cascade into deleting
  // good data.
  DocumentStore restarted(DurableOptions(dir));
  XCQ_ASSERT_OK(restarted.durability_status());
  EXPECT_EQ(restarted.warm_count(), 0u);
  EXPECT_GE(restarted.recovery_stats().errors, 1u);
  EXPECT_TRUE(FileExists(spill));
}

TEST(DurabilityTest, ConcurrentAcquireIsSingleFlight) {
  const std::string dir = FreshDataDir("singleflight");
  uint64_t want = 0;
  {
    DocumentStore store(DurableOptions(dir));
    XCQ_ASSERT_OK(store.LoadXml("alpha", testing::BibExampleXml()));
    want = QueryTreeCount(&store, "alpha", "//paper/author");
  }
  DocumentStore restarted(DurableOptions(dir));
  ASSERT_EQ(restarted.warm_count(), 1u);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<uint64_t> got(kThreads, ~uint64_t{0});
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      got[static_cast<size_t>(t)] =
          QueryTreeCount(&restarted, "alpha", "//paper/author");
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(got[static_cast<size_t>(t)], want) << "thread " << t;
  }
  // One spill read, one parse-free session — the stampede collapsed.
  EXPECT_EQ(restarted.spill_reads(), 1u);
  EXPECT_EQ(InfoFor(&restarted, "alpha").source_parses, 0u);
  EXPECT_EQ(
      restarted.registry()->CounterValue("xcq_store_warm_hits_total", {}),
      1.0);
}

TEST(DurabilityTest, ConcurrentRespillAndFaultInNeverLoseTheDocument) {
  // The respill ↔ fault-in race: PERSIST (or a demotion refresh) writes
  // generation N+1 and unlinks generation N's file while a fault-in
  // that looked the record up before the catalog update is still trying
  // to read it. The reader must retry against the fresh record — the
  // document must never degrade to cold, and its durable copy must
  // survive the churn.
  const std::string dir = FreshDataDir("respillrace");
  DocumentStore store(DurableOptions(dir));
  XCQ_ASSERT_OK(store.LoadXml("alpha", testing::BibExampleXml()));
  const uint64_t want = QueryTreeCount(&store, "alpha", "//paper/author");

  std::thread churner([&store] {
    for (int i = 0; i < 80; ++i) {
      // Resident: forces a new spill generation. Warm-only: a no-op.
      const Status persisted = store.Persist("alpha");
      EXPECT_TRUE(persisted.ok()) << persisted.ToString();
      EXPECT_TRUE(store.Evict("alpha"));  // demote (or keep warm)
    }
  });
  for (int i = 0; i < 80; ++i) {
    const auto acquired = store.Acquire("alpha");
    ASSERT_TRUE(acquired.ok()) << "iteration " << i << ": "
                               << acquired.status().ToString();
    const auto outcome = acquired.Value()->Query("//paper/author");
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome.Value().selected_tree_nodes, want);
  }
  churner.join();
  EXPECT_EQ(QueryTreeCount(&store, "alpha", "//paper/author"), want);
  EXPECT_FALSE(SpillPathFor(dir, "alpha").empty());
}

TEST(DurabilityTest, EvictDemotesToWarmAndFaultsBack) {
  const std::string dir = FreshDataDir("demote");
  DocumentStore store(DurableOptions(dir));
  XCQ_ASSERT_OK(store.LoadXml("alpha", testing::BibExampleXml()));
  const uint64_t want = QueryTreeCount(&store, "alpha", "//paper/author");

  EXPECT_TRUE(store.Evict("alpha"));
  EXPECT_EQ(store.Find("alpha"), nullptr);
  EXPECT_EQ(store.warm_count(), 1u);
  EXPECT_EQ(store.document_count(), 0u);
  ASSERT_FALSE(SpillPathFor(dir, "alpha").empty());
  // A second EVICT of the now-warm name is still true (it names a
  // known document) and keeps it warm.
  EXPECT_TRUE(store.Evict("alpha"));
  EXPECT_EQ(store.warm_count(), 1u);

  EXPECT_EQ(QueryTreeCount(&store, "alpha", "//paper/author"), want);
  EXPECT_EQ(store.warm_count(), 0u);
  EXPECT_EQ(store.document_count(), 1u);
}

TEST(DurabilityTest, ForgetRemovesResidencySpillAndManifest) {
  const std::string dir = FreshDataDir("forget");
  {
    DocumentStore store(DurableOptions(dir));
    SeedCorpus(&store);
    const std::string spill = SpillPathFor(dir, "beta");
    ASSERT_FALSE(spill.empty());
    EXPECT_TRUE(store.Forget("beta"));
    EXPECT_FALSE(FileExists(spill));
    EXPECT_EQ(store.Find("beta"), nullptr);
    EXPECT_FALSE(store.Forget("beta"));  // second time: nothing left
  }
  DocumentStore restarted(DurableOptions(dir));
  EXPECT_EQ(restarted.warm_count(), 2u);
  EXPECT_EQ(restarted.Acquire("beta").status().code(),
            StatusCode::kNotFound);
}

TEST(DurabilityTest, PersistRequiresCompiledInstanceThenWrites) {
  const std::string dir = FreshDataDir("persist");
  DocumentStore store(DurableOptions(dir));
  XCQ_ASSERT_OK(store.LoadXml("alpha", testing::BibExampleXml()));
  // No query yet — an XML document compiles its instance lazily, so
  // there is nothing to persist.
  const Status premature = store.Persist("alpha");
  EXPECT_EQ(premature.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(SpillPathFor(dir, "alpha").empty());

  const uint64_t want = QueryTreeCount(&store, "alpha", "//paper/author");
  XCQ_ASSERT_OK(store.Persist("alpha"));
  EXPECT_FALSE(SpillPathFor(dir, "alpha").empty());
  EXPECT_EQ(store.Persist("missing").code(), StatusCode::kNotFound);

  // And the spill is complete: restart serves from it alone.
  DocumentStore restarted(DurableOptions(dir));
  EXPECT_EQ(QueryTreeCount(&restarted, "alpha", "//paper/author"), want);
}

TEST(DurabilityTest, CapacityEvictionDemotesInsteadOfDiscarding) {
  const std::string dir = FreshDataDir("capacity");
  StoreOptions options = DurableOptions(dir);
  DocumentStore store(options);
  XCQ_ASSERT_OK(store.LoadInstance("first", CompressedBib()));
  // The at-load footprint, before any query grows the instance — the
  // tight store below sees exactly this size per fresh load.
  const size_t one = InfoFor(&store, "first").memory_bytes;
  ASSERT_GT(one, 0u);
  const uint64_t want =
      QueryTreeCount(&store, "first", "//book[author[\"Vianu\"]]");
  StoreOptions tight = DurableOptions(FreshDataDir("capacity2"));
  tight.capacity_bytes = one + one / 2;
  DocumentStore small(tight);
  XCQ_ASSERT_OK(small.LoadInstance("first", CompressedBib()));
  XCQ_ASSERT_OK(small.LoadInstance("second", CompressedBib()));
  // "first" was demoted, not destroyed: still warm, still answerable.
  EXPECT_EQ(small.document_count(), 1u);
  EXPECT_EQ(small.warm_count(), 1u);
  EXPECT_EQ(small.Find("first"), nullptr);
  EXPECT_EQ(QueryTreeCount(&small, "first", "//book[author[\"Vianu\"]]"),
            want);
}

TEST(DurabilityTest, WarmStartOffStartsColdButKeepsSpills) {
  const std::string dir = FreshDataDir("coldstart");
  auto expected = [&] {
    DocumentStore store(DurableOptions(dir));
    return SeedCorpus(&store);
  }();
  StoreOptions cold = DurableOptions(dir);
  cold.warm_start = false;
  {
    DocumentStore store(cold);
    XCQ_ASSERT_OK(store.durability_status());
    EXPECT_EQ(store.warm_count(), 0u);
    EXPECT_EQ(store.recovery_stats().recovered, 0u);
    EXPECT_EQ(store.Acquire("alpha").status().code(),
              StatusCode::kNotFound);
  }
  // The catalog survived the cold pass: warm-start again and serve.
  DocumentStore warmed(DurableOptions(dir));
  EXPECT_EQ(warmed.warm_count(), 3u);
  for (const auto& [name, qa] : expected) {
    SCOPED_TRACE(name);
    EXPECT_EQ(QueryTreeCount(&warmed, name, qa.first), qa.second);
  }
}

TEST(DurabilityTest, NoDataDirIsMemoryOnlyAsBefore) {
  DocumentStore store;
  EXPECT_FALSE(store.durable());
  XCQ_ASSERT_OK(store.durability_status());
  XCQ_ASSERT_OK(store.LoadXml("alpha", testing::BibExampleXml()));
  EXPECT_NE(QueryTreeCount(&store, "alpha", "//paper/author"),
            ~uint64_t{0});
  EXPECT_EQ(store.Persist("alpha").code(), StatusCode::kInvalidArgument);
  // Eviction without durability is a full drop.
  EXPECT_TRUE(store.Evict("alpha"));
  EXPECT_EQ(store.warm_count(), 0u);
  EXPECT_EQ(store.Acquire("alpha").status().code(), StatusCode::kNotFound);
}

TEST(DurabilityTest, UnusableDataDirDegradesToMemoryOnly) {
  StoreOptions options;
  options.data_dir = "/proc/definitely/not/creatable";
  DocumentStore store(options);
  EXPECT_FALSE(store.durable());
  EXPECT_FALSE(store.durability_status().ok());
  // Still a fully working memory-only store.
  XCQ_ASSERT_OK(store.LoadXml("alpha", testing::BibExampleXml()));
  EXPECT_NE(QueryTreeCount(&store, "alpha", "//paper/author"),
            ~uint64_t{0});
}

TEST(DurabilityTest, SpillRefreshTracksLabelGrowth) {
  // Labels merged by later queries must reach the spill so a restart
  // can answer those queries parse-free.
  const std::string dir = FreshDataDir("labelgrow");
  uint64_t want_title = 0;
  {
    DocumentStore store(DurableOptions(dir));
    XCQ_ASSERT_OK(store.LoadXml("alpha", testing::BibExampleXml()));
    (void)QueryTreeCount(&store, "alpha", "//paper/author");
    // "//title" needs a label the first query never tracked; serving it
    // merges the label in and the post-query spill picks it up.
    want_title = QueryTreeCount(&store, "alpha", "//title");
    ASSERT_NE(want_title, ~uint64_t{0});
  }
  DocumentStore restarted(DurableOptions(dir));
  EXPECT_EQ(QueryTreeCount(&restarted, "alpha", "//title"), want_title);
  const DocumentInfo info = InfoFor(&restarted, "alpha");
  EXPECT_EQ(info.source_parses, 0u);
  // But a label never queried before the stop is genuinely absent — an
  // instance-only session refuses instead of guessing.
  auto doc = restarted.Acquire("alpha");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.Value()->Query("//year").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace xcq
