// Path-summary pruned sweeps (docs/INTERNALS.md §9).
//
// The contract under test: evaluation with `prune_sweeps` on is
// *bit-identical* to the full-sweep oracle — same answers, same splits,
// same resulting instance — for every corpus, thread count, and
// minimize mode, while visiting no more vertices than the full sweep.
// The summary itself is pinned against an independent oracle (every
// realized (vertex, path) pair recomputed by walking the DAG), and its
// validity tracking across structural and non-structural mutations is
// pinned explicitly: rebuilt after splits and in-place minimization,
// kept across edge compaction and relation-bit churn.

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "xcq/api.h"
#include "xcq/util/rng.h"

namespace xcq {
namespace {

Instance CompressAllTags(const std::string& xml) {
  CompressOptions options;  // LabelMode::kAllTags by default
  auto result = CompressXml(xml, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).Value();
}

/// The summary label of `v`: the sorted ids of the live, named, non-xcq
/// relations whose column holds v — recomputed from the schema, not
/// from the summary's interned tables.
std::vector<RelationId> OracleLabel(const Instance& instance, VertexId v) {
  std::vector<RelationId> label;
  for (const RelationId r : instance.LiveRelations()) {
    const std::string& name = instance.schema().Name(r);
    if (name.empty() || name.rfind("xcq:", 0) == 0) continue;
    const DynamicBitset& column = instance.RelationBits(r);
    if (v < column.size() && column.Test(v)) label.push_back(r);
  }
  std::sort(label.begin(), label.end());
  return label;
}

/// Recomputes every (vertex, summary node) realization pair by walking
/// the DAG from the root, following trie edges by child label, and
/// asserts the summary's CSR slices hold exactly those pairs.
void ExpectSummaryMatchesOracle(const Instance& instance) {
  const PathSummary& s = instance.EnsurePathSummary();
  ASSERT_FALSE(s.saturated);
  ASSERT_TRUE(instance.path_summary_valid());
  const size_t n = instance.vertex_count();
  ASSERT_EQ(s.vertex_begin.size(), n + 1);

  const auto trie_child = [&](uint32_t parent,
                              const std::vector<RelationId>& label) {
    for (uint32_t j = 0; j < s.nodes.size(); ++j) {
      if (s.nodes[j].parent == parent && s.labels[s.nodes[j].label] == label) {
        return j;
      }
    }
    return PathSummary::kNoNode;
  };

  std::vector<std::set<uint32_t>> expected(n);
  std::set<std::pair<VertexId, uint32_t>> seen;
  std::vector<std::pair<VertexId, uint32_t>> work;
  if (instance.root() != kNoVertex && !s.nodes.empty()) {
    const uint32_t root_node =
        trie_child(PathSummary::kNoNode, OracleLabel(instance, instance.root()));
    ASSERT_NE(root_node, PathSummary::kNoNode)
        << "root path missing from the summary";
    ASSERT_EQ(root_node, 0u) << "root path must be node 0";
    work.emplace_back(instance.root(), root_node);
    seen.insert(work.back());
  }
  while (!work.empty()) {
    const auto [v, node] = work.back();
    work.pop_back();
    expected[v].insert(node);
    for (const Edge& e : instance.Children(v)) {
      const uint32_t child_node =
          trie_child(node, OracleLabel(instance, e.child));
      ASSERT_NE(child_node, PathSummary::kNoNode)
          << "path of vertex " << e.child << " missing from the summary";
      if (seen.insert({e.child, child_node}).second) {
        work.emplace_back(e.child, child_node);
      }
    }
  }

  for (size_t v = 0; v < n; ++v) {
    const std::set<uint32_t> realized(
        s.vertex_nodes.begin() + s.vertex_begin[v],
        s.vertex_nodes.begin() + s.vertex_begin[v + 1]);
    ASSERT_EQ(realized, expected[v]) << "vertex " << v;
  }
}

SessionOptions PruningOptions(size_t threads, bool prune, bool minimize) {
  SessionOptions options;
  options.engine_threads = threads;
  options.prune_sweeps = prune;
  options.minimize_after_query = minimize;
  options.incremental_minimize = minimize;
  return options;
}

/// Runs `queries` through two lockstep sessions — pruned and the
/// full-sweep oracle — and asserts bit-level agreement after every
/// query: answers, splits, the reachable structure the query left
/// behind, and (with `minimize`) the re-minimized structure. Also
/// checks the pruning counters stay on their own side: the oracle never
/// prunes, the pruned run never visits more than the full sweep would.
void ExpectPrunedMatchesUnpruned(const std::string& xml,
                                 const std::vector<std::string>& queries,
                                 size_t threads, bool minimize,
                                 uint64_t* pruned_or_skipped = nullptr) {
  XCQ_ASSERT_OK_AND_ASSIGN(
      QuerySession pruned,
      QuerySession::Open(xml, PruningOptions(threads, true, minimize)));
  XCQ_ASSERT_OK_AND_ASSIGN(
      QuerySession oracle,
      QuerySession::Open(xml, PruningOptions(threads, false, minimize)));

  uint64_t restricted = 0;
  for (const std::string& query : queries) {
    SCOPED_TRACE(query);
    XCQ_ASSERT_OK_AND_ASSIGN(const QueryOutcome p, pruned.Run(query));
    XCQ_ASSERT_OK_AND_ASSIGN(const QueryOutcome o, oracle.Run(query));

    EXPECT_EQ(p.selected_tree_nodes, o.selected_tree_nodes);
    EXPECT_EQ(p.selected_dag_nodes, o.selected_dag_nodes);
    EXPECT_EQ(p.stats.splits, o.stats.splits);
    // Pre-minimize structure after the sweep (Evaluate measures before
    // any session re-minimization).
    EXPECT_EQ(p.stats.vertices_after, o.stats.vertices_after);
    EXPECT_EQ(p.stats.edges_after, o.stats.edges_after);

    EXPECT_EQ(o.stats.pruned_sweeps, 0u);
    EXPECT_EQ(o.stats.skipped_sweeps, 0u);
    EXPECT_EQ(o.stats.summary_builds, 0u);
    EXPECT_LE(p.stats.sweep_visited, p.stats.sweep_full);
    restricted += p.stats.pruned_sweeps + p.stats.skipped_sweeps;

    // Post-minimize (or just post-query) structure.
    EXPECT_EQ(pruned.instance().ReachableCount(),
              oracle.instance().ReachableCount());
    EXPECT_EQ(pruned.instance().ReachableEdgeCount(),
              oracle.instance().ReachableEdgeCount());
    const RelationId rp =
        pruned.instance().FindRelation(engine::kResultRelation);
    const RelationId ro =
        oracle.instance().FindRelation(engine::kResultRelation);
    ASSERT_NE(rp, kNoRelation);
    ASSERT_NE(ro, kNoRelation);
    EXPECT_EQ(SelectedTreeNodeCount(pruned.instance(), rp),
              SelectedTreeNodeCount(oracle.instance(), ro));
  }
  XCQ_ASSERT_OK(pruned.instance().Validate());
  if (pruned_or_skipped != nullptr) *pruned_or_skipped = restricted;
}

/// The generic mix: recursive descent, splitting sibling walks, and an
/// upward tail — the same pool the traversal-cache oracle drives.
std::vector<std::string> QueryPool(std::string_view corpus_name) {
  std::vector<std::string> pool = {
      "//*/following-sibling::*",
      "//*",
      "/*",
      "//*/preceding-sibling::*/parent::*",
  };
  const Result<corpus::QuerySet> set = corpus::QueriesFor(corpus_name);
  if (set.ok()) {
    for (const std::string_view q : set->queries) pool.emplace_back(q);
  }
  return pool;
}

TEST(PrunedSweepEquivalenceTest, RandomizedSequencesOverEveryCorpus) {
  size_t corpus_index = 0;
  for (const corpus::CorpusGenerator* generator : corpus::AllCorpora()) {
    SCOPED_TRACE(std::string(generator->name()));
    corpus::GenerateOptions gen;
    gen.target_nodes = 900;
    gen.seed = 31 + corpus_index;
    const std::string xml = generator->Generate(gen);

    const std::vector<std::string> pool = QueryPool(generator->name());
    Rng rng(4321 + corpus_index);
    std::vector<std::string> sequence;
    for (int i = 0; i < 6; ++i) sequence.push_back(rng.Pick(pool));

    uint64_t restricted_total = 0;
    for (const size_t threads : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      uint64_t restricted = 0;
      ExpectPrunedMatchesUnpruned(xml, sequence, threads,
                                  /*minimize=*/false, &restricted);
      restricted_total += restricted;
      ExpectPrunedMatchesUnpruned(xml, sequence, threads,
                                  /*minimize=*/true);
    }
    // The corpora are small enough that the summary never saturates:
    // pruning must actually have engaged somewhere in the sequence.
    EXPECT_GT(restricted_total, 0u) << "pruning never engaged";
    ++corpus_index;
  }
}

TEST(PrunedSweepEquivalenceTest, SessionVerifyOracleHoldsOverEveryCorpus) {
  // The built-in verify_pruned_sweeps oracle re-runs every query
  // unpruned on a snapshot and fails the query on any divergence —
  // driving it over every corpus is the acceptance check that the
  // shipped verification mode itself works.
  size_t corpus_index = 0;
  for (const corpus::CorpusGenerator* generator : corpus::AllCorpora()) {
    SCOPED_TRACE(std::string(generator->name()));
    corpus::GenerateOptions gen;
    gen.target_nodes = 600;
    gen.seed = 131 + corpus_index;
    const std::string xml = generator->Generate(gen);

    const std::vector<std::string> pool = QueryPool(generator->name());
    Rng rng(99 + corpus_index);
    for (const size_t threads : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      SessionOptions options = PruningOptions(threads, true, false);
      options.verify_pruned_sweeps = true;
      XCQ_ASSERT_OK_AND_ASSIGN(QuerySession session,
                               QuerySession::Open(xml, options));
      for (int i = 0; i < 4; ++i) {
        const std::string query = rng.Pick(pool);
        SCOPED_TRACE(query);
        XCQ_ASSERT_OK(session.Run(query).status());
      }
    }
    ++corpus_index;
  }
}

TEST(PathSummaryTest, MatchesOracleOnExampleAndAfterSplits) {
  Instance instance = CompressAllTags(testing::BibExampleXml());
  ExpectSummaryMatchesOracle(instance);

  // Split something (sibling axis on a repetitive document), then the
  // rebuilt summary must match the oracle on the grown DAG too.
  Instance rep = CompressAllTags(
      "<r><a><b/><b/><b/></a><a><b/><b/><b/></a><a><c/><b/></a></r>");
  ExpectSummaryMatchesOracle(rep);
  XCQ_ASSERT_OK_AND_ASSIGN(
      const algebra::QueryPlan plan,
      algebra::CompileString("//b/following-sibling::b"));
  engine::EvalStats stats;
  XCQ_ASSERT_OK(
      engine::Evaluate(&rep, plan, engine::EvalOptions{}, &stats).status());
  ExpectSummaryMatchesOracle(rep);
  XCQ_ASSERT_OK(rep.Validate());
}

TEST(PathSummaryTest, ColdBuildThenWarmReuse) {
  Instance instance = CompressAllTags(testing::BibExampleXml());
  // `/bib/book` runs a gated child sweep (a bare `//label` from the
  // root is answered closed-form without consulting the summary), and
  // book vertices occur only as children of the selected root, so the
  // plan cannot split and the second evaluation sees untouched
  // structure.
  XCQ_ASSERT_OK_AND_ASSIGN(const algebra::QueryPlan plan,
                           algebra::CompileString("/bib/book"));

  // Cold: the first pruned evaluation pays exactly one summary build.
  engine::EvalStats cold;
  XCQ_ASSERT_OK(
      engine::Evaluate(&instance, plan, engine::EvalOptions{}, &cold)
          .status());
  EXPECT_EQ(cold.summary_builds, 1u);
  EXPECT_GT(cold.summary_nodes, 0u);

  // Warm: a non-splitting plan left the structure alone, so the next
  // evaluation reuses the summary without rebuilding.
  EXPECT_TRUE(instance.path_summary_valid());
  engine::EvalStats warm;
  XCQ_ASSERT_OK(
      engine::Evaluate(&instance, plan, engine::EvalOptions{}, &warm)
          .status());
  EXPECT_EQ(warm.summary_builds, 0u);
  EXPECT_EQ(warm.summary_nodes, cold.summary_nodes);
  EXPECT_EQ(warm.sweep_visited, cold.sweep_visited);
  EXPECT_EQ(instance.path_summary_builds(), 1u);
}

TEST(PathSummaryTest, ValidityTracksStructureAndSchema) {
  Instance instance = CompressAllTags(testing::BibExampleXml());
  (void)instance.EnsurePathSummary();
  EXPECT_TRUE(instance.path_summary_valid());
  const uint64_t builds = instance.path_summary_builds();

  // Repeated reads do not rebuild.
  (void)instance.EnsurePathSummary();
  EXPECT_EQ(instance.path_summary_builds(), builds);

  // Non-structural churn keeps it valid: scratch columns, xcq: result
  // relations, edge compaction, identical rewrites.
  const RelationId scratch = instance.AcquireScratchRelation();
  instance.SetBit(scratch, instance.root());
  instance.ReleaseScratchRelation(scratch);
  instance.CompactEdges();
  std::vector<Edge> same(instance.Children(instance.root()).begin(),
                         instance.Children(instance.root()).end());
  instance.SetEdges(instance.root(), same);
  EXPECT_TRUE(instance.path_summary_valid());
  EXPECT_EQ(instance.path_summary_builds(), builds);

  // A structural mutation invalidates; the next Ensure rebuilds.
  const VertexId clone = instance.CloneVertex(instance.root());
  (void)clone;
  EXPECT_FALSE(instance.path_summary_valid());
  (void)instance.EnsurePathSummary();
  EXPECT_EQ(instance.path_summary_builds(), builds + 1);
  EXPECT_TRUE(instance.path_summary_valid());

  // A *label schema* change invalidates even without a structure bump:
  // the label alphabet the trie was interned over is gone.
  const RelationId added = instance.AddRelation("brand-new-tag");
  instance.SetBit(added, instance.root());
  EXPECT_FALSE(instance.path_summary_valid());
  (void)instance.EnsurePathSummary();
  EXPECT_TRUE(instance.path_summary_valid());
  EXPECT_EQ(instance.path_summary_builds(), builds + 2);
}

TEST(PathSummaryTest, InvalidatedByInPlaceMinimizeThatChangesStructure) {
  // A splitting query grows the DAG; with minimize_after_query the
  // in-place pass re-compresses it. Both steps are structural: a
  // summary bound before the query must be stale after it, and the next
  // pruned query must rebuild against the minimized DAG and still agree
  // with the oracle.
  const std::string xml =
      "<r><a><b/><b/><b/></a><a><b/><b/><b/></a><a><c/><b/></a></r>";
  SessionOptions options = PruningOptions(1, true, true);
  options.verify_pruned_sweeps = true;
  XCQ_ASSERT_OK_AND_ASSIGN(QuerySession session,
                           QuerySession::Open(xml, options));
  XCQ_ASSERT_OK_AND_ASSIGN(const QueryOutcome split,
                           session.Run("//b/following-sibling::b"));
  EXPECT_GT(split.stats.splits, 0u);
  EXPECT_GE(split.stats.summary_builds, 1u);
  ExpectSummaryMatchesOracle(session.instance());

  XCQ_ASSERT_OK_AND_ASSIGN(const QueryOutcome next, session.Run("//a/b"));
  EXPECT_GE(next.stats.summary_builds, 1u)
      << "minimize changed the structure; the summary must rebuild";
  ExpectSummaryMatchesOracle(session.instance());
}

TEST(PrunedSweepStatsTest, RecursiveDescentVisitsLessThanFullSweep) {
  // A label-targeted recursive query on a corpus with many labels must
  // actually save work, not just match the oracle: the pruned sweeps
  // visit a strict subset of what the full sweeps walk.
  corpus::GenerateOptions gen;
  gen.target_nodes = 2000;
  gen.seed = 7;
  const std::string xml = corpus::Shakespeare().Generate(gen);
  SessionOptions options = PruningOptions(1, true, false);
  XCQ_ASSERT_OK_AND_ASSIGN(QuerySession session,
                           QuerySession::Open(xml, options));
  XCQ_ASSERT_OK_AND_ASSIGN(const QueryOutcome outcome,
                           session.Run("//SPEECH/SPEAKER"));
  EXPECT_GT(outcome.stats.pruned_sweeps + outcome.stats.skipped_sweeps, 0u);
  EXPECT_LT(outcome.stats.sweep_visited, outcome.stats.sweep_full);
}

}  // namespace
}  // namespace xcq
