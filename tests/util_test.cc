#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "xcq/util/bitset.h"
#include "xcq/util/hash.h"
#include "xcq/util/result.h"
#include "xcq/util/rng.h"
#include "xcq/util/status.h"
#include "xcq/util/string_util.h"

namespace xcq {
namespace {

// --- Status / Result --------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad tag");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad tag");
  EXPECT_EQ(s.ToString(), "ParseError: bad tag");
}

TEST(StatusTest, CopiesShareRepresentation) {
  Status a = Status::NotFound("x");
  Status b = a;
  EXPECT_EQ(b.message(), "x");
  EXPECT_EQ(b.code(), StatusCode::kNotFound);
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 10; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::OutOfRange("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).Value();
  EXPECT_EQ(*v, 5);
}

// --- DynamicBitset -----------------------------------------------------------

TEST(BitsetTest, StartsCleared) {
  DynamicBitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.None());
  EXPECT_FALSE(b.Any());
}

TEST(BitsetTest, SetResetTest) {
  DynamicBitset b(100);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(99);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(99));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 4u);
  b.Reset(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(BitsetTest, ConstructAllSetTrimsTail) {
  DynamicBitset b(70, true);
  EXPECT_EQ(b.Count(), 70u);
}

TEST(BitsetTest, SetAllRespectsSize) {
  DynamicBitset b(65);
  b.SetAll();
  EXPECT_EQ(b.Count(), 65u);
  b.Flip();
  EXPECT_EQ(b.Count(), 0u);
  b.Flip();
  EXPECT_EQ(b.Count(), 65u);
}

TEST(BitsetTest, ResizeGrowsWithValue) {
  DynamicBitset b(10);
  b.Set(3);
  b.Resize(100, true);
  EXPECT_TRUE(b.Test(3));
  EXPECT_FALSE(b.Test(4));
  EXPECT_TRUE(b.Test(10));
  EXPECT_TRUE(b.Test(99));
  EXPECT_EQ(b.Count(), 91u);
}

TEST(BitsetTest, PushBackAcrossWordBoundary) {
  DynamicBitset b;
  for (int i = 0; i < 200; ++i) b.PushBack(i % 3 == 0);
  EXPECT_EQ(b.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(b.Test(i), i % 3 == 0) << i;
}

TEST(BitsetTest, SetAlgebra) {
  DynamicBitset a(128);
  DynamicBitset b(128);
  a.Set(1);
  a.Set(64);
  b.Set(64);
  b.Set(100);

  DynamicBitset u = a;
  u |= b;
  EXPECT_EQ(u.Count(), 3u);

  DynamicBitset i = a;
  i &= b;
  EXPECT_EQ(i.Count(), 1u);
  EXPECT_TRUE(i.Test(64));

  DynamicBitset d = a;
  d -= b;
  EXPECT_EQ(d.Count(), 1u);
  EXPECT_TRUE(d.Test(1));
}

TEST(BitsetTest, SubsetAndIntersects) {
  DynamicBitset a(80);
  DynamicBitset b(80);
  a.Set(5);
  b.Set(5);
  b.Set(70);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.Intersects(b));
  a.Reset(5);
  EXPECT_FALSE(a.Intersects(b));
  EXPECT_TRUE(a.IsSubsetOf(b));  // empty set
}

TEST(BitsetTest, FindFirstNext) {
  DynamicBitset b(200);
  EXPECT_EQ(b.FindFirst(), 200u);
  b.Set(13);
  b.Set(64);
  b.Set(199);
  EXPECT_EQ(b.FindFirst(), 13u);
  EXPECT_EQ(b.FindNext(13), 13u);
  EXPECT_EQ(b.FindNext(14), 64u);
  EXPECT_EQ(b.FindNext(65), 199u);
  EXPECT_EQ(b.FindNext(200), 200u);
}

TEST(BitsetTest, ForEachVisitsAscending) {
  DynamicBitset b(300);
  const std::vector<size_t> expected = {0, 63, 64, 127, 128, 299};
  for (size_t i : expected) b.Set(i);
  std::vector<size_t> seen;
  b.ForEach([&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(BitsetTest, EqualityIncludesSize) {
  DynamicBitset a(64);
  DynamicBitset b(65);
  EXPECT_NE(a, b);
  DynamicBitset c(64);
  EXPECT_EQ(a, c);
  c.Set(0);
  EXPECT_NE(a, c);
}

// Property sweep: bitset ops agree with std::set reference.
class BitsetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitsetPropertyTest, MatchesReferenceSets) {
  Rng rng(GetParam());
  const size_t n = 1 + rng.Uniform(0, 300);
  DynamicBitset a(n);
  DynamicBitset b(n);
  std::set<size_t> ra;
  std::set<size_t> rb;
  for (size_t i = 0; i < n; ++i) {
    if (rng.Chance(0.3)) {
      a.Set(i);
      ra.insert(i);
    }
    if (rng.Chance(0.3)) {
      b.Set(i);
      rb.insert(i);
    }
  }
  DynamicBitset u = a;
  u |= b;
  DynamicBitset x = a;
  x &= b;
  DynamicBitset d = a;
  d -= b;
  std::set<size_t> ru;
  std::set<size_t> rx;
  std::set<size_t> rd;
  std::set_union(ra.begin(), ra.end(), rb.begin(), rb.end(),
                 std::inserter(ru, ru.end()));
  std::set_intersection(ra.begin(), ra.end(), rb.begin(), rb.end(),
                        std::inserter(rx, rx.end()));
  std::set_difference(ra.begin(), ra.end(), rb.begin(), rb.end(),
                      std::inserter(rd, rd.end()));
  EXPECT_EQ(u.Count(), ru.size());
  EXPECT_EQ(x.Count(), rx.size());
  EXPECT_EQ(d.Count(), rd.size());
  u.ForEach([&](size_t i) { EXPECT_TRUE(ru.count(i)) << i; });
  x.ForEach([&](size_t i) { EXPECT_TRUE(rx.count(i)) << i; });
  d.ForEach([&](size_t i) { EXPECT_TRUE(rd.count(i)) << i; });
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitsetPropertyTest,
                         ::testing::Range<uint64_t>(0, 20));

// --- Hashing -----------------------------------------------------------------

TEST(HashTest, Deterministic) {
  EXPECT_EQ(HashString("hello"), HashString("hello"));
  EXPECT_NE(HashString("hello"), HashString("hellp"));
  EXPECT_NE(HashString(""), HashString("a"));
}

TEST(HashTest, HasherOrderSensitive) {
  Hasher h1;
  h1.Add(1).Add(2);
  Hasher h2;
  h2.Add(2).Add(1);
  EXPECT_NE(h1.Finish(), h2.Finish());
}

TEST(HashTest, Mix64Avalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  const uint64_t base = Mix64(0x1234567890abcdefULL);
  int total = 0;
  for (int bit = 0; bit < 64; ++bit) {
    const uint64_t flipped = Mix64(0x1234567890abcdefULL ^ (1ULL << bit));
    total += __builtin_popcountll(base ^ flipped);
  }
  const double avg = static_cast<double>(total) / 64.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

// --- String utilities --------------------------------------------------------

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  a b \n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\r\n"), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, Split) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringUtilTest, WithCommas) {
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(1000), "1,000");
  EXPECT_EQ(WithCommas(10903569), "10,903,569");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(479662899), "457.4 MB");
}

TEST(StringUtilTest, IsValidTagName) {
  EXPECT_TRUE(IsValidTagName("book"));
  EXPECT_TRUE(IsValidTagName("Clinical_Synop"));
  EXPECT_TRUE(IsValidTagName("#doc"));
  EXPECT_FALSE(IsValidTagName(""));
  EXPECT_FALSE(IsValidTagName("1bad"));
  EXPECT_FALSE(IsValidTagName("has space"));
}

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Uniform(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, GeometricCountBounds) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const uint64_t v = rng.GeometricCount(2, 6, 0.5);
    EXPECT_GE(v, 2u);
    EXPECT_LE(v, 6u);
  }
}

}  // namespace
}  // namespace xcq
