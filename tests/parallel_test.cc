// The determinism contract of the intra-instance parallelism
// (docs/PARALLELISM.md): for every thread count, sharded compression is
// bit-identical to the sequential pass, and parallel axis sweeps select
// the same tree nodes, perform the same splits, and re-minimize to the
// same structure as the sequential oracle. Plus units for the task pool
// and the shard outline scanner.

#include <algorithm>
#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "xcq/compress/shard_outline.h"
#include "xcq/engine/axes.h"
#include "xcq/parallel/task_pool.h"

namespace xcq {
namespace {

using testing::RandomXml;

// --- task pool -----------------------------------------------------------

TEST(TaskPoolTest, RunsEveryShardExactlyOnce) {
  parallel::TaskPool pool(4);
  constexpr size_t kShards = 1000;
  std::vector<std::atomic<int>> hits(kShards);
  pool.Run(kShards, [&](size_t shard) {
    hits[shard].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kShards; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "shard " << i;
  }
}

TEST(TaskPoolTest, ZeroShardsAndZeroLanesAreFine) {
  parallel::TaskPool pool(0);
  pool.Run(0, [](size_t) { FAIL() << "no shard should run"; });
  std::atomic<int> ran{0};
  pool.Run(3, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 3);
}

TEST(TaskPoolTest, ReentrantRunFallsBackInline) {
  parallel::TaskPool pool(4);
  std::atomic<int> inner_total{0};
  pool.Run(8, [&](size_t) {
    // The pool is busy with the outer job; the inner Run must execute
    // inline rather than deadlock.
    pool.Run(4, [&](size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(TaskPoolTest, BarrierPublishesShardWrites) {
  parallel::TaskPool pool(4);
  std::vector<uint64_t> data(1 << 16, 0);
  const auto ranges = parallel::SplitRange(data.size(), 8);
  pool.Run(ranges.size(), [&](size_t s) {
    for (size_t i = ranges[s].first; i < ranges[s].second; ++i) {
      data[i] = i;
    }
  });
  uint64_t sum = 0;
  for (size_t i = 0; i < data.size(); ++i) sum += data[i] == i ? 1 : 0;
  EXPECT_EQ(sum, data.size());
}

TEST(SplitRangeTest, CoversWithoutOverlapAndRespectsAlignment) {
  for (const size_t n : {0u, 1u, 63u, 64u, 1000u, 4096u}) {
    for (const size_t shards : {1u, 3u, 8u}) {
      const auto ranges = parallel::SplitRange(n, shards, 64);
      size_t expected_begin = 0;
      for (const auto& [begin, end] : ranges) {
        EXPECT_EQ(begin, expected_begin);
        EXPECT_LT(begin, end);
        if (end != n) EXPECT_EQ(end % 64, 0u);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, n);
      EXPECT_LE(ranges.size(), shards == 0 ? 1 : shards + 1);
    }
  }
}

TEST(SharedPoolTest, GrowsToRequestedLanes) {
  parallel::TaskPool& small = parallel::SharedPool(2);
  EXPECT_GE(small.lanes(), 1u);
  parallel::TaskPool& bigger = parallel::SharedPool(4);
  EXPECT_GE(bigger.lanes(), small.lanes() >= 4 ? small.lanes() : 4u);
}

// --- shard outline -------------------------------------------------------

TEST(ShardOutlineTest, FindsTopLevelCuts) {
  const std::string xml =
      "<?xml version=\"1.0\"?><!-- p --><doc a=\"x>y\">"
      "<a><b/></a>text<c/><!-- mid --><a><b/></a></doc>";
  const DocumentOutline outline = ScanDocumentOutline(xml);
  ASSERT_TRUE(outline.eligible);
  EXPECT_EQ(outline.root_tag, "doc");
  ASSERT_EQ(outline.cuts.size(), 3u);
  // Each cut ends just past a top-level subtree's '>'.
  EXPECT_EQ(xml.substr(outline.content_begin,
                       outline.cuts[0] - outline.content_begin),
            "<a><b/></a>");
  EXPECT_EQ(xml.substr(outline.cuts[0], outline.cuts[1] - outline.cuts[0]),
            "text<c/>");
  EXPECT_EQ(xml.substr(outline.content_end), "</doc>");
}

TEST(ShardOutlineTest, HandlesCdataCommentsAndQuotedMarkup) {
  const std::string xml =
      "<doc><a><![CDATA[</a><oops>]]></a>"
      "<a t='</a>'><!-- </a> --></a></doc>";
  const DocumentOutline outline = ScanDocumentOutline(xml);
  ASSERT_TRUE(outline.eligible);
  EXPECT_EQ(outline.cuts.size(), 2u);
}

TEST(ShardOutlineTest, RejectsWhatItCannotSplit) {
  // Childless document element.
  EXPECT_FALSE(ScanDocumentOutline("<doc/>").eligible);
  // Truncated document.
  EXPECT_FALSE(ScanDocumentOutline("<doc><a></a>").eligible);
  // Trailing junk after the document element.
  EXPECT_FALSE(ScanDocumentOutline("<doc><a/></doc><more/>").eligible);
  EXPECT_FALSE(ScanDocumentOutline("<doc><a/></doc>junk").eligible);
  // Doctype inside content.
  EXPECT_FALSE(
      ScanDocumentOutline("<doc><!DOCTYPE x><a/></doc>").eligible);
  // No root at all.
  EXPECT_FALSE(ScanDocumentOutline("  <!-- only misc -->").eligible);
}

// --- fragment parse mode -------------------------------------------------

class CollectingHandler : public xml::SaxHandler {
 public:
  Status OnStartElement(std::string_view name,
                        const std::vector<xml::Attribute>&) override {
    events.push_back("<" + std::string(name) + ">");
    return Status::OK();
  }
  Status OnEndElement(std::string_view name) override {
    events.push_back("</" + std::string(name) + ">");
    return Status::OK();
  }
  Status OnCharacters(std::string_view text) override {
    events.push_back("t:" + std::string(text));
    return Status::OK();
  }
  std::vector<std::string> events;
};

TEST(FragmentParseTest, AllowsMultipleRootsAndTopLevelText) {
  xml::SaxParser::Options options;
  options.fragment = true;
  xml::SaxParser parser(options);
  CollectingHandler handler;
  XCQ_ASSERT_OK(parser.Parse("<a/>mid<b/><![CDATA[x]]>", &handler));
  EXPECT_EQ(handler.events,
            (std::vector<std::string>{"<a>", "</a>", "t:mid", "<b>",
                                      "</b>", "t:x"}));
  // An empty fragment is legal too.
  CollectingHandler empty;
  XCQ_ASSERT_OK(parser.Parse("  ", &empty));
  EXPECT_TRUE(empty.events.empty());
}

TEST(FragmentParseTest, NonFragmentRulesUnchanged) {
  xml::SaxParser parser;
  CollectingHandler handler;
  EXPECT_FALSE(parser.Parse("<a/><b/>", &handler).ok());
  EXPECT_FALSE(parser.Parse("text", &handler).ok());
  EXPECT_FALSE(parser.Parse("", &handler).ok());
}

// --- sharded compression ------------------------------------------------

/// Bit-level equality: ids, edges, schema, and every relation column.
void ExpectInstancesIdentical(const Instance& a, const Instance& b) {
  ASSERT_EQ(a.vertex_count(), b.vertex_count());
  ASSERT_EQ(a.rle_edge_count(), b.rle_edge_count());
  ASSERT_EQ(a.root(), b.root());
  for (VertexId v = 0; v < a.vertex_count(); ++v) {
    const std::span<const Edge> ca = a.Children(v);
    const std::span<const Edge> cb = b.Children(v);
    ASSERT_EQ(ca.size(), cb.size()) << "vertex " << v;
    ASSERT_TRUE(std::equal(ca.begin(), ca.end(), cb.begin()))
        << "vertex " << v;
  }
  const std::vector<RelationId> live_a = a.LiveRelations();
  ASSERT_EQ(live_a, b.LiveRelations());
  for (const RelationId r : live_a) {
    ASSERT_EQ(a.schema().Name(r), b.schema().Name(r));
    ASSERT_TRUE(a.RelationBits(r) == b.RelationBits(r))
        << "relation " << a.schema().Name(r);
  }
}

TEST(ShardedCompressionTest, BitIdenticalOverEveryCorpus) {
  for (const corpus::CorpusGenerator* generator : corpus::AllCorpora()) {
    corpus::GenerateOptions gen;
    gen.target_nodes = 6000;
    gen.seed = 99;
    const std::string xml = generator->Generate(gen);
    ASSERT_GE(xml.size(), 64u * 1024)
        << generator->name() << " too small to exercise sharding";
    for (const LabelMode mode : {LabelMode::kAllTags, LabelMode::kNone}) {
      CompressOptions sequential;
      sequential.mode = mode;
      CompressOptions sharded = sequential;
      sharded.threads = 4;
      CompressRunStats stats;
      XCQ_ASSERT_OK_AND_ASSIGN(const Instance a,
                               CompressXml(xml, sequential));
      XCQ_ASSERT_OK_AND_ASSIGN(
          const Instance b, CompressXmlWithStats(xml, sharded, &stats));
      SCOPED_TRACE(std::string(generator->name()) +
                   " shards=" + std::to_string(stats.shards));
      EXPECT_GE(stats.shards, 2u) << generator->name();
      ExpectInstancesIdentical(a, b);
      XCQ_EXPECT_OK(b.Validate());
    }
  }
}

TEST(ShardedCompressionTest, BitIdenticalInSchemaMode) {
  // kSchema without patterns is the server hot path (EnsureLabels sets
  // this mode with engine_threads) and takes the prebuilt-tag-ids merge
  // branch; cover it directly, including a tag that never occurs (its
  // relation must still exist, empty, at the sequential id).
  for (const char* name : {"TreeBank", "Shakespeare"}) {
    XCQ_ASSERT_OK_AND_ASSIGN(const corpus::CorpusGenerator* generator,
                             corpus::FindCorpus(name));
    corpus::GenerateOptions gen;
    gen.target_nodes = 6000;
    gen.seed = 23;
    const std::string xml = generator->Generate(gen);
    XCQ_ASSERT_OK_AND_ASSIGN(const Instance all_tags,
                             CompressXml(xml, {}));
    CompressOptions sequential;
    sequential.mode = LabelMode::kSchema;
    sequential.tags.push_back("xcq:never-occurs");
    for (const RelationId r : all_tags.LiveRelations()) {
      if (sequential.tags.size() >= 4) break;
      sequential.tags.emplace_back(all_tags.schema().Name(r));
    }
    CompressOptions sharded = sequential;
    sharded.threads = 4;
    CompressRunStats stats;
    XCQ_ASSERT_OK_AND_ASSIGN(const Instance a,
                             CompressXml(xml, sequential));
    XCQ_ASSERT_OK_AND_ASSIGN(const Instance b,
                             CompressXmlWithStats(xml, sharded, &stats));
    SCOPED_TRACE(name);
    EXPECT_GE(stats.shards, 2u);
    ExpectInstancesIdentical(a, b);
    EXPECT_NE(b.FindRelation("xcq:never-occurs"), kNoRelation);
  }
}

TEST(ShardedCompressionTest, StatsMatchSequential) {
  const std::string xml = RandomXml(5, 40000, 12);
  CompressOptions sequential;
  CompressOptions sharded;
  sharded.threads = 8;
  CompressRunStats s1;
  CompressRunStats s8;
  XCQ_ASSERT_OK_AND_ASSIGN(const Instance a,
                           CompressXmlWithStats(xml, sequential, &s1));
  XCQ_ASSERT_OK_AND_ASSIGN(const Instance b,
                           CompressXmlWithStats(xml, sharded, &s8));
  ExpectInstancesIdentical(a, b);
  EXPECT_EQ(s1.tree_nodes, s8.tree_nodes);
  EXPECT_EQ(s1.text_bytes, s8.text_bytes);
  // The reserve hints describe different builders: the byte heuristic
  // for the sequential pass, the exact shard totals for the merge.
  EXPECT_GT(s1.dag_reserve, 0u);
  // The merge hint is an upper bound: summed shard counts, which
  // double-count classes shared across shards.
  EXPECT_GE(s8.dag_reserve, b.vertex_count());
}

TEST(ShardedCompressionTest, PatternsForceSequentialFallback) {
  const std::string xml = RandomXml(7, 30000, 8);
  CompressOptions options;
  options.mode = LabelMode::kSchema;
  options.tags = {"t0", "t1"};
  options.patterns = {"lorem"};
  CompressOptions threaded = options;
  threaded.threads = 4;
  CompressRunStats stats;
  XCQ_ASSERT_OK_AND_ASSIGN(const Instance a, CompressXml(xml, options));
  XCQ_ASSERT_OK_AND_ASSIGN(const Instance b,
                           CompressXmlWithStats(xml, threaded, &stats));
  EXPECT_EQ(stats.shards, 1u);  // the pattern gate
  ExpectInstancesIdentical(a, b);
}

TEST(ShardedCompressionTest, SmallAndMalformedDocumentsFallBack) {
  CompressOptions threaded;
  threaded.threads = 4;
  // Small: below the sharding byte floor.
  CompressRunStats stats;
  XCQ_ASSERT_OK_AND_ASSIGN(
      const Instance small,
      CompressXmlWithStats("<a><b/><b/></a>", threaded, &stats));
  EXPECT_EQ(stats.shards, 1u);
  EXPECT_EQ(small.vertex_count(), 3u);  // b, a, #doc
  // Malformed: the error must surface exactly like the sequential path.
  std::string bad = "<doc>";
  for (int i = 0; i < 20000; ++i) bad += "<a><b/></a>";
  bad += "<a><mismatch></a></doc>";
  const Result<Instance> sequential_error = CompressXml(bad, {});
  const Result<Instance> sharded_error = CompressXml(bad, threaded);
  ASSERT_FALSE(sequential_error.ok());
  ASSERT_FALSE(sharded_error.ok());
  EXPECT_EQ(sharded_error.status().ToString(),
            sequential_error.status().ToString());
}

// --- parallel axis sweeps ------------------------------------------------

struct SweepOutcome {
  uint64_t selected_dag = 0;
  uint64_t selected_tree = 0;
  uint64_t splits = 0;
  uint64_t reachable_vertices = 0;
  uint64_t reachable_edges = 0;
  uint64_t min_vertices = 0;
  uint64_t min_edges = 0;
};

SweepOutcome RunAxisSweep(const Instance& base, xpath::Axis axis,
                          RelationId src, size_t threads) {
  Instance instance = base;
  const RelationId dst = instance.AddRelation("test:dst");
  engine::AxisStats stats;
  Status status;
  if (xpath::IsUpwardAxis(axis)) {
    status = engine::ApplyUpwardAxis(&instance, axis, src, dst, &stats,
                                     threads);
  } else if (axis == xpath::Axis::kFollowingSibling ||
             axis == xpath::Axis::kPrecedingSibling) {
    status = engine::ApplySiblingAxis(&instance, axis, src, dst, &stats,
                                      threads);
  } else {
    status = engine::ApplyDownwardAxis(&instance, axis, src, dst, &stats,
                                       threads);
  }
  SweepOutcome outcome;
  EXPECT_TRUE(status.ok()) << status.ToString();
  if (!status.ok()) return outcome;
  EXPECT_TRUE(instance.Validate().ok()) << instance.Validate().ToString();
  outcome.selected_dag = SelectedDagNodeCount(instance, dst);
  outcome.selected_tree = SelectedTreeNodeCount(instance, dst);
  outcome.splits = stats.splits;
  outcome.reachable_vertices = instance.ReachableCount();
  outcome.reachable_edges = instance.ReachableEdgeCount();
  const Result<Instance> minimal = Minimize(instance);
  EXPECT_TRUE(minimal.ok());
  if (minimal.ok()) {
    outcome.min_vertices = minimal.Value().vertex_count();
    outcome.min_edges = minimal.Value().rle_edge_count();
  }
  return outcome;
}

void ExpectSweepEqual(const SweepOutcome& oracle, const SweepOutcome& got,
                      const char* what) {
  EXPECT_EQ(oracle.selected_dag, got.selected_dag) << what;
  EXPECT_EQ(oracle.selected_tree, got.selected_tree) << what;
  EXPECT_EQ(oracle.splits, got.splits) << what;
  EXPECT_EQ(oracle.reachable_vertices, got.reachable_vertices) << what;
  EXPECT_EQ(oracle.reachable_edges, got.reachable_edges) << what;
  EXPECT_EQ(oracle.min_vertices, got.min_vertices) << what;
  EXPECT_EQ(oracle.min_edges, got.min_edges) << what;
}

TEST(ParallelAxesTest, EveryAxisMatchesSequentialOracle) {
  // TreeBank compresses worst (deep, irregular), so its DAG clears the
  // parallel-kernel size gate — assert that, so this test cannot
  // silently degrade into sequential-vs-sequential.
  XCQ_ASSERT_OK_AND_ASSIGN(
      const corpus::CorpusGenerator* generator,
      corpus::FindCorpus("TreeBank"));
  corpus::GenerateOptions gen;
  gen.target_nodes = 25000;
  gen.seed = 3;
  const std::string xml = generator->Generate(gen);
  XCQ_ASSERT_OK_AND_ASSIGN(const Instance base, CompressXml(xml, {}));
  ASSERT_GE(base.vertex_count(), 4096u)
      << "instance too small to exercise the parallel kernels";

  // Sweep from relations of very different densities.
  std::vector<RelationId> sources;
  size_t best_count = 0;
  RelationId densest = kNoRelation;
  for (const RelationId r : base.LiveRelations()) {
    const size_t count = base.RelationBits(r).Count();
    if (count > best_count) {
      densest = r;
      best_count = count;
    }
    if (count > 0 && sources.size() < 2) sources.push_back(r);
  }
  ASSERT_NE(densest, kNoRelation);
  sources.push_back(densest);

  const xpath::Axis kAxes[] = {
      xpath::Axis::kChild,          xpath::Axis::kDescendant,
      xpath::Axis::kDescendantOrSelf, xpath::Axis::kParent,
      xpath::Axis::kAncestor,       xpath::Axis::kAncestorOrSelf,
      xpath::Axis::kFollowingSibling, xpath::Axis::kPrecedingSibling};
  for (const RelationId src : sources) {
    for (const xpath::Axis axis : kAxes) {
      const SweepOutcome oracle = RunAxisSweep(base, axis, src, 1);
      for (const size_t threads : {2u, 4u, 8u}) {
        const SweepOutcome got = RunAxisSweep(base, axis, src, threads);
        ExpectSweepEqual(oracle, got,
                         (std::string("axis ") +
                          std::string(xpath::AxisName(axis)) + " src " +
                          std::string(base.schema().Name(src)) +
                          " threads " + std::to_string(threads))
                             .c_str());
      }
    }
  }
}

// --- randomized query sequences over every corpus ------------------------

std::vector<std::string> SequenceFor(std::string_view corpus_name,
                                     Rng& rng) {
  std::vector<std::string> pool = {
      "//*",
      "//*/following-sibling::*",
      "//*/preceding-sibling::*",
      "/*/*",
      "//*[following-sibling::*]/ancestor::*",
  };
  const Result<corpus::QuerySet> set = corpus::QueriesFor(corpus_name);
  if (set.ok()) {
    for (const std::string_view q : set->queries) pool.emplace_back(q);
  }
  std::vector<std::string> sequence;
  for (int i = 0; i < 12; ++i) {
    sequence.push_back(pool[rng.Uniform(0, pool.size() - 1)]);
  }
  return sequence;
}

TEST(ParallelSessionTest, RandomizedSequencesMatchOracleOverEveryCorpus) {
  for (const corpus::CorpusGenerator* generator : corpus::AllCorpora()) {
    corpus::GenerateOptions gen;
    gen.target_nodes = generator->name() == "TreeBank" ? 12000 : 5000;
    gen.seed = 17;
    const std::string xml = generator->Generate(gen);
    Rng rng(0xC0FFEE ^ std::hash<std::string_view>{}(generator->name()));
    const std::vector<std::string> sequence =
        SequenceFor(generator->name(), rng);

    SessionOptions oracle_options;
    oracle_options.minimize_after_query = true;
    SessionOptions parallel_options = oracle_options;
    parallel_options.engine_threads = 4;

    XCQ_ASSERT_OK_AND_ASSIGN(QuerySession oracle,
                             QuerySession::Open(xml, oracle_options));
    XCQ_ASSERT_OK_AND_ASSIGN(QuerySession threaded,
                             QuerySession::Open(xml, parallel_options));
    for (const std::string& query : sequence) {
      SCOPED_TRACE(std::string(generator->name()) + ": " + query);
      XCQ_ASSERT_OK_AND_ASSIGN(const QueryOutcome a, oracle.Run(query));
      XCQ_ASSERT_OK_AND_ASSIGN(const QueryOutcome b, threaded.Run(query));
      EXPECT_EQ(a.selected_dag_nodes, b.selected_dag_nodes);
      EXPECT_EQ(a.selected_tree_nodes, b.selected_tree_nodes);
      EXPECT_EQ(a.stats.splits, b.stats.splits);
      // Post-minimize structural counts (minimize_after_query re-ran
      // the incremental pass after each query).
      EXPECT_EQ(a.stats.vertices_after, b.stats.vertices_after);
      EXPECT_EQ(a.stats.edges_after, b.stats.edges_after);
    }
    EXPECT_EQ(oracle.instance().ReachableCount(),
              threaded.instance().ReachableCount());
    EXPECT_EQ(oracle.instance().ReachableEdgeCount(),
              threaded.instance().ReachableEdgeCount());
    XCQ_EXPECT_OK(threaded.instance().Validate());
  }
}

}  // namespace
}  // namespace xcq
