#include <gtest/gtest.h>

#include "test_util.h"
#include "xcq/corpus/queries.h"
#include "xcq/xpath/lexer.h"
#include "xcq/xpath/parser.h"

namespace xcq::xpath {
namespace {

// --- Lexer --------------------------------------------------------------------

TEST(LexerTest, BasicTokens) {
  XCQ_ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("/a//b::*[\"s\"]()"));
  ASSERT_EQ(tokens.size(), 12u);  // incl. kEnd
  EXPECT_EQ(tokens[0].kind, TokenKind::kSlash);
  EXPECT_EQ(tokens[1].kind, TokenKind::kName);
  EXPECT_EQ(tokens[1].text, "a");
  EXPECT_EQ(tokens[2].kind, TokenKind::kDoubleSlash);
  EXPECT_EQ(tokens[3].kind, TokenKind::kName);
  EXPECT_EQ(tokens[4].kind, TokenKind::kAxisSep);
  EXPECT_EQ(tokens[5].kind, TokenKind::kStar);
  EXPECT_EQ(tokens[6].kind, TokenKind::kLBracket);
  EXPECT_EQ(tokens[7].kind, TokenKind::kString);
  EXPECT_EQ(tokens[7].text, "s");
  EXPECT_EQ(tokens[8].kind, TokenKind::kRBracket);
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
}

TEST(LexerTest, HyphenatedNames) {
  XCQ_ASSERT_OK_AND_ASSIGN(auto tokens,
                           Tokenize("following-sibling::author"));
  EXPECT_EQ(tokens[0].text, "following-sibling");
  EXPECT_EQ(tokens[1].kind, TokenKind::kAxisSep);
  EXPECT_EQ(tokens[2].text, "author");
}

TEST(LexerTest, SingleQuotedStrings) {
  XCQ_ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("['it''s']"));
  EXPECT_EQ(tokens[1].kind, TokenKind::kString);
  EXPECT_EQ(tokens[1].text, "it");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("a:b").ok());
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("a % b").ok());
}

// --- Axis helpers ---------------------------------------------------------------

TEST(AxisTest, InverseIsInvolution) {
  for (int i = 0; i <= static_cast<int>(Axis::kPreceding); ++i) {
    const Axis axis = static_cast<Axis>(i);
    EXPECT_EQ(InverseAxis(InverseAxis(axis)), axis);
  }
}

TEST(AxisTest, NamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(Axis::kPreceding); ++i) {
    const Axis axis = static_cast<Axis>(i);
    XCQ_ASSERT_OK_AND_ASSIGN(const Axis parsed,
                             AxisFromName(AxisName(axis)));
    EXPECT_EQ(parsed, axis);
  }
  EXPECT_FALSE(AxisFromName("sideways").ok());
}

TEST(AxisTest, UpwardAxes) {
  EXPECT_TRUE(IsUpwardAxis(Axis::kSelf));
  EXPECT_TRUE(IsUpwardAxis(Axis::kParent));
  EXPECT_TRUE(IsUpwardAxis(Axis::kAncestor));
  EXPECT_TRUE(IsUpwardAxis(Axis::kAncestorOrSelf));
  EXPECT_FALSE(IsUpwardAxis(Axis::kChild));
  EXPECT_FALSE(IsUpwardAxis(Axis::kFollowing));
  EXPECT_FALSE(IsUpwardAxis(Axis::kFollowingSibling));
}

// --- Parser ---------------------------------------------------------------------

std::string Reparse(const std::string& text) {
  auto query = ParseQuery(text);
  if (!query.ok()) return "ERROR " + query.status().ToString();
  return query->ToString();
}

TEST(ParserTest, AbsoluteChildPath) {
  EXPECT_EQ(Reparse("/dblp/article/url"),
            "/child::dblp/child::article/child::url");
}

TEST(ParserTest, RelativePath) {
  EXPECT_EQ(Reparse("a/a/b"), "child::a/child::a/child::b");
}

TEST(ParserTest, DoubleSlashBecomesDescendant) {
  EXPECT_EQ(Reparse("//a/b"), "/descendant::a/child::b");
  EXPECT_EQ(Reparse("//a//b"), "/descendant::a/descendant::b");
}

TEST(ParserTest, DoubleSlashBeforeExplicitAxisKeepsDosStep) {
  EXPECT_EQ(Reparse("//following-sibling::x"),
            "/descendant-or-self::*/following-sibling::x");
  EXPECT_EQ(Reparse("//self::x"), "/descendant-or-self::x");
}

TEST(ParserTest, ExplicitAxes) {
  EXPECT_EQ(Reparse("/self::*[x]"), "/self::*[child::x]");
  EXPECT_EQ(Reparse("ancestor::TEAM"), "ancestor::TEAM");
  EXPECT_EQ(Reparse("parent::africa"), "parent::africa");
}

TEST(ParserTest, PredicatesAndStrings) {
  EXPECT_EQ(Reparse("//Title[\"LETHAL\"]"),
            "/descendant::Title[\"LETHAL\"]");
  EXPECT_EQ(Reparse("//article[author[\"Codd\"]]"),
            "/descendant::article[child::author[\"Codd\"]]");
}

TEST(ParserTest, BooleanOperators) {
  EXPECT_EQ(Reparse("//a[b and c or not(d)]"),
            "/descendant::a[((child::b and child::c) or not(child::d))]");
  EXPECT_EQ(Reparse("//a[b and (c or d)]"),
            "/descendant::a[(child::b and (child::c or child::d))]");
}

TEST(ParserTest, AbsolutePathInsidePredicate) {
  EXPECT_EQ(Reparse("//a[/b/c]"),
            "/descendant::a[/child::b/child::c]");
}

TEST(ParserTest, MultiplePredicates) {
  EXPECT_EQ(Reparse("a[b][c]"), "child::a[child::b][child::c]");
}

TEST(ParserTest, TagsNamedLikeKeywords) {
  // "and"/"or" are operators only after a complete operand; "not" only
  // before '('. As path steps they are ordinary names.
  EXPECT_EQ(Reparse("/and/or/not"), "/child::and/child::or/child::not");
  EXPECT_EQ(Reparse("//x[not/y]"), "/descendant::x[child::not/child::y]");
}

struct ParseErrorCase {
  const char* name;
  const char* query;
};

class ParserErrorTest : public ::testing::TestWithParam<ParseErrorCase> {};

TEST_P(ParserErrorTest, Rejected) {
  const auto result = ParseQuery(GetParam().query);
  EXPECT_FALSE(result.ok()) << GetParam().query;
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrorTest,
    ::testing::Values(
        ParseErrorCase{"Empty", ""},
        ParseErrorCase{"SlashOnly", "/"},
        ParseErrorCase{"TrailingSlash", "/a/"},
        ParseErrorCase{"UnclosedPredicate", "a[b"},
        ParseErrorCase{"EmptyPredicate", "a[]"},
        ParseErrorCase{"UnknownAxis", "sideways::a"},
        ParseErrorCase{"DanglingAnd", "a[b and]"},
        ParseErrorCase{"UnclosedParen", "a[(b or c]"},
        ParseErrorCase{"UnclosedNot", "a[not(b]"},
        ParseErrorCase{"StrayToken", "a]b"},
        ParseErrorCase{"DoubleAxisSep", "a::::b"}),
    [](const ::testing::TestParamInfo<ParseErrorCase>& info) {
      return info.param.name;
    });

// Every Appendix-A query must parse, and its rendering must re-parse to
// the same normal form (round-trip stability).
class AppendixAQueryTest
    : public ::testing::TestWithParam<std::pair<std::string, std::string>> {
};

TEST_P(AppendixAQueryTest, ParsesAndRoundTrips) {
  const std::string& text = GetParam().second;
  XCQ_ASSERT_OK_AND_ASSIGN(const Query query, ParseQuery(text));
  const std::string rendered = query.ToString();
  XCQ_ASSERT_OK_AND_ASSIGN(const Query reparsed, ParseQuery(rendered));
  EXPECT_EQ(reparsed.ToString(), rendered);
}

std::vector<std::pair<std::string, std::string>> AllAppendixAQueries() {
  std::vector<std::pair<std::string, std::string>> out;
  for (const corpus::QuerySet& set : corpus::AppendixAQueries()) {
    for (size_t i = 0; i < set.queries.size(); ++i) {
      out.emplace_back(
          std::string(set.corpus) + "_Q" + std::to_string(i + 1),
          std::string(set.queries[i]));
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    All, AppendixAQueryTest, ::testing::ValuesIn(AllAppendixAQueries()),
    [](const ::testing::TestParamInfo<std::pair<std::string, std::string>>&
           info) { return info.param.first; });

// --- Requirements ----------------------------------------------------------------

TEST(RequirementsTest, CollectsTagsAndPatterns) {
  XCQ_ASSERT_OK_AND_ASSIGN(
      const Query query,
      ParseQuery("//Record[sequence/seq[\"MMSARGDFLN\"] and "
                 "protein/from[\"Rattus norvegicus\"]]"));
  const QueryRequirements reqs = CollectRequirements(query);
  EXPECT_EQ(reqs.tags,
            (std::vector<std::string>{"Record", "from", "protein",
                                      "seq", "sequence"}));
  EXPECT_EQ(reqs.patterns,
            (std::vector<std::string>{"MMSARGDFLN", "Rattus norvegicus"}));
}

TEST(RequirementsTest, StarContributesNothing) {
  XCQ_ASSERT_OK_AND_ASSIGN(const Query query, ParseQuery("/self::*[*]"));
  const QueryRequirements reqs = CollectRequirements(query);
  EXPECT_TRUE(reqs.tags.empty());
  EXPECT_TRUE(reqs.patterns.empty());
}

TEST(RequirementsTest, Deduplicates) {
  XCQ_ASSERT_OK_AND_ASSIGN(const Query query, ParseQuery("/a/a/a[\"x\"]["
                                                         "\"x\"]"));
  const QueryRequirements reqs = CollectRequirements(query);
  EXPECT_EQ(reqs.tags, (std::vector<std::string>{"a"}));
  EXPECT_EQ(reqs.patterns, (std::vector<std::string>{"x"}));
}

}  // namespace
}  // namespace xcq::xpath
