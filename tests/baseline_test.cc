#include <set>

#include <gtest/gtest.h>

#include "test_util.h"
#include "xcq/api.h"

namespace xcq {
namespace {

/// Runs a query through parse -> compile -> tree baseline and returns the
/// selected preorder node ids.
std::set<size_t> Select(const std::string& xml, const std::string& query) {
  auto parsed = xpath::ParseQuery(query);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  if (!parsed.ok()) return {};
  auto plan = algebra::Compile(*parsed);
  EXPECT_TRUE(plan.ok()) << plan.status();
  if (!plan.ok()) return {};
  const xpath::QueryRequirements reqs = CollectRequirements(*parsed);
  auto labeled = TreeBuilder::Build(xml, reqs.patterns);
  EXPECT_TRUE(labeled.ok()) << labeled.status();
  if (!labeled.ok()) return {};
  auto result = baseline::Evaluate(*labeled, *plan);
  EXPECT_TRUE(result.ok()) << result.status();
  if (!result.ok()) return {};
  std::set<size_t> out;
  result->ForEach([&](size_t i) { out.insert(i); });
  return out;
}

// Fixture document (preorder ids):
//   0 #doc
//   1 a
//   2   b        <- b1
//   3     c      <- c1
//   4     c      <- c2
//   5   b        <- b2 (empty)
//   6   d
const char* kDoc = "<a><b><c/><c/></b><b/><d/></a>";

TEST(BaselineTest, ChildAxis) {
  EXPECT_EQ(Select(kDoc, "/a"), (std::set<size_t>{1}));
  EXPECT_EQ(Select(kDoc, "/a/b"), (std::set<size_t>{2, 5}));
  EXPECT_EQ(Select(kDoc, "/a/b/c"), (std::set<size_t>{3, 4}));
  EXPECT_EQ(Select(kDoc, "/a/zzz"), (std::set<size_t>{}));
}

TEST(BaselineTest, StarMatchesAnyNode) {
  EXPECT_EQ(Select(kDoc, "/a/*"), (std::set<size_t>{2, 5, 6}));
  EXPECT_EQ(Select(kDoc, "/*"), (std::set<size_t>{1}));
}

TEST(BaselineTest, DescendantAxis) {
  EXPECT_EQ(Select(kDoc, "//c"), (std::set<size_t>{3, 4}));
  EXPECT_EQ(Select(kDoc, "//b"), (std::set<size_t>{2, 5}));
  EXPECT_EQ(Select(kDoc, "/descendant::*"),
            (std::set<size_t>{1, 2, 3, 4, 5, 6}));
}

TEST(BaselineTest, DescendantOrSelfAxis) {
  EXPECT_EQ(Select(kDoc, "/descendant-or-self::*"),
            (std::set<size_t>{0, 1, 2, 3, 4, 5, 6}));
}

TEST(BaselineTest, ParentAxis) {
  EXPECT_EQ(Select(kDoc, "//c/parent::*"), (std::set<size_t>{2}));
  EXPECT_EQ(Select(kDoc, "//b/parent::a"), (std::set<size_t>{1}));
  EXPECT_EQ(Select(kDoc, "/a/parent::*"), (std::set<size_t>{0}));
}

TEST(BaselineTest, AncestorAxes) {
  EXPECT_EQ(Select(kDoc, "//c/ancestor::*"), (std::set<size_t>{0, 1, 2}));
  EXPECT_EQ(Select(kDoc, "//c/ancestor-or-self::*"),
            (std::set<size_t>{0, 1, 2, 3, 4}));
}

TEST(BaselineTest, SiblingAxes) {
  EXPECT_EQ(Select(kDoc, "/a/b/following-sibling::*"),
            (std::set<size_t>{5, 6}));
  EXPECT_EQ(Select(kDoc, "/a/d/preceding-sibling::*"),
            (std::set<size_t>{2, 5}));
  EXPECT_EQ(Select(kDoc, "/a/d/following-sibling::*"),
            (std::set<size_t>{}));
  EXPECT_EQ(Select(kDoc, "//c/preceding-sibling::*"),
            (std::set<size_t>{3}));
}

TEST(BaselineTest, FollowingAndPreceding) {
  EXPECT_EQ(Select(kDoc, "//c/following::*"), (std::set<size_t>{4, 5, 6}));
  EXPECT_EQ(Select(kDoc, "/a/d/preceding::*"),
            (std::set<size_t>{2, 3, 4, 5}));
  // following excludes descendants and ancestors.
  EXPECT_EQ(Select(kDoc, "/a/b/following::*"), (std::set<size_t>{5, 6}));
}

TEST(BaselineTest, Predicates) {
  EXPECT_EQ(Select(kDoc, "/a/b[c]"), (std::set<size_t>{2}));
  EXPECT_EQ(Select(kDoc, "/a/b[not(c)]"), (std::set<size_t>{5}));
  EXPECT_EQ(Select(kDoc, "/a/*[not(following-sibling::*)]"),
            (std::set<size_t>{6}));
  EXPECT_EQ(Select(kDoc, "/a/*[c or following-sibling::d]"),
            (std::set<size_t>{2, 5}));
  EXPECT_EQ(Select(kDoc, "/a/*[c and following-sibling::d]"),
            (std::set<size_t>{2}));
}

TEST(BaselineTest, NestedPredicates) {
  EXPECT_EQ(Select(kDoc, "/a[b[c]]"), (std::set<size_t>{1}));
  EXPECT_EQ(Select(kDoc, "/a[b[not(c) and not(following-sibling::d)]]"),
            (std::set<size_t>{}));
}

TEST(BaselineTest, AbsolutePredicatePaths) {
  EXPECT_EQ(Select(kDoc, "//c[/a/d]"), (std::set<size_t>{3, 4}));
  EXPECT_EQ(Select(kDoc, "//c[/a/zzz]"), (std::set<size_t>{}));
  EXPECT_EQ(Select(kDoc, "/self::*[a/b/c]"), (std::set<size_t>{0}));
}

TEST(BaselineTest, StringConstraints) {
  const char* doc =
      "<lib><book><t>War and Peace</t></book>"
      "<book><t>Peaceful Days</t></book>"
      "<book><t>Other</t></book></lib>";
  // ids: 0 #doc 1 lib 2 book1 3 t1 4 book2 5 t2 6 book3 7 t3
  EXPECT_EQ(Select(doc, "//book[t[\"Peace\"]]"),
            (std::set<size_t>{2, 4}));
  EXPECT_EQ(Select(doc, "//book[\"War\"]"), (std::set<size_t>{2}));
  EXPECT_EQ(Select(doc, "//t[\"Days\" and \"Peace\"]"),
            (std::set<size_t>{5}));
}

TEST(BaselineTest, ContextOverride) {
  XCQ_ASSERT_OK_AND_ASSIGN(LabeledTree labeled, TreeBuilder::Build(kDoc));
  XCQ_ASSERT_OK_AND_ASSIGN(const algebra::QueryPlan plan,
                           algebra::CompileString("c"));
  // Context = b1 only: its c children are selected, b2 contributes none.
  DynamicBitset context(labeled.tree.node_count());
  context.Set(2);
  baseline::TreeEvalOptions options;
  options.context = &context;
  XCQ_ASSERT_OK_AND_ASSIGN(const DynamicBitset result,
                           baseline::Evaluate(labeled, plan, options));
  EXPECT_EQ(result.Count(), 2u);
  EXPECT_TRUE(result.Test(3));
  EXPECT_TRUE(result.Test(4));
}

TEST(BaselineTest, ContextSizeMismatchRejected) {
  XCQ_ASSERT_OK_AND_ASSIGN(LabeledTree labeled, TreeBuilder::Build(kDoc));
  XCQ_ASSERT_OK_AND_ASSIGN(const algebra::QueryPlan plan,
                           algebra::CompileString("c"));
  DynamicBitset wrong(3);
  baseline::TreeEvalOptions options;
  options.context = &wrong;
  EXPECT_FALSE(baseline::Evaluate(labeled, plan, options).ok());
}

}  // namespace
}  // namespace xcq
