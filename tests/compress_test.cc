#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "test_util.h"
#include "xcq/api.h"

namespace xcq {
namespace {

using testing::AlternatingBinaryTreeXml;
using testing::BibExampleXml;
using testing::RandomXml;

// --- Example 1.1 / Fig. 1 ----------------------------------------------------

TEST(CompressorTest, BibExampleBareMode) {
  CompressOptions options;
  options.mode = LabelMode::kNone;
  XCQ_ASSERT_OK_AND_ASSIGN(Instance inst,
                           CompressXml(BibExampleXml(), options));
  XCQ_ASSERT_OK(inst.Validate());
  // Without tags, book(title,author,author,author) and the papers
  // (title,author) differ only in child counts; leaves all coincide:
  // leaf, paper-shape, book-shape, bib, #doc = 5 vertices.
  EXPECT_EQ(inst.ReachableCount(), 5u);
  EXPECT_EQ(TreeNodeCount(inst), 13u);  // 12 skeleton nodes + #doc
}

TEST(CompressorTest, BibExampleAllTags) {
  CompressOptions options;
  options.mode = LabelMode::kAllTags;
  XCQ_ASSERT_OK_AND_ASSIGN(Instance inst,
                           CompressXml(BibExampleXml(), options));
  // Fig. 1 (b): title, author, book, paper, bib — plus our #doc: 6.
  EXPECT_EQ(inst.ReachableCount(), 6u);
  // Fig. 1 (c) edge structure: bib->book(1), bib->paper(2),
  // book->title(1), book->author(3), paper->title(1), paper->author(1),
  // plus #doc->bib: 7 RLE edges.
  EXPECT_EQ(inst.rle_edge_count(), 7u);
  // Relations present for every tag.
  for (const char* tag : {"bib", "book", "paper", "title", "author"}) {
    const RelationId r = inst.FindRelation(tag);
    ASSERT_NE(r, kNoRelation) << tag;
    EXPECT_GE(inst.RelationBits(r).Count(), 1u) << tag;
  }
  XCQ_ASSERT_OK_AND_ASSIGN(const bool minimal, IsMinimal(inst));
  EXPECT_TRUE(minimal);
}

TEST(CompressorTest, BibExampleEdgeMultiplicities) {
  CompressOptions options;
  options.mode = LabelMode::kAllTags;
  XCQ_ASSERT_OK_AND_ASSIGN(Instance inst,
                           CompressXml(BibExampleXml(), options));
  const RelationId book = inst.FindRelation("book");
  const RelationId author = inst.FindRelation("author");
  ASSERT_NE(book, kNoRelation);
  // Find the book vertex and check its author run has multiplicity 3.
  bool found = false;
  for (VertexId v = 0; v < inst.vertex_count(); ++v) {
    if (!inst.Test(book, v)) continue;
    found = true;
    bool has_author_run = false;
    for (const Edge& e : inst.Children(v)) {
      if (inst.Test(author, e.child)) {
        EXPECT_EQ(e.count, 3u);
        has_author_run = true;
      }
    }
    EXPECT_TRUE(has_author_run);
  }
  EXPECT_TRUE(found);
}

// --- Minimality & idempotence -------------------------------------------------

TEST(CompressorTest, OutputIsMinimal) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    const std::string xml = RandomXml(seed, 400, 4);
    XCQ_ASSERT_OK_AND_ASSIGN(Instance inst, CompressXml(xml, {}));
    XCQ_ASSERT_OK_AND_ASSIGN(const bool minimal, IsMinimal(inst));
    EXPECT_TRUE(minimal) << "seed " << seed;
  }
}

TEST(MinimizeTest, Idempotent) {
  XCQ_ASSERT_OK_AND_ASSIGN(Instance inst,
                           CompressXml(BibExampleXml(), {}));
  XCQ_ASSERT_OK_AND_ASSIGN(Instance once, Minimize(inst));
  XCQ_ASSERT_OK_AND_ASSIGN(Instance twice, Minimize(once));
  EXPECT_EQ(once.vertex_count(), twice.vertex_count());
  EXPECT_EQ(once.rle_edge_count(), twice.rle_edge_count());
  XCQ_ASSERT_OK_AND_ASSIGN(const bool equivalent,
                           AreEquivalent(once, twice));
  EXPECT_TRUE(equivalent);
}

TEST(MinimizeTest, TreeInstanceMinimizesToCompressorOutput) {
  for (uint64_t seed = 10; seed < 14; ++seed) {
    const std::string xml = RandomXml(seed, 300, 3);
    XCQ_ASSERT_OK_AND_ASSIGN(LabeledTree labeled, TreeBuilder::Build(xml));
    XCQ_ASSERT_OK_AND_ASSIGN(Instance tree_instance,
                             InstanceFromTree(labeled));
    XCQ_ASSERT_OK_AND_ASSIGN(Instance minimized, Minimize(tree_instance));

    CompressOptions options;
    options.mode = LabelMode::kAllTags;
    XCQ_ASSERT_OK_AND_ASSIGN(Instance streamed, CompressXml(xml, options));

    XCQ_ASSERT_OK_AND_ASSIGN(const bool equivalent,
                             AreEquivalent(minimized, streamed));
    EXPECT_TRUE(equivalent) << "seed " << seed;
    EXPECT_EQ(minimized.vertex_count(), streamed.ReachableCount());
  }
}

TEST(MinimizeTest, TreeInstanceEquivalentToItsMinimization) {
  const std::string xml = RandomXml(99, 200, 3);
  XCQ_ASSERT_OK_AND_ASSIGN(LabeledTree labeled, TreeBuilder::Build(xml));
  XCQ_ASSERT_OK_AND_ASSIGN(Instance tree_instance,
                           InstanceFromTree(labeled));
  XCQ_ASSERT_OK_AND_ASSIGN(Instance minimized, Minimize(tree_instance));
  EXPECT_LE(minimized.vertex_count(), tree_instance.vertex_count());
  XCQ_ASSERT_OK_AND_ASSIGN(const bool equivalent,
                           AreEquivalent(tree_instance, minimized));
  EXPECT_TRUE(equivalent);
}

// --- Round trips ---------------------------------------------------------------

TEST(DecompressTest, RoundTripPreservesShapeAndLabels) {
  for (uint64_t seed = 20; seed < 24; ++seed) {
    const std::string xml = RandomXml(seed, 300, 4);
    XCQ_ASSERT_OK_AND_ASSIGN(LabeledTree labeled, TreeBuilder::Build(xml));
    CompressOptions options;
    options.mode = LabelMode::kAllTags;
    XCQ_ASSERT_OK_AND_ASSIGN(Instance inst, CompressXml(xml, options));
    XCQ_ASSERT_OK_AND_ASSIGN(DecompressedTree decompressed,
                             Decompress(inst));
    ASSERT_EQ(decompressed.tree.node_count(), labeled.tree.node_count());
    for (TreeNodeId n = 0; n < labeled.tree.node_count(); ++n) {
      EXPECT_EQ(decompressed.tree.Parent(n), labeled.tree.Parent(n));
    }
    // Tag relations in the DAG must decompress to the tree's tag sets.
    for (const std::string& name : inst.schema().LiveNames()) {
      EXPECT_EQ(decompressed.RelationSet(name),
                labeled.tree.NodesWithTag(name))
          << name;
    }
  }
}

TEST(DecompressTest, SynthesizedTags) {
  // Vertices with exactly one non-"str:" relation get that name as their
  // tag; multi-label or unlabeled vertices decompress as "#node".
  CompressOptions options;
  options.mode = LabelMode::kSchema;
  options.tags = {"b"};
  options.patterns = {"x"};
  XCQ_ASSERT_OK_AND_ASSIGN(Instance inst,
                           CompressXml("<a><b>x</b><c/></a>", options));
  XCQ_ASSERT_OK_AND_ASSIGN(DecompressedTree out, Decompress(inst));
  ASSERT_EQ(out.tree.node_count(), 4u);  // #doc a b c
  EXPECT_EQ(out.tree.TagName(2), "b");       // single tag label
  EXPECT_EQ(out.tree.TagName(1), "#node");   // untracked tag
  EXPECT_EQ(out.tree.TagName(3), "#node");
  // The str: relation transported to tree nodes but not used as a tag.
  EXPECT_TRUE(out.RelationSet(Schema::StringRelationName("x")).Test(2));
}

TEST(DecompressTest, OriginMapsTreeNodesToVertices) {
  XCQ_ASSERT_OK_AND_ASSIGN(Instance inst,
                           CompressXml("<a><b/><b/></a>", {}));
  XCQ_ASSERT_OK_AND_ASSIGN(DecompressedTree out, Decompress(inst));
  ASSERT_EQ(out.origin.size(), 4u);
  EXPECT_EQ(out.origin[0], inst.root());
  EXPECT_EQ(out.origin[2], out.origin[3]);  // shared b vertex
}

TEST(DecompressTest, BudgetEnforced) {
  XCQ_ASSERT_OK_AND_ASSIGN(Instance inst,
                           CompressXml(AlternatingBinaryTreeXml(12), {}));
  DecompressOptions options;
  options.max_nodes = 100;
  EXPECT_EQ(Decompress(inst, options).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(DecompressTest, CountMatchesStats) {
  const std::string xml = RandomXml(31, 500, 3);
  XCQ_ASSERT_OK_AND_ASSIGN(Instance inst, CompressXml(xml, {}));
  XCQ_ASSERT_OK_AND_ASSIGN(DecompressedTree decompressed,
                           Decompress(inst));
  EXPECT_EQ(decompressed.tree.node_count(), TreeNodeCount(inst));
}

// --- The paper's headline compression examples ---------------------------------

TEST(CompressorTest, BinaryTreeCompressesToChain) {
  // A complete binary tree of depth d with alternating labels compresses
  // to d vertices (one per level) — exponential compression.
  for (int depth = 2; depth <= 14; ++depth) {
    XCQ_ASSERT_OK_AND_ASSIGN(
        Instance inst, CompressXml(AlternatingBinaryTreeXml(depth), {}));
    EXPECT_EQ(inst.ReachableCount(), static_cast<size_t>(depth) + 1)
        << "depth " << depth;  // + #doc
    EXPECT_EQ(TreeNodeCount(inst), (uint64_t{1} << depth));  // 2^d - 1 + #doc
  }
}

TEST(CompressorTest, RelationalTableCompressesToColumnsPlusLogRows) {
  // Sec. 1: an R x C table compresses to O(C + log R) with multiplicities.
  const int columns = 10;
  for (const int rows : {16, 256, 4096}) {
    std::string xml = "<table>";
    for (int r = 0; r < rows; ++r) {
      xml += "<row>";
      for (int c = 0; c < columns; ++c) {
        xml += "<c" + std::to_string(c) + "/>";
      }
      xml += "</row>";
    }
    xml += "</table>";
    CompressOptions options;
    options.mode = LabelMode::kAllTags;
    XCQ_ASSERT_OK_AND_ASSIGN(Instance inst, CompressXml(xml, options));
    // Vertices: #doc, table, row, C columns = C + 3 (row sharing).
    EXPECT_EQ(inst.ReachableCount(), static_cast<size_t>(columns) + 3);
    // The row multiplicity collapses to a single edge: table has exactly
    // one RLE edge to the shared row vertex.
    EXPECT_EQ(inst.rle_edge_count(), static_cast<uint64_t>(columns) + 2);
  }
}

// --- Label modes ----------------------------------------------------------------

TEST(CompressorTest, SchemaModeTracksOnlyRequestedTags) {
  CompressOptions options;
  options.mode = LabelMode::kSchema;
  options.tags = {"author"};
  XCQ_ASSERT_OK_AND_ASSIGN(Instance inst,
                           CompressXml(BibExampleXml(), options));
  EXPECT_NE(inst.FindRelation("author"), kNoRelation);
  EXPECT_EQ(inst.FindRelation("title"), kNoRelation);
  // Bare structure + author bit: title and author leaves now differ,
  // book/paper/bib collapse further than all-tags mode.
  EXPECT_LE(inst.ReachableCount(), 6u);
}

TEST(CompressorTest, SchemaModeUnknownTagYieldsEmptyRelation) {
  CompressOptions options;
  options.mode = LabelMode::kSchema;
  options.tags = {"nonexistent"};
  XCQ_ASSERT_OK_AND_ASSIGN(Instance inst,
                           CompressXml(BibExampleXml(), options));
  const RelationId r = inst.FindRelation("nonexistent");
  ASSERT_NE(r, kNoRelation);
  EXPECT_EQ(inst.RelationBits(r).Count(), 0u);
}

TEST(CompressorTest, PatternsBecomeStrRelations) {
  CompressOptions options;
  options.mode = LabelMode::kSchema;
  options.tags = {"paper", "author"};
  options.patterns = {"Codd"};
  XCQ_ASSERT_OK_AND_ASSIGN(Instance inst,
                           CompressXml(BibExampleXml(), options));
  const RelationId r =
      inst.FindRelation(Schema::StringRelationName("Codd"));
  ASSERT_NE(r, kNoRelation);
  // "Codd" is contained in: the author leaf, its paper, bib, #doc.
  EXPECT_EQ(SelectedTreeNodeCount(inst, r), 4u);
}

TEST(CompressorTest, PatternsDifferentiateSharedSubtrees) {
  // Two structurally identical papers, but only one contains "Codd":
  // with the pattern tracked they must NOT share a vertex.
  CompressOptions with_pattern;
  with_pattern.mode = LabelMode::kSchema;
  with_pattern.patterns = {"Codd"};
  XCQ_ASSERT_OK_AND_ASSIGN(Instance tracked,
                           CompressXml(BibExampleXml(), with_pattern));

  CompressOptions without;
  without.mode = LabelMode::kNone;
  XCQ_ASSERT_OK_AND_ASSIGN(Instance bare,
                           CompressXml(BibExampleXml(), without));
  EXPECT_GT(tracked.ReachableCount(), bare.ReachableCount());
}

TEST(CompressorTest, TagsOptionRejectedOutsideSchemaMode) {
  CompressOptions options;
  options.mode = LabelMode::kAllTags;
  options.tags = {"x"};
  EXPECT_EQ(CompressXml("<a/>", options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CompressorTest, StatsReported) {
  CompressOptions options;
  options.mode = LabelMode::kSchema;
  options.patterns = {"Codd"};
  CompressRunStats stats;
  XCQ_ASSERT_OK_AND_ASSIGN(
      Instance inst, CompressXmlWithStats(BibExampleXml(), options, &stats));
  EXPECT_EQ(stats.tree_nodes, 13u);
  EXPECT_GT(stats.text_bytes, 0u);
  EXPECT_EQ(stats.pattern_hits, 1u);
  EXPECT_GE(stats.parse_seconds, 0.0);
  (void)inst;
}

// --- Equivalence / edge paths (Def. 2.1 oracle) --------------------------------

TEST(VerifyTest, EdgePathsMatchBetweenEquivalentInstances) {
  // Compare the compressed instance against the uncompressed
  // tree-instance via explicit Π enumeration (tiny inputs only).
  const std::string xml = "<a><b><c/><c/></b><b><c/><c/></b></a>";
  XCQ_ASSERT_OK_AND_ASSIGN(LabeledTree labeled, TreeBuilder::Build(xml));
  XCQ_ASSERT_OK_AND_ASSIGN(Instance tree_inst, InstanceFromTree(labeled));
  CompressOptions options;
  options.mode = LabelMode::kAllTags;
  XCQ_ASSERT_OK_AND_ASSIGN(Instance dag, CompressXml(xml, options));

  XCQ_ASSERT_OK_AND_ASSIGN(const auto paths_tree,
                           EnumerateEdgePaths(tree_inst, kNoRelation));
  XCQ_ASSERT_OK_AND_ASSIGN(const auto paths_dag,
                           EnumerateEdgePaths(dag, kNoRelation));
  EXPECT_EQ(paths_tree, paths_dag);

  // Π(S) for each relation name.
  for (const std::string& name : dag.schema().LiveNames()) {
    XCQ_ASSERT_OK_AND_ASSIGN(
        const auto s_tree,
        EnumerateEdgePaths(tree_inst, tree_inst.FindRelation(name)));
    XCQ_ASSERT_OK_AND_ASSIGN(
        const auto s_dag, EnumerateEdgePaths(dag, dag.FindRelation(name)));
    EXPECT_EQ(s_tree, s_dag) << name;
  }
}

TEST(VerifyTest, DetectsInequivalence) {
  XCQ_ASSERT_OK_AND_ASSIGN(Instance a, CompressXml("<a><b/><b/></a>", {}));
  XCQ_ASSERT_OK_AND_ASSIGN(Instance b, CompressXml("<a><b/></a>", {}));
  XCQ_ASSERT_OK_AND_ASSIGN(const bool equivalent, AreEquivalent(a, b));
  EXPECT_FALSE(equivalent);
}

TEST(VerifyTest, DetectsLabelDifference) {
  CompressOptions options;
  options.mode = LabelMode::kAllTags;
  XCQ_ASSERT_OK_AND_ASSIGN(Instance a,
                           CompressXml("<a><x/></a>", options));
  XCQ_ASSERT_OK_AND_ASSIGN(Instance b,
                           CompressXml("<a><y/></a>", options));
  XCQ_ASSERT_OK_AND_ASSIGN(const bool equivalent, AreEquivalent(a, b));
  EXPECT_FALSE(equivalent);
}

TEST(VerifyTest, PathEnumerationLimit) {
  XCQ_ASSERT_OK_AND_ASSIGN(Instance inst,
                           CompressXml(AlternatingBinaryTreeXml(16), {}));
  EXPECT_EQ(EnumerateEdgePaths(inst, kNoRelation, 1000).status().code(),
            StatusCode::kResourceExhausted);
}

// --- Common extension (Lemma 2.7) ----------------------------------------------

TEST(CommonExtensionTest, MergesTagAndPatternInstances) {
  const std::string xml = BibExampleXml();
  CompressOptions tag_options;
  tag_options.mode = LabelMode::kSchema;
  tag_options.tags = {"paper"};
  XCQ_ASSERT_OK_AND_ASSIGN(Instance tags, CompressXml(xml, tag_options));

  CompressOptions pattern_options;
  pattern_options.mode = LabelMode::kSchema;
  pattern_options.patterns = {"Codd"};
  XCQ_ASSERT_OK_AND_ASSIGN(Instance patterns,
                           CompressXml(xml, pattern_options));

  XCQ_ASSERT_OK_AND_ASSIGN(Instance merged,
                           CommonExtension(tags, patterns));
  XCQ_ASSERT_OK(merged.Validate());

  // The merged instance must be equivalent to compressing with both
  // labelings at once.
  CompressOptions both;
  both.mode = LabelMode::kSchema;
  both.tags = {"paper"};
  both.patterns = {"Codd"};
  XCQ_ASSERT_OK_AND_ASSIGN(Instance direct, CompressXml(xml, both));
  XCQ_ASSERT_OK_AND_ASSIGN(const bool equivalent,
                           AreEquivalent(merged, direct));
  EXPECT_TRUE(equivalent);
}

TEST(CommonExtensionTest, ReductsOfExtensionAreEquivalentToInputs) {
  const std::string xml = RandomXml(55, 200, 3);
  CompressOptions a_options;
  a_options.mode = LabelMode::kSchema;
  a_options.tags = {"t0"};
  XCQ_ASSERT_OK_AND_ASSIGN(Instance a, CompressXml(xml, a_options));
  CompressOptions b_options;
  b_options.mode = LabelMode::kSchema;
  b_options.tags = {"t1"};
  XCQ_ASSERT_OK_AND_ASSIGN(Instance b, CompressXml(xml, b_options));

  XCQ_ASSERT_OK_AND_ASSIGN(Instance merged, CommonExtension(a, b));
  const Instance ra = Reduct(merged, {"t0"});
  const Instance rb = Reduct(merged, {"t1"});
  XCQ_ASSERT_OK_AND_ASSIGN(const bool ea, AreEquivalent(ra, a));
  XCQ_ASSERT_OK_AND_ASSIGN(const bool eb, AreEquivalent(rb, b));
  EXPECT_TRUE(ea);
  EXPECT_TRUE(eb);
}

TEST(CommonExtensionTest, IncompatibleStructuresRejected) {
  XCQ_ASSERT_OK_AND_ASSIGN(Instance a, CompressXml("<a><b/><b/></a>", {}));
  XCQ_ASSERT_OK_AND_ASSIGN(Instance b, CompressXml("<a><b/></a>", {}));
  EXPECT_EQ(CommonExtension(a, b).status().code(),
            StatusCode::kIncompatible);
}

TEST(CommonExtensionTest, SharedRelationDisagreementRejected) {
  CompressOptions options;
  options.mode = LabelMode::kAllTags;
  XCQ_ASSERT_OK_AND_ASSIGN(Instance a,
                           CompressXml("<r><x/></r>", options));
  XCQ_ASSERT_OK_AND_ASSIGN(Instance b,
                           CompressXml("<r><x/></r>", options));
  // Corrupt b: claim the root is an "x".
  b.SetBit(b.FindRelation("x"), b.root());
  EXPECT_EQ(CommonExtension(a, b).status().code(),
            StatusCode::kIncompatible);
}

TEST(CommonExtensionTest, MinimizeResultOption) {
  const std::string xml = RandomXml(66, 150, 2);
  CompressOptions bare;
  bare.mode = LabelMode::kNone;
  XCQ_ASSERT_OK_AND_ASSIGN(Instance a, CompressXml(xml, bare));
  XCQ_ASSERT_OK_AND_ASSIGN(Instance b, CompressXml(xml, bare));
  CommonExtensionOptions options;
  options.minimize_result = true;
  XCQ_ASSERT_OK_AND_ASSIGN(Instance merged,
                           CommonExtension(a, b, options));
  XCQ_ASSERT_OK_AND_ASSIGN(const bool minimal, IsMinimal(merged));
  EXPECT_TRUE(minimal);
  // Same labelings on both sides: the product is just the input again.
  EXPECT_EQ(merged.vertex_count(), a.ReachableCount());
}

}  // namespace
}  // namespace xcq
